module github.com/safari-repro/hbmrh

go 1.24
