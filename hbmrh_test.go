package hbmrh_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	hbmrh "github.com/safari-repro/hbmrh"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestOpenAndGeometry(t *testing.T) {
	d, err := hbmrh.Open(hbmrh.PaperChip())
	if err != nil {
		t.Fatal(err)
	}
	g := d.Geometry()
	if g.Channels != 8 || g.PseudoChannels != 2 || g.Banks != 16 || g.Rows != 16384 || g.Columns != 32 {
		t.Fatalf("paper geometry wrong: %+v", g)
	}
	if g.TotalBytes() != 4<<30 {
		t.Fatalf("capacity %d, want 4 GiB", g.TotalBytes())
	}
}

func TestPublicHammerFlow(t *testing.T) {
	h, err := hbmrh.NewHarnessFromConfig(hbmrh.SmallChip())
	if err != nil {
		t.Fatal(err)
	}
	layout := h.Device().Config().Layout()
	victim := layout.Start(1) + layout.Size(1)/2
	b := hbmrh.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 0}
	res, err := h.BER(b, victim, hbmrh.Table1()[1], hbmrh.DefaultHammers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips == 0 {
		t.Fatal("no flips through the public API")
	}
}

func TestPublicRowIO(t *testing.T) {
	d, err := hbmrh.Open(hbmrh.SmallChip())
	if err != nil {
		t.Fatal(err)
	}
	b := hbmrh.BankAddr{Channel: 2, PseudoChannel: 1, Bank: 3}
	row := make([]byte, d.Geometry().RowBytes())
	for i := range row {
		row[i] = byte(i)
	}
	if err := hbmrh.WriteRow(d, b, 7, row); err != nil {
		t.Fatal(err)
	}
	got, err := hbmrh.ReadRow(d, b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if hbmrh.CountMismatches(got, row) != 0 {
		t.Fatal("round trip corrupted data")
	}
}

func TestPublicProgramAssembly(t *testing.T) {
	d, err := hbmrh.Open(hbmrh.SmallChip())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := hbmrh.AssembleProgram("mrs 0 4 0x0\nref 0 0\n", d.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	r := hbmrh.NewBenderRunner(d)
	if _, err := r.Run(d, d.Geometry(), prog); err != nil {
		t.Fatal(err)
	}
	text := hbmrh.DisassembleProgram(prog)
	if !strings.Contains(text, "ref 0 0") {
		t.Fatalf("disassembly wrong: %q", text)
	}
}

func TestPublicThermalRig(t *testing.T) {
	d, err := hbmrh.Open(hbmrh.SmallChip())
	if err != nil {
		t.Fatal(err)
	}
	ctl := hbmrh.NewThermalController(d, 25)
	if err := ctl.SettleTo(85, 0.5, 5, 600); err != nil {
		t.Fatal(err)
	}
	if got := d.Temperature(); got < 84 || got > 86 {
		t.Fatalf("device at %.2f C after settling to 85", got)
	}
}

func TestPublicTRRStudy(t *testing.T) {
	s, err := hbmrh.RunTRRStudy(hbmrh.TRRStudyOptions{
		Cfg:  hbmrh.SmallChip(),
		Bank: hbmrh.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Periodic || s.Period != 17 {
		t.Fatalf("period (%d, %v), want (17, true)", s.Period, s.Periodic)
	}
}

func TestPublicRetentionProfiler(t *testing.T) {
	d, err := hbmrh.Open(hbmrh.SmallChip())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hbmrh.NewHarness(d); err != nil { // disables ECC
		t.Fatal(err)
	}
	p := hbmrh.NewRetentionProfiler(d)
	T, err := p.RowRetention(hbmrh.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if T <= 0 {
		t.Fatal("non-positive retention time")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(hbmrh.Experiments()) != 9 {
		t.Fatalf("registry has %d experiments", len(hbmrh.Experiments()))
	}
	if _, err := hbmrh.LookupExperiment("multichip"); err != nil {
		t.Fatal(err)
	}
	// Run a two-shard rowpress through the facade, serialize the shards,
	// and merge them back through the file-level API (glob expansion and
	// canonical ordering included).
	dir := t.TempDir()
	opts := hbmrh.ExperimentOptions{Cfg: hbmrh.SmallChip(), Rows: 2, Hammers: 30000}
	single, err := hbmrh.RunExperiment("rowpress", opts)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		o := opts
		o.Shard, o.ShardCount = s, 2
		a, err := hbmrh.RunExperiment("rowpress", o)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.WriteFile(filepath.Join(dir, fmt.Sprintf("shard%d.json", s))); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := hbmrh.MergeShardFiles([]string{filepath.Join(dir, "shard*.json")})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("merged shard files differ from the single-process artifact")
	}
	if out := hbmrh.RenderExperimentArtifact(merged); !strings.Contains(out, "hold_x") {
		t.Fatalf("render missing hold points:\n%s", out)
	}
}
