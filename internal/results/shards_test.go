package results

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/stats"
)

// pointArtifact builds a point-axis artifact over every point in points,
// with samples only for the job slice [lo, hi) — the shape a sharded
// setpoint study (tempsweep, rowpress) emits: the full group set with
// unmeasured groups left empty.
func pointArtifact(points []string, lo, hi int) *Artifact {
	a := &Artifact{
		Meta: Meta{
			Format:      FormatVersion,
			Tool:        "test-points",
			CodeVersion: "test-build",
			ConfigHash:  "deadbeef",
			GroupBy:     ByPoint.String(),
			SeedFirst:   42,
			SeedCount:   1,
			ShardCount:  1,
			JobAxis:     "point",
			JobFirst:    lo,
			JobCount:    hi - lo,
			JobKeys:     append([]string{}, points[lo:hi]...),
			Params:      map[string]string{"rows": "4"},
		},
	}
	for _, p := range points {
		a.Groups = append(a.Groups, Group{
			Key:     Key{Channel: NoChannel, Point: p},
			Metrics: []Metric{{Name: "value", Stream: stats.NewStream(0, 100)}},
		})
	}
	for i := lo; i < hi; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		for k := 0; k < 4; k++ {
			a.Groups[i].Metrics[0].Stream.Add(rng.Float64() * 100)
		}
	}
	return a
}

var testPoints = []string{"t=55C", "t=65C", "t=75C", "t=85C", "t=95C"}

func TestPointShardMergeEqualsSingleRun(t *testing.T) {
	single := pointArtifact(testPoints, 0, 5)
	merged := pointArtifact(testPoints, 0, 2)
	for _, shard := range []*Artifact{pointArtifact(testPoints, 2, 3), pointArtifact(testPoints, 3, 5)} {
		if err := Merge(merged, shard); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Meta.JobFirst != 0 || merged.Meta.JobCount != 5 {
		t.Fatalf("merged job slice [%d,+%d)", merged.Meta.JobFirst, merged.Meta.JobCount)
	}
	if !reflect.DeepEqual(merged.Meta.JobKeys, testPoints) {
		t.Fatalf("merged job keys %v", merged.Meta.JobKeys)
	}
	if merged.Meta.Shard != 0 || merged.Meta.ShardCount != 1 {
		t.Fatalf("merged artifact not normalized: shard %d/%d", merged.Meta.Shard, merged.Meta.ShardCount)
	}
	js, err := single.SummaryJSON(ByPoint)
	if err != nil {
		t.Fatal(err)
	}
	jm, err := merged.SummaryJSON(ByPoint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jm) {
		t.Fatalf("merged JSON differs from single run:\n%s\nvs\n%s", js, jm)
	}
	hs, rs, err := single.SummaryCSV(ByPoint)
	if err != nil {
		t.Fatal(err)
	}
	hm, rm, err := merged.SummaryCSV(ByPoint)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hs, hm) || !reflect.DeepEqual(rs, rm) {
		t.Fatalf("merged CSV differs from single run")
	}
	if hs[0] != "point" {
		t.Fatalf("point CSV key column %q", hs[0])
	}
}

func TestPointShardMergeConflicts(t *testing.T) {
	cases := map[string]struct {
		a, b    *Artifact
		wantErr string
	}{
		"same shard twice": {
			a: pointArtifact(testPoints, 0, 2), b: pointArtifact(testPoints, 0, 2),
			wantErr: "present in both",
		},
		"job gap": {
			a: pointArtifact(testPoints, 0, 2), b: pointArtifact(testPoints, 3, 5),
			wantErr: "not contiguous",
		},
		"descending order": {
			a: pointArtifact(testPoints, 2, 5), b: pointArtifact(testPoints, 0, 2),
			wantErr: "not contiguous",
		},
		"different chip": {
			a: pointArtifact(testPoints, 0, 2),
			b: func() *Artifact {
				b := pointArtifact(testPoints, 2, 5)
				b.Meta.SeedFirst = 7
				return b
			}(),
			wantErr: "different seed ranges",
		},
		"axis skew": {
			a: pointArtifact(testPoints, 0, 2),
			b: func() *Artifact {
				b := pointArtifact(testPoints, 2, 5)
				b.Meta.JobAxis = "temp"
				return b
			}(),
			wantErr: "planning axes",
		},
		"seed axis with job slice": {
			a: func() *Artifact {
				a := pointArtifact(testPoints, 0, 2)
				a.Meta.JobAxis = AxisSeed
				return a
			}(),
			b: func() *Artifact {
				b := pointArtifact(testPoints, 2, 5)
				b.Meta.JobAxis = AxisSeed
				return b
			}(),
			wantErr: "seed-range provenance",
		},
	}
	for name, tc := range cases {
		err := Merge(tc.a, tc.b)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", name, err, tc.wantErr)
		}
	}
}

func TestExpandShardArgs(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"s1.json", "s0.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Directory: every .json inside, sorted.
	paths, err := ExpandShardArgs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "s0.json"), filepath.Join(dir, "s1.json")}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("dir expansion %v, want %v", paths, want)
	}
	// Glob: matches sorted.
	paths, err = ExpandShardArgs([]string{filepath.Join(dir, "s*.json")})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("glob expansion %v, want %v", paths, want)
	}
	// Literal path passes through untouched (even if missing; the reader
	// reports it with the file name).
	paths, err = ExpandShardArgs([]string{"missing.json"})
	if err != nil || !reflect.DeepEqual(paths, []string{"missing.json"}) {
		t.Fatalf("literal expansion %v, %v", paths, err)
	}
	// A glob matching nothing is an error naming the pattern.
	if _, err := ExpandShardArgs([]string{filepath.Join(dir, "z*.json")}); err == nil || !strings.Contains(err.Error(), "z*.json") {
		t.Fatalf("empty glob: %v", err)
	}
	// A directory with no artifacts is an error naming the directory.
	empty := t.TempDir()
	if _, err := ExpandShardArgs([]string{empty}); err == nil || !strings.Contains(err.Error(), empty) {
		t.Fatalf("empty dir: %v", err)
	}
}

func TestReadShardsNamesOffendingFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := pointArtifact(testPoints, 0, 2).WriteFile(good); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadShards([]string{good, bad}); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("want error naming bad.json, got %v", err)
	}
}

func TestMergeShardsOrderIndependent(t *testing.T) {
	write := func(dir string, lo, hi int, name string) string {
		path := filepath.Join(dir, name)
		if err := pointArtifact(testPoints, lo, hi).WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	dir := t.TempDir()
	p0 := write(dir, 0, 2, "a.json")
	p1 := write(dir, 2, 3, "b.json")
	p2 := write(dir, 3, 5, "c.json")
	// Shuffled argument order must not matter: MergeShards sorts by slice.
	shards, paths, err := ReadShards([]string{p2, p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeShards(shards, paths)
	if err != nil {
		t.Fatal(err)
	}
	single := pointArtifact(testPoints, 0, 5)
	js, _ := single.SummaryJSON(ByPoint)
	jm, err := merged.SummaryJSON(ByPoint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jm) {
		t.Fatal("shuffled merge diverged from single run")
	}
	// A conflicting set names the offending file.
	shards, paths, err = ReadShards([]string{p0, p0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(shards, paths); err == nil || !strings.Contains(err.Error(), "a.json") {
		t.Fatalf("want error naming a.json, got %v", err)
	}
}

// FuzzShardRange pins the partition invariants for arbitrary inputs:
// valid (n, of) pairs cover [0, n) contiguously and disjointly with
// shard sizes differing by at most one, and degenerate inputs yield the
// empty range instead of panicking or escaping [0, n).
func FuzzShardRange(f *testing.F) {
	f.Add(32, 4)
	f.Add(5, 8) // n < of: some shards empty
	f.Add(0, 3)
	f.Add(-4, 2)
	f.Add(7, 0)
	f.Add(1, 1)
	f.Fuzz(func(t *testing.T, n, of int) {
		// Bound the work (and the n*of products) without losing shape
		// coverage.
		if n > 1<<12 {
			n = n % (1 << 12)
		}
		if of > 1<<8 {
			of = of % (1 << 8)
		}
		// Out-of-range shard indexes are empty, never panics.
		for _, s := range []int{-1, of, of + 3} {
			if lo, hi := ShardRange(n, s, of); lo != 0 || hi != 0 {
				t.Fatalf("ShardRange(%d, %d, %d) = [%d,%d), want empty", n, s, of, lo, hi)
			}
		}
		if of < 1 || n < 0 {
			if lo, hi := ShardRange(n, 0, of); lo != 0 || hi != 0 {
				t.Fatalf("degenerate ShardRange(%d, 0, %d) = [%d,%d), want empty", n, of, lo, hi)
			}
			return
		}
		prevHi := 0
		minSize, maxSize := n+1, -1
		for s := 0; s < of; s++ {
			lo, hi := ShardRange(n, s, of)
			if lo != prevHi {
				t.Fatalf("n=%d of=%d: shard %d = [%d,%d), previous ended at %d", n, of, s, lo, hi, prevHi)
			}
			if hi < lo {
				t.Fatalf("n=%d of=%d: shard %d inverted [%d,%d)", n, of, s, lo, hi)
			}
			size := hi - lo
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			prevHi = hi
		}
		if prevHi != n {
			t.Fatalf("n=%d of=%d: shards cover [0,%d), want [0,%d)", n, of, prevHi, n)
		}
		if of <= n && minSize == 0 {
			t.Fatalf("n=%d of=%d: empty shard despite n >= of", n, of)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("n=%d of=%d: shard sizes span %d..%d", n, of, minSize, maxSize)
		}
	})
}

func TestParseShardFlag(t *testing.T) {
	if s, of, err := ParseShardFlag(""); s != 0 || of != 0 || err != nil {
		t.Fatalf("empty flag: %d/%d, %v", s, of, err)
	}
	if s, of, err := ParseShardFlag("2/8"); s != 2 || of != 8 || err != nil {
		t.Fatalf("2/8: %d/%d, %v", s, of, err)
	}
	for _, bad := range []string{"junk", "1/", "/4", "4/4", "-1/4", "0/0", "01/4", "1/4x"} {
		if _, _, err := ParseShardFlag(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
