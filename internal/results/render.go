package results

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"github.com/safari-repro/hbmrh/internal/stats"
)

// Renderers: every driver that emits an Artifact shares these summary
// exports, replacing the per-driver ad-hoc CSV/JSON emitters. All output
// is deterministic — fixed column and field order, full-precision 'g'
// floats — so byte-comparing a merged shard run against a single-process
// run is meaningful.

// SummaryCSV renders the artifact's distributions at the requested axis
// as CSV-ready headers and rows: the axis' key columns, the metric name,
// and the box-and-whiskers summary. Metrics with no samples (e.g.
// HCfirst when no row flipped) are skipped.
func (a *Artifact) SummaryCSV(gb GroupBy) (headers []string, rows [][]string, err error) {
	groups, err := a.View(gb)
	if err != nil {
		return nil, nil, err
	}
	headers, rows = SummaryCSVGroups(gb, groups)
	return headers, rows, nil
}

// SummaryCSVGroups is SummaryCSV over an already-derived view, for
// callers that memoize views (experiments.MultiChipStudy.Groups).
func SummaryCSVGroups(gb GroupBy, groups []Group) (headers []string, rows [][]string) {
	var keyCols []string
	switch gb {
	case ByRegion:
		keyCols = []string{"region"}
	case ByChannel:
		keyCols = []string{"channel"}
	case ByRegionChannel:
		keyCols = []string{"region", "channel"}
	case ByPoint:
		keyCols = []string{"point"}
	}
	headers = append(append([]string{}, keyCols...),
		"metric", "n", "min", "q1", "median", "q3", "max", "mean", "stddev")
	for _, g := range groups {
		var key []string
		if gb == ByRegion || gb == ByRegionChannel {
			key = append(key, g.Key.Region)
		}
		if gb == ByChannel || gb == ByRegionChannel {
			key = append(key, strconv.Itoa(g.Key.Channel))
		}
		if gb == ByPoint {
			key = append(key, g.Key.Point)
		}
		for _, m := range g.Metrics {
			if m.Stream.N() == 0 {
				continue
			}
			sum := m.Stream.Summary()
			rows = append(rows, append(append([]string{}, key...),
				m.Name,
				strconv.Itoa(sum.N),
				fmtG(sum.Min), fmtG(sum.Q1), fmtG(sum.Median), fmtG(sum.Q3),
				fmtG(sum.Max), fmtG(sum.Mean), fmtG(sum.StdDev),
			))
		}
	}
	return headers, rows
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// summaryJSON pins the export schema to snake_case independently of
// stats.Summary's Go field names, so a rename there cannot silently
// change the JSON format.
type summaryJSON struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	// QuantileTolerance is the stream's sketch resolution (one bin width):
	// the quartiles above are estimates within this bound of the
	// nearest-rank empirical quantile. Omitted (zero) while the stream is
	// exact and the quartiles carry no estimator error.
	QuantileTolerance float64 `json:"quantile_tolerance,omitempty"`
}

func toSummaryJSON(sum stats.Summary, tol float64) *summaryJSON {
	return &summaryJSON{
		N: sum.N, Min: sum.Min, Q1: sum.Q1, Median: sum.Median,
		Q3: sum.Q3, Max: sum.Max, Mean: sum.Mean, StdDev: sum.StdDev,
		QuantileTolerance: tol,
	}
}

// SummaryJSON renders the artifact's provenance, chip records and
// distribution summaries at the requested axis as deterministic indented
// JSON (fixed field order, metrics sorted by name, trailing newline).
// Unlike the artifact file, it carries rendered summaries rather than
// accumulator state: it is the human/report export, not the merge input.
func (a *Artifact) SummaryJSON(gb GroupBy) ([]byte, error) {
	groups, err := a.View(gb)
	if err != nil {
		return nil, err
	}
	return a.SummaryJSONGroups(groups)
}

// SummaryJSONGroups is SummaryJSON over an already-derived view, for
// callers that memoize views (experiments.MultiChipStudy.Groups).
func (a *Artifact) SummaryJSONGroups(groups []Group) ([]byte, error) {
	type groupJSON struct {
		Region  string                  `json:"region,omitempty"`
		Channel *int                    `json:"channel,omitempty"`
		Point   string                  `json:"point,omitempty"`
		Metrics map[string]*summaryJSON `json:"metrics"`
	}
	out := struct {
		Meta   Meta         `json:"meta"`
		Chips  []ChipRecord `json:"chips,omitempty"`
		Groups []groupJSON  `json:"groups"`
	}{
		Meta:   a.Meta,
		Chips:  a.Chips,
		Groups: make([]groupJSON, 0, len(groups)),
	}
	for _, g := range groups {
		gj := groupJSON{Region: g.Key.Region, Point: g.Key.Point, Metrics: map[string]*summaryJSON{}}
		if g.Key.Channel != NoChannel {
			ch := g.Key.Channel
			gj.Channel = &ch
		}
		for _, m := range g.Metrics {
			if m.Stream.N() > 0 {
				gj.Metrics[m.Name] = toSummaryJSON(m.Stream.Summary(), m.Stream.QuantileTolerance())
			}
		}
		out.Groups = append(out.Groups, gj)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// RenderGroups renders a view's distributions in the fleet report style,
// one line per non-empty metric, with an optional per-metric display
// scale (e.g. BER fraction to percent). scale may be nil.
func RenderGroups(groups []Group, label func(name string) string, scale func(name string) float64) string {
	out := ""
	for _, g := range groups {
		for _, m := range g.Metrics {
			if m.Stream.N() == 0 {
				continue
			}
			sum := m.Stream.Summary()
			if scale != nil {
				if k := scale(m.Name); k != 0 && k != 1 {
					sum = scaledSummary(sum, k)
				}
			}
			out += fmt.Sprintf("%-22s %-8s %s\n", g.Key.Label(), label(m.Name), sum)
		}
	}
	return out
}

// scaledSummary multiplies a summary's value fields for display without
// touching N.
func scaledSummary(sum stats.Summary, k float64) stats.Summary {
	sum.Min *= k
	sum.Q1 *= k
	sum.Median *= k
	sum.Q3 *= k
	sum.Max *= k
	sum.Mean *= k
	sum.StdDev *= k
	return sum
}

// WriteFile writes the artifact file (MarshalIndented) to path; "-"
// writes to stdout.
func (a *Artifact) WriteFile(path string) error {
	buf, err := a.MarshalIndented()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// ReadFile loads and validates an artifact file.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
