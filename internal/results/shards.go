package results

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Shard collection helpers shared by every merge CLI: expand user
// arguments (files, globs, directories) into artifact paths, load each
// with an error message naming the offending file, and merge the set in
// canonical order.

// ParseShardFlag parses a CLI -shard value of the form I/N and
// validates the index range. The empty string means unsharded and
// returns (0, 0); callers treat a zero count as "the whole plan".
func ParseShardFlag(s string) (shard, of int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &shard, &of); err != nil || fmt.Sprintf("%d/%d", shard, of) != s {
		return 0, 0, fmt.Errorf("results: shard %q: want I/N, e.g. 0/4", s)
	}
	if of < 1 || shard < 0 || shard >= of {
		return 0, 0, fmt.Errorf("results: shard %q: shard index must be in [0, N)", s)
	}
	return shard, of, nil
}

// ExpandShardArgs resolves merge arguments into artifact file paths. An
// argument that is a directory contributes every *.json file directly
// inside it (sorted); an argument containing glob metacharacters is
// expanded with filepath.Glob; anything else is taken as a literal file
// path. Errors name the argument that failed, and an argument that
// matches nothing is an error rather than a silent no-op.
func ExpandShardArgs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		if st, err := os.Stat(arg); err == nil && st.IsDir() {
			entries, err := os.ReadDir(arg)
			if err != nil {
				return nil, fmt.Errorf("results: shard directory %s: %w", arg, err)
			}
			found := 0
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
					out = append(out, filepath.Join(arg, e.Name()))
					found++
				}
			}
			if found == 0 {
				return nil, fmt.Errorf("results: shard directory %s contains no .json artifacts", arg)
			}
			continue
		}
		if strings.ContainsAny(arg, "*?[") {
			matches, err := filepath.Glob(arg)
			if err != nil {
				return nil, fmt.Errorf("results: shard pattern %q: %w", arg, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("results: shard pattern %q matches no files", arg)
			}
			sort.Strings(matches)
			out = append(out, matches...)
			continue
		}
		out = append(out, arg)
	}
	return out, nil
}

// ReadShards expands the arguments and loads every artifact, reporting
// the first failure with the path of the shard that caused it.
func ReadShards(args []string) ([]*Artifact, []string, error) {
	paths, err := ExpandShardArgs(args)
	if err != nil {
		return nil, nil, err
	}
	shards := make([]*Artifact, 0, len(paths))
	for _, path := range paths {
		a, err := ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("results: reading shard %s: %w", path, err)
		}
		shards = append(shards, a)
	}
	return shards, paths, nil
}

// MergeShards merges a loaded shard set into one artifact. Shards are
// ordered canonically first — by seed range on the seed axis, by job
// slice otherwise — so the result is independent of argument and glob
// order. A merge failure names the two shard files involved. The input
// artifacts are consumed (the first becomes the merge target).
func MergeShards(shards []*Artifact, paths []string) (*Artifact, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("results: no shard artifacts to merge")
	}
	if len(paths) != len(shards) {
		return nil, fmt.Errorf("results: %d shard paths for %d artifacts", len(paths), len(shards))
	}
	order := make([]int, len(shards))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := &shards[order[i]].Meta, &shards[order[j]].Meta
		if a.SeedFirst != b.SeedFirst {
			return a.SeedFirst < b.SeedFirst
		}
		return a.JobFirst < b.JobFirst
	})
	merged, mergedPath := shards[order[0]], paths[order[0]]
	for _, idx := range order[1:] {
		if err := Merge(merged, shards[idx]); err != nil {
			return nil, fmt.Errorf("merging %s into %s: %w", paths[idx], mergedPath, err)
		}
		mergedPath = mergedPath + "+" + filepath.Base(paths[idx])
	}
	return merged, nil
}
