// Package results is the unified results layer of the study drivers: a
// typed, serializable artifact schema for aggregated distributions.
//
// An Artifact names its aggregation axis (per region, per channel, or
// region×channel — the paper's first-order axis is per channel), carries
// the provenance that makes merging safe (config hash, seed range, code
// version, format version), and holds one streaming accumulator
// (stats.Stream) per group and metric. Because the accumulators merge
// order-independently bit for bit, N shard artifacts produced on N
// machines and merged with Merge render byte-identical summaries to a
// single-process run over the union of their seed ranges — the property
// that turns chipscan into a distributable fleet tool.
//
// The schema is deliberately driver-agnostic: the multi-chip study emits
// its fleet aggregates through it, and the figure drivers that produce
// distributions (the Figs. 3-5 sweep, the Fig. 6 bank scatter) emit the
// same shape, so every summary export in the repo shares one CSV/JSON
// renderer and one merge path.
//
// Sharding has two regimes (DESIGN.md §7, §9): seed-axis artifacts
// carry contiguous seed-range provenance, while every other axis
// carries its job-slice provenance (JobAxis/JobFirst/JobCount/JobKeys)
// with contiguity and disjoint-key checks. ShardRange computes the
// canonical contiguous partition all processes agree on, and
// MergeShards folds shard files in canonical order — the merge path
// under `characterize merge` and the fleet coordinator alike.
package results

import (
	"encoding/json"
	"fmt"
	"runtime/debug"

	"github.com/safari-repro/hbmrh/internal/stats"
)

// FormatVersion is the artifact schema version. Merge refuses artifacts
// of a different version; bump it on any incompatible schema change.
// Version 2 added the planning-axis provenance (Meta.JobAxis/JobFirst/
// JobCount/JobKeys, Key.Point) and its merge conflict checks.
const FormatVersion = 2

// AxisSeed is the Meta.JobAxis value of fleet scans sharded by chip
// seed, where SeedFirst/SeedCount carry the provenance and merges check
// seed-range contiguity instead of job slices.
const AxisSeed = "seed"

// GroupBy selects an aggregation axis.
type GroupBy int

const (
	// ByRegion groups by paper region (first/middle/last), the seed
	// state's only axis.
	ByRegion GroupBy = iota
	// ByChannel groups by HBM2 channel, the paper's first-order
	// vulnerability axis.
	ByChannel
	// ByRegionChannel is the finest axis: one group per region×channel
	// cell. Artifacts store this axis; coarser views derive from it.
	ByRegionChannel
	// ByPoint groups by sweep point: the axis of experiments whose unit
	// is not a spatial cell — a temperature setpoint, a hold-time
	// multiplier, a TRR probe arm. Point artifacts support no other view.
	ByPoint
)

// String returns the canonical flag spelling of the axis.
func (g GroupBy) String() string {
	switch g {
	case ByRegion:
		return "region"
	case ByChannel:
		return "channel"
	case ByRegionChannel:
		return "region-channel"
	case ByPoint:
		return "point"
	}
	return fmt.Sprintf("groupby(%d)", int(g))
}

// ParseGroupBy parses the flag spelling produced by String.
func ParseGroupBy(s string) (GroupBy, error) {
	switch s {
	case "region":
		return ByRegion, nil
	case "channel":
		return ByChannel, nil
	case "region-channel":
		return ByRegionChannel, nil
	case "point":
		return ByPoint, nil
	}
	return 0, fmt.Errorf("results: unknown group-by axis %q (want region, channel, region-channel or point)", s)
}

// Key identifies one aggregation group. Region is "" when the axis has no
// region component; Channel is -1 when it has no channel component; Point
// is "" except on the point axis, where it names the sweep point and the
// other components are empty.
type Key struct {
	Region  string `json:"region,omitempty"`
	Channel int    `json:"channel"`
	Point   string `json:"point,omitempty"`
}

// NoChannel is the Key.Channel sentinel for axes without a channel
// component.
const NoChannel = -1

// Label renders the key for reports ("region first", "channel 3",
// "region first ch3", or the point name verbatim).
func (k Key) Label() string {
	switch {
	case k.Point != "":
		return k.Point
	case k.Region != "" && k.Channel != NoChannel:
		return fmt.Sprintf("region %s ch%d", k.Region, k.Channel)
	case k.Region != "":
		return "region " + k.Region
	default:
		return fmt.Sprintf("channel %d", k.Channel)
	}
}

// Metric is one named distribution of a group.
type Metric struct {
	Name   string        `json:"name"`
	Stream *stats.Stream `json:"stream"`
}

// Group is one aggregation cell: a key plus its metric accumulators in a
// fixed order.
type Group struct {
	Key     Key      `json:"key"`
	Metrics []Metric `json:"metrics"`
}

// ChipRecord is one chip instance's fixed-size headline numbers, carried
// through shard artifacts so a merged fleet report lists every chip.
type ChipRecord struct {
	Seed uint64 `json:"seed"`
	// MinHCFirst is the chip's global minimum HCfirst.
	MinHCFirst int `json:"min_hc_first"`
	// WCDPRatio is the most/least vulnerable channel BER ratio.
	WCDPRatio float64 `json:"wcdp_ratio"`
	// WorstChannel is the channel with the highest mean WCDP BER.
	WorstChannel int `json:"worst_channel"`
	// TRRPeriod is the uncovered mitigation period (0 if aperiodic).
	TRRPeriod int `json:"trr_period"`
}

// Meta is an artifact's provenance: everything Merge must check before
// two artifacts may be combined, plus the seed-range bookkeeping that
// keeps shard unions canonical.
type Meta struct {
	// Format is the schema version (FormatVersion at write time).
	Format int `json:"format"`
	// Tool names the producing driver ("chipscan", "sweep", "fig6");
	// artifacts from different drivers never merge.
	Tool string `json:"tool"`
	// CodeVersion identifies the producing build; shards measured by
	// different code must not merge (the fault model or methodology may
	// have changed between builds).
	CodeVersion string `json:"code_version"`
	// ConfigHash fingerprints the base chip configuration
	// (config.Config.Hash, hex). Shards of one fleet scan share it.
	ConfigHash string `json:"config_hash"`
	// GroupBy is the stored aggregation axis (coarser views derive at
	// render time).
	GroupBy string `json:"group_by"`
	// SeedFirst/SeedCount describe the contiguous seed range this
	// artifact covers. Merge requires ranges to be contiguous and
	// ascending, which makes the merged artifact independent of how the
	// range was sharded.
	SeedFirst uint64 `json:"seed_first"`
	SeedCount int    `json:"seed_count"`
	// Shard/ShardCount record which slice of a sharded run this artifact
	// is (0/1 for unsharded and merged artifacts).
	Shard      int `json:"shard"`
	ShardCount int `json:"shard_count"`
	// JobAxis names the experiment's planning axis — the unit a shard
	// slices: "seed" for fleet scans, "channel"/"bank" for spatial
	// studies, "point" for setpoint sweeps. On the seed axis the
	// SeedFirst/SeedCount range above is the whole provenance and the
	// job fields below stay zero; every other axis shards a study of ONE
	// chip, so merging requires identical seed ranges and contiguous,
	// non-overlapping job slices instead.
	JobAxis string `json:"job_axis,omitempty"`
	// JobFirst/JobCount describe the contiguous job-index slice of the
	// experiment plan this artifact covers (zero on the seed axis).
	JobFirst int `json:"job_first,omitempty"`
	JobCount int `json:"job_count,omitempty"`
	// JobKeys names the covered jobs in index order (the temperature
	// points, hold multipliers, channels...). Merge refuses artifacts
	// whose key sets overlap, which is what catches merging the same
	// shard twice — streams would otherwise double-count silently.
	JobKeys []string `json:"job_keys,omitempty"`
	// Params pins the remaining knobs that must match for a merge to be
	// meaningful (sampling density, hammer count, ...). Keys marshal
	// sorted, so the JSON form is deterministic.
	Params map[string]string `json:"params,omitempty"`
}

// Artifact is one serializable results payload: provenance, per-chip
// records (for chip-granular studies) and the aggregation groups.
type Artifact struct {
	Meta   Meta         `json:"meta"`
	Chips  []ChipRecord `json:"chips,omitempty"`
	Groups []Group      `json:"groups"`
}

// CodeVersion returns the identifier recorded in Meta.CodeVersion: the
// main module's version (with VCS revision when the build stamps one),
// or "dev" for unstamped builds (`go test`, and `go run` without VCS
// stamping). The code-version merge gate is therefore only as strong as
// the build pipeline: distributed fleets should ship a `go build`
// binary, where the VCS revision is stamped and divergent checkouts are
// refused; two unstamped "dev" builds are indistinguishable and merge on
// config-hash/params compatibility alone.
func CodeVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			v += "+" + s.Value
		}
	}
	if v == "" || v == "(devel)" {
		return "dev"
	}
	return v
}

// CompatibleWith reports, as an error, the first reason b cannot merge
// into a: format/tool/code/config/axis/params skew, or structurally
// misaligned groups.
func (a *Artifact) CompatibleWith(b *Artifact) error {
	am, bm := &a.Meta, &b.Meta
	switch {
	case am.Format != bm.Format:
		return fmt.Errorf("results: format version %d vs %d", am.Format, bm.Format)
	case am.Tool != bm.Tool:
		return fmt.Errorf("results: artifacts from different tools: %q vs %q", am.Tool, bm.Tool)
	case am.CodeVersion != bm.CodeVersion:
		return fmt.Errorf("results: artifacts from different builds: %q vs %q", am.CodeVersion, bm.CodeVersion)
	case am.ConfigHash != bm.ConfigHash:
		return fmt.Errorf("results: artifacts of different chip configs: %s vs %s", am.ConfigHash, bm.ConfigHash)
	case am.GroupBy != bm.GroupBy:
		return fmt.Errorf("results: artifacts on different axes: %q vs %q", am.GroupBy, bm.GroupBy)
	case am.JobAxis != bm.JobAxis:
		return fmt.Errorf("results: artifacts on different planning axes: %q vs %q", am.JobAxis, bm.JobAxis)
	}
	if len(am.Params) != len(bm.Params) {
		return fmt.Errorf("results: artifacts with different parameter sets")
	}
	for k, v := range am.Params {
		if bv, ok := bm.Params[k]; !ok || bv != v {
			return fmt.Errorf("results: parameter %q: %q vs %q", k, v, bm.Params[k])
		}
	}
	if len(a.Groups) != len(b.Groups) {
		return fmt.Errorf("results: %d groups vs %d", len(a.Groups), len(b.Groups))
	}
	for i := range a.Groups {
		ga, gb := &a.Groups[i], &b.Groups[i]
		if ga.Key != gb.Key {
			return fmt.Errorf("results: group %d keys differ: %v vs %v", i, ga.Key, gb.Key)
		}
		if len(ga.Metrics) != len(gb.Metrics) {
			return fmt.Errorf("results: group %v metric counts differ", ga.Key)
		}
		for j := range ga.Metrics {
			ma, mb := &ga.Metrics[j], &gb.Metrics[j]
			if ma.Name != mb.Name {
				return fmt.Errorf("results: group %v metric %d: %q vs %q", ga.Key, j, ma.Name, mb.Name)
			}
			if err := ma.Stream.CompatibleWith(mb.Stream); err != nil {
				return fmt.Errorf("results: group %v metric %q: %w", ga.Key, ma.Name, err)
			}
		}
	}
	return nil
}

// Merge folds b into a after verifying compatibility and slice
// provenance. On the seed axis (fleet scans; also artifacts predating
// job provenance) shards must cover contiguous ascending seed ranges
// with no chip appearing twice. On every other planning axis shards
// slice one study of one chip: seed ranges must be identical and the
// job-index slices contiguous with disjoint job keys. The merged
// artifact covers the union and is normalized to an unsharded view
// (Shard 0/1), so merging all shards of a run reproduces the
// single-process artifact's metadata. On error a is left unmodified.
func Merge(a, b *Artifact) error {
	if err := a.CompatibleWith(b); err != nil {
		return err
	}
	am, bm := &a.Meta, &b.Meta
	jobSliced := am.JobCount > 0 || bm.JobCount > 0
	if jobSliced && am.JobAxis == AxisSeed {
		return fmt.Errorf("results: seed-axis artifacts must carry seed-range provenance, not job slices")
	}
	if jobSliced {
		if am.SeedFirst != bm.SeedFirst || am.SeedCount != bm.SeedCount {
			return fmt.Errorf("results: %s-axis shards of different seed ranges: [%d,+%d) vs [%d,+%d)",
				am.JobAxis, am.SeedFirst, am.SeedCount, bm.SeedFirst, bm.SeedCount)
		}
		keys := make(map[string]bool, len(am.JobKeys))
		for _, k := range am.JobKeys {
			keys[k] = true
		}
		for _, k := range bm.JobKeys {
			if keys[k] {
				return fmt.Errorf("results: job %q present in both artifacts (same shard merged twice?)", k)
			}
		}
		if bm.JobFirst != am.JobFirst+am.JobCount {
			return fmt.Errorf("results: job slices not contiguous: [%d,+%d) then [%d,+%d) — merge shards in ascending job order with no gaps",
				am.JobFirst, am.JobCount, bm.JobFirst, bm.JobCount)
		}
	} else if bm.SeedFirst != am.SeedFirst+uint64(am.SeedCount) {
		return fmt.Errorf("results: seed ranges not contiguous: [%d,+%d) then [%d,+%d) — merge shards in ascending seed order with no gaps",
			am.SeedFirst, am.SeedCount, bm.SeedFirst, bm.SeedCount)
	}
	seen := make(map[uint64]bool, len(a.Chips))
	for _, c := range a.Chips {
		seen[c.Seed] = true
	}
	for _, c := range b.Chips {
		if seen[c.Seed] {
			return fmt.Errorf("results: chip seed %#x present in both artifacts", c.Seed)
		}
	}
	for i := range a.Groups {
		for j := range a.Groups[i].Metrics {
			a.Groups[i].Metrics[j].Stream.Merge(b.Groups[i].Metrics[j].Stream)
		}
	}
	a.Chips = append(a.Chips, b.Chips...)
	if jobSliced {
		am.JobCount += bm.JobCount
		am.JobKeys = append(am.JobKeys, bm.JobKeys...)
	} else {
		am.SeedCount += bm.SeedCount
	}
	am.Shard, am.ShardCount = 0, 1
	return nil
}

// MergeGroups folds src's streams into dst without metadata checks; the
// group structures must align (the in-process fold of one study, where
// every per-chip group set comes from the same allocator). It panics on
// structural mismatch, like stats.Stream.Merge.
func MergeGroups(dst, src []Group) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("results: merging misaligned group sets: %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		if dst[i].Key != src[i].Key || len(dst[i].Metrics) != len(src[i].Metrics) {
			panic(fmt.Sprintf("results: merging misaligned group %d: %v vs %v", i, dst[i].Key, src[i].Key))
		}
		for j := range dst[i].Metrics {
			dst[i].Metrics[j].Stream.Merge(src[i].Metrics[j].Stream)
		}
	}
}

// View derives the artifact's groups at the requested axis. The stored
// axis is returned as-is; coarser axes merge the stored region×channel
// streams in canonical order (regions in stored order, channels
// ascending), so a view is as deterministic as the artifact itself.
func (a *Artifact) View(gb GroupBy) ([]Group, error) {
	stored, err := ParseGroupBy(a.Meta.GroupBy)
	if err != nil {
		return nil, err
	}
	if gb == stored {
		return a.Groups, nil
	}
	if stored != ByRegionChannel {
		return nil, fmt.Errorf("results: artifact stores axis %q; only region-channel artifacts support other views", a.Meta.GroupBy)
	}
	var coarse func(Key) Key
	switch gb {
	case ByRegion:
		coarse = func(k Key) Key { return Key{Region: k.Region, Channel: NoChannel} }
	case ByChannel:
		coarse = func(k Key) Key { return Key{Channel: k.Channel} }
	default:
		return nil, fmt.Errorf("results: cannot derive view %v", gb)
	}
	idx := map[Key]int{}
	var out []Group
	for _, g := range a.Groups {
		key := coarse(g.Key)
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			ms := make([]Metric, len(g.Metrics))
			for j, m := range g.Metrics {
				ms[j] = Metric{Name: m.Name, Stream: m.Stream.Clone()}
			}
			out = append(out, Group{Key: key, Metrics: ms})
			continue
		}
		if len(out[i].Metrics) != len(g.Metrics) {
			return nil, fmt.Errorf("results: group %v metric sets differ across cells", key)
		}
		for j, m := range g.Metrics {
			if out[i].Metrics[j].Name != m.Name {
				return nil, fmt.Errorf("results: group %v metric order differs across cells", key)
			}
			out[i].Metrics[j].Stream.Merge(m.Stream)
		}
	}
	return out, nil
}

// Clone returns a deep copy of the artifact: mutating the copy (further
// Merge folds) never affects the original or anything reachable from it.
// The artifact store's incremental merge clones the published sealed view
// before folding the next shard in, so readers still holding the old
// pointer are never disturbed.
func (a *Artifact) Clone() *Artifact {
	c := &Artifact{Meta: a.Meta}
	c.Meta.JobKeys = append([]string(nil), a.Meta.JobKeys...)
	if a.Meta.Params != nil {
		c.Meta.Params = make(map[string]string, len(a.Meta.Params))
		for k, v := range a.Meta.Params {
			c.Meta.Params[k] = v
		}
	}
	c.Chips = append([]ChipRecord(nil), a.Chips...)
	c.Groups = make([]Group, len(a.Groups))
	for i, g := range a.Groups {
		ms := make([]Metric, len(g.Metrics))
		for j, m := range g.Metrics {
			ms[j] = Metric{Name: m.Name, Stream: m.Stream.Clone()}
		}
		c.Groups[i] = Group{Key: g.Key, Metrics: ms}
	}
	return c
}

// Seal pre-builds every stream's sorted quantile view so subsequent
// renders (SummaryCSV/SummaryJSON and the View they derive) are strictly
// read-only on the streams. The artifact store seals merged views before
// publishing them to concurrent query readers.
func (a *Artifact) Seal() {
	for i := range a.Groups {
		for j := range a.Groups[i].Metrics {
			a.Groups[i].Metrics[j].Stream.Seal()
		}
	}
}

// MarshalIndented renders the artifact as deterministic indented JSON
// (fixed field order, map keys sorted, streams in their versioned wire
// form) with a trailing newline — the artifact file format.
func (a *Artifact) MarshalIndented() ([]byte, error) {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Decode parses an artifact file produced by MarshalIndented (any JSON
// encoding of the schema, strictly speaking) and validates its format
// version and stored axis.
func Decode(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("results: decoding artifact: %w", err)
	}
	if a.Meta.Format != FormatVersion {
		return nil, fmt.Errorf("results: artifact format version %d, this build reads version %d", a.Meta.Format, FormatVersion)
	}
	if _, err := ParseGroupBy(a.Meta.GroupBy); err != nil {
		return nil, err
	}
	for _, g := range a.Groups {
		for _, m := range g.Metrics {
			if m.Stream == nil {
				return nil, fmt.Errorf("results: group %v metric %q has no stream", g.Key, m.Name)
			}
		}
	}
	return &a, nil
}

// ShardRange partitions n items into `of` contiguous shards and returns
// shard's half-open index range [lo, hi). Every item lands in exactly one
// shard and shard sizes differ by at most one; the partition depends only
// on (n, of), so independently launched shard processes agree on it.
//
// Degenerate inputs never panic or return out-of-range slices: a
// non-positive shard count, an out-of-range shard index, or a negative n
// all yield the empty range [0, 0). When n < of, the formula leaves the
// excess shards empty (still covering [0, n) exactly once across the
// valid indexes); callers that consider an empty shard an error must
// check lo == hi themselves.
func ShardRange(n, shard, of int) (lo, hi int) {
	if n < 0 {
		n = 0
	}
	if of < 1 || shard < 0 || shard >= of {
		return 0, 0
	}
	return n * shard / of, n * (shard + 1) / of
}
