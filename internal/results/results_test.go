package results

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/stats"
)

// fineArtifact builds a region×channel artifact over the given seed range
// with deterministic pseudo-samples, shaped like a multichip shard.
func fineArtifact(seedFirst uint64, seedCount int) *Artifact {
	regions := []string{"first", "middle", "last"}
	const channels = 4
	a := &Artifact{
		Meta: Meta{
			Format:      FormatVersion,
			Tool:        "test",
			CodeVersion: "test-build",
			ConfigHash:  "deadbeef",
			GroupBy:     ByRegionChannel.String(),
			SeedFirst:   seedFirst,
			SeedCount:   seedCount,
			ShardCount:  1,
			Params:      map[string]string{"rows": "4"},
		},
	}
	for _, r := range regions {
		for ch := 0; ch < channels; ch++ {
			a.Groups = append(a.Groups, Group{
				Key: Key{Region: r, Channel: ch},
				Metrics: []Metric{
					{Name: "ber", Stream: stats.NewStream(0, 1)},
					{Name: "hc", Stream: stats.NewStream(0, 1000)},
				},
			})
		}
	}
	for s := seedFirst; s < seedFirst+uint64(seedCount); s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		for gi := range a.Groups {
			for k := 0; k < 5; k++ {
				a.Groups[gi].Metrics[0].Stream.Add(rng.Float64())
				a.Groups[gi].Metrics[1].Stream.Add(rng.Float64() * 1000)
			}
		}
		a.Chips = append(a.Chips, ChipRecord{Seed: s, MinHCFirst: int(s * 7), WCDPRatio: 1.5})
	}
	return a
}

func TestArtifactMergeEqualsSingleRun(t *testing.T) {
	single := fineArtifact(10, 8)
	merged := fineArtifact(10, 2)
	for _, shard := range []*Artifact{fineArtifact(12, 3), fineArtifact(15, 3)} {
		if err := Merge(merged, shard); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Meta.SeedFirst != 10 || merged.Meta.SeedCount != 8 {
		t.Fatalf("merged range [%d,+%d)", merged.Meta.SeedFirst, merged.Meta.SeedCount)
	}
	if merged.Meta.Shard != 0 || merged.Meta.ShardCount != 1 {
		t.Fatalf("merged artifact not normalized: shard %d/%d", merged.Meta.Shard, merged.Meta.ShardCount)
	}
	for _, gb := range []GroupBy{ByRegion, ByChannel, ByRegionChannel} {
		hs, rs, err := single.SummaryCSV(gb)
		if err != nil {
			t.Fatal(err)
		}
		hm, rm, err := merged.SummaryCSV(gb)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hs, hm) || !reflect.DeepEqual(rs, rm) {
			t.Errorf("%v: merged CSV differs from single run:\n%v\nvs\n%v", gb, rs, rm)
		}
		js, err := single.SummaryJSON(gb)
		if err != nil {
			t.Fatal(err)
		}
		jm, err := merged.SummaryJSON(gb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js, jm) {
			t.Errorf("%v: merged JSON differs from single run:\n%s\nvs\n%s", gb, js, jm)
		}
	}
}

func TestArtifactMergeConflicts(t *testing.T) {
	base := func() *Artifact { return fineArtifact(0, 2) }
	next := func() *Artifact { return fineArtifact(2, 2) }
	cases := map[string]func(a, b *Artifact){
		"format skew":     func(a, b *Artifact) { b.Meta.Format = FormatVersion + 1 },
		"tool mismatch":   func(a, b *Artifact) { b.Meta.Tool = "other" },
		"code mismatch":   func(a, b *Artifact) { b.Meta.CodeVersion = "other-build" },
		"config mismatch": func(a, b *Artifact) { b.Meta.ConfigHash = "feedface" },
		"axis mismatch":   func(a, b *Artifact) { b.Meta.GroupBy = ByRegion.String() },
		"param mismatch":  func(a, b *Artifact) { b.Meta.Params["rows"] = "8" },
		"param missing":   func(a, b *Artifact) { delete(b.Meta.Params, "rows") },
		"seed gap":        func(a, b *Artifact) { b.Meta.SeedFirst = 5 },
		"seed overlap": func(a, b *Artifact) {
			b.Meta.SeedFirst = 1
			b.Chips[0].Seed = 1
		},
		"group key skew": func(a, b *Artifact) { b.Groups[0].Key.Channel = 9 },
		"metric skew":    func(a, b *Artifact) { b.Groups[0].Metrics[0].Name = "other" },
		"stream domain skew": func(a, b *Artifact) {
			b.Groups[0].Metrics[0].Stream = stats.NewStream(0, 2)
		},
	}
	for name, corrupt := range cases {
		a, b := base(), next()
		corrupt(a, b)
		if err := Merge(a, b); err == nil {
			t.Errorf("%s: merge succeeded", name)
		}
	}
	// Control: the uncorrupted pair merges.
	if err := Merge(base(), next()); err != nil {
		t.Fatalf("control merge failed: %v", err)
	}
}

func TestArtifactViewsDeriveFromFineAxis(t *testing.T) {
	a := fineArtifact(3, 4)
	region, err := a.View(ByRegion)
	if err != nil {
		t.Fatal(err)
	}
	if len(region) != 3 {
		t.Fatalf("%d region groups", len(region))
	}
	if region[0].Key != (Key{Region: "first", Channel: NoChannel}) {
		t.Fatalf("region view key %v", region[0].Key)
	}
	channel, err := a.View(ByChannel)
	if err != nil {
		t.Fatal(err)
	}
	if len(channel) != 4 {
		t.Fatalf("%d channel groups", len(channel))
	}
	if channel[2].Key != (Key{Channel: 2}) {
		t.Fatalf("channel view key %v", channel[2].Key)
	}
	fine, err := a.View(ByRegionChannel)
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) != 12 {
		t.Fatalf("%d fine groups", len(fine))
	}
	// Conservation: every view accounts for every sample.
	total := 0
	for _, g := range fine {
		total += g.Metrics[0].Stream.N()
	}
	for _, view := range [][]Group{region, channel} {
		n := 0
		for _, g := range view {
			n += g.Metrics[0].Stream.N()
		}
		if n != total {
			t.Fatalf("view lost samples: %d vs %d", n, total)
		}
	}
	// Views clone: mutating a view must not corrupt the artifact.
	region[0].Metrics[0].Stream.Add(0.5)
	region2, err := a.View(ByRegion)
	if err != nil {
		t.Fatal(err)
	}
	if region2[0].Metrics[0].Stream.N() == region[0].Metrics[0].Stream.N() {
		t.Fatal("view aliases artifact streams")
	}
}

func TestArtifactFileRoundTrip(t *testing.T) {
	a := fineArtifact(1, 3)
	path := filepath.Join(t.TempDir(), "shard.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("artifact file round trip drifted:\n%+v\nvs\n%+v", a, b)
	}
	// Merging decoded artifacts must behave like merging the originals.
	c := fineArtifact(4, 3)
	if err := Merge(b, c); err != nil {
		t.Fatal(err)
	}
	direct := fineArtifact(1, 3)
	if err := Merge(direct, fineArtifact(4, 3)); err != nil {
		t.Fatal(err)
	}
	js1, err := b.SummaryJSON(ByRegionChannel)
	if err != nil {
		t.Fatal(err)
	}
	js2, err := direct.SummaryJSON(ByRegionChannel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("merge-after-decode diverged from direct merge")
	}
}

func TestArtifactDecodeRejectsBadPayloads(t *testing.T) {
	a := fineArtifact(0, 1)
	good, err := a.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"not json":     []byte("not json"),
		"format skew":  bytes.Replace(good, []byte(fmt.Sprintf(`"format": %d`, FormatVersion)), []byte(`"format": 99`), 1),
		"bad axis":     bytes.Replace(good, []byte(`"group_by": "region-channel"`), []byte(`"group_by": "bank"`), 1),
		"stream skew":  bytes.Replace(good, []byte(`"v": 1`), []byte(`"v": 9`), 1),
		"truncated":    good[:len(good)/2],
		"empty object": []byte("{}"),
	} {
		if bytes.Equal(data, good) {
			t.Fatalf("%s: mutation did not apply", name)
		}
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

func TestShardRangeCoversAllSeedsExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, of int }{{32, 4}, {33, 4}, {5, 8}, {1, 1}, {100, 7}} {
		covered := make([]int, tc.n)
		prevHi := 0
		for s := 0; s < tc.of; s++ {
			lo, hi := ShardRange(tc.n, s, tc.of)
			if lo != prevHi {
				t.Fatalf("n=%d of=%d: shard %d starts at %d, previous ended at %d", tc.n, tc.of, s, lo, prevHi)
			}
			prevHi = hi
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d of=%d: shards end at %d", tc.n, tc.of, prevHi)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d of=%d: seed %d covered %d times", tc.n, tc.of, i, c)
			}
		}
	}
}

func TestGroupByParseRoundTrip(t *testing.T) {
	for _, gb := range []GroupBy{ByRegion, ByChannel, ByRegionChannel, ByPoint} {
		got, err := ParseGroupBy(gb.String())
		if err != nil || got != gb {
			t.Errorf("ParseGroupBy(%q) = %v, %v", gb.String(), got, err)
		}
	}
	if _, err := ParseGroupBy("bank"); err == nil {
		t.Error("unknown axis accepted")
	}
}

func TestKeyLabels(t *testing.T) {
	for _, tc := range []struct {
		key  Key
		want string
	}{
		{Key{Region: "first", Channel: NoChannel}, "region first"},
		{Key{Channel: 3}, "channel 3"},
		{Key{Region: "last", Channel: 7}, "region last ch7"},
		{Key{Channel: NoChannel, Point: "t=55C"}, "t=55C"},
	} {
		if got := tc.key.Label(); got != tc.want {
			t.Errorf("Label(%v) = %q, want %q", tc.key, got, tc.want)
		}
	}
}

func TestRenderGroupsScalesAndSkipsEmpty(t *testing.T) {
	g := []Group{{
		Key: Key{Region: "first", Channel: NoChannel},
		Metrics: []Metric{
			{Name: "ber", Stream: stats.NewStream(0, 1)},
			{Name: "hc", Stream: stats.NewStream(0, 10)},
		},
	}}
	g[0].Metrics[0].Stream.Add(0.5)
	out := RenderGroups(g,
		func(name string) string { return strings.ToUpper(name) },
		func(name string) float64 {
			if name == "ber" {
				return 100
			}
			return 1
		})
	if !strings.Contains(out, "BER") || !strings.Contains(out, "mean=50") {
		t.Fatalf("render missing scaled metric:\n%s", out)
	}
	if strings.Contains(out, "HC") {
		t.Fatalf("render includes empty metric:\n%s", out)
	}
}
