// Package engine is the shared parallel execution engine behind every
// experiment driver. It replaces the per-driver worker pools the drivers
// originally hand-rolled with one scheduler that owns:
//
//   - deterministic work partitioning: a run's jobs are indexed 0..n-1 and
//     results are returned in index order, so the output is byte-identical
//     for Workers=1 and Workers=N as long as each job's result depends only
//     on its index (the drivers' jobs are pure functions of the chip seed
//     and the sharded coordinates — channel, bank, hold time, seed);
//   - a shared-nothing device pool (see DevicePool) that hands each worker
//     its own warmed device and reuses devices across runs instead of
//     re-instantiating a chip per sweep;
//   - context cancellation between jobs and serialized progress callbacks,
//     surfaced through the experiment options and cmd/characterize.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
)

// Progress is one progress update of a running engine job set.
type Progress struct {
	// Done is how many jobs have completed; Total is the job count.
	Done, Total int
}

// ProgressFunc receives progress updates. Calls are serialized and Done is
// strictly increasing, so implementations need no locking of their own.
type ProgressFunc func(Progress)

// Options configures one engine run.
type Options struct {
	// Ctx cancels the run between jobs; nil means context.Background().
	// In-flight jobs finish their current unit before the run returns
	// ctx.Err().
	Ctx context.Context
	// Workers bounds parallelism. <= 0 means GOMAXPROCS, capped at the
	// job count either way. Results never depend on the worker count.
	Workers int
	// OnProgress, if non-nil, is invoked after every completed job.
	OnProgress ProgressFunc
	// Pool supplies warmed devices to MapHarness; nil means SharedPool.
	Pool *DevicePool
}

func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

func (o Options) pool() *DevicePool {
	if o.Pool != nil {
		return o.Pool
	}
	return SharedPool
}

// Map runs fn for every index in [0, n) across the worker pool and returns
// the results in index order. The first job error (lowest recorded index)
// aborts the run; if the context is cancelled before all jobs finish, Map
// returns ctx.Err().
func Map[T any](o Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return mapWorkers(o, n,
		func() (struct{}, func(), error) { return struct{}{}, func() {}, nil },
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) })
}

// MapHarness is Map with a warmed characterization harness per worker,
// leased from the device pool for the duration of the run. Jobs must not
// depend on device history (all Section 4 measurements rewrite their rows
// before hammering, so they do not); retention- or temperature-sensitive
// studies should build fresh devices through Map instead.
func MapHarness[T any](o Options, cfg *config.Config, n int,
	fn func(ctx context.Context, h *core.Harness, i int) (T, error)) ([]T, error) {
	pool := o.pool()
	return mapWorkers(o, n,
		func() (*core.Harness, func(), error) {
			h, err := pool.Get(cfg)
			if err != nil {
				return nil, nil, err
			}
			return h, func() { pool.Put(cfg, h) }, nil
		},
		fn)
}

// mapWorkers is the scheduler core: workers pull indexes from a shared
// counter, each holding worker-local state S built by setup (a pooled
// device, or nothing). Result placement is by index, which is what makes
// the output independent of scheduling.
func mapWorkers[S, T any](o Options, n int,
	setup func() (S, func(), error),
	fn func(ctx context.Context, s S, i int) (T, error)) ([]T, error) {
	ctx := o.context()
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers := o.workers(n)

	results := make([]T, n)
	jobErrs := make([]error, n)
	setupErrs := make([]error, workers)
	var next, done atomic.Int64
	var failed atomic.Bool
	var progressMu sync.Mutex
	reported := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Check for cancellation before paying setup cost (a pool
			// lease can mean a full chip instantiation).
			if failed.Load() || ctx.Err() != nil {
				return
			}
			s, release, err := setup()
			if err != nil {
				setupErrs[w] = err
				failed.Store(true)
				return
			}
			defer release()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := fn(ctx, s, i)
				if err != nil {
					jobErrs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
				d := int(done.Add(1))
				if o.OnProgress != nil {
					progressMu.Lock()
					if d > reported {
						reported = d
						o.OnProgress(Progress{Done: d, Total: n})
					}
					progressMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	for _, err := range jobErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, err := range setupErrs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Flatten concatenates per-job slices in job order, preserving the
// engine's deterministic ordering end to end.
func Flatten[T any](groups [][]T) []T {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]T, 0, total)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
