// Package engine is the shared parallel execution engine behind every
// experiment driver. It replaces the per-driver worker pools the drivers
// originally hand-rolled with one scheduler that owns:
//
//   - deterministic work partitioning: a run's jobs are indexed 0..n-1 and
//     results are returned in index order, so the output is byte-identical
//     for Workers=1 and Workers=N as long as each job's result depends only
//     on its index (the drivers' jobs are pure functions of the chip seed
//     and the sharded coordinates — channel, bank, hold time, seed);
//   - a shared-nothing device pool (see DevicePool) that hands each worker
//     its own warmed device and reuses devices across runs instead of
//     re-instantiating a chip per sweep;
//   - context cancellation between jobs and serialized progress callbacks,
//     surfaced through the experiment options and cmd/characterize.
//
// Two execution shapes share the scheduler: Map materializes every
// result placed by index, and Reduce/ReduceHarness stream results into
// an ordered fold — the fold sees job i before job i+1 behind a bounded
// backpressure window, so streaming aggregation stays deterministic at
// any worker count (DESIGN.md §6). How job indexes reach workers is the
// pluggable planner (Options.Planner, planner.go): shared-counter queue,
// static or size-weighted contiguous blocks, or work stealing. Planner
// choice never changes output, only assignment locality and fold overlap
// (DESIGN.md §9).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
)

// Progress is one progress update of a running engine job set.
type Progress struct {
	// Done is how many jobs have completed; Total is the job count.
	Done, Total int
}

// ProgressFunc receives progress updates. Calls are serialized and Done is
// strictly increasing, so implementations need no locking of their own.
type ProgressFunc func(Progress)

// Options configures one engine run.
type Options struct {
	// Ctx cancels the run between jobs; nil means context.Background().
	// In-flight jobs finish their current unit before the run returns
	// ctx.Err().
	Ctx context.Context
	// Workers bounds parallelism. <= 0 means GOMAXPROCS, capped at the
	// job count either way. Results never depend on the worker count.
	Workers int
	// OnProgress, if non-nil, is invoked after every completed job.
	OnProgress ProgressFunc
	// Pool supplies warmed devices to MapHarness; nil means SharedPool.
	Pool *DevicePool
	// Planner selects how job indexes are assigned to workers. The zero
	// value is PlanQueue. Planner choice never changes a run's output,
	// only its schedule (see Planner).
	Planner Planner
	// Weights, when non-nil, are per-job relative cost estimates for
	// PlanWeighted (other planners ignore them). Length must equal the
	// run's job count.
	Weights []float64
}

func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

func (o Options) pool() *DevicePool {
	if o.Pool != nil {
		return o.Pool
	}
	return SharedPool
}

// Map runs fn for every index in [0, n) across the worker pool and returns
// the results in index order. The first job error (lowest recorded index)
// aborts the run; if the context is cancelled before all jobs finish, Map
// returns ctx.Err().
func Map[T any](o Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, o.context().Err()
	}
	results := make([]T, n)
	err := mapWorkers(o, n, noSetup,
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) },
		func(i int, v T) error { results[i] = v; return nil },
		nil)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// harnessSetup builds the per-worker setup hook MapHarness and
// ReduceHarness share: lease a warmed device from the pool and arm it
// with the run's context so a cancellation aborts mid-measurement.
func harnessSetup(o Options, cfg *config.Config) func() (*core.Harness, func(), error) {
	pool := o.pool()
	ctx := o.context()
	return func() (*core.Harness, func(), error) {
		h, err := pool.Get(cfg)
		if err != nil {
			return nil, nil, err
		}
		// Thread the run's context into the harness measurement loops;
		// Put resets it with the other tunables.
		h.SetContext(ctx)
		return h, func() { pool.Put(cfg, h) }, nil
	}
}

// MapHarness is Map with a warmed characterization harness per worker,
// leased from the device pool for the duration of the run and armed with
// the run's context so a cancellation aborts the harness mid-measurement,
// not just between jobs. Jobs must not depend on device history (all
// Section 4 measurements rewrite their rows before hammering, so they do
// not); retention- or temperature-sensitive studies should build fresh
// devices through Map instead.
func MapHarness[T any](o Options, cfg *config.Config, n int,
	fn func(ctx context.Context, h *core.Harness, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, o.context().Err()
	}
	results := make([]T, n)
	err := mapWorkers(o, n, harnessSetup(o, cfg), fn,
		func(i int, v T) error { results[i] = v; return nil },
		nil)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Reduce runs fn for every index in [0, n) across the worker pool and
// folds each result — in strict index order — into caller state via fold,
// discarding it afterwards. This is the streaming alternative to Map for
// runs whose aggregate is small but whose per-job results (or job count)
// are large: resident memory is the fold state plus O(workers) unfolded
// results, not O(n). The bound is enforced with backpressure, not just
// scheduling luck: a worker whose completed index is more than one window
// (= the worker count) ahead of the fold frontier parks until the frontier
// advances, so a straggling early job cannot make later results pile up.
//
// fold runs serialized and in index order regardless of worker count or
// completion order, so a deterministic fold (e.g. merging streaming
// accumulators) yields byte-identical aggregates at any parallelism. A
// fold error aborts the run like a job error.
//
// Every planner works with Reduce and yields the same output; block
// planners (contiguous, weighted, stealing) assign far-from-frontier
// indexes whose workers park against the window, so the queue planner is
// the right choice when fold overlap matters. The ordered fold can never
// deadlock: planners hand each worker one contiguous remaining block
// consumed from its low end, so the worker owning the frontier's block is
// always computing exactly the frontier index, which the window (>= 1)
// always admits.
func Reduce[T any](o Options, n int, fn func(ctx context.Context, i int) (T, error),
	fold func(i int, v T) error) error {
	return reduceWorkers(o, n, noSetup,
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) },
		fold)
}

// ReduceHarness is Reduce with a warmed harness per worker, leased like
// MapHarness: the streaming entry point for harness-backed studies whose
// per-job results are folded away as they complete. The same MapHarness
// caveat applies: jobs must not depend on device history.
func ReduceHarness[T any](o Options, cfg *config.Config, n int,
	fn func(ctx context.Context, h *core.Harness, i int) (T, error),
	fold func(i int, v T) error) error {
	return reduceWorkers(o, n, harnessSetup(o, cfg), fn, fold)
}

// reduceSlot is one cell of the reorder ring. ready is a generation tag:
// 0 when the cell is empty, i+1 when it holds job i's result. The atomic
// store of ready publishes the plain write of v (and the folder's atomic
// load of ready acquires it), so depositors and the folder never touch a
// cell concurrently without a happens-before edge.
type reduceSlot[T any] struct {
	ready atomic.Int64
	v     T
}

// reduceWorkers is the shared ordered-fold core of Reduce and
// ReduceHarness; see Reduce for the backpressure and determinism
// contract.
//
// The reorder buffer is a lock-free ring of one window's worth of slots
// instead of a single mutex + map: each completed job deposits into slot
// i%window with two atomic ops, and whichever worker deposits the fold
// frontier becomes the folder (a CAS-guarded critical section) and drains
// the ring in index order. The old design serialized every completion —
// including all the out-of-order ones that only needed buffering — behind
// one lock held across fold calls; here out-of-order completions are
// wait-free and only frontier handoff synchronizes. Parking for the
// backpressure window is the slow path and keeps a conventional
// mutex+cond, entered only when a worker is a full window ahead.
func reduceWorkers[S, T any](o Options, n int,
	setup func() (S, func(), error),
	fn func(ctx context.Context, s S, i int) (T, error),
	fold func(i int, v T) error) error {
	window := o.workers(n)
	if window < 1 {
		window = 1
	}
	slots := make([]reduceSlot[T], window)
	var next atomic.Int64    // fold frontier: lowest unfolded index
	var folding atomic.Int32 // 0 = no active folder, 1 = one folder draining
	var aborted atomic.Bool
	var parked atomic.Int32
	var parkMu sync.Mutex
	parkCond := sync.NewCond(&parkMu)

	// wake releases backpressure-parked workers after the frontier moved.
	// The atomic parked counter keeps the common case (nobody parked) to
	// one load; parkers increment it under parkMu before re-checking the
	// window, so a waker that loads parked==0 is guaranteed the parker's
	// re-check will observe the already-advanced frontier.
	wake := func() {
		if parked.Load() > 0 {
			parkMu.Lock()
			parkCond.Broadcast()
			parkMu.Unlock()
		}
	}

	return mapWorkers(o, n, setup, fn,
		func(i int, v T) error {
			idx := int64(i)
			if idx >= next.Load()+int64(window) {
				parkMu.Lock()
				parked.Add(1)
				for idx >= next.Load()+int64(window) && !aborted.Load() {
					parkCond.Wait()
				}
				parked.Add(-1)
				parkMu.Unlock()
				if aborted.Load() {
					return nil // run is unwinding; the fold stops at the failure point
				}
			}
			// Fast path: this deposit IS the fold frontier and no folder
			// is active (the common case when completions arrive roughly
			// in order) — fold directly, skipping the ring round-trip.
			if next.Load() == idx && folding.CompareAndSwap(0, 1) {
				if err := fold(i, v); err != nil {
					// Leave folding set: no later index may fold after an
					// error, matching the abort contract.
					return err
				}
				next.Store(idx + 1)
				wake()
				return drainRing(slots, &next, &folding, int64(window), fold, wake)
			}
			// Admission (i < next+window) guarantees slot i%window was
			// folded and cleared before the frontier advanced past
			// i-window, so the cell is ours alone.
			s := &slots[i%window]
			s.v = v
			s.ready.Store(idx + 1)
			for {
				nx := next.Load()
				if slots[nx%int64(window)].ready.Load() != nx+1 {
					return nil // frontier not deposited; its depositor will fold
				}
				if !folding.CompareAndSwap(0, 1) {
					// An active folder exists; it re-checks the frontier
					// after releasing the flag, so our deposit is covered.
					return nil
				}
				return drainRing(slots, &next, &folding, int64(window), fold, wake)
			}
		},
		func() { // onAbort: wake parked workers so the run can unwind
			aborted.Store(true)
			parkMu.Lock()
			parkCond.Broadcast()
			parkMu.Unlock()
		})
}

// drainRing folds every contiguously deposited slot starting at the
// frontier, then releases the folder flag — re-checking afterwards for a
// deposit that landed the new frontier between the last ring check and
// the release (that depositor saw the flag held and moved on, so the
// releasing folder must pick its work up). The caller must hold the
// folding flag; on a fold error the flag is left set so no later index
// can ever fold, matching the abort contract.
func drainRing[T any](slots []reduceSlot[T], next *atomic.Int64, folding *atomic.Int32,
	window int64, fold func(i int, v T) error, wake func()) error {
	for {
		for {
			nx := next.Load()
			c := &slots[nx%window]
			if c.ready.Load() != nx+1 {
				break
			}
			w := c.v
			var zero T
			c.v = zero
			c.ready.Store(0)
			if err := fold(int(nx), w); err != nil {
				return err
			}
			next.Store(nx + 1)
			wake()
		}
		folding.Store(0)
		nx := next.Load()
		if slots[nx%window].ready.Load() != nx+1 {
			return nil
		}
		if !folding.CompareAndSwap(0, 1) {
			return nil
		}
	}
}

func noSetup() (struct{}, func(), error) { return struct{}{}, func() {}, nil }

// mapWorkers is the scheduler core: workers pull indexes from a shared
// counter, each holding worker-local state S built by setup (a pooled
// device, or nothing). Each completed job's result is handed to place with
// its index — into a results slice (Map) or an ordered fold (Reduce) —
// which is what makes the output independent of scheduling. A place error
// aborts the run like a job error at that index.
//
// onAbort, when non-nil, is invoked exactly once as soon as the run starts
// unwinding (a setup/job/place error, or context cancellation) and in any
// case before mapWorkers returns. A blocking place implementation (the
// reducer's backpressure parking) must use it to release parked workers,
// or an unwinding run would never join.
func mapWorkers[S, T any](o Options, n int,
	setup func() (S, func(), error),
	fn func(ctx context.Context, s S, i int) (T, error),
	place func(i int, v T) error,
	onAbort func()) error {
	ctx := o.context()
	if n <= 0 {
		return ctx.Err()
	}
	if o.Weights != nil && len(o.Weights) != n {
		return fmt.Errorf("engine: %d job weights for %d jobs", len(o.Weights), n)
	}
	workers := o.workers(n)
	assign := o.Planner.plan(n, workers, o.Weights)

	var abortOnce sync.Once
	abort := func() {
		if onAbort != nil {
			abortOnce.Do(onAbort)
		}
	}
	defer abort()
	if onAbort != nil {
		// Watch for cancellation while workers may be parked in place.
		watcherDone := make(chan struct{})
		defer close(watcherDone)
		go func() {
			select {
			case <-ctx.Done():
				abort()
			case <-watcherDone:
			}
		}()
	}

	jobErrs := make([]error, n)
	setupErrs := make([]error, workers)
	var done atomic.Int64
	var failed atomic.Bool
	var progressMu sync.Mutex
	reported := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Check for cancellation before paying setup cost (a pool
			// lease can mean a full chip instantiation).
			if failed.Load() || ctx.Err() != nil {
				return
			}
			s, release, err := setup()
			if err != nil {
				setupErrs[w] = err
				failed.Store(true)
				abort()
				return
			}
			defer release()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i, ok := assign.next(w)
				if !ok {
					return
				}
				r, err := fn(ctx, s, i)
				if err == nil {
					err = place(i, r)
				}
				if err != nil {
					jobErrs[i] = err
					failed.Store(true)
					abort()
					return
				}
				d := int(done.Add(1))
				if o.OnProgress != nil {
					progressMu.Lock()
					if d > reported {
						reported = d
						o.OnProgress(Progress{Done: d, Total: n})
					}
					progressMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	for _, err := range jobErrs {
		if err != nil {
			return err
		}
	}
	for _, err := range setupErrs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Flatten concatenates per-job slices in job order, preserving the
// engine's deterministic ordering end to end.
func Flatten[T any](groups [][]T) []T {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]T, 0, total)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
