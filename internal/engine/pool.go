package engine

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
)

// DevicePool caches warmed simulated devices (wrapped in characterization
// harnesses) keyed by the full configuration contents, so repeated engine
// runs over the same chip design + seed reuse devices instead of paying
// chip instantiation and ECC-disable setup per run. The pool is
// shared-nothing at the worker level: Get hands out exclusive ownership,
// Put returns it; a harness is never used by two workers at once.
//
// Reuse is sound because every per-cell quantity of the simulated chip is
// a pure function of (Seed, coordinates) and the Section 4 measurements
// rewrite their victim and aggressor rows before hammering. Studies whose
// outcome depends on accumulated device state (thermal setpoints, nominal
// refresh cadence, retention decay) must not use the pool.
type DevicePool struct {
	mu   sync.Mutex
	idle map[string][]*core.Harness
	st   PoolStats

	// MaxIdlePerKey caps how many warmed devices are kept per
	// configuration; surplus Puts are dropped for the GC. 0 means
	// GOMAXPROCS.
	MaxIdlePerKey int
}

// PoolStats counts pool traffic; Reused/Created is the warm-hit ratio.
type PoolStats struct {
	// Created counts harnesses built because no idle one matched.
	Created int
	// Reused counts Gets served from the idle set.
	Reused int
	// Dropped counts Puts discarded over MaxIdlePerKey.
	Dropped int
}

// SharedPool is the process-wide pool every engine run uses by default.
var SharedPool = NewDevicePool()

// NewDevicePool returns an empty pool.
func NewDevicePool() *DevicePool {
	return &DevicePool{idle: make(map[string][]*core.Harness)}
}

// key fingerprints the configuration by value, so two configs with equal
// contents (e.g. per-seed copies of the same design sharing a seed) share
// warmed devices regardless of pointer identity.
func (p *DevicePool) key(cfg *config.Config) string {
	return fmt.Sprintf("%+v", *cfg)
}

// Get leases a warmed harness for cfg, building one only when the idle
// set is empty. The caller owns it exclusively until Put.
func (p *DevicePool) Get(cfg *config.Config) (*core.Harness, error) {
	k := p.key(cfg)
	p.mu.Lock()
	if hs := p.idle[k]; len(hs) > 0 {
		h := hs[len(hs)-1]
		p.idle[k] = hs[:len(hs)-1]
		p.st.Reused++
		p.mu.Unlock()
		return h, nil
	}
	p.st.Created++
	p.mu.Unlock()
	return core.NewHarnessFromConfig(cfg)
}

// Put returns a leased harness to the idle set, restoring its tunables to
// the NewHarness defaults so the next lease starts from a known state.
func (p *DevicePool) Put(cfg *config.Config, h *core.Harness) {
	if h == nil {
		return
	}
	h.Reset()
	k := p.key(cfg)
	max := p.MaxIdlePerKey
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[k]) >= max {
		p.st.Dropped++
		return
	}
	p.idle[k] = append(p.idle[k], h)
}

// Stats returns a snapshot of the pool counters.
func (p *DevicePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// Drain empties the idle set, releasing every cached device to the GC.
func (p *DevicePool) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle = make(map[string][]*core.Harness)
}

// DrainConfig releases the idle devices warmed for one configuration.
// Fleet-style sweeps over many chip instances (one config per seed) must
// call this per instance, or every seed's devices stay resident for the
// process lifetime: keys are never evicted, only capped per key.
func (p *DevicePool) DrainConfig(cfg *config.Config) {
	k := p.key(cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.idle, k)
}
