package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
)

// DevicePool caches warmed simulated devices (wrapped in characterization
// harnesses) keyed by the full configuration contents, so repeated engine
// runs over the same chip design + seed reuse devices instead of paying
// chip instantiation and ECC-disable setup per run. The pool is
// shared-nothing at the worker level: Get hands out exclusive ownership,
// Put returns it; a harness is never used by two workers at once.
//
// The idle sets are sharded by config key so concurrent runs over
// distinct configs (the multichip shape: one config per seed) never
// contend on a lock, and the traffic counters are atomics so Stats()
// never serializes Get/Put. Within one config all workers still funnel
// through that key's shard lock, but mapWorkers leases one harness per
// worker for the whole run (per-worker affinity), so the shard lock is
// taken O(workers) times per run, not O(jobs).
//
// Reuse is sound because every per-cell quantity of the simulated chip is
// a pure function of (Seed, coordinates) and the Section 4 measurements
// rewrite their victim and aggressor rows before hammering. Studies whose
// outcome depends on accumulated device state (thermal setpoints, nominal
// refresh cadence, retention decay) must not use the pool.
type DevicePool struct {
	shards [poolShards]poolShard

	created    atomic.Int64
	reused     atomic.Int64
	dropped    atomic.Int64
	collisions atomic.Int64

	// maxIdle is the GOMAXPROCS snapshot taken at construction, used
	// when MaxIdlePerKey is 0. Snapshotting once per pool keeps the cap
	// consistent even if GOMAXPROCS changes mid-run (benchmarks with
	// -cpu do exactly that).
	maxIdle int

	// MaxIdlePerKey caps how many warmed devices are kept per
	// configuration; surplus Puts are dropped for the GC. 0 means the
	// GOMAXPROCS value observed when the pool was constructed.
	//
	// Contract: set it before the pool is shared across goroutines
	// (typically right after NewDevicePool); it is read without
	// synchronization on every Put.
	MaxIdlePerKey int
}

// poolShards is the number of independently locked idle-set shards.
// Power of two so shard selection is a mask of the config hash.
const poolShards = 32

// poolShard is one lock's worth of idle sets. The pad keeps adjacent
// shard locks off a shared cache line (false sharing would re-serialize
// exactly the traffic sharding is meant to spread).
type poolShard struct {
	mu   sync.Mutex
	idle map[uint64]*idleSet
	_    [104]byte
}

// idleSet holds one configuration's warmed devices plus a deep snapshot
// of that configuration. The snapshot guards the 64-bit key: on the
// astronomically rare hash collision (or a caller mutating a config's
// slices after Put), Get must build fresh rather than silently lease a
// device instantiated for different parameters — this repo's whole point
// is measurement fidelity.
type idleSet struct {
	cfg       config.Config // deep snapshot: slices cloned
	harnesses []*core.Harness
}

// PoolStats counts pool traffic; Reused/Created is the warm-hit ratio.
type PoolStats struct {
	// Created counts harnesses built because no idle one matched.
	Created int
	// Reused counts Gets served from the idle set.
	Reused int
	// Dropped counts Puts discarded over MaxIdlePerKey.
	Dropped int
	// Collisions counts operations that hit an idle set whose snapshot
	// did not match the config contents (64-bit key collision); they are
	// served/dropped as misses instead of aliasing devices.
	Collisions int
}

// SharedPool is the process-wide pool every engine run uses by default.
var SharedPool = NewDevicePool()

// NewDevicePool returns an empty pool. The MaxIdlePerKey default is
// pinned to GOMAXPROCS as observed here, not re-read later.
func NewDevicePool() *DevicePool {
	p := &DevicePool{maxIdle: runtime.GOMAXPROCS(0)}
	for i := range p.shards {
		p.shards[i].idle = make(map[uint64]*idleSet)
	}
	return p
}

// snapshot deep-copies a config (cloning its slices) so the idle set's
// guard cannot alias backing arrays the caller might mutate.
func snapshot(cfg *config.Config) config.Config {
	c := *cfg
	c.SubarraySizes = append([]int(nil), cfg.SubarraySizes...)
	c.Fault.Channels = append([]config.ChannelProfile(nil), cfg.Fault.Channels...)
	c.Fault.DistanceWeights = append([]float64(nil), cfg.Fault.DistanceWeights...)
	return c
}

// sameConfig reports deep equality of configuration contents. It uses
// the hand-written comparator (not reflection) because it runs on every
// warm Get hit and Put.
func sameConfig(a, b *config.Config) bool { return a.Equal(b) }

// key fingerprints the configuration by value, so two configs with equal
// contents (e.g. per-seed copies of the same design sharing a seed) share
// warmed devices regardless of pointer identity. The structural hash costs
// one FNV pass over the fields, replacing the fmt.Sprintf("%+v") string
// fingerprint that dominated Get/Put on fine-sharded runs (see the
// BenchmarkConfigHash / BenchmarkConfigSprintfFingerprint pair).
func (p *DevicePool) key(cfg *config.Config) uint64 {
	return cfg.Hash()
}

// shard maps a config key to its shard. The hash is FNV-1a over the full
// config, so the low bits are already well mixed.
func (p *DevicePool) shard(k uint64) *poolShard {
	return &p.shards[k&(poolShards-1)]
}

// Get leases a warmed harness for cfg, building one only when the idle
// set is empty (or, vanishingly rarely, holds a hash-colliding config —
// verified by contents before any device is handed out). The caller owns
// it exclusively until Put.
func (p *DevicePool) Get(cfg *config.Config) (*core.Harness, error) {
	k := p.key(cfg)
	sh := p.shard(k)
	sh.mu.Lock()
	if e := sh.idle[k]; e != nil && len(e.harnesses) > 0 {
		if sameConfig(&e.cfg, cfg) {
			h := e.harnesses[len(e.harnesses)-1]
			e.harnesses = e.harnesses[:len(e.harnesses)-1]
			sh.mu.Unlock()
			p.reused.Add(1)
			return h, nil
		}
		p.collisions.Add(1)
	}
	sh.mu.Unlock()
	p.created.Add(1)
	return core.NewHarnessFromConfig(cfg)
}

// Put returns a leased harness to the idle set, restoring its tunables to
// the NewHarness defaults so the next lease starts from a known state.
func (p *DevicePool) Put(cfg *config.Config, h *core.Harness) {
	if h == nil {
		return
	}
	h.Reset()
	k := p.key(cfg)
	max := p.MaxIdlePerKey
	if max <= 0 {
		max = p.maxIdle
	}
	sh := p.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.idle[k]
	if e == nil {
		sh.idle[k] = &idleSet{cfg: snapshot(cfg), harnesses: []*core.Harness{h}}
		return
	}
	if !sameConfig(&e.cfg, cfg) {
		// Key collision with a different resident config: dropping the
		// device is always safe; aliasing it never is.
		p.collisions.Add(1)
		p.dropped.Add(1)
		return
	}
	if len(e.harnesses) >= max {
		p.dropped.Add(1)
		return
	}
	e.harnesses = append(e.harnesses, h)
}

// Stats returns a snapshot of the pool counters. It reads only atomics,
// so it never blocks (or is blocked by) Get/Put traffic.
func (p *DevicePool) Stats() PoolStats {
	return PoolStats{
		Created:    int(p.created.Load()),
		Reused:     int(p.reused.Load()),
		Dropped:    int(p.dropped.Load()),
		Collisions: int(p.collisions.Load()),
	}
}

// Drain empties the idle sets, releasing every cached device to the GC.
func (p *DevicePool) Drain() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.idle = make(map[uint64]*idleSet)
		sh.mu.Unlock()
	}
}

// DrainConfig releases the idle devices warmed for one configuration.
// Fleet-style sweeps over many chip instances (one config per seed) must
// call this per instance, or every seed's devices stay resident for the
// process lifetime: keys are never evicted, only capped per key.
func (p *DevicePool) DrainConfig(cfg *config.Config) {
	k := p.key(cfg)
	sh := p.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.idle, k)
}

// idleLen reports how many warmed devices are resident for cfg; it is a
// test hook for asserting the MaxIdlePerKey bound.
func (p *DevicePool) idleLen(cfg *config.Config) int {
	k := p.key(cfg)
	sh := p.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.idle[k]; e != nil {
		return len(e.harnesses)
	}
	return 0
}
