package engine

import (
	"runtime"
	"sync"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
)

// DevicePool caches warmed simulated devices (wrapped in characterization
// harnesses) keyed by the full configuration contents, so repeated engine
// runs over the same chip design + seed reuse devices instead of paying
// chip instantiation and ECC-disable setup per run. The pool is
// shared-nothing at the worker level: Get hands out exclusive ownership,
// Put returns it; a harness is never used by two workers at once.
//
// Reuse is sound because every per-cell quantity of the simulated chip is
// a pure function of (Seed, coordinates) and the Section 4 measurements
// rewrite their victim and aggressor rows before hammering. Studies whose
// outcome depends on accumulated device state (thermal setpoints, nominal
// refresh cadence, retention decay) must not use the pool.
type DevicePool struct {
	mu   sync.Mutex
	idle map[uint64]*idleSet
	st   PoolStats

	// MaxIdlePerKey caps how many warmed devices are kept per
	// configuration; surplus Puts are dropped for the GC. 0 means
	// GOMAXPROCS.
	MaxIdlePerKey int
}

// idleSet holds one configuration's warmed devices plus a deep snapshot
// of that configuration. The snapshot guards the 64-bit key: on the
// astronomically rare hash collision (or a caller mutating a config's
// slices after Put), Get must build fresh rather than silently lease a
// device instantiated for different parameters — this repo's whole point
// is measurement fidelity.
type idleSet struct {
	cfg       config.Config // deep snapshot: slices cloned
	harnesses []*core.Harness
}

// PoolStats counts pool traffic; Reused/Created is the warm-hit ratio.
type PoolStats struct {
	// Created counts harnesses built because no idle one matched.
	Created int
	// Reused counts Gets served from the idle set.
	Reused int
	// Dropped counts Puts discarded over MaxIdlePerKey.
	Dropped int
	// Collisions counts operations that hit an idle set whose snapshot
	// did not match the config contents (64-bit key collision); they are
	// served/dropped as misses instead of aliasing devices.
	Collisions int
}

// SharedPool is the process-wide pool every engine run uses by default.
var SharedPool = NewDevicePool()

// NewDevicePool returns an empty pool.
func NewDevicePool() *DevicePool {
	return &DevicePool{idle: make(map[uint64]*idleSet)}
}

// snapshot deep-copies a config (cloning its slices) so the idle set's
// guard cannot alias backing arrays the caller might mutate.
func snapshot(cfg *config.Config) config.Config {
	c := *cfg
	c.SubarraySizes = append([]int(nil), cfg.SubarraySizes...)
	c.Fault.Channels = append([]config.ChannelProfile(nil), cfg.Fault.Channels...)
	c.Fault.DistanceWeights = append([]float64(nil), cfg.Fault.DistanceWeights...)
	return c
}

// sameConfig reports deep equality of configuration contents. It uses
// the hand-written comparator (not reflection) because it runs on every
// warm Get hit and Put.
func sameConfig(a, b *config.Config) bool { return a.Equal(b) }

// key fingerprints the configuration by value, so two configs with equal
// contents (e.g. per-seed copies of the same design sharing a seed) share
// warmed devices regardless of pointer identity. The structural hash costs
// one FNV pass over the fields, replacing the fmt.Sprintf("%+v") string
// fingerprint that dominated Get/Put on fine-sharded runs (see the
// BenchmarkConfigHash / BenchmarkConfigSprintfFingerprint pair).
func (p *DevicePool) key(cfg *config.Config) uint64 {
	return cfg.Hash()
}

// Get leases a warmed harness for cfg, building one only when the idle
// set is empty (or, vanishingly rarely, holds a hash-colliding config —
// verified by contents before any device is handed out). The caller owns
// it exclusively until Put.
func (p *DevicePool) Get(cfg *config.Config) (*core.Harness, error) {
	k := p.key(cfg)
	p.mu.Lock()
	if e := p.idle[k]; e != nil && len(e.harnesses) > 0 {
		if sameConfig(&e.cfg, cfg) {
			h := e.harnesses[len(e.harnesses)-1]
			e.harnesses = e.harnesses[:len(e.harnesses)-1]
			p.st.Reused++
			p.mu.Unlock()
			return h, nil
		}
		p.st.Collisions++
	}
	p.st.Created++
	p.mu.Unlock()
	return core.NewHarnessFromConfig(cfg)
}

// Put returns a leased harness to the idle set, restoring its tunables to
// the NewHarness defaults so the next lease starts from a known state.
func (p *DevicePool) Put(cfg *config.Config, h *core.Harness) {
	if h == nil {
		return
	}
	h.Reset()
	k := p.key(cfg)
	max := p.MaxIdlePerKey
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.idle[k]
	if e == nil {
		p.idle[k] = &idleSet{cfg: snapshot(cfg), harnesses: []*core.Harness{h}}
		return
	}
	if !sameConfig(&e.cfg, cfg) {
		// Key collision with a different resident config: dropping the
		// device is always safe; aliasing it never is.
		p.st.Collisions++
		p.st.Dropped++
		return
	}
	if len(e.harnesses) >= max {
		p.st.Dropped++
		return
	}
	e.harnesses = append(e.harnesses, h)
}

// Stats returns a snapshot of the pool counters.
func (p *DevicePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// Drain empties the idle set, releasing every cached device to the GC.
func (p *DevicePool) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle = make(map[uint64]*idleSet)
}

// DrainConfig releases the idle devices warmed for one configuration.
// Fleet-style sweeps over many chip instances (one config per seed) must
// call this per instance, or every seed's devices stay resident for the
// process lifetime: keys are never evicted, only capped per key.
func (p *DevicePool) DrainConfig(cfg *config.Config) {
	k := p.key(cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.idle, k)
}
