package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
)

func TestMapResultsInIndexOrder(t *testing.T) {
	const n = 64
	got, err := Map(Options{Workers: 7}, n, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("%d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		out, err := Map(Options{Workers: workers}, 33, func(_ context.Context, i int) (int, error) {
			return 3*i + 1, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d differs across worker counts: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMapPropagatesJobError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(Options{Workers: 3}, 16, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the job error", err)
	}
}

func TestMapZeroJobs(t *testing.T) {
	out, err := Map(Options{}, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for an empty job set")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapMoreWorkersThanJobs(t *testing.T) {
	out, err := Map(Options{Workers: 32}, 3, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(out) != 3 {
		t.Fatalf("got (%v, %v)", out, err)
	}
}

func TestMapCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := Map(Options{Ctx: ctx, Workers: 4}, 100, func(context.Context, int) (int, error) {
		calls.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("%d jobs ran on a pre-cancelled context", calls.Load())
	}
}

func TestMapCancelMidRun(t *testing.T) {
	const n = 100
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	_, err := Map(Options{
		Ctx:     ctx,
		Workers: 4,
		OnProgress: func(p Progress) {
			// First *delivered* update: out-of-order completions may skip
			// Done==1, so trigger on >= 1.
			if p.Done >= 1 {
				cancel()
			}
		},
	}, n, func(context.Context, int) (int, error) {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// In-flight jobs may finish, but no worker pulls new work after the
	// cancellation, so the run stops far short of the full job set.
	if c := calls.Load(); c >= n {
		t.Fatalf("all %d jobs ran despite cancellation", c)
	}
}

func TestMapProgressMonotoneAndComplete(t *testing.T) {
	const n = 40
	last := 0
	_, err := Map(Options{
		Workers: 5,
		OnProgress: func(p Progress) {
			if p.Total != n {
				t.Errorf("Total = %d, want %d", p.Total, n)
			}
			if p.Done <= last {
				t.Errorf("progress not strictly increasing: %d after %d", p.Done, last)
			}
			last = p.Done
		},
	}, n, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if last != n {
		t.Fatalf("final progress %d, want %d", last, n)
	}
}

func TestReduceFoldsInIndexOrder(t *testing.T) {
	const n = 200
	var folded []int
	sum := 0
	err := Reduce(Options{Workers: 8}, n,
		func(_ context.Context, i int) (int, error) {
			if i%3 == 0 {
				time.Sleep(time.Millisecond) // stagger completion order
			}
			return i * 2, nil
		},
		func(i int, v int) error {
			folded = append(folded, i) // serialized by the reducer: no lock
			sum += v
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(folded) != n {
		t.Fatalf("folded %d results, want %d", len(folded), n)
	}
	for i, idx := range folded {
		if idx != i {
			t.Fatalf("fold %d received index %d: out of order", i, idx)
		}
	}
	if want := n * (n - 1); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestReduceIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		var out []int
		err := Reduce(Options{Workers: workers}, 50,
			func(_ context.Context, i int) (int, error) { return 7 * i, nil },
			func(_ int, v int) error { out = append(out, v); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fold sequence differs across worker counts at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestReduceBackpressureBoundsUnfoldedResults(t *testing.T) {
	// A straggling early index must not let later results pile up: workers
	// that complete more than one window past the fold frontier park until
	// the frontier advances, so completed-but-unfolded results stay
	// O(workers) even with O(n) jobs behind the straggler.
	const n, workers = 100, 4
	release := make(chan struct{})
	var completed atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- Reduce(Options{Workers: workers}, n,
			func(_ context.Context, i int) (int, error) {
				if i == 0 {
					<-release // job 0 stalls; the fold frontier stays at 0
				}
				completed.Add(1)
				return i, nil
			},
			func(i int, v int) error { return nil })
	}()
	// Wait for completions to plateau while job 0 is stalled.
	deadline := time.Now().Add(5 * time.Second)
	var plateau int64
	for time.Now().Before(deadline) {
		c := completed.Load()
		if c == plateau && c > 0 {
			break
		}
		plateau = c
		time.Sleep(50 * time.Millisecond)
	}
	// Window (= workers) deposited plus one parked result per free worker.
	if max := int64(2*workers + 1); plateau > max {
		t.Errorf("%d jobs completed behind the straggler, want <= %d (unbounded reorder buffer)", plateau, max)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if c := completed.Load(); c != n {
		t.Fatalf("%d jobs completed after release, want %d", c, n)
	}
}

func TestReduceStragglerErrorReleasesParkedWorkers(t *testing.T) {
	// If the straggler fails, parked workers must be woken and the run
	// must join promptly instead of deadlocking.
	boom := errors.New("straggler boom")
	const n, workers = 60, 4
	fail := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- Reduce(Options{Workers: workers}, n,
			func(_ context.Context, i int) (int, error) {
				if i == 0 {
					<-fail
					return 0, boom
				}
				return i, nil
			},
			func(i int, v int) error { return nil })
	}()
	time.Sleep(100 * time.Millisecond) // let the other workers park
	close(fail)
	select {
	case err := <-errc:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the straggler's error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Reduce deadlocked with parked workers after a straggler error")
	}
}

func TestReduceCancelReleasesParkedWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n, workers = 60, 4
	block := make(chan struct{})
	defer close(block)
	errc := make(chan error, 1)
	go func() {
		errc <- Reduce(Options{Ctx: ctx, Workers: workers}, n,
			func(jobCtx context.Context, i int) (int, error) {
				if i == 0 {
					// In-flight jobs drain on cancellation (as the
					// harness measurement loops do via ctx).
					select {
					case <-block:
					case <-jobCtx.Done():
					}
				}
				return i, nil
			},
			func(i int, v int) error { return nil })
	}()
	time.Sleep(100 * time.Millisecond) // let the other workers park
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Reduce deadlocked with parked workers after cancellation")
	}
}

func TestReduceFoldErrorAborts(t *testing.T) {
	boom := errors.New("fold boom")
	var calls atomic.Int64
	err := Reduce(Options{Workers: 4}, 100,
		func(_ context.Context, i int) (int, error) { calls.Add(1); return i, nil },
		func(i int, v int) error {
			if i == 5 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fold error", err)
	}
	if calls.Load() >= 100 {
		t.Fatal("all jobs ran despite a fold error")
	}
}

func TestReduceJobErrorSkipsLaterFolds(t *testing.T) {
	boom := errors.New("job boom")
	var foldedPastError atomic.Bool
	err := Reduce(Options{Workers: 3}, 30,
		func(_ context.Context, i int) (int, error) {
			if i == 4 {
				return 0, boom
			}
			return i, nil
		},
		func(i int, v int) error {
			if i > 4 {
				foldedPastError.Store(true)
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the job error", err)
	}
	if foldedPastError.Load() {
		t.Fatal("results past the failing index were folded")
	}
}

func TestReduceCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var folds atomic.Int64
	err := Reduce(Options{Ctx: ctx, Workers: 4}, 50,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(int, int) error { folds.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if folds.Load() != 0 {
		t.Fatalf("%d folds ran on a pre-cancelled context", folds.Load())
	}
}

func TestReduceZeroJobs(t *testing.T) {
	err := Reduce(Options{}, 0,
		func(_ context.Context, i int) (int, error) {
			t.Fatal("fn called for an empty job set")
			return 0, nil
		},
		func(int, int) error { t.Fatal("fold called for an empty job set"); return nil })
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapHarnessArmsAndDisarmsContext(t *testing.T) {
	p := NewDevicePool()
	cfg := config.SmallChip()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// While leased, the harness must observe the run's context: cancel and
	// check a measurement fails with ctx.Err.
	bank := addr.BankAddr{Channel: 7}
	_, err := MapHarness(Options{Workers: 1, Pool: p, Ctx: ctx}, cfg, 1,
		func(_ context.Context, h *core.Harness, i int) (int, error) {
			cancel()
			if _, berErr := h.BER(bank, 5, core.Table1()[0], 1024); !errors.Is(berErr, context.Canceled) {
				t.Errorf("leased harness BER err = %v, want context.Canceled", berErr)
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run err = %v, want context.Canceled", err)
	}
	// Returned to the pool, the harness must be disarmed again.
	h, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.BER(bank, 5, core.Table1()[0], 1024); err != nil {
		t.Fatalf("pooled harness still armed with a dead context: %v", err)
	}
}

func TestFlattenPreservesOrder(t *testing.T) {
	got := Flatten([][]int{{1, 2}, nil, {3}, {4, 5}})
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPoolReusesWarmedDevice(t *testing.T) {
	p := NewDevicePool()
	cfg := config.SmallChip()
	h1, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cfg, h1)
	// A content-equal copy must hit the same warmed device even though it
	// is a different pointer.
	cfgCopy := *cfg
	h2, err := p.Get(&cfgCopy)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("pool built a new device although a warmed one was idle")
	}
	st := p.Stats()
	if st.Created != 1 || st.Reused != 1 {
		t.Fatalf("stats = %+v, want 1 created / 1 reused", st)
	}
}

func TestPoolSeparatesChipInstances(t *testing.T) {
	p := NewDevicePool()
	a := config.SmallChip()
	b := config.SmallChip()
	b.Seed++
	ha, err := p.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(a, ha)
	hb, err := p.Get(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("different seeds shared one warmed device")
	}
	if st := p.Stats(); st.Created != 2 {
		t.Fatalf("stats = %+v, want 2 created", st)
	}
}

func TestPoolResetsTunablesOnPut(t *testing.T) {
	p := NewDevicePool()
	cfg := config.SmallChip()
	h, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.EnforceBudget = false
	h.HCPrecision = 1
	p.Put(cfg, h)
	h2, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatal("expected the warmed device back")
	}
	if !h2.EnforceBudget || h2.HCPrecision == 1 {
		t.Fatalf("tunables not reset: EnforceBudget=%v HCPrecision=%d",
			h2.EnforceBudget, h2.HCPrecision)
	}
}

func TestPoolDrainConfigIsPerKey(t *testing.T) {
	p := NewDevicePool()
	a := config.SmallChip()
	b := config.SmallChip()
	b.Seed++
	ha, err := p.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := p.Get(b)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(a, ha)
	p.Put(b, hb)
	p.DrainConfig(a)
	ha2, err := p.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if ha2 == ha {
		t.Fatal("drained config still served its old warmed device")
	}
	hb2, err := p.Get(b)
	if err != nil {
		t.Fatal(err)
	}
	if hb2 != hb {
		t.Fatal("draining one config evicted another's warmed device")
	}
}

func TestPoolRefusesKeyCollisions(t *testing.T) {
	// The 64-bit structural key could, in principle, collide for two
	// different configs; the pool must then miss (build fresh / drop)
	// rather than silently lease a device built for other parameters.
	// Forge a collision by corrupting an idle set's snapshot in place.
	p := NewDevicePool()
	cfg := config.SmallChip()
	h, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cfg, h)
	for i := range p.shards {
		for _, e := range p.shards[i].idle {
			e.cfg.Seed++ // now the resident snapshot disagrees with cfg
		}
	}
	h2, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h {
		t.Fatal("pool leased a device across a key collision")
	}
	p.Put(cfg, h2) // snapshot mismatch: must drop, not alias
	st := p.Stats()
	if st.Collisions != 2 {
		t.Fatalf("stats = %+v, want 2 collisions (one Get miss, one Put drop)", st)
	}
	if st.Dropped != 1 {
		t.Fatalf("stats = %+v, want the colliding Put dropped", st)
	}
}

func TestPoolSnapshotImmuneToCallerMutation(t *testing.T) {
	// A caller mutating its config's slice contents after Put must not
	// poison the idle set: the snapshot is deep, so the mutated config is
	// a different key/contents and the stale devices are never aliased.
	p := NewDevicePool()
	cfg := config.SmallChip()
	h, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cfg, h)
	cfg.Fault.Channels[0].MedianHC *= 2 // mutate shared backing array
	h2, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h {
		t.Fatal("mutated config was served the stale warmed device")
	}
}

func TestPoolCapsIdleDevices(t *testing.T) {
	p := NewDevicePool()
	p.MaxIdlePerKey = 1
	cfg := config.SmallChip()
	h1, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cfg, h1)
	p.Put(cfg, h2)
	if st := p.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 dropped", st)
	}
}

func TestMapHarnessLeasesPerWorkerAndReturns(t *testing.T) {
	p := NewDevicePool()
	cfg := config.SmallChip()
	seen := make(map[*core.Harness]bool)
	var mu sync.Mutex
	o := Options{Workers: 3, Pool: p}
	out, err := MapHarness(o, cfg, 9, func(_ context.Context, h *core.Harness, i int) (int, error) {
		if h == nil {
			t.Error("nil harness leased")
		}
		mu.Lock()
		seen[h] = true
		mu.Unlock()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 9 {
		t.Fatalf("%d results, want 9", len(out))
	}
	st := p.Stats()
	if st.Created != len(seen) {
		t.Fatalf("%d harnesses created for %d distinct leases", st.Created, len(seen))
	}
	if st.Created > 3 {
		t.Fatalf("%d harnesses created for 3 workers", st.Created)
	}
	// A second run over the same config must reuse the warmed devices.
	if _, err := MapHarness(o, cfg, 4, func(_ context.Context, h *core.Harness, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Reused == 0 {
		t.Fatalf("stats = %+v, want warm reuse on the second run", st)
	}
}

func TestMapHarnessSetupErrorSurfaces(t *testing.T) {
	cfg := config.SmallChip()
	cfg.SubarraySizes = []int{1} // breaks validation: sizes must sum to Rows
	_, err := MapHarness(Options{Pool: NewDevicePool()}, cfg, 4,
		func(_ context.Context, _ *core.Harness, i int) (int, error) { return i, nil })
	if err == nil {
		t.Fatal("invalid config did not surface a setup error")
	}
}
