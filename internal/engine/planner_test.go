package engine

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestPlannerCoversEveryIndexExactlyOnce drives every planner through
// Map over a range of job/worker shapes and checks the fundamental
// planner contract: each index runs exactly once.
func TestPlannerCoversEveryIndexExactlyOnce(t *testing.T) {
	shapes := []struct{ n, workers int }{
		{1, 1}, {7, 1}, {7, 3}, {8, 8}, {100, 4}, {100, 16}, {5, 8},
	}
	for _, p := range Planners() {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%v/n%d/w%d", p, sh.n, sh.workers), func(t *testing.T) {
				var mu sync.Mutex
				counts := make([]int, sh.n)
				weights := make([]float64, sh.n)
				for i := range weights {
					weights[i] = float64(1 + i%5)
				}
				_, err := Map(Options{Workers: sh.workers, Planner: p, Weights: weights}, sh.n,
					func(_ context.Context, i int) (int, error) {
						mu.Lock()
						counts[i]++
						mu.Unlock()
						return i, nil
					})
				if err != nil {
					t.Fatal(err)
				}
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("index %d ran %d times", i, c)
					}
				}
			})
		}
	}
}

// TestPlannerOutputEquivalence checks that Map and Reduce produce
// identical results under every planner at several worker counts, with
// deliberately skewed job durations to shake out ordering bugs.
func TestPlannerOutputEquivalence(t *testing.T) {
	const n = 64
	job := func(_ context.Context, i int) (int, error) {
		// Busy-skew: early jobs are much slower, inverting completion
		// order relative to index order.
		x := 0
		for k := 0; k < (n-i)*500; k++ {
			x += k
		}
		return i*i + x*0, nil
	}
	var want []int
	for _, p := range Planners() {
		for _, workers := range []int{1, 3, 8} {
			got, err := Map(Options{Workers: workers, Planner: p}, n, job)
			if err != nil {
				t.Fatal(err)
			}
			var folded []int
			err = Reduce(Options{Workers: workers, Planner: p}, n, job,
				func(i, v int) error {
					if i != len(folded) {
						return fmt.Errorf("fold out of order: got index %d, want %d", i, len(folded))
					}
					folded = append(folded, v)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("planner %v workers %d: Map diverged", p, workers)
			}
			if !reflect.DeepEqual(folded, want) {
				t.Fatalf("planner %v workers %d: Reduce diverged", p, workers)
			}
		}
	}
}

// TestWeightedBoundsPartition property-checks the weighted split: blocks
// are contiguous, disjoint and cover [0, n) for arbitrary weights.
func TestWeightedBoundsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		workers := 1 + rng.Intn(10)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(rng.Intn(4)) // zeros exercise the floor
		}
		bounds := weightedBounds(weights, workers)
		if len(bounds) != workers {
			t.Fatalf("%d blocks for %d workers", len(bounds), workers)
		}
		prev := 0
		for w, b := range bounds {
			if b[0] != prev || b[1] < b[0] {
				t.Fatalf("trial %d: block %d = %v not contiguous from %d (weights %v)", trial, w, b, prev, weights)
			}
			prev = b[1]
		}
		if prev != n {
			t.Fatalf("trial %d: blocks cover [0,%d), want [0,%d)", trial, prev, n)
		}
	}
}

// TestStealingAssignerRebalances pins that an exhausted worker steals
// from the largest remaining block and that every index is still handed
// out exactly once.
func TestStealingAssignerRebalances(t *testing.T) {
	a := newBlockAssigner(contiguousBounds(16, 2), true)
	// Worker 1 drains its block [8,16).
	for i := 8; i < 16; i++ {
		got, ok := a.next(1)
		if !ok || got != i {
			t.Fatalf("worker 1: got %d,%v want %d", got, ok, i)
		}
	}
	// Its next pop steals the upper half of worker 0's untouched [0,8).
	got, ok := a.next(1)
	if !ok || got != 4 {
		t.Fatalf("steal: got %d,%v want 4", got, ok)
	}
	seen := map[int]bool{}
	for i := 8; i < 16; i++ {
		seen[i] = true
	}
	seen[4] = true
	for {
		i, ok := a.next(0)
		if !ok {
			break
		}
		if seen[i] {
			t.Fatalf("index %d handed out twice", i)
		}
		seen[i] = true
	}
	for {
		i, ok := a.next(1)
		if !ok {
			break
		}
		if seen[i] {
			t.Fatalf("index %d handed out twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d of 16 indexes", len(seen))
	}
}

// TestParsePlanner round-trips every planner spelling and rejects junk.
func TestParsePlanner(t *testing.T) {
	for _, p := range Planners() {
		got, err := ParsePlanner(p.String())
		if err != nil || got != p {
			t.Fatalf("round-trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePlanner("frontier"); err == nil {
		t.Fatal("want error for unknown planner")
	}
}

// TestWeightsLengthValidated pins the weights/jobs length check.
func TestWeightsLengthValidated(t *testing.T) {
	_, err := Map(Options{Planner: PlanWeighted, Weights: []float64{1, 2}}, 3,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err == nil {
		t.Fatal("want error for mismatched weights length")
	}
}
