package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Planner selects how a run's job indexes are assigned to workers. Every
// planner hands each index in [0, n) to exactly one worker exactly once.
// Because Map places results by index and Reduce folds them in strict
// index order, the planner changes only the schedule — never the output:
// the same run is byte-identical under every planner at every worker
// count.
//
// Every planner also maintains the block invariant Reduce's backpressure
// relies on: at any moment each worker owns at most one contiguous
// remaining block, consumed from its low end (stealing transfers the
// *top* half of a victim's block to the thief as the thief's new block).
// The fold frontier — the lowest unfolded index — is therefore always
// the low end of whichever block contains it, so that block's owner pops
// exactly the frontier index next, which the backpressure window (>= 1)
// always admits: the ordered fold cannot deadlock. Note the invariant is
// per block, not per worker — a thief may run stolen indexes below ones
// it completed earlier, so code must not assume a worker sees globally
// ascending indexes.
type Planner int

const (
	// PlanQueue is the default: workers pull the next index from one
	// shared counter. It balances perfectly under heterogeneous job costs
	// and keeps every worker near the fold frontier, which is what gives
	// Reduce its full overlap; its only cost is zero assignment locality.
	PlanQueue Planner = iota
	// PlanContiguous splits [0, n) into one contiguous block per worker
	// up front — the in-process analogue of the static cross-process
	// shard partition (results.ShardRange). Maximal locality, but a
	// straggler block runs long and, under Reduce, workers on later
	// blocks park against the backpressure window until the fold frontier
	// reaches them.
	PlanContiguous
	// PlanWeighted is PlanContiguous with block boundaries balancing the
	// total of per-job cost estimates (Options.Weights) instead of the
	// job count. With nil weights it degenerates to PlanContiguous.
	PlanWeighted
	// PlanStealing starts from the contiguous split and lets a worker
	// that exhausts its block steal the upper half of the largest
	// remaining block — the classic in-process work-stealing queue, for
	// heterogeneous fleets where static splits misestimate job costs.
	PlanStealing
)

// String returns the canonical flag spelling of the planner.
func (p Planner) String() string {
	switch p {
	case PlanQueue:
		return "queue"
	case PlanContiguous:
		return "contiguous"
	case PlanWeighted:
		return "weighted"
	case PlanStealing:
		return "stealing"
	}
	return fmt.Sprintf("planner(%d)", int(p))
}

// Planners lists every planner in flag-spelling order.
func Planners() []Planner {
	return []Planner{PlanQueue, PlanContiguous, PlanWeighted, PlanStealing}
}

// ParsePlanner parses the flag spelling produced by Planner.String.
func ParsePlanner(s string) (Planner, error) {
	for _, p := range Planners() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("engine: unknown planner %q (want queue, contiguous, weighted or stealing)", s)
}

// assigner is a planner instantiated for one run: next(w) pops worker w's
// next job index, or ok=false when the run has no work left for it. next
// is called only by worker w for a given w, but different workers call
// concurrently, so shared state needs synchronization.
type assigner interface {
	next(worker int) (i int, ok bool)
}

// plan instantiates the planner for n jobs across the given workers.
// weights, when non-nil, must have length n (validated by Options).
func (p Planner) plan(n, workers int, weights []float64) assigner {
	switch p {
	case PlanContiguous:
		return newBlockAssigner(contiguousBounds(n, workers), false)
	case PlanWeighted:
		if weights == nil {
			return newBlockAssigner(contiguousBounds(n, workers), false)
		}
		return newBlockAssigner(weightedBounds(weights, workers), false)
	case PlanStealing:
		return newBlockAssigner(contiguousBounds(n, workers), true)
	default:
		return &queueAssigner{n: n}
	}
}

// queueAssigner hands out indexes from one shared counter.
type queueAssigner struct {
	next_ atomic.Int64
	n     int
}

func (q *queueAssigner) next(int) (int, bool) {
	i := int(q.next_.Add(1)) - 1
	return i, i < q.n
}

// contiguousBounds splits [0, n) into workers near-equal contiguous
// blocks (the ShardRange partition, so in-process contiguous runs mirror
// the cross-process shard split).
func contiguousBounds(n, workers int) [][2]int {
	out := make([][2]int, workers)
	for w := 0; w < workers; w++ {
		out[w] = [2]int{n * w / workers, n * (w + 1) / workers}
	}
	return out
}

// weightedBounds splits [0, n) into contiguous blocks of near-equal total
// weight: block w starts at the first job whose weight prefix sum reaches
// w/workers of the total. Non-positive weights count as the smallest
// positive weight seen (cost estimates, not exact costs).
func weightedBounds(weights []float64, workers int) [][2]int {
	n := len(weights)
	floor := 0.0
	for _, w := range weights {
		if w > 0 && (floor == 0 || w < floor) {
			floor = w
		}
	}
	if floor == 0 {
		floor = 1
	}
	total := 0.0
	prefix := make([]float64, n+1)
	for i, w := range weights {
		if w <= 0 {
			w = floor
		}
		total += w
		prefix[i+1] = total
	}
	bounds := make([][2]int, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo
		if w == workers-1 {
			hi = n
		} else {
			target := total * float64(w+1) / float64(workers)
			for hi < n && prefix[hi+1] < target {
				hi++
			}
			// Take the boundary job into the block whose target it
			// crosses, so every block is non-trivially sized when the
			// weights allow it.
			if hi < n && prefix[hi+1]-target <= target-prefix[hi] {
				hi++
			}
		}
		bounds[w] = [2]int{lo, hi}
		lo = hi
	}
	return bounds
}

// blockAssigner owns one contiguous remaining block per worker, consumed
// from the low end. With stealing enabled, a worker whose block is empty
// takes the upper half of the largest remaining block. Consuming from the
// low end and stealing from the high end preserves the one-block-per-
// worker invariant Reduce's backpressure relies on (see Planner): the
// block containing the fold frontier is popped at the frontier itself.
type blockAssigner struct {
	mu     sync.Mutex
	blocks [][2]int
	steal  bool
}

func newBlockAssigner(bounds [][2]int, steal bool) *blockAssigner {
	return &blockAssigner{blocks: bounds, steal: steal}
}

func (b *blockAssigner) next(worker int) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	blk := &b.blocks[worker]
	if blk[0] >= blk[1] && b.steal {
		// Steal the upper half of the largest remaining block. Ties go to
		// the lowest victim index, so the schedule is deterministic for a
		// given interleaving (the output never depends on it either way).
		victim, size := -1, 0
		for v := range b.blocks {
			if v == worker {
				continue
			}
			if s := b.blocks[v][1] - b.blocks[v][0]; s > size {
				victim, size = v, s
			}
		}
		if victim >= 0 && size > 1 {
			vb := &b.blocks[victim]
			mid := vb[0] + size/2
			blk[0], blk[1] = mid, vb[1]
			vb[1] = mid
		}
	}
	if blk[0] >= blk[1] {
		return 0, false
	}
	i := blk[0]
	blk[0]++
	return i, true
}
