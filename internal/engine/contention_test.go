package engine

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
)

// TestPoolStressGetPutStats hammers one pool from many goroutines across
// both colliding traffic (all goroutines leasing the same config, so one
// key's shard serializes them) and distinct configs (each landing on its
// own shard), with Stats() reads interleaved. Run under -race (make test
// does), it is the data-race probe for the sharded design; the
// invariants below hold at any interleaving:
//
//	Created + Reused == total Gets  (every Get is exactly one of the two)
//	idle(cfg) <= MaxIdlePerKey      (the per-key bound survives races)
func TestPoolStressGetPutStats(t *testing.T) {
	p := NewDevicePool()
	p.MaxIdlePerKey = 2
	cfgs := make([]*config.Config, 4)
	for i := range cfgs {
		cfgs[i] = config.SmallChip()
		cfgs[i].Seed = uint64(i) // distinct keys; index 0 shared by all goroutines below
	}
	const goroutines = 8
	const opsPer = 30
	gets := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				// Even ops collide on cfgs[0]; odd ops spread per goroutine.
				cfg := cfgs[0]
				if i%2 == 1 {
					cfg = cfgs[g%len(cfgs)]
				}
				h, err := p.Get(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				gets[g]++
				if i%5 == 0 {
					_ = p.Stats()
				}
				p.Put(cfg, h)
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range gets {
		total += n
	}
	st := p.Stats()
	if st.Created+st.Reused != total {
		t.Fatalf("Created(%d)+Reused(%d) != Gets(%d); stats %+v",
			st.Created, st.Reused, total, st)
	}
	if st.Collisions != 0 {
		t.Fatalf("unexpected hash collisions: %+v", st)
	}
	for i, cfg := range cfgs {
		if n := p.idleLen(cfg); n > p.MaxIdlePerKey {
			t.Fatalf("config %d: %d idle devices, cap %d", i, n, p.MaxIdlePerKey)
		}
	}
}

// TestPoolMaxIdleDefaultSnapshotsGOMAXPROCS pins the satellite fix: the
// MaxIdlePerKey default is the GOMAXPROCS value at pool construction, not
// whatever GOMAXPROCS happens to be at each Put.
func TestPoolMaxIdleDefaultSnapshotsGOMAXPROCS(t *testing.T) {
	p := NewDevicePool()
	if p.maxIdle != runtime.GOMAXPROCS(0) {
		t.Fatalf("maxIdle snapshot %d != GOMAXPROCS %d", p.maxIdle, runtime.GOMAXPROCS(0))
	}
	old := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(old + 3)
	defer runtime.GOMAXPROCS(old)
	if p.maxIdle != old {
		t.Fatalf("maxIdle moved with GOMAXPROCS: %d", p.maxIdle)
	}
}

// ---------------------------------------------------------------------------
// Side-by-side contention benchmarks: the pre-PR pool (one global mutex,
// mutex-guarded stats) and the pre-PR ordered reduce (one mutex + cond +
// map reorder buffer) are reimplemented here verbatim as baselines, so
// BENCH_engine.json records the per-job overhead reduction next to the
// sharded/lock-free implementations even on a 1-core box.

// legacyPool is the pre-sharding DevicePool: one mutex for every key and
// for Stats.
type legacyPool struct {
	mu            sync.Mutex
	idle          map[uint64]*idleSet
	st            PoolStats
	MaxIdlePerKey int
}

func newLegacyPool() *legacyPool { return &legacyPool{idle: make(map[uint64]*idleSet)} }

func (p *legacyPool) Get(cfg *config.Config) (*core.Harness, error) {
	k := cfg.Hash()
	p.mu.Lock()
	if e := p.idle[k]; e != nil && len(e.harnesses) > 0 {
		if sameConfig(&e.cfg, cfg) {
			h := e.harnesses[len(e.harnesses)-1]
			e.harnesses = e.harnesses[:len(e.harnesses)-1]
			p.st.Reused++
			p.mu.Unlock()
			return h, nil
		}
		p.st.Collisions++
	}
	p.st.Created++
	p.mu.Unlock()
	return core.NewHarnessFromConfig(cfg)
}

func (p *legacyPool) Put(cfg *config.Config, h *core.Harness) {
	if h == nil {
		return
	}
	h.Reset()
	k := cfg.Hash()
	max := p.MaxIdlePerKey
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.idle[k]
	if e == nil {
		p.idle[k] = &idleSet{cfg: snapshot(cfg), harnesses: []*core.Harness{h}}
		return
	}
	if !sameConfig(&e.cfg, cfg) {
		p.st.Collisions++
		p.st.Dropped++
		return
	}
	if len(e.harnesses) >= max {
		p.st.Dropped++
		return
	}
	e.harnesses = append(e.harnesses, h)
}

func (p *legacyPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// poolBench measures warm Get/Stats/Put cycles under heavy goroutine
// pressure: the synthetic lock-convoy probe. One benchmark iteration is
// a fixed workload — 32 goroutines each running 64 cycles — so the
// measurement is meaningful even at -benchtime 1x and spawn overhead is
// amortized over 2048 cycles. The pool is pre-warmed so no cycle ever
// builds a device: the benchmark isolates leasing overhead, which is
// what a fine-grained engine run pays per worker.
func poolBench(b *testing.B, get func(*config.Config) (*core.Harness, error),
	put func(*config.Config, *core.Harness), stats func() PoolStats) {
	cfg := config.SmallChip()
	const goroutines = 32
	const cyclesPer = 64
	hs := make([]*core.Harness, goroutines)
	for i := range hs {
		h, err := get(cfg)
		if err != nil {
			b.Fatal(err)
		}
		hs[i] = h
	}
	for _, h := range hs {
		put(cfg, h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := 0; c < cyclesPer; c++ {
					h, err := get(cfg)
					if err != nil {
						b.Error(err)
						return
					}
					_ = stats()
					put(cfg, h)
				}
			}()
		}
		wg.Wait()
	}
}

func BenchmarkEnginePoolGetPut(b *testing.B) {
	p := NewDevicePool()
	p.MaxIdlePerKey = 64
	poolBench(b, p.Get, p.Put, p.Stats)
}

func BenchmarkEnginePoolGetPutLegacy(b *testing.B) {
	p := newLegacyPool()
	p.MaxIdlePerKey = 64
	poolBench(b, p.Get, p.Put, p.Stats)
}

// legacyReduceWorkers is the pre-PR ordered fold: a single mutex + cond
// and a map reorder buffer, every completion (in-order or not) taking the
// lock, folds running under it.
func legacyReduceWorkers[T any](o Options, n int,
	fn func(ctx context.Context, i int) (T, error),
	fold func(i int, v T) error) error {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	aborted := false
	pending := make(map[int]T)
	next := 0
	window := o.workers(n)
	return mapWorkers(o, n, noSetup,
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) },
		func(i int, v T) error {
			mu.Lock()
			defer mu.Unlock()
			for i >= next+window && !aborted {
				cond.Wait()
			}
			if aborted {
				return nil
			}
			pending[i] = v
			for {
				w, ok := pending[next]
				if !ok {
					return nil
				}
				delete(pending, next)
				if err := fold(next, w); err != nil {
					return err
				}
				next++
				cond.Broadcast()
			}
		},
		func() {
			mu.Lock()
			aborted = true
			mu.Unlock()
			cond.Broadcast()
		})
}

// reduceBenchJobs is sized so per-job engine overhead dominates: the jobs
// themselves are a single integer return.
const reduceBenchJobs = 2048

func reduceBench(b *testing.B, run func(o Options, sink *int64) error) {
	o := Options{Workers: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		if err := run(o, &sum); err != nil {
			b.Fatal(err)
		}
		if sum != int64(reduceBenchJobs)*(reduceBenchJobs-1)/2 {
			b.Fatalf("fold lost results: sum %d", sum)
		}
	}
}

func BenchmarkEngineReduceContended(b *testing.B) {
	reduceBench(b, func(o Options, sink *int64) error {
		return Reduce(o, reduceBenchJobs,
			func(_ context.Context, i int) (int, error) { return i, nil },
			func(_ int, v int) error { *sink += int64(v); return nil })
	})
}

func BenchmarkEngineReduceContendedLegacy(b *testing.B) {
	reduceBench(b, func(o Options, sink *int64) error {
		return legacyReduceWorkers(o, reduceBenchJobs,
			func(_ context.Context, i int) (int, error) { return i, nil },
			func(_ int, v int) error { *sink += int64(v); return nil })
	})
}
