// Package rng provides deterministic, hash-based random variate generation.
//
// The simulator never materializes per-cell state for the full 4 GiB device.
// Instead, every per-cell quantity (RowHammer threshold, retention time,
// cell orientation) is a pure function of a seed and the cell coordinates,
// computed on demand with the SplitMix64 finalizer. Two devices built from
// the same seed are bit-identical; changing the seed yields an independent
// "chip instance", mirroring chip-to-chip variation.
package rng

import "math"

// splitMix64Gamma is the Weyl-sequence increment from Steele et al.,
// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
const splitMix64Gamma = 0x9E3779B97F4A7C15

// Mix64 applies the SplitMix64 finalizer to x, producing a well-distributed
// 64-bit value. It is the core primitive behind every draw in this package.
func Mix64(x uint64) uint64 {
	x += splitMix64Gamma
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Combine folds a sequence of values into a single hash. It is used to key
// draws by coordinates, e.g. Combine(seed, channel, bank, row, bit).
func Combine(vs ...uint64) uint64 {
	h := uint64(0x243F6A8885A308D3) // pi fractional bits; arbitrary non-zero start
	for _, v := range vs {
		h = Mix64(h ^ v)
	}
	return h
}

// Uniform01 maps a hash to the half-open interval [0, 1).
func Uniform01(h uint64) float64 {
	// Use the top 53 bits for a dyadic rational in [0,1).
	return float64(h>>11) / (1 << 53)
}

// UniformRange maps a hash to [lo, hi).
func UniformRange(h uint64, lo, hi float64) float64 {
	return lo + (hi-lo)*Uniform01(h)
}

// Bool maps a hash to true with probability p.
func Bool(h uint64, p float64) bool {
	return Uniform01(h) < p
}

// Normal maps a hash to a standard normal variate using the inverse CDF.
// A single hash input keeps per-cell evaluation cheap and allocation-free.
func Normal(h uint64) float64 {
	u := Uniform01(h)
	// Clamp away from 0 and 1 so the inverse CDF stays finite.
	if u < 1e-12 {
		u = 1e-12
	} else if u > 1-1e-12 {
		u = 1 - 1e-12
	}
	return normInv(u)
}

// LogNormal maps a hash to exp(mu + sigma*Z) with Z standard normal.
func LogNormal(h uint64, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*Normal(h))
}

// normInv is Acklam's rational approximation to the inverse of the standard
// normal CDF. Maximum relative error ~1.15e-9, far below what the fault
// model's calibration tolerances require.
func normInv(p float64) float64 {
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var q, r float64
	switch {
	case p < pLow:
		q = math.Sqrt(-2 * math.Log(p))
		return (((((_c[0]*q+_c[1])*q+_c[2])*q+_c[3])*q+_c[4])*q + _c[5]) /
			((((_d[0]*q+_d[1])*q+_d[2])*q+_d[3])*q + 1)
	case p <= pHigh:
		q = p - 0.5
		r = q * q
		return (((((_a[0]*r+_a[1])*r+_a[2])*r+_a[3])*r+_a[4])*r + _a[5]) * q /
			(((((_b[0]*r+_b[1])*r+_b[2])*r+_b[3])*r+_b[4])*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		return -(((((_c[0]*q+_c[1])*q+_c[2])*q+_c[3])*q+_c[4])*q + _c[5]) /
			((((_d[0]*q+_d[1])*q+_d[2])*q+_d[3])*q + 1)
	}
}

var (
	_a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	_b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	_c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	_d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
)

// Stream is a small sequential PRNG for places that want a stream of draws
// rather than coordinate-keyed hashing (e.g. shuffling probe orders).
// The zero value is a valid stream seeded with 0.
type Stream struct {
	state uint64
}

// NewStream returns a sequential generator seeded with seed.
func NewStream(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *Stream) Next() uint64 {
	s.state += splitMix64Gamma
	return Mix64(s.state)
}

// Float64 returns the next variate in [0, 1).
func (s *Stream) Float64() float64 {
	return Uniform01(s.Next())
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, matching math/rand semantics.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Next() % uint64(n))
}

// Shuffle permutes xs in place with the Fisher-Yates algorithm.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
