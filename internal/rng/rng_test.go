package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 is not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Fatal("adjacent inputs should not collide")
	}
}

func TestMix64AvalancheProperty(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	f := func(x uint64, bit uint8) bool {
		b := uint(bit % 64)
		d := Mix64(x) ^ Mix64(x^(1<<b))
		n := popcount(d)
		return n >= 12 && n <= 52
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestCombineOrderSensitivity(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine must be order sensitive")
	}
	if Combine(1, 2, 3) == Combine(1, 2) {
		t.Fatal("Combine must be length sensitive")
	}
}

func TestUniform01Bounds(t *testing.T) {
	f := func(h uint64) bool {
		u := Uniform01(h)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniform01Mean(t *testing.T) {
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Uniform01(Mix64(uint64(i)))
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of Uniform01 = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		z := Normal(Combine(7, uint64(i)))
		sum += z
		sumSq += z * z
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormInvRoundTrip(t *testing.T) {
	// normInv should invert the normal CDF: check a few known quantiles.
	cases := []struct {
		p, z float64
	}{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.15865525393145705, -1},
		{0.9772498680518208, 2},
		{0.001349898031630095, -3},
	}
	for _, c := range cases {
		got := normInv(c.p)
		if math.Abs(got-c.z) > 1e-6 {
			t.Errorf("normInv(%v) = %v, want %v", c.p, got, c.z)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	// Median of LogNormal(mu, sigma) is exp(mu); estimate it empirically.
	const n = 100001
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, LogNormal(Combine(3, uint64(i)), math.Log(50000), 1.1))
	}
	// Median via counting values below exp(mu).
	below := 0
	for _, x := range xs {
		if x < 50000 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestBoolProbability(t *testing.T) {
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if Bool(Combine(9, uint64(i)), 0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(p=0.3) hit rate = %v", frac)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(123), NewStream(123)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams with equal seeds diverged")
		}
	}
}

func TestStreamIntnRange(t *testing.T) {
	s := NewStream(5)
	for i := 0; i < 1000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestStreamIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestShuffleIsPermutation(t *testing.T) {
	s := NewStream(99)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func BenchmarkMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Mix64(uint64(i))
	}
	_ = acc
}

func BenchmarkLogNormal(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += LogNormal(uint64(i), 11, 1.1)
	}
	_ = acc
}
