package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/stats"
)

func sampleSummary() stats.Summary {
	return stats.Summarize([]float64{0.5, 1.0, 1.5, 2.0, 2.5})
}

func TestRenderBoxesContainsGlyphs(t *testing.T) {
	out := RenderBoxes("Fig 3: BER", "%", []BoxGroup{
		{Label: "Rowstripe0", Series: []BoxSeries{
			{Label: "ch0", Summary: sampleSummary()},
			{Label: "ch7", Summary: stats.Summarize([]float64{1, 2, 3, 4, 5})},
		}},
	})
	for _, want := range []string{"Fig 3: BER", "Rowstripe0", "ch0", "ch7", "=", "-", "o", "med"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderBoxesDegenerateSample(t *testing.T) {
	// A constant sample must not divide by zero.
	out := RenderBoxes("t", "u", []BoxGroup{
		{Label: "g", Series: []BoxSeries{{Label: "s", Summary: stats.Summarize([]float64{2, 2, 2})}}},
	})
	if !strings.Contains(out, "med 2") {
		t.Errorf("degenerate render wrong:\n%s", out)
	}
}

func TestRenderScatter(t *testing.T) {
	pts := []Point{
		{X: 0.22, Y: 0.8, Tag: '0'},
		{X: 0.34, Y: 1.6, Tag: '7'},
		{X: 0.28, Y: 1.2, Tag: '3'},
	}
	out := RenderScatter("Fig 6", "CV", "mean BER", pts)
	for _, want := range []string{"Fig 6", "CV", "mean BER", "0", "7", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q:\n%s", want, out)
		}
	}
	if out := RenderScatter("empty", "x", "y", nil); !strings.Contains(out, "no data") {
		t.Error("empty scatter should say so")
	}
}

func TestRenderScatterSinglePoint(t *testing.T) {
	out := RenderScatter("one", "x", "y", []Point{{X: 1, Y: 1, Tag: '*'}})
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}

func TestRenderProfile(t *testing.T) {
	out := RenderProfile("Fig 5", []int{0, 1, 2, 3}, []ProfileSeries{
		{Label: "ch0", Values: []float64{0.1, 0.5, 0.9, 0.2}},
		{Label: "ch7", Values: []float64{0.3, 1.0, 1.8, 0.4}},
	})
	for _, want := range []string{"Fig 5", "ch0", "ch7", "rows 0..3"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q:\n%s", want, out)
		}
	}
	// The peak sample must use the darkest glyph.
	if !strings.Contains(out, "@") {
		t.Errorf("peak glyph missing:\n%s", out)
	}
}

func TestRenderProfileEmpty(t *testing.T) {
	if out := RenderProfile("t", nil, nil); !strings.Contains(out, "no data") {
		t.Error("empty profile should say so")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"channel", "ber"}, [][]string{
		{"0", "1.00"},
		{"7", "2.03"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "channel  ber " {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-------") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
