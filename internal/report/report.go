// Package report renders experiment results as ASCII figures and tables
// for terminals and logs, and exports raw data as CSV. It provides the
// three shapes the paper's figures need: grouped box-and-whiskers plots
// (Figs. 3-4), per-row profiles as sparklines (Fig. 5), and scatter plots
// (Fig. 6).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/safari-repro/hbmrh/internal/stats"
)

// BoxSeries is one box in a group (one channel, in the paper's figures).
type BoxSeries struct {
	Label   string
	Summary stats.Summary
}

// BoxGroup is one x-axis group of boxes (one data pattern).
type BoxGroup struct {
	Label  string
	Series []BoxSeries
}

// RenderBoxes draws horizontal box-and-whiskers plots: whiskers span
// min..max, the box spans Q1..Q3, '|' marks the median and 'o' the mean,
// following the paper's plot conventions.
func RenderBoxes(title, unit string, groups []BoxGroup) string {
	const width = 56
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, g := range groups {
		for _, s := range g.Series {
			lo = math.Min(lo, s.Summary.Min)
			hi = math.Max(hi, s.Summary.Max)
		}
	}
	if math.IsInf(lo, 1) || hi == lo {
		hi, lo = lo+1, lo-1
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "scale: %.4g .. %.4g %s\n", lo, hi, unit)
	for _, g := range groups {
		fmt.Fprintf(&sb, "%s\n", g.Label)
		for _, s := range g.Series {
			line := []byte(strings.Repeat(" ", width))
			sum := s.Summary
			for i := pos(sum.Min); i <= pos(sum.Max); i++ {
				line[i] = '-'
			}
			for i := pos(sum.Q1); i <= pos(sum.Q3); i++ {
				line[i] = '='
			}
			line[pos(sum.Median)] = '|'
			line[pos(sum.Mean)] = 'o'
			fmt.Fprintf(&sb, "  %-6s %s  med %.4g mean %.4g\n", s.Label, line, sum.Median, sum.Mean)
		}
	}
	return sb.String()
}

// Point is one scatter sample.
type Point struct {
	X, Y float64
	Tag  rune // glyph identifying the series (channel digit in Fig. 6)
}

// RenderScatter draws a scatter plot on a character grid.
func RenderScatter(title, xLabel, yLabel string, pts []Point) string {
	const w, h = 64, 20
	if len(pts) == 0 {
		return title + "\n(no data)\n"
	}
	xlo, xhi := pts[0].X, pts[0].X
	ylo, yhi := pts[0].Y, pts[0].Y
	for _, p := range pts {
		xlo, xhi = math.Min(xlo, p.X), math.Max(xhi, p.X)
		ylo, yhi = math.Min(ylo, p.Y), math.Max(yhi, p.Y)
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", w))
	}
	for _, p := range pts {
		x := int(math.Round((p.X - xlo) / (xhi - xlo) * float64(w-1)))
		y := int(math.Round((p.Y - ylo) / (yhi - ylo) * float64(h-1)))
		grid[h-1-y][x] = p.Tag
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "y: %s [%.4g .. %.4g]\n", yLabel, ylo, yhi)
	for _, row := range grid {
		fmt.Fprintf(&sb, "|%s\n", string(row))
	}
	fmt.Fprintf(&sb, "+%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "x: %s [%.4g .. %.4g]\n", xLabel, xlo, xhi)
	return sb.String()
}

// sparkLevels maps a normalized value to a glyph, darkest = highest.
var sparkLevels = []rune(" .:-=+*#%@")

// RenderProfile draws one sparkline per series over a shared x-axis,
// normalizing all series to the global maximum so relative height is
// comparable across series (as in Fig. 5's shared y-axis).
func RenderProfile(title string, xs []int, series []ProfileSeries) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(xs) == 0 || len(series) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	hi := math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			hi = math.Max(hi, v)
		}
	}
	if hi <= 0 {
		hi = 1
	}
	fmt.Fprintf(&sb, "rows %d..%d, peak %.4g\n", xs[0], xs[len(xs)-1], hi)
	for _, s := range series {
		glyphs := make([]rune, len(s.Values))
		for i, v := range s.Values {
			idx := int(v / hi * float64(len(sparkLevels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkLevels) {
				idx = len(sparkLevels) - 1
			}
			glyphs[i] = sparkLevels[idx]
		}
		fmt.Fprintf(&sb, "  %-6s %s\n", s.Label, string(glyphs))
	}
	return sb.String()
}

// ProfileSeries is one sparkline of RenderProfile.
type ProfileSeries struct {
	Label  string
	Values []float64
}

// Table renders a fixed-width text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, hd := range headers {
		widths[i] = len(hd)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// WriteCSV emits headers plus rows in RFC 4180 format.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
