// Package addr defines the HBM2 address space and device geometry used
// throughout the simulator: stack → channel → pseudo channel → bank →
// row → column, matching the organization in Fig. 1 of the paper.
package addr

import "fmt"

// Geometry describes the dimensions of one HBM2 stack. The paper's chip is
// a 4 GiB stack with 8 channels, 2 pseudo channels per channel, 16 banks
// per pseudo channel, 16384 rows per bank and 32 columns per row.
type Geometry struct {
	Channels       int // independent HBM2 channels per stack
	PseudoChannels int // pseudo channels per channel
	Banks          int // banks per pseudo channel
	Rows           int // rows per bank
	Columns        int // column accesses per row
	ColumnBytes    int // bytes transferred per column access
}

// Validate reports whether every dimension is positive.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("addr: channels = %d, must be positive", g.Channels)
	case g.PseudoChannels <= 0:
		return fmt.Errorf("addr: pseudo channels = %d, must be positive", g.PseudoChannels)
	case g.Banks <= 0:
		return fmt.Errorf("addr: banks = %d, must be positive", g.Banks)
	case g.Rows <= 0:
		return fmt.Errorf("addr: rows = %d, must be positive", g.Rows)
	case g.Columns <= 0:
		return fmt.Errorf("addr: columns = %d, must be positive", g.Columns)
	case g.ColumnBytes <= 0:
		return fmt.Errorf("addr: column bytes = %d, must be positive", g.ColumnBytes)
	}
	return nil
}

// RowBytes returns the number of bytes stored in one row.
func (g Geometry) RowBytes() int { return g.Columns * g.ColumnBytes }

// RowBits returns the number of cells (bits) in one row.
func (g Geometry) RowBits() int { return g.RowBytes() * 8 }

// TotalBanks returns the number of banks across the whole stack.
func (g Geometry) TotalBanks() int {
	return g.Channels * g.PseudoChannels * g.Banks
}

// TotalBytes returns the stack capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.TotalBanks()) * int64(g.Rows) * int64(g.RowBytes())
}

// Dies returns the number of stacked DRAM dies, assuming the paper's layout
// of two channels per die.
func (g Geometry) Dies() int { return (g.Channels + 1) / 2 }

// DieOf returns the die index hosting the given channel. Channels are laid
// out two per die: channels {0,1} on die 0, {2,3} on die 1, and so on. This
// grouping is the paper's hypothesis for why channels pair up in BER.
func (g Geometry) DieOf(channel int) int { return channel / 2 }

// BankAddr identifies one bank within a stack.
type BankAddr struct {
	Channel       int
	PseudoChannel int
	Bank          int
}

// String renders the bank address as "ch0.pc1.ba2".
func (b BankAddr) String() string {
	return fmt.Sprintf("ch%d.pc%d.ba%d", b.Channel, b.PseudoChannel, b.Bank)
}

// Valid reports whether the bank address is within geometry g.
func (b BankAddr) Valid(g Geometry) bool {
	return b.Channel >= 0 && b.Channel < g.Channels &&
		b.PseudoChannel >= 0 && b.PseudoChannel < g.PseudoChannels &&
		b.Bank >= 0 && b.Bank < g.Banks
}

// Flat returns a dense index for the bank in [0, g.TotalBanks()).
func (b BankAddr) Flat(g Geometry) int {
	return (b.Channel*g.PseudoChannels+b.PseudoChannel)*g.Banks + b.Bank
}

// BankFromFlat inverts BankAddr.Flat.
func BankFromFlat(g Geometry, flat int) BankAddr {
	bank := flat % g.Banks
	flat /= g.Banks
	pc := flat % g.PseudoChannels
	return BankAddr{Channel: flat / g.PseudoChannels, PseudoChannel: pc, Bank: bank}
}

// RowAddr identifies one row within a stack.
type RowAddr struct {
	BankAddr
	Row int
}

// String renders the row address as "ch0.pc1.ba2.row345".
func (r RowAddr) String() string {
	return fmt.Sprintf("%s.row%d", r.BankAddr, r.Row)
}

// Valid reports whether the row address is within geometry g.
func (r RowAddr) Valid(g Geometry) bool {
	return r.BankAddr.Valid(g) && r.Row >= 0 && r.Row < g.Rows
}

// WithRow returns a copy of r addressing a different row in the same bank.
func (r RowAddr) WithRow(row int) RowAddr {
	r.Row = row
	return r
}

// Banks iterates over every bank in the stack in canonical order
// (channel-major, then pseudo channel, then bank) and calls fn for each.
func Banks(g Geometry, fn func(BankAddr)) {
	for ch := 0; ch < g.Channels; ch++ {
		for pc := 0; pc < g.PseudoChannels; pc++ {
			for ba := 0; ba < g.Banks; ba++ {
				fn(BankAddr{Channel: ch, PseudoChannel: pc, Bank: ba})
			}
		}
	}
}

// SubarrayLayout describes how a bank's rows split into subarrays. The
// paper reverse-engineers subarrays of 832 and 768 rows in the tested chip.
type SubarrayLayout struct {
	sizes  []int
	starts []int // starts[i] is the first row of subarray i
	rows   int
}

// NewSubarrayLayout builds a layout from the given subarray sizes. The
// sizes must be positive; their sum defines the number of rows covered.
func NewSubarrayLayout(sizes []int) (*SubarrayLayout, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("addr: subarray layout needs at least one subarray")
	}
	l := &SubarrayLayout{
		sizes:  make([]int, len(sizes)),
		starts: make([]int, len(sizes)),
	}
	copy(l.sizes, sizes)
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("addr: subarray %d has non-positive size %d", i, s)
		}
		l.starts[i] = l.rows
		l.rows += s
	}
	return l, nil
}

// Rows returns the total number of rows the layout covers.
func (l *SubarrayLayout) Rows() int { return l.rows }

// Count returns the number of subarrays.
func (l *SubarrayLayout) Count() int { return len(l.sizes) }

// Size returns the number of rows in subarray i.
func (l *SubarrayLayout) Size(i int) int { return l.sizes[i] }

// Start returns the first row of subarray i.
func (l *SubarrayLayout) Start(i int) int { return l.starts[i] }

// End returns one past the last row of subarray i.
func (l *SubarrayLayout) End(i int) int { return l.starts[i] + l.sizes[i] }

// Locate returns the subarray index containing row, and the row's offset
// within that subarray. It panics if row is outside the layout, which
// indicates a geometry/layout mismatch bug.
func (l *SubarrayLayout) Locate(row int) (sa, offset int) {
	if row < 0 || row >= l.rows {
		panic(fmt.Sprintf("addr: row %d outside subarray layout of %d rows", row, l.rows))
	}
	// Binary search over starts.
	lo, hi := 0, len(l.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.starts[mid] <= row {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, row - l.starts[lo]
}

// SameSubarray reports whether two rows fall in the same subarray.
func (l *SubarrayLayout) SameSubarray(a, b int) bool {
	sa, _ := l.Locate(a)
	sb, _ := l.Locate(b)
	return sa == sb
}

// IsEdge reports whether the row is the first or last row of its subarray.
// Edge rows have only one in-subarray neighbour, which is how the paper's
// single-sided hammering reverse-engineers subarray boundaries.
func (l *SubarrayLayout) IsEdge(row int) bool {
	sa, off := l.Locate(row)
	return off == 0 || off == l.sizes[sa]-1
}
