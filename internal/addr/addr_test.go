package addr

import (
	"testing"
	"testing/quick"
)

func paperGeometry() Geometry {
	return Geometry{
		Channels:       8,
		PseudoChannels: 2,
		Banks:          16,
		Rows:           16384,
		Columns:        32,
		ColumnBytes:    32,
	}
}

func TestPaperGeometryCapacity(t *testing.T) {
	g := paperGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	const wantBytes = 4 << 30 // 4 GiB stack density, as in the paper
	if got := g.TotalBytes(); got != wantBytes {
		t.Fatalf("TotalBytes() = %d, want %d", got, wantBytes)
	}
	if got := g.RowBytes(); got != 1024 {
		t.Fatalf("RowBytes() = %d, want 1024", got)
	}
	if got := g.RowBits(); got != 8192 {
		t.Fatalf("RowBits() = %d, want 8192", got)
	}
	if got := g.TotalBanks(); got != 256 {
		t.Fatalf("TotalBanks() = %d, want 256 (8ch x 2pc x 16 banks)", got)
	}
}

func TestGeometryValidateRejectsZeroDims(t *testing.T) {
	cases := []func(*Geometry){
		func(g *Geometry) { g.Channels = 0 },
		func(g *Geometry) { g.PseudoChannels = 0 },
		func(g *Geometry) { g.Banks = -1 },
		func(g *Geometry) { g.Rows = 0 },
		func(g *Geometry) { g.Columns = 0 },
		func(g *Geometry) { g.ColumnBytes = 0 },
	}
	for i, mutate := range cases {
		g := paperGeometry()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted invalid geometry %+v", i, g)
		}
	}
}

func TestDieGrouping(t *testing.T) {
	g := paperGeometry()
	if got := g.Dies(); got != 4 {
		t.Fatalf("Dies() = %d, want 4", got)
	}
	wantDie := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for ch, want := range wantDie {
		if got := g.DieOf(ch); got != want {
			t.Errorf("DieOf(%d) = %d, want %d", ch, got, want)
		}
	}
}

func TestBankFlatRoundTrip(t *testing.T) {
	g := paperGeometry()
	seen := make(map[int]bool)
	Banks(g, func(b BankAddr) {
		flat := b.Flat(g)
		if seen[flat] {
			t.Fatalf("duplicate flat index %d for %v", flat, b)
		}
		seen[flat] = true
		if got := BankFromFlat(g, flat); got != b {
			t.Fatalf("BankFromFlat(%d) = %v, want %v", flat, got, b)
		}
	})
	if len(seen) != g.TotalBanks() {
		t.Fatalf("Banks visited %d banks, want %d", len(seen), g.TotalBanks())
	}
}

func TestBankAddrValid(t *testing.T) {
	g := paperGeometry()
	valid := BankAddr{Channel: 7, PseudoChannel: 1, Bank: 15}
	if !valid.Valid(g) {
		t.Errorf("%v should be valid", valid)
	}
	invalid := []BankAddr{
		{Channel: 8},
		{PseudoChannel: 2},
		{Bank: 16},
		{Channel: -1},
	}
	for _, b := range invalid {
		if b.Valid(g) {
			t.Errorf("%v should be invalid", b)
		}
	}
}

func TestRowAddrStringAndValid(t *testing.T) {
	g := paperGeometry()
	r := RowAddr{BankAddr: BankAddr{Channel: 3, PseudoChannel: 1, Bank: 2}, Row: 100}
	if got, want := r.String(), "ch3.pc1.ba2.row100"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !r.Valid(g) {
		t.Error("row should be valid")
	}
	if r.WithRow(16384).Valid(g) {
		t.Error("row 16384 should be invalid")
	}
	if r.WithRow(5).Row != 5 {
		t.Error("WithRow did not set row")
	}
}

func TestSubarrayLayoutPaperShape(t *testing.T) {
	// The paper's bank: sixteen 832-row and four 768-row subarrays
	// summing to 16384 rows, with the 768-row ones in the middle region.
	sizes := make([]int, 0, 20)
	for i := 0; i < 8; i++ {
		sizes = append(sizes, 832)
	}
	for i := 0; i < 4; i++ {
		sizes = append(sizes, 768)
	}
	for i := 0; i < 8; i++ {
		sizes = append(sizes, 832)
	}
	l, err := NewSubarrayLayout(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows() != 16384 {
		t.Fatalf("layout rows = %d, want 16384", l.Rows())
	}
	if l.Count() != 20 {
		t.Fatalf("layout count = %d, want 20", l.Count())
	}
	// Last subarray must be the last 832 rows, per the paper's observation.
	last := l.Count() - 1
	if l.Size(last) != 832 || l.Start(last) != 16384-832 {
		t.Fatalf("last subarray = [%d, %d), want [15552, 16384)", l.Start(last), l.End(last))
	}
}

func TestSubarrayLocate(t *testing.T) {
	l, err := NewSubarrayLayout([]int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		row, sa, off int
	}{
		{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {29, 1, 19}, {30, 2, 0}, {59, 2, 29},
	}
	for _, c := range cases {
		sa, off := l.Locate(c.row)
		if sa != c.sa || off != c.off {
			t.Errorf("Locate(%d) = (%d, %d), want (%d, %d)", c.row, sa, off, c.sa, c.off)
		}
	}
}

func TestSubarrayLocatePropertyRoundTrip(t *testing.T) {
	l, err := NewSubarrayLayout([]int{832, 768, 832, 768})
	if err != nil {
		t.Fatal(err)
	}
	f := func(r uint16) bool {
		row := int(r) % l.Rows()
		sa, off := l.Locate(row)
		return l.Start(sa)+off == row && off < l.Size(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubarrayLocatePanicsOutOfRange(t *testing.T) {
	l, _ := NewSubarrayLayout([]int{16})
	defer func() {
		if recover() == nil {
			t.Fatal("Locate(16) should panic")
		}
	}()
	l.Locate(16)
}

func TestSubarrayEdges(t *testing.T) {
	l, _ := NewSubarrayLayout([]int{4, 4})
	wantEdges := map[int]bool{0: true, 3: true, 4: true, 7: true}
	for row := 0; row < 8; row++ {
		if got := l.IsEdge(row); got != wantEdges[row] {
			t.Errorf("IsEdge(%d) = %v, want %v", row, got, wantEdges[row])
		}
	}
	if l.SameSubarray(3, 4) {
		t.Error("rows 3 and 4 are in different subarrays")
	}
	if !l.SameSubarray(4, 7) {
		t.Error("rows 4 and 7 are in the same subarray")
	}
}

func TestNewSubarrayLayoutRejectsBadSizes(t *testing.T) {
	if _, err := NewSubarrayLayout(nil); err == nil {
		t.Error("empty layout should be rejected")
	}
	if _, err := NewSubarrayLayout([]int{5, 0}); err == nil {
		t.Error("zero-size subarray should be rejected")
	}
	if _, err := NewSubarrayLayout([]int{-3}); err == nil {
		t.Error("negative subarray should be rejected")
	}
}
