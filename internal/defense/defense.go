// Package defense implements the paper's defense implication: a
// memory-controller-side preventive-refresh mechanism that adapts to the
// heterogeneous RowHammer vulnerability the characterization uncovers.
//
// The guard watches the activation stream per bank (a Graphene-style
// counter table, simplified to exact per-row counters) and refreshes a
// row's neighbours once its activation count reaches a safety threshold,
// then resets the counter. A uniform policy must derive its single
// threshold from the most vulnerable channel of the whole stack; an
// adaptive policy uses each channel's own measured HCfirst, spending far
// fewer preventive refreshes in robust channels while preventing every
// bitflip — the efficiency gain the paper anticipates.
package defense

import (
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

// Policy yields the per-channel activation threshold at which a row's
// neighbours are preventively refreshed.
type Policy interface {
	// Threshold returns the guard threshold for a channel, in
	// activations of a single aggressor row.
	Threshold(channel int) int
	// Name identifies the policy in reports.
	Name() string
}

// Uniform applies one threshold everywhere, derived from the worst
// channel's HCfirst (what a vendor without per-channel knowledge ships).
type Uniform struct{ T int }

// Threshold implements Policy.
func (u Uniform) Threshold(int) int { return u.T }

// Name implements Policy.
func (u Uniform) Name() string { return "uniform" }

// Adaptive applies per-channel thresholds from the characterization.
type Adaptive struct{ PerChannel []int }

// Threshold implements Policy. A channel outside the characterized set
// returns 0 — no measured HCfirst means no safe threshold — which
// Guard.Hammer turns into an error instead of guessing a value for
// memory the defender never profiled.
func (a Adaptive) Threshold(ch int) int {
	if ch < 0 || ch >= len(a.PerChannel) {
		return 0
	}
	return a.PerChannel[ch]
}

// Name implements Policy.
func (a Adaptive) Name() string { return "adaptive" }

// SafetyFromHCFirst converts a measured minimum HCfirst (in double-sided
// hammers) into a guard threshold in single-row activations, with a 2x
// safety margin: one double-sided hammer activates each aggressor once,
// so a victim is safe while each neighbour stays under HCfirst
// activations; the guard fires at half that.
func SafetyFromHCFirst(hcFirst int) int {
	t := hcFirst / 2
	if t < 1 {
		t = 1
	}
	return t
}

// Stats reports what the guard did.
type Stats struct {
	ObservedActs        int64
	PreventiveRefreshes int64
}

// Guard wraps a device's activation path with the preventive-refresh
// defense. Drive hammering through Hammer (the guarded equivalent of
// Device.HammerPair) so the guard sees every activation, as a memory
// controller would.
type Guard struct {
	dev    *hbm.Device
	policy Policy

	counters map[counterKey]int
	stats    Stats
}

type counterKey struct {
	bank addr.BankAddr
	row  int // logical row
}

// NewGuard wraps dev with the policy.
func NewGuard(dev *hbm.Device, policy Policy) *Guard {
	return &Guard{
		dev:      dev,
		policy:   policy,
		counters: make(map[counterKey]int),
	}
}

// Stats returns what the guard has done so far.
func (g *Guard) Stats() Stats { return g.stats }

// Hammer performs n double-sided hammers of the two aggressor rows while
// enforcing the policy: whenever an aggressor's activation count reaches
// the channel's threshold, the guard refreshes the aggressor's logical
// neighbours and retires its counter. Hammering is chunked so thresholds
// are honoured mid-burst. Passing the same row as both aggressors is
// allowed and counts both activations of each hammer against that one
// row's counter (the device-level HammerPair would reject the aliased
// pair; the guard degrades it to the single-row hammer path).
func (g *Guard) Hammer(b addr.BankAddr, rowA, rowB, n int) error {
	thr := g.policy.Threshold(b.Channel)
	if thr <= 0 {
		return fmt.Errorf("defense: policy %s has no positive threshold for channel %d (channel outside the characterized set?)",
			g.policy.Name(), b.Channel)
	}
	// A degenerate pair names one aggressor twice. The activation stream
	// the controller sees is still two activations per hammer, but they
	// land on ONE counter: drive the single-row hammer path and account
	// the chunk once — incrementing the aliased key per list entry
	// overshot the threshold by up to a chunk and double-counted acts.
	sameRow := rowA == rowB
	if sameRow && thr < 2 {
		return fmt.Errorf("defense: threshold %d for channel %d cannot be honoured for a doubled aggressor (each hammer is 2 activations of row %d)",
			thr, b.Channel, rowA)
	}
	remaining := n
	for remaining > 0 {
		// Largest chunk that keeps every aggressor under threshold: a
		// distinct row spends one activation per hammer, a doubled row two.
		chunk := remaining
		if sameRow {
			if room := (thr - g.counters[counterKey{b, rowA}]) / 2; room < chunk {
				chunk = room
			}
		} else {
			for _, row := range []int{rowA, rowB} {
				if room := thr - g.counters[counterKey{b, row}]; room < chunk {
					chunk = room
				}
			}
		}
		if chunk <= 0 {
			if err := g.flushSaturated(b, rowA, rowB, thr, sameRow); err != nil {
				return err
			}
			continue
		}
		if sameRow {
			if err := g.dev.HammerSingle(b, rowA, 2*chunk); err != nil {
				return err
			}
		} else if err := g.dev.HammerPair(b, rowA, rowB, chunk); err != nil {
			return err
		}
		if err := g.dev.AdvanceTime(g.dev.Config().Timing.TRP); err != nil {
			return err
		}
		if sameRow {
			g.counters[counterKey{b, rowA}] += 2 * chunk
		} else {
			g.counters[counterKey{b, rowA}] += chunk
			g.counters[counterKey{b, rowB}] += chunk
		}
		g.stats.ObservedActs += int64(2 * chunk)
		remaining -= chunk
	}
	// Flush eagerly rather than waiting for the next burst: a counter that
	// just reached threshold means the neighbours have absorbed their full
	// disturbance budget, and retiring it here keeps the table bounded by
	// rows with a residual (sub-threshold) count.
	return g.flushSaturated(b, rowA, rowB, thr, sameRow)
}

// flushSaturated preventively refreshes the neighbours of any aggressor
// whose counter cannot absorb one more hammer, then retires the entry.
// Deleting rather than zeroing keeps the table from growing monotonically
// over a run: an entry exists only while its row carries un-refreshed
// activations.
func (g *Guard) flushSaturated(b addr.BankAddr, rowA, rowB, thr int, sameRow bool) error {
	rows := []int{rowA, rowB}
	need := 1
	if sameRow {
		rows = rows[:1]
		need = 2
	}
	for _, row := range rows {
		key := counterKey{b, row}
		if g.counters[key] > thr-need {
			if err := g.refreshNeighbours(b, row); err != nil {
				return err
			}
			delete(g.counters, key)
		}
	}
	return nil
}

// refreshNeighbours activates and precharges the logical neighbours of
// the saturated aggressor, restoring their charge and clearing their
// accumulated disturbance. The logical neighbours suffice for the
// supported mappings only because the guard, like the paper's defender,
// uses the recovered physical adjacency: translate through the mapper.
func (g *Guard) refreshNeighbours(b addr.BankAddr, logicalRow int) error {
	m := g.dev.Mapper()
	phys := m.ToPhysical(logicalRow)
	for _, p := range []int{phys - 1, phys + 1} {
		if p < 0 || p >= g.dev.Geometry().Rows {
			continue
		}
		if err := hbm.RefreshRow(g.dev, b, m.ToLogical(p)); err != nil {
			return err
		}
		g.stats.PreventiveRefreshes++
	}
	return nil
}
