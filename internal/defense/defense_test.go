package defense

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

func bankAddr(ch int) addr.BankAddr {
	return addr.BankAddr{Channel: ch, PseudoChannel: 0, Bank: 0}
}

// attack hammers one victim per channel under the guard and returns the
// total bitflips plus the guard's refresh spend.
func attack(t *testing.T, policy func(d *hbm.Device) Policy) (flips int, s Stats) {
	t.Helper()
	cfg := config.SmallChip()
	h, err := core.NewHarnessFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := h.Device()
	g := NewGuard(d, policy(d))
	layout := cfg.Layout()
	phys := layout.Start(1) + layout.Size(1)/2
	m := d.Mapper()
	pattern := make([]byte, d.Geometry().RowBytes())
	for i := range pattern {
		pattern[i] = 0xFF
	}
	for ch := 0; ch < cfg.Geometry.Channels; ch++ {
		b := bankAddr(ch)
		lv := m.ToLogical(phys)
		la, lb := m.ToLogical(phys-1), m.ToLogical(phys+1)
		if err := hbm.WriteRow(d, b, lv, pattern); err != nil {
			t.Fatal(err)
		}
		if err := g.Hammer(b, la, lb, 3*core.DefaultHammers); err != nil {
			t.Fatal(err)
		}
		got, err := hbm.ReadRow(d, b, lv)
		if err != nil {
			t.Fatal(err)
		}
		flips += hbm.CountMismatches(got, pattern)
	}
	return flips, g.Stats()
}

// measuredHCFirst returns a conservative per-channel minimum HCfirst the
// defender would obtain from characterization (here: the configured
// floor-adjusted model, probed on a few rows).
func measuredHCFirst(t *testing.T, cfg *config.Config) []int {
	t.Helper()
	h, err := core.NewHarnessFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	layout := cfg.Layout()
	phys := layout.Start(1) + layout.Size(1)/2
	out := make([]int, cfg.Geometry.Channels)
	for ch := range out {
		minHC := core.DefaultHammers
		for i := 0; i < 3; i++ {
			w, err := h.WCDP(bankAddr(ch), phys+i*5, core.DefaultHammers)
			if err != nil {
				t.Fatal(err)
			}
			if w.Found && w.HCFirst < minHC {
				minHC = w.HCFirst
			}
		}
		out[ch] = minHC
	}
	return out
}

func TestGuardPreventsAllFlips(t *testing.T) {
	profile := measuredHCFirst(t, config.SmallChip())

	uniformT := SafetyFromHCFirst(minOf(profile))
	flips, uniStats := attack(t, func(*hbm.Device) Policy { return Uniform{T: uniformT} })
	if flips != 0 {
		t.Fatalf("uniform guard leaked %d flips", flips)
	}

	adaptive := make([]int, len(profile))
	for ch, hc := range profile {
		adaptive[ch] = SafetyFromHCFirst(hc)
	}
	flips, adaStats := attack(t, func(*hbm.Device) Policy { return Adaptive{PerChannel: adaptive} })
	if flips != 0 {
		t.Fatalf("adaptive guard leaked %d flips", flips)
	}

	// The paper's efficiency claim: adapting to per-channel vulnerability
	// spends fewer preventive refreshes than the worst-case-uniform
	// policy, at equal protection.
	if adaStats.PreventiveRefreshes >= uniStats.PreventiveRefreshes {
		t.Fatalf("adaptive spent %d refreshes, uniform %d; adaptation must be cheaper",
			adaStats.PreventiveRefreshes, uniStats.PreventiveRefreshes)
	}
	t.Logf("preventive refreshes: uniform %d, adaptive %d (%.0f%% saved)",
		uniStats.PreventiveRefreshes, adaStats.PreventiveRefreshes,
		100*(1-float64(adaStats.PreventiveRefreshes)/float64(uniStats.PreventiveRefreshes)))
}

func TestUnguardedAttackFlips(t *testing.T) {
	// Control: with an absurdly high threshold the guard never fires and
	// the attack succeeds, proving the attack used is actually dangerous.
	flips, s := attack(t, func(*hbm.Device) Policy { return Uniform{T: 1 << 30} })
	if flips == 0 {
		t.Fatal("attack harmless even without defense; test is vacuous")
	}
	if s.PreventiveRefreshes != 0 {
		t.Fatal("guard fired despite the huge threshold")
	}
}

func TestGuardRejectsBadThreshold(t *testing.T) {
	cfg := config.SmallChip()
	d, err := hbm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuard(d, Uniform{T: 0})
	if err := g.Hammer(bankAddr(0), 10, 12, 100); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestAdaptiveOutOfRangeChannelErrors(t *testing.T) {
	// Regression: Adaptive.Threshold indexed PerChannel directly, so any
	// channel outside the characterized slice panicked the guard. It must
	// surface as an error through Guard.Hammer instead.
	cfg := config.SmallChip()
	d, err := hbm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuard(d, Adaptive{PerChannel: []int{1000, 1000}})
	for _, ch := range []int{len([]int{1000, 1000}), cfg.Geometry.Channels - 1, -1} {
		if err := g.Hammer(bankAddr(ch), 10, 12, 100); err == nil {
			t.Fatalf("channel %d outside the characterized set accepted", ch)
		}
	}
	// In-range channels still hammer.
	if err := g.Hammer(bankAddr(1), 10, 12, 100); err != nil {
		t.Fatalf("in-range channel rejected: %v", err)
	}
}

func TestGuardSameRowAggressors(t *testing.T) {
	// Regression: rowA == rowB incremented the shared counter once per
	// list entry, overshooting the threshold by up to a chunk (and the
	// device layer would reject the aliased HammerPair outright). The
	// guard must degrade to single-row hammering with exact accounting.
	cfg := config.SmallChip()
	d, err := hbm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const thr, hammers = 100, 5000
	g := NewGuard(d, Uniform{T: thr})
	if err := g.Hammer(bankAddr(0), 20, 20, hammers); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.ObservedActs != 2*hammers {
		t.Fatalf("observed %d activations, want %d (2 per hammer, counted once)", s.ObservedActs, 2*hammers)
	}
	// 2 activations per hammer against a threshold of 100: the counter
	// saturates every 50 hammers, and each saturation refreshes the two
	// physical neighbours.
	if want := int64(2*hammers/thr) * 2; s.PreventiveRefreshes != want {
		t.Fatalf("spent %d preventive refreshes, want %d", s.PreventiveRefreshes, want)
	}
	// An unguardable doubled-aggressor threshold is an error, not a hang.
	g = NewGuard(d, Uniform{T: 1})
	if err := g.Hammer(bankAddr(0), 20, 20, 10); err == nil {
		t.Fatal("threshold 1 accepted for a doubled aggressor")
	}
}

func TestGuardCounterTableBounded(t *testing.T) {
	// Regression: saturation zeroed counters instead of deleting them, so
	// the table grew by one entry per row ever hammered. Rows whose
	// counters saturate must leave no residue.
	cfg := config.SmallChip()
	d, err := hbm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const thr = 64
	g := NewGuard(d, Uniform{T: thr})
	b := bankAddr(0)
	for row := 10; row < 200; row += 4 {
		// Exactly thr activations per aggressor: each pair saturates and
		// retires both counters.
		if err := g.Hammer(b, row, row+2, thr); err != nil {
			t.Fatal(err)
		}
	}
	if len(g.counters) != 0 {
		t.Fatalf("counter table retains %d entries after every aggressor saturated", len(g.counters))
	}
	if g.Stats().PreventiveRefreshes == 0 {
		t.Fatal("no preventive refreshes despite saturating every counter")
	}
}

func TestSafetyFromHCFirst(t *testing.T) {
	if got := SafetyFromHCFirst(30000); got != 15000 {
		t.Errorf("SafetyFromHCFirst(30000) = %d, want 15000", got)
	}
	if got := SafetyFromHCFirst(1); got != 1 {
		t.Errorf("SafetyFromHCFirst(1) = %d, want clamp to 1", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if (Uniform{T: 1}).Name() != "uniform" || (Adaptive{}).Name() != "adaptive" {
		t.Fatal("policy names wrong")
	}
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
