// Package mapping implements the logical-to-physical row address mapping
// inside the simulated HBM2 device, and the reverse-engineering procedure
// the paper uses to recover it (Section 3.1): single-sided hammering
// reveals which memory-controller-visible rows are physically adjacent,
// because bitflips appear only in an aggressor's true physical neighbours.
package mapping

import (
	"fmt"
	"sort"

	"github.com/safari-repro/hbmrh/internal/config"
)

// Mapper translates memory-controller-visible (logical) row addresses to
// in-DRAM (physical) row addresses and back. Implementations must be
// bijections over [0, Rows).
type Mapper interface {
	// ToPhysical maps a logical row to its physical row.
	ToPhysical(logical int) int
	// ToLogical maps a physical row to its logical row.
	ToLogical(physical int) int
	// Rows returns the number of rows the mapping covers.
	Rows() int
	// Scheme identifies the underlying mapping scheme.
	Scheme() config.MappingScheme
}

// New constructs the Mapper for the given scheme over rows rows.
func New(scheme config.MappingScheme, rows int) (Mapper, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("mapping: rows = %d, must be positive", rows)
	}
	switch scheme {
	case config.MappingDirect:
		return direct{rows: rows}, nil
	case config.MappingXorSwizzle:
		return xorSwizzle{rows: rows}, nil
	case config.MappingMirrored:
		return mirrored{rows: rows}, nil
	default:
		return nil, fmt.Errorf("mapping: unknown scheme %v", scheme)
	}
}

// direct is the identity mapping.
type direct struct{ rows int }

func (d direct) ToPhysical(l int) int         { return l }
func (d direct) ToLogical(p int) int          { return p }
func (d direct) Rows() int                    { return d.rows }
func (d direct) Scheme() config.MappingScheme { return config.MappingDirect }

// xorSwizzle swaps the middle pair of every 4-row group: logical rows
// 0,1,2,3 occupy physical rows 0,1,3,2. The transform is an involution.
type xorSwizzle struct{ rows int }

func (x xorSwizzle) ToPhysical(l int) int {
	if l&2 != 0 && l^1 < x.rows {
		return l ^ 1
	}
	return l
}
func (x xorSwizzle) ToLogical(p int) int          { return x.ToPhysical(p) }
func (x xorSwizzle) Rows() int                    { return x.rows }
func (x xorSwizzle) Scheme() config.MappingScheme { return config.MappingXorSwizzle }

// mirrored reverses the low three address bits within every odd 8-row
// group, a remapping observed in some DDR4 devices. Also an involution.
type mirrored struct{ rows int }

func (m mirrored) ToPhysical(l int) int {
	if l/8%2 == 1 {
		group := l &^ 7
		p := group | (7 - l&7)
		if p < m.rows {
			return p
		}
	}
	return l
}
func (m mirrored) ToLogical(p int) int          { return m.ToPhysical(p) }
func (m mirrored) Rows() int                    { return m.rows }
func (m mirrored) Scheme() config.MappingScheme { return config.MappingMirrored }

// Verify checks that m is a bijection by exercising the round trip on
// every row. It is O(rows) and intended for tests and device bring-up.
func Verify(m Mapper) error {
	seen := make([]bool, m.Rows())
	for l := 0; l < m.Rows(); l++ {
		p := m.ToPhysical(l)
		if p < 0 || p >= m.Rows() {
			return fmt.Errorf("mapping: logical %d maps to out-of-range physical %d", l, p)
		}
		if seen[p] {
			return fmt.Errorf("mapping: physical %d hit twice", p)
		}
		seen[p] = true
		if back := m.ToLogical(p); back != l {
			return fmt.Errorf("mapping: round trip %d -> %d -> %d", l, p, back)
		}
	}
	return nil
}

// AdjacencyOracle answers the physical-adjacency question the paper's
// methodology extracts from silicon: hammering the given logical row,
// which logical rows exhibit bitflips? Only physical neighbours within the
// same subarray flip, so the answer reveals physical adjacency.
type AdjacencyOracle interface {
	// VictimsOf returns the logical rows that flip when the given logical
	// row is hammered single-sided. The result may be in any order.
	VictimsOf(logical int) []int
}

// OracleFunc adapts a function to the AdjacencyOracle interface.
type OracleFunc func(logical int) []int

// VictimsOf implements AdjacencyOracle.
func (f OracleFunc) VictimsOf(logical int) []int { return f(logical) }

// RecoveredMap is the output of reverse engineering: a physical ordering
// of logical rows, split into subarrays.
type RecoveredMap struct {
	// Subarrays lists each recovered subarray as the sequence of logical
	// row addresses in physical order. The orientation of each sequence
	// (ascending vs descending physical address) is not observable from
	// adjacency alone, so each is normalized to start with its smaller
	// endpoint.
	Subarrays [][]int
}

// SubarraySizes returns the recovered subarray row counts in bank order.
func (r *RecoveredMap) SubarraySizes() []int {
	sizes := make([]int, len(r.Subarrays))
	for i, sa := range r.Subarrays {
		sizes[i] = len(sa)
	}
	return sizes
}

// Recover reconstructs physical row adjacency for logical rows
// [0, rows) by querying the oracle for every row, exactly as the paper's
// methodology does with single-sided RowHammer on real silicon.
//
// Rows at subarray edges report a single victim; interior rows report two.
// The recovered graph therefore decomposes into simple paths, one per
// subarray.
func Recover(oracle AdjacencyOracle, rows int) (*RecoveredMap, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("mapping: rows = %d, must be positive", rows)
	}
	adj := make([][]int, rows)
	for l := 0; l < rows; l++ {
		vs := oracle.VictimsOf(l)
		for _, v := range vs {
			if v < 0 || v >= rows {
				return nil, fmt.Errorf("mapping: oracle reported out-of-range victim %d for row %d", v, l)
			}
			if v == l {
				return nil, fmt.Errorf("mapping: oracle reported row %d as its own victim", l)
			}
		}
		if len(vs) > 2 {
			return nil, fmt.Errorf("mapping: row %d reports %d neighbours; a row has at most two", l, len(vs))
		}
		adj[l] = append([]int(nil), vs...)
	}

	// Adjacency must be symmetric: if hammering a flips b, hammering b
	// must flip a. Asymmetry indicates a measurement error.
	for l, vs := range adj {
		for _, v := range vs {
			if !contains(adj[v], l) {
				return nil, fmt.Errorf("mapping: asymmetric adjacency between rows %d and %d", l, v)
			}
		}
	}

	visited := make([]bool, rows)
	var paths [][]int
	// Walk each path from an endpoint (degree <= 1).
	for start := 0; start < rows; start++ {
		if visited[start] || len(adj[start]) > 1 {
			continue
		}
		paths = append(paths, walkPath(adj, visited, start))
	}
	// Any unvisited row now would sit on a cycle, which physical DRAM
	// rows cannot form.
	for l := 0; l < rows; l++ {
		if !visited[l] {
			return nil, fmt.Errorf("mapping: row %d lies on an adjacency cycle; oracle inconsistent", l)
		}
	}

	for _, p := range paths {
		normalizePath(p)
	}
	// Order subarrays by their minimum logical row so the recovered bank
	// layout is deterministic.
	sort.Slice(paths, func(i, j int) bool { return pathMin(paths[i]) < pathMin(paths[j]) })
	return &RecoveredMap{Subarrays: paths}, nil
}

func walkPath(adj [][]int, visited []bool, start int) []int {
	path := []int{start}
	visited[start] = true
	cur, prev := start, -1
	for {
		next := -1
		for _, v := range adj[cur] {
			if v != prev {
				next = v
				break
			}
		}
		if next == -1 || visited[next] {
			return path
		}
		visited[next] = true
		path = append(path, next)
		prev, cur = cur, next
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func pathMin(p []int) int {
	lo := p[0]
	for _, x := range p[1:] {
		if x < lo {
			lo = x
		}
	}
	return lo
}

// normalizePath orients a path so its first element is the smaller of the
// two endpoints, making recovery deterministic.
func normalizePath(p []int) {
	if len(p) > 1 && p[0] > p[len(p)-1] {
		for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
			p[i], p[j] = p[j], p[i]
		}
	}
}

// Classify determines which known mapping scheme reproduces the recovered
// adjacency, by checking each candidate against every recovered subarray.
// It returns the matching scheme, or an error if none (or more than one
// distinguishable candidate) fits.
func Classify(rec *RecoveredMap, rows int) (config.MappingScheme, error) {
	candidates := []config.MappingScheme{
		config.MappingDirect,
		config.MappingXorSwizzle,
		config.MappingMirrored,
	}
	var matches []config.MappingScheme
	for _, s := range candidates {
		m, err := New(s, rows)
		if err != nil {
			return 0, err
		}
		if consistent(rec, m) {
			matches = append(matches, s)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return 0, fmt.Errorf("mapping: no known scheme matches recovered adjacency")
	default:
		// Ambiguity is possible in principle (e.g. tiny banks); prefer
		// the simplest scheme, reporting the ambiguity.
		return matches[0], fmt.Errorf("mapping: %d schemes match; adjacency underdetermines the scheme", len(matches))
	}
}

// consistent reports whether mapper m reproduces the recovered physical
// ordering: consecutive logical rows in each recovered path must map to
// physically consecutive rows.
func consistent(rec *RecoveredMap, m Mapper) bool {
	for _, sa := range rec.Subarrays {
		for i := 0; i+1 < len(sa); i++ {
			pa, pb := m.ToPhysical(sa[i]), m.ToPhysical(sa[i+1])
			if pa-pb != 1 && pb-pa != 1 {
				return false
			}
		}
	}
	return true
}
