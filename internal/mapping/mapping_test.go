package mapping

import (
	"testing"
	"testing/quick"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

func TestAllSchemesAreBijections(t *testing.T) {
	for _, scheme := range []config.MappingScheme{
		config.MappingDirect, config.MappingXorSwizzle, config.MappingMirrored,
	} {
		for _, rows := range []int{1, 7, 8, 16, 100, 16384} {
			m, err := New(scheme, rows)
			if err != nil {
				t.Fatalf("%v rows=%d: %v", scheme, rows, err)
			}
			if err := Verify(m); err != nil {
				t.Errorf("%v rows=%d: %v", scheme, rows, err)
			}
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(config.MappingDirect, 0); err == nil {
		t.Error("rows=0 should be rejected")
	}
	if _, err := New(config.MappingScheme(99), 16); err == nil {
		t.Error("unknown scheme should be rejected")
	}
}

func TestXorSwizzleShape(t *testing.T) {
	m, err := New(config.MappingXorSwizzle, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 2, 4, 5, 7, 6}
	for l, p := range want {
		if got := m.ToPhysical(l); got != p {
			t.Errorf("ToPhysical(%d) = %d, want %d", l, got, p)
		}
	}
}

func TestMirroredShape(t *testing.T) {
	m, err := New(config.MappingMirrored, 16)
	if err != nil {
		t.Fatal(err)
	}
	// First 8-row group is identity; second group mirrors its low bits.
	for l := 0; l < 8; l++ {
		if got := m.ToPhysical(l); got != l {
			t.Errorf("ToPhysical(%d) = %d, want identity", l, got)
		}
	}
	for l := 8; l < 16; l++ {
		want := 8 + (15 - l)
		if got := m.ToPhysical(l); got != want {
			t.Errorf("ToPhysical(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	const rows = 16384
	ms := make([]Mapper, 0, 3)
	for _, s := range []config.MappingScheme{
		config.MappingDirect, config.MappingXorSwizzle, config.MappingMirrored,
	} {
		m, err := New(s, rows)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	f := func(r uint16) bool {
		l := int(r) % rows
		for _, m := range ms {
			if m.ToLogical(m.ToPhysical(l)) != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// syntheticOracle simulates the single-sided-hammer adjacency measurement
// for a device with the given mapper and subarray layout.
func syntheticOracle(m Mapper, layout *addr.SubarrayLayout) AdjacencyOracle {
	return OracleFunc(func(logical int) []int {
		p := m.ToPhysical(logical)
		var victims []int
		for _, np := range []int{p - 1, p + 1} {
			if np < 0 || np >= m.Rows() {
				continue
			}
			if !layout.SameSubarray(p, np) {
				continue // bitflips do not cross subarray boundaries
			}
			victims = append(victims, m.ToLogical(np))
		}
		return victims
	})
}

func mustLayout(t *testing.T, sizes []int) *addr.SubarrayLayout {
	t.Helper()
	l, err := addr.NewSubarrayLayout(sizes)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRecoverFindsSubarrayBoundaries(t *testing.T) {
	layout := mustLayout(t, []int{80, 64, 80})
	m, err := New(config.MappingXorSwizzle, layout.Rows())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(syntheticOracle(m, layout), layout.Rows())
	if err != nil {
		t.Fatal(err)
	}
	got := rec.SubarraySizes()
	want := []int{80, 64, 80}
	if len(got) != len(want) {
		t.Fatalf("recovered %d subarrays (%v), want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered sizes %v, want %v", got, want)
		}
	}
}

func TestRecoverReconstructsPhysicalOrder(t *testing.T) {
	layout := mustLayout(t, []int{32})
	m, err := New(config.MappingXorSwizzle, 32)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(syntheticOracle(m, layout), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Subarrays) != 1 {
		t.Fatalf("recovered %d paths, want 1", len(rec.Subarrays))
	}
	path := rec.Subarrays[0]
	// Consecutive recovered rows must be physically adjacent.
	for i := 0; i+1 < len(path); i++ {
		d := m.ToPhysical(path[i]) - m.ToPhysical(path[i+1])
		if d != 1 && d != -1 {
			t.Fatalf("rows %d and %d recovered as adjacent but are physically %d apart",
				path[i], path[i+1], d)
		}
	}
}

func TestClassifyIdentifiesScheme(t *testing.T) {
	layout := mustLayout(t, []int{832, 768, 832})
	for _, scheme := range []config.MappingScheme{
		config.MappingXorSwizzle, config.MappingMirrored,
	} {
		m, err := New(scheme, layout.Rows())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(syntheticOracle(m, layout), layout.Rows())
		if err != nil {
			t.Fatal(err)
		}
		got, err := Classify(rec, layout.Rows())
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if got != scheme {
			t.Errorf("Classify = %v, want %v", got, scheme)
		}
	}
}

func TestRecoverRejectsInconsistentOracles(t *testing.T) {
	cases := map[string]AdjacencyOracle{
		"self victim":  OracleFunc(func(l int) []int { return []int{l} }),
		"out of range": OracleFunc(func(l int) []int { return []int{99} }),
		"three neighbours": OracleFunc(func(l int) []int {
			return []int{(l + 1) % 8, (l + 2) % 8, (l + 3) % 8}
		}),
		"asymmetric": OracleFunc(func(l int) []int {
			if l == 0 {
				return []int{1}
			}
			return nil
		}),
		"cycle": OracleFunc(func(l int) []int {
			return []int{(l + 7) % 8, (l + 1) % 8}
		}),
	}
	for name, oracle := range cases {
		if _, err := Recover(oracle, 8); err == nil {
			t.Errorf("%s: Recover accepted inconsistent oracle", name)
		}
	}
}

func TestRecoverRejectsBadRows(t *testing.T) {
	if _, err := Recover(OracleFunc(func(int) []int { return nil }), 0); err == nil {
		t.Error("rows=0 should be rejected")
	}
}

func TestRecoverSingleRowBank(t *testing.T) {
	rec, err := Recover(OracleFunc(func(int) []int { return nil }), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Subarrays) != 1 || len(rec.Subarrays[0]) != 1 {
		t.Fatalf("recovered %v, want single 1-row subarray", rec.Subarrays)
	}
}
