package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/experiments"
	"github.com/safari-repro/hbmrh/internal/results"
)

// testJournal seals the first `chunks` single-job chunks of the test
// study into a fresh journal in dir and closes it, returning the header.
// (testing.TB so the fuzz harness can share it.)
func testJournal(t testing.TB, dir string, chunks int) JournalHeader {
	t.Helper()
	s := testStudy()
	opts, err := s.options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	info, err := experiments.Describe(s.Experiment, opts)
	if err != nil {
		t.Fatal(err)
	}
	hdr := JournalHeader{
		Experiment:  s.Experiment,
		ConfigHash:  info.ConfigHash,
		CodeVersion: results.CodeVersion(),
		Params:      info.Params,
		Lo:          0,
		Hi:          info.Jobs,
	}
	j, err := OpenJournal(dir, hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for c := 0; c < chunks; c++ {
		a, err := experiments.RunSlice(s.Experiment, opts, c, c+1)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(a, c, c+1); err != nil {
			t.Fatal(err)
		}
	}
	return hdr
}

func reopen(t *testing.T, dir string, hdr JournalHeader) (*Journal, error) {
	t.Helper()
	j, err := OpenJournal(dir, hdr)
	if err == nil {
		t.Cleanup(func() { j.Close() })
	}
	return j, err
}

// TestJournalResume pins the happy path: sealed chunks are recovered and
// the resume point is the first unsealed job.
func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournal(t, dir, 2)
	j, err := reopen(t, dir, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Done()) != 2 || j.Resumed() != 2 {
		t.Fatalf("resumed journal: %d chunks, resume at %d; want 2 chunks, resume at 2", len(j.Done()), j.Resumed())
	}
	if _, err := j.ReadChunk(j.Done()[1]); err != nil {
		t.Fatalf("reading sealed chunk: %v", err)
	}
}

// TestJournalTornTailTolerated kills the worker mid-record: a final line
// without its newline is the interrupted write, dropped on resume; the
// chunk it described simply reruns.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournal(t, dir, 1)
	f, err := os.OpenFile(journalPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"lo":1,"hi":2,"file":"chunk-1-2.js`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, err := reopen(t, dir, hdr)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if len(j.Done()) != 1 || j.Resumed() != 1 {
		t.Fatalf("after torn tail: %d chunks, resume at %d; want 1 chunk, resume at 1", len(j.Done()), j.Resumed())
	}
}

// TestJournalCorruptRecordRejected damages a committed (newline-
// terminated) record: unlike a torn tail this is real corruption and
// must be refused with ErrJournal.
func TestJournalCorruptRecordRejected(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournal(t, dir, 2)
	path := journalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"file"`, `"fi!e"`, 1)
	corrupt := strings.Join(lines, "")
	if corrupt == string(data) {
		t.Fatal("corruption target not found")
	}
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reopen(t, dir, hdr); !errors.Is(err, ErrJournal) {
		t.Fatalf("got %v, want ErrJournal", err)
	}
}

// TestJournalTruncationRejected removes a committed record from the
// middle of the sequence (journal truncated/rewritten): the remaining
// records are no longer contiguous from the header's Lo and must be
// refused.
func TestJournalTruncationRejected(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournal(t, dir, 2)
	path := journalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Drop the first chunk record, keeping header and second record.
	truncated := lines[0] + lines[2]
	if err := os.WriteFile(path, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reopen(t, dir, hdr); !errors.Is(err, ErrJournal) {
		t.Fatalf("got %v, want ErrJournal", err)
	}
}

// TestJournalChunkCorruptionRejected flips a byte in a sealed chunk
// artifact: the journaled SHA-256 no longer matches and the journal is
// refused rather than silently merging damaged measurements.
func TestJournalChunkCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournal(t, dir, 1)
	chunk := filepath.Join(dir, chunkFileName(0, 1))
	data, err := os.ReadFile(chunk)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(chunk, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reopen(t, dir, hdr); !errors.Is(err, ErrJournal) {
		t.Fatalf("got %v, want ErrJournal", err)
	}
}

// TestJournalRecordFileMismatchRejected pins the Lo/Hi↔File cross-check:
// a committed record whose slice was corrupted to a different — but
// still contiguous and in-range — slice would pass the hash check
// against the old chunk file and silently skip the jobs in between on
// resume. The file name re-derives from the slice, so the forgery must
// be refused.
func TestJournalRecordFileMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournal(t, dir, 1)
	path := journalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	widened := strings.Replace(string(data), `"lo":0,"hi":1`, `"lo":0,"hi":2`, 1)
	if widened == string(data) {
		t.Fatal("record slice not found")
	}
	if err := os.WriteFile(path, []byte(widened), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reopen(t, dir, hdr); !errors.Is(err, ErrJournal) {
		t.Fatalf("got %v, want ErrJournal", err)
	}
}

// TestJournalHeaderMismatchRejected resumes against a journal written
// for a different run (different hammer budget → different params): the
// identity check must refuse it.
func TestJournalHeaderMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournal(t, dir, 1)
	other := hdr
	other.Params = map[string]string{"hammers": "123"}
	if _, err := reopen(t, dir, other); !errors.Is(err, ErrJournal) {
		t.Fatalf("got %v, want ErrJournal", err)
	}
	// And a different slice of the same run.
	shifted := hdr
	shifted.Hi = hdr.Hi - 1
	if _, err := reopen(t, dir, shifted); !errors.Is(err, ErrJournal) {
		t.Fatalf("slice mismatch: got %v, want ErrJournal", err)
	}
}

// TestJournalVersionRejected pins the versioning gate: a journal written
// by a future format version must be refused, not misparsed.
func TestJournalVersionRejected(t *testing.T) {
	dir := t.TempDir()
	hdr := testJournal(t, dir, 1)
	path := journalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(string(data), `"version":1`, `"version":2`, 1)
	if bumped == string(data) {
		t.Fatal("version field not found in header")
	}
	if err := os.WriteFile(path, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reopen(t, dir, hdr); !errors.Is(err, ErrJournal) {
		t.Fatalf("got %v, want ErrJournal", err)
	}
}
