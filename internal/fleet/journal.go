package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/safari-repro/hbmrh/internal/failpoint"
	"github.com/safari-repro/hbmrh/internal/results"
)

// Failpoint sites covering every durability step of the journal
// protocol: the header commit, the atomic chunk-artifact write
// (writeFileSync's write/sync/rename triple, shared with the shard
// output), and the record append + sync. The torture harness kills or
// tears each one and asserts the resumed run stays byte-identical
// (DESIGN.md §13).
var (
	fpHeaderWrite = failpoint.Register("fleet/journal/header-write")
	fpHeaderSync  = failpoint.Register("fleet/journal/header-sync")
	fpRecordWrite = failpoint.Register("fleet/journal/record-write")
	fpRecordSync  = failpoint.Register("fleet/journal/record-sync")
	fpFileWrite   = failpoint.Register("fleet/write/payload")
	fpFileSync    = failpoint.Register("fleet/write/sync")
	fpFileRename  = failpoint.Register("fleet/write/rename")
)

// The worker journal: an append-only record of which job slices of a
// shard have been measured and sealed, written so that a worker killed at
// any instruction can resume exactly where it died.
//
// Layout (one directory per worker):
//
//	journal                  header line + one record line per chunk
//	chunk-<lo>-<hi>.json     sealed slice artifact (results.Artifact)
//
// The journal file is JSONL. Line 1 is the header — the run identity a
// resume must match (journal format version, experiment, config hash,
// code version, params, the shard's job slice). Every later line records
// one completed chunk: its job slice, its artifact file, and the
// artifact's SHA-256. A record is appended only after its chunk file is
// fully written, synced and atomically renamed into place, so the journal
// never references a partially-written artifact.
//
// Failure semantics on read:
//
//   - A torn final line (the write the kill interrupted, recognizable by
//     the missing trailing newline) is discarded: the chunk it would have
//     described simply reruns.
//   - Any other damage — an unparsable line, a version or identity
//     mismatch, out-of-order or non-contiguous chunk slices, a missing or
//     hash-mismatched chunk file — is rejected with ErrJournal. Silent
//     acceptance could double-count or drop jobs and break the
//     byte-identity contract, so the worker refuses and the coordinator
//     decides (it wipes the worker directory and restarts the shard
//     fresh).

// JournalVersion is the on-disk journal format version. Readers refuse
// journals of any other version; bump it on incompatible changes to the
// header or record schema.
const JournalVersion = 1

// journalMagic guards against pointing the reader at an arbitrary JSONL
// file.
const journalMagic = "hbmrh-fleet-journal"

// ErrJournal tags journal validation failures. A worker that fails with
// it exits with code ExitJournal, telling the coordinator the journal
// (not the measurement) is the problem and a fresh start is required.
var ErrJournal = fmt.Errorf("fleet: unusable journal")

// JournalHeader is the run identity stamped on line 1. Two header values
// must be equal field for field for a resume to proceed.
type JournalHeader struct {
	Journal string `json:"journal"`
	Version int    `json:"version"`
	// Experiment, ConfigHash, CodeVersion and Params pin what is being
	// measured; Lo/Hi pin the shard's job slice. A mismatch means the
	// journal belongs to a different run and resuming would merge
	// incompatible chunks.
	Experiment  string            `json:"experiment"`
	ConfigHash  string            `json:"config_hash"`
	CodeVersion string            `json:"code_version"`
	Params      map[string]string `json:"params,omitempty"`
	Lo          int               `json:"lo"`
	Hi          int               `json:"hi"`
}

// equal reports whether two headers describe the same run.
func (h JournalHeader) equal(o JournalHeader) bool {
	if h.Journal != o.Journal || h.Version != o.Version ||
		h.Experiment != o.Experiment || h.ConfigHash != o.ConfigHash ||
		h.CodeVersion != o.CodeVersion || h.Lo != o.Lo || h.Hi != o.Hi ||
		len(h.Params) != len(o.Params) {
		return false
	}
	for k, v := range h.Params {
		if o.Params[k] != v {
			return false
		}
	}
	return true
}

// ChunkRecord is one completed job slice: the half-open job range, the
// sealed artifact's file name (relative to the journal directory) and its
// SHA-256 over the exact bytes on disk.
type ChunkRecord struct {
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	File   string `json:"file"`
	SHA256 string `json:"sha256"`
}

// Journal is an open worker journal positioned for appends.
type Journal struct {
	dir    string
	f      *os.File
	header JournalHeader
	done   []ChunkRecord
}

// journalPath returns the journal file path for a worker directory.
func journalPath(dir string) string { return filepath.Join(dir, "journal") }

// chunkFileName names a sealed chunk artifact within the journal
// directory.
func chunkFileName(lo, hi int) string { return fmt.Sprintf("chunk-%d-%d.json", lo, hi) }

// OpenJournal opens (resuming) or creates (fresh) the journal in dir for
// the run described by want. On resume it validates the header against
// want, the record sequence for contiguity from want.Lo, and every
// referenced chunk file's presence and hash; any damage beyond a torn
// final line returns an error wrapping ErrJournal. The returned journal
// is positioned to append the next chunk, and Done lists the chunks that
// need not rerun.
func OpenJournal(dir string, want JournalHeader) (*Journal, error) {
	want.Journal, want.Version = journalMagic, JournalVersion
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := journalPath(dir)
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return createJournal(dir, want)
	case err != nil:
		return nil, err
	}
	done, err := validateJournal(dir, want, data)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{dir: dir, f: f, header: want, done: done}, nil
}

// createJournal starts a fresh journal: header line written, synced, and
// ready for chunk records.
func createJournal(dir string, hdr JournalHeader) (*Journal, error) {
	f, err := os.OpenFile(journalPath(dir), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := fpHeaderWrite.Write(f, append(line, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	if err := fpHeaderSync.Inject(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{dir: dir, f: f, header: hdr}, nil
}

// validateJournal parses and checks journal bytes against the expected
// header, returning the usable chunk records. A torn final line (no
// trailing newline) is dropped; everything else must be pristine.
func validateJournal(dir string, want JournalHeader, data []byte) ([]ChunkRecord, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: %s: empty journal (header never committed)", ErrJournal, journalPath(dir))
	}
	// A torn tail is the final write the kill interrupted: drop it. Every
	// line before it was followed by a synced write, so damage there is
	// real corruption, not a crash artifact.
	torn := data[len(data)-1] != '\n'
	lines := bytes.Split(data, []byte("\n"))
	if lines[len(lines)-1] == nil || len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1] // trailing newline yields one empty split
	} else if torn {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("%w: %s: header line torn", ErrJournal, journalPath(dir))
	}
	var hdr JournalHeader
	if err := strictUnmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("%w: %s: bad header: %v", ErrJournal, journalPath(dir), err)
	}
	if hdr.Journal != journalMagic || hdr.Version != JournalVersion {
		return nil, fmt.Errorf("%w: %s: journal %q version %d, this build writes %q version %d",
			ErrJournal, journalPath(dir), hdr.Journal, hdr.Version, journalMagic, JournalVersion)
	}
	if !hdr.equal(want) {
		return nil, fmt.Errorf("%w: %s: journal belongs to a different run (experiment/config/code/params/slice mismatch)",
			ErrJournal, journalPath(dir))
	}
	var done []ChunkRecord
	next := hdr.Lo
	for i, line := range lines[1:] {
		var rec ChunkRecord
		if err := strictUnmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("%w: %s: record %d: %v", ErrJournal, journalPath(dir), i+1, err)
		}
		if rec.Lo != next || rec.Hi <= rec.Lo || rec.Hi > hdr.Hi {
			return nil, fmt.Errorf("%w: %s: record %d covers [%d,%d), want a slice starting at %d within [%d,%d)",
				ErrJournal, journalPath(dir), i+1, rec.Lo, rec.Hi, next, hdr.Lo, hdr.Hi)
		}
		// The file name re-derives from the slice, so a corrupted Lo/Hi (or
		// File) cannot pair a valid record with the wrong chunk artifact:
		// without this, a bit-flipped Hi on the final record would pass the
		// hash check against the old file and silently skip jobs on resume.
		if rec.File != chunkFileName(rec.Lo, rec.Hi) {
			return nil, fmt.Errorf("%w: %s: record %d names file %q for slice [%d,%d), want %q",
				ErrJournal, journalPath(dir), i+1, rec.File, rec.Lo, rec.Hi, chunkFileName(rec.Lo, rec.Hi))
		}
		if err := verifyChunkFile(dir, rec); err != nil {
			return nil, err
		}
		done = append(done, rec)
		next = rec.Hi
	}
	return done, nil
}

// strictUnmarshal parses one journal line, rejecting unknown fields so a
// record truncated into another record's prefix cannot pass.
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after record")
	}
	return nil
}

// verifyChunkFile checks a record's artifact file exists and hashes to
// the journaled digest.
func verifyChunkFile(dir string, rec ChunkRecord) error {
	data, err := os.ReadFile(filepath.Join(dir, rec.File))
	if err != nil {
		return fmt.Errorf("%w: chunk [%d,%d): %v", ErrJournal, rec.Lo, rec.Hi, err)
	}
	if sum := sha256Hex(data); sum != rec.SHA256 {
		return fmt.Errorf("%w: chunk file %s corrupt: sha256 %s, journal records %s",
			ErrJournal, filepath.Join(dir, rec.File), sum, rec.SHA256)
	}
	return nil
}

func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Done returns the validated chunk records, in ascending contiguous
// order starting at the header's Lo.
func (j *Journal) Done() []ChunkRecord { return j.done }

// Resumed returns the first job index not yet covered by a journaled
// chunk.
func (j *Journal) Resumed() int {
	if len(j.done) == 0 {
		return j.header.Lo
	}
	return j.done[len(j.done)-1].Hi
}

// Append seals one completed chunk: the artifact is written to a
// temporary file, synced, renamed to its canonical name, and only then
// recorded (and synced) in the journal. A kill between any two of those
// steps leaves the journal pointing only at complete artifacts.
func (j *Journal) Append(a *results.Artifact, lo, hi int) error {
	data, err := a.MarshalIndented()
	if err != nil {
		return err
	}
	name := chunkFileName(lo, hi)
	if err := writeFileSync(filepath.Join(j.dir, name), data); err != nil {
		return err
	}
	rec := ChunkRecord{Lo: lo, Hi: hi, File: name, SHA256: sha256Hex(data)}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := fpRecordWrite.Write(j.f, append(line, '\n')); err != nil {
		return err
	}
	if err := fpRecordSync.Inject(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.done = append(j.done, rec)
	return nil
}

// ReadChunk loads and re-verifies one journaled chunk artifact.
func (j *Journal) ReadChunk(rec ChunkRecord) (*results.Artifact, error) {
	if err := verifyChunkFile(j.dir, rec); err != nil {
		return nil, err
	}
	return results.ReadFile(filepath.Join(j.dir, rec.File))
}

// Close releases the journal file handle.
func (j *Journal) Close() error { return j.f.Close() }

// writeFileSync writes data to path atomically: temp file in the same
// directory, sync, rename. Each of the three durability steps carries a
// failpoint site; a kill between any two leaves either no file or the
// complete old/new file, never a torn visible one — which the torture
// harness proves by crashing at each site in turn.
func writeFileSync(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := fpFileWrite.Write(tmp, data); err != nil {
		tmp.Close()
		return err
	}
	if err := fpFileSync.Inject(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fpFileRename.Inject(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
