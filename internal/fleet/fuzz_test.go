package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// The pristine journal the fuzzer damages: one valid three-chunk
// journal per process (its header, bytes, records and chunk directory),
// built once because sealing chunks runs real (small) measurements.
// Fuzz iterations only mutate copies of the journal bytes.
var pristineOnce sync.Once
var pristineHdr JournalHeader
var pristineData []byte
var pristineRecs []ChunkRecord
var pristineDir string

func pristineJournal(tb testing.TB) (JournalHeader, []byte, []ChunkRecord, string) {
	pristineOnce.Do(func() {
		var err error
		if pristineDir, err = os.MkdirTemp("", "hbmrh-fuzz-journal-*"); err != nil {
			tb.Fatal(err)
		}
		pristineHdr = testJournal(tb, pristineDir, 3)
		if pristineData, err = os.ReadFile(journalPath(pristineDir)); err != nil {
			tb.Fatal(err)
		}
		j, err := OpenJournal(pristineDir, pristineHdr)
		if err != nil {
			tb.Fatal(err)
		}
		pristineRecs = j.Done()
		j.Close()
	})
	return pristineHdr, pristineData, pristineRecs, pristineDir
}

// FuzzJournalRecovery throws arbitrary single-fault damage — a
// truncation at any byte, or a bit-flip of any byte — at a valid journal
// and pins the recovery contract: OpenJournal either resumes with a
// strict prefix of the pristine records (the torn-tail allowance) or
// refuses with ErrJournal. It must never misread: no successful open may
// return a record that differs from the pristine sequence, because a
// misread record is merged into the artifact and breaks byte-identity.
func FuzzJournalRecovery(f *testing.F) {
	hdr, pristine, recs, srcDir := pristineJournal(f)

	// Seeds: no-op, empty file, header-only, cuts at each line boundary
	// and mid-line, and flips in the header, a middle record, the final
	// record's hash, and a newline.
	f.Add(uint8(0), 0)
	f.Add(uint8(0), len(pristine))
	f.Add(uint8(0), len(pristine)-1)
	f.Add(uint8(0), len(pristine)/2)
	f.Add(uint8(0), 20)
	f.Add(uint8(1), 10)
	f.Add(uint8(7), len(pristine)/2)
	f.Add(uint8(3), len(pristine)-2)
	f.Add(uint8(4), len(pristine)-40)

	f.Fuzz(func(t *testing.T, op uint8, pos int) {
		mutated := append([]byte(nil), pristine...)
		if op == 0 {
			// Truncate: everything from pos on never reached the disk.
			if pos < 0 {
				pos = 0
			}
			if pos > len(mutated) {
				pos = len(mutated)
			}
			mutated = mutated[:pos]
		} else {
			// Bit-flip: one stored byte decays. op picks the bit.
			if len(mutated) == 0 {
				t.Skip()
			}
			pos = ((pos % len(mutated)) + len(mutated)) % len(mutated)
			mutated[pos] ^= 1 << (op % 8)
		}

		// Stage a directory with pristine chunk files and the damaged
		// journal; the chunk files' own corruption is covered elsewhere
		// (the SHA-256 check, TestJournalChunkCorruptionRejected).
		dir := t.TempDir()
		for _, rec := range recs {
			if err := os.Link(filepath.Join(srcDir, rec.File), filepath.Join(dir, rec.File)); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(journalPath(dir), mutated, 0o644); err != nil {
			t.Fatal(err)
		}

		j, err := OpenJournal(dir, hdr)
		if err != nil {
			if !errors.Is(err, ErrJournal) {
				t.Fatalf("damage (op %d, pos %d) rejected with a non-ErrJournal error: %v", op, pos, err)
			}
			return
		}
		defer j.Close()
		done := j.Done()
		if len(done) > len(recs) {
			t.Fatalf("damage (op %d, pos %d) grew the journal: %d records, pristine has %d", op, pos, len(done), len(recs))
		}
		for i, rec := range done {
			if !reflect.DeepEqual(rec, recs[i]) {
				t.Fatalf("damage (op %d, pos %d) misread record %d: got %+v, pristine %+v", op, pos, i, rec, recs[i])
			}
		}
		if want := hdr.Lo + len(done); j.Resumed() != want && !(len(done) > 0 && j.Resumed() == done[len(done)-1].Hi) {
			t.Fatalf("damage (op %d, pos %d): resume at %d with %d single-job records", op, pos, j.Resumed(), len(done))
		}
	})
}
