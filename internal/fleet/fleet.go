// Package fleet is the control plane that turns the experiment registry
// into a service that survives real fleets: one coordinator partitions a
// registered experiment's job plan into contiguous shards
// (results.ShardRange), launches one worker process per shard through a
// pluggable Launcher (local subprocesses by default; SSH or a scheduler
// later), streams per-shard progress events, replaces dead or straggling
// workers, and merges the shard artifacts through the conflict-checked
// results.Merge into output byte-identical to a single-process run.
//
// Workers checkpoint: each seals its shard in chunk-sized job slices,
// journaling every sealed slice (journal.go) before moving on, so a
// worker killed at any instruction resumes exactly where it died. The
// byte-identity argument is compositional and rests on two invariants
// the repo already pins: plans are pure (every process computes the same
// job list from the same options) and slice artifacts merge exactly
// (Shewchuk-sum streams, order-fixed folds). Chunks merge into a shard
// identical to an uninterrupted shard; shards merge into an artifact
// identical to an unsharded run; therefore any interleaving of kills,
// resumes and retries yields the same bytes. DESIGN.md §10 documents the
// protocol.
package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/experiments"
	"github.com/safari-repro/hbmrh/internal/failpoint"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/store"
)

// Spec configures one fleet run.
type Spec struct {
	// Study selects the experiment and its knobs, forwarded verbatim to
	// every worker.
	Study
	// Workers is the shard worker count; <= 0 means 2. Slices that would
	// be empty (more workers than jobs) are simply not launched.
	Workers int
	// Chunk is the per-worker checkpoint granularity in jobs (<= 0 means
	// 1: journal after every job).
	Chunk int
	// Dir holds the worker journals and shard artifacts; "" means a
	// temporary directory removed after the run. A fixed Dir makes the
	// whole fleet run resumable: rerunning the same spec resumes every
	// shard from its journal.
	Dir string
	// Retries is how many times a failed or stalled shard worker is
	// relaunched before the run fails; < 0 disables retries. The zero
	// value means 2. Relaunched workers resume from their journal, so a
	// retry repeats only the jobs the dead worker never sealed.
	Retries int
	// StallTimeout, when positive, is the straggler gate: a worker that
	// emits no event for this long is killed and retried. Zero disables
	// stall detection (jobs of wildly different cost make "no news" a
	// poor death signal at small timeouts).
	StallTimeout time.Duration
	// KillAfter injects faults for testing: worker i's FIRST launch gets
	// -die-after KillAfter[i] and exits abruptly after sealing that many
	// chunks. Retries relaunch it without the flag.
	KillAfter map[int]int
	// WorkerFailpoints, when non-empty, is a failpoint spec
	// (internal/failpoint) passed to every worker's FIRST launch via
	// -failpoints — the torture harness's hook for crashing workers at
	// exact durability steps. Like KillAfter, relaunches come back clean.
	WorkerFailpoints string
	// Backoff is the base delay of the capped exponential backoff between
	// a worker's relaunches: attempt n waits ~Backoff·2ⁿ (capped at 30s),
	// scaled by a deterministic jitter factor in [0.5, 1.0) derived from
	// the worker index and attempt, so a fleet of workers felled by one
	// cause does not relaunch in lockstep yet every schedule is
	// reproducible. Zero means the 250ms default; negative disables
	// backoff (relaunch immediately).
	Backoff time.Duration
	// Launcher starts workers; nil means LocalLauncher.
	Launcher Launcher
	// Ctx cancels the run, killing every live worker.
	Ctx context.Context
	// Progress, if non-nil, receives aggregate job completion across all
	// shards (serialized, monotonic), including jobs recovered from
	// journals on resume.
	Progress engine.ProgressFunc
	// Log, if non-nil, receives coordinator lifecycle lines: launches,
	// resumes, deaths, retries, stalls, the merge.
	Log func(format string, args ...any)
	// Store, if non-nil, receives every shard artifact after the merge
	// succeeds (the auto-ingest hook): the query service's store ends the
	// run holding the same shards `characterize merge` consumed, so its
	// rebuilt view renders the same bytes as the returned artifact.
	// Re-running a resumable fleet re-ingests identical shard bytes,
	// which the content-addressed store dedups as no-ops.
	Store *store.Store
}

// Run executes a fleet run and returns the merged artifact. The artifact
// is byte-identical to experiments.Run of the same study in one process —
// including when workers die and resume, which the kill/resume tests and
// the CI smoke pin.
func Run(s Spec) (*results.Artifact, error) {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	logf := s.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 2
	}
	retries := s.Retries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	opts, err := s.options(ctx)
	if err != nil {
		return nil, err
	}
	info, err := experiments.Describe(s.Experiment, opts)
	if err != nil {
		return nil, err
	}
	dir := s.Dir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "hbmrh-fleet-*"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	backoff := s.Backoff
	if backoff == 0 {
		backoff = DefaultBackoff
	} else if backoff < 0 {
		backoff = 0
	}
	r := &run{
		spec:     s,
		retries:  retries,
		chunk:    max(s.Chunk, 1),
		dir:      dir,
		launcher: s.Launcher,
		logf:     logf,
		backoff:  backoff,
		total:    info.Jobs,
		done:     map[int]int{},
	}
	if r.launcher == nil {
		r.launcher = LocalLauncher{}
	}

	// Partition the plan and launch one monitored worker per non-empty
	// shard. ShardRange is the same partition the -shard i/N CLI uses, so
	// a fleet run is exactly the shell loop it replaces.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type shardOut struct {
		path string
		lo   int
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
		shards []shardOut
	)
	launched := 0
	for i := 0; i < workers; i++ {
		lo, hi := results.ShardRange(info.Jobs, i, workers)
		if lo == hi {
			continue
		}
		launched++
		out := filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		shards = append(shards, shardOut{path: out, lo: lo})
		wg.Add(1)
		go func(i, lo, hi int, out string) {
			defer wg.Done()
			if err := r.shard(ctx, i, lo, hi, out); err != nil {
				mu.Lock()
				if first == nil && ctx.Err() == nil {
					first = err
				} else if first == nil {
					first = ctx.Err()
				}
				mu.Unlock()
				cancel() // one dead shard past its retry budget fails the run
			}
		}(i, lo, hi, out)
	}
	logf("fleet: %s: %d jobs on axis %q across %d worker(s), journals in %s",
		s.Experiment, info.Jobs, info.Axis, launched, dir)
	wg.Wait()
	if first != nil {
		return nil, first
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Auto-merge through the same conflict-checked path `characterize
	// merge` uses; shard order is canonicalized there, so this is belt
	// and suspenders.
	paths := make([]string, len(shards))
	for i, sh := range shards {
		paths[i] = sh.path
	}
	arts := make([]*results.Artifact, len(paths))
	for i, p := range paths {
		if arts[i], err = results.ReadFile(p); err != nil {
			return nil, fmt.Errorf("fleet: reading shard artifact: %w", err)
		}
	}
	merged, err := results.MergeShards(arts, paths)
	if err != nil {
		return nil, fmt.Errorf("fleet: merging shards: %w", err)
	}
	logf("fleet: merged %d shard artifact(s)", len(paths))
	if s.Store != nil {
		for _, p := range paths {
			r, err := s.Store.IngestFiles(p)
			if err != nil {
				return nil, fmt.Errorf("fleet: auto-ingest: %w", err)
			}
			if len(r) == 1 && r[0].Duplicate {
				logf("fleet: shard %s already in store (%.12s)", filepath.Base(p), r[0].Hash)
			} else {
				logf("fleet: ingested %s into corpus %s (gen %d)", filepath.Base(p), r[0].Corpus, r[0].Gen)
			}
		}
	}
	return merged, nil
}

// DefaultBackoff is the relaunch backoff base when Spec.Backoff is zero.
const DefaultBackoff = 250 * time.Millisecond

// backoffCap bounds the exponential relaunch delay.
const backoffCap = 30 * time.Second

// run is the shared state of one coordinator execution.
type run struct {
	spec     Spec
	retries  int
	chunk    int
	dir      string
	launcher Launcher
	logf     func(string, ...any)
	backoff  time.Duration // base delay; 0 = disabled

	total int
	mu    sync.Mutex
	done  map[int]int // worker -> jobs completed in its slice
}

// observe records a worker progress event and forwards the aggregate,
// keeping the engine's ProgressFunc contract: serialized calls, strictly
// increasing Done.
func (r *run) observe(worker int, e Event) {
	if r.spec.Progress == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.Done <= r.done[worker] {
		return
	}
	r.done[worker] = e.Done
	sum := 0
	for _, d := range r.done {
		sum += d
	}
	r.spec.Progress(engine.Progress{Done: sum, Total: r.total})
}

// shard supervises one shard: launch, monitor, and — on death, stall or
// failed launch — relaunch within the retry budget, after a capped
// exponential backoff so a struggling host is not hammered with
// immediate respawns. Journals make every relaunch a resume; a rejected
// journal (ExitJournal) wipes the worker directory so the relaunch
// starts the shard fresh.
func (r *run) shard(ctx context.Context, i, lo, hi int, out string) error {
	dieAfter := r.spec.KillAfter[i]
	failpoints := r.spec.WorkerFailpoints
	workerDir := filepath.Join(r.dir, fmt.Sprintf("worker-%d", i))
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		argv := r.workerArgv(i, lo, hi, workerDir, out, dieAfter, failpoints)
		dieAfter, failpoints = 0, "" // injected faults fire on the first launch only
		sink := &eventSink{last: time.Now(), onEvent: func(e Event) { r.observe(i, e) }}
		stderr := newTailBuffer(4 << 10)
		proc, lerr := r.launcher.Start(ctx, argv, sink, stderr)
		if lerr != nil {
			// A failed spawn is a failed attempt, not a fatal run: the host
			// may be briefly out of PIDs or file descriptors, exactly what
			// backoff-and-retry exists for.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			r.logf("fleet: worker %d: launch failed: %v", i, lerr)
			if attempt >= r.retries {
				return fmt.Errorf("fleet: worker %d failed %d attempt(s) on jobs [%d,%d): launching: %w",
					i, attempt+1, lo, hi, lerr)
			}
			if err := r.relaunchBackoff(ctx, i, attempt); err != nil {
				return err
			}
			continue
		}
		r.logf("fleet: worker %d: attempt %d covering jobs [%d,%d)", i, attempt+1, lo, hi)

		stalled := r.watchStall(ctx, proc, sink)
		werr := proc.Wait()
		wasStalled := stalled()
		if werr == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		code := exitCode(werr)
		switch {
		case wasStalled:
			r.logf("fleet: worker %d stalled (no event for %s); killed", i, r.spec.StallTimeout)
		case code == ExitInjected:
			r.logf("fleet: worker %d died (injected)", i)
		case code == failpoint.ExitCode:
			r.logf("fleet: worker %d died (failpoint)", i)
		case code == ExitJournal:
			r.logf("fleet: worker %d rejected its journal; restarting the shard fresh", i)
			if err := os.RemoveAll(workerDir); err != nil {
				return fmt.Errorf("fleet: resetting worker %d directory: %w", i, err)
			}
		default:
			r.logf("fleet: worker %d exited with code %d", i, code)
		}
		if attempt >= r.retries {
			return fmt.Errorf("fleet: worker %d failed %d attempt(s) on jobs [%d,%d): %w\n%s",
				i, attempt+1, lo, hi, werr, stderr.String())
		}
		if err := r.relaunchBackoff(ctx, i, attempt); err != nil {
			return err
		}
	}
}

// relaunchBackoff waits out the backoff delay for the given failed
// attempt (0-based), returning early only on cancellation.
func (r *run) relaunchBackoff(ctx context.Context, worker, attempt int) error {
	d := BackoffDelay(r.backoff, worker, attempt)
	if d <= 0 {
		return nil
	}
	r.logf("fleet: worker %d: backing off %s before relaunch", worker, d)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BackoffDelay computes the relaunch delay after a worker's failed
// attempt (0-based): base·2^attempt capped at 30s, scaled by a
// deterministic jitter factor in [0.5, 1.0) hashed from (worker,
// attempt). Same inputs, same delay — reproducible fleet schedules with
// de-synchronized relaunches. A base <= 0 disables backoff entirely.
func BackoffDelay(base time.Duration, worker, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for n := 0; n < attempt && d < backoffCap; n++ {
		d *= 2
	}
	d = min(d, backoffCap)
	h := fnv.New64a()
	fmt.Fprintf(h, "%d:%d", worker, attempt)
	frac := float64(h.Sum64()%1024) / 1024
	return time.Duration(float64(d) * (0.5 + frac/2))
}

// watchStall arms the straggler gate for one worker attempt. It returns
// a function reporting whether the gate fired; callers invoke it after
// Wait, when the watcher has quiesced.
func (r *run) watchStall(ctx context.Context, proc Proc, sink *eventSink) (stalled func() bool) {
	if r.spec.StallTimeout <= 0 {
		return func() bool { return false }
	}
	fired := make(chan struct{})
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(r.spec.StallTimeout / 4)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				if time.Since(sink.lastEvent()) > r.spec.StallTimeout {
					close(fired)
					proc.Kill()
					return
				}
			}
		}
	}()
	return func() bool {
		once.Do(func() { close(stop) })
		select {
		case <-fired:
			return true
		default:
			return false
		}
	}
}

// workerArgv renders one worker assignment as the WorkerCommand argv —
// the whole coordinator→worker protocol.
func (r *run) workerArgv(i, lo, hi int, dir, out string, dieAfter int, failpoints string) []string {
	s := r.spec
	planner := s.Planner
	if planner == "" {
		planner = "queue"
	}
	chip := s.Chip
	if chip == "" {
		chip = "small"
	}
	argv := []string{WorkerCommand,
		"-experiment", s.Experiment,
		"-chip", chip,
		"-rows", strconv.Itoa(s.Rows),
		"-hammers", strconv.Itoa(s.Hammers),
		"-seeds", strconv.Itoa(s.Seeds),
		"-iterations", strconv.Itoa(s.Iterations),
		"-job-workers", strconv.Itoa(s.JobWorkers),
		"-parallel", strconv.Itoa(s.Parallel),
		"-planner", planner,
		"-worker", strconv.Itoa(i),
		"-lo", strconv.Itoa(lo),
		"-hi", strconv.Itoa(hi),
		"-chunk", strconv.Itoa(r.chunk),
		"-dir", dir,
		"-out", out,
	}
	if dieAfter > 0 {
		argv = append(argv, "-die-after", strconv.Itoa(dieAfter))
	}
	if failpoints != "" {
		argv = append(argv, "-failpoints", failpoints)
	}
	return argv
}

// eventSink parses a worker's stdout into Events as bytes arrive,
// tracking the last event time for the straggler gate.
type eventSink struct {
	mu      sync.Mutex
	buf     []byte
	last    time.Time
	onEvent func(Event)
}

func (p *eventSink) Write(b []byte) (int, error) {
	p.mu.Lock()
	p.buf = append(p.buf, b...)
	var events []Event
	for {
		nl := -1
		for j, c := range p.buf {
			if c == '\n' {
				nl = j
				break
			}
		}
		if nl < 0 {
			break
		}
		line := p.buf[:nl]
		p.buf = p.buf[nl+1:]
		var e Event
		if err := strictUnmarshal(line, &e); err == nil {
			p.last = time.Now()
			events = append(events, e)
		}
	}
	cb := p.onEvent
	p.mu.Unlock()
	if cb != nil {
		for _, e := range events {
			cb(e)
		}
	}
	return len(b), nil
}

func (p *eventSink) lastEvent() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}
