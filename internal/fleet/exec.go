package fleet

import (
	"context"
	"errors"
	"io"
	"os"
	"os/exec"
	"sync"

	"github.com/safari-repro/hbmrh/internal/failpoint"
)

// fpLauncherStart injects spawn failures (fork refused, binary missing)
// into the local launcher; the coordinator must absorb them as retryable
// attempts with backoff, never as a fatal run error.
var fpLauncherStart = failpoint.Register("fleet/launcher/start")

// WorkerCommand is the subcommand name under which host binaries must
// dispatch to WorkerMain: a launcher starts a worker by executing the
// binary with argv [WorkerCommand, flags...]. The argv is the entire
// coordinator→worker protocol (results flow back through the filesystem
// and events through stdout), which is what lets non-local launchers plug
// in without touching the coordinator.
const WorkerCommand = "fleet-worker"

// Proc is one launched worker process.
type Proc interface {
	// Wait blocks until the worker exits; nil means exit status 0.
	Wait() error
	// Kill terminates the worker immediately (straggler replacement).
	Kill() error
}

// Launcher starts shard workers. The default LocalLauncher re-executes
// the running binary as a local subprocess; a remote launcher (SSH, a
// cluster scheduler) implements the same two calls against the same argv
// contract — it only has to run the same build somewhere and stream back
// stdout/stderr, since journals and artifacts live in the worker's
// filesystem and merge gates verify build identity.
type Launcher interface {
	// Start launches one worker with the given argv (argv[0] is
	// WorkerCommand), wiring its stdout (the event stream) and stderr to
	// the given writers. It returns as soon as the process is running.
	Start(ctx context.Context, argv []string, stdout, stderr io.Writer) (Proc, error)
}

// LocalLauncher runs workers as subprocesses of the current binary
// (os.Executable). The zero value is ready to use.
type LocalLauncher struct{}

// Start implements Launcher.
func (LocalLauncher) Start(ctx context.Context, argv []string, stdout, stderr io.Writer) (Proc, error) {
	if err := fpLauncherStart.Inject(); err != nil {
		return nil, err
	}
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, self, argv...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return (*localProc)(cmd), nil
}

type localProc exec.Cmd

func (p *localProc) Wait() error { return (*exec.Cmd)(p).Wait() }
func (p *localProc) Kill() error { return (*exec.Cmd)(p).Process.Kill() }

// exitCode extracts a worker exit status from a Wait error: the standard
// exec.ExitError, or anything exposing ExitCode() int (remote launchers).
// It returns -1 when the error carries no status (e.g. a kill).
func exitCode(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	var coded interface{ ExitCode() int }
	if errors.As(err, &coded) {
		return coded.ExitCode()
	}
	return -1
}

// tailBuffer keeps the last max bytes written to it — enough of a
// worker's stderr to report a useful failure without holding a runaway
// log in memory.
type tailBuffer struct {
	mu  sync.Mutex
	max int
	buf []byte
}

func newTailBuffer(max int) *tailBuffer { return &tailBuffer{max: max} }

func (t *tailBuffer) Write(b []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, b...)
	if len(t.buf) > t.max {
		t.buf = t.buf[len(t.buf)-t.max:]
	}
	return len(b), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}
