package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/experiments"
	"github.com/safari-repro/hbmrh/internal/store"
)

// TestMain doubles the test binary as the fleet worker: the coordinator's
// LocalLauncher re-executes os.Executable() with the WorkerCommand argv,
// which under `go test` is this binary. This is the same dispatch
// cmd/characterize performs, so the tests exercise the real subprocess
// protocol.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == WorkerCommand {
		os.Exit(WorkerMain(os.Args[2:]))
	}
	os.Exit(m.Run())
}

// testStudy is the cheap study the fleet tests run: the rowpress point
// sweep at minimal density (5 plan jobs, milliseconds each).
func testStudy() Study {
	return Study{Experiment: "rowpress", Chip: "small", Rows: 1, Hammers: 60000}
}

// singleProcessBytes runs the study unsharded in this process and
// returns the artifact's canonical bytes.
func singleProcessBytes(t *testing.T, s Study) []byte {
	t.Helper()
	opts, err := s.options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, err := experiments.Run(s.Experiment, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func fleetBytes(t *testing.T, spec Spec) []byte {
	t.Helper()
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFleetMatchesSingleProcess pins the headline contract: a fleet run
// across worker subprocesses produces an artifact byte-identical to the
// single-process run, and aggregate progress arrives monotonic and
// complete.
func TestFleetMatchesSingleProcess(t *testing.T) {
	want := singleProcessBytes(t, testStudy())
	var mu sync.Mutex
	var last engine.Progress
	got := fleetBytes(t, Spec{
		Study:   testStudy(),
		Workers: 2,
		Dir:     t.TempDir(),
		Progress: func(p engine.Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Done <= last.Done {
				t.Errorf("progress not strictly increasing: %+v after %+v", p, last)
			}
			last = p
		},
	})
	if string(got) != string(want) {
		t.Fatalf("fleet artifact differs from single-process run\nfleet:\n%s\nsingle:\n%s", got, want)
	}
	if last.Done != last.Total || last.Total == 0 {
		t.Fatalf("final progress %+v, want Done == Total > 0", last)
	}
}

// TestFleetAutoIngest pins the store hook: a fleet run with Spec.Store
// leaves the store holding every shard, and the store's rebuilt merged
// view renders the same bytes as the artifact the run returned.
func TestFleetAutoIngest(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	got := fleetBytes(t, Spec{
		Study:   testStudy(),
		Workers: 2,
		Dir:     t.TempDir(),
		Store:   st,
	})
	snap, err := st.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Members != 2 || !snap.Complete {
		t.Fatalf("store after fleet run: members=%d complete=%v", snap.Members, snap.Complete)
	}
	fromStore, err := snap.Merged.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if string(fromStore) != string(got) {
		t.Fatal("store's merged view differs from the fleet's returned artifact")
	}
}

// TestFleetKillResumeByteIdentical kills worker 0 after its first sealed
// chunk; the relaunch must resume from the journal and the merged
// artifact must still match the single-process bytes.
func TestFleetKillResumeByteIdentical(t *testing.T) {
	want := singleProcessBytes(t, testStudy())
	var logs []string
	var mu sync.Mutex
	got := fleetBytes(t, Spec{
		Study:     testStudy(),
		Workers:   2,
		Dir:       t.TempDir(),
		Retries:   2,
		KillAfter: map[int]int{0: 1},
		Log: func(format string, a ...any) {
			mu.Lock()
			defer mu.Unlock()
			logs = append(logs, fmt.Sprintf(format, a...))
		},
	})
	if string(got) != string(want) {
		t.Fatalf("artifact after kill+resume differs from single-process run")
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "died (injected)") {
		t.Fatalf("injected death never fired; log:\n%s", joined)
	}
	if !strings.Contains(joined, "worker 0: attempt 2") {
		t.Fatalf("worker 0 was never relaunched; log:\n%s", joined)
	}
}

// TestWorkerResumeInProcess drives RunWorker directly: die after one
// chunk, resume, and check the shard artifact equals an uninterrupted
// slice run. It also checks the resumed session skipped the sealed chunk
// (the start event's Done carries the journaled count).
func TestWorkerResumeInProcess(t *testing.T) {
	s := testStudy()
	opts, err := s.options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	info, err := experiments.Describe(s.Experiment, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Jobs < 3 {
		t.Fatalf("test study plans %d jobs, want >= 3", info.Jobs)
	}
	dir := t.TempDir()
	w := WorkerSpec{
		Study: s,
		Lo:    0, Hi: 3,
		Chunk: 1,
		Dir:   dir,
		Out:   dir + "/shard.json",
	}

	kill := w
	kill.DieAfter = 1
	if err := RunWorker(context.Background(), kill, io.Discard); !errors.Is(err, errInjected) {
		t.Fatalf("DieAfter run: got %v, want injected death", err)
	}
	if _, err := os.Stat(w.Out); !os.IsNotExist(err) {
		t.Fatalf("killed worker wrote its shard artifact anyway (err %v)", err)
	}

	var events strings.Builder
	if err := RunWorker(context.Background(), w, &events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(events.String(), `"event":"start","worker":0,"lo":0,"hi":3,"done":1`) {
		t.Fatalf("resumed worker did not report the journaled chunk:\n%s", events.String())
	}

	got, err := os.ReadFile(w.Out)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := experiments.RunSlice(s.Experiment, opts, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := whole.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed shard artifact differs from uninterrupted slice run")
	}
}

// flakyLauncher hangs (or fails) the first Start per worker, then
// delegates to the real local launcher.
type flakyLauncher struct {
	mu    sync.Mutex
	seen  map[string]bool
	local LocalLauncher
	mode  string // "hang" or "fail"
}

func (f *flakyLauncher) Start(ctx context.Context, argv []string, stdout, stderr io.Writer) (Proc, error) {
	key := strings.Join(argv, " ")
	f.mu.Lock()
	if f.seen == nil {
		f.seen = map[string]bool{}
	}
	firstLaunch := !f.seen[key]
	f.seen[key] = true
	f.mu.Unlock()
	if !firstLaunch {
		return f.local.Start(ctx, argv, stdout, stderr)
	}
	switch f.mode {
	case "hang":
		return newHangProc(), nil
	case "refuse":
		return nil, errors.New("spawn refused")
	default:
		return failProc{}, nil
	}
}

// hangProc emits nothing and waits to be killed — a straggler.
type hangProc struct {
	once sync.Once
	done chan struct{}
}

func newHangProc() *hangProc { return &hangProc{done: make(chan struct{})} }

func (p *hangProc) Wait() error {
	<-p.done
	return errors.New("killed")
}

func (p *hangProc) Kill() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// failProc dies instantly with a generic failure.
type failProc struct{}

func (failProc) Wait() error { return errors.New("worker crashed") }
func (failProc) Kill() error { return nil }

// TestFleetStallKillsAndRetries launches every worker as a straggler
// first: the stall gate must kill it and the relaunch (a real worker)
// must finish with byte-identical output.
func TestFleetStallKillsAndRetries(t *testing.T) {
	want := singleProcessBytes(t, testStudy())
	var logs []string
	var mu sync.Mutex
	got := fleetBytes(t, Spec{
		Study:   testStudy(),
		Workers: 2,
		Dir:     t.TempDir(),
		Retries: 1,
		// Generous: the gate must catch the silent first attempt without
		// ever firing on the real (race-instrumented, slow to start)
		// replacement worker.
		StallTimeout: 2 * time.Second,
		Launcher:     &flakyLauncher{mode: "hang"},
		Log: func(format string, a ...any) {
			mu.Lock()
			defer mu.Unlock()
			logs = append(logs, fmt.Sprintf(format, a...))
		},
	})
	if string(got) != string(want) {
		t.Fatalf("artifact after straggler replacement differs from single-process run")
	}
	if joined := strings.Join(logs, "\n"); !strings.Contains(joined, "stalled") {
		t.Fatalf("stall gate never fired; log:\n%s", joined)
	}
}

// TestFleetLaunchFailureRetried refuses every worker's first spawn at
// the launcher: a launch failure must burn a retry attempt (with
// backoff) rather than fail the run, and the relaunch must produce
// byte-identical output.
func TestFleetLaunchFailureRetried(t *testing.T) {
	want := singleProcessBytes(t, testStudy())
	var logs []string
	var mu sync.Mutex
	got := fleetBytes(t, Spec{
		Study:    testStudy(),
		Workers:  2,
		Dir:      t.TempDir(),
		Retries:  1,
		Backoff:  time.Millisecond,
		Launcher: &flakyLauncher{mode: "refuse"},
		Log: func(format string, a ...any) {
			mu.Lock()
			defer mu.Unlock()
			logs = append(logs, fmt.Sprintf(format, a...))
		},
	})
	if string(got) != string(want) {
		t.Fatalf("artifact after launch-failure retry differs from single-process run")
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "launch failed") {
		t.Fatalf("launch failure never reported; log:\n%s", joined)
	}
	if !strings.Contains(joined, "backing off") {
		t.Fatalf("relaunch skipped its backoff; log:\n%s", joined)
	}
}

// TestBackoffDelay pins the relaunch backoff shape: deterministic for a
// given (worker, attempt), inside the jittered [d/2, d) window of the
// doubled base, capped, and disabled by a non-positive base.
func TestBackoffDelay(t *testing.T) {
	base := DefaultBackoff
	for attempt := 0; attempt < 12; attempt++ {
		d := BackoffDelay(base, 3, attempt)
		if d != BackoffDelay(base, 3, attempt) {
			t.Fatalf("attempt %d: BackoffDelay not deterministic", attempt)
		}
		full := base << attempt
		if full > 30*time.Second || full <= 0 { // shift past the cap (or overflow)
			full = 30 * time.Second
		}
		if d < full/2 || d >= full {
			t.Fatalf("attempt %d: delay %s outside jitter window [%s, %s)", attempt, d, full/2, full)
		}
	}
	if d := BackoffDelay(base, 1, 0); d == BackoffDelay(base, 2, 0) {
		t.Fatalf("workers 1 and 2 share jitter %s; want per-worker spread", d)
	}
	if d := BackoffDelay(0, 0, 5); d != 0 {
		t.Fatalf("disabled backoff returned %s, want 0", d)
	}
	if d := BackoffDelay(-time.Second, 0, 5); d != 0 {
		t.Fatalf("negative base returned %s, want 0", d)
	}
}

// TestFleetRetryBudgetExhausted pins that a shard that keeps dying fails
// the run once its relaunch budget is spent.
func TestFleetRetryBudgetExhausted(t *testing.T) {
	_, err := Run(Spec{
		Study:   testStudy(),
		Workers: 1,
		Dir:     t.TempDir(),
		Retries: -1,
		Launcher: launcherFunc(func(ctx context.Context, argv []string, stdout, stderr io.Writer) (Proc, error) {
			return failProc{}, nil
		}),
	})
	if err == nil || !strings.Contains(err.Error(), "failed 1 attempt(s)") {
		t.Fatalf("got %v, want retry-budget failure", err)
	}
}

// launcherFunc adapts a function to Launcher.
type launcherFunc func(context.Context, []string, io.Writer, io.Writer) (Proc, error)

func (f launcherFunc) Start(ctx context.Context, argv []string, stdout, stderr io.Writer) (Proc, error) {
	return f(ctx, argv, stdout, stderr)
}
