package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/experiments"
	"github.com/safari-repro/hbmrh/internal/failpoint"
	"github.com/safari-repro/hbmrh/internal/results"
)

// Worker-lifecycle failpoint sites: the top of every chunk iteration
// (where a stall simulates a wedged measurement and a kill a mid-shard
// crash) and the moment between the last sealed chunk and the shard
// output write (a crash there must resume into reassembly alone).
var (
	fpWorkerChunk = failpoint.Register("fleet/worker/chunk")
	fpWorkerOut   = failpoint.Register("fleet/worker/out")
)

// Study is the serializable experiment selection a fleet run forwards to
// every worker: the registry experiment plus the uniform knob set, with
// the chip as a preset name so the whole study crosses the process (and,
// later, machine) boundary as flags.
type Study struct {
	// Experiment is the registry name (experiments.Lookup).
	Experiment string
	// Chip is the config preset: "paper" or "small" ("" means small).
	Chip string
	// Rows/Hammers/Seeds/Iterations are the registry sampling knobs.
	Rows, Hammers, Seeds, Iterations int
	// JobWorkers bounds per-job device parallelism
	// (experiments.Options.Workers).
	JobWorkers int
	// Parallel bounds concurrent plan jobs inside one worker process.
	Parallel int
	// Planner is the engine planner name; "" means queue. Planner choice
	// never changes artifacts, so workers may even disagree on it.
	Planner string
}

// options resolves the study into registry options for one process.
func (s Study) options(ctx context.Context) (experiments.Options, error) {
	var cfg *config.Config
	switch s.Chip {
	case "", "small":
		cfg = config.SmallChip()
	case "paper":
		cfg = config.PaperChip()
	default:
		return experiments.Options{}, fmt.Errorf("fleet: unknown chip preset %q (want paper or small)", s.Chip)
	}
	planner := engine.PlanQueue
	if s.Planner != "" {
		var err error
		if planner, err = engine.ParsePlanner(s.Planner); err != nil {
			return experiments.Options{}, err
		}
	}
	return experiments.Options{
		Cfg:        cfg,
		Rows:       s.Rows,
		Hammers:    s.Hammers,
		Seeds:      s.Seeds,
		Iterations: s.Iterations,
		Workers:    s.JobWorkers,
		Parallel:   s.Parallel,
		Planner:    planner,
		Ctx:        ctx,
	}, nil
}

// WorkerSpec is one shard worker's assignment.
type WorkerSpec struct {
	Study
	// Worker is the shard index, used only to label events.
	Worker int
	// Lo/Hi is the half-open job slice this worker measures.
	Lo, Hi int
	// Chunk is the checkpoint granularity in jobs (<= 0 means 1): the
	// worker seals and journals one slice artifact per Chunk jobs.
	Chunk int
	// Dir is the worker's journal directory.
	Dir string
	// Out is where the finished shard artifact is written.
	Out string
	// DieAfter, when positive, makes the worker exit abruptly (skipping
	// the shard merge and Out) after journaling that many chunks this
	// session — the fault-injection hook behind the kill/resume tests and
	// the CI smoke.
	DieAfter int
}

// Event is one progress record a worker emits, one JSON line per event,
// on its stdout. The coordinator streams them for progress display and
// treats any event as proof of life for straggler detection.
type Event struct {
	// Event is "start", "chunk" or "done".
	Event string `json:"event"`
	// Worker is the emitting shard index.
	Worker int `json:"worker"`
	// Lo/Hi echo the worker's job slice.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Done/Total count jobs completed within the slice; a resumed worker
	// starts from its journaled count.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Worker exit codes, the coordinator's retry protocol: any non-zero exit
// triggers a relaunch (the journal makes relaunches resume), and
// ExitJournal additionally wipes the worker directory first because the
// journal itself was rejected.
const (
	// ExitJournal signals an unusable journal (ErrJournal).
	ExitJournal = 4
	// ExitInjected signals a DieAfter-injected death.
	ExitInjected = 3
)

// errInjected is RunWorker's DieAfter sentinel.
var errInjected = errors.New("fleet: injected worker death")

// RunWorker measures one shard as a sequence of journaled chunks and
// writes the merged shard artifact. Killed workers resume: completed
// chunks are loaded from the journal and only the remainder reruns, and
// because slice artifacts merge exactly (results.Merge over exact-sum
// streams), the shard artifact is byte-identical no matter how many times
// the worker died on the way.
func RunWorker(ctx context.Context, w WorkerSpec, events io.Writer) error {
	opts, err := w.options(ctx)
	if err != nil {
		return err
	}
	info, err := experiments.Describe(w.Experiment, opts)
	if err != nil {
		return err
	}
	if w.Lo < 0 || w.Hi > info.Jobs || w.Lo >= w.Hi {
		return fmt.Errorf("fleet: worker %d slice [%d,%d) out of range (plan has %d %s jobs)",
			w.Worker, w.Lo, w.Hi, info.Jobs, info.Axis)
	}
	chunk := w.Chunk
	if chunk <= 0 {
		chunk = 1
	}
	j, err := OpenJournal(w.Dir, JournalHeader{
		Experiment:  w.Experiment,
		ConfigHash:  info.ConfigHash,
		CodeVersion: results.CodeVersion(),
		Params:      info.Params,
		Lo:          w.Lo,
		Hi:          w.Hi,
	})
	if err != nil {
		return err
	}
	defer j.Close()

	emit := func(e Event) {
		e.Worker = w.Worker
		e.Lo, e.Hi = w.Lo, w.Hi
		e.Total = w.Hi - w.Lo
		line, _ := json.Marshal(e)
		fmt.Fprintf(events, "%s\n", line)
	}
	emit(Event{Event: "start", Done: j.Resumed() - w.Lo})

	sealed := 0
	for a := j.Resumed(); a < w.Hi; a = min(a+chunk, w.Hi) {
		b := min(a+chunk, w.Hi)
		if err := fpWorkerChunk.Inject(); err != nil {
			return fmt.Errorf("fleet: worker %d jobs [%d,%d): %w", w.Worker, a, b, err)
		}
		art, err := experiments.RunSlice(w.Experiment, opts, a, b)
		if err != nil {
			return fmt.Errorf("fleet: worker %d jobs [%d,%d): %w", w.Worker, a, b, err)
		}
		if err := j.Append(art, a, b); err != nil {
			return err
		}
		emit(Event{Event: "chunk", Done: b - w.Lo})
		if sealed++; w.DieAfter > 0 && sealed >= w.DieAfter {
			return errInjected
		}
	}

	// Reassemble the shard from the journal — every chunk, including the
	// ones sealed seconds ago, reloads from disk, so what merges is
	// exactly what a resumed process would have merged.
	if err := fpWorkerOut.Inject(); err != nil {
		return fmt.Errorf("fleet: worker %d sealing shard: %w", w.Worker, err)
	}
	var shard *results.Artifact
	for _, rec := range j.Done() {
		a, err := j.ReadChunk(rec)
		if err != nil {
			return err
		}
		if shard == nil {
			shard = a
			continue
		}
		if err := results.Merge(shard, a); err != nil {
			return fmt.Errorf("fleet: worker %d merging chunk [%d,%d): %w", w.Worker, rec.Lo, rec.Hi, err)
		}
	}
	data, err := shard.MarshalIndented()
	if err != nil {
		return err
	}
	if err := writeFileSync(w.Out, data); err != nil {
		return err
	}
	emit(Event{Event: "done", Done: w.Hi - w.Lo})
	return nil
}

// WorkerMain is the fleet worker process entry point. Host binaries
// dispatch their `fleet-worker` argv to it (args excludes the subcommand
// name) and exit with its return value; the default launcher re-executes
// the running binary with that argv, so coordinator and workers are
// always the same build — which the artifact code-version merge gate then
// verifies end to end.
func WorkerMain(args []string) int {
	fs := flag.NewFlagSet("fleet-worker", flag.ContinueOnError)
	var w WorkerSpec
	fs.StringVar(&w.Experiment, "experiment", "", "registry experiment")
	fs.StringVar(&w.Chip, "chip", "small", "chip preset: paper or small")
	fs.IntVar(&w.Rows, "rows", 0, "sampling density")
	fs.IntVar(&w.Hammers, "hammers", 0, "hammer count / HCfirst ceiling")
	fs.IntVar(&w.Seeds, "seeds", 0, "chip instances for fleet experiments")
	fs.IntVar(&w.Iterations, "iterations", 0, "U-TRR iterations")
	fs.IntVar(&w.JobWorkers, "job-workers", 0, "devices per job")
	fs.IntVar(&w.Parallel, "parallel", 0, "concurrent plan jobs")
	fs.StringVar(&w.Planner, "planner", "queue", "engine planner")
	fs.IntVar(&w.Worker, "worker", 0, "shard index (event labeling)")
	fs.IntVar(&w.Lo, "lo", 0, "job slice start")
	fs.IntVar(&w.Hi, "hi", 0, "job slice end (exclusive)")
	fs.IntVar(&w.Chunk, "chunk", 1, "jobs per checkpoint")
	fs.StringVar(&w.Dir, "dir", "", "journal directory")
	fs.StringVar(&w.Out, "out", "", "shard artifact output file")
	fs.IntVar(&w.DieAfter, "die-after", 0, "fault injection: exit after N journaled chunks")
	failpoints := fs.String("failpoints", "", "failpoint spec armed in this worker process (see internal/failpoint)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if w.Experiment == "" || w.Dir == "" || w.Out == "" {
		fmt.Fprintln(os.Stderr, "fleet-worker: -experiment, -dir and -out are required")
		return 2
	}
	if *failpoints != "" {
		if err := failpoint.Arm(*failpoints); err != nil {
			fmt.Fprintln(os.Stderr, "fleet-worker:", err)
			return 2
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := RunWorker(ctx, w, os.Stdout)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errInjected):
		return ExitInjected
	case errors.Is(err, ErrJournal):
		fmt.Fprintln(os.Stderr, err)
		return ExitJournal
	default:
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
}
