package query

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/safari-repro/hbmrh/internal/report"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
	"github.com/safari-repro/hbmrh/internal/store"
)

// shard fabricates a region×channel fleet shard over a seed range, with
// chip records carrying HCfirst and TRR fingerprints.
func shard(seedFirst uint64, seedCount int) *results.Artifact {
	regions := []string{"first", "middle", "last"}
	const channels = 4
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "multichip",
			CodeVersion: "test-build",
			ConfigHash:  "deadbeef",
			GroupBy:     results.ByRegionChannel.String(),
			SeedFirst:   seedFirst,
			SeedCount:   seedCount,
			ShardCount:  1,
			Params:      map[string]string{"rows": "4"},
		},
	}
	for _, r := range regions {
		for ch := 0; ch < channels; ch++ {
			a.Groups = append(a.Groups, results.Group{
				Key: results.Key{Region: r, Channel: ch},
				Metrics: []results.Metric{
					{Name: "wcdp_ber", Stream: stats.NewStream(0, 1)},
					{Name: "wcdp_hc_first", Stream: stats.NewStream(0, 100000)},
				},
			})
		}
	}
	for s := seedFirst; s < seedFirst+uint64(seedCount); s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		for gi := range a.Groups {
			for k := 0; k < 5; k++ {
				a.Groups[gi].Metrics[0].Stream.Add(rng.Float64())
				a.Groups[gi].Metrics[1].Stream.Add(10000 + rng.Float64()*50000)
			}
		}
		a.Chips = append(a.Chips, results.ChipRecord{
			Seed: s, MinHCFirst: 10000 + int(s)*100, TRRPeriod: int(s%3) * 2048,
		})
	}
	return a
}

func newServer(t *testing.T, shards ...*results.Artifact) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range shards {
		if _, err := st.IngestArtifact(a); err != nil {
			t.Fatal(err)
		}
	}
	return New(st), st
}

func get(t *testing.T, h http.Handler, url string) (int, []byte) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
	return w.Code, w.Body.Bytes()
}

func TestQueryByteIdentityWithDirectRenders(t *testing.T) {
	// The acceptance invariant: /v1/summary and /v1/csv for a store built
	// from 4 shards return the same bytes `characterize` renders from the
	// single-process merge of those shards.
	s, _ := newServer(t, shard(0, 2), shard(2, 3), shard(5, 1), shard(6, 2))
	h := s.Handler()
	direct, err := results.MergeShards(
		[]*results.Artifact{shard(0, 2), shard(2, 3), shard(5, 1), shard(6, 2)},
		[]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range []results.GroupBy{results.ByRegion, results.ByChannel, results.ByRegionChannel} {
		wantJSON, err := direct.SummaryJSON(gb)
		if err != nil {
			t.Fatal(err)
		}
		code, gotJSON := get(t, h, "/v1/summary?group-by="+gb.String())
		if code != http.StatusOK {
			t.Fatalf("%v: summary status %d: %s", gb, code, gotJSON)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("%v: /v1/summary differs from characterize render", gb)
		}

		headers, rows, err := direct.SummaryCSV(gb)
		if err != nil {
			t.Fatal(err)
		}
		var wantCSV bytes.Buffer
		if err := report.WriteCSV(&wantCSV, headers, rows); err != nil {
			t.Fatal(err)
		}
		code, gotCSV := get(t, h, "/v1/csv?group-by="+gb.String())
		if code != http.StatusOK {
			t.Fatalf("%v: csv status %d: %s", gb, code, gotCSV)
		}
		if !bytes.Equal(wantCSV.Bytes(), gotCSV) {
			t.Errorf("%v: /v1/csv differs from characterize render", gb)
		}
	}
	// The artifact endpoint returns the canonical merged artifact file.
	wantArt, err := direct.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if code, gotArt := get(t, h, "/v1/artifact"); code != http.StatusOK || !bytes.Equal(wantArt, gotArt) {
		t.Errorf("/v1/artifact status %d, bytes equal %v", code, bytes.Equal(wantArt, gotArt))
	}
}

func TestQueryEndpoints(t *testing.T) {
	s, _ := newServer(t, shard(0, 4))
	h := s.Handler()

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %q", code, body)
	}
	var health struct {
		Status      string `json:"status"`
		Corpora     int    `json:"corpora"`
		Quarantined int    `json:"quarantined"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Corpora != 1 || health.Quarantined != 0 {
		t.Fatalf("healthz: %+v, want ok with 1 corpus and nothing quarantined", health)
	}

	code, body = get(t, h, "/v1/keys")
	if code != http.StatusOK {
		t.Fatalf("keys: %d %s", code, body)
	}
	var keys struct {
		StoreGen uint64 `json:"store_generation"`
		Corpora  []struct {
			Corpus   string `json:"corpus"`
			Chips    int    `json:"chips"`
			Complete bool   `json:"complete"`
		} `json:"corpora"`
	}
	if err := json.Unmarshal(body, &keys); err != nil {
		t.Fatal(err)
	}
	if len(keys.Corpora) != 1 || keys.Corpora[0].Corpus != "multichip-deadbeef" ||
		keys.Corpora[0].Chips != 4 || !keys.Corpora[0].Complete {
		t.Fatalf("keys: %+v", keys)
	}

	code, body = get(t, h, "/v1/distributions?metric=wcdp_ber&group-by=channel&points=5")
	if code != http.StatusOK {
		t.Fatalf("distributions: %d %s", code, body)
	}
	var dist struct {
		Metric string `json:"metric"`
		Groups []struct {
			Channel   *int `json:"channel"`
			N         int  `json:"n"`
			Quantiles []struct{ Q, V float64 }
		} `json:"groups"`
	}
	if err := json.Unmarshal(body, &dist); err != nil {
		t.Fatal(err)
	}
	if len(dist.Groups) != 4 || len(dist.Groups[0].Quantiles) != 5 {
		t.Fatalf("distributions: %d groups, %d points", len(dist.Groups), len(dist.Groups[0].Quantiles))
	}
	if code, body = get(t, h, "/v1/distributions?metric=nope"); code != http.StatusBadRequest {
		t.Fatalf("unknown metric: %d %s", code, body)
	}

	code, body = get(t, h, "/v1/safety")
	if code != http.StatusOK {
		t.Fatalf("safety: %d %s", code, body)
	}
	var safety struct {
		Channels []struct {
			Channel        int `json:"channel"`
			MinHCFirst     int `json:"min_hc_first"`
			GuardThreshold int `json:"guard_threshold"`
		} `json:"channels"`
		MinHCFirst    int `json:"min_hc_first"`
		UniformGuardT int `json:"uniform_guard_threshold"`
	}
	if err := json.Unmarshal(body, &safety); err != nil {
		t.Fatal(err)
	}
	if len(safety.Channels) != 4 {
		t.Fatalf("safety channels: %+v", safety)
	}
	for _, c := range safety.Channels {
		if c.GuardThreshold != c.MinHCFirst/2 {
			t.Fatalf("channel %d: threshold %d for HCfirst %d (want SafetyFromHCFirst)",
				c.Channel, c.GuardThreshold, c.MinHCFirst)
		}
		if c.MinHCFirst < safety.MinHCFirst {
			t.Fatalf("global min %d above channel %d's %d", safety.MinHCFirst, c.Channel, c.MinHCFirst)
		}
	}

	code, body = get(t, h, "/v1/trr")
	if code != http.StatusOK {
		t.Fatalf("trr: %d %s", code, body)
	}
	var trr struct {
		Chips   []struct{ Seed, TRRPeriod int }
		Periods []struct{ Period, Chips int }
	}
	if err := json.Unmarshal(body, &trr); err != nil {
		t.Fatal(err)
	}
	if len(trr.Chips) != 4 {
		t.Fatalf("trr chips: %+v", trr)
	}
	total := 0
	for _, p := range trr.Periods {
		total += p.Chips
	}
	if total != 4 {
		t.Fatalf("trr period counts sum to %d", total)
	}

	if code, _ = get(t, h, "/v1/render?group-by=channel"); code != http.StatusOK {
		t.Fatalf("render: %d", code)
	}
	if code, _ = get(t, h, "/v1/summary?key=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown key: %d", code)
	}
	if code, _ = get(t, h, "/v1/summary?group-by=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad axis: %d", code)
	}
}

// TestQueryHealthzDegraded opens a store whose directory holds one
// corrupt object: /healthz must stay HTTP 200 (the service is up and
// serving what survived) but report "degraded" with the quarantine
// details, so probes and dashboards see the damage.
func TestQueryHealthzDegraded(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestArtifact(shard(0, 2)); err != nil {
		t.Fatal(err)
	}
	objects, err := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
	if err != nil || len(objects) != 1 {
		t.Fatalf("objects: %v (err %v), want 1", objects, err)
	}
	if err := os.WriteFile(objects[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if st, err = store.Open(dir); err != nil {
		t.Fatal(err)
	}
	h := New(st).Handler()

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded healthz must stay 200, got %d %q", code, body)
	}
	var health struct {
		Status           string   `json:"status"`
		Quarantined      int      `json:"quarantined"`
		QuarantinedFiles []string `json:"quarantined_files"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Quarantined != 1 {
		t.Fatalf("healthz: %+v, want degraded with 1 quarantined", health)
	}
	if len(health.QuarantinedFiles) != 1 || health.QuarantinedFiles[0] != filepath.Base(objects[0]) {
		t.Fatalf("quarantined_files %v, want the torn object's name", health.QuarantinedFiles)
	}
}

func TestQueryCacheHitsAndInvalidation(t *testing.T) {
	s, st := newServer(t, shard(0, 2))
	h := s.Handler()

	_, first := get(t, h, "/v1/summary?group-by=channel")
	if stats := s.Stats(); stats.Misses != 1 || stats.Hits != 0 {
		t.Fatalf("after first read: %+v", stats)
	}
	// Same query, different parameter spelling/order: one cache entry.
	_, second := get(t, h, "/v1/summary?group-by=channel")
	if !bytes.Equal(first, second) {
		t.Fatal("cached read returned different bytes")
	}
	if stats := s.Stats(); stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("after cached read: %+v", stats)
	}

	// Ingest bumps the generation: next read misses and re-renders over
	// the extended corpus.
	if _, err := st.IngestArtifact(shard(2, 2)); err != nil {
		t.Fatal(err)
	}
	_, third := get(t, h, "/v1/summary?group-by=channel")
	if bytes.Equal(first, third) {
		t.Fatal("read after ingest served stale bytes")
	}
	if stats := s.Stats(); stats.Misses != 2 {
		t.Fatalf("after invalidation: %+v", stats)
	}
	want, err := results.MergeShards(
		[]*results.Artifact{shard(0, 2), shard(2, 2)}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.SummaryJSON(results.ByChannel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, third) {
		t.Fatal("post-ingest render differs from direct merge of both shards")
	}
}

func TestQueryIngestEndpoint(t *testing.T) {
	s, _ := newServer(t, shard(0, 2))
	h := s.Handler()

	post := func(a *results.Artifact) (int, []byte) {
		buf, err := a.MarshalIndented()
		if err != nil {
			t.Fatal(err)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(buf)))
		return w.Code, w.Body.Bytes()
	}
	code, body := post(shard(2, 2))
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	var res struct {
		Duplicate bool   `json:"duplicate"`
		Gen       uint64 `json:"generation"`
		Complete  bool   `json:"complete"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Duplicate || !res.Complete || res.Gen != 2 {
		t.Fatalf("ingest result: %+v", res)
	}
	// Conflicting shard (seed overlap) is refused with 409.
	if code, body = post(shard(1, 2)); code != http.StatusConflict {
		t.Fatalf("conflicting ingest: %d %s", code, body)
	}
	// Re-posting the same shard is an idempotent duplicate.
	code, body = post(shard(2, 2))
	if code != http.StatusOK {
		t.Fatalf("duplicate ingest: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate {
		t.Fatal("re-posted shard not reported as duplicate")
	}
}

// TestQueryConcurrentReadsAndIngest drives many readers against the full
// endpoint catalog while shards stream in concurrently. Run under
// -race (the repo's test target does), this is the no-torn-views proof:
// every response must equal the direct render of SOME contiguous shard
// prefix — never a mix of two generations.
func TestQueryConcurrentReadsAndIngest(t *testing.T) {
	// Pre-render the channel-view JSON for every reachable shard prefix;
	// any response must match one of them exactly.
	valid := map[string]int{}
	fresh := func(i int) *results.Artifact {
		switch i {
		case 0:
			return shard(0, 2)
		case 1:
			return shard(2, 3)
		case 2:
			return shard(5, 1)
		default:
			return shard(6, 2)
		}
	}
	for n := 1; n <= 4; n++ {
		arts := make([]*results.Artifact, n)
		paths := make([]string, n)
		for i := 0; i < n; i++ {
			arts[i], paths[i] = fresh(i), fmt.Sprint(i)
		}
		m, err := results.MergeShards(arts, paths)
		if err != nil {
			t.Fatal(err)
		}
		js, err := m.SummaryJSON(results.ByChannel)
		if err != nil {
			t.Fatal(err)
		}
		valid[string(js)] = n
	}

	s, st := newServer(t, fresh(0))
	h := s.Handler()

	var wg sync.WaitGroup
	start := make(chan struct{})
	errc := make(chan error, 64)

	// Writers: ingest the remaining shards concurrently with the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 1; i < 4; i++ {
			if _, err := st.IngestArtifact(fresh(i)); err != nil {
				errc <- err
				return
			}
		}
	}()

	paths := []string{
		"/v1/summary?group-by=channel",
		"/v1/csv?group-by=region",
		"/v1/distributions?metric=wcdp_ber&group-by=channel",
		"/v1/safety",
		"/v1/trr",
		"/v1/keys",
		"/v1/artifact",
	}
	const readers = 16
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				url := paths[(r+i)%len(paths)]
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
				if w.Code != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d: %s", url, w.Code, w.Body.String())
					return
				}
				if url == "/v1/summary?group-by=channel" {
					if _, ok := valid[w.Body.String()]; !ok {
						errc <- fmt.Errorf("torn view: summary matches no shard prefix")
						return
					}
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Settled state: the final render equals the full 4-shard merge.
	_, body := get(t, h, "/v1/summary?group-by=channel")
	if n := valid[string(body)]; n != 4 {
		t.Fatalf("settled summary covers %d shards, want 4", n)
	}
}

// TestQueryHotCacheConcurrency hammers one cached endpoint from 1k
// concurrent readers (the acceptance load) and checks single-flight
// collapsed the renders: at most a handful of misses, identical bytes
// everywhere.
func TestQueryHotCacheConcurrency(t *testing.T) {
	s, _ := newServer(t, shard(0, 2), shard(2, 2))
	h := s.Handler()
	_, want := get(t, h, "/v1/summary?group-by=channel")

	const readers = 1000
	var wg sync.WaitGroup
	start := make(chan struct{})
	bad := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil))
			if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), want) {
				bad <- fmt.Sprintf("status %d, len %d", w.Code, w.Body.Len())
			}
		}()
	}
	close(start)
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Error(msg)
	}
	if stats := s.Stats(); stats.Misses != 1 || stats.Hits != readers {
		t.Fatalf("cache stats after %d hot reads: %+v", readers, stats)
	}
}

// TestQueryETagConditional pins the response-variant contract: strong
// ETags stable across identical reads, If-None-Match revalidation via
// 304 with no body, and a new ETag once an ingest changes the corpus.
func TestQueryETagConditional(t *testing.T) {
	s, st := newServer(t, shard(0, 2))
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil))
	etag := w.Header().Get("ETag")
	if w.Code != http.StatusOK || len(etag) < 4 || !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("first read: status %d, ETag %q (want a quoted strong ETag)", w.Code, etag)
	}
	if got := w.Header().Get("Content-Length"); got != strconv.Itoa(w.Body.Len()) {
		t.Fatalf("Content-Length %q for a %d-byte body", got, w.Body.Len())
	}
	if got := w.Header().Get("Vary"); got != "Accept-Encoding" {
		t.Fatalf("Vary %q, want Accept-Encoding", got)
	}
	body := append([]byte(nil), w.Body.Bytes()...)

	// Identical read: identical ETag (content-hash, not per-response).
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil))
	if got := w.Header().Get("ETag"); got != etag {
		t.Fatalf("ETag changed across identical reads: %q then %q", etag, got)
	}

	// Revalidation: matching If-None-Match gets 304 with no body and no
	// Content-Length, but keeps the ETag (and cache provenance headers).
	for _, inm := range []string{etag, "*", `W/"stale", ` + etag} {
		req := httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil)
		req.Header.Set("If-None-Match", inm)
		w = httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusNotModified || w.Body.Len() != 0 {
			t.Fatalf("If-None-Match %q: status %d, %d body bytes, want 304 with none", inm, w.Code, w.Body.Len())
		}
		if got := w.Header().Get("ETag"); got != etag {
			t.Fatalf("304 carries ETag %q, want %q", got, etag)
		}
		if got := w.Header().Get("Content-Length"); got != "" {
			t.Fatalf("304 carries Content-Length %q", got)
		}
	}

	// A stale validator gets the full body.
	req := httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil)
	req.Header.Set("If-None-Match", `"0000"`)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), body) {
		t.Fatalf("stale validator: status %d, bytes equal %v", w.Code, bytes.Equal(w.Body.Bytes(), body))
	}

	// Ingest: the same validator must now miss and see fresh bytes.
	if _, err := st.IngestArtifact(shard(2, 2)); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil)
	req.Header.Set("If-None-Match", etag)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Header().Get("ETag") == etag {
		t.Fatalf("post-ingest conditional read: status %d, ETag %q (want fresh 200)", w.Code, w.Header().Get("ETag"))
	}
}

// TestQueryGzipVariant pins the pre-compressed encoding: a gzip-accepting
// client gets the pre-sealed gzip bytes (correct Content-Encoding and
// Content-Length) that decompress to exactly the identity body.
func TestQueryGzipVariant(t *testing.T) {
	s, _ := newServer(t, shard(0, 4))
	h := s.Handler()
	for _, path := range []string{"/v1/summary?group-by=channel", "/v1/csv", "/v1/keys"} {
		_, identity := get(t, h, path)

		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.Header.Set("Accept-Encoding", "gzip, br")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK || w.Header().Get("Content-Encoding") != "gzip" {
			t.Fatalf("%s: status %d, Content-Encoding %q", path, w.Code, w.Header().Get("Content-Encoding"))
		}
		if got := w.Header().Get("Content-Length"); got != strconv.Itoa(w.Body.Len()) {
			t.Fatalf("%s: gzip Content-Length %q for %d bytes", path, got, w.Body.Len())
		}
		zr, err := gzip.NewReader(bytes.NewReader(w.Body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain, identity) {
			t.Fatalf("%s: gzip body decompresses to different bytes", path)
		}

		// The two encodings share one ETag (content hash of the identity
		// body): a conditional gzip request revalidates against it.
		req = httptest.NewRequest(http.MethodGet, path, nil)
		req.Header.Set("Accept-Encoding", "gzip")
		req.Header.Set("If-None-Match", w.Header().Get("ETag"))
		w = httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusNotModified {
			t.Fatalf("%s: conditional gzip read: %d", path, w.Code)
		}
	}
}

// TestQueryKeysCached pins satellite coverage for /v1/keys: it must ride
// the same generation-keyed cache + single-flight as the corpus
// endpoints (one marshal per store generation, not per poll) and
// invalidate on any ingest.
func TestQueryKeysCached(t *testing.T) {
	s, st := newServer(t, shard(0, 2))
	h := s.Handler()

	_, first := get(t, h, "/v1/keys")
	if cs := s.Stats(); cs.Misses != 1 || cs.Hits != 0 {
		t.Fatalf("after first keys read: %+v", cs)
	}
	_, second := get(t, h, "/v1/keys")
	if !bytes.Equal(first, second) {
		t.Fatal("cached keys read returned different bytes")
	}
	if cs := s.Stats(); cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("after cached keys read: %+v", cs)
	}

	// Polling dashboards: concurrent keys reads collapse to the cache.
	const readers = 100
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/keys", nil))
		}()
	}
	wg.Wait()
	if cs := s.Stats(); cs.Misses != 1 || cs.Hits != 1+readers {
		t.Fatalf("after %d concurrent keys reads: %+v", readers, cs)
	}

	// Any ingest (store-wide generation) invalidates the listing.
	if _, err := st.IngestArtifact(shard(2, 2)); err != nil {
		t.Fatal(err)
	}
	_, third := get(t, h, "/v1/keys")
	if bytes.Equal(first, third) {
		t.Fatal("keys read after ingest served the stale listing")
	}
	if cs := s.Stats(); cs.Misses != 2 {
		t.Fatalf("after invalidation: %+v", cs)
	}
}

// nullResponseWriter is a reusable ResponseWriter for alloc and
// throughput measurements: the header map persists across requests
// (reset between them), writes are counted and dropped.
type nullResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func newNullResponseWriter() *nullResponseWriter {
	return &nullResponseWriter{h: make(http.Header, 16)}
}

func (w *nullResponseWriter) Header() http.Header { return w.h }

func (w *nullResponseWriter) Write(b []byte) (int, error) {
	w.n += len(b)
	return len(b), nil
}

func (w *nullResponseWriter) WriteHeader(code int) { w.status = code }

func (w *nullResponseWriter) reset() {
	for k := range w.h {
		delete(w.h, k)
	}
	w.status, w.n = 0, 0
}

// TestQueryHotPathAllocs pins the serving data plane's hot path at ≤2
// allocs per cache hit (identity, gzip and 304 alike) — the budget
// ISSUE 10 sets for line-rate serving. Uses testing.AllocsPerRun like
// the core harness's steady-state pin, so it holds under -race too.
func TestQueryHotPathAllocs(t *testing.T) {
	s, _ := newServer(t, shard(0, 2), shard(2, 2))
	h := s.Handler()

	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil))
	if warm.Code != http.StatusOK {
		t.Fatalf("warmup: %d", warm.Code)
	}
	etag := warm.Header().Get("ETag")

	identity := httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil)
	gzipReq := httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil)
	gzipReq.Header.Set("Accept-Encoding", "gzip")
	conditional := httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil)
	conditional.Header.Set("If-None-Match", etag)

	for _, tc := range []struct {
		name   string
		req    *http.Request
		status int
	}{
		{"identity", identity, http.StatusOK},
		{"gzip", gzipReq, http.StatusOK},
		{"conditional", conditional, http.StatusNotModified},
	} {
		w := newNullResponseWriter()
		probe := func() {
			w.reset()
			h.ServeHTTP(w, tc.req)
		}
		probe() // warm the pool and the header map
		if tc.status == http.StatusOK && (w.status != 0 || w.n == 0) {
			t.Fatalf("%s probe: status %d, %d bytes", tc.name, w.status, w.n)
		}
		if tc.status == http.StatusNotModified && (w.status != http.StatusNotModified || w.n != 0) {
			t.Fatalf("%s probe: status %d, %d bytes, want a bodyless 304", tc.name, w.status, w.n)
		}
		if allocs := testing.AllocsPerRun(100, probe); allocs > 2 {
			t.Errorf("%s cache hit: %.1f allocs/op, budget is 2", tc.name, allocs)
		}
	}
}

// TestQueryReadersDuringIncrementalIngest extends the torn-view proof to
// the incremental merge path (ISSUE 10 satellite): readers hammer
// /v1/summary — plain and conditional — while shards arrive OUT OF
// ORDER, so the store exercises pending acceptance, the incremental
// advance AND the gap-closing multi-shard fold mid-flight. Every 200
// body must be the render of a publishable contiguous prefix (1, 3 or 4
// shards — 2 is never publishable because shard 2 arrives before shard
// 1), and every 304 must confirm exactly the validator the reader sent.
func TestQueryReadersDuringIncrementalIngest(t *testing.T) {
	fresh := func(i int) *results.Artifact {
		switch i {
		case 0:
			return shard(0, 2)
		case 1:
			return shard(2, 3)
		case 2:
			return shard(5, 1)
		default:
			return shard(6, 2)
		}
	}
	valid := map[string]int{}
	for _, n := range []int{1, 3, 4} {
		arts := make([]*results.Artifact, n)
		paths := make([]string, n)
		for i := 0; i < n; i++ {
			arts[i], paths[i] = fresh(i), fmt.Sprint(i)
		}
		m, err := results.MergeShards(arts, paths)
		if err != nil {
			t.Fatal(err)
		}
		js, err := m.SummaryJSON(results.ByChannel)
		if err != nil {
			t.Fatal(err)
		}
		valid[string(js)] = n
	}

	s, st := newServer(t, fresh(0))
	h := s.Handler()

	var wg sync.WaitGroup
	start := make(chan struct{})
	errc := make(chan error, 64)

	// Writer: shard 2 lands before shard 1 (pending), then the gap closes
	// (advance folds two members at once), then shard 3 extends the view.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for _, i := range []int{2, 1, 3} {
			if _, err := st.IngestArtifact(fresh(i)); err != nil {
				errc <- err
				return
			}
		}
	}()

	const readers = 16
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			lastETag := ""
			for i := 0; i < 50; i++ {
				req := httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil)
				if lastETag != "" && i%2 == 1 {
					req.Header.Set("If-None-Match", lastETag)
				}
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				switch w.Code {
				case http.StatusOK:
					if _, ok := valid[w.Body.String()]; !ok {
						errc <- fmt.Errorf("torn view: summary matches no publishable shard prefix")
						return
					}
					lastETag = w.Header().Get("ETag")
				case http.StatusNotModified:
					if w.Body.Len() != 0 || w.Header().Get("ETag") != lastETag {
						errc <- fmt.Errorf("304 with body or foreign ETag (%q vs %q)", w.Header().Get("ETag"), lastETag)
						return
					}
				default:
					errc <- fmt.Errorf("status %d: %s", w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	_, body := get(t, h, "/v1/summary?group-by=channel")
	if n := valid[string(body)]; n != 4 {
		t.Fatalf("settled summary covers %d shards, want 4", n)
	}
}

// Single-flight under a cold cache: concurrent identical misses must
// collapse to one render.
func TestQuerySingleFlight(t *testing.T) {
	s, _ := newServer(t, shard(0, 4))
	h := s.Handler()
	const n = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/distributions?metric=wcdp_hc_first", nil))
			bodies[i] = w.Body.Bytes()
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("reader %d saw different bytes", i)
		}
	}
	if stats := s.Stats(); stats.Misses != 1 {
		t.Fatalf("%d concurrent cold reads caused %d renders, want 1", n, stats.Misses)
	}
}
