package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/safari-repro/hbmrh/internal/report"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
	"github.com/safari-repro/hbmrh/internal/store"
)

// shard fabricates a region×channel fleet shard over a seed range, with
// chip records carrying HCfirst and TRR fingerprints.
func shard(seedFirst uint64, seedCount int) *results.Artifact {
	regions := []string{"first", "middle", "last"}
	const channels = 4
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "multichip",
			CodeVersion: "test-build",
			ConfigHash:  "deadbeef",
			GroupBy:     results.ByRegionChannel.String(),
			SeedFirst:   seedFirst,
			SeedCount:   seedCount,
			ShardCount:  1,
			Params:      map[string]string{"rows": "4"},
		},
	}
	for _, r := range regions {
		for ch := 0; ch < channels; ch++ {
			a.Groups = append(a.Groups, results.Group{
				Key: results.Key{Region: r, Channel: ch},
				Metrics: []results.Metric{
					{Name: "wcdp_ber", Stream: stats.NewStream(0, 1)},
					{Name: "wcdp_hc_first", Stream: stats.NewStream(0, 100000)},
				},
			})
		}
	}
	for s := seedFirst; s < seedFirst+uint64(seedCount); s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		for gi := range a.Groups {
			for k := 0; k < 5; k++ {
				a.Groups[gi].Metrics[0].Stream.Add(rng.Float64())
				a.Groups[gi].Metrics[1].Stream.Add(10000 + rng.Float64()*50000)
			}
		}
		a.Chips = append(a.Chips, results.ChipRecord{
			Seed: s, MinHCFirst: 10000 + int(s)*100, TRRPeriod: int(s%3) * 2048,
		})
	}
	return a
}

func newServer(t *testing.T, shards ...*results.Artifact) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range shards {
		if _, err := st.IngestArtifact(a); err != nil {
			t.Fatal(err)
		}
	}
	return New(st), st
}

func get(t *testing.T, h http.Handler, url string) (int, []byte) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
	return w.Code, w.Body.Bytes()
}

func TestQueryByteIdentityWithDirectRenders(t *testing.T) {
	// The acceptance invariant: /v1/summary and /v1/csv for a store built
	// from 4 shards return the same bytes `characterize` renders from the
	// single-process merge of those shards.
	s, _ := newServer(t, shard(0, 2), shard(2, 3), shard(5, 1), shard(6, 2))
	h := s.Handler()
	direct, err := results.MergeShards(
		[]*results.Artifact{shard(0, 2), shard(2, 3), shard(5, 1), shard(6, 2)},
		[]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range []results.GroupBy{results.ByRegion, results.ByChannel, results.ByRegionChannel} {
		wantJSON, err := direct.SummaryJSON(gb)
		if err != nil {
			t.Fatal(err)
		}
		code, gotJSON := get(t, h, "/v1/summary?group-by="+gb.String())
		if code != http.StatusOK {
			t.Fatalf("%v: summary status %d: %s", gb, code, gotJSON)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("%v: /v1/summary differs from characterize render", gb)
		}

		headers, rows, err := direct.SummaryCSV(gb)
		if err != nil {
			t.Fatal(err)
		}
		var wantCSV bytes.Buffer
		if err := report.WriteCSV(&wantCSV, headers, rows); err != nil {
			t.Fatal(err)
		}
		code, gotCSV := get(t, h, "/v1/csv?group-by="+gb.String())
		if code != http.StatusOK {
			t.Fatalf("%v: csv status %d: %s", gb, code, gotCSV)
		}
		if !bytes.Equal(wantCSV.Bytes(), gotCSV) {
			t.Errorf("%v: /v1/csv differs from characterize render", gb)
		}
	}
	// The artifact endpoint returns the canonical merged artifact file.
	wantArt, err := direct.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if code, gotArt := get(t, h, "/v1/artifact"); code != http.StatusOK || !bytes.Equal(wantArt, gotArt) {
		t.Errorf("/v1/artifact status %d, bytes equal %v", code, bytes.Equal(wantArt, gotArt))
	}
}

func TestQueryEndpoints(t *testing.T) {
	s, _ := newServer(t, shard(0, 4))
	h := s.Handler()

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %q", code, body)
	}
	var health struct {
		Status      string `json:"status"`
		Corpora     int    `json:"corpora"`
		Quarantined int    `json:"quarantined"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Corpora != 1 || health.Quarantined != 0 {
		t.Fatalf("healthz: %+v, want ok with 1 corpus and nothing quarantined", health)
	}

	code, body = get(t, h, "/v1/keys")
	if code != http.StatusOK {
		t.Fatalf("keys: %d %s", code, body)
	}
	var keys struct {
		StoreGen uint64 `json:"store_generation"`
		Corpora  []struct {
			Corpus   string `json:"corpus"`
			Chips    int    `json:"chips"`
			Complete bool   `json:"complete"`
		} `json:"corpora"`
	}
	if err := json.Unmarshal(body, &keys); err != nil {
		t.Fatal(err)
	}
	if len(keys.Corpora) != 1 || keys.Corpora[0].Corpus != "multichip-deadbeef" ||
		keys.Corpora[0].Chips != 4 || !keys.Corpora[0].Complete {
		t.Fatalf("keys: %+v", keys)
	}

	code, body = get(t, h, "/v1/distributions?metric=wcdp_ber&group-by=channel&points=5")
	if code != http.StatusOK {
		t.Fatalf("distributions: %d %s", code, body)
	}
	var dist struct {
		Metric string `json:"metric"`
		Groups []struct {
			Channel   *int `json:"channel"`
			N         int  `json:"n"`
			Quantiles []struct{ Q, V float64 }
		} `json:"groups"`
	}
	if err := json.Unmarshal(body, &dist); err != nil {
		t.Fatal(err)
	}
	if len(dist.Groups) != 4 || len(dist.Groups[0].Quantiles) != 5 {
		t.Fatalf("distributions: %d groups, %d points", len(dist.Groups), len(dist.Groups[0].Quantiles))
	}
	if code, body = get(t, h, "/v1/distributions?metric=nope"); code != http.StatusBadRequest {
		t.Fatalf("unknown metric: %d %s", code, body)
	}

	code, body = get(t, h, "/v1/safety")
	if code != http.StatusOK {
		t.Fatalf("safety: %d %s", code, body)
	}
	var safety struct {
		Channels []struct {
			Channel        int `json:"channel"`
			MinHCFirst     int `json:"min_hc_first"`
			GuardThreshold int `json:"guard_threshold"`
		} `json:"channels"`
		MinHCFirst    int `json:"min_hc_first"`
		UniformGuardT int `json:"uniform_guard_threshold"`
	}
	if err := json.Unmarshal(body, &safety); err != nil {
		t.Fatal(err)
	}
	if len(safety.Channels) != 4 {
		t.Fatalf("safety channels: %+v", safety)
	}
	for _, c := range safety.Channels {
		if c.GuardThreshold != c.MinHCFirst/2 {
			t.Fatalf("channel %d: threshold %d for HCfirst %d (want SafetyFromHCFirst)",
				c.Channel, c.GuardThreshold, c.MinHCFirst)
		}
		if c.MinHCFirst < safety.MinHCFirst {
			t.Fatalf("global min %d above channel %d's %d", safety.MinHCFirst, c.Channel, c.MinHCFirst)
		}
	}

	code, body = get(t, h, "/v1/trr")
	if code != http.StatusOK {
		t.Fatalf("trr: %d %s", code, body)
	}
	var trr struct {
		Chips   []struct{ Seed, TRRPeriod int }
		Periods []struct{ Period, Chips int }
	}
	if err := json.Unmarshal(body, &trr); err != nil {
		t.Fatal(err)
	}
	if len(trr.Chips) != 4 {
		t.Fatalf("trr chips: %+v", trr)
	}
	total := 0
	for _, p := range trr.Periods {
		total += p.Chips
	}
	if total != 4 {
		t.Fatalf("trr period counts sum to %d", total)
	}

	if code, _ = get(t, h, "/v1/render?group-by=channel"); code != http.StatusOK {
		t.Fatalf("render: %d", code)
	}
	if code, _ = get(t, h, "/v1/summary?key=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown key: %d", code)
	}
	if code, _ = get(t, h, "/v1/summary?group-by=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad axis: %d", code)
	}
}

// TestQueryHealthzDegraded opens a store whose directory holds one
// corrupt object: /healthz must stay HTTP 200 (the service is up and
// serving what survived) but report "degraded" with the quarantine
// details, so probes and dashboards see the damage.
func TestQueryHealthzDegraded(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestArtifact(shard(0, 2)); err != nil {
		t.Fatal(err)
	}
	objects, err := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
	if err != nil || len(objects) != 1 {
		t.Fatalf("objects: %v (err %v), want 1", objects, err)
	}
	if err := os.WriteFile(objects[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if st, err = store.Open(dir); err != nil {
		t.Fatal(err)
	}
	h := New(st).Handler()

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded healthz must stay 200, got %d %q", code, body)
	}
	var health struct {
		Status           string   `json:"status"`
		Quarantined      int      `json:"quarantined"`
		QuarantinedFiles []string `json:"quarantined_files"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Quarantined != 1 {
		t.Fatalf("healthz: %+v, want degraded with 1 quarantined", health)
	}
	if len(health.QuarantinedFiles) != 1 || health.QuarantinedFiles[0] != filepath.Base(objects[0]) {
		t.Fatalf("quarantined_files %v, want the torn object's name", health.QuarantinedFiles)
	}
}

func TestQueryCacheHitsAndInvalidation(t *testing.T) {
	s, st := newServer(t, shard(0, 2))
	h := s.Handler()

	_, first := get(t, h, "/v1/summary?group-by=channel")
	if stats := s.Stats(); stats.Misses != 1 || stats.Hits != 0 {
		t.Fatalf("after first read: %+v", stats)
	}
	// Same query, different parameter spelling/order: one cache entry.
	_, second := get(t, h, "/v1/summary?group-by=channel")
	if !bytes.Equal(first, second) {
		t.Fatal("cached read returned different bytes")
	}
	if stats := s.Stats(); stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("after cached read: %+v", stats)
	}

	// Ingest bumps the generation: next read misses and re-renders over
	// the extended corpus.
	if _, err := st.IngestArtifact(shard(2, 2)); err != nil {
		t.Fatal(err)
	}
	_, third := get(t, h, "/v1/summary?group-by=channel")
	if bytes.Equal(first, third) {
		t.Fatal("read after ingest served stale bytes")
	}
	if stats := s.Stats(); stats.Misses != 2 {
		t.Fatalf("after invalidation: %+v", stats)
	}
	want, err := results.MergeShards(
		[]*results.Artifact{shard(0, 2), shard(2, 2)}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.SummaryJSON(results.ByChannel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, third) {
		t.Fatal("post-ingest render differs from direct merge of both shards")
	}
}

func TestQueryIngestEndpoint(t *testing.T) {
	s, _ := newServer(t, shard(0, 2))
	h := s.Handler()

	post := func(a *results.Artifact) (int, []byte) {
		buf, err := a.MarshalIndented()
		if err != nil {
			t.Fatal(err)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(buf)))
		return w.Code, w.Body.Bytes()
	}
	code, body := post(shard(2, 2))
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	var res struct {
		Duplicate bool   `json:"duplicate"`
		Gen       uint64 `json:"generation"`
		Complete  bool   `json:"complete"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Duplicate || !res.Complete || res.Gen != 2 {
		t.Fatalf("ingest result: %+v", res)
	}
	// Conflicting shard (seed overlap) is refused with 409.
	if code, body = post(shard(1, 2)); code != http.StatusConflict {
		t.Fatalf("conflicting ingest: %d %s", code, body)
	}
	// Re-posting the same shard is an idempotent duplicate.
	code, body = post(shard(2, 2))
	if code != http.StatusOK {
		t.Fatalf("duplicate ingest: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate {
		t.Fatal("re-posted shard not reported as duplicate")
	}
}

// TestQueryConcurrentReadsAndIngest drives many readers against the full
// endpoint catalog while shards stream in concurrently. Run under
// -race (the repo's test target does), this is the no-torn-views proof:
// every response must equal the direct render of SOME contiguous shard
// prefix — never a mix of two generations.
func TestQueryConcurrentReadsAndIngest(t *testing.T) {
	// Pre-render the channel-view JSON for every reachable shard prefix;
	// any response must match one of them exactly.
	valid := map[string]int{}
	fresh := func(i int) *results.Artifact {
		switch i {
		case 0:
			return shard(0, 2)
		case 1:
			return shard(2, 3)
		case 2:
			return shard(5, 1)
		default:
			return shard(6, 2)
		}
	}
	for n := 1; n <= 4; n++ {
		arts := make([]*results.Artifact, n)
		paths := make([]string, n)
		for i := 0; i < n; i++ {
			arts[i], paths[i] = fresh(i), fmt.Sprint(i)
		}
		m, err := results.MergeShards(arts, paths)
		if err != nil {
			t.Fatal(err)
		}
		js, err := m.SummaryJSON(results.ByChannel)
		if err != nil {
			t.Fatal(err)
		}
		valid[string(js)] = n
	}

	s, st := newServer(t, fresh(0))
	h := s.Handler()

	var wg sync.WaitGroup
	start := make(chan struct{})
	errc := make(chan error, 64)

	// Writers: ingest the remaining shards concurrently with the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 1; i < 4; i++ {
			if _, err := st.IngestArtifact(fresh(i)); err != nil {
				errc <- err
				return
			}
		}
	}()

	paths := []string{
		"/v1/summary?group-by=channel",
		"/v1/csv?group-by=region",
		"/v1/distributions?metric=wcdp_ber&group-by=channel",
		"/v1/safety",
		"/v1/trr",
		"/v1/keys",
		"/v1/artifact",
	}
	const readers = 16
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				url := paths[(r+i)%len(paths)]
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
				if w.Code != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d: %s", url, w.Code, w.Body.String())
					return
				}
				if url == "/v1/summary?group-by=channel" {
					if _, ok := valid[w.Body.String()]; !ok {
						errc <- fmt.Errorf("torn view: summary matches no shard prefix")
						return
					}
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Settled state: the final render equals the full 4-shard merge.
	_, body := get(t, h, "/v1/summary?group-by=channel")
	if n := valid[string(body)]; n != 4 {
		t.Fatalf("settled summary covers %d shards, want 4", n)
	}
}

// TestQueryHotCacheConcurrency hammers one cached endpoint from 1k
// concurrent readers (the acceptance load) and checks single-flight
// collapsed the renders: at most a handful of misses, identical bytes
// everywhere.
func TestQueryHotCacheConcurrency(t *testing.T) {
	s, _ := newServer(t, shard(0, 2), shard(2, 2))
	h := s.Handler()
	_, want := get(t, h, "/v1/summary?group-by=channel")

	const readers = 1000
	var wg sync.WaitGroup
	start := make(chan struct{})
	bad := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/summary?group-by=channel", nil))
			if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), want) {
				bad <- fmt.Sprintf("status %d, len %d", w.Code, w.Body.Len())
			}
		}()
	}
	close(start)
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Error(msg)
	}
	if stats := s.Stats(); stats.Misses != 1 || stats.Hits != readers {
		t.Fatalf("cache stats after %d hot reads: %+v", readers, stats)
	}
}

// Single-flight under a cold cache: concurrent identical misses must
// collapse to one render.
func TestQuerySingleFlight(t *testing.T) {
	s, _ := newServer(t, shard(0, 4))
	h := s.Handler()
	const n = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/distributions?metric=wcdp_hc_first", nil))
			bodies[i] = w.Body.Bytes()
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("reader %d saw different bytes", i)
		}
	}
	if stats := s.Stats(); stats.Misses != 1 {
		t.Fatalf("%d concurrent cold reads caused %d renders, want 1", n, stats.Misses)
	}
}
