// Package query is the read side of the artifact store: an HTTP/JSON
// service exposing merged fleet results — distribution summaries,
// per-channel BER/HCfirst quantiles, TRR fingerprints and safe guard
// thresholds — with responses rendered by exactly the code paths the
// CLI uses, so a query against a store built from N fleet shards returns
// byte-identical CSV/JSON to a single-process `characterize` run.
//
// Responses are cached per (corpus, corpus generation, endpoint,
// canonical parameters). An ingest bumps the corpus generation, which
// retires that corpus's cache bucket on the next read while other
// corpora keep serving their cached bytes — invalidation is incremental,
// not global. Concurrent misses on one key collapse to a single render
// (hand-rolled single-flight): the first request renders while the rest
// wait on its result, so a burst of identical queries costs one
// derivation. Store snapshots are immutable and sealed, which is what
// makes the render paths safe to run from any number of goroutines.
package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/safari-repro/hbmrh/internal/defense"
	"github.com/safari-repro/hbmrh/internal/failpoint"
	"github.com/safari-repro/hbmrh/internal/report"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/store"
)

// Failpoint sites on the serving path: render (a failed render must
// return 500 without poisoning the cache — the next request re-renders
// and succeeds) and ingest (a failed POST must leave store and cache
// generations untouched).
var (
	fpQueryRender = failpoint.Register("query/render")
	fpQueryIngest = failpoint.Register("query/ingest")
)

// MaxIngestBytes bounds a POST /v1/ingest body.
const MaxIngestBytes = 256 << 20

// DefaultCacheEntries bounds one corpus generation's cache bucket.
const DefaultCacheEntries = 256

// Server serves query endpoints over one Store. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	st *store.Store

	mu      sync.Mutex
	buckets map[string]*bucket // corpus ID -> current-generation bucket
	hits    uint64
	misses  uint64
	maxPer  int
}

// bucket caches rendered responses for one corpus at one generation.
type bucket struct {
	gen     uint64
	entries map[string]*entry
}

// entry is a single-flight render slot: done closes when body/ctype/err
// are final.
type entry struct {
	done  chan struct{}
	body  []byte
	ctype string
	err   error
}

// CacheStats reports cache effectiveness (for tests and benchmarks).
type CacheStats struct{ Hits, Misses uint64 }

// New returns a Server over st.
func New(st *store.Store) *Server {
	return &Server{st: st, buckets: map[string]*bucket{}, maxPer: DefaultCacheEntries}
}

// Stats returns the cache hit/miss counters.
func (s *Server) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{Hits: s.hits, Misses: s.misses}
}

// Handler returns the HTTP handler serving the endpoint catalog
// (DESIGN.md §11): /healthz, /v1/keys, /v1/summary, /v1/csv,
// /v1/render, /v1/artifact, /v1/distributions, /v1/safety, /v1/trr and
// POST /v1/ingest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/v1/keys", s.keys)
	mux.HandleFunc("/v1/ingest", s.ingest)
	for path, render := range map[string]renderFunc{
		"/v1/summary":       renderSummary,
		"/v1/csv":           renderCSV,
		"/v1/render":        renderText,
		"/v1/artifact":      renderArtifact,
		"/v1/distributions": renderDistributions,
		"/v1/safety":        renderSafety,
		"/v1/trr":           renderTRR,
	} {
		mux.HandleFunc(path, s.cached(path, render))
	}
	return mux
}

// renderFunc renders one endpoint's body from an immutable snapshot. A
// returned *httpError sets the status; any other error is a 500.
type renderFunc func(snap *store.Snapshot, params url.Values) (body []byte, ctype string, err error)

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// cached wraps a renderFunc with corpus resolution, the generation-keyed
// response cache and single-flight render dedup.
func (s *Server) cached(path string, render renderFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		params := r.URL.Query()
		snap, err := s.st.Resolve(params.Get("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		body, ctype, err := s.render(snap, path, params, render)
		if err != nil {
			status := http.StatusInternalServerError
			var he *httpError
			if errors.As(err, &he) {
				status = he.status
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("X-Corpus", snap.Corpus)
		w.Header().Set("X-Generation", strconv.FormatUint(snap.Gen, 10))
		w.Write(body)
	}
}

// render serves one request through the cache: hit returns stored bytes,
// miss renders under single-flight while concurrent requests for the
// same key wait for the leader's result.
func (s *Server) render(snap *store.Snapshot, path string, params url.Values, render renderFunc) ([]byte, string, error) {
	if err := fpQueryRender.Inject(); err != nil {
		return nil, "", err
	}
	key := cacheKey(path, params)

	s.mu.Lock()
	b := s.buckets[snap.Corpus]
	if b == nil || b.gen < snap.Gen {
		// First read at this generation: retire the stale bucket (the
		// incremental invalidation — only this corpus's entries go).
		b = &bucket{gen: snap.Gen, entries: map[string]*entry{}}
		s.buckets[snap.Corpus] = b
	}
	if b.gen > snap.Gen {
		// Our snapshot lost a race with an ingest; render this one
		// uncached rather than poisoning the newer bucket.
		s.misses++
		s.mu.Unlock()
		body, ctype, err := render(snap, params)
		return body, ctype, err
	}
	if e, ok := b.entries[key]; ok {
		s.hits++
		s.mu.Unlock()
		<-e.done
		return e.body, e.ctype, e.err
	}
	s.misses++
	if len(b.entries) >= s.maxPer {
		for k, e := range b.entries {
			select {
			case <-e.done: // only evict completed entries
				delete(b.entries, k)
			default:
			}
			break
		}
	}
	e := &entry{done: make(chan struct{})}
	b.entries[key] = e
	s.mu.Unlock()

	e.body, e.ctype, e.err = render(snap, params)
	close(e.done)
	if e.err != nil {
		// Failed renders are not worth caching; let a later request retry.
		s.mu.Lock()
		if cur := s.buckets[snap.Corpus]; cur != nil && cur.entries[key] == e {
			delete(cur.entries, key)
		}
		s.mu.Unlock()
	}
	return e.body, e.ctype, e.err
}

// cacheKey canonicalizes the endpoint and its parameters: sorted keys,
// so equivalent URLs share one entry. The corpus and generation live in
// the bucket, not the key.
func cacheKey(path string, params url.Values) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(path)
	for _, k := range keys {
		for _, v := range params[k] {
			sb.WriteByte(0)
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(v)
		}
	}
	return sb.String()
}

// groupByParam parses the group-by parameter, defaulting to the
// snapshot's stored axis.
func groupByParam(snap *store.Snapshot, params url.Values) (results.GroupBy, error) {
	v := params.Get("group-by")
	if v == "" {
		v = snap.Meta.GroupBy
	}
	gb, err := results.ParseGroupBy(v)
	if err != nil {
		return 0, badRequest("%v", err)
	}
	return gb, nil
}

// --- endpoint renders ------------------------------------------------

// healthz reports liveness plus the store's degradation state: "ok"
// with a healthy store, "degraded" (still HTTP 200 — the service is up
// and serving what it has) when Open quarantined objects, with the
// quarantined files listed so an operator knows which shards to
// re-ingest.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	q := s.st.Quarantined()
	status := "ok"
	files := make([]string, 0, len(q))
	for _, o := range q {
		files = append(files, o.File)
	}
	if len(q) > 0 {
		status = "degraded"
	}
	writeJSON(w, struct {
		Status      string   `json:"status"`
		Corpora     int      `json:"corpora"`
		StoreGen    uint64   `json:"store_generation"`
		Quarantined int      `json:"quarantined"`
		Files       []string `json:"quarantined_files,omitempty"`
	}{status, len(s.st.Corpora()), s.st.Generation(), len(q), files})
}

// keys lists the store's corpora with their snapshot state; uncached
// (it is the discovery endpoint and already cheap).
func (s *Server) keys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	type corpusJSON struct {
		Corpus   string `json:"corpus"`
		Gen      uint64 `json:"generation"`
		Tool     string `json:"tool"`
		GroupBy  string `json:"group_by"`
		Seeds    int    `json:"seed_count"`
		Chips    int    `json:"chips"`
		Members  int    `json:"members"`
		Pending  int    `json:"pending"`
		Complete bool   `json:"complete"`
	}
	out := struct {
		StoreGen uint64       `json:"store_generation"`
		Corpora  []corpusJSON `json:"corpora"`
	}{Corpora: []corpusJSON{}}
	for _, id := range s.st.Corpora() {
		snap, ok := s.st.Snapshot(id)
		if !ok {
			continue
		}
		out.StoreGen = snap.StoreGen
		out.Corpora = append(out.Corpora, corpusJSON{
			Corpus: snap.Corpus, Gen: snap.Gen,
			Tool: snap.Meta.Tool, GroupBy: snap.Meta.GroupBy,
			Seeds: snap.Meta.SeedCount, Chips: len(snap.Merged.Chips),
			Members: snap.Members, Pending: snap.Pending, Complete: snap.Complete,
		})
	}
	writeJSON(w, out)
}

// ingest accepts one artifact per POST body and feeds it to the store;
// the generation bump implicitly retires the corpus's cache bucket.
func (s *Server) ingest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := fpQueryIngest.Inject(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxIngestBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > MaxIngestBytes {
		http.Error(w, "artifact exceeds ingest size limit", http.StatusRequestEntityTooLarge)
		return
	}
	res, err := s.st.Ingest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, struct {
		Corpus    string `json:"corpus"`
		Hash      string `json:"hash"`
		Duplicate bool   `json:"duplicate"`
		Gen       uint64 `json:"generation"`
		StoreGen  uint64 `json:"store_generation"`
		Pending   int    `json:"pending"`
		Complete  bool   `json:"complete"`
	}{res.Corpus, res.Hash, res.Duplicate, res.Gen, res.StoreGen, res.Pending, res.Complete})
}

// renderSummary is the JSON export: byte-identical to `characterize`'s
// -json output for the same merged artifact and axis.
func renderSummary(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	gb, err := groupByParam(snap, params)
	if err != nil {
		return nil, "", err
	}
	body, err := snap.Merged.SummaryJSON(gb)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	return body, "application/json", nil
}

// renderCSV is the CSV export: byte-identical to `characterize`'s -csv
// output (same SummaryCSV rows through the same report.WriteCSV).
func renderCSV(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	gb, err := groupByParam(snap, params)
	if err != nil {
		return nil, "", err
	}
	headers, rows, err := snap.Merged.SummaryCSV(gb)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf, headers, rows); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), "text/csv; charset=utf-8", nil
}

// renderText is the fleet-report text render of the distributions.
func renderText(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	gb, err := groupByParam(snap, params)
	if err != nil {
		return nil, "", err
	}
	groups, err := snap.Merged.View(gb)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	text := results.RenderGroups(groups, func(name string) string { return name }, nil)
	return []byte(text), "text/plain; charset=utf-8", nil
}

// renderArtifact returns the merged artifact file itself — accumulator
// state, not summaries — so a client can merge further or re-host it.
func renderArtifact(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	body, err := snap.Merged.MarshalIndented()
	if err != nil {
		return nil, "", err
	}
	return body, "application/json", nil
}

// renderDistributions returns quantile curves per group for one metric:
// the HTTP form of the paper's per-channel BER/HCfirst distribution
// figures. `points` samples the quantile function evenly in [0,1];
// quantile_tolerance carries the sketch resolution (0 = exact).
func renderDistributions(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	metric := params.Get("metric")
	if metric == "" {
		return nil, "", badRequest("query: metric parameter required (e.g. wcdp_ber)")
	}
	gb, err := groupByParam(snap, params)
	if err != nil {
		return nil, "", err
	}
	points := 9
	if v := params.Get("points"); v != "" {
		points, err = strconv.Atoi(v)
		if err != nil || points < 2 || points > 4096 {
			return nil, "", badRequest("query: points must be an integer in [2, 4096]")
		}
	}
	groups, err := snap.Merged.View(gb)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	type qpoint struct {
		Q float64 `json:"q"`
		V float64 `json:"v"`
	}
	type distJSON struct {
		Region            string   `json:"region,omitempty"`
		Channel           *int     `json:"channel,omitempty"`
		Point             string   `json:"point,omitempty"`
		N                 int      `json:"n"`
		Mean              float64  `json:"mean"`
		QuantileTolerance float64  `json:"quantile_tolerance,omitempty"`
		Quantiles         []qpoint `json:"quantiles"`
	}
	out := struct {
		Metric string     `json:"metric"`
		Groups []distJSON `json:"groups"`
	}{Metric: metric, Groups: []distJSON{}}
	found := false
	for _, g := range groups {
		for _, m := range g.Metrics {
			if m.Name != metric {
				continue
			}
			found = true
			if m.Stream.N() == 0 {
				continue
			}
			d := distJSON{
				Region: g.Key.Region, Point: g.Key.Point,
				N: m.Stream.N(), Mean: m.Stream.Mean(),
				QuantileTolerance: m.Stream.QuantileTolerance(),
			}
			if g.Key.Channel != results.NoChannel {
				ch := g.Key.Channel
				d.Channel = &ch
			}
			for i := 0; i < points; i++ {
				q := float64(i) / float64(points-1)
				d.Quantiles = append(d.Quantiles, qpoint{Q: q, V: m.Stream.Quantile(q)})
			}
			out.Groups = append(out.Groups, d)
		}
	}
	if !found {
		return nil, "", badRequest("query: metric %q not in this corpus", metric)
	}
	return marshalJSON(out)
}

// renderSafety maps each channel's measured minimum HCfirst to the guard
// threshold defense.SafetyFromHCFirst derives — the lookup a memory
// controller configuring the adaptive policy performs.
func renderSafety(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	metric := params.Get("metric")
	if metric == "" {
		metric = "wcdp_hc_first"
	}
	groups, err := snap.Merged.View(results.ByChannel)
	if err != nil {
		return nil, "", badRequest("query: safety needs a channel view: %v", err)
	}
	type chanJSON struct {
		Channel        int `json:"channel"`
		N              int `json:"n"`
		MinHCFirst     int `json:"min_hc_first"`
		GuardThreshold int `json:"guard_threshold"`
	}
	out := struct {
		Metric        string     `json:"metric"`
		Channels      []chanJSON `json:"channels"`
		MinHCFirst    int        `json:"min_hc_first"`
		UniformGuardT int        `json:"uniform_guard_threshold"`
		ChipsMinHC    int        `json:"chips_min_hc_first,omitempty"`
		ChipsObserved int        `json:"chips,omitempty"`
	}{Metric: metric, Channels: []chanJSON{}}
	globalMin := 0
	for _, g := range groups {
		for _, m := range g.Metrics {
			if m.Name != metric || m.Stream.N() == 0 {
				continue
			}
			minHC := int(m.Stream.Min())
			out.Channels = append(out.Channels, chanJSON{
				Channel: g.Key.Channel, N: m.Stream.N(),
				MinHCFirst: minHC, GuardThreshold: defense.SafetyFromHCFirst(minHC),
			})
			if globalMin == 0 || minHC < globalMin {
				globalMin = minHC
			}
		}
	}
	if len(out.Channels) == 0 {
		return nil, "", badRequest("query: no %q samples in this corpus", metric)
	}
	out.MinHCFirst = globalMin
	out.UniformGuardT = defense.SafetyFromHCFirst(globalMin)
	for _, c := range snap.Merged.Chips {
		if c.MinHCFirst > 0 && (out.ChipsMinHC == 0 || c.MinHCFirst < out.ChipsMinHC) {
			out.ChipsMinHC = c.MinHCFirst
		}
	}
	out.ChipsObserved = len(snap.Merged.Chips)
	return marshalJSON(out)
}

// renderTRR reports the per-chip TRR fingerprints (the uncovered
// mitigation periods) and their population counts.
func renderTRR(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	type chipJSON struct {
		Seed      uint64 `json:"seed"`
		TRRPeriod int    `json:"trr_period"`
	}
	type periodJSON struct {
		Period int `json:"period"`
		Chips  int `json:"chips"`
	}
	out := struct {
		Chips   []chipJSON   `json:"chips"`
		Periods []periodJSON `json:"periods"`
	}{Chips: []chipJSON{}, Periods: []periodJSON{}}
	counts := map[int]int{}
	for _, c := range snap.Merged.Chips {
		out.Chips = append(out.Chips, chipJSON{Seed: c.Seed, TRRPeriod: c.TRRPeriod})
		counts[c.TRRPeriod]++
	}
	sort.Slice(out.Chips, func(i, j int) bool { return out.Chips[i].Seed < out.Chips[j].Seed })
	periods := make([]int, 0, len(counts))
	for p := range counts {
		periods = append(periods, p)
	}
	sort.Ints(periods)
	for _, p := range periods {
		out.Periods = append(out.Periods, periodJSON{Period: p, Chips: counts[p]})
	}
	return marshalJSON(out)
}

func marshalJSON(v any) ([]byte, string, error) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, "", err
	}
	return append(buf, '\n'), "application/json", nil
}

func writeJSON(w http.ResponseWriter, v any) {
	body, ctype, err := marshalJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}
