// Package query is the read side of the artifact store: an HTTP/JSON
// service exposing merged fleet results — distribution summaries,
// per-channel BER/HCfirst quantiles, TRR fingerprints and safe guard
// thresholds — with responses rendered by exactly the code paths the
// CLI uses, so a query against a store built from N fleet shards returns
// byte-identical CSV/JSON to a single-process `characterize` run.
//
// Responses are cached per (corpus, corpus generation, endpoint,
// canonical parameters). An ingest bumps the corpus generation, which
// retires that corpus's cache bucket on the next read while other
// corpora keep serving their cached bytes — invalidation is incremental,
// not global. Concurrent misses on one key collapse to a single render
// (hand-rolled single-flight): the first request renders while the rest
// wait on its result, so a burst of identical queries costs one
// derivation. Store snapshots are immutable and sealed, which is what
// makes the render paths safe to run from any number of goroutines.
//
// Cache entries are sealed response variants (DESIGN.md §14): the
// identity body, its gzip encoding and a strong ETag (SHA-256 content
// hash) are materialized once at render time, along with every header
// value the hit path needs. A cache hit therefore does no per-request
// work beyond routing: the canonical cache key is assembled in pooled
// scratch (no url.Values), the corpus resolves without materializing a
// snapshot, conditional requests (If-None-Match) return 304 without
// touching the body, and Accept-Encoding: gzip is served from the
// pre-compressed bytes — ≤2 allocs per hit, pinned by
// TestQueryHotPathAllocs and exercised at volume by cmd/loadgen.
package query

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/safari-repro/hbmrh/internal/defense"
	"github.com/safari-repro/hbmrh/internal/failpoint"
	"github.com/safari-repro/hbmrh/internal/report"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/store"
)

// Failpoint sites on the serving path: render (a failed render must
// return 500 without poisoning the cache — the next request re-renders
// and succeeds) and ingest (a failed POST must leave store and cache
// generations untouched).
var (
	fpQueryRender = failpoint.Register("query/render")
	fpQueryIngest = failpoint.Register("query/ingest")
)

// MaxIngestBytes bounds a POST /v1/ingest body.
const MaxIngestBytes = 256 << 20

// DefaultCacheEntries bounds one corpus generation's cache bucket.
const DefaultCacheEntries = 256

// keysBucket is the cache-bucket ID of the store-wide /v1/keys listing.
// Corpus IDs are "<tool>-<config hash>", so a NUL-prefixed name can never
// collide with one.
const keysBucket = "\x00keys"

// Server serves query endpoints over one Store. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	st *store.Store

	mu      sync.Mutex
	buckets map[string]*bucket // corpus ID (or keysBucket) -> current-generation bucket
	hits    uint64
	misses  uint64
	maxPer  int

	scratch sync.Pool // *keyScratch, reused across hot-path requests
}

// bucket caches rendered responses for one corpus at one generation.
type bucket struct {
	gen     uint64
	entries map[string]*entry
}

// entry is a single-flight render slot: done closes when v/err are final.
type entry struct {
	done chan struct{}
	v    *variant
	err  error
}

// variant is a sealed, immutable response: the identity and gzip bodies
// rendered and compressed once at cache-fill time, with every header
// value — the strong ETag (quoted SHA-256 of the identity body), the
// content lengths, type and corpus provenance — pre-materialized as the
// []string values http.Header stores, so serving a cache hit assigns
// slices into the header map instead of allocating through Header.Set.
type variant struct {
	body   []byte
	gzbody []byte
	etag   string // quoted, also etagHdr[0]

	ctype    []string
	etagHdr  []string
	length   []string
	gzlength []string
	corpus   []string // nil for store-wide responses (/v1/keys)
	gen      []string
}

// Shared immutable header values; never mutated after init.
var (
	varyHeader = []string{"Accept-Encoding"}
	gzipHeader = []string{"gzip"}
)

// newVariant seals one rendered body into its served form.
func newVariant(corpus string, gen uint64, body []byte, ctype string) *variant {
	sum := sha256.Sum256(body)
	etag := `"` + hex.EncodeToString(sum[:]) + `"`
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(body) // writes to a bytes.Buffer cannot fail
	zw.Close()
	v := &variant{
		body:     body,
		gzbody:   zbuf.Bytes(),
		etag:     etag,
		ctype:    []string{ctype},
		etagHdr:  []string{etag},
		length:   []string{strconv.Itoa(len(body))},
		gzlength: []string{strconv.Itoa(zbuf.Len())},
		gen:      []string{strconv.FormatUint(gen, 10)},
	}
	if corpus != "" {
		v.corpus = []string{corpus}
	}
	return v
}

// serve writes the variant: 304 when If-None-Match revalidates the ETag
// (RFC 7232 weak comparison — a substring scan suffices because ETags
// here are opaque fixed-length quoted hashes), the pre-compressed bytes
// when the client accepts gzip, the identity bytes otherwise. Header
// keys are written in their canonical spelling so the direct map
// assignments and client-side Header.Get agree.
func (v *variant) serve(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h["Vary"] = varyHeader
	h["Etag"] = v.etagHdr
	if v.corpus != nil {
		h["X-Corpus"] = v.corpus
	}
	h["X-Generation"] = v.gen
	if inm := r.Header.Get("If-None-Match"); inm != "" &&
		(inm == "*" || strings.Contains(inm, v.etag)) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = v.ctype
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		h["Content-Encoding"] = gzipHeader
		h["Content-Length"] = v.gzlength
		w.Write(v.gzbody)
		return
	}
	h["Content-Length"] = v.length
	w.Write(v.body)
}

// CacheStats reports cache effectiveness (for tests and benchmarks).
type CacheStats struct{ Hits, Misses uint64 }

// New returns a Server over st.
func New(st *store.Store) *Server {
	s := &Server{st: st, buckets: map[string]*bucket{}, maxPer: DefaultCacheEntries}
	s.scratch.New = func() any { return &keyScratch{} }
	return s
}

// Stats returns the cache hit/miss counters.
func (s *Server) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{Hits: s.hits, Misses: s.misses}
}

// Handler returns the HTTP handler serving the endpoint catalog
// (DESIGN.md §11): /healthz, /v1/keys, /v1/summary, /v1/csv,
// /v1/render, /v1/artifact, /v1/distributions, /v1/safety, /v1/trr and
// POST /v1/ingest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/v1/keys", s.keys)
	mux.HandleFunc("/v1/ingest", s.ingest)
	for path, render := range map[string]renderFunc{
		"/v1/summary":       renderSummary,
		"/v1/csv":           renderCSV,
		"/v1/render":        renderText,
		"/v1/artifact":      renderArtifact,
		"/v1/distributions": renderDistributions,
		"/v1/safety":        renderSafety,
		"/v1/trr":           renderTRR,
	} {
		mux.HandleFunc(path, s.cached(path, render))
	}
	return mux
}

// renderFunc renders one endpoint's body from an immutable snapshot. A
// returned *httpError sets the status; any other error is a 500.
type renderFunc func(snap *store.Snapshot, params url.Values) (body []byte, ctype string, err error)

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeError maps a render error to its HTTP status (500 unless the
// render returned an *httpError).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	}
	http.Error(w, err.Error(), status)
}

// cached wraps a renderFunc with corpus resolution, the generation-keyed
// variant cache and single-flight render dedup. The hit path is built to
// not allocate: the canonical cache key is assembled into pooled scratch
// straight from the raw query (no url.Values), the key bytes index the
// entry map directly (the compiler elides the string conversion in a map
// lookup), and the sealed variant serves itself. Only a miss — or a raw
// query needing full URL decoding — takes the allocating slow path.
func (s *Server) cached(path string, render renderFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		raw := r.URL.RawQuery
		var (
			ks        *keyScratch
			params    url.Values
			corpusKey string
		)
		// %-escapes, '+' and ';' need net/url's decoding; everything the
		// endpoints' parameter grammar produces stays on the fast path, and
		// both paths canonicalize to identical keys.
		fast := !strings.ContainsAny(raw, "%+;")
		if fast {
			ks = s.scratch.Get().(*keyScratch)
			corpusKey = ks.build(path, raw)
		} else {
			params = r.URL.Query()
			corpusKey = params.Get("key")
		}
		id, gen, err := s.st.ResolveID(corpusKey)
		if err != nil {
			if ks != nil {
				s.scratch.Put(ks)
			}
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if err := fpQueryRender.Inject(); err != nil {
			if ks != nil {
				s.scratch.Put(ks)
			}
			writeError(w, err)
			return
		}
		if fast {
			s.mu.Lock()
			if b := s.buckets[id]; b != nil && b.gen == gen {
				if e, ok := b.entries[string(ks.key)]; ok {
					s.hits++
					s.mu.Unlock()
					s.scratch.Put(ks)
					<-e.done
					if e.err != nil {
						writeError(w, e.err)
						return
					}
					e.v.serve(w, r)
					return
				}
			}
			s.mu.Unlock()
		}
		// Miss (or escaped query): materialize the key string and params,
		// snapshot the corpus, and go through the single-flight fill.
		var key string
		if fast {
			key = string(ks.key)
			s.scratch.Put(ks)
			params = r.URL.Query()
		} else {
			key = cacheKey(path, params)
		}
		snap, ok := s.st.Snapshot(id)
		if !ok { // resolved above; only a concurrent store wipe could race
			http.Error(w, "corpus not found", http.StatusNotFound)
			return
		}
		s.cacheServe(w, r, id, snap.Gen, snap.Corpus, key, func() ([]byte, string, error) {
			return render(snap, params)
		})
	}
}

// cacheServe serves one request from bucket bucketID at generation gen
// under key; on a miss the leader renders while concurrent requests for
// the same key wait on its entry, and the sealed variant is cached.
// corpus is the X-Corpus header value ("" omits it).
func (s *Server) cacheServe(w http.ResponseWriter, r *http.Request, bucketID string, gen uint64, corpus, key string, render func() ([]byte, string, error)) {
	s.mu.Lock()
	b := s.buckets[bucketID]
	if b == nil || b.gen < gen {
		// First read at this generation: retire the stale bucket (the
		// incremental invalidation — only this bucket's entries go).
		b = &bucket{gen: gen, entries: map[string]*entry{}}
		s.buckets[bucketID] = b
	}
	if b.gen > gen {
		// Our snapshot lost a race with an ingest; render this one
		// uncached rather than poisoning the newer bucket.
		s.misses++
		s.mu.Unlock()
		body, ctype, err := render()
		if err != nil {
			writeError(w, err)
			return
		}
		newVariant(corpus, gen, body, ctype).serve(w, r)
		return
	}
	if e, ok := b.entries[key]; ok {
		s.hits++
		s.mu.Unlock()
		<-e.done
		if e.err != nil {
			writeError(w, e.err)
			return
		}
		e.v.serve(w, r)
		return
	}
	s.misses++
	if len(b.entries) >= s.maxPer {
		for k, e := range b.entries {
			select {
			case <-e.done: // only evict completed entries
				delete(b.entries, k)
			default:
			}
			break
		}
	}
	e := &entry{done: make(chan struct{})}
	b.entries[key] = e
	s.mu.Unlock()

	body, ctype, err := render()
	if err == nil {
		e.v = newVariant(corpus, gen, body, ctype)
	}
	e.err = err
	close(e.done)
	if err != nil {
		// Failed renders are not worth caching; let a later request retry.
		s.mu.Lock()
		if cur := s.buckets[bucketID]; cur != nil && cur.entries[key] == e {
			delete(cur.entries, key)
		}
		s.mu.Unlock()
		writeError(w, err)
		return
	}
	e.v.serve(w, r)
}

// qpair is one decoded query parameter; on the fast path both strings
// are substrings of the raw query, so parsing allocates nothing.
type qpair struct{ k, v string }

// keyScratch is pooled per-request scratch for canonical cache keys.
type keyScratch struct {
	pairs []qpair
	key   []byte
}

// build assembles the canonical cache key — path, then each k=v pair
// NUL-prefixed in stable key-sorted order, byte-identical to cacheKey's
// output for the same decoded parameters — into ks.key, and returns the
// corpus `key` parameter's first value. Callers guarantee rawQuery
// contains no %-escapes, '+' or ';' (the fast-path gate), so substrings
// of it ARE the decoded values.
func (ks *keyScratch) build(path, rawQuery string) (corpusKey string) {
	ks.pairs = ks.pairs[:0]
	sawCorpus := false
	for raw := rawQuery; raw != ""; {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		if seg == "" {
			continue
		}
		p := qpair{k: seg}
		if i := strings.IndexByte(seg, '='); i >= 0 {
			p.k, p.v = seg[:i], seg[i+1:]
		}
		ks.pairs = append(ks.pairs, p)
		if p.k == "key" && !sawCorpus {
			corpusKey, sawCorpus = p.v, true
		}
	}
	// Insertion sort, stable in k (url.Values preserves the arrival order
	// of a repeated key's values, and so must the canonical form).
	for i := 1; i < len(ks.pairs); i++ {
		for j := i; j > 0 && ks.pairs[j].k < ks.pairs[j-1].k; j-- {
			ks.pairs[j], ks.pairs[j-1] = ks.pairs[j-1], ks.pairs[j]
		}
	}
	ks.key = append(ks.key[:0], path...)
	for _, p := range ks.pairs {
		ks.key = append(ks.key, 0)
		ks.key = append(ks.key, p.k...)
		ks.key = append(ks.key, '=')
		ks.key = append(ks.key, p.v...)
	}
	return corpusKey
}

// cacheKey canonicalizes the endpoint and its parameters: sorted keys,
// so equivalent URLs share one entry. The corpus and generation live in
// the bucket, not the key. This is the slow-path twin of
// keyScratch.build; the two must produce identical keys for equivalent
// requests.
func cacheKey(path string, params url.Values) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(path)
	for _, k := range keys {
		for _, v := range params[k] {
			sb.WriteByte(0)
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(v)
		}
	}
	return sb.String()
}

// groupByParam parses the group-by parameter, defaulting to the
// snapshot's stored axis.
func groupByParam(snap *store.Snapshot, params url.Values) (results.GroupBy, error) {
	v := params.Get("group-by")
	if v == "" {
		v = snap.Meta.GroupBy
	}
	gb, err := results.ParseGroupBy(v)
	if err != nil {
		return 0, badRequest("%v", err)
	}
	return gb, nil
}

// --- endpoint renders ------------------------------------------------

// healthz reports liveness plus the store's degradation state: "ok"
// with a healthy store, "degraded" (still HTTP 200 — the service is up
// and serving what it has) when Open quarantined objects, with the
// quarantined files listed so an operator knows which shards to
// re-ingest.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	q := s.st.Quarantined()
	status := "ok"
	files := make([]string, 0, len(q))
	for _, o := range q {
		files = append(files, o.File)
	}
	if len(q) > 0 {
		status = "degraded"
	}
	writeJSON(w, struct {
		Status      string   `json:"status"`
		Corpora     int      `json:"corpora"`
		StoreGen    uint64   `json:"store_generation"`
		Quarantined int      `json:"quarantined"`
		Files       []string `json:"quarantined_files,omitempty"`
	}{status, len(s.st.Corpora()), s.st.Generation(), len(q), files})
}

// keys lists the store's corpora with their snapshot state. It serves
// through the same variant cache and single-flight as the corpus
// endpoints, keyed on the store-wide generation (any ingest anywhere
// changes the listing), so a keys-polling dashboard revalidates by ETag
// instead of becoming a per-request marshal loop.
func (s *Server) keys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.cacheServe(w, r, keysBucket, s.st.Generation(), "", "/v1/keys", func() ([]byte, string, error) {
		return renderKeys(s.st)
	})
}

// renderKeys marshals the corpus listing (the /v1/keys body).
func renderKeys(st *store.Store) ([]byte, string, error) {
	type corpusJSON struct {
		Corpus   string `json:"corpus"`
		Gen      uint64 `json:"generation"`
		Tool     string `json:"tool"`
		GroupBy  string `json:"group_by"`
		Seeds    int    `json:"seed_count"`
		Chips    int    `json:"chips"`
		Members  int    `json:"members"`
		Pending  int    `json:"pending"`
		Complete bool   `json:"complete"`
	}
	out := struct {
		StoreGen uint64       `json:"store_generation"`
		Corpora  []corpusJSON `json:"corpora"`
	}{Corpora: []corpusJSON{}}
	for _, id := range st.Corpora() {
		snap, ok := st.Snapshot(id)
		if !ok {
			continue
		}
		out.StoreGen = snap.StoreGen
		out.Corpora = append(out.Corpora, corpusJSON{
			Corpus: snap.Corpus, Gen: snap.Gen,
			Tool: snap.Meta.Tool, GroupBy: snap.Meta.GroupBy,
			Seeds: snap.Meta.SeedCount, Chips: len(snap.Merged.Chips),
			Members: snap.Members, Pending: snap.Pending, Complete: snap.Complete,
		})
	}
	return marshalJSON(out)
}

// ingest accepts one artifact per POST body and feeds it to the store;
// the generation bump implicitly retires the corpus's cache bucket.
func (s *Server) ingest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := fpQueryIngest.Inject(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxIngestBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > MaxIngestBytes {
		http.Error(w, "artifact exceeds ingest size limit", http.StatusRequestEntityTooLarge)
		return
	}
	res, err := s.st.Ingest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, struct {
		Corpus    string `json:"corpus"`
		Hash      string `json:"hash"`
		Duplicate bool   `json:"duplicate"`
		Gen       uint64 `json:"generation"`
		StoreGen  uint64 `json:"store_generation"`
		Pending   int    `json:"pending"`
		Complete  bool   `json:"complete"`
	}{res.Corpus, res.Hash, res.Duplicate, res.Gen, res.StoreGen, res.Pending, res.Complete})
}

// renderSummary is the JSON export: byte-identical to `characterize`'s
// -json output for the same merged artifact and axis.
func renderSummary(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	gb, err := groupByParam(snap, params)
	if err != nil {
		return nil, "", err
	}
	body, err := snap.Merged.SummaryJSON(gb)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	return body, "application/json", nil
}

// renderCSV is the CSV export: byte-identical to `characterize`'s -csv
// output (same SummaryCSV rows through the same report.WriteCSV).
func renderCSV(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	gb, err := groupByParam(snap, params)
	if err != nil {
		return nil, "", err
	}
	headers, rows, err := snap.Merged.SummaryCSV(gb)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf, headers, rows); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), "text/csv; charset=utf-8", nil
}

// renderText is the fleet-report text render of the distributions.
func renderText(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	gb, err := groupByParam(snap, params)
	if err != nil {
		return nil, "", err
	}
	groups, err := snap.Merged.View(gb)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	text := results.RenderGroups(groups, func(name string) string { return name }, nil)
	return []byte(text), "text/plain; charset=utf-8", nil
}

// renderArtifact returns the merged artifact file itself — accumulator
// state, not summaries — so a client can merge further or re-host it.
func renderArtifact(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	body, err := snap.Merged.MarshalIndented()
	if err != nil {
		return nil, "", err
	}
	return body, "application/json", nil
}

// renderDistributions returns quantile curves per group for one metric:
// the HTTP form of the paper's per-channel BER/HCfirst distribution
// figures. `points` samples the quantile function evenly in [0,1];
// quantile_tolerance carries the sketch resolution (0 = exact).
func renderDistributions(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	metric := params.Get("metric")
	if metric == "" {
		return nil, "", badRequest("query: metric parameter required (e.g. wcdp_ber)")
	}
	gb, err := groupByParam(snap, params)
	if err != nil {
		return nil, "", err
	}
	points := 9
	if v := params.Get("points"); v != "" {
		points, err = strconv.Atoi(v)
		if err != nil || points < 2 || points > 4096 {
			return nil, "", badRequest("query: points must be an integer in [2, 4096]")
		}
	}
	groups, err := snap.Merged.View(gb)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	type qpoint struct {
		Q float64 `json:"q"`
		V float64 `json:"v"`
	}
	type distJSON struct {
		Region            string   `json:"region,omitempty"`
		Channel           *int     `json:"channel,omitempty"`
		Point             string   `json:"point,omitempty"`
		N                 int      `json:"n"`
		Mean              float64  `json:"mean"`
		QuantileTolerance float64  `json:"quantile_tolerance,omitempty"`
		Quantiles         []qpoint `json:"quantiles"`
	}
	out := struct {
		Metric string     `json:"metric"`
		Groups []distJSON `json:"groups"`
	}{Metric: metric, Groups: []distJSON{}}
	found := false
	for _, g := range groups {
		for _, m := range g.Metrics {
			if m.Name != metric {
				continue
			}
			found = true
			if m.Stream.N() == 0 {
				continue
			}
			d := distJSON{
				Region: g.Key.Region, Point: g.Key.Point,
				N: m.Stream.N(), Mean: m.Stream.Mean(),
				QuantileTolerance: m.Stream.QuantileTolerance(),
			}
			if g.Key.Channel != results.NoChannel {
				ch := g.Key.Channel
				d.Channel = &ch
			}
			for i := 0; i < points; i++ {
				q := float64(i) / float64(points-1)
				d.Quantiles = append(d.Quantiles, qpoint{Q: q, V: m.Stream.Quantile(q)})
			}
			out.Groups = append(out.Groups, d)
		}
	}
	if !found {
		return nil, "", badRequest("query: metric %q not in this corpus", metric)
	}
	return marshalJSON(out)
}

// renderSafety maps each channel's measured minimum HCfirst to the guard
// threshold defense.SafetyFromHCFirst derives — the lookup a memory
// controller configuring the adaptive policy performs.
func renderSafety(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	metric := params.Get("metric")
	if metric == "" {
		metric = "wcdp_hc_first"
	}
	groups, err := snap.Merged.View(results.ByChannel)
	if err != nil {
		return nil, "", badRequest("query: safety needs a channel view: %v", err)
	}
	type chanJSON struct {
		Channel        int `json:"channel"`
		N              int `json:"n"`
		MinHCFirst     int `json:"min_hc_first"`
		GuardThreshold int `json:"guard_threshold"`
	}
	out := struct {
		Metric        string     `json:"metric"`
		Channels      []chanJSON `json:"channels"`
		MinHCFirst    int        `json:"min_hc_first"`
		UniformGuardT int        `json:"uniform_guard_threshold"`
		ChipsMinHC    int        `json:"chips_min_hc_first,omitempty"`
		ChipsObserved int        `json:"chips,omitempty"`
	}{Metric: metric, Channels: []chanJSON{}}
	globalMin := 0
	for _, g := range groups {
		for _, m := range g.Metrics {
			if m.Name != metric || m.Stream.N() == 0 {
				continue
			}
			minHC := int(m.Stream.Min())
			out.Channels = append(out.Channels, chanJSON{
				Channel: g.Key.Channel, N: m.Stream.N(),
				MinHCFirst: minHC, GuardThreshold: defense.SafetyFromHCFirst(minHC),
			})
			if globalMin == 0 || minHC < globalMin {
				globalMin = minHC
			}
		}
	}
	if len(out.Channels) == 0 {
		return nil, "", badRequest("query: no %q samples in this corpus", metric)
	}
	out.MinHCFirst = globalMin
	out.UniformGuardT = defense.SafetyFromHCFirst(globalMin)
	for _, c := range snap.Merged.Chips {
		if c.MinHCFirst > 0 && (out.ChipsMinHC == 0 || c.MinHCFirst < out.ChipsMinHC) {
			out.ChipsMinHC = c.MinHCFirst
		}
	}
	out.ChipsObserved = len(snap.Merged.Chips)
	return marshalJSON(out)
}

// renderTRR reports the per-chip TRR fingerprints (the uncovered
// mitigation periods) and their population counts.
func renderTRR(snap *store.Snapshot, params url.Values) ([]byte, string, error) {
	type chipJSON struct {
		Seed      uint64 `json:"seed"`
		TRRPeriod int    `json:"trr_period"`
	}
	type periodJSON struct {
		Period int `json:"period"`
		Chips  int `json:"chips"`
	}
	out := struct {
		Chips   []chipJSON   `json:"chips"`
		Periods []periodJSON `json:"periods"`
	}{Chips: []chipJSON{}, Periods: []periodJSON{}}
	counts := map[int]int{}
	for _, c := range snap.Merged.Chips {
		out.Chips = append(out.Chips, chipJSON{Seed: c.Seed, TRRPeriod: c.TRRPeriod})
		counts[c.TRRPeriod]++
	}
	sort.Slice(out.Chips, func(i, j int) bool { return out.Chips[i].Seed < out.Chips[j].Seed })
	periods := make([]int, 0, len(counts))
	for p := range counts {
		periods = append(periods, p)
	}
	sort.Ints(periods)
	for _, p := range periods {
		out.Periods = append(out.Periods, periodJSON{Period: p, Chips: counts[p]})
	}
	return marshalJSON(out)
}

func marshalJSON(v any) ([]byte, string, error) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, "", err
	}
	return append(buf, '\n'), "application/json", nil
}

func writeJSON(w http.ResponseWriter, v any) {
	body, ctype, err := marshalJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}
