package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	// Odd-length sample with known Tukey hinges.
	xs := []float64{7, 1, 3, 5, 9}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 9 {
		t.Fatalf("extrema wrong: %+v", s)
	}
	if s.Median != 5 {
		t.Errorf("median = %v, want 5", s.Median)
	}
	if s.Q1 != 2 { // median of {1,3}
		t.Errorf("q1 = %v, want 2", s.Q1)
	}
	if s.Q3 != 8 { // median of {7,9}
		t.Errorf("q3 = %v, want 8", s.Q3)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if s.IQR() != 6 {
		t.Errorf("IQR = %v, want 6", s.IQR())
	}
}

func TestSummarizeEvenSample(t *testing.T) {
	xs := []float64{4, 2, 6, 8}
	s := Summarize(xs)
	if s.Median != 5 {
		t.Errorf("median = %v, want 5", s.Median)
	}
	if s.Q1 != 3 || s.Q3 != 7 {
		t.Errorf("quartiles = (%v, %v), want (3, 7)", s.Q1, s.Q3)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(nil) should panic")
		}
	}()
	Summarize(nil)
}

func TestSummarizeSingleElement(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Min != 42 || s.Max != 42 || s.Median != 42 || s.Mean != 42 {
		t.Fatalf("single-element summary wrong: %+v", s)
	}
	if s.StdDev != 0 {
		t.Errorf("stddev = %v, want 0", s.StdDev)
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	// min <= q1 <= median <= q3 <= max for any non-empty sample.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw)+1)
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		xs = append(xs, 1) // guarantee non-empty
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCV(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	wantCV := s.StdDev / 2.0
	if math.Abs(s.CV()-wantCV) > 1e-12 {
		t.Errorf("CV = %v, want %v", s.CV(), wantCV)
	}
	zero := Summary{Mean: 0, StdDev: 1}
	if !math.IsNaN(zero.CV()) {
		t.Error("CV of zero-mean summary should be NaN")
	}
}

func TestMedianAgainstSort(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw)+1)
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		xs = append(xs, 0)
		m := Median(xs)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		// At least half the sample on each side.
		below, above := 0, 0
		for _, x := range sorted {
			if x <= m {
				below++
			}
			if x >= m {
				above++
			}
		}
		return below*2 >= len(xs) && above*2 >= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndMinMax(t *testing.T) {
	xs := []float64{2, -1, 5}
	if got := Mean(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
	lo, hi := MinMax(xs)
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = (%v, %v), want (-1, 5)", lo, hi)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 0.1, 0.5, 0.9, 1.5, -3}, 0, 1, 2)
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	// -3 clamps into bin 0; 1.5 clamps into bin 1; 0.5 and 0.9 land in bin 1.
	if h.Counts[0] != 3 || h.Counts[1] != 3 {
		t.Fatalf("counts = %v, want [3 3]", h.Counts)
	}
	if h.Mode() != 0 { // tie resolves to the first bin
		t.Errorf("mode = %d, want 0", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins": func() { NewHistogram(nil, 0, 1, 0) },
		"bad range": func() { NewHistogram(nil, 1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSummaryStringIsStable(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	want := "n=4 min=1 q1=1.5 med=2.5 q3=3.5 max=4 mean=2.5"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSummarizeSingleElementQuartiles(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Q1 != 7 || s.Q3 != 7 {
		t.Fatalf("single-element quartiles = (%v, %v), want (7, 7)", s.Q1, s.Q3)
	}
	if s.IQR() != 0 {
		t.Fatalf("IQR = %v, want 0", s.IQR())
	}
}
