// Package stats provides the statistics layer under the paper's figures
// and the repo's distributable artifacts.
//
// The batch side is the figure vocabulary: box-and-whiskers five-number
// summaries (Figs. 3-4, Summarize), means and coefficients of variation
// (Fig. 6, Summary.CV), and fixed-range histograms.
//
// The streaming side is what makes sharded runs merge exactly. Stream is
// a bounded-memory accumulator (exact small-sample buffer up to a
// cutoff, then histogram bins) whose sums are ExactSum values — Shewchuk
// compensated summation keeping the exact running sum as non-overlapping
// partials — so Stream.Merge is associative and commutative bit for bit,
// not just approximately. That exactness is the base of the repo-wide
// byte-identity guarantee: shard artifacts merged in any grouping render
// the same bytes as a single-process run (see internal/results and
// DESIGN.md §6-§7, §10). Streams serialize through a versioned binary
// codec and a JSON form (codec.go), both validated on decode.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a box-and-whiskers description of a sample, following the
// paper's footnote 2: the box spans the first and third quartiles (medians
// of the lower and upper halves), whiskers span min and max, and the circle
// marker is the mean.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
}

// CV returns the coefficient of variation: standard deviation normalized
// to the mean (Fig. 6's x-axis). It returns NaN for a zero mean.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return math.NaN()
	}
	return s.StdDev / s.Mean
}

// IQR returns the interquartile range.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// String renders the five-number summary compactly for logs and reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// Summarize computes the five-number summary plus mean and standard
// deviation of xs. It copies and sorts internally; xs is not modified.
// It panics on an empty sample, which always indicates a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return summarizeSorted(sorted)
}

// summarizeSorted is Summarize over an already-sorted sample. Moments are
// accumulated in sorted order (exactly what Summarize always did, since it
// sums after sorting), so callers holding a sorted view — Stream.Summary
// over its memoized sorted sample — get bit-identical results without the
// copy.
func summarizeSorted(sorted []float64) Summary {
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against rounding for near-constant samples
	}

	// Quartiles as medians of the lower and upper halves (Tukey hinges),
	// matching the paper's definition. A single-element sample is its own
	// quartile on both sides.
	half := len(sorted) / 2
	lower := sorted[:half]
	var upper []float64
	if len(sorted)%2 == 0 {
		upper = sorted[half:]
	} else {
		upper = sorted[half+1:]
	}
	q1, q3 := median(lower), median(upper)
	if len(sorted) == 1 {
		q1, q3 = sorted[0], sorted[0]
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     q1,
		Median: median(sorted),
		Q3:     q3,
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
	}
}

// median of a sorted slice; returns the single element for n=1 and the
// midpoint average for even n. Empty input returns NaN (only reachable for
// a 1-element Summarize, whose halves are empty).
func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	// Average the two central elements without overflowing for values
	// near the float64 limits.
	return sorted[n/2-1]/2 + sorted[n/2]/2
}

// Median computes the median of xs without requiring pre-sorting.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return median(sorted)
}

// Mean returns the arithmetic mean of xs, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the extrema of xs. It panics on an empty sample.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty sample")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Histogram counts xs into equal-width bins spanning [lo, hi). Values
// outside the range clamp to the first/last bin so totals are preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with the given number of bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		} else if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Total returns the number of samples binned.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Mode returns the index of the fullest bin.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}
