package stats

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// Stream codec: a stable, versioned wire format so shard accumulators can
// leave their process — written to artifact files by one machine, read
// and merged by another — without weakening any in-memory guarantee.
// Both encodings capture the full accumulator state (domain, exact moment
// sums, bin counts, extrema, and the raw sample while in exact mode), so
//
//	decode(encode(s)) == s          bit for bit, and
//	decode(encode(a)).Merge(decode(encode(b))) == a.Merge(b)
//
// also bit for bit. The binary format is the compact machine form; the
// JSON form is what artifact files embed (internal/results) and is
// human-inspectable. Both carry an explicit version and reject payloads
// from a different version rather than guessing.
//
// Values must be finite: JSON cannot represent NaN/Inf (encoding/json
// errors), and the binary decoder rejects non-finite fields, so a stream
// poisoned by non-finite samples fails loudly at the boundary instead of
// silently corrupting a fleet aggregate.

// StreamCodecVersion is the wire-format version of both the binary and
// JSON stream encodings. Decoders reject any other version.
const StreamCodecVersion = 1

// streamMagic brands binary stream payloads so truncated or foreign bytes
// fail fast.
var streamMagic = [4]byte{'h', 'b', 's', 't'}

// maxStreamSliceLen bounds decoded slice lengths before allocation, so a
// corrupt or hostile length prefix cannot force a huge allocation beyond
// what the payload itself carries.
const maxStreamSliceLen = 1 << 24

// MarshalBinary encodes the stream in the versioned little-endian binary
// format. It never fails on streams produced by Add/Merge of finite
// samples; non-finite state is rejected to keep the codec's round-trip
// contract meaningful.
func (s *Stream) MarshalBinary() ([]byte, error) {
	if err := s.checkFinite(); err != nil {
		return nil, err
	}
	size := 4 + 2 + 1 + // magic, version, flags
		8*6 + // lo, hi, cutoff, n, min, max
		4 + 8*len(s.sum.partials) +
		4 + 8*len(s.sumSq.partials) +
		4 + 8*len(s.bins) +
		4 + 8*len(s.exact)
	buf := make([]byte, 0, size)
	buf = append(buf, streamMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, StreamCodecVersion)
	var flags byte
	if s.sketched {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.lo))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.hi))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(s.cutoff)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.min))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.max))
	buf = appendFloats(buf, s.sum.partials)
	buf = appendFloats(buf, s.sumSq.partials)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.bins)))
	for _, c := range s.bins {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	buf = appendFloats(buf, s.exact)
	return buf, nil
}

func appendFloats(buf []byte, xs []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xs)))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// binReader walks a binary payload with bounds checking; the first
// failure sticks so call sites stay linear.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("stats: decoding stream: "+format, args...)
	}
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf)-r.off < n {
		r.fail("truncated payload: need %d bytes at offset %d, have %d", n, r.off, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *binReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *binReader) sliceLen(what string) int {
	b := r.take(4)
	if b == nil {
		return 0
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxStreamSliceLen {
		r.fail("%s length %d exceeds limit", what, n)
		return 0
	}
	// The payload must actually carry the elements it declares; checking
	// here bounds the allocation to the payload size.
	if len(r.buf)-r.off < int(n)*8 {
		r.fail("truncated payload: %s declares %d elements past the end", what, n)
		return 0
	}
	return int(n)
}

func (r *binReader) floats(what string) []float64 {
	n := r.sliceLen(what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// UnmarshalBinary decodes a payload produced by MarshalBinary, validating
// the magic, version and every structural invariant (declared lengths vs
// payload size, Σbins == n, exact-mode consistency). Truncated,
// version-skewed or foreign payloads are rejected with an error and leave
// s untouched.
func (s *Stream) UnmarshalBinary(data []byte) error {
	r := &binReader{buf: data}
	magic := r.take(4)
	if r.err != nil {
		return r.err
	}
	if [4]byte(magic) != streamMagic {
		return fmt.Errorf("stats: decoding stream: bad magic %q", magic)
	}
	if v := r.u16(); r.err == nil && v != StreamCodecVersion {
		return fmt.Errorf("stats: decoding stream: version %d, this build reads version %d", v, StreamCodecVersion)
	}
	flagBytes := r.take(1)
	var d Stream
	if r.err == nil {
		flags := flagBytes[0]
		d.sketched = flags&1 != 0
		if rest := flags &^ 1; rest != 0 {
			r.fail("unknown flag bits %#x", rest)
		}
	}
	d.lo = r.f64()
	d.hi = r.f64()
	d.cutoff = int(int64(r.u64()))
	d.n = int64(r.u64())
	d.min = r.f64()
	d.max = r.f64()
	d.sum = ExactSum{partials: r.floats("sum")}
	d.sumSq = ExactSum{partials: r.floats("sum_sq")}
	if n := r.sliceLen("bins"); r.err == nil && n > 0 {
		d.bins = make([]int64, n)
		for i := range d.bins {
			d.bins[i] = int64(r.u64())
		}
	}
	d.exact = r.floats("exact")
	if r.err != nil {
		return r.err
	}
	if r.off != len(data) {
		return fmt.Errorf("stats: decoding stream: %d trailing bytes", len(data)-r.off)
	}
	if err := d.validate(); err != nil {
		return err
	}
	*s = d
	return nil
}

// streamJSON is the JSON wire form of a Stream; field order is the
// marshal order, fixed for deterministic output.
type streamJSON struct {
	V        int       `json:"v"`
	Lo       float64   `json:"lo"`
	Hi       float64   `json:"hi"`
	Cutoff   int       `json:"cutoff"`
	N        int64     `json:"n"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Sum      []float64 `json:"sum"`
	SumSq    []float64 `json:"sum_sq"`
	Bins     []int64   `json:"bins"`
	Sketched bool      `json:"sketched"`
	Exact    []float64 `json:"exact,omitempty"`
}

// MarshalJSON encodes the stream as a versioned JSON object. float64
// fields round-trip exactly through encoding/json's shortest-form
// encoding, so the JSON form carries the same bit-level guarantees as the
// binary one.
func (s *Stream) MarshalJSON() ([]byte, error) {
	if err := s.checkFinite(); err != nil {
		return nil, err
	}
	return json.Marshal(streamJSON{
		V:        StreamCodecVersion,
		Lo:       s.lo,
		Hi:       s.hi,
		Cutoff:   s.cutoff,
		N:        s.n,
		Min:      s.min,
		Max:      s.max,
		Sum:      s.sum.partials,
		SumSq:    s.sumSq.partials,
		Bins:     s.bins,
		Sketched: s.sketched,
		Exact:    s.exact,
	})
}

// UnmarshalJSON decodes the JSON form with the same validation as
// UnmarshalBinary.
func (s *Stream) UnmarshalJSON(data []byte) error {
	var j streamJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("stats: decoding stream JSON: %w", err)
	}
	if j.V != StreamCodecVersion {
		return fmt.Errorf("stats: decoding stream JSON: version %d, this build reads version %d", j.V, StreamCodecVersion)
	}
	d := Stream{
		lo:       j.Lo,
		hi:       j.Hi,
		cutoff:   j.Cutoff,
		n:        j.N,
		min:      j.Min,
		max:      j.Max,
		sum:      ExactSum{partials: j.Sum},
		sumSq:    ExactSum{partials: j.SumSq},
		bins:     j.Bins,
		sketched: j.Sketched,
		exact:    j.Exact,
	}
	if err := d.validate(); err != nil {
		return err
	}
	*s = d
	return nil
}

// checkFinite rejects non-finite accumulator state before encoding.
func (s *Stream) checkFinite() error {
	finite := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if !finite(s.lo, s.hi, s.min, s.max) ||
		!finite(s.sum.partials...) || !finite(s.sumSq.partials...) || !finite(s.exact...) {
		return fmt.Errorf("stats: encoding stream: non-finite state (a non-finite sample was folded in)")
	}
	return nil
}

// validate checks the structural invariants every Stream built by
// Add/Merge satisfies; decoders apply it so a corrupt payload cannot
// materialize an accumulator that later panics or silently mis-merges.
func (s *Stream) validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("stats: decoding stream: invalid state: "+format, args...)
	}
	if err := s.checkFinite(); err != nil {
		return fail("non-finite field")
	}
	if s.hi <= s.lo {
		return fail("domain [%g,%g) is empty", s.lo, s.hi)
	}
	if s.cutoff < 0 {
		return fail("negative cutoff %d", s.cutoff)
	}
	if len(s.bins) == 0 {
		return fail("no bins")
	}
	if s.n < 0 {
		return fail("negative sample count %d", s.n)
	}
	var total int64
	for i, c := range s.bins {
		if c < 0 {
			return fail("negative count in bin %d", i)
		}
		total += c
	}
	if total != s.n {
		return fail("bin counts sum to %d, sample count is %d", total, s.n)
	}
	if s.sketched {
		if len(s.exact) != 0 {
			return fail("sketched stream carries a raw sample")
		}
		if s.n <= int64(s.cutoff) {
			return fail("sketched stream with n=%d not past cutoff %d", s.n, s.cutoff)
		}
	} else if int64(len(s.exact)) != s.n {
		return fail("exact-mode sample holds %d values for n=%d", len(s.exact), s.n)
	}
	if s.n == 0 {
		if s.min != 0 || s.max != 0 || len(s.sum.partials) != 0 || len(s.sumSq.partials) != 0 {
			return fail("empty stream with non-zero aggregate state")
		}
	} else if s.min > s.max {
		return fail("min %g exceeds max %g", s.min, s.max)
	}
	return nil
}
