package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream is a mergeable streaming accumulator producing the same Summary a
// batch Summarize would, without retaining the sample once it grows past a
// cutoff. It is the memory backbone of fleet-scale studies: hundreds of
// chip instances feed per-region Streams as they complete, so resident
// memory is O(regions), not O(chips x rows).
//
// Moments come from exact sums (ExactSum): Σx and Σx² are accumulated
// with no rounding error and rounded once when read, so Mean and StdDev
// depend only on the multiset of samples — never on arrival order or on
// how shards were grouped before merging. This is what makes a sharded
// fleet scan byte-identical to a single sequential fold; running-moment
// recurrences (Welford/Chan) are not floating-point associative and
// cannot give that guarantee. Quantiles come from a fixed-marker
// estimator in the spirit of the P² algorithm (Jain & Chlamtac, CACM'85):
// a constant-size set of markers tracks the distribution in one pass.
// Unlike classic P² — whose marker positions depend on arrival order and
// therefore cannot be merged — the markers here are bin boundaries fixed a
// priori over a caller-declared domain, which makes Merge commutative and
// associative in the bin counts: shards can be combined in any order and
// yield identical quantile estimates.
//
// For small samples (N <= the exact cutoff) the Stream keeps the raw
// values and Summary is bit-identical to Summarize; past the cutoff the
// buffer is dropped and quantiles are interpolated from the bins, landing
// within one bin width of the nearest-rank empirical quantile (see
// Quantile for the caveat on sparse/discrete distributions).
//
// A Stream serializes with MarshalBinary/MarshalJSON (versioned; see
// codec.go), so shard accumulators can cross process and machine
// boundaries and merge on the other side with the same guarantees.
type Stream struct {
	lo, hi float64
	cutoff int

	n          int64
	sum, sumSq ExactSum
	min, max   float64

	bins []int64
	// exact holds the raw sample while n <= cutoff; nil once sketched.
	// Insertion order is load-bearing: the codec serializes it verbatim,
	// so shard-merge byte-identity forbids reordering it in place.
	exact    []float64
	sketched bool
	// sortedExact memoizes a sorted copy of exact so quartile render
	// paths sort once per accumulation, not once per Quantile call; nil
	// until built (ensureSorted), invalidated by Add/Merge, never
	// serialized.
	sortedExact []float64
}

// Default sizing of a Stream: the exact-mode cutoff bounds the retained
// sample, and the bin count bounds the sketch-mode quantile error at
// (hi-lo)/DefaultStreamBins.
const (
	DefaultExactCutoff = 1024
	DefaultStreamBins  = 512
)

// NewStream returns a Stream over the quantile domain [lo, hi) with the
// default cutoff and bin count. The domain must be declared up front —
// that is what keeps merging order-independent — and should cover the
// metric's full range (BER: [0,1]; HCfirst: [0, maxHammers]). Values
// outside the domain clamp into the edge bins; Min/Max still report the
// true extrema.
func NewStream(lo, hi float64) *Stream {
	return NewStreamSized(lo, hi, DefaultExactCutoff, DefaultStreamBins)
}

// NewStreamSized is NewStream with an explicit exact-mode cutoff and bin
// count.
func NewStreamSized(lo, hi float64, cutoff, bins int) *Stream {
	if hi <= lo {
		panic("stats: stream domain must be non-empty")
	}
	if cutoff < 0 {
		cutoff = 0
	}
	if bins <= 0 {
		panic("stats: stream needs at least one bin")
	}
	return &Stream{lo: lo, hi: hi, cutoff: cutoff, bins: make([]int64, bins)}
}

// Add folds one sample into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	s.sum.Add(x)
	s.sumSq.Add(x * x)
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.bins[s.binOf(x)]++
	if !s.sketched {
		s.exact = append(s.exact, x)
		s.sortedExact = nil
		if len(s.exact) > s.cutoff {
			s.exact, s.sketched = nil, true
		}
	}
}

func (s *Stream) binOf(x float64) int {
	i := int((x - s.lo) / (s.hi - s.lo) * float64(len(s.bins)))
	if i < 0 {
		return 0
	}
	if i >= len(s.bins) {
		return len(s.bins) - 1
	}
	return i
}

// CompatibleWith reports whether two streams share the same domain,
// cutoff and bin count — the precondition for Merge. Shards of one
// aggregation always do; artifact-level merging (internal/results) calls
// this to turn a mismatch into an error instead of a panic.
func (s *Stream) CompatibleWith(o *Stream) error {
	if s.lo != o.lo || s.hi != o.hi || s.cutoff != o.cutoff || len(s.bins) != len(o.bins) {
		return fmt.Errorf("stats: incompatible streams: [%g,%g)/%d/%d vs [%g,%g)/%d/%d",
			s.lo, s.hi, s.cutoff, len(s.bins), o.lo, o.hi, o.cutoff, len(o.bins))
	}
	return nil
}

// Merge folds another stream's state into s. Both must share the same
// domain, cutoff and bin count (shards of one aggregation always do; a
// mismatch indicates a harness bug and panics — see CompatibleWith for
// the checked variant). Bin counts, sample count, extrema and the exact
// moment sums all merge exactly, so every Summary field is independent of
// the merge order and grouping.
func (s *Stream) Merge(o *Stream) {
	if err := s.CompatibleWith(o); err != nil {
		panic(err.Error())
	}
	if o.n == 0 {
		return
	}
	s.sum.Merge(&o.sum)
	s.sumSq.Merge(&o.sumSq)
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	for i, c := range o.bins {
		s.bins[i] += c
	}
	if s.sketched || o.sketched || len(s.exact)+len(o.exact) > s.cutoff {
		s.exact, s.sketched = nil, true
	} else {
		s.exact = append(s.exact, o.exact...)
	}
	s.sortedExact = nil
}

// Clone returns a deep copy of the stream; mutating the copy never
// affects the original. Coarser aggregation views (internal/results)
// clone fine-axis streams before merging them together.
func (s *Stream) Clone() *Stream {
	c := *s
	c.bins = append([]int64(nil), s.bins...)
	c.exact = append([]float64(nil), s.exact...)
	c.sortedExact = nil
	c.sum = s.sum.clone()
	c.sumSq = s.sumSq.clone()
	return &c
}

// N returns the number of samples folded in so far.
func (s *Stream) N() int { return int(s.n) }

// Mean returns the streaming mean — the exactly-accumulated Σx rounded
// once, then divided by N — or NaN for an empty stream. The result is
// independent of sample arrival order and shard merge grouping.
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum.Value() / float64(s.n)
}

// StdDev returns the streaming population standard deviation (the same
// Σx²/N − mean² formula Summarize uses, but over exactly-accumulated
// sums), or NaN for an empty stream. Like Mean, it is independent of
// arrival order and merge grouping.
func (s *Stream) StdDev() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	n := float64(s.n)
	mean := s.sum.Value() / n
	v := s.sumSq.Value()/n - mean*mean
	if v < 0 {
		v = 0 // guard against rounding for near-constant samples
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample seen. It panics on an empty stream.
func (s *Stream) Min() float64 {
	if s.n == 0 {
		panic("stats: Min of empty stream")
	}
	return s.min
}

// Max returns the largest sample seen. It panics on an empty stream.
func (s *Stream) Max() float64 {
	if s.n == 0 {
		panic("stats: Max of empty stream")
	}
	return s.max
}

// Sketched reports whether the stream has outgrown exact mode and dropped
// the raw sample.
func (s *Stream) Sketched() bool { return s.sketched }

// Quantile estimates the q-quantile (q in [0,1]). Exact mode interpolates
// order statistics of the retained sample. Sketch mode locates the bin
// holding the target rank and interpolates within it, returning a value
// within one bin width of the nearest-rank empirical quantile (for
// samples inside the declared domain; out-of-domain values clamp into
// the edge bins). Interpolating quantile definitions — Summarize's Tukey
// hinges, or exact mode's rank interpolation — can differ from the
// nearest-rank quantile by more than that at jumps of sparse or heavily
// discrete distributions, where the true quantile falls between two
// samples many bins apart; on distributions dense at the quartiles the
// definitions agree to within a bin or two (what the equivalence tests
// assert). It panics on an empty stream.
func (s *Stream) Quantile(q float64) float64 {
	if s.n == 0 {
		panic("stats: Quantile of empty stream")
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := q * float64(s.n-1)
	if !s.sketched {
		sorted := s.ensureSorted()
		i := int(rank)
		frac := rank - float64(i)
		if i+1 >= len(sorted) {
			return sorted[len(sorted)-1]
		}
		return sorted[i] + frac*(sorted[i+1]-sorted[i])
	}
	w := (s.hi - s.lo) / float64(len(s.bins))
	var cum int64
	for i, c := range s.bins {
		if c == 0 {
			continue
		}
		if rank < float64(cum+c) {
			// Samples in bin i occupy ranks [cum, cum+c); spread them
			// uniformly over the bin. The fraction is capped at 1 so the
			// estimate never leaves the occupied bin (a single-sample bin
			// would otherwise overshoot by half a width), keeping it
			// within one bin width of the nearest-rank order statistic;
			// finally clamp to the observed extrema.
			frac := (rank - float64(cum) + 0.5) / float64(c)
			if frac > 1 {
				frac = 1
			}
			v := s.lo + w*(float64(i)+frac)
			return math.Min(math.Max(v, s.min), s.max)
		}
		cum += c
	}
	return s.max
}

// Summary renders the stream as the paper's box-and-whiskers summary. In
// exact mode it equals Summarize of the sample bit for bit; in sketch mode
// the quartiles carry the estimator's one-bin-width tolerance. It panics
// on an empty stream, which always indicates a harness bug.
func (s *Stream) Summary() Summary {
	if s.n == 0 {
		panic("stats: Summary of empty stream")
	}
	if !s.sketched {
		return summarizeSorted(s.ensureSorted())
	}
	return Summary{
		N:      int(s.n),
		Min:    s.min,
		Q1:     s.Quantile(0.25),
		Median: s.Quantile(0.5),
		Q3:     s.Quantile(0.75),
		Max:    s.max,
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
	}
}

// ensureSorted returns the memoized sorted view of the exact sample,
// building it on first use. The raw buffer keeps its insertion order (the
// codec serializes it verbatim), so only the copy is sorted.
func (s *Stream) ensureSorted() []float64 {
	if s.sortedExact == nil {
		s.sortedExact = make([]float64, len(s.exact))
		copy(s.sortedExact, s.exact)
		sort.Float64s(s.sortedExact)
	}
	return s.sortedExact
}

// Seal pre-builds the sorted view of an exact-mode stream so subsequent
// Quantile and Summary calls are strictly read-only — the precondition
// for handing one stream to many concurrent readers, as the artifact
// store's query service does with merged views. Sketch-mode and empty
// streams have nothing to build; sealing is idempotent, and any later
// Add or Merge simply invalidates the view again.
func (s *Stream) Seal() {
	if !s.sketched && s.n > 0 {
		s.ensureSorted()
	}
}

// QuantileTolerance returns the sketch's resolution: one bin width (zero
// while the stream is still exact). This bounds the error against the
// nearest-rank empirical quantile; see Quantile for why interpolating
// definitions can differ by more on sparse or discrete distributions.
func (s *Stream) QuantileTolerance() float64 {
	if !s.sketched {
		return 0
	}
	return (s.hi - s.lo) / float64(len(s.bins))
}
