package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// sampleSets returns the shapes the equivalence suite runs over: uniform,
// heavily skewed (lognormal-like, the fault model's shape), and constant.
func sampleSets(n int, rng *rand.Rand) map[string][]float64 {
	uniform := make([]float64, n)
	skewed := make([]float64, n)
	constant := make([]float64, n)
	for i := 0; i < n; i++ {
		uniform[i] = rng.Float64()
		skewed[i] = math.Exp(rng.NormFloat64()) / 60 // mass near 0, long tail
		if skewed[i] > 1 {
			skewed[i] = 1
		}
		constant[i] = 0.375
	}
	return map[string][]float64{"uniform": uniform, "skewed": skewed, "constant": constant}
}

func streamOf(xs []float64) *Stream {
	s := NewStream(0, 1)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestStreamExactModeMatchesSummarizeExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 100, DefaultExactCutoff} {
		for name, xs := range sampleSets(n, rng) {
			s := streamOf(xs)
			if s.Sketched() {
				t.Fatalf("%s n=%d: stream sketched below the cutoff", name, n)
			}
			if got, want := s.Summary(), Summarize(xs); got != want {
				t.Errorf("%s n=%d: streaming summary %+v != batch %+v", name, n, got, want)
			}
		}
	}
}

func TestStreamSketchModeWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 6000 // well past the cutoff
	for name, xs := range sampleSets(n, rng) {
		s := streamOf(xs)
		if !s.Sketched() {
			t.Fatalf("%s: stream still exact at n=%d", name, n)
		}
		got, want := s.Summary(), Summarize(xs)
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Errorf("%s: count/extrema drifted: %+v vs %+v", name, got, want)
		}
		if !closeRel(got.Mean, want.Mean, 1e-9) || !closeAbs(got.StdDev, want.StdDev, 1e-9) {
			t.Errorf("%s: moments drifted: mean %v vs %v, stddev %v vs %v",
				name, got.Mean, want.Mean, got.StdDev, want.StdDev)
		}
		// Quartiles: one bin width from the sketch plus the hinge-vs-rank
		// interpolation gap, which vanishes at this sample size.
		tol := 2 * s.QuantileTolerance()
		for _, q := range []struct{ got, want float64 }{
			{got.Q1, want.Q1}, {got.Median, want.Median}, {got.Q3, want.Q3},
		} {
			if !closeAbs(q.got, q.want, tol) {
				t.Errorf("%s: quartile %v vs %v, outside tolerance %v", name, q.got, q.want, tol)
			}
		}
	}
}

func TestStreamMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{60, 6000} { // exact-mode and sketch-mode aggregates
		for name, xs := range sampleSets(n, rng) {
			// Split into uneven shards and merge in opposite orders.
			shards := [][]float64{xs[:n/5], xs[n/5 : n/2], xs[n/2 : n-n/7], xs[n-n/7:]}
			forward := NewStream(0, 1)
			for _, sh := range shards {
				forward.Merge(streamOf(sh))
			}
			backward := NewStream(0, 1)
			for i := len(shards) - 1; i >= 0; i-- {
				backward.Merge(streamOf(shards[i]))
			}
			if forward.N() != n || backward.N() != n {
				t.Fatalf("%s n=%d: merged counts %d/%d", name, n, forward.N(), backward.N())
			}
			if !reflect.DeepEqual(forward.bins, backward.bins) {
				t.Errorf("%s n=%d: bin counts depend on merge order", name, n)
			}
			if forward.min != backward.min || forward.max != backward.max {
				t.Errorf("%s n=%d: extrema depend on merge order", name, n)
			}
			// Moments are exact sums rounded once, so they must agree bit
			// for bit across merge orders — not merely within tolerance.
			if forward.Mean() != backward.Mean() || forward.StdDev() != backward.StdDev() {
				t.Errorf("%s n=%d: moments depend on merge order: mean %v vs %v, stddev %v vs %v",
					name, n, forward.Mean(), backward.Mean(), forward.StdDev(), backward.StdDev())
			}
			whole2 := streamOf(xs)
			if forward.Mean() != whole2.Mean() || forward.StdDev() != whole2.StdDev() {
				t.Errorf("%s n=%d: sharded moments differ from the sequential fold", name, n)
			}
			// Quantiles depend only on order-independent state (bins, n,
			// extrema in sketch mode; the sorted multiset in exact mode),
			// so they must agree bit for bit.
			for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
				if forward.Quantile(q) != backward.Quantile(q) {
					t.Errorf("%s n=%d: quantile %v depends on merge order: %v vs %v",
						name, n, q, forward.Quantile(q), backward.Quantile(q))
				}
			}
			// And the merged result matches feeding the whole sample into
			// one stream (exact mode: identical summaries).
			whole := streamOf(xs)
			if !forward.Sketched() {
				if forward.Summary() != whole.Summary() {
					t.Errorf("%s n=%d: exact-mode merge diverged from single-stream fold", name, n)
				}
			} else if !reflect.DeepEqual(forward.bins, whole.bins) {
				t.Errorf("%s n=%d: merged bins diverged from single-stream fold", name, n)
			}
		}
	}
}

func TestStreamMergeCrossesExactCutoff(t *testing.T) {
	// Two exact shards whose union exceeds the cutoff must collapse to the
	// sketch on merge, not retain an oversized sample.
	a := NewStreamSized(0, 1, 10, 64)
	b := NewStreamSized(0, 1, 10, 64)
	for i := 0; i < 8; i++ {
		a.Add(float64(i) / 10)
		b.Add(float64(i)/10 + 0.05)
	}
	if a.Sketched() || b.Sketched() {
		t.Fatal("shards sketched below their own cutoff")
	}
	a.Merge(b)
	if !a.Sketched() {
		t.Fatal("merged stream over the cutoff still claims exact mode")
	}
	if a.exact != nil {
		t.Fatal("merged stream retained the raw sample past the cutoff")
	}
	if a.N() != 16 {
		t.Fatalf("merged N = %d, want 16", a.N())
	}
}

func TestStreamMergeEmptyAndIntoEmpty(t *testing.T) {
	empty := NewStream(0, 1)
	full := streamOf([]float64{0.2, 0.4, 0.6})
	full.Merge(NewStream(0, 1))
	if full.N() != 3 {
		t.Fatalf("merging an empty stream changed N to %d", full.N())
	}
	empty.Merge(full)
	if empty.Summary() != full.Summary() {
		t.Fatalf("merge into empty: %+v != %+v", empty.Summary(), full.Summary())
	}
}

func TestStreamConstantSampleQuantilesExact(t *testing.T) {
	// A constant sample past the cutoff occupies one bin; clamping to the
	// observed extrema must recover the constant exactly.
	s := NewStreamSized(0, 1, 4, 32)
	for i := 0; i < 100; i++ {
		s.Add(0.625)
	}
	sum := s.Summary()
	if sum.Min != 0.625 || sum.Q1 != 0.625 || sum.Median != 0.625 || sum.Q3 != 0.625 || sum.Max != 0.625 {
		t.Fatalf("constant sample summary drifted: %+v", sum)
	}
	if sum.StdDev != 0 {
		t.Fatalf("constant sample stddev = %v", sum.StdDev)
	}
}

func TestStreamOutOfDomainValuesClampIntoEdgeBins(t *testing.T) {
	s := NewStreamSized(0, 1, 2, 16)
	for _, x := range []float64{-0.5, -0.1, 0.5, 1.1, 2.0} {
		s.Add(x)
	}
	if s.Min() != -0.5 || s.Max() != 2.0 {
		t.Fatalf("extrema must report true values: min=%v max=%v", s.Min(), s.Max())
	}
	var total int64
	for _, c := range s.bins {
		total += c
	}
	if total != 5 {
		t.Fatalf("bins hold %d samples, want all 5", total)
	}
	// Quantile extremes follow the true extrema, not the clamped domain.
	if s.Quantile(0) != -0.5 || s.Quantile(1) != 2.0 {
		t.Fatalf("quantile extremes %v/%v", s.Quantile(0), s.Quantile(1))
	}
}

func TestStreamSketchQuantileNearRankGuarantee(t *testing.T) {
	// The sketch's guarantee is against the *nearest-rank* empirical
	// quantile: on a zero-inflated two-point distribution (where
	// interpolating definitions like Tukey hinges jump across the gap),
	// every quantile estimate must still land within one bin width of
	// sorted[floor(rank)].
	s := NewStreamSized(0, 1, 16, 64)
	var sorted []float64
	for i := 0; i < 1500; i++ {
		s.Add(0)
		sorted = append(sorted, 0)
	}
	for i := 0; i < 500; i++ {
		s.Add(0.5)
		sorted = append(sorted, 0.5)
	}
	if !s.Sketched() {
		t.Fatal("stream still exact")
	}
	w := s.QuantileTolerance()
	for _, q := range []float64{0.01, 0.25, 0.5, 0.7499, 0.75, 0.76, 0.9, 0.999} {
		rank := int(q * float64(len(sorted)-1))
		want := sorted[rank]
		got := s.Quantile(q)
		if math.Abs(got-want) > w {
			t.Errorf("q=%v: estimate %v is %v away from nearest-rank quantile %v, over one bin width %v",
				q, got, math.Abs(got-want), want, w)
		}
	}
}

func TestStreamSketchQuantileStaysInOccupiedBin(t *testing.T) {
	// A single-sample bin must not overshoot: when the target rank lands
	// on a lone sample in bin [0.5, 0.6), the uncapped interpolation term
	// (rank-cum+0.5)/c would reach 1.4 bins for this rank, pushing the
	// estimate into the next, empty bin; the cap keeps it inside.
	s := NewStreamSized(0, 1, 2, 10)
	for i := 0; i < 50; i++ {
		s.Add(0.05)
	}
	s.Add(0.55)
	for i := 0; i < 49; i++ {
		s.Add(0.95)
	}
	q := 50.9 / 99 // rank 50.9: inside the lone sample's rank slot [50, 51)
	got := s.Quantile(q)
	if got < 0.5 || got > 0.6+1e-9 { // bin top modulo float rounding
		t.Fatalf("quantile %v escaped the occupied bin [0.5, 0.6]", got)
	}
}

func TestStreamQuantileSortedCacheInvalidation(t *testing.T) {
	// The exact-mode quartile path memoizes a sorted view instead of
	// re-sorting per call; Add and Merge must invalidate it, and the raw
	// buffer must keep its insertion order (the codec serializes it).
	s := NewStream(0, 1)
	for _, x := range []float64{0.9, 0.1, 0.5} {
		s.Add(x)
	}
	if got := s.Quantile(0.5); got != 0.5 {
		t.Fatalf("median %v, want 0.5", got)
	}
	if s.exact[0] != 0.9 {
		t.Fatalf("Quantile reordered the raw sample: %v", s.exact)
	}
	s.Add(0.2) // must invalidate the memoized sorted view
	if got, want := s.Quantile(0.5), Median([]float64{0.9, 0.1, 0.5, 0.2}); got != want {
		t.Fatalf("median after Add %v, want %v", got, want)
	}
	o := NewStream(0, 1)
	o.Add(0.3)
	s.Merge(o) // must invalidate too
	if got, want := s.Quantile(0.5), Median([]float64{0.9, 0.1, 0.5, 0.2, 0.3}); got != want {
		t.Fatalf("median after Merge %v, want %v", got, want)
	}
	if got, want := s.Summary(), Summarize(s.exact); got != want {
		t.Fatalf("Summary %+v diverged from Summarize %+v", got, want)
	}
	// Seal pre-builds the view; subsequent reads must not rebuild it (the
	// read-only contract concurrent render paths rely on).
	s.Seal()
	built := &s.sortedExact[0]
	_ = s.Quantile(0.25)
	_ = s.Summary()
	if built != &s.sortedExact[0] {
		t.Fatal("sealed stream rebuilt its sorted view on read")
	}
}

func TestStreamMismatchedMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging incompatible streams did not panic")
		}
	}()
	NewStream(0, 1).Merge(NewStream(0, 2))
}

func closeAbs(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}
