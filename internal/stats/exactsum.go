package stats

import "math"

// ExactSum accumulates float64 values with no rounding error. The running
// total is kept as a Shewchuk expansion — a short slice of non-overlapping
// partials whose exact real sum is the accumulated total — exactly as in
// Python's math.fsum. Value rounds the exact total to the nearest float64
// once, so the reported sum depends only on the multiset of added values,
// never on the order they arrived or how shards were grouped before
// merging. That associativity is what lets a sharded fleet scan merge
// accumulators across processes and machines and still produce output
// byte-identical to a single sequential fold: Welford-style running
// moments are not floating-point associative, exact sums are.
//
// The zero value is an empty sum. Values must be finite; infinities and
// NaN propagate into the partials and poison the total, matching the
// behaviour of a plain float64 sum.
type ExactSum struct {
	partials []float64
}

// Add folds x into the sum exactly.
func (e *ExactSum) Add(x float64) {
	ps := e.partials
	i := 0
	for _, y := range ps {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		// Two-sum: hi + lo == x + y exactly, |lo| <= ulp(hi)/2.
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			ps[i] = lo
			i++
		}
		x = hi
	}
	e.partials = append(ps[:i], x)
}

// Merge folds another exact sum into e. The result represents the exact
// real sum of both totals, so merging is commutative and associative at
// the Value level regardless of internal representation. o must not alias
// e.
func (e *ExactSum) Merge(o *ExactSum) {
	for _, p := range o.partials {
		e.Add(p)
	}
}

// Value returns the exact total rounded once to the nearest float64
// (round-half-to-even), the same correctly-rounded result math.fsum
// produces. An empty sum is 0.
func (e *ExactSum) Value() float64 {
	ps := e.partials
	n := len(ps)
	if n == 0 {
		return 0
	}
	n--
	hi := ps[n]
	var lo float64
	for n > 0 {
		x := hi
		n--
		y := ps[n]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	// Round-half-to-even correction: if the discarded remainder is exactly
	// half an ulp and the next partial pushes it past, adjust (CPython's
	// math.fsum does the same).
	if n > 0 && ((lo < 0 && ps[n-1] < 0) || (lo > 0 && ps[n-1] > 0)) {
		y := lo * 2
		x := hi + y
		if y == x-hi {
			hi = x
		}
	}
	return hi
}

// clone returns a deep copy.
func (e *ExactSum) clone() ExactSum {
	if e.partials == nil {
		return ExactSum{}
	}
	return ExactSum{partials: append([]float64(nil), e.partials...)}
}
