package stats

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// codecStreams returns accumulators in every interesting state: empty,
// exact-mode, boundary (n == cutoff), sketched, out-of-domain extrema,
// and all-zero samples.
func codecStreams() map[string]*Stream {
	rng := rand.New(rand.NewSource(23))
	empty := NewStream(0, 1)
	exact := NewStreamSized(0, 1, 64, 32)
	for i := 0; i < 10; i++ {
		exact.Add(rng.Float64())
	}
	boundary := NewStreamSized(0, 1, 16, 32)
	for i := 0; i < 16; i++ {
		boundary.Add(rng.Float64())
	}
	sketched := NewStreamSized(0, 1, 8, 32)
	for i := 0; i < 500; i++ {
		sketched.Add(rng.Float64())
	}
	outOfDomain := NewStreamSized(0, 1, 8, 16)
	for _, x := range []float64{-3, 0.5, 7.25} {
		outOfDomain.Add(x)
	}
	zeros := NewStreamSized(0, 1, 4, 8)
	for i := 0; i < 30; i++ {
		zeros.Add(0)
	}
	return map[string]*Stream{
		"empty": empty, "exact": exact, "boundary": boundary,
		"sketched": sketched, "out_of_domain": outOfDomain, "zeros": zeros,
	}
}

func mustMarshal(t *testing.T, s *Stream) []byte {
	t.Helper()
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestStreamCodecRoundTripIdentity(t *testing.T) {
	for name, s := range codecStreams() {
		bin := mustMarshal(t, s)
		var fromBin Stream
		if err := fromBin.UnmarshalBinary(bin); err != nil {
			t.Fatalf("%s: binary decode: %v", name, err)
		}
		if !reflect.DeepEqual(s, &fromBin) {
			t.Errorf("%s: binary round trip drifted:\n%+v\nvs\n%+v", name, s, &fromBin)
		}
		js, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: json encode: %v", name, err)
		}
		var fromJSON Stream
		if err := json.Unmarshal(js, &fromJSON); err != nil {
			t.Fatalf("%s: json decode: %v", name, err)
		}
		if !reflect.DeepEqual(s, &fromJSON) {
			t.Errorf("%s: JSON round trip drifted:\n%+v\nvs\n%+v", name, s, &fromJSON)
		}
		// A decoded stream must keep working as an accumulator.
		fromBin.Add(0.25)
		if fromBin.N() != s.N()+1 {
			t.Errorf("%s: decoded stream broken: N=%d", name, fromBin.N())
		}
	}
}

// TestStreamCodecMergeAfterDecode pins the shard contract: merging
// decoded shards is bit-identical to merging the originals — encode is
// transparent to aggregation.
func TestStreamCodecMergeAfterDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, n := range []int{5, 40, 3000} { // exact, exact-crossing, sketched
		a := NewStreamSized(0, 1, 64, 128)
		b := NewStreamSized(0, 1, 64, 128)
		for i := 0; i < n; i++ {
			a.Add(rng.Float64())
			b.Add(rng.Float64() * rng.Float64())
		}
		var da, db Stream
		if err := da.UnmarshalBinary(mustMarshal(t, a)); err != nil {
			t.Fatal(err)
		}
		if err := db.UnmarshalBinary(mustMarshal(t, b)); err != nil {
			t.Fatal(err)
		}
		direct := a.Clone()
		direct.Merge(b)
		da.Merge(&db)
		if !reflect.DeepEqual(direct, &da) {
			t.Errorf("n=%d: merge-after-decode != merge-before-encode:\n%+v\nvs\n%+v", n, direct, &da)
		}
	}
}

func TestStreamCodecRejectsTruncation(t *testing.T) {
	for name, s := range codecStreams() {
		full := mustMarshal(t, s)
		for cut := 0; cut < len(full); cut++ {
			var d Stream
			if err := d.UnmarshalBinary(full[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes decoded without error", name, cut, len(full))
			}
		}
		var d Stream
		if err := d.UnmarshalBinary(append(append([]byte{}, full...), 0)); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
	}
}

func TestStreamCodecRejectsVersionSkewAndForeignBytes(t *testing.T) {
	s := codecStreams()["sketched"]
	full := mustMarshal(t, s)

	skewed := append([]byte{}, full...)
	binary.LittleEndian.PutUint16(skewed[4:], StreamCodecVersion+1)
	var d Stream
	if err := d.UnmarshalBinary(skewed); err == nil {
		t.Error("version-skewed binary payload accepted")
	}

	foreign := append([]byte{}, full...)
	copy(foreign, "nope")
	if err := d.UnmarshalBinary(foreign); err == nil {
		t.Error("payload with foreign magic accepted")
	}

	js, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	jsSkew := bytes.Replace(js, []byte(`{"v":1`), []byte(`{"v":2`), 1)
	if bytes.Equal(js, jsSkew) {
		t.Fatal("version field not found in JSON form")
	}
	if err := json.Unmarshal(jsSkew, &d); err == nil {
		t.Error("version-skewed JSON payload accepted")
	}
}

func TestStreamCodecRejectsCorruptState(t *testing.T) {
	base := func() streamJSON {
		return streamJSON{V: 1, Lo: 0, Hi: 1, Cutoff: 4, N: 2, Min: 0.1, Max: 0.9,
			Sum: []float64{1}, SumSq: []float64{0.82}, Bins: []int64{1, 1}, Exact: []float64{0.1, 0.9}}
	}
	cases := map[string]func(*streamJSON){
		"empty domain":       func(j *streamJSON) { j.Hi = j.Lo },
		"no bins":            func(j *streamJSON) { j.Bins = nil },
		"negative bin":       func(j *streamJSON) { j.Bins = []int64{3, -1} },
		"bin sum mismatch":   func(j *streamJSON) { j.Bins = []int64{1, 2} },
		"negative n":         func(j *streamJSON) { j.N = -1; j.Bins = []int64{0, 0}; j.Exact = nil },
		"exact len mismatch": func(j *streamJSON) { j.Exact = j.Exact[:1] },
		"sketched with raw sample": func(j *streamJSON) {
			j.Sketched = true
		},
		"sketched below cutoff": func(j *streamJSON) { j.Sketched = true; j.Exact = nil },
		"min above max":         func(j *streamJSON) { j.Min = 2 },
		"nonzero empty": func(j *streamJSON) {
			j.N = 0
			j.Bins = []int64{0, 0}
			j.Exact = nil
		},
	}
	for name, corrupt := range cases {
		j := base()
		corrupt(&j)
		raw, err := json.Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		var d Stream
		if err := json.Unmarshal(raw, &d); err == nil {
			t.Errorf("%s: corrupt payload accepted", name)
		}
	}
}

func TestStreamCodecRejectsNonFiniteState(t *testing.T) {
	s := NewStream(0, 1)
	s.Add(math.NaN())
	if _, err := s.MarshalBinary(); err == nil {
		t.Error("binary encode of NaN-poisoned stream succeeded")
	}
	if _, err := json.Marshal(s); err == nil {
		t.Error("JSON encode of NaN-poisoned stream succeeded")
	}
}

// FuzzStreamCodec throws arbitrary bytes at the binary decoder (it must
// never panic, and anything it accepts must re-encode canonically) and
// checks encode/decode identity from a seeded sample shape.
func FuzzStreamCodec(f *testing.F) {
	for _, s := range codecStreams() {
		b, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte("hbst"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Stream
		if err := d.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted payloads must round-trip to the same bytes (the format
		// has no redundant encodings) and produce a usable accumulator.
		re, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted payload is not canonical:\n%x\nvs\n%x", data, re)
		}
		d.Add(0.5)
		if d.N() < 1 {
			t.Fatal("decoded stream lost its count")
		}
		if d.N() > 1 {
			_ = d.Quantile(0.5)
			_ = d.Summary()
		}
	})
}

func TestExactSumMatchesNaiveOnSimpleData(t *testing.T) {
	var e ExactSum
	want := 0.0
	for i := 1; i <= 100; i++ {
		e.Add(float64(i))
		want += float64(i)
	}
	if got := e.Value(); got != want {
		t.Fatalf("exact sum of integers %v != %v", got, want)
	}
}

// TestExactSumOrderAndGroupingIndependent is the associativity property
// the shard-merge guarantee rests on: any permutation, any grouping, same
// bits.
func TestExactSumOrderAndGroupingIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*8) * (float64(i%3) - 1) // wild magnitudes, mixed signs
	}
	var seq ExactSum
	for _, x := range xs {
		seq.Add(x)
	}
	ref := seq.Value()

	perm := rng.Perm(len(xs))
	var shuffled ExactSum
	for _, i := range perm {
		shuffled.Add(xs[i])
	}
	if shuffled.Value() != ref {
		t.Fatalf("sum depends on order: %v vs %v", shuffled.Value(), ref)
	}

	for _, shards := range []int{2, 3, 7} {
		parts := make([]ExactSum, shards)
		for i, x := range xs {
			parts[i%shards].Add(x)
		}
		var merged ExactSum
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if merged.Value() != ref {
			t.Fatalf("%d-way sharded sum %v != sequential %v", shards, merged.Value(), ref)
		}
	}
}

func TestExactSumCancellation(t *testing.T) {
	// 1e16 + 1 - 1e16 loses the 1 in naive float64 addition; the exact
	// sum must keep it.
	var e ExactSum
	e.Add(1e16)
	e.Add(1)
	e.Add(-1e16)
	if got := e.Value(); got != 1 {
		t.Fatalf("cancellation lost precision: %v", got)
	}
}
