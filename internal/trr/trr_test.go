package trr

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
)

func defaultCfg() config.TRR {
	return config.TRR{Enabled: true, RefPeriod: 17, SamplerSlots: 1, NeighborRadius: 1}
}

func newEngine(t *testing.T, cfg config.TRR) *Engine {
	t.Helper()
	e, err := NewEngine(cfg, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(defaultCfg(), 0, 128); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := NewEngine(defaultCfg(), 4, 0); err == nil {
		t.Error("zero rows accepted")
	}
	bad := defaultCfg()
	bad.RefPeriod = 0
	if _, err := NewEngine(bad, 4, 128); err == nil {
		t.Error("zero period accepted for enabled engine")
	}
}

func TestFiresEverySeventeenthRef(t *testing.T) {
	e := newEngine(t, defaultCfg())
	fired := make([]int, 0, 4)
	for ref := 1; ref <= 70; ref++ {
		e.ObserveActivate(2, 50) // a hammered aggressor in bank 2
		if out := e.OnRefresh(); len(out) > 0 {
			fired = append(fired, ref)
		}
	}
	want := []int{17, 34, 51, 68}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestVictimNeighboursRefreshed(t *testing.T) {
	e := newEngine(t, defaultCfg())
	e.ObserveActivate(1, 64)
	var out []VictimRefresh
	for i := 0; i < 17; i++ {
		out = e.OnRefresh()
	}
	if len(out) != 1 || out[0].Bank != 1 {
		t.Fatalf("out = %+v, want one refresh in bank 1", out)
	}
	got := map[int]bool{}
	for _, r := range out[0].Rows {
		got[r] = true
	}
	if !got[63] || !got[65] || len(got) != 2 {
		t.Fatalf("refreshed rows %v, want {63, 65}", out[0].Rows)
	}
}

func TestSamplerKeepsMostRecentRow(t *testing.T) {
	e := newEngine(t, defaultCfg())
	e.ObserveActivate(0, 10)
	e.ObserveActivate(0, 20) // displaces row 10 in the single-slot sampler
	var out []VictimRefresh
	for i := 0; i < 17; i++ {
		out = e.OnRefresh()
	}
	if len(out) != 1 {
		t.Fatalf("want one bank refreshed, got %+v", out)
	}
	for _, r := range out[0].Rows {
		if r == 9 || r == 11 {
			t.Fatalf("victims of displaced aggressor 10 refreshed: %v", out[0].Rows)
		}
	}
}

func TestMultiSlotSamplerTracksSeveralAggressors(t *testing.T) {
	cfg := defaultCfg()
	cfg.SamplerSlots = 2
	e := newEngine(t, cfg)
	e.ObserveActivate(0, 10)
	e.ObserveActivate(0, 20)
	var out []VictimRefresh
	for i := 0; i < 17; i++ {
		out = e.OnRefresh()
	}
	got := map[int]bool{}
	for _, r := range out[0].Rows {
		got[r] = true
	}
	for _, want := range []int{9, 11, 19, 21} {
		if !got[want] {
			t.Fatalf("row %d not refreshed; got %v", want, out[0].Rows)
		}
	}
}

func TestSamplerDeduplicatesRepeatedRow(t *testing.T) {
	cfg := defaultCfg()
	cfg.SamplerSlots = 2
	e := newEngine(t, cfg)
	for i := 0; i < 100; i++ {
		e.ObserveActivate(0, 42) // hammering one row must occupy one slot only
	}
	e.ObserveActivate(0, 77)
	var out []VictimRefresh
	for i := 0; i < 17; i++ {
		out = e.OnRefresh()
	}
	got := map[int]bool{}
	for _, r := range out[0].Rows {
		got[r] = true
	}
	for _, want := range []int{41, 43, 76, 78} {
		if !got[want] {
			t.Fatalf("row %d missing from %v", want, out[0].Rows)
		}
	}
}

func TestSamplerResetAfterFire(t *testing.T) {
	e := newEngine(t, defaultCfg())
	e.ObserveActivate(0, 30)
	for i := 0; i < 17; i++ {
		e.OnRefresh()
	}
	// No activations since the fire: the next fire must be empty.
	var out []VictimRefresh
	for i := 0; i < 17; i++ {
		out = e.OnRefresh()
	}
	if len(out) != 0 {
		t.Fatalf("second fire refreshed %+v despite no activity", out)
	}
}

func TestEdgeRowsClampNeighbours(t *testing.T) {
	e := newEngine(t, defaultCfg())
	e.ObserveActivate(0, 0) // first row: only one neighbour exists
	var out []VictimRefresh
	for i := 0; i < 17; i++ {
		out = e.OnRefresh()
	}
	if len(out) != 1 || len(out[0].Rows) != 1 || out[0].Rows[0] != 1 {
		t.Fatalf("out = %+v, want bank 0 refreshing only row 1", out)
	}
}

func TestDisabledEngineIsInert(t *testing.T) {
	cfg := defaultCfg()
	cfg.Enabled = false
	e := newEngine(t, cfg)
	for i := 0; i < 100; i++ {
		e.ObserveActivate(0, 5)
		if out := e.OnRefresh(); out != nil {
			t.Fatal("disabled engine produced refreshes")
		}
	}
	if e.RefCount() != 0 {
		t.Fatal("disabled engine counted refreshes")
	}
}

func TestBanksAreIndependent(t *testing.T) {
	e := newEngine(t, defaultCfg())
	e.ObserveActivate(0, 10)
	e.ObserveActivate(3, 90)
	var out []VictimRefresh
	for i := 0; i < 17; i++ {
		out = e.OnRefresh()
	}
	if len(out) != 2 {
		t.Fatalf("want refreshes in 2 banks, got %+v", out)
	}
}

func TestDocumentedModeLifecycle(t *testing.T) {
	d := NewDocumentedMode(128, 1)
	if d.Active() {
		t.Fatal("fresh mode must be inactive")
	}
	if got := d.OnRefresh(); got != nil {
		t.Fatal("inactive mode refreshed rows")
	}
	if err := d.Enter([]int{64}); err != nil {
		t.Fatal(err)
	}
	if !d.Active() {
		t.Fatal("mode should be active after Enter")
	}
	rows := d.OnRefresh()
	got := map[int]bool{}
	for _, r := range rows {
		got[r] = true
	}
	if !got[63] || !got[65] {
		t.Fatalf("documented mode refreshed %v, want {63, 65}", rows)
	}
	d.Exit()
	if d.Active() || d.OnRefresh() != nil {
		t.Fatal("mode still active after Exit")
	}
}

func TestDocumentedModeRejectsBadTargets(t *testing.T) {
	d := NewDocumentedMode(128, 1)
	if err := d.Enter([]int{128}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := d.Enter([]int{-1}); err == nil {
		t.Fatal("negative target accepted")
	}
}
