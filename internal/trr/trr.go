// Package trr implements the in-DRAM RowHammer mitigations of the
// simulated HBM2 chip:
//
//   - The proprietary, undisclosed Target Row Refresh mechanism the paper
//     uncovers in Section 5: a per-bank activation sampler whose sampled
//     aggressors get their neighbours preventively refreshed once every
//     RefPeriod (17) periodic REF commands, resembling the "Vendor C"
//     mechanism fingerprinted by U-TRR.
//   - The documented TRR mode from the HBM2 standard (JESD235), which the
//     memory controller enables with a well-defined MRS sequence and which
//     refreshes controller-specified target rows.
//
// The engine is deliberately oblivious to the fault model: it only
// observes the command stream (activations and refreshes) and emits
// "refresh these rows" decisions, exactly like the black box the paper
// probes.
package trr

import (
	"fmt"

	"github.com/safari-repro/hbmrh/internal/config"
)

// VictimRefresh names rows in one bank that the mitigation refreshes in
// response to a REF command.
type VictimRefresh struct {
	Bank int
	Rows []int
}

// Engine is the proprietary mitigation for one pseudo channel. Each bank
// has an independent aggressor sampler; a single REF counter is shared,
// firing every RefPeriod REFs. The zero value is unusable; use NewEngine.
type Engine struct {
	cfg      config.TRR
	rows     int
	refCount int
	samplers []sampler
}

// sampler tracks up to cfg.SamplerSlots candidate aggressor rows in one
// bank. With a single slot it keeps the most recently activated row — the
// behaviour the paper's Section 5 experiment is consistent with.
type sampler struct {
	slots []int
}

func (s *sampler) observe(row int, cap int) {
	for i, r := range s.slots {
		if r == row {
			// Move to front: most recent first.
			copy(s.slots[1:i+1], s.slots[:i])
			s.slots[0] = row
			return
		}
	}
	if len(s.slots) < cap {
		s.slots = append(s.slots, 0)
	}
	copy(s.slots[1:], s.slots)
	s.slots[0] = row
}

func (s *sampler) drain() []int {
	out := s.slots
	s.slots = nil
	return out
}

// NewEngine builds the proprietary TRR engine for one pseudo channel with
// banks banks of rows rows each.
func NewEngine(cfg config.TRR, banks, rows int) (*Engine, error) {
	if banks <= 0 || rows <= 0 {
		return nil, fmt.Errorf("trr: banks=%d rows=%d must be positive", banks, rows)
	}
	if cfg.Enabled && (cfg.RefPeriod <= 0 || cfg.SamplerSlots <= 0) {
		return nil, fmt.Errorf("trr: enabled engine needs positive period and sampler slots")
	}
	return &Engine{
		cfg:      cfg,
		rows:     rows,
		samplers: make([]sampler, banks),
	}, nil
}

// ObserveActivate records an activation of a physical row, feeding the
// per-bank sampler. Disabled engines observe nothing.
func (e *Engine) ObserveActivate(bank, physRow int) {
	if !e.cfg.Enabled {
		return
	}
	e.samplers[bank].observe(physRow, e.cfg.SamplerSlots)
}

// OnRefresh advances the REF counter and returns the victim refreshes the
// mitigation performs on this REF: empty except on every RefPeriod-th REF,
// when each bank's sampled aggressors have their +/-NeighborRadius
// neighbours refreshed and the samplers reset.
func (e *Engine) OnRefresh() []VictimRefresh {
	if !e.cfg.Enabled {
		return nil
	}
	e.refCount++
	if e.refCount%e.cfg.RefPeriod != 0 {
		return nil
	}
	var out []VictimRefresh
	for b := range e.samplers {
		aggressors := e.samplers[b].drain()
		if len(aggressors) == 0 {
			continue
		}
		var rows []int
		for _, a := range aggressors {
			for d := 1; d <= e.cfg.NeighborRadius; d++ {
				if a-d >= 0 {
					rows = append(rows, a-d)
				}
				if a+d < e.rows {
					rows = append(rows, a+d)
				}
			}
		}
		if len(rows) > 0 {
			out = append(out, VictimRefresh{Bank: b, Rows: rows})
		}
	}
	return out
}

// RefCount reports how many REF commands the engine has observed, for
// tests and diagnostics.
func (e *Engine) RefCount() int { return e.refCount }

// DocumentedMode models the HBM2 standard's explicit TRR mode: the memory
// controller enters the mode via mode register writes, supplies target row
// addresses, and subsequent REF commands refresh the targets' neighbours.
// The paper distinguishes this documented mode from the proprietary
// mechanism above; both coexist in the device.
type DocumentedMode struct {
	active  bool
	radius  int
	rows    int
	targets []int
}

// NewDocumentedMode builds the standard TRR mode handler for banks of the
// given row count.
func NewDocumentedMode(rows, radius int) *DocumentedMode {
	return &DocumentedMode{rows: rows, radius: radius}
}

// Enter activates TRR mode with the given target rows, replacing any
// previous target set.
func (d *DocumentedMode) Enter(targets []int) error {
	for _, t := range targets {
		if t < 0 || t >= d.rows {
			return fmt.Errorf("trr: documented-mode target row %d out of range [0, %d)", t, d.rows)
		}
	}
	d.active = true
	d.targets = append(d.targets[:0], targets...)
	return nil
}

// Exit leaves TRR mode.
func (d *DocumentedMode) Exit() {
	d.active = false
	d.targets = d.targets[:0]
}

// Active reports whether the mode is currently engaged.
func (d *DocumentedMode) Active() bool { return d.active }

// OnRefresh returns the neighbour rows refreshed by a REF while the mode
// is active.
func (d *DocumentedMode) OnRefresh() []int {
	if !d.active {
		return nil
	}
	var rows []int
	for _, t := range d.targets {
		for r := 1; r <= d.radius; r++ {
			if t-r >= 0 {
				rows = append(rows, t-r)
			}
			if t+r < d.rows {
				rows = append(rows, t+r)
			}
		}
	}
	return rows
}
