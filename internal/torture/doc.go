// Package torture is the crash-consistency torture harness
// (CrashMonkey/ALICE-style, `make torture`): it enumerates every
// registered failpoint site (internal/failpoint), and for each one runs
// the full fleet → store-ingest → query cycle with that site armed —
// workers killed or their writes torn at exact durability steps, spawns
// refused, ingests failed, renders poisoned, workers stalled — recovers
// through the machinery under test (journal resume, relaunch backoff,
// store quarantine, request retry), and asserts the recovered outputs
// are byte-identical to a fault-free run of the same cycle.
//
// The repo's signature invariant — any interleaving of crashes and
// resumes yields the same bytes — stops being a property sampled by one
// hand-placed kill (-kill-after) and becomes an exhaustively checked
// one: a new durability-critical code path is expected to register a
// failpoint site, and the harness fails if a registered site has no
// torture schedule. DESIGN.md §13 documents the byte-identity argument
// per fault class.
//
// The package is test-only; the harness lives in torture_test.go.
package torture
