package torture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/safari-repro/hbmrh/internal/failpoint"
	"github.com/safari-repro/hbmrh/internal/fleet"
	"github.com/safari-repro/hbmrh/internal/query"
	"github.com/safari-repro/hbmrh/internal/store"
)

// TestMain doubles the test binary as the fleet worker, exactly as
// cmd/characterize and the fleet tests do, so torture runs exercise the
// real subprocess protocol — including -failpoints arming in the worker.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == fleet.WorkerCommand {
		os.Exit(fleet.WorkerMain(os.Args[2:]))
	}
	os.Exit(m.Run())
}

// tortureSeed fixes the fault schedule: ScheduleHit spreads the "which
// occurrence fails" choice across sites deterministically, so every run
// tortures the same instants and a failure reproduces exactly.
const tortureSeed = 0xD15EA5ED

// plan is one site's torture schedule: either a worker-process spec
// (delivered via Spec.WorkerFailpoints to every worker's first launch)
// or an in-process spec (armed in this process, where the coordinator,
// store and query service run), plus the stall gate when the fault is a
// wedged worker.
type plan struct {
	worker string
	inproc string
	stall  time.Duration
}

// schedule maps every registered site to its torture plan. Process-kill
// and torn-write-then-die faults go to worker-process sites; in-process
// sites get error/tear actions and recover by retry or reopen (the
// moral equivalent of a service restart). A site without a schedule
// fails the harness: registering a failpoint obliges you to torture it.
func schedule(t *testing.T, site string) plan {
	t.Helper()
	hit := failpoint.ScheduleHit(tortureSeed, site, 2)
	switch site {
	case "fleet/journal/header-write":
		// Torn header: the journal's first line dies mid-write. The resumed
		// worker must reject the journal (ExitJournal) and the coordinator
		// must restart the shard fresh.
		return plan{worker: site + "=tearkill:7@1"}
	case "fleet/journal/header-sync":
		return plan{worker: site + "=kill@1"}
	case "fleet/journal/record-write":
		// Torn chunk record: the sealed artifact exists but its journal
		// line is half-written. The torn tail must be dropped and the chunk
		// rerun — deterministically, to identical bytes.
		return plan{worker: fmt.Sprintf("%s=tearkill:20@%d", site, hit)}
	case "fleet/journal/record-sync":
		return plan{worker: fmt.Sprintf("%s=kill@%d", site, hit)}
	case "fleet/write/payload":
		// Torn chunk artifact in the temp file: the rename never happens,
		// so the journal never references the torn bytes.
		return plan{worker: fmt.Sprintf("%s=tearkill:100@%d", site, hit)}
	case "fleet/write/sync":
		return plan{worker: fmt.Sprintf("%s=kill@%d", site, hit)}
	case "fleet/write/rename":
		return plan{worker: fmt.Sprintf("%s=kill@%d", site, hit)}
	case "fleet/worker/chunk":
		// A wedged worker: stalls far past the gate; the coordinator must
		// kill and relaunch it, and the resume must not repeat sealed work.
		return plan{worker: fmt.Sprintf("%s=stall:4s@%d", site, hit), stall: time.Second}
	case "fleet/worker/out":
		// Death after the final chunk seal, before the shard output: the
		// relaunch has nothing left to measure, only to reassemble.
		return plan{worker: site + "=kill@1"}
	case "fleet/launcher/start":
		// A refused spawn: the coordinator must treat it as a retryable
		// attempt with backoff, not a fatal run error.
		return plan{inproc: site + "=error@1"}
	case "store/ingest":
		return plan{inproc: site + "=error@1"}
	case "store/merge":
		// Merge failure after a successful persist: the store must keep
		// serving the previous sealed view (degraded), quarantine the
		// accepted object, and the service-restart retry must restore full
		// data from a clean re-ingest.
		return plan{inproc: site + "=error@1"}
	case "store/object/write":
		// Torn object persist: the store "crashes" mid-write, leaving a
		// corrupt objects/*.json; reopening must quarantine it (degraded,
		// not dead) and the re-ingest must restore full data.
		return plan{inproc: site + "=tear:64@1"}
	case "query/render":
		return plan{inproc: site + "=error@1"}
	case "query/ingest":
		return plan{inproc: site + "=error@1"}
	}
	t.Fatalf("failpoint site %q has no torture schedule — every registered site must be tortured (add it to schedule())", site)
	return plan{}
}

// outputs are the cycle's observable bytes: the merged artifact the
// fleet returned, and the query service's summary/CSV/artifact renders
// from the store it ingested into. Byte-identity of all four against the
// fault-free baseline is the pass criterion.
type outputs struct {
	artifact    []byte
	summary     []byte
	csv         []byte
	served      []byte
	health      string
	quarantined int
}

// runCycle runs one fleet → ingest → query cycle under the given plan,
// recovering from injected faults the way an operator (or supervisor)
// would: a failed fleet run is re-run against the same journals, a
// failed ingest restarts the service (reopen store + new server) and
// retries, a failed query is retried.
func runCycle(t *testing.T, dir string, p plan) outputs {
	t.Helper()
	var logMu sync.Mutex
	var fleetLog strings.Builder
	spec := fleet.Spec{
		Study:            fleet.Study{Experiment: "rowpress", Chip: "small", Rows: 1, Hammers: 60000},
		Workers:          2,
		Chunk:            1,
		Dir:              filepath.Join(dir, "fleet"),
		Retries:          3,
		Backoff:          20 * time.Millisecond,
		StallTimeout:     p.stall,
		WorkerFailpoints: p.worker,
		Log: func(format string, a ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			fmt.Fprintf(&fleetLog, format+"\n", a...)
		},
	}
	art, err := fleet.Run(spec)
	if err != nil {
		// An in-process fault escaped into the run; the rerun resumes from
		// the journals and must succeed (sites fire once per schedule).
		t.Logf("fleet run failed (%v); re-running against the same journals", err)
		if art, err = fleet.Run(spec); err != nil {
			t.Fatalf("fleet rerun after injected fault: %v", err)
		}
	}
	// A kill schedule the workers never hit would make recovery pass
	// vacuously — require the coordinator's log to show the casualty.
	if p.worker != "" || p.stall > 0 {
		logMu.Lock()
		lg := fleetLog.String()
		logMu.Unlock()
		if !strings.Contains(lg, "died (failpoint)") && !strings.Contains(lg, "stalled") {
			t.Fatalf("worker failpoint %q never fired; fleet log:\n%s", p.worker, lg)
		}
	}
	out := outputs{}
	if out.artifact, err = art.MarshalIndented(); err != nil {
		t.Fatal(err)
	}

	// Ingest every shard through the query service's POST endpoint, the
	// same bytes `characterize fleet -store` would feed it.
	storeDir := filepath.Join(dir, "store")
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	h := query.New(st).Handler()
	shards, err := filepath.Glob(filepath.Join(dir, "fleet", "shard-*.json"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shard artifacts in %s (err %v)", dir, err)
	}
	sort.Strings(shards)
	for _, path := range shards {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if code, body := post(h, data); code != http.StatusOK {
			// Service "crash": reopen the store from disk — quarantining
			// whatever the fault tore — and retry against the new instance.
			t.Logf("ingest of %s failed (HTTP %d: %s); restarting the service and retrying",
				filepath.Base(path), code, bytes.TrimSpace(body))
			if st, err = store.Open(storeDir); err != nil {
				t.Fatalf("reopening store after injected fault: %v", err)
			}
			h = query.New(st).Handler()
			if code, body := post(h, data); code != http.StatusOK {
				t.Fatalf("ingest retry of %s: HTTP %d: %s", filepath.Base(path), code, body)
			}
		}
	}

	out.summary = getRetry(t, h, "/v1/summary")
	out.csv = getRetry(t, h, "/v1/csv")
	out.served = getRetry(t, h, "/v1/artifact")
	var health struct {
		Status      string `json:"status"`
		Quarantined int    `json:"quarantined"`
	}
	if err := json.Unmarshal(getRetry(t, h, "/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" && health.Status != "degraded" {
		t.Fatalf("healthz status %q", health.Status)
	}
	out.health = health.Status
	out.quarantined = health.Quarantined
	return out
}

func post(h http.Handler, data []byte) (int, []byte) {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(data)))
	return w.Code, w.Body.Bytes()
}

// getRetry GETs path, retrying once on a non-200 (the injected render
// fault serves exactly one failure; the retry must hit clean code).
func getRetry(t *testing.T, h http.Handler, path string) []byte {
	t.Helper()
	for attempt := 0; ; attempt++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code == http.StatusOK {
			return w.Body.Bytes()
		}
		if attempt >= 1 {
			t.Fatalf("GET %s: HTTP %d after retry: %s", path, w.Code, w.Body.Bytes())
		}
		t.Logf("GET %s failed (HTTP %d); retrying", path, w.Code)
	}
}

// TestTortureAllSites is the harness: a fault-free baseline cycle, then
// one faulted cycle per registered failpoint site, each required to
// recover to byte-identical outputs.
func TestTortureAllSites(t *testing.T) {
	sites := failpoint.Names()
	if len(sites) < 10 {
		t.Fatalf("only %d failpoint sites registered (%v); the torture matrix expects >= 10", len(sites), sites)
	}
	t.Logf("torturing %d sites: %s", len(sites), strings.Join(sites, ", "))

	failpoint.Reset()
	base := runCycle(t, t.TempDir(), plan{})
	if base.health != "ok" || base.quarantined != 0 {
		t.Fatalf("fault-free baseline unhealthy: %s (%d quarantined)", base.health, base.quarantined)
	}

	for _, site := range sites {
		p := schedule(t, site)
		t.Run(strings.ReplaceAll(site, "/", "_"), func(t *testing.T) {
			failpoint.Reset()
			if p.inproc != "" {
				if err := failpoint.Arm(p.inproc); err != nil {
					t.Fatal(err)
				}
			}
			t.Cleanup(failpoint.Reset)

			got := runCycle(t, t.TempDir(), p)
			for _, c := range []struct {
				name       string
				want, have []byte
			}{
				{"fleet artifact", base.artifact, got.artifact},
				{"/v1/summary", base.summary, got.summary},
				{"/v1/csv", base.csv, got.csv},
				{"/v1/artifact", base.served, got.served},
			} {
				if !bytes.Equal(c.want, c.have) {
					t.Errorf("%s differs from the fault-free baseline after recovery", c.name)
				}
			}
			// The torn object persist must have gone through quarantine —
			// degraded service, full data after re-ingest.
			if site == "store/object/write" {
				if got.health != "degraded" || got.quarantined == 0 {
					t.Errorf("torn object write never exercised quarantine (health %s, quarantined %d)",
						got.health, got.quarantined)
				}
			}
		})
	}
}
