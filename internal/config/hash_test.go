package config

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestHashEqualForEqualConfigs(t *testing.T) {
	a, b := PaperChip(), PaperChip()
	if a.Hash() != b.Hash() {
		t.Fatal("two PaperChip() configs hash differently")
	}
	// A value copy sharing the preset's slices must hash identically too:
	// the pool keys per-seed copies of one base design by contents.
	c := *a
	if c.Hash() != a.Hash() {
		t.Fatal("value copy hashes differently")
	}
	// And a deep copy with distinct backing arrays.
	d := *a
	d.SubarraySizes = append([]int(nil), a.SubarraySizes...)
	d.Fault.Channels = append([]ChannelProfile(nil), a.Fault.Channels...)
	d.Fault.DistanceWeights = append([]float64(nil), a.Fault.DistanceWeights...)
	if d.Hash() != a.Hash() {
		t.Fatal("deep copy hashes differently")
	}
}

func TestHashSeparatesPresetsAndSeeds(t *testing.T) {
	if PaperChip().Hash() == SmallChip().Hash() {
		t.Fatal("paper and small presets collide")
	}
	a, b := SmallChip(), SmallChip()
	b.Seed++
	if a.Hash() == b.Hash() {
		t.Fatal("adjacent seeds collide")
	}
}

// TestHashCoversEveryField mutates every leaf field (and every slice
// length) of Config through reflection and asserts each mutation changes
// the hash AND flips the hand-written Equal. Adding a Config field
// without folding it into Hash and Equal fails here.
func TestHashCoversEveryField(t *testing.T) {
	cfg := PaperChip()
	pristine := deepCopy(cfg)
	base := cfg.Hash()
	mutateLeaves(t, reflect.ValueOf(cfg).Elem(), "Config", func(path string) {
		if cfg.Hash() == base {
			t.Errorf("mutating %s did not change the hash", path)
		}
		if cfg.Equal(pristine) || pristine.Equal(cfg) {
			t.Errorf("mutating %s is invisible to Equal", path)
		}
	})
	if cfg.Hash() != base || !cfg.Equal(pristine) {
		t.Fatal("mutation walk did not restore the config")
	}
}

func TestEqualForEqualConfigs(t *testing.T) {
	a := PaperChip()
	b := deepCopy(a)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("deep copies must compare equal")
	}
	if a.Equal(SmallChip()) {
		t.Fatal("presets must not compare equal")
	}
}

// mutateLeaves perturbs each settable leaf under v in turn, invoking
// changed while the mutation is in place, then restores the original.
func mutateLeaves(t *testing.T, v reflect.Value, path string, changed func(path string)) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			mutateLeaves(t, v.Field(i), path+"."+v.Type().Field(i).Name, changed)
		}
	case reflect.Slice:
		if v.Len() == 0 {
			t.Fatalf("%s: preset slice is empty, mutation walk cannot cover it", path)
		}
		mutateLeaves(t, v.Index(0), path+"[0]", changed)
		orig := reflect.ValueOf(v.Interface()) // copy of the slice header
		v.Set(v.Slice(0, v.Len()-1))
		changed(path + ".len")
		v.Set(orig)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		changed(path)
		v.SetInt(old)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		old := v.Uint()
		v.SetUint(old + 1)
		changed(path)
		v.SetUint(old)
	case reflect.Float64, reflect.Float32:
		old := v.Float()
		v.SetFloat(old/2 + 3)
		changed(path)
		v.SetFloat(old)
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		changed(path)
		v.SetBool(old)
	default:
		t.Fatalf("%s: unhandled kind %s in mutation walk — extend mutateLeaves", path, v.Kind())
	}
}

// TestHashFuzzFieldMutations applies random multi-field mutations and
// checks the invariant both ways: equal contents hash equally, and any
// mutated config hashes differently from the base.
func TestHashFuzzFieldMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD52023))
	base := PaperChip()
	baseHash := base.Hash()
	for trial := 0; trial < 300; trial++ {
		cfg := deepCopy(base)
		if cfg.Hash() != baseHash {
			t.Fatal("deep copy hashes differently before mutation")
		}
		mutated := false
		for k := 0; k <= rng.Intn(3); k++ {
			mutated = mutateRandomLeaf(rng, reflect.ValueOf(cfg).Elem()) || mutated
		}
		if !mutated {
			continue
		}
		if reflect.DeepEqual(cfg, base) {
			continue // mutation landed back on the original value
		}
		if cfg.Hash() == baseHash {
			t.Fatalf("trial %d: mutated config %+v collides with base", trial, cfg)
		}
		if cfg.Equal(base) {
			t.Fatalf("trial %d: mutated config %+v compares Equal to base", trial, cfg)
		}
	}
}

func deepCopy(c *Config) *Config {
	d := *c
	d.SubarraySizes = append([]int(nil), c.SubarraySizes...)
	d.Fault.Channels = append([]ChannelProfile(nil), c.Fault.Channels...)
	d.Fault.DistanceWeights = append([]float64(nil), c.Fault.DistanceWeights...)
	return &d
}

// mutateRandomLeaf perturbs one randomly chosen leaf; reports false when
// it landed on a non-mutable node and did nothing.
func mutateRandomLeaf(rng *rand.Rand, v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Struct:
		return mutateRandomLeaf(rng, v.Field(rng.Intn(v.NumField())))
	case reflect.Slice:
		if v.Len() == 0 {
			return false
		}
		return mutateRandomLeaf(rng, v.Index(rng.Intn(v.Len())))
	case reflect.Int, reflect.Int64:
		v.SetInt(v.Int() + int64(1+rng.Intn(5)))
		return true
	case reflect.Uint64:
		v.SetUint(v.Uint() + uint64(1+rng.Intn(5)))
		return true
	case reflect.Float64:
		v.SetFloat(v.Float() + 0.125 + rng.Float64())
		return true
	case reflect.Bool:
		v.SetBool(!v.Bool())
		return true
	default:
		return false
	}
}

// The pool-key benchmark pair: the structural hash vs the %+v fingerprint
// it replaced. Get/Put pay this per lease, so it sits on the engine's hot
// path for fine-sharded runs.
func BenchmarkConfigHash(b *testing.B) {
	cfg := PaperChip()
	var sink uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = cfg.Hash()
	}
	_ = sink
}

func BenchmarkConfigSprintfFingerprint(b *testing.B) {
	cfg := PaperChip()
	var sink string
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = fmt.Sprintf("%+v", *cfg)
	}
	_ = sink
}
