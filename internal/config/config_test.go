package config

import (
	"math"
	"testing"
)

func TestPaperChipValidates(t *testing.T) {
	c := PaperChip()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Geometry.TotalBytes(); got != 4<<30 {
		t.Fatalf("paper chip capacity = %d, want 4 GiB", got)
	}
	if c.Layout().Count() != 20 {
		t.Fatalf("paper chip has %d subarrays, want 20", c.Layout().Count())
	}
	// Middle 768-row region must span the paper's 6.5K-9.5K row window.
	l := c.Layout()
	sa, _ := l.Locate(7000)
	if l.Size(sa) != 768 {
		t.Fatalf("row 7000 is in a %d-row subarray, want 768", l.Size(sa))
	}
	// The last subarray holds the final 832 rows.
	last := l.Count() - 1
	if l.Start(last) != 16384-832 {
		t.Fatalf("last subarray starts at %d, want 15552", l.Start(last))
	}
}

func TestSmallChipValidates(t *testing.T) {
	c := SmallChip()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Geometry.Rows != 1024 {
		t.Fatalf("small chip rows = %d, want 1024", c.Geometry.Rows)
	}
}

func TestValidateCatchesMismatches(t *testing.T) {
	mutations := map[string]func(*Config){
		"subarray sum":      func(c *Config) { c.SubarraySizes = []int{100} },
		"zero subarray":     func(c *Config) { c.SubarraySizes[0] = 0 },
		"channel count":     func(c *Config) { c.Fault.Channels = c.Fault.Channels[:3] },
		"bad median":        func(c *Config) { c.Fault.Channels[0].MedianHC = 0 },
		"bad sigma":         func(c *Config) { c.Fault.Channels[2].Sigma = -1 },
		"bad true frac":     func(c *Config) { c.Fault.Channels[1].TrueCellFrac = 1.5 },
		"no weights":        func(c *Config) { c.Fault.DistanceWeights = nil },
		"zero tck":          func(c *Config) { c.Timing.TCK = 0 },
		"trr period":        func(c *Config) { c.TRR.RefPeriod = 0 },
		"trr sampler":       func(c *Config) { c.TRR.SamplerSlots = 0 },
		"ecc word":          func(c *Config) { c.ECC.WordBits = 0 },
		"ecc not dividing":  func(c *Config) { c.ECC.WordBits = 7 },
		"unknown mapping":   func(c *Config) { c.Mapping = 0 },
		"negative geometry": func(c *Config) { c.Geometry.Rows = -1 },
	}
	for name, mutate := range mutations {
		c := PaperChip()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted broken config", name)
		}
	}
}

func TestChannelProfilesPairByDie(t *testing.T) {
	// Channels sharing a die must have near-identical vulnerability,
	// and channel 7 must be the most vulnerable (lowest median threshold).
	ps := paperChannelProfiles()
	for die := 0; die < 4; die++ {
		a, b := ps[2*die], ps[2*die+1]
		rel := math.Abs(a.MedianHC-b.MedianHC) / a.MedianHC
		if rel > 0.08 {
			t.Errorf("die %d channels differ by %.1f%% in median threshold, want paired", die, rel*100)
		}
	}
	// Effective RowHammer vulnerability combines the median, the shape
	// parameter and the flippable-cell fraction: approximate it as the
	// expected BER at the paper's 256K hammer count and require channel 7
	// to be the most vulnerable and channel 0 the least, as in Figs. 3-4.
	vuln := func(p ChannelProfile) float64 {
		f := math.Max(p.TrueCellFrac, 1-p.TrueCellFrac)
		a := (math.Log(256e3) - math.Log(p.MedianHC)) / p.Sigma
		return f * 0.5 * (1 + math.Erf(a/math.Sqrt2))
	}
	// (Channel 0's exact rank among the weak channels additionally
	// depends on the per-row pattern selection, which this closed form
	// does not capture; the full ordering is asserted empirically in the
	// experiments package.)
	for ch := 0; ch < 7; ch++ {
		if vuln(ps[ch]) >= vuln(ps[7]) {
			t.Errorf("channel 7 must be the most vulnerable; ch%d index %v >= %v",
				ch, vuln(ps[ch]), vuln(ps[7]))
		}
	}
	// Channel 0 is anti-cell rich (RowStripe0 most effective), channel 7
	// true-cell rich (RowStripe1 most effective), per Figs. 3-4.
	if ps[0].TrueCellFrac >= 0.5 {
		t.Error("channel 0 should be anti-cell rich")
	}
	if ps[7].TrueCellFrac <= 0.5 {
		t.Error("channel 7 should be true-cell rich")
	}
}

func TestTimingDerivedQuantities(t *testing.T) {
	tm := defaultTiming()
	if got := tm.Cycles(1666); got != 1 {
		t.Errorf("Cycles(1666) = %d, want 1", got)
	}
	if got := tm.Cycles(1667); got != 2 {
		t.Errorf("Cycles(1667) = %d, want 2", got)
	}
	// ~8205 REFs per 32 ms window at 3.9 us tREFI.
	refs := tm.RefsPerWindow()
	if refs < 8000 || refs > 8400 {
		t.Errorf("RefsPerWindow() = %d, want ~8205", refs)
	}
}

func TestRetentionTemperatureScale(t *testing.T) {
	r := defaultRetention()
	if got := r.Scale(85); math.Abs(got-1) > 1e-12 {
		t.Errorf("Scale(85) = %v, want 1", got)
	}
	if got := r.Scale(95); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Scale(95) = %v, want 0.5 (halves per +10C)", got)
	}
	if got := r.Scale(75); math.Abs(got-2) > 1e-12 {
		t.Errorf("Scale(75) = %v, want 2", got)
	}
}

func TestDoubleSidedHammerUnitConvention(t *testing.T) {
	// One double-sided hammer = two distance-1 activations = 1.0 units.
	f := defaultFault(paperChannelProfiles())
	if got := 2 * f.DistanceWeights[0]; math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("double-sided hammer contributes %v units, want 1.0", got)
	}
	if f.BlastRadius() != 3 {
		t.Fatalf("blast radius = %d, want 3", f.BlastRadius())
	}
}

func TestMappingSchemeStrings(t *testing.T) {
	cases := map[MappingScheme]string{
		MappingDirect:     "direct",
		MappingXorSwizzle: "xor-swizzle",
		MappingMirrored:   "mirrored",
		MappingScheme(42): "MappingScheme(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestTRRDefaultsMatchSection5(t *testing.T) {
	trr := defaultTRR()
	if !trr.Enabled {
		t.Error("paper chip implements TRR; default must be enabled")
	}
	if trr.RefPeriod != 17 {
		t.Errorf("TRR period = %d, want 17 (one victim refresh every 17 REFs)", trr.RefPeriod)
	}
	if trr.SamplerSlots != 1 {
		t.Errorf("sampler slots = %d, want 1 (Vendor C style)", trr.SamplerSlots)
	}
}
