package config

import "math"

// Hash fingerprints the configuration by value: two configs with equal
// contents hash equally regardless of pointer identity, and any field
// difference changes the hash. The engine's warmed-device pool keys on it
// (hot on Get/Put), replacing the reflection-and-formatting cost of a
// fmt.Sprintf("%+v") fingerprint with one FNV-1a pass over the fields.
//
// Every field of Config and its nested structs must be folded in here;
// TestHashCoversEveryField walks the struct reflectively and fails when a
// newly added field is not covered. Slices are length-prefixed so adjacent
// fields cannot alias across layouts.
func (c *Config) Hash() uint64 {
	h := uint64(fnvOffset64)
	h = hashU64(h, c.Seed)

	h = hashInt(h, c.Geometry.Channels)
	h = hashInt(h, c.Geometry.PseudoChannels)
	h = hashInt(h, c.Geometry.Banks)
	h = hashInt(h, c.Geometry.Rows)
	h = hashInt(h, c.Geometry.Columns)
	h = hashInt(h, c.Geometry.ColumnBytes)

	h = hashInt(h, len(c.SubarraySizes))
	for _, s := range c.SubarraySizes {
		h = hashInt(h, s)
	}

	h = hashI64(h, c.Timing.TCK)
	h = hashI64(h, c.Timing.TRCD)
	h = hashI64(h, c.Timing.TRAS)
	h = hashI64(h, c.Timing.TRP)
	h = hashI64(h, c.Timing.TRC)
	h = hashI64(h, c.Timing.TRFC)
	h = hashI64(h, c.Timing.TREFI)
	h = hashI64(h, c.Timing.TWindow)

	h = hashInt(h, len(c.Fault.Channels))
	for _, p := range c.Fault.Channels {
		h = hashF64(h, p.MedianHC)
		h = hashF64(h, p.Sigma)
		h = hashF64(h, p.TrueCellFrac)
	}
	h = hashF64(h, c.Fault.ZFloor)
	h = hashF64(h, c.Fault.HCFloor)
	h = hashF64(h, c.Fault.RowJitterSigma)
	h = hashF64(h, c.Fault.EdgeFactor)
	h = hashF64(h, c.Fault.MidFactor)
	h = hashF64(h, c.Fault.LastSubarrayFactor)
	h = hashF64(h, c.Fault.BankJitterSigma)
	h = hashF64(h, c.Fault.CouplingBoth)
	h = hashF64(h, c.Fault.CouplingOne)
	h = hashF64(h, c.Fault.CouplingNone)
	h = hashF64(h, c.Fault.IntraRowAlternating)
	h = hashInt(h, len(c.Fault.DistanceWeights))
	for _, w := range c.Fault.DistanceWeights {
		h = hashF64(h, w)
	}
	h = hashF64(h, c.Fault.RowPressGain)
	h = hashF64(h, c.Fault.RowPressMaxFactor)
	h = hashF64(h, c.Fault.TempSlopePerC)
	h = hashF64(h, c.Fault.VerticalCoupling)

	h = hashF64(h, c.Ret.MedianSec)
	h = hashF64(h, c.Ret.Sigma)
	h = hashF64(h, c.Ret.FloorSec)
	h = hashF64(h, c.Ret.RefTempC)
	h = hashF64(h, c.Ret.HalvingPerC)

	h = hashBool(h, c.TRR.Enabled)
	h = hashInt(h, c.TRR.RefPeriod)
	h = hashInt(h, c.TRR.SamplerSlots)
	h = hashInt(h, c.TRR.NeighborRadius)

	h = hashInt(h, c.ECC.WordBits)
	h = hashInt(h, int(c.Mapping))
	return h
}

// Equal reports deep equality of configuration contents without
// reflection — it sits on the device pool's Get/Put hot path as the
// guard against 64-bit key collisions. Like Hash, it must cover every
// field; TestHashCoversEveryField asserts each leaf mutation flips both
// the hash and Equal.
func (c *Config) Equal(o *Config) bool {
	if c.Seed != o.Seed ||
		c.Geometry != o.Geometry ||
		c.Timing != o.Timing ||
		c.Ret != o.Ret ||
		c.TRR != o.TRR ||
		c.ECC != o.ECC ||
		c.Mapping != o.Mapping {
		return false
	}
	if len(c.SubarraySizes) != len(o.SubarraySizes) {
		return false
	}
	for i, s := range c.SubarraySizes {
		if s != o.SubarraySizes[i] {
			return false
		}
	}
	f, g := &c.Fault, &o.Fault
	if f.ZFloor != g.ZFloor || f.HCFloor != g.HCFloor ||
		f.RowJitterSigma != g.RowJitterSigma ||
		f.EdgeFactor != g.EdgeFactor || f.MidFactor != g.MidFactor ||
		f.LastSubarrayFactor != g.LastSubarrayFactor ||
		f.BankJitterSigma != g.BankJitterSigma ||
		f.CouplingBoth != g.CouplingBoth || f.CouplingOne != g.CouplingOne ||
		f.CouplingNone != g.CouplingNone ||
		f.IntraRowAlternating != g.IntraRowAlternating ||
		f.RowPressGain != g.RowPressGain ||
		f.RowPressMaxFactor != g.RowPressMaxFactor ||
		f.TempSlopePerC != g.TempSlopePerC ||
		f.VerticalCoupling != g.VerticalCoupling {
		return false
	}
	if len(f.Channels) != len(g.Channels) {
		return false
	}
	for i, p := range f.Channels {
		if p != g.Channels[i] {
			return false
		}
	}
	if len(f.DistanceWeights) != len(g.DistanceWeights) {
		return false
	}
	for i, w := range f.DistanceWeights {
		if w != g.DistanceWeights[i] {
			return false
		}
	}
	return true
}

// FNV-1a, 64-bit.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xFF)) * fnvPrime64
		v >>= 8
	}
	return h
}

func hashInt(h uint64, v int) uint64 { return hashU64(h, uint64(int64(v))) }

func hashI64(h uint64, v int64) uint64 { return hashU64(h, uint64(v)) }

func hashF64(h uint64, v float64) uint64 { return hashU64(h, math.Float64bits(v)) }

func hashBool(h uint64, v bool) uint64 {
	if v {
		return hashU64(h, 1)
	}
	return hashU64(h, 0)
}
