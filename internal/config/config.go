// Package config defines every parameter of the simulated HBM2 device:
// geometry, command timings, the RowHammer/retention fault model, the
// in-DRAM TRR mitigation, and on-die ECC. Two presets are provided:
//
//   - PaperChip: the chip characterized in the paper (4 GiB stack,
//     8 channels x 2 pseudo channels x 16 banks x 16384 rows x 32 columns),
//     with the fault model calibrated to the paper's headline numbers.
//   - SmallChip: a scaled-down geometry with the same fault-model shape,
//     used by tests and examples that need sub-second runs.
package config

import (
	"fmt"
	"math"

	"github.com/safari-repro/hbmrh/internal/addr"
)

// Config aggregates all device and model parameters. The zero value is not
// usable; start from PaperChip or SmallChip and override fields as needed.
type Config struct {
	// Seed selects the simulated chip instance. All per-cell quantities
	// are pure functions of (Seed, coordinates); different seeds model
	// different physical chips of the same design.
	Seed uint64

	Geometry addr.Geometry

	// SubarraySizes lists subarray row counts from the start of each bank.
	// Their sum must equal Geometry.Rows. The paper's chip has sixteen
	// 832-row and four 768-row subarrays.
	SubarraySizes []int

	Timing  Timing
	Fault   Fault
	Ret     Retention
	TRR     TRR
	ECC     ECC
	Mapping MappingScheme
}

// Timing holds command timing parameters in picoseconds, mirroring the
// JESD235 HBM2 timings the DRAM Bender infrastructure enforces.
type Timing struct {
	TCK     int64 // command clock period (1.66 ns = 600 MHz interface)
	TRCD    int64 // ACT to column command
	TRAS    int64 // ACT to PRE on the same bank
	TRP     int64 // PRE to ACT on the same bank
	TRC     int64 // ACT to ACT on the same bank
	TRFC    int64 // REF to next valid command
	TREFI   int64 // average interval between REF commands
	TWindow int64 // refresh window: every row refreshed once per window (32 ms)
}

// Cycles converts a duration in picoseconds to whole command-clock cycles,
// rounding up.
func (t Timing) Cycles(ps int64) int64 {
	return (ps + t.TCK - 1) / t.TCK
}

// RefsPerWindow returns how many REF commands fall inside one refresh
// window at the nominal tREFI rate.
func (t Timing) RefsPerWindow() int {
	return int(t.TWindow / t.TREFI)
}

// ChannelProfile captures per-channel process variation. Channels sharing
// a die (two per die, per the paper's hypothesis) get near-identical
// profiles, producing the paired grouping visible in Fig. 3.
type ChannelProfile struct {
	// MedianHC is the lognormal median of per-cell RowHammer thresholds,
	// in double-sided hammer units (one hammer = one activation of each
	// of the two aggressor rows).
	MedianHC float64
	// Sigma is the lognormal shape parameter for this channel.
	Sigma float64
	// TrueCellFrac is the fraction of true cells (charged when storing 1).
	// The remainder are anti cells (charged when storing 0). This fraction
	// controls which data patterns are most effective per channel.
	TrueCellFrac float64
}

// Fault parameterizes the RowHammer disturbance model.
type Fault struct {
	// Channels holds one profile per channel; its length must equal
	// Geometry.Channels.
	Channels []ChannelProfile

	// ZFloor truncates the lognormal's normal variate from below,
	// bounding how extreme the weakest cells can be.
	ZFloor float64
	// HCFloor is an absolute lower bound on any cell's threshold,
	// in hammers. The paper's global minimum HCfirst is 14531.
	HCFloor float64

	// RowJitterSigma adds per-row lognormal jitter so rows at the same
	// subarray offset still differ (visible as box heights in Figs. 3-4).
	RowJitterSigma float64

	// EdgeFactor and MidFactor set the threshold multiplier at a
	// subarray's edge rows and centre rows; intermediate offsets are
	// cosine-interpolated. Edge > Mid makes BER peak mid-subarray,
	// reproducing Fig. 5's periodic pattern.
	EdgeFactor float64
	MidFactor  float64

	// LastSubarrayFactor multiplies thresholds in the bank's final
	// subarray, reproducing the weak last-832-rows observation.
	LastSubarrayFactor float64

	// BankJitterSigma adds small per-bank lognormal jitter (Fig. 6
	// scatter within a channel).
	BankJitterSigma float64

	// CouplingBoth, CouplingOne and CouplingNone multiply a cell's
	// threshold depending on how many of its two physical neighbour rows
	// currently store the opposite bit value. Opposite-data aggressors
	// couple most strongly (Table 1's stripe patterns).
	CouplingBoth float64
	CouplingOne  float64
	CouplingNone float64

	// IntraRowAlternating multiplies the threshold when a victim cell's
	// same-row neighbours store the opposite bit (checkered patterns),
	// which the tested chip tolerates slightly better than stripes.
	IntraRowAlternating float64

	// DistanceWeights[d-1] is the disturbance contributed to a victim by
	// one activation of an aggressor at physical distance d. Distance-1
	// weights are 0.5 so that one double-sided hammer (two activations)
	// contributes exactly 1.0 disturbance units.
	DistanceWeights []float64

	// RowPressGain amplifies an activation's disturbance when the
	// aggressor row is held open beyond tRAS, the read-disturb effect
	// RowPress (ISCA'23) characterizes and the paper lists as future
	// work: one activation held open for tRAS+x contributes
	// (1 + RowPressGain*x/tRAS) times its base disturbance, capped at
	// RowPressMaxFactor. Hammering at minimum timing (hold = tRAS) is
	// unaffected, so the Section 4 calibration is independent of these.
	RowPressGain      float64
	RowPressMaxFactor float64

	// TempSlopePerC scales RowHammer thresholds with temperature:
	// threshold multiplier = 1 + TempSlopePerC*(T - 85C). A negative
	// slope makes hotter chips more vulnerable. The paper holds 85C for
	// all experiments and leaves temperature sensitivity to future work.
	TempSlopePerC float64

	// VerticalCoupling is the fraction of an activation's distance-1
	// disturbance that leaks to the same physical row of the vertically
	// adjacent channels (the channels of the die above and below, i.e.
	// channel +/- 2). The paper poses cross-channel interference as an
	// open question; the tested chip shows no such effect, so the
	// default is 0. Setting it nonzero exercises the future-work hook.
	VerticalCoupling float64
}

// BlastRadius returns the maximum aggressor-victim distance with nonzero
// disturbance weight.
func (f Fault) BlastRadius() int { return len(f.DistanceWeights) }

// Retention parameterizes the data-retention fault model used by the
// U-TRR methodology as a side channel.
type Retention struct {
	// MedianSec and Sigma define the per-cell lognormal retention time at
	// the reference temperature.
	MedianSec float64
	Sigma     float64
	// FloorSec bounds retention from below: the standard guarantees no
	// retention failures within the 32 ms refresh window, so the floor
	// sits comfortably above it.
	FloorSec float64
	// RefTempC is the temperature at which MedianSec holds (85 C in all
	// paper experiments: the maximum operating temperature at nominal
	// refresh).
	RefTempC float64
	// HalvingPerC is the temperature increase that halves retention time
	// (Arrhenius-like behaviour, ~10 C per halving in DRAM literature).
	HalvingPerC float64
}

// Scale returns the multiplicative retention factor at temperature tempC.
func (r Retention) Scale(tempC float64) float64 {
	return math.Exp2((r.RefTempC - tempC) / r.HalvingPerC)
}

// TRR parameterizes the proprietary in-DRAM Target Row Refresh mechanism
// the paper uncovers in Section 5.
type TRR struct {
	// Enabled turns the undisclosed mitigation on. The paper's chip has
	// it always on; characterization sidesteps it by never issuing REF.
	Enabled bool
	// RefPeriod is the number of REF commands between victim refreshes.
	// The paper measures one victim refresh every 17 REFs.
	RefPeriod int
	// SamplerSlots is the number of candidate aggressor rows the per-bank
	// sampler tracks. The uncovered mechanism behaves like a single-slot
	// sampler (resembling U-TRR's "Vendor C").
	SamplerSlots int
	// NeighborRadius is how many rows on each side of the sampled
	// aggressor get preventively refreshed.
	NeighborRadius int
}

// ECC parameterizes the on-die single-error-correcting code. The paper
// disables it through a mode register bit before all experiments.
type ECC struct {
	// WordBits is the correction granularity: one flipped bit per
	// WordBits-sized word is corrected when ECC is enabled.
	WordBits int
}

// MappingScheme selects the logical-to-physical row address mapping
// implemented inside the device (Section 3.1 reverse-engineers it).
type MappingScheme int

// Supported row mapping schemes.
const (
	// MappingDirect is the identity mapping.
	MappingDirect MappingScheme = iota + 1
	// MappingXorSwizzle swaps adjacent odd/even pairs within 4-row groups,
	// the scheme observed in the tested chip's address space.
	MappingXorSwizzle
	// MappingMirrored mirrors the low three row bits in odd 8-row groups,
	// as seen in some DDR4 parts.
	MappingMirrored
)

// String implements fmt.Stringer for diagnostics.
func (m MappingScheme) String() string {
	switch m {
	case MappingDirect:
		return "direct"
	case MappingXorSwizzle:
		return "xor-swizzle"
	case MappingMirrored:
		return "mirrored"
	default:
		return fmt.Sprintf("MappingScheme(%d)", int(m))
	}
}

// Validate checks internal consistency of the whole configuration.
func (c *Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	sum := 0
	for i, s := range c.SubarraySizes {
		if s <= 0 {
			return fmt.Errorf("config: subarray %d has non-positive size %d", i, s)
		}
		sum += s
	}
	if sum != c.Geometry.Rows {
		return fmt.Errorf("config: subarray sizes sum to %d, want %d rows", sum, c.Geometry.Rows)
	}
	if len(c.Fault.Channels) != c.Geometry.Channels {
		return fmt.Errorf("config: %d channel profiles for %d channels",
			len(c.Fault.Channels), c.Geometry.Channels)
	}
	for i, p := range c.Fault.Channels {
		if p.MedianHC <= 0 || p.Sigma <= 0 {
			return fmt.Errorf("config: channel %d profile must have positive median and sigma", i)
		}
		if p.TrueCellFrac < 0 || p.TrueCellFrac > 1 {
			return fmt.Errorf("config: channel %d true-cell fraction %v outside [0,1]", i, p.TrueCellFrac)
		}
	}
	if len(c.Fault.DistanceWeights) == 0 {
		return fmt.Errorf("config: at least one distance weight required")
	}
	if c.Timing.TCK <= 0 {
		return fmt.Errorf("config: TCK must be positive")
	}
	if c.TRR.Enabled && c.TRR.RefPeriod <= 0 {
		return fmt.Errorf("config: TRR enabled with non-positive period")
	}
	if c.TRR.Enabled && c.TRR.SamplerSlots <= 0 {
		return fmt.Errorf("config: TRR enabled with non-positive sampler size")
	}
	if c.ECC.WordBits <= 0 || c.Geometry.RowBits()%c.ECC.WordBits != 0 {
		return fmt.Errorf("config: ECC word of %d bits must divide row size %d",
			c.ECC.WordBits, c.Geometry.RowBits())
	}
	switch c.Mapping {
	case MappingDirect, MappingXorSwizzle, MappingMirrored:
	default:
		return fmt.Errorf("config: unknown mapping scheme %v", c.Mapping)
	}
	return nil
}

// Layout materializes the subarray layout. Call only on validated configs.
func (c *Config) Layout() *addr.SubarrayLayout {
	l, err := addr.NewSubarrayLayout(c.SubarraySizes)
	if err != nil {
		panic(fmt.Sprintf("config: invalid subarray layout: %v", err))
	}
	return l
}

// paperChannelProfiles is the calibrated per-channel table. Channels pair
// up per die; channels 6 and 7 sit on the most vulnerable die. Medians and
// sigmas are solved from three paper targets per channel: BER at 256K
// hammers, mean HCfirst, and the global minimum HCfirst (see DESIGN.md §4).
func paperChannelProfiles() []ChannelProfile {
	return []ChannelProfile{
		{MedianHC: 2.52e6, Sigma: 1.088, TrueCellFrac: 0.22}, // ch0: least vulnerable, anti-rich
		{MedianHC: 2.44e6, Sigma: 1.070, TrueCellFrac: 0.24}, // ch1: die 0 twin
		{MedianHC: 1.83e6, Sigma: 0.960, TrueCellFrac: 0.38}, // ch2
		{MedianHC: 1.79e6, Sigma: 0.955, TrueCellFrac: 0.40}, // ch3: die 1 twin
		{MedianHC: 1.73e6, Sigma: 0.975, TrueCellFrac: 0.55}, // ch4
		{MedianHC: 1.70e6, Sigma: 0.982, TrueCellFrac: 0.57}, // ch5: die 2 twin
		{MedianHC: 1.88e6, Sigma: 0.985, TrueCellFrac: 0.80}, // ch6
		{MedianHC: 1.87e6, Sigma: 1.006, TrueCellFrac: 0.85}, // ch7: most vulnerable, true-rich
	}
}

// paperSubarraySizes returns the reverse-engineered bank layout: eight
// 832-row subarrays, four 768-row subarrays (the middle 6.5K-9.5K region),
// then eight more 832-row subarrays; the last 832 rows form the weak SA Z.
func paperSubarraySizes() []int {
	sizes := make([]int, 0, 20)
	for i := 0; i < 8; i++ {
		sizes = append(sizes, 832)
	}
	for i := 0; i < 4; i++ {
		sizes = append(sizes, 768)
	}
	for i := 0; i < 8; i++ {
		sizes = append(sizes, 832)
	}
	return sizes
}

func defaultFault(channels []ChannelProfile) Fault {
	return Fault{
		Channels:            channels,
		ZFloor:              -5.2,
		HCFloor:             14500,
		RowJitterSigma:      0.07,
		EdgeFactor:          1.10,
		MidFactor:           0.90,
		LastSubarrayFactor:  1.46,
		BankJitterSigma:     0.05,
		CouplingBoth:        1.00,
		CouplingOne:         1.40,
		CouplingNone:        2.30,
		IntraRowAlternating: 1.05,
		// One activation at distance 1 contributes 0.5 units, so a
		// double-sided hammer (both neighbours once) contributes 1.0.
		// The steep decay with distance matches DDR4 characterization
		// and gives single-sided adjacency probing a provable window
		// where distance-1 victims flip but distance-2 rows cannot.
		DistanceWeights:   []float64{0.5, 0.03, 0.01},
		RowPressGain:      0.8,
		RowPressMaxFactor: 32,
		TempSlopePerC:     -0.004,
		VerticalCoupling:  0,
	}
}

func defaultTiming() Timing {
	const ns = 1000 // picoseconds
	return Timing{
		TCK:     1666, // 1.66 ns: 600 MHz HBM2 interface clock
		TRCD:    14 * ns,
		TRAS:    33 * ns,
		TRP:     14 * ns,
		TRC:     47 * ns,
		TRFC:    350 * ns,
		TREFI:   3900 * ns,             // 3.9 us
		TWindow: 32 * 1000 * 1000 * ns, // 32 ms refresh window
	}
}

func defaultRetention() Retention {
	return Retention{
		MedianSec:   30,
		Sigma:       1.3,
		FloorSec:    0.128,
		RefTempC:    85,
		HalvingPerC: 10,
	}
}

func defaultTRR() TRR {
	return TRR{
		Enabled:        true,
		RefPeriod:      17,
		SamplerSlots:   1,
		NeighborRadius: 1,
	}
}

// PaperChip returns the configuration of the chip characterized in the
// paper, calibrated to its reported numbers.
func PaperChip() *Config {
	return &Config{
		Seed: 0xD52023, // default chip instance; vary to model other chips
		Geometry: addr.Geometry{
			Channels:       8,
			PseudoChannels: 2,
			Banks:          16,
			Rows:           16384,
			Columns:        32,
			ColumnBytes:    32,
		},
		SubarraySizes: paperSubarraySizes(),
		Timing:        defaultTiming(),
		Fault:         defaultFault(paperChannelProfiles()),
		Ret:           defaultRetention(),
		TRR:           defaultTRR(),
		ECC:           ECC{WordBits: 64},
		Mapping:       MappingXorSwizzle,
	}
}

// SmallChip returns a scaled-down device with the same number of channels
// (channel-level variation is the paper's first-order finding) but far
// fewer banks, rows and columns, for fast tests and examples.
func SmallChip() *Config {
	sizes := make([]int, 0, 14)
	for i := 0; i < 4; i++ {
		sizes = append(sizes, 80)
	}
	for i := 0; i < 6; i++ {
		sizes = append(sizes, 64)
	}
	for i := 0; i < 4; i++ {
		sizes = append(sizes, 80)
	}
	return &Config{
		Seed: 0x5AFA12, // SAFARI-flavoured default chip instance
		Geometry: addr.Geometry{
			Channels:       8,
			PseudoChannels: 2,
			Banks:          4,
			Rows:           1024,
			Columns:        8,
			ColumnBytes:    16,
		},
		SubarraySizes: sizes,
		Timing:        defaultTiming(),
		Fault:         defaultFault(paperChannelProfiles()),
		Ret:           defaultRetention(),
		TRR:           defaultTRR(),
		ECC:           ECC{WordBits: 64},
		Mapping:       MappingXorSwizzle,
	}
}
