package faultmodel

import (
	"math"
	"sync"
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/rng"
)

// The sense fast path leans on three precomputed aggregates; these tests
// pin their invariants against brute force so the fast path's skipping
// logic can never drift from the per-bit model.

func TestThresholdAggregatesConsistent(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	bits := cfg.Geometry.RowBits()
	for _, row := range []int{0, 17, 500, cfg.Geometry.Rows - 1} {
		thr, wordMin, byThr := m.Thresholds(m.Profile(bank(5, 1, 0), row))
		if len(thr) != bits || len(byThr) != bits {
			t.Fatalf("row %d: aggregate lengths %d/%d, want %d", row, len(thr), len(byThr), bits)
		}
		// ByThr is a permutation of all bit indices...
		seen := make([]bool, bits)
		for _, ci := range byThr {
			if seen[ci] {
				t.Fatalf("row %d: bit %d appears twice in ByThr", row, ci)
			}
			seen[ci] = true
		}
		// ...sorted ascending by threshold with index tie-breaking.
		for k := 1; k < bits; k++ {
			a, b := byThr[k-1], byThr[k]
			if thr[a] > thr[b] || (thr[a] == thr[b] && a >= b) {
				t.Fatalf("row %d: ByThr not ascending at %d: bit %d (%v) before bit %d (%v)",
					row, k, a, thr[a], b, thr[b])
			}
		}
		// WordMin is the exact per-word minimum.
		for w := range wordMin {
			min := float32(math.Inf(1))
			for i := w * 64; i < (w+1)*64 && i < bits; i++ {
				if thr[i] < min {
					min = thr[i]
				}
			}
			if wordMin[w] != min {
				t.Fatalf("row %d word %d: WordMin %v, brute-force min %v", row, w, wordMin[w], min)
			}
		}
	}
}

func TestRetentionTiersMatchRetentionSec(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	b := bank(2, 0, 3)
	const row = 33
	bits := cfg.Geometry.RowBits()
	p := m.Profile(b, row)

	// Lite tier: memoized per-bit values equal the pure function.
	for _, i := range []int{0, 1, 63, 64, 100, bits - 1} {
		if got, want := m.RetentionAt(p, i), m.RetentionSec(b, row, i); got != want {
			t.Fatalf("bit %d: lite RetentionAt %v != RetentionSec %v", i, got, want)
		}
	}

	// First plan call: still lite. Second: promoted to full.
	if _, _, _, full := m.RetentionPlan(p); full {
		t.Fatal("first retention scan already on the full tier")
	}
	sec, wordMin, minSec, full := m.RetentionPlan(p)
	if !full {
		t.Fatal("second retention scan did not promote to the full tier")
	}
	wantMin := math.Inf(1)
	for i := 0; i < bits; i++ {
		want := m.RetentionSec(b, row, i)
		if sec[i] != want {
			t.Fatalf("bit %d: full-tier Sec %v != RetentionSec %v", i, sec[i], want)
		}
		if want < wantMin {
			wantMin = want
		}
	}
	if minSec != wantMin {
		t.Fatalf("row min %v, brute-force min %v", minSec, wantMin)
	}
	for w := range wordMin {
		min := math.Inf(1)
		for i := w * 64; i < (w+1)*64 && i < bits; i++ {
			if sec[i] < min {
				min = sec[i]
			}
		}
		if wordMin[w] != min {
			t.Fatalf("word %d: WordMin %v, brute-force min %v", w, wordMin[w], min)
		}
	}
}

// TestProfileStampedeComputesOnce pins the single-flight behaviour of the
// profile cache: concurrent misses for one row must not each recompute
// the full profile.
func TestProfileStampedeComputesOnce(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p := m.Profile(bank(4, 0, 0), 77)
			if p == nil || len(p.TrueCell) == 0 {
				panic("empty profile from stampede")
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := m.ProfileComputes(); got != 1 {
		t.Fatalf("concurrent misses for one row computed the profile %d times, want 1", got)
	}
}

func TestRadixSortMatchesComparisonSort(t *testing.T) {
	s := rng.NewStream(42)
	for _, n := range []int{0, 1, 2, 3, 64, 1000, 4096} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = s.Next()
			if i%7 == 0 {
				keys[i] &= 0xFFFF // exercise constant-byte pass skipping
			}
		}
		want := append([]uint64(nil), keys...)
		sortUint64Ref(want)
		tmp := make([]uint64, n)
		radixSortUint64(keys, tmp)
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("n=%d: radix sort diverges at %d: %x != %x", n, i, keys[i], want[i])
			}
		}
	}
}

// sortUint64Ref is a trivial comparison sort used as the oracle.
func sortUint64Ref(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// BenchmarkProfileCompute measures a cold full profile build: orientation
// pass plus lazily-forced threshold aggregates (the dominant cost), the
// unit of work every fleet chip pays per touched row.
func BenchmarkProfileCompute(b *testing.B) {
	cfg := config.SmallChip()
	m := newModel(b, cfg)
	m.SetCacheCap(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.Profile(bank(0, 0, 0), i%cfg.Geometry.Rows)
		m.Thresholds(p)
	}
}

// TestRetentionConcurrentAccess exercises the retention tier's locking
// under the race detector: profiles are shared, so concurrent lite scans,
// per-bit reads and full-tier promotions of one row must be safe.
func TestRetentionConcurrentAccess(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	b := bank(6, 1, 2)
	const row = 9
	p := m.Profile(b, row)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			switch g % 3 {
			case 0:
				m.RetentionLiteFlips(p, 1e9, 1.0, nil, nil)
			case 1:
				if got, want := m.RetentionAt(p, g), m.RetentionSec(b, row, g); got != want {
					panic("concurrent RetentionAt diverged from RetentionSec")
				}
			default:
				m.RowMinRetention(b, row)
			}
			if sec, _, _, full := m.RetentionPlan(p); full && sec[0] != m.RetentionSec(b, row, 0) {
				panic("full-tier Sec diverged under concurrency")
			}
		}(g)
	}
	close(start)
	wg.Wait()
}
