package faultmodel

import (
	"sync"

	"github.com/safari-repro/hbmrh/internal/rng"
)

// profileCache is a sharded, bounded cache of row profiles with
// single-flight miss handling: concurrent misses for the same row block on
// one computation instead of each recomputing the full profile (profiles
// cost a per-bit pass of inverse-CDF and exp work, so a stampede under a
// parallel sweep is real money). Sharding keeps unrelated rows off one
// lock; eviction is deterministic LRU (a per-shard use counter stamped
// under the shard lock), so a serial access pattern always evicts the same
// entries.
type profileCache struct {
	mu     sync.RWMutex // guards the shard table itself (rebuilt by setCap)
	shards []cacheShard
	cap    int // global entry capacity, split evenly across shards
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	tick    uint64 // per-shard use counter for deterministic LRU
	cap     int
}

type cacheEntry struct {
	prof    *RowProfile
	ready   chan struct{} // closed once prof is published
	lastUse uint64
}

// shardTarget is the shard count used whenever the capacity is large
// enough for sharding to make sense; tiny caps (ablation tests) collapse
// to one shard so the global capacity bound stays exact.
const shardTarget = 8

func newProfileCache(capEntries int) *profileCache {
	c := &profileCache{}
	c.rebuild(capEntries)
	return c
}

// rebuild resizes the shard table for a new capacity, dropping all cached
// entries (profiles are pure functions of coordinates; dropping them only
// costs recompute time).
func (c *profileCache) rebuild(capEntries int) {
	if capEntries < 1 {
		capEntries = 1
	}
	n := shardTarget
	if capEntries < 2*shardTarget {
		n = 1
	}
	shards := make([]cacheShard, n)
	per := capEntries / n
	if per < 1 {
		per = 1
	}
	for i := range shards {
		// No size hint: most models touch a small, region-local set of
		// rows, so preallocating cap-sized buckets wastes real memory on
		// every pooled device.
		shards[i] = cacheShard{entries: make(map[cacheKey]*cacheEntry), cap: per}
	}
	c.shards = shards
	c.cap = per * n
}

func (c *profileCache) shardOf(key cacheKey) *cacheShard {
	h := rng.Combine(uint64(key.bank.Channel), uint64(key.bank.PseudoChannel),
		uint64(key.bank.Bank), uint64(key.row))
	return &c.shards[h%uint64(len(c.shards))]
}

// get returns the cached profile for key, or blocks on an in-flight
// computation for it. On a true miss it claims the key and returns
// (nil, entry): the caller must compute the profile and publish it with
// put(entry, prof).
func (c *profileCache) get(key cacheKey) (*RowProfile, *cacheEntry) {
	c.mu.RLock()
	sh := c.shardOf(key)
	c.mu.RUnlock()
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		if e.prof != nil {
			sh.tick++
			e.lastUse = sh.tick
			sh.mu.Unlock()
			return e.prof, nil
		}
		// Someone else is computing this row: wait off-lock.
		sh.mu.Unlock()
		<-e.ready
		return e.prof, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	if len(sh.entries) >= sh.cap {
		sh.evictLocked()
	}
	sh.entries[key] = e
	sh.mu.Unlock()
	return nil, e
}

// put publishes a computed profile into the entry claimed by get and wakes
// any waiters.
func (c *profileCache) put(sh *cacheShard, e *cacheEntry, prof *RowProfile) {
	sh.mu.Lock()
	e.prof = prof
	sh.tick++
	e.lastUse = sh.tick
	sh.mu.Unlock()
	close(e.ready)
}

// shardFor re-resolves the shard of a key (the caller of get needs it for
// put; resolving twice keeps get's signature simple).
func (c *profileCache) shardFor(key cacheKey) *cacheShard {
	c.mu.RLock()
	sh := c.shardOf(key)
	c.mu.RUnlock()
	return sh
}

// evictLocked removes the least-recently-used completed entry. In-flight
// entries are never evicted (their computers hold a reference and waiters
// block on them).
func (sh *cacheShard) evictLocked() {
	var victim cacheKey
	var best uint64
	found := false
	for k, e := range sh.entries {
		if e.prof == nil {
			continue
		}
		if !found || e.lastUse < best {
			victim, best, found = k, e.lastUse, true
		}
	}
	if found {
		delete(sh.entries, victim)
	}
}

// len reports the number of cached entries across all shards.
func (c *profileCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// setCap rebuilds the cache with a new global capacity.
func (c *profileCache) setCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rebuild(n)
}
