// Package faultmodel computes per-cell physical properties of the
// simulated HBM2 chip: RowHammer disturbance thresholds, data-retention
// times, and cell orientation (true vs anti cells).
//
// Every quantity is a deterministic function of (seed, coordinates), so the
// full 4 GiB device needs no materialized state. The model composes, per
// cell:
//
//	threshold = channelMedian                      (die/channel process corner)
//	          x exp(channelSigma * Z_cell)         (cell-to-cell lognormal)
//	          x positionFactor(row in subarray)    (distance to sense amps)
//	          x lastSubarrayFactor                 (weak final subarray)
//	          x rowJitter x bankJitter             (local process variation)
//
// with Z_cell truncated from below and the product clamped to an absolute
// floor. Data-dependent factors (neighbour coupling, intra-row pattern) are
// applied by the device at sense time, because they depend on stored data.
//
// Row profiles additionally carry lazily-built aggregates — per-word
// minimum thresholds, a threshold-sorted candidate index, and memoized
// retention times with word/row minima — that let the device's sense fast
// path skip work without changing a single output bit (see
// internal/hbm/sense.go and DESIGN.md §8).
package faultmodel

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/rng"
)

// Hash domain separators so draws for different per-cell quantities are
// independent even at equal coordinates.
const (
	domThreshold uint64 = 0x7468726573686F6C // "threshol"
	domOrient    uint64 = 0x6F7269656E740000 // "orient"
	domRowJit    uint64 = 0x726F776A69740000 // "rowjit"
	domBankJit   uint64 = 0x62616E6B6A697400 // "bankjit"
	domRetention uint64 = 0x726574656E740000 // "retent"
)

// DefaultCacheBytes is the approximate memory budget of a model's profile
// cache. The entry capacity is derived from it so that small-geometry test
// chips cache thousands of rows while the paper-geometry chip (whose
// profiles are ~64x larger) stays within the same footprint.
const DefaultCacheBytes = 256 << 20

// Model evaluates the fault model for one chip instance.
type Model struct {
	cfg    *config.Config
	layout *addr.SubarrayLayout

	cache *profileCache
	// computes counts full profile computations, for the stampede tests
	// and cache-behaviour benchmarks.
	computes atomic.Int64
}

type cacheKey struct {
	bank addr.BankAddr
	row  int
}

// RowProfile holds the precomputed per-bit properties of one physical row.
// Slices are shared with the model's cache: callers must treat them as
// read-only. The expensive per-bit aggregates — thresholds and retention
// times, each a full pass of inverse-CDF and exp work — are built lazily
// on first need (Model.Thresholds / Model.RetentionPlan): a row that is
// only ever sensed without meaningful disturbance never pays for its
// threshold index, and a row always sensed inside the refresh window
// never pays for its retention times.
type RowProfile struct {
	// TrueCell has bit i set when cell i is a true cell (charged at 1).
	TrueCell []uint64

	thrOnce sync.Once
	thr     *thrProfile
	retOnce sync.Once
	ret     *retProfile

	// key records the row coordinates for the lazy builds.
	key cacheKey
}

// thrProfile holds the lazily-built disturbance-threshold aggregates of
// one row.
type thrProfile struct {
	// Thr[i] is the intrinsic disturbance threshold of bit i, in
	// double-sided hammer units.
	Thr []float32
	// WordMin[w] is the minimum Thr within 64-bit word w: a word whose
	// minimum exceeds the effective disturbance cannot flip, so a dense
	// sense scan skips it wholesale.
	WordMin []float32
	// ByThr lists bit indices in ascending Thr order (ties broken by bit
	// index), so a sparse sense scan visits only the bits that can
	// possibly flip and exits early at the first too-strong candidate.
	ByThr []uint32
}

// retProfile holds the lazily-built retention state of one row. It has
// two tiers. The lite tier memoizes individual bits on demand: a row's
// first long-idle sense only evaluates the (expensive) lognormal for the
// bits that are actually charged. A row scanned repeatedly is promoted to
// the full tier, which completes every bit and derives the per-word and
// per-row minima that let later scans skip work wholesale.
type retProfile struct {
	// mu guards every field below: unlike the threshold tier (immutable
	// after its sync.Once build), the retention tier mutates shared state
	// incrementally, and profiles are shared between concurrent model
	// users. The lock is taken once per scan, not per bit.
	mu sync.Mutex
	// Sec[i] is bit i's retention time at the reference temperature, equal
	// to Model.RetentionSec(bank, row, i) bit for bit. Valid only where
	// done is set (always, once full).
	Sec []float64
	// done marks which Sec entries have been computed.
	done []uint64
	// WordMin[w] is the minimum Sec within 64-bit word w: when the elapsed
	// time cannot reach a word's weakest cell, the whole word is skipped.
	// Built at promotion to full.
	WordMin []float64
	// MinSec and MinBit are the row's weakest cell: the first bit holding
	// the minimum retention time. Valid once full.
	MinSec float64
	MinBit int
	full   bool
	// scans counts retention scans over this row; the second scan
	// triggers promotion to full.
	scans int
	// prefix is the coordinate hash folded up to (but excluding) the bit
	// index; logMedian caches log(MedianSec).
	prefix    uint64
	logMedian float64
}

// IsTrue reports whether bit i is a true cell.
func (p *RowProfile) IsTrue(i int) bool {
	return p.TrueCell[i/64]&(1<<(uint(i)%64)) != 0
}

// New builds a fault model for the given validated configuration.
func New(cfg *config.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("faultmodel: %w", err)
	}
	m := &Model{
		cfg:    cfg,
		layout: cfg.Layout(),
	}
	m.cache = newProfileCache(defaultCacheEntries(cfg))
	return m, nil
}

// defaultCacheEntries derives the profile-cache entry capacity from the
// byte budget and the per-row profile footprint (threshold, orientation,
// candidate index, and retention aggregates).
func defaultCacheEntries(cfg *config.Config) int {
	bits := cfg.Geometry.RowBits()
	words := (bits + 63) / 64
	perEntry := bits*(4+4+4+8) + words*(8+4) + 256
	n := DefaultCacheBytes / perEntry
	if n < 64 {
		n = 64
	}
	return n
}

// Layout exposes the subarray layout the model was built with.
func (m *Model) Layout() *addr.SubarrayLayout { return m.layout }

// PositionFactor returns the threshold multiplier for a physical row due
// to its position within its subarray and the last-subarray effect. Edge
// rows (near the sense amplifiers) get the highest thresholds and centre
// rows the lowest, so BER peaks mid-subarray, reproducing Fig. 5's
// periodic pattern. The bank's final subarray is additionally hardened by
// LastSubarrayFactor: it exhibits far fewer bitflips in the paper, and
// fewer bitflips means higher thresholds.
func (m *Model) PositionFactor(physRow int) float64 {
	sa, off := m.layout.Locate(physRow)
	size := m.layout.Size(sa)
	f := m.cfg.Fault
	factor := f.MidFactor
	if size > 1 {
		t := float64(off) / float64(size-1) // 0 at first row, 1 at last
		// Cosine bump: EdgeFactor at t=0 and t=1, MidFactor at t=0.5.
		factor = f.MidFactor + (f.EdgeFactor-f.MidFactor)*(math.Cos(2*math.Pi*t)+1)/2
	}
	if sa == m.layout.Count()-1 {
		factor *= f.LastSubarrayFactor
	}
	return factor
}

// rowScale returns the row-level multiplier: position x row jitter x bank
// jitter.
func (m *Model) rowScale(b addr.BankAddr, physRow int) float64 {
	f := m.cfg.Fault
	seed := m.cfg.Seed
	rj := math.Exp(f.RowJitterSigma * rng.Normal(rng.Combine(
		seed, domRowJit, uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow))))
	bj := math.Exp(f.BankJitterSigma * rng.Normal(rng.Combine(
		seed, domBankJit, uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank))))
	return m.PositionFactor(physRow) * rj * bj
}

// Profile returns the cached per-bit profile of a physical row, computing
// it on first use. Concurrent first uses of the same row compute it once:
// latecomers block on the in-flight computation instead of duplicating it.
// The returned profile is shared: treat it as read-only.
func (m *Model) Profile(b addr.BankAddr, physRow int) *RowProfile {
	key := cacheKey{bank: b, row: physRow}
	p, claim := m.cache.get(key)
	if p != nil {
		return p
	}
	p = m.computeProfile(b, physRow)
	m.cache.put(m.cache.shardFor(key), claim, p)
	return p
}

func (m *Model) computeProfile(b addr.BankAddr, physRow int) *RowProfile {
	m.computes.Add(1)
	bits := m.cfg.Geometry.RowBits()
	words := (bits + 63) / 64
	prof := &RowProfile{
		TrueCell: make([]uint64, words),
		key:      cacheKey{bank: b, row: physRow},
	}
	ch := m.cfg.Fault.Channels[b.Channel]
	orientBase := rng.Combine(m.cfg.Seed, domOrient,
		uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow))
	trueFrac := ch.TrueCellFrac
	for i := 0; i < bits; i++ {
		if rng.Bool(rng.Mix64(orientBase+uint64(i)), trueFrac) {
			prof.TrueCell[i>>6] |= 1 << (uint(i) % 64)
		}
	}
	return prof
}

// thresholds returns the lazily-built threshold aggregates of a profile.
// The build — a per-bit pass of inverse-CDF and exp work plus a radix
// argsort — is only paid for rows that are ever sensed with enough
// accumulated disturbance to possibly flip; aggressor rows, whose
// disturbance is cleared by their own activations, never need it.
func (m *Model) thresholds(p *RowProfile) *thrProfile {
	p.thrOnce.Do(func() {
		bits := m.cfg.Geometry.RowBits()
		words := (bits + 63) / 64
		b, physRow := p.key.bank, p.key.row
		tp := &thrProfile{
			Thr:     make([]float32, bits),
			WordMin: make([]float32, words),
			ByThr:   make([]uint32, bits),
		}
		for w := range tp.WordMin {
			tp.WordMin[w] = float32(math.Inf(1))
		}
		ch := m.cfg.Fault.Channels[b.Channel]
		f := m.cfg.Fault
		scale := ch.MedianHC * m.rowScale(b, physRow)
		base := rng.Combine(m.cfg.Seed, domThreshold,
			uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow))
		sigma, zFloor, hcFloor := ch.Sigma, f.ZFloor, f.HCFloor
		// Sort keys are packed (IEEE bits << 32 | index): thresholds are
		// strictly positive, so their float32 bit patterns order exactly
		// like the values and one integer sort yields the candidate index
		// with deterministic index tie-breaking.
		keys := make([]uint64, 2*bits)
		tmp := keys[bits:]
		keys = keys[:bits]
		for i := 0; i < bits; i++ {
			z := rng.Normal(rng.Mix64(base + uint64(i)))
			if z < zFloor {
				z = zFloor
			}
			thr := scale * math.Exp(sigma*z)
			if thr < hcFloor {
				thr = hcFloor
			}
			t32 := float32(thr)
			tp.Thr[i] = t32
			if w := i >> 6; t32 < tp.WordMin[w] {
				tp.WordMin[w] = t32
			}
			keys[i] = uint64(math.Float32bits(t32))<<32 | uint64(i)
		}
		radixSortUint64(keys, tmp)
		for i, k := range keys {
			tp.ByThr[i] = uint32(k)
		}
		p.thr = tp
	})
	return p.thr
}

// Thresholds exposes a profile's disturbance-threshold aggregates: the
// per-bit thresholds, the per-word minima, and the ascending-threshold
// candidate index. Building them on first use is the expensive step; see
// thresholds.
func (m *Model) Thresholds(p *RowProfile) (thr, wordMin []float32, byThr []uint32) {
	tp := m.thresholds(p)
	return tp.Thr, tp.WordMin, tp.ByThr
}

// radixSortUint64 sorts keys ascending with an LSD byte radix, using tmp
// (same length) as the scatter buffer. Passes whose byte is constant
// across all keys are skipped, so the packed (float32 bits << 32 | index)
// profile keys cost ~5 effective passes. This runs once per computed
// profile; a comparison sort here was the single largest cost of profile
// construction.
func radixSortUint64(keys, tmp []uint64) {
	if len(keys) == 0 {
		return
	}
	src, dst := keys, tmp
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range src {
			counts[byte(k>>shift)]++
		}
		if counts[byte(src[0]>>shift)] == len(src) {
			continue // this byte is constant; the pass is a no-op
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, k := range src {
			d := byte(k >> shift)
			dst[counts[d]] = k
			counts[d]++
		}
		src, dst = dst, src
	}
	// An odd number of executed scatter passes leaves the result in tmp.
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// retention returns the lazily-built retention aggregates of a profile,
// computing them on first use. The build costs one per-bit pass of the
// exact RetentionSec math plus a sort; it is only paid for rows whose
// sense actually clears the retention floor gate (or via RowMinRetention).
func (m *Model) retention(p *RowProfile) *retProfile {
	p.retOnce.Do(func() {
		bits := m.cfg.Geometry.RowBits()
		b, physRow := p.key.bank, p.key.row
		// Prefix-fold the coordinate hash: Combine is a left fold, so
		// Mix64(prefix ^ bit) equals Combine(..., bit) exactly.
		p.ret = &retProfile{
			Sec:  make([]float64, bits),
			done: make([]uint64, (bits+63)/64),
			prefix: rng.Combine(m.cfg.Seed, domRetention,
				uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow)),
			logMedian: math.Log(m.cfg.Ret.MedianSec),
		}
	})
	return p.ret
}

// retSecAt returns bit i's retention time, computing and memoizing it on
// first use — bit-identical to RetentionSec. The caller must hold rp.mu.
func (m *Model) retSecAt(rp *retProfile, i int) float64 {
	w, mask := i>>6, uint64(1)<<(uint(i)&63)
	if rp.done[w]&mask != 0 {
		return rp.Sec[i]
	}
	r := m.cfg.Ret
	t := math.Exp(rp.logMedian + r.Sigma*rng.Normal(rng.Mix64(rp.prefix^uint64(i))))
	if t < r.FloorSec {
		t = r.FloorSec
	}
	rp.Sec[i] = t
	rp.done[w] |= mask
	return t
}

// retentionFull promotes a retention profile to the full tier: every bit
// computed, plus the per-word and per-row minima. The caller must hold
// rp.mu.
func (m *Model) retentionFull(rp *retProfile) *retProfile {
	if rp.full {
		return rp
	}
	bits := m.cfg.Geometry.RowBits()
	words := (bits + 63) / 64
	rp.WordMin = make([]float64, words)
	rp.MinSec = math.Inf(1)
	for w := range rp.WordMin {
		rp.WordMin[w] = math.Inf(1)
	}
	for i := 0; i < bits; i++ {
		t := m.retSecAt(rp, i)
		if w := i >> 6; t < rp.WordMin[w] {
			rp.WordMin[w] = t
		}
		if t < rp.MinSec {
			rp.MinSec, rp.MinBit = t, i
		}
	}
	rp.full = true
	return rp
}

// RetentionPlan tells the sense path how to run a retention scan over
// this row, and counts the scan. On the full tier it returns the cached
// per-bit times plus the word/row minima (full=true): the scan can gate
// on the row minimum and skip whole words (the returned slices are
// immutable once full, so reading them without the lock is safe). Before
// that it returns full=false — the scan should run through
// RetentionLiteFlips, so a row's first long-idle sense (the common case:
// a freshly-touched row on a long-running device, about to be
// overwritten anyway) only pays for the bits it actually inspects. The
// second scan promotes the row to the full tier, so rows that are
// profiled repeatedly (the U-TRR retention side channel) get the
// aggregate-gated fast path.
func (m *Model) RetentionPlan(p *RowProfile) (sec, wordMin []float64, minSec float64, full bool) {
	rp := m.retention(p)
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if !rp.full {
		rp.scans++
		if rp.scans >= 2 {
			m.retentionFull(rp)
		}
	}
	if rp.full {
		return rp.Sec, rp.WordMin, rp.MinSec, true
	}
	return nil, nil, 0, false
}

// RetentionLiteFlips runs a lite-tier retention scan: it appends to dst
// the bits that are charged under the row image data (LSB-first within
// each byte; nil means the all-zero power-up pattern) and whose retention
// time, scaled by tscale, is exceeded by elapsedSec — deriving and
// memoizing the lognormal only for the charged bits it inspects. One
// lock acquisition covers the whole scan.
func (m *Model) RetentionLiteFlips(p *RowProfile, elapsedSec, tscale float64, data []byte, dst []int) []int {
	rp := m.retention(p)
	bits := m.cfg.Geometry.RowBits()
	rp.mu.Lock()
	defer rp.mu.Unlock()
	for i := 0; i < bits; i++ {
		var v byte
		if data != nil {
			v = (data[i>>3] >> (uint(i) & 7)) & 1
		}
		if !Charged(p.IsTrue(i), v == 1) {
			continue
		}
		if elapsedSec > m.retSecAt(rp, i)*tscale {
			dst = append(dst, i)
		}
	}
	return dst
}

// RetentionAt returns bit i's retention time, memoized; bit-identical to
// RetentionSec.
func (m *Model) RetentionAt(p *RowProfile, i int) float64 {
	rp := m.retention(p)
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return m.retSecAt(rp, i)
}

// RetentionSec returns the retention time of one cell at the reference
// temperature (85 C), in seconds. The device scales it by the Arrhenius
// factor for the current ambient temperature.
func (m *Model) RetentionSec(b addr.BankAddr, physRow, bit int) float64 {
	r := m.cfg.Ret
	h := rng.Combine(m.cfg.Seed, domRetention,
		uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow), uint64(bit))
	t := rng.LogNormal(h, math.Log(r.MedianSec), r.Sigma)
	if t < r.FloorSec {
		t = r.FloorSec
	}
	return t
}

// RowMinRetention returns the smallest retention time in a physical row
// and the bit holding it. The U-TRR methodology profiles exactly this: the
// row's weakest cell determines when retention errors appear.
func (m *Model) RowMinRetention(b addr.BankAddr, physRow int) (sec float64, bit int) {
	rp := m.retention(m.Profile(b, physRow))
	rp.mu.Lock()
	defer rp.mu.Unlock()
	m.retentionFull(rp)
	return rp.MinSec, rp.MinBit
}

// ProfileComputes reports how many full profile computations the model has
// performed (for the cache-stampede tests and ablation benchmarks).
func (m *Model) ProfileComputes() int64 { return m.computes.Load() }

// Charged reports whether a cell holding the given bit value stores
// charge. True cells are charged when storing 1, anti cells when storing
// 0. Only charged cells can lose charge, so only they can flip — this is
// what makes RowHammer data-pattern dependent.
func Charged(isTrue, bitSet bool) bool { return isTrue == bitSet }

// CouplingFactor returns the threshold multiplier given how many of the
// two adjacent physical rows store the opposite value in the victim bit's
// column. More opposite-data aggressors couple more strongly (lower
// effective threshold multiplier).
func (m *Model) CouplingFactor(opposite int) float64 {
	f := m.cfg.Fault
	switch opposite {
	case 2:
		return f.CouplingBoth
	case 1:
		return f.CouplingOne
	default:
		return f.CouplingNone
	}
}

// IntraRowFactor returns the threshold multiplier due to the victim's
// same-row neighbours: alternating data (checkered patterns) protects
// slightly compared to uniform data (stripe patterns).
func (m *Model) IntraRowFactor(alternating bool) float64 {
	if alternating {
		return m.cfg.Fault.IntraRowAlternating
	}
	return 1
}

// DistanceWeight returns the disturbance contributed to a victim by one
// activation of an aggressor at the given physical row distance, or 0
// beyond the blast radius.
func (m *Model) DistanceWeight(distance int) float64 {
	if distance <= 0 || distance > len(m.cfg.Fault.DistanceWeights) {
		return 0
	}
	return m.cfg.Fault.DistanceWeights[distance-1]
}

// BlastRadius returns the maximum distance with nonzero disturbance.
func (m *Model) BlastRadius() int { return m.cfg.Fault.BlastRadius() }

// CacheLen reports the number of cached row profiles (for tests and
// ablation benchmarks).
func (m *Model) CacheLen() int { return m.cache.len() }

// SetCacheCap overrides the profile cache capacity in entries, dropping
// all cached profiles. A capacity of one disables caching benefits (every
// insert immediately evicts the previous entry); used by the ablation
// benchmarks. The default capacity is derived from DefaultCacheBytes.
func (m *Model) SetCacheCap(n int) { m.cache.setCap(n) }
