// Package faultmodel computes per-cell physical properties of the
// simulated HBM2 chip: RowHammer disturbance thresholds, data-retention
// times, and cell orientation (true vs anti cells).
//
// Every quantity is a deterministic function of (seed, coordinates), so the
// full 4 GiB device needs no materialized state. The model composes, per
// cell:
//
//	threshold = channelMedian                      (die/channel process corner)
//	          x exp(channelSigma * Z_cell)         (cell-to-cell lognormal)
//	          x positionFactor(row in subarray)    (distance to sense amps)
//	          x lastSubarrayFactor                 (weak final subarray)
//	          x rowJitter x bankJitter             (local process variation)
//
// with Z_cell truncated from below and the product clamped to an absolute
// floor. Data-dependent factors (neighbour coupling, intra-row pattern) are
// applied by the device at sense time, because they depend on stored data.
package faultmodel

import (
	"fmt"
	"math"
	"sync"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/rng"
)

// Hash domain separators so draws for different per-cell quantities are
// independent even at equal coordinates.
const (
	domThreshold uint64 = 0x7468726573686F6C // "threshol"
	domOrient    uint64 = 0x6F7269656E740000 // "orient"
	domRowJit    uint64 = 0x726F776A69740000 // "rowjit"
	domBankJit   uint64 = 0x62616E6B6A697400 // "bankjit"
	domRetention uint64 = 0x726574656E740000 // "retent"
)

// Model evaluates the fault model for one chip instance.
type Model struct {
	cfg    *config.Config
	layout *addr.SubarrayLayout

	mu    sync.RWMutex
	cache map[cacheKey]*RowProfile
	// cacheCap bounds memory: each entry costs ~4 bytes per row bit.
	cacheCap int
}

type cacheKey struct {
	bank addr.BankAddr
	row  int
}

// RowProfile holds the precomputed per-bit properties of one physical row.
// Slices are shared with the model's cache: callers must treat them as
// read-only.
type RowProfile struct {
	// Threshold[i] is the intrinsic disturbance threshold of bit i, in
	// double-sided hammer units.
	Threshold []float32
	// TrueCell has bit i set when cell i is a true cell (charged at 1).
	TrueCell []uint64
}

// IsTrue reports whether bit i is a true cell.
func (p *RowProfile) IsTrue(i int) bool {
	return p.TrueCell[i/64]&(1<<(uint(i)%64)) != 0
}

// New builds a fault model for the given validated configuration.
func New(cfg *config.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("faultmodel: %w", err)
	}
	return &Model{
		cfg:      cfg,
		layout:   cfg.Layout(),
		cache:    make(map[cacheKey]*RowProfile),
		cacheCap: 2048,
	}, nil
}

// Layout exposes the subarray layout the model was built with.
func (m *Model) Layout() *addr.SubarrayLayout { return m.layout }

// PositionFactor returns the threshold multiplier for a physical row due
// to its position within its subarray and the last-subarray effect. Edge
// rows (near the sense amplifiers) get the highest thresholds and centre
// rows the lowest, so BER peaks mid-subarray, reproducing Fig. 5's
// periodic pattern. The bank's final subarray is additionally hardened by
// LastSubarrayFactor: it exhibits far fewer bitflips in the paper, and
// fewer bitflips means higher thresholds.
func (m *Model) PositionFactor(physRow int) float64 {
	sa, off := m.layout.Locate(physRow)
	size := m.layout.Size(sa)
	f := m.cfg.Fault
	factor := f.MidFactor
	if size > 1 {
		t := float64(off) / float64(size-1) // 0 at first row, 1 at last
		// Cosine bump: EdgeFactor at t=0 and t=1, MidFactor at t=0.5.
		factor = f.MidFactor + (f.EdgeFactor-f.MidFactor)*(math.Cos(2*math.Pi*t)+1)/2
	}
	if sa == m.layout.Count()-1 {
		factor *= f.LastSubarrayFactor
	}
	return factor
}

// rowScale returns the row-level multiplier: position x row jitter x bank
// jitter.
func (m *Model) rowScale(b addr.BankAddr, physRow int) float64 {
	f := m.cfg.Fault
	seed := m.cfg.Seed
	rj := math.Exp(f.RowJitterSigma * rng.Normal(rng.Combine(
		seed, domRowJit, uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow))))
	bj := math.Exp(f.BankJitterSigma * rng.Normal(rng.Combine(
		seed, domBankJit, uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank))))
	return m.PositionFactor(physRow) * rj * bj
}

// Profile returns the cached per-bit profile of a physical row, computing
// it on first use. The returned profile is shared: treat it as read-only.
func (m *Model) Profile(b addr.BankAddr, physRow int) *RowProfile {
	key := cacheKey{bank: b, row: physRow}
	m.mu.RLock()
	p, ok := m.cache[key]
	m.mu.RUnlock()
	if ok {
		return p
	}
	p = m.computeProfile(b, physRow)
	m.mu.Lock()
	if len(m.cache) >= m.cacheCap {
		// Evict an arbitrary entry; profiles are cheap to recompute and
		// access patterns are region-local, so simple eviction suffices.
		for k := range m.cache {
			delete(m.cache, k)
			break
		}
	}
	m.cache[key] = p
	m.mu.Unlock()
	return p
}

func (m *Model) computeProfile(b addr.BankAddr, physRow int) *RowProfile {
	bits := m.cfg.Geometry.RowBits()
	prof := &RowProfile{
		Threshold: make([]float32, bits),
		TrueCell:  make([]uint64, (bits+63)/64),
	}
	ch := m.cfg.Fault.Channels[b.Channel]
	f := m.cfg.Fault
	seed := m.cfg.Seed
	scale := ch.MedianHC * m.rowScale(b, physRow)
	base := rng.Combine(seed, domThreshold,
		uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow))
	orientBase := rng.Combine(seed, domOrient,
		uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow))
	for i := 0; i < bits; i++ {
		z := rng.Normal(rng.Mix64(base + uint64(i)))
		if z < f.ZFloor {
			z = f.ZFloor
		}
		thr := scale * math.Exp(ch.Sigma*z)
		if thr < f.HCFloor {
			thr = f.HCFloor
		}
		prof.Threshold[i] = float32(thr)
		if rng.Bool(rng.Mix64(orientBase+uint64(i)), ch.TrueCellFrac) {
			prof.TrueCell[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return prof
}

// RetentionSec returns the retention time of one cell at the reference
// temperature (85 C), in seconds. The device scales it by the Arrhenius
// factor for the current ambient temperature.
func (m *Model) RetentionSec(b addr.BankAddr, physRow, bit int) float64 {
	r := m.cfg.Ret
	h := rng.Combine(m.cfg.Seed, domRetention,
		uint64(b.Channel), uint64(b.PseudoChannel), uint64(b.Bank), uint64(physRow), uint64(bit))
	t := rng.LogNormal(h, math.Log(r.MedianSec), r.Sigma)
	if t < r.FloorSec {
		t = r.FloorSec
	}
	return t
}

// RowMinRetention returns the smallest retention time in a physical row
// and the bit holding it. The U-TRR methodology profiles exactly this: the
// row's weakest cell determines when retention errors appear.
func (m *Model) RowMinRetention(b addr.BankAddr, physRow int) (sec float64, bit int) {
	bits := m.cfg.Geometry.RowBits()
	sec = math.Inf(1)
	for i := 0; i < bits; i++ {
		if t := m.RetentionSec(b, physRow, i); t < sec {
			sec, bit = t, i
		}
	}
	return sec, bit
}

// Charged reports whether a cell holding the given bit value stores
// charge. True cells are charged when storing 1, anti cells when storing
// 0. Only charged cells can lose charge, so only they can flip — this is
// what makes RowHammer data-pattern dependent.
func Charged(isTrue, bitSet bool) bool { return isTrue == bitSet }

// CouplingFactor returns the threshold multiplier given how many of the
// two adjacent physical rows store the opposite value in the victim bit's
// column. More opposite-data aggressors couple more strongly (lower
// effective threshold multiplier).
func (m *Model) CouplingFactor(opposite int) float64 {
	f := m.cfg.Fault
	switch opposite {
	case 2:
		return f.CouplingBoth
	case 1:
		return f.CouplingOne
	default:
		return f.CouplingNone
	}
}

// IntraRowFactor returns the threshold multiplier due to the victim's
// same-row neighbours: alternating data (checkered patterns) protects
// slightly compared to uniform data (stripe patterns).
func (m *Model) IntraRowFactor(alternating bool) float64 {
	if alternating {
		return m.cfg.Fault.IntraRowAlternating
	}
	return 1
}

// DistanceWeight returns the disturbance contributed to a victim by one
// activation of an aggressor at the given physical row distance, or 0
// beyond the blast radius.
func (m *Model) DistanceWeight(distance int) float64 {
	if distance <= 0 || distance > len(m.cfg.Fault.DistanceWeights) {
		return 0
	}
	return m.cfg.Fault.DistanceWeights[distance-1]
}

// BlastRadius returns the maximum distance with nonzero disturbance.
func (m *Model) BlastRadius() int { return m.cfg.Fault.BlastRadius() }

// CacheLen reports the number of cached row profiles (for tests and
// ablation benchmarks).
func (m *Model) CacheLen() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.cache)
}

// SetCacheCap overrides the profile cache capacity. A capacity of zero
// disables caching benefits (every insert immediately evicts another
// entry); used by the ablation benchmarks.
func (m *Model) SetCacheCap(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 1 {
		n = 1
	}
	m.cacheCap = n
	for len(m.cache) > n {
		for k := range m.cache {
			delete(m.cache, k)
			break
		}
	}
}
