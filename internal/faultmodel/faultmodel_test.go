package faultmodel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

func newModel(t testing.TB, cfg *config.Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func bank(ch, pc, ba int) addr.BankAddr {
	return addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: ba}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := config.SmallChip()
	cfg.SubarraySizes = []int{1}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestProfileDeterminism(t *testing.T) {
	cfg := config.SmallChip()
	a, b := newModel(t, cfg), newModel(t, cfg)
	pa := a.Profile(bank(3, 1, 2), 100)
	pb := b.Profile(bank(3, 1, 2), 100)
	ta, _, _ := a.Thresholds(pa)
	tb, _, _ := b.Thresholds(pb)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("bit %d: thresholds differ across identically-seeded models", i)
		}
	}
	for i := range pa.TrueCell {
		if pa.TrueCell[i] != pb.TrueCell[i] {
			t.Fatalf("orientation word %d differs across identically-seeded models", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	ca, cb := config.SmallChip(), config.SmallChip()
	cb.Seed = ca.Seed + 1
	ma, mb := newModel(t, ca), newModel(t, cb)
	ta, _, _ := ma.Thresholds(ma.Profile(bank(0, 0, 0), 5))
	tb, _, _ := mb.Thresholds(mb.Profile(bank(0, 0, 0), 5))
	same := 0
	for i := range ta {
		if ta[i] == tb[i] {
			same++
		}
	}
	if same == len(ta) {
		t.Fatal("different seeds produced identical thresholds")
	}
}

func TestThresholdFloorHolds(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	f := func(row uint16, bit uint16) bool {
		thr, _, _ := m.Thresholds(m.Profile(bank(7, 0, 0), int(row)%cfg.Geometry.Rows))
		return float64(thr[int(bit)%len(thr)]) >= cfg.Fault.HCFloor
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrueCellFractionMatchesProfile(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	for _, ch := range []int{0, 7} {
		want := cfg.Fault.Channels[ch].TrueCellFrac
		total, trues := 0, 0
		for row := 0; row < 40; row++ {
			p := m.Profile(bank(ch, 0, 0), row)
			for i := 0; i < cfg.Geometry.RowBits(); i++ {
				total++
				if p.IsTrue(i) {
					trues++
				}
			}
		}
		got := float64(trues) / float64(total)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("channel %d: true-cell fraction = %.3f, want %.3f", ch, got, want)
		}
	}
}

func TestChannel7HasLowerThresholds(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	medianOf := func(ch int) float64 {
		var vals []float64
		for row := 10; row < 30; row++ {
			thr, _, _ := m.Thresholds(m.Profile(bank(ch, 0, 0), row))
			for i := 0; i < len(thr); i += 7 {
				vals = append(vals, float64(thr[i]))
			}
		}
		// Crude median: sort-free selection is overkill here.
		lo, n := 0, len(vals)
		for _, v := range vals {
			if v < vals[n/2] {
				lo++
			}
		}
		_ = lo
		return mean(vals)
	}
	m0, m7 := medianOf(0), medianOf(7)
	if m7 >= m0 {
		t.Fatalf("channel 7 mean threshold %v >= channel 0 %v; ch7 must be weaker", m7, m0)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestPositionFactorShape(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	l := m.Layout()
	// Within the first subarray: edges harder than the centre.
	saStart, saSize := l.Start(0), l.Size(0)
	edge := m.PositionFactor(saStart)
	mid := m.PositionFactor(saStart + saSize/2)
	if edge <= mid {
		t.Fatalf("edge factor %v <= mid factor %v; BER must peak mid-subarray", edge, mid)
	}
	if math.Abs(edge-cfg.Fault.EdgeFactor) > 1e-9 {
		t.Errorf("edge factor = %v, want %v", edge, cfg.Fault.EdgeFactor)
	}
	// Last subarray hardened by LastSubarrayFactor.
	last := l.Count() - 1
	lastMid := m.PositionFactor(l.Start(last) + l.Size(last)/2)
	firstMid := m.PositionFactor(saStart + saSize/2)
	ratio := lastMid / firstMid
	if math.Abs(ratio-cfg.Fault.LastSubarrayFactor) > 0.05 {
		t.Errorf("last/first mid-subarray factor ratio = %v, want ~%v", ratio, cfg.Fault.LastSubarrayFactor)
	}
}

func TestPositionFactorSymmetry(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	l := m.Layout()
	// The bump is symmetric: offset k and size-1-k match within a subarray.
	sa := 1
	start, size := l.Start(sa), l.Size(sa)
	for k := 0; k < size/2; k++ {
		a := m.PositionFactor(start + k)
		b := m.PositionFactor(start + size - 1 - k)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("asymmetric position factor at offset %d: %v vs %v", k, a, b)
		}
	}
}

func TestRetentionFloorAndDeterminism(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	b := bank(2, 1, 3)
	f := func(row, bit uint16) bool {
		r := int(row) % cfg.Geometry.Rows
		bi := int(bit) % cfg.Geometry.RowBits()
		t1 := m.RetentionSec(b, r, bi)
		t2 := m.RetentionSec(b, r, bi)
		return t1 == t2 && t1 >= cfg.Ret.FloorSec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowMinRetentionFindsMinimum(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	b := bank(1, 0, 0)
	sec, bit := m.RowMinRetention(b, 17)
	if bit < 0 || bit >= cfg.Geometry.RowBits() {
		t.Fatalf("bit %d out of range", bit)
	}
	if got := m.RetentionSec(b, 17, bit); got != sec {
		t.Fatalf("reported min %v does not match recompute %v", sec, got)
	}
	for i := 0; i < cfg.Geometry.RowBits(); i++ {
		if m.RetentionSec(b, 17, i) < sec {
			t.Fatalf("bit %d has retention below reported minimum", i)
		}
	}
}

func TestChargedSemantics(t *testing.T) {
	cases := []struct {
		isTrue, bitSet, want bool
	}{
		{true, true, true},   // true cell storing 1: charged
		{true, false, false}, // true cell storing 0: discharged
		{false, true, false}, // anti cell storing 1: discharged
		{false, false, true}, // anti cell storing 0: charged
	}
	for _, c := range cases {
		if got := Charged(c.isTrue, c.bitSet); got != c.want {
			t.Errorf("Charged(%v, %v) = %v, want %v", c.isTrue, c.bitSet, got, c.want)
		}
	}
}

func TestCouplingMonotonicity(t *testing.T) {
	m := newModel(t, config.SmallChip())
	if !(m.CouplingFactor(2) < m.CouplingFactor(1) && m.CouplingFactor(1) < m.CouplingFactor(0)) {
		t.Fatal("coupling factor must decrease with more opposite-data aggressors")
	}
	if m.IntraRowFactor(true) <= m.IntraRowFactor(false) {
		t.Fatal("alternating intra-row data must raise the threshold")
	}
}

func TestDistanceWeights(t *testing.T) {
	m := newModel(t, config.SmallChip())
	if m.DistanceWeight(1) != 0.5 {
		t.Errorf("DistanceWeight(1) = %v, want 0.5", m.DistanceWeight(1))
	}
	if m.DistanceWeight(0) != 0 || m.DistanceWeight(-1) != 0 {
		t.Error("non-positive distances must contribute nothing")
	}
	if m.DistanceWeight(m.BlastRadius()+1) != 0 {
		t.Error("beyond blast radius must contribute nothing")
	}
	for d := 1; d < m.BlastRadius(); d++ {
		if m.DistanceWeight(d) <= m.DistanceWeight(d+1) {
			t.Errorf("weight at distance %d not greater than at %d", d, d+1)
		}
	}
}

func TestCacheEviction(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	m.SetCacheCap(4)
	for row := 0; row < 20; row++ {
		m.Profile(bank(0, 0, 0), row)
	}
	if got := m.CacheLen(); got > 4 {
		t.Fatalf("cache holds %d entries, cap is 4", got)
	}
	// Re-reading a row evicted earlier still returns identical data.
	t1, _, _ := m.Thresholds(m.Profile(bank(0, 0, 0), 0))
	t1 = append([]float32(nil), t1...)
	m.SetCacheCap(1)
	for row := 1; row < 5; row++ {
		m.Profile(bank(0, 0, 0), row)
	}
	t2, _, _ := m.Thresholds(m.Profile(bank(0, 0, 0), 0))
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("profile changed after eviction and recompute")
		}
	}
}

func TestProfileConcurrentAccess(t *testing.T) {
	cfg := config.SmallChip()
	m := newModel(t, cfg)
	m.SetCacheCap(8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for row := 0; row < 64; row++ {
				p := m.Profile(bank(g%8, 0, 0), row)
				thr, _, _ := m.Thresholds(p)
				if len(thr) != cfg.Geometry.RowBits() {
					panic("bad profile size")
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func BenchmarkProfileCold(b *testing.B) {
	cfg := config.SmallChip()
	m := newModel(b, cfg)
	m.SetCacheCap(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Profile(bank(0, 0, 0), i%cfg.Geometry.Rows)
	}
}

func BenchmarkProfileCached(b *testing.B) {
	cfg := config.SmallChip()
	m := newModel(b, cfg)
	m.Profile(bank(0, 0, 0), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Profile(bank(0, 0, 0), 1)
	}
}
