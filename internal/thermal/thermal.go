// Package thermal simulates the paper's temperature rig (Fig. 2): a
// heating pad and a cooling fan driven by an Arduino-based closed-loop PID
// controller that holds the HBM2 chip at a target temperature (85 C, the
// maximum operating temperature at the nominal refresh rate, in all of the
// paper's experiments).
//
// The plant is a first-order thermal model; the controller steps it at a
// fixed period, applies the PID law, and pushes the resulting chip
// temperature into the device (which scales retention times accordingly).
package thermal

import (
	"fmt"
	"math"
)

// Chip is the controller's view of the device under test: the rig sets the
// ambient chip temperature and advances simulated time while settling.
// *hbm.Device implements it.
type Chip interface {
	SetTemperature(c float64)
	AdvanceTime(ps int64) error
}

// Plant is a first-order thermal model of the chip + pad + fan assembly:
//
//	dT/dt = (ambient - T)/tau + heaterGain*heat - coolerGain*cool
//
// with heat and cool actuator levels in [0, 1].
type Plant struct {
	AmbientC   float64 // lab ambient temperature
	TauSec     float64 // passive time constant toward ambient
	HeaterGain float64 // C/s at full heater power
	CoolerGain float64 // C/s at full fan power

	tempC float64
}

// NewPlant returns a plant resting at the lab ambient temperature.
func NewPlant(ambientC float64) *Plant {
	return &Plant{
		AmbientC:   ambientC,
		TauSec:     30,
		HeaterGain: 2.5,
		CoolerGain: 1.5,
		tempC:      ambientC,
	}
}

// Temperature returns the current chip temperature.
func (p *Plant) Temperature() float64 { return p.tempC }

// Step advances the plant by dt seconds with the given actuator levels
// (clamped to [0, 1]).
func (p *Plant) Step(dtSec, heat, cool float64) {
	heat = clamp(heat, 0, 1)
	cool = clamp(cool, 0, 1)
	dT := (p.AmbientC-p.tempC)/p.TauSec + p.HeaterGain*heat - p.CoolerGain*cool
	p.tempC += dT * dtSec
}

// PID is a textbook discrete PID controller with output clamping and
// integral anti-windup.
type PID struct {
	Kp, Ki, Kd float64
	OutMin     float64
	OutMax     float64

	integral float64
	prevErr  float64
	primed   bool
}

// Update computes the control output for the measured value against the
// setpoint over a dt-second step. Positive output means heat, negative
// means cool.
func (c *PID) Update(setpoint, measured, dtSec float64) float64 {
	err := setpoint - measured
	deriv := 0.0
	if c.primed && dtSec > 0 {
		deriv = (err - c.prevErr) / dtSec
	}
	c.prevErr = err
	c.primed = true
	c.integral += err * dtSec
	out := c.Kp*err + c.Ki*c.integral + c.Kd*deriv
	if out > c.OutMax {
		out = c.OutMax
		c.integral -= err * dtSec // anti-windup: stop integrating at the rail
	} else if out < c.OutMin {
		out = c.OutMin
		c.integral -= err * dtSec
	}
	return out
}

// Controller is the simulated Arduino MEGA: it owns the plant and PID and
// drives the chip's ambient temperature.
type Controller struct {
	plant    *Plant
	pid      PID
	chip     Chip
	period   float64 // control period in seconds
	setpoint float64
}

// NewController wires a controller to a chip, starting from the plant's
// ambient temperature.
func NewController(chip Chip, plant *Plant) *Controller {
	c := &Controller{
		plant: plant,
		pid: PID{
			Kp: 0.8, Ki: 0.05, Kd: 0.4,
			OutMin: -1, OutMax: 1,
		},
		chip:     chip,
		period:   0.25,
		setpoint: plant.Temperature(),
	}
	chip.SetTemperature(plant.Temperature())
	return c
}

// Temperature returns the current chip temperature.
func (c *Controller) Temperature() float64 { return c.plant.Temperature() }

// Step runs one control period: measure, PID, actuate, propagate to chip.
func (c *Controller) Step() error {
	out := c.pid.Update(c.setpoint, c.plant.Temperature(), c.period)
	heat, cool := 0.0, 0.0
	if out >= 0 {
		heat = out
	} else {
		cool = -out
	}
	c.plant.Step(c.period, heat, cool)
	c.chip.SetTemperature(c.plant.Temperature())
	return c.chip.AdvanceTime(int64(c.period * 1e12))
}

var errTimeout = fmt.Errorf("thermal: target not reached")

// ErrTimeout reports whether err came from a settling timeout.
func ErrTimeout(err error) bool { return err == errTimeout }

// SettleTo drives the chip to targetC and holds it within tolC for
// holdSec seconds. It gives up after maxSec seconds of simulated time.
// Simulated device time advances while settling, as it would on the bench.
func (c *Controller) SettleTo(targetC, tolC, holdSec, maxSec float64) error {
	c.setpoint = targetC
	elapsed, held := 0.0, 0.0
	for elapsed < maxSec {
		if err := c.Step(); err != nil {
			return err
		}
		elapsed += c.period
		if math.Abs(c.plant.Temperature()-targetC) <= tolC {
			held += c.period
			if held >= holdSec {
				return nil
			}
		} else {
			held = 0
		}
	}
	return errTimeout
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
