package thermal

import (
	"math"
	"testing"
)

// fakeChip records the temperature trajectory pushed into the device.
type fakeChip struct {
	temps   []float64
	advance int64
}

func (f *fakeChip) SetTemperature(c float64) { f.temps = append(f.temps, c) }
func (f *fakeChip) AdvanceTime(ps int64) error {
	f.advance += ps
	return nil
}

func TestPlantRelaxesToAmbient(t *testing.T) {
	p := NewPlant(25)
	p.tempC = 80
	for i := 0; i < 10000; i++ {
		p.Step(0.25, 0, 0)
	}
	if math.Abs(p.Temperature()-25) > 0.5 {
		t.Fatalf("plant settled at %.2f C, want ambient 25 C", p.Temperature())
	}
}

func TestPlantHeatsAndCools(t *testing.T) {
	p := NewPlant(25)
	p.Step(1, 1, 0)
	if p.Temperature() <= 25 {
		t.Fatal("heater did not raise temperature")
	}
	hot := p.Temperature()
	p.Step(1, 0, 1)
	if p.Temperature() >= hot {
		t.Fatal("fan did not lower temperature")
	}
}

func TestPlantClampsActuators(t *testing.T) {
	a, b := NewPlant(25), NewPlant(25)
	a.Step(1, 5, 0) // over-driven heater must clamp to 1
	b.Step(1, 1, 0)
	if a.Temperature() != b.Temperature() {
		t.Fatalf("actuator clamp failed: %v vs %v", a.Temperature(), b.Temperature())
	}
}

func TestSettleToPaperTemperature(t *testing.T) {
	chip := &fakeChip{}
	ctl := NewController(chip, NewPlant(25))
	// The paper holds the chip at 85 C for every experiment.
	if err := ctl.SettleTo(85, 0.5, 5, 600); err != nil {
		t.Fatalf("failed to settle at 85 C: %v", err)
	}
	if math.Abs(ctl.Temperature()-85) > 0.5 {
		t.Fatalf("settled at %.2f C, want 85 +/- 0.5", ctl.Temperature())
	}
	if len(chip.temps) == 0 || chip.advance == 0 {
		t.Fatal("controller did not propagate temperature or time to the chip")
	}
	// The chip always sees the plant's temperature, never something else.
	last := chip.temps[len(chip.temps)-1]
	if last != ctl.Temperature() {
		t.Fatalf("chip sees %.2f C, plant is at %.2f C", last, ctl.Temperature())
	}
}

func TestSettleDownwards(t *testing.T) {
	chip := &fakeChip{}
	plant := NewPlant(25)
	plant.tempC = 85
	ctl := NewController(chip, plant)
	if err := ctl.SettleTo(40, 0.5, 5, 600); err != nil {
		t.Fatalf("failed to cool to 40 C: %v", err)
	}
	if math.Abs(ctl.Temperature()-40) > 0.5 {
		t.Fatalf("settled at %.2f C, want 40", ctl.Temperature())
	}
}

func TestSettleTimesOutOnUnreachableTarget(t *testing.T) {
	chip := &fakeChip{}
	ctl := NewController(chip, NewPlant(25))
	// 300 C is beyond the heater's equilibrium; must time out, not hang.
	err := ctl.SettleTo(300, 0.5, 5, 60)
	if err == nil || !ErrTimeout(err) {
		t.Fatalf("err = %v, want settling timeout", err)
	}
}

func TestOvershootIsBounded(t *testing.T) {
	chip := &fakeChip{}
	ctl := NewController(chip, NewPlant(25))
	if err := ctl.SettleTo(85, 0.5, 10, 900); err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, c := range chip.temps {
		if c > peak {
			peak = c
		}
	}
	if peak > 90 {
		t.Fatalf("overshoot to %.2f C; PID tuning must keep the chip below 90 C", peak)
	}
}

func TestPIDOutputClamping(t *testing.T) {
	pid := PID{Kp: 100, Ki: 10, Kd: 0, OutMin: -1, OutMax: 1}
	if out := pid.Update(85, 25, 0.25); out != 1 {
		t.Fatalf("output %v, want clamp at 1", out)
	}
	if out := pid.Update(25, 85, 0.25); out != -1 {
		t.Fatalf("output %v, want clamp at -1", out)
	}
}

func TestControllerIsDeterministic(t *testing.T) {
	run := func() []float64 {
		chip := &fakeChip{}
		ctl := NewController(chip, NewPlant(25))
		if err := ctl.SettleTo(85, 0.5, 5, 600); err != nil {
			t.Fatal(err)
		}
		return chip.temps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trajectories differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectory diverged at step %d", i)
		}
	}
}
