package hbm

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

// benchSense measures the core probe cycle — a double-sided hammer burst
// followed by a victim sense — on either sense implementation. The pair
// quantifies what the profile-aggregate fast path buys per probe;
// baselines live in BENCH_engine.json.
func benchSense(b *testing.B, ref bool) {
	d, err := New(config.SmallChip())
	if err != nil {
		b.Fatal(err)
	}
	d.SetSenseReference(ref)
	m := d.Mapper()
	ba := addr.BankAddr{Channel: 7}
	layout := d.Config().Layout()
	phys := layout.Start(1) + layout.Size(1)/2
	la, lb, lv := m.ToLogical(phys-1), m.ToLogical(phys+1), m.ToLogical(phys)
	tm := d.Config().Timing
	cycle := func() {
		if err := d.HammerPair(ba, la, lb, 150_000); err != nil {
			b.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRP); err != nil {
			b.Fatal(err)
		}
		if err := d.Activate(ba, lv); err != nil {
			b.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRAS); err != nil {
			b.Fatal(err)
		}
		if err := d.Precharge(ba); err != nil {
			b.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRP); err != nil {
			b.Fatal(err)
		}
	}
	cycle() // warm profiles and scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkSenseAndRestoreFast measures the production fast path.
func BenchmarkSenseAndRestoreFast(b *testing.B) { benchSense(b, false) }

// BenchmarkSenseAndRestoreReference measures the straightforward per-bit
// reference implementation the fast path is pinned against.
func BenchmarkSenseAndRestoreReference(b *testing.B) { benchSense(b, true) }

// BenchmarkSenseColdRows measures first-touch sensing: every iteration
// probes a fresh victim row whose profile (orientation, thresholds,
// retention) must be built from scratch — the fleet chipscan's dominant
// cost, since each seed's rows are visited once.
func BenchmarkSenseColdRows(b *testing.B) {
	d, err := New(config.SmallChip())
	if err != nil {
		b.Fatal(err)
	}
	m := d.Mapper()
	ba := addr.BankAddr{Channel: 6}
	rows := d.Geometry().Rows
	tm := d.Config().Timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phys := 1 + (i*3)%(rows-2)
		if err := d.HammerPair(ba, m.ToLogical(phys-1), m.ToLogical(phys+1), 150_000); err != nil {
			b.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRP); err != nil {
			b.Fatal(err)
		}
	}
}
