package hbm

import (
	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/faultmodel"
)

// senseAndRestore models what the sense amplifiers do when a row is
// activated or refreshed at time at: they latch whatever charge remains in
// each cell and drive it back, so any bitflip accumulated since the last
// sense — from charge decay or from RowHammer disturbance — becomes
// permanent data. Afterwards the row is fully charged and its disturbance
// counter is reset.
//
// On-die ECC, when enabled through the mode register, corrects words with
// exactly one flipped bit at sense-out, as the HBM2 single-error-correcting
// code does. Multi-bit words pass through uncorrected (miscorrection is not
// modelled).
func (d *Device) senseAndRestore(b addr.BankAddr, bank *bankState, physRow int, at int64) {
	rs := d.row(bank, physRow)
	disturb := rs.disturb
	elapsedSec := float64(at-rs.lastSense) * 1e-12
	rs.disturb = 0
	rs.lastSense = at

	// Effective retention shrinks with temperature (Arrhenius factor).
	tscale := d.cfg.Ret.Scale(d.tempC)
	retPass := elapsedSec > d.cfg.Ret.FloorSec*tscale
	// RowHammer thresholds also scale (mildly) with temperature; hotter
	// chips flip with fewer hammers when the slope is negative.
	thrTemp := 1 + d.cfg.Fault.TempSlopePerC*(d.tempC-d.cfg.Ret.RefTempC)
	if thrTemp < 0.05 {
		thrTemp = 0.05
	}
	// No cell threshold is below HCFloor and no data-coupling factor is
	// below CouplingBoth, so lower disturbance cannot flip anything.
	distPass := disturb >= d.cfg.Fault.HCFloor*d.cfg.Fault.CouplingBoth*thrTemp
	if !retPass && !distPass {
		return
	}

	prof := d.fm.Profile(b, physRow)
	bits := d.cfg.Geometry.RowBits()
	data := rs.data

	// Neighbour data for coupling evaluation. A neighbour beyond the
	// subarray boundary does not exist electrically; an unmaterialized
	// neighbour holds the power-up pattern (all zeros).
	var upData, downData []byte
	hasUp := physRow > 0 && d.layout.SameSubarray(physRow, physRow-1)
	hasDown := physRow < d.cfg.Geometry.Rows-1 && d.layout.SameSubarray(physRow, physRow+1)
	if hasUp {
		if nb, ok := bank.rows[physRow-1]; ok {
			upData = nb.data
		}
	}
	if hasDown {
		if nb, ok := bank.rows[physRow+1]; ok {
			downData = nb.data
		}
	}

	bitOf := func(buf []byte, i int) byte {
		if buf == nil {
			return 0
		}
		return (buf[i>>3] >> (uint(i) & 7)) & 1
	}

	var flips []int
	quickThr := disturb / (d.cfg.Fault.CouplingBoth * thrTemp)
	for i := 0; i < bits; i++ {
		v := (data[i>>3] >> (uint(i) & 7)) & 1
		if !faultmodel.Charged(prof.IsTrue(i), v == 1) {
			continue // discharged cells have no charge to lose
		}
		flipped := false
		if distPass && float64(prof.Threshold[i]) <= quickThr {
			opposite := 0
			if hasUp && bitOf(upData, i) != v {
				opposite++
			}
			if hasDown && bitOf(downData, i) != v {
				opposite++
			}
			alternating := i > 0 && i < bits-1 &&
				(data[(i-1)>>3]>>(uint(i-1)&7))&1 != v &&
				(data[(i+1)>>3]>>(uint(i+1)&7))&1 != v
			eff := float64(prof.Threshold[i]) * d.fm.CouplingFactor(opposite) *
				d.fm.IntraRowFactor(alternating) * thrTemp
			if disturb >= eff {
				flipped = true
			}
		}
		if !flipped && retPass {
			if elapsedSec > d.fm.RetentionSec(b, physRow, i)*tscale {
				flipped = true
			}
		}
		if flipped {
			flips = append(flips, i)
		}
	}
	if len(flips) == 0 {
		return
	}

	if d.eccEnabled(b.Channel) {
		flips = d.eccFilter(flips)
	}
	for _, i := range flips {
		data[i>>3] ^= 1 << (uint(i) & 7)
	}
	d.stats.BitflipsCommitted += int64(len(flips))
}

// eccFilter drops single-bit-per-word flips (the SEC code corrects them)
// and counts the corrections. Words with two or more flips pass through.
func (d *Device) eccFilter(flips []int) []int {
	word := d.cfg.ECC.WordBits
	counts := make(map[int]int, len(flips))
	for _, i := range flips {
		counts[i/word]++
	}
	kept := flips[:0]
	for _, i := range flips {
		if counts[i/word] == 1 {
			d.stats.ECCCorrections++
			continue
		}
		kept = append(kept, i)
	}
	return kept
}
