package hbm

import (
	"slices"
	"sync/atomic"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/faultmodel"
)

// forceReferenceSense, when set, makes newly-powered devices use the
// straightforward reference sense implementation instead of the fast path.
// It exists for the differential equivalence tests and ablation
// benchmarks; production code never sets it. Devices read it once at New,
// so pooled devices keep the path they were built with (drain the engine
// pool when toggling it in tests).
var forceReferenceSense atomic.Bool

// ForceReferenceSense selects the sense implementation for devices powered
// up after the call: the reference path when on, the fast path otherwise.
// Testing/ablation hook only — both paths are bit-identical by contract
// (see FuzzSenseEquivalence and DESIGN.md §8).
func ForceReferenceSense(on bool) { forceReferenceSense.Store(on) }

// SetSenseReference selects this device's sense implementation directly.
func (d *Device) SetSenseReference(on bool) { d.senseRef = on }

// senseAndRestore models what the sense amplifiers do when a row is
// activated or refreshed at time at: they latch whatever charge remains in
// each cell and drive it back, so any bitflip accumulated since the last
// sense — from charge decay or from RowHammer disturbance — becomes
// permanent data. Afterwards the row is fully charged and its disturbance
// counter is reset.
//
// On-die ECC, when enabled through the mode register, corrects words with
// exactly one flipped bit at sense-out, as the HBM2 single-error-correcting
// code does. Multi-bit words pass through uncorrected (miscorrection is not
// modelled).
//
// Two implementations exist. senseReference is the straightforward
// per-bit scan that defines the semantics. The default fast path uses the
// profile's precomputed aggregates to touch only the bits that can
// possibly flip; it is bit-for-bit identical (pinned by differential fuzz
// and golden tests) and allocation-free in steady state.
func (d *Device) senseAndRestore(b addr.BankAddr, bank *bankState, physRow int, at int64) {
	rs := d.row(bank, physRow)
	disturb := rs.disturb
	elapsedSec := float64(at-rs.lastSense) * 1e-12
	rs.disturb = 0
	rs.lastSense = at

	// Effective retention shrinks with temperature (Arrhenius factor).
	tscale := d.cfg.Ret.Scale(d.tempC)
	retPass := elapsedSec > d.cfg.Ret.FloorSec*tscale
	// RowHammer thresholds also scale (mildly) with temperature; hotter
	// chips flip with fewer hammers when the slope is negative.
	thrTemp := 1 + d.cfg.Fault.TempSlopePerC*(d.tempC-d.cfg.Ret.RefTempC)
	if thrTemp < 0.05 {
		thrTemp = 0.05
	}
	// No cell threshold is below HCFloor and no data-coupling factor is
	// below CouplingBoth, so lower disturbance cannot flip anything.
	distPass := disturb >= d.cfg.Fault.HCFloor*d.cfg.Fault.CouplingBoth*thrTemp
	if !retPass && !distPass {
		return
	}
	if d.senseRef {
		d.senseReference(b, bank, rs, physRow, disturb, elapsedSec, tscale, thrTemp, retPass, distPass)
		return
	}
	d.senseFast(b, bank, rs, physRow, disturb, elapsedSec, tscale, thrTemp, retPass, distPass)
}

// rowBit returns bit i of a row image; a nil image is the power-up pattern
// (all zeros).
func rowBit(buf []byte, i int) byte {
	if buf == nil {
		return 0
	}
	return (buf[i>>3] >> (uint(i) & 7)) & 1
}

// neighbourData resolves the row images of the two physically adjacent
// rows for coupling evaluation. A neighbour beyond the subarray boundary
// does not exist electrically; an unmaterialized neighbour holds the
// power-up pattern (all zeros, a nil image).
func (d *Device) neighbourData(bank *bankState, physRow int) (upData, downData []byte, hasUp, hasDown bool) {
	hasUp = physRow > 0 && d.layout.SameSubarray(physRow, physRow-1)
	hasDown = physRow < d.cfg.Geometry.Rows-1 && d.layout.SameSubarray(physRow, physRow+1)
	if hasUp {
		if nb := bank.rowAt(physRow - 1); nb != nil {
			upData = nb.data
		}
	}
	if hasDown {
		if nb := bank.rowAt(physRow + 1); nb != nil {
			downData = nb.data
		}
	}
	return upData, downData, hasUp, hasDown
}

// disturbFlip evaluates the full data-dependent disturbance criterion for
// one bit that already passed the threshold screen: the bit flips when the
// accumulated disturbance reaches its threshold scaled by neighbour
// coupling, intra-row pattern, and temperature. Shared verbatim by both
// sense paths.
func (d *Device) disturbFlip(thr []float32, data, upData, downData []byte,
	hasUp, hasDown bool, i, bits int, v byte, disturb, thrTemp float64) bool {
	opposite := 0
	if hasUp && rowBit(upData, i) != v {
		opposite++
	}
	if hasDown && rowBit(downData, i) != v {
		opposite++
	}
	alternating := i > 0 && i < bits-1 &&
		rowBit(data, i-1) != v && rowBit(data, i+1) != v
	eff := float64(thr[i]) * d.fm.CouplingFactor(opposite) *
		d.fm.IntraRowFactor(alternating) * thrTemp
	return disturb >= eff
}

// senseFast is the production sense path. It exploits three profile
// aggregates, none of which change the flip criterion:
//
//   - ByThr, the ascending-threshold candidate index: the disturbance pass
//     visits only bits whose threshold passes the quickThr screen, exiting
//     at the first too-strong candidate. When the screen admits most of the
//     row (extreme disturbance), it falls back to a word-ordered scan that
//     skips whole 64-bit words via WordMinThr, preserving memory locality.
//   - Cached retention times with per-word and per-row minima: when elapsed
//     time cannot reach even the row's weakest cell, the retention pass
//     vanishes; otherwise it skips whole words via their minima and
//     compares cached floats instead of re-deriving lognormal variates.
//   - Scratch reuse: candidate bits accumulate into a device-owned buffer,
//     and ECC filtering runs on the sorted buffer without a map.
func (d *Device) senseFast(b addr.BankAddr, bank *bankState, rs *rowState, physRow int,
	disturb, elapsedSec, tscale, thrTemp float64, retPass, distPass bool) {
	prof := d.fm.Profile(b, physRow)
	bits := d.cfg.Geometry.RowBits()
	data := rs.data
	flips := d.flipScratch[:0]

	if distPass {
		quickThr := disturb / (d.cfg.Fault.CouplingBoth * thrTemp)
		thr, wordMin, byThr := d.fm.Thresholds(prof)
		if n := len(byThr); n > 0 && float64(thr[byThr[0]]) <= quickThr {
			upData, downData, hasUp, hasDown := d.neighbourData(bank, physRow)
			if float64(thr[byThr[n/2]]) <= quickThr {
				// Dense: at least half the row passes the screen. A
				// word-ordered scan touches memory sequentially and skips
				// words whose minimum threshold exceeds the screen.
				for w := range wordMin {
					if float64(wordMin[w]) > quickThr {
						continue
					}
					hi := (w + 1) << 6
					if hi > bits {
						hi = bits
					}
					for i := w << 6; i < hi; i++ {
						if float64(thr[i]) > quickThr {
							continue
						}
						v := rowBit(data, i)
						if !faultmodel.Charged(prof.IsTrue(i), v == 1) {
							continue
						}
						if d.disturbFlip(thr, data, upData, downData, hasUp, hasDown, i, bits, v, disturb, thrTemp) {
							flips = append(flips, i)
						}
					}
				}
			} else {
				// Sparse: visit candidates in ascending-threshold order and
				// stop at the first one the screen rejects.
				for _, ci := range byThr {
					i := int(ci)
					if float64(thr[i]) > quickThr {
						break
					}
					v := rowBit(data, i)
					if !faultmodel.Charged(prof.IsTrue(i), v == 1) {
						continue
					}
					if d.disturbFlip(thr, data, upData, downData, hasUp, hasDown, i, bits, v, disturb, thrTemp) {
						flips = append(flips, i)
					}
				}
			}
		}
	}

	if retPass {
		retSec, wordMin, minSec, full := d.fm.RetentionPlan(prof)
		switch {
		case full && elapsedSec > minSec*tscale:
			for w := range wordMin {
				if !(elapsedSec > wordMin[w]*tscale) {
					continue // even the word's weakest cell survives
				}
				hi := (w + 1) << 6
				if hi > bits {
					hi = bits
				}
				for i := w << 6; i < hi; i++ {
					if !(elapsedSec > retSec[i]*tscale) {
						continue
					}
					v := rowBit(data, i)
					if !faultmodel.Charged(prof.IsTrue(i), v == 1) {
						continue
					}
					flips = append(flips, i)
				}
			}
		case !full:
			// Lite tier: the model scans charge-first under one lock, so
			// the lognormal retention time is only derived for charged
			// bits (and memoized for later scans).
			flips = d.fm.RetentionLiteFlips(prof, elapsedSec, tscale, data, flips)
		}
	}

	d.flipScratch = flips
	if len(flips) == 0 {
		return
	}
	// The passes emit bits in threshold / retention order and may both
	// claim the same bit; sort and deduplicate to recover the reference
	// path's ascending unique flip set.
	slices.Sort(flips)
	uniq := flips[:1]
	for _, i := range flips[1:] {
		if i != uniq[len(uniq)-1] {
			uniq = append(uniq, i)
		}
	}
	flips = uniq

	if d.eccEnabled(b.Channel) {
		flips = d.eccFilterSorted(flips)
	}
	if len(flips) == 0 {
		return
	}
	data = rs.bytes(d)
	for _, i := range flips {
		data[i>>3] ^= 1 << (uint(i) & 7)
	}
	d.stats.BitflipsCommitted += int64(len(flips))
}

// senseReference is the straightforward per-bit implementation that
// defines sense semantics; the fast path must match it bit for bit. It is
// retained as the oracle for the differential fuzz and golden tests and
// for ablation benchmarks.
func (d *Device) senseReference(b addr.BankAddr, bank *bankState, rs *rowState, physRow int,
	disturb, elapsedSec, tscale, thrTemp float64, retPass, distPass bool) {
	prof := d.fm.Profile(b, physRow)
	bits := d.cfg.Geometry.RowBits()
	data := rs.data

	upData, downData, hasUp, hasDown := d.neighbourData(bank, physRow)

	var thr []float32
	if distPass {
		thr, _, _ = d.fm.Thresholds(prof)
	}
	var flips []int
	quickThr := disturb / (d.cfg.Fault.CouplingBoth * thrTemp)
	for i := 0; i < bits; i++ {
		v := rowBit(data, i)
		if !faultmodel.Charged(prof.IsTrue(i), v == 1) {
			continue // discharged cells have no charge to lose
		}
		flipped := false
		if distPass && float64(thr[i]) <= quickThr {
			flipped = d.disturbFlip(thr, data, upData, downData, hasUp, hasDown, i, bits, v, disturb, thrTemp)
		}
		if !flipped && retPass {
			if elapsedSec > d.fm.RetentionSec(b, physRow, i)*tscale {
				flipped = true
			}
		}
		if flipped {
			flips = append(flips, i)
		}
	}
	if len(flips) == 0 {
		return
	}

	if d.eccEnabled(b.Channel) {
		flips = d.eccFilter(flips)
	}
	data = rs.bytes(d)
	for _, i := range flips {
		data[i>>3] ^= 1 << (uint(i) & 7)
	}
	d.stats.BitflipsCommitted += int64(len(flips))
}

// eccFilterSorted drops single-bit-per-word flips (the SEC code corrects
// them) and counts the corrections, like eccFilter, but exploits that
// flips arrive sorted: same-word flips are adjacent, so one run-length
// pass suffices — no per-sense map.
func (d *Device) eccFilterSorted(flips []int) []int {
	word := d.cfg.ECC.WordBits
	kept := flips[:0]
	for s := 0; s < len(flips); {
		e := s + 1
		w := flips[s] / word
		for e < len(flips) && flips[e]/word == w {
			e++
		}
		if e-s == 1 {
			d.stats.ECCCorrections++
		} else {
			kept = append(kept, flips[s:e]...)
		}
		s = e
	}
	return kept
}

// eccFilter drops single-bit-per-word flips (the SEC code corrects them)
// and counts the corrections. Words with two or more flips pass through.
func (d *Device) eccFilter(flips []int) []int {
	word := d.cfg.ECC.WordBits
	counts := make(map[int]int, len(flips))
	for _, i := range flips {
		counts[i/word]++
	}
	kept := flips[:0]
	for _, i := range flips {
		if counts[i/word] == 1 {
			d.stats.ECCCorrections++
			continue
		}
		kept = append(kept, i)
	}
	return kept
}
