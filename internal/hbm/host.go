package hbm

import (
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
)

// Host-side convenience operations. These compose device commands with the
// waits the timing rules require, the way a host library above the testing
// infrastructure would. The characterization pipeline proper goes through
// DRAM Bender programs (internal/bender); these helpers serve tests,
// examples and tools.

// WriteRow opens a logical row, writes the full row image, and closes it.
// data must be exactly one row long.
func WriteRow(d *Device, b addr.BankAddr, logicalRow int, data []byte) error {
	g := d.Geometry()
	if len(data) != g.RowBytes() {
		return fmt.Errorf("hbm: WriteRow of %d bytes, row holds %d: %w", len(data), g.RowBytes(), ErrAddress)
	}
	if err := openRow(d, b, logicalRow); err != nil {
		return err
	}
	n := g.ColumnBytes
	for col := 0; col < g.Columns; col++ {
		if err := d.Write(b, col, data[col*n:(col+1)*n]); err != nil {
			return err
		}
	}
	return closeRow(d, b)
}

// ReadRow opens a logical row, reads the full row image, and closes it.
// Activation senses the row, so any pending bitflips materialize here.
func ReadRow(d *Device, b addr.BankAddr, logicalRow int) ([]byte, error) {
	g := d.Geometry()
	if err := openRow(d, b, logicalRow); err != nil {
		return nil, err
	}
	out := make([]byte, 0, g.RowBytes())
	for col := 0; col < g.Columns; col++ {
		chunk, err := d.Read(b, col)
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	if err := closeRow(d, b); err != nil {
		return nil, err
	}
	return out, nil
}

// RefreshRow refreshes one row by activating and precharging it, the
// building block of the U-TRR methodology's step 2.
func RefreshRow(d *Device, b addr.BankAddr, logicalRow int) error {
	if err := openRow(d, b, logicalRow); err != nil {
		return err
	}
	return closeRow(d, b)
}

// openRow activates a row and waits until column accesses are legal.
func openRow(d *Device, b addr.BankAddr, logicalRow int) error {
	t := d.Config().Timing
	start := d.Now()
	if err := d.Activate(b, logicalRow); err != nil {
		return err
	}
	return waitUntil(d, start+t.TRCD)
}

// closeRow waits out tRAS, precharges, and waits out tRP, leaving the bank
// ready for the next activation.
func closeRow(d *Device, b addr.BankAddr) error {
	t := d.Config().Timing
	// The last activate happened at most a row's worth of column accesses
	// ago; wait until tRAS is satisfied relative to it.
	bankStart := d.lastActOf(b)
	if err := waitUntil(d, bankStart+t.TRAS); err != nil {
		return err
	}
	if err := d.Precharge(b); err != nil {
		return err
	}
	return d.AdvanceTime(t.TRP)
}

func (d *Device) lastActOf(b addr.BankAddr) int64 {
	_, bank, err := d.bankAt(b)
	if err != nil {
		return farPast
	}
	return bank.lastAct
}

func waitUntil(d *Device, deadline int64) error {
	if gap := deadline - d.Now(); gap > 0 {
		return d.AdvanceTime(gap)
	}
	return nil
}

// CountMismatches compares a read row image against the written pattern
// and returns the number of differing bits.
func CountMismatches(got, want []byte) int {
	n := 0
	for i := range got {
		d := got[i] ^ want[i]
		for d != 0 {
			d &= d - 1
			n++
		}
	}
	return n
}
