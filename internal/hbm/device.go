// Package hbm implements the simulated HBM2 DRAM stack: channels, pseudo
// channels, banks, rows, mode registers, refresh logic, on-die ECC, the
// proprietary TRR mitigation, and a picosecond-resolution command clock.
//
// The device exposes the same command-level interface a memory controller
// drives over the HBM2 interface: ACT, PRE, RD, WR, REF, and mode register
// writes, with JESD235-style timing constraints enforced strictly (a
// violating command returns an error rather than silently stalling, which
// is what a testing infrastructure wants).
//
// Physical behaviour — bitflips from RowHammer disturbance and charge
// decay — materializes when a row is sensed (activated or refreshed),
// exactly as in real DRAM: the sense amplifiers latch whatever charge
// remains and restore it, making any accumulated flips permanent.
package hbm

import (
	"errors"
	"fmt"
	"math"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/faultmodel"
	"github.com/safari-repro/hbmrh/internal/mapping"
	"github.com/safari-repro/hbmrh/internal/trr"
)

// Sentinel errors. Command errors wrap one of these, so callers can
// distinguish timing bugs in their programs from addressing mistakes.
var (
	ErrTiming  = errors.New("timing violation")
	ErrState   = errors.New("illegal bank state")
	ErrAddress = errors.New("address out of range")
)

// Mode register assignments. The paper disables on-die ECC by clearing a
// mode register bit; we model that bit here.
const (
	// MRECC is the mode register index holding the ECC enable bit.
	MRECC = 4
	// MRECCEnable is the ECC enable bit within MRECC. Set at power-up;
	// cleared by the characterization setup.
	MRECCEnable = 0x1
	// NumModeRegisters is the number of mode registers per channel.
	NumModeRegisters = 16
)

// farPast initializes timing bookkeeping so the first command of every
// kind is always legal.
const farPast = math.MinInt64 / 4

// Stats counts device activity, for tests, reports and ablations.
type Stats struct {
	Acts               int64
	Precharges         int64
	Reads              int64
	Writes             int64
	Refreshes          int64
	TRRVictimRefreshes int64
	ECCCorrections     int64
	BitflipsCommitted  int64
}

// Device is one simulated HBM2 stack.
type Device struct {
	cfg    *config.Config
	fm     *faultmodel.Model
	mapper mapping.Mapper
	layout *addr.SubarrayLayout

	now   int64 // simulated time in picoseconds
	tempC float64

	pcs      [][]*pseudoChannel // indexed [channel][pseudo channel]
	modeRegs [][]uint32         // indexed [channel][register]

	stats Stats

	// senseRef selects the reference sense implementation over the fast
	// path (testing/ablation only; both are bit-identical).
	senseRef bool
	// flipScratch is the reusable flip accumulator of the sense fast
	// path, so steady-state probing allocates nothing per sense.
	flipScratch []int
}

type pseudoChannel struct {
	banks   []*bankState
	eng     *trr.Engine
	doc     *trr.DocumentedMode
	docBank int
	lastRef int64
	refPtr  int // next physical row to be refreshed in every bank
}

type bankState struct {
	open    int // physical row latched in the row buffer, -1 when precharged
	lastAct int64
	lastPre int64
	// rows holds the materialized physical rows, indexed by physical row
	// number. The slice itself materializes on the bank's first touched
	// row; untouched banks cost nothing. Direct indexing replaced a
	// map[int]*rowState that dominated the disturb/sense hot path.
	rows []*rowState
}

// rowAt returns the materialized state of a physical row, or nil when the
// row (or the whole bank) has never been touched.
func (bk *bankState) rowAt(phys int) *rowState {
	if bk.rows == nil {
		return nil
	}
	return bk.rows[phys]
}

// rowState tracks the mutable physical condition of one row. Rows
// materialize lazily: an untouched row holds all-zero data, fully charged
// at power-up (time 0). The data image itself materializes even more
// lazily: a nil data slice means the power-up pattern (all zeros), so rows
// that only ever accumulate disturbance — every hammer victim that never
// flips — never allocate a row-sized backing array.
type rowState struct {
	data      []byte
	lastSense int64   // when charge was last restored
	disturb   float64 // disturbance units accumulated since lastSense
}

// bytes returns the row's data image, materializing the backing array on
// first real need (a write or a committed bitflip).
func (rs *rowState) bytes(d *Device) []byte {
	if rs.data == nil {
		rs.data = make([]byte, d.cfg.Geometry.RowBytes())
	}
	return rs.data
}

// New powers up a device from the given configuration.
func New(cfg *config.Config) (*Device, error) {
	fm, err := faultmodel.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("hbm: %w", err)
	}
	mapper, err := mapping.New(cfg.Mapping, cfg.Geometry.Rows)
	if err != nil {
		return nil, fmt.Errorf("hbm: %w", err)
	}
	d := &Device{
		cfg:      cfg,
		fm:       fm,
		mapper:   mapper,
		layout:   fm.Layout(),
		tempC:    cfg.Ret.RefTempC,
		senseRef: forceReferenceSense.Load(),
	}
	g := cfg.Geometry
	d.pcs = make([][]*pseudoChannel, g.Channels)
	d.modeRegs = make([][]uint32, g.Channels)
	for ch := 0; ch < g.Channels; ch++ {
		d.pcs[ch] = make([]*pseudoChannel, g.PseudoChannels)
		for pc := 0; pc < g.PseudoChannels; pc++ {
			eng, err := trr.NewEngine(cfg.TRR, g.Banks, g.Rows)
			if err != nil {
				return nil, fmt.Errorf("hbm: %w", err)
			}
			banks := make([]*bankState, g.Banks)
			for b := range banks {
				banks[b] = &bankState{
					open:    -1,
					lastAct: farPast,
					lastPre: farPast,
				}
			}
			d.pcs[ch][pc] = &pseudoChannel{
				banks:   banks,
				eng:     eng,
				doc:     trr.NewDocumentedMode(g.Rows, cfg.TRR.NeighborRadius),
				docBank: -1,
				lastRef: farPast,
			}
		}
		d.modeRegs[ch] = make([]uint32, NumModeRegisters)
		d.modeRegs[ch][MRECC] = MRECCEnable // ECC enabled at power-up
	}
	return d, nil
}

// Config returns the device configuration (treat as read-only).
func (d *Device) Config() *config.Config { return d.cfg }

// Geometry returns the device geometry.
func (d *Device) Geometry() addr.Geometry { return d.cfg.Geometry }

// Mapper exposes the in-DRAM row mapping. Real attackers must recover it
// with the reverse-engineering procedure in internal/mapping; the
// simulator exposes it for white-box tests and tooling.
func (d *Device) Mapper() mapping.Mapper { return d.mapper }

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// Now returns the simulated time in picoseconds since power-up.
func (d *Device) Now() int64 { return d.now }

// AdvanceTime moves the simulated clock forward by ps picoseconds,
// modelling host-side waits between commands.
func (d *Device) AdvanceTime(ps int64) error {
	if ps < 0 {
		return fmt.Errorf("hbm: cannot advance time by %d ps", ps)
	}
	d.now += ps
	return nil
}

// Temperature returns the ambient chip temperature in Celsius.
func (d *Device) Temperature() float64 { return d.tempC }

// SetTemperature sets the ambient chip temperature, as the thermal rig
// does. Retention times scale with the Arrhenius factor at sense time.
func (d *Device) SetTemperature(c float64) { d.tempC = c }

func (d *Device) bankAt(b addr.BankAddr) (*pseudoChannel, *bankState, error) {
	if !b.Valid(d.cfg.Geometry) {
		return nil, nil, fmt.Errorf("hbm: bank %v: %w", b, ErrAddress)
	}
	pc := d.pcs[b.Channel][b.PseudoChannel]
	return pc, pc.banks[b.Bank], nil
}

func (d *Device) row(bank *bankState, physRow int) *rowState {
	if bank.rows == nil {
		bank.rows = make([]*rowState, d.cfg.Geometry.Rows)
	}
	rs := bank.rows[physRow]
	if rs == nil {
		rs = &rowState{}
		bank.rows[physRow] = rs
	}
	return rs
}

// Activate opens a logical row: it checks tRP/tRC/tRFC, senses the row
// (materializing any accumulated bitflips and restoring charge), disturbs
// physical neighbours, and feeds the TRR sampler.
func (d *Device) Activate(b addr.BankAddr, logicalRow int) error {
	pc, bank, err := d.bankAt(b)
	if err != nil {
		return err
	}
	if logicalRow < 0 || logicalRow >= d.cfg.Geometry.Rows {
		return fmt.Errorf("hbm: activate row %d: %w", logicalRow, ErrAddress)
	}
	if bank.open != -1 {
		return fmt.Errorf("hbm: activate %v while row %d open: %w", b, bank.open, ErrState)
	}
	t := d.cfg.Timing
	switch {
	case d.now-bank.lastPre < t.TRP:
		return fmt.Errorf("hbm: activate %v violates tRP: %w", b, ErrTiming)
	case d.now-bank.lastAct < t.TRC:
		return fmt.Errorf("hbm: activate %v violates tRC: %w", b, ErrTiming)
	case d.now-pc.lastRef < t.TRFC:
		return fmt.Errorf("hbm: activate %v violates tRFC: %w", b, ErrTiming)
	}
	phys := d.mapper.ToPhysical(logicalRow)
	d.senseAndRestore(b, bank, phys, d.now)
	d.applyDisturb(b, phys, 1)
	pc.eng.ObserveActivate(b.Bank, phys)
	bank.open = phys
	bank.lastAct = d.now
	d.stats.Acts++
	d.now += t.TCK
	return nil
}

// rowPressExtra returns the additional disturbance factor (beyond the
// base 1.0 per activation) earned by holding the aggressor open for
// holdPS: the RowPress read-disturb amplification. Minimum-timing
// activations (hold = tRAS) earn nothing.
func (d *Device) rowPressExtra(holdPS int64) float64 {
	f := d.cfg.Fault
	tras := d.cfg.Timing.TRAS
	if f.RowPressGain <= 0 || holdPS <= tras {
		return 0
	}
	extra := f.RowPressGain * float64(holdPS-tras) / float64(tras)
	if max := f.RowPressMaxFactor - 1; extra > max {
		extra = max
	}
	return extra
}

// Precharge closes the open row. Precharging an idle bank is a no-op, as
// in real DRAM. Rows held open beyond tRAS impart extra RowPress
// disturbance on their neighbours, settled here where the hold time is
// known.
func (d *Device) Precharge(b addr.BankAddr) error {
	_, bank, err := d.bankAt(b)
	if err != nil {
		return err
	}
	if bank.open != -1 {
		hold := d.now - bank.lastAct
		if hold < d.cfg.Timing.TRAS {
			return fmt.Errorf("hbm: precharge %v violates tRAS: %w", b, ErrTiming)
		}
		if extra := d.rowPressExtra(hold); extra > 0 {
			d.applyDisturb(b, bank.open, extra)
		}
		bank.open = -1
		bank.lastPre = d.now
	}
	d.stats.Precharges++
	d.now += d.cfg.Timing.TCK
	return nil
}

// PrechargeAll precharges every bank in a pseudo channel.
func (d *Device) PrechargeAll(ch, pc int) error {
	if err := d.checkPC(ch, pc); err != nil {
		return err
	}
	for bank := 0; bank < d.cfg.Geometry.Banks; bank++ {
		b := addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: bank}
		state := d.pcs[ch][pc].banks[bank]
		if state.open != -1 {
			hold := d.now - state.lastAct
			if hold < d.cfg.Timing.TRAS {
				return fmt.Errorf("hbm: precharge-all %v violates tRAS: %w", b, ErrTiming)
			}
			if extra := d.rowPressExtra(hold); extra > 0 {
				d.applyDisturb(b, state.open, extra)
			}
			state.open = -1
			state.lastPre = d.now
		}
	}
	d.stats.Precharges++
	d.now += d.cfg.Timing.TCK
	return nil
}

func (d *Device) checkPC(ch, pc int) error {
	g := d.cfg.Geometry
	if ch < 0 || ch >= g.Channels || pc < 0 || pc >= g.PseudoChannels {
		return fmt.Errorf("hbm: pseudo channel ch%d.pc%d: %w", ch, pc, ErrAddress)
	}
	return nil
}

func (d *Device) columnAccess(b addr.BankAddr, col int) (*bankState, error) {
	_, bank, err := d.bankAt(b)
	if err != nil {
		return nil, err
	}
	if col < 0 || col >= d.cfg.Geometry.Columns {
		return nil, fmt.Errorf("hbm: column %d: %w", col, ErrAddress)
	}
	if bank.open == -1 {
		return nil, fmt.Errorf("hbm: column access to precharged bank %v: %w", b, ErrState)
	}
	if d.now-bank.lastAct < d.cfg.Timing.TRCD {
		return nil, fmt.Errorf("hbm: column access to %v violates tRCD: %w", b, ErrTiming)
	}
	return bank, nil
}

// Read returns the data of one column of the open row. Bitflips were
// already materialized when the row was sensed at activation.
func (d *Device) Read(b addr.BankAddr, col int) ([]byte, error) {
	out := make([]byte, d.cfg.Geometry.ColumnBytes)
	if err := d.ReadInto(b, col, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto reads one column of the open row into a caller-provided buffer
// of exactly ColumnBytes, avoiding Read's per-call allocation — the hot
// read-out path (bender.Runner) reuses one arena across a whole program.
func (d *Device) ReadInto(b addr.BankAddr, col int, dst []byte) error {
	bank, err := d.columnAccess(b, col)
	if err != nil {
		return err
	}
	n := d.cfg.Geometry.ColumnBytes
	if len(dst) != n {
		return fmt.Errorf("hbm: read into %d bytes, column holds %d: %w", len(dst), n, ErrAddress)
	}
	rs := d.row(bank, bank.open)
	if rs.data == nil {
		clear(dst) // unmaterialized row: power-up pattern
	} else {
		copy(dst, rs.data[col*n:(col+1)*n])
	}
	d.stats.Reads++
	d.now += d.cfg.Timing.TCK
	return nil
}

// Write stores data into one column of the open row, fully recharging the
// written cells.
func (d *Device) Write(b addr.BankAddr, col int, data []byte) error {
	bank, err := d.columnAccess(b, col)
	if err != nil {
		return err
	}
	n := d.cfg.Geometry.ColumnBytes
	if len(data) != n {
		return fmt.Errorf("hbm: write of %d bytes, column holds %d: %w", len(data), n, ErrAddress)
	}
	rs := d.row(bank, bank.open)
	copy(rs.bytes(d)[col*n:(col+1)*n], data)
	d.stats.Writes++
	d.now += d.cfg.Timing.TCK
	return nil
}

// Refresh issues one periodic REF to a pseudo channel: it refreshes the
// next chunk of rows in every bank, then lets the in-DRAM mitigations
// (the proprietary TRR engine and, if engaged, the documented TRR mode)
// perform their victim refreshes.
func (d *Device) Refresh(ch, pc int) error {
	if err := d.checkPC(ch, pc); err != nil {
		return err
	}
	p := d.pcs[ch][pc]
	if d.now-p.lastRef < d.cfg.Timing.TRFC {
		return fmt.Errorf("hbm: refresh ch%d.pc%d violates tRFC: %w", ch, pc, ErrTiming)
	}
	for i, bank := range p.banks {
		if bank.open != -1 {
			return fmt.Errorf("hbm: refresh ch%d.pc%d with bank %d open: %w", ch, pc, i, ErrState)
		}
	}
	g := d.cfg.Geometry
	rowsPerRef := (g.Rows + d.cfg.Timing.RefsPerWindow() - 1) / d.cfg.Timing.RefsPerWindow()
	for bi, bank := range p.banks {
		b := addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: bi}
		for k := 0; k < rowsPerRef; k++ {
			phys := (p.refPtr + k) % g.Rows
			if bank.rowAt(phys) != nil {
				d.senseAndRestore(b, bank, phys, d.now)
			}
		}
	}
	p.refPtr = (p.refPtr + rowsPerRef) % g.Rows

	// Proprietary TRR: victim refreshes every RefPeriod REFs.
	for _, vr := range p.eng.OnRefresh() {
		b := addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: vr.Bank}
		bank := p.banks[vr.Bank]
		for _, phys := range vr.Rows {
			d.senseAndRestore(b, bank, phys, d.now)
			d.stats.TRRVictimRefreshes++
		}
	}
	// Documented TRR mode, if the controller engaged it.
	if p.doc.Active() && p.docBank >= 0 {
		b := addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: p.docBank}
		bank := p.banks[p.docBank]
		for _, phys := range p.doc.OnRefresh() {
			d.senseAndRestore(b, bank, phys, d.now)
			d.stats.TRRVictimRefreshes++
		}
	}

	p.lastRef = d.now
	d.stats.Refreshes++
	d.now += d.cfg.Timing.TCK
	return nil
}

// EnterTRRMode engages the documented (JESD235) TRR mode on a pseudo
// channel: subsequent REFs refresh the neighbours of the given logical
// target rows in the given bank.
func (d *Device) EnterTRRMode(ch, pc, bank int, targets []int) error {
	if err := d.checkPC(ch, pc); err != nil {
		return err
	}
	if bank < 0 || bank >= d.cfg.Geometry.Banks {
		return fmt.Errorf("hbm: TRR mode bank %d: %w", bank, ErrAddress)
	}
	phys := make([]int, len(targets))
	for i, t := range targets {
		if t < 0 || t >= d.cfg.Geometry.Rows {
			return fmt.Errorf("hbm: TRR mode target row %d: %w", t, ErrAddress)
		}
		phys[i] = d.mapper.ToPhysical(t)
	}
	p := d.pcs[ch][pc]
	if err := p.doc.Enter(phys); err != nil {
		return fmt.Errorf("hbm: %w", err)
	}
	p.docBank = bank
	return nil
}

// ExitTRRMode disengages the documented TRR mode.
func (d *Device) ExitTRRMode(ch, pc int) error {
	if err := d.checkPC(ch, pc); err != nil {
		return err
	}
	d.pcs[ch][pc].doc.Exit()
	d.pcs[ch][pc].docBank = -1
	return nil
}

// WriteModeRegister sets a channel's mode register, e.g. clearing the ECC
// enable bit as the paper's setup does.
func (d *Device) WriteModeRegister(ch, index int, value uint32) error {
	if ch < 0 || ch >= d.cfg.Geometry.Channels || index < 0 || index >= NumModeRegisters {
		return fmt.Errorf("hbm: mode register ch%d MR%d: %w", ch, index, ErrAddress)
	}
	d.modeRegs[ch][index] = value
	d.now += d.cfg.Timing.TCK
	return nil
}

// ReadModeRegister returns a channel's mode register value.
func (d *Device) ReadModeRegister(ch, index int) (uint32, error) {
	if ch < 0 || ch >= d.cfg.Geometry.Channels || index < 0 || index >= NumModeRegisters {
		return 0, fmt.Errorf("hbm: mode register ch%d MR%d: %w", ch, index, ErrAddress)
	}
	return d.modeRegs[ch][index], nil
}

func (d *Device) eccEnabled(ch int) bool {
	return d.modeRegs[ch][MRECC]&MRECCEnable != 0
}

// applyDisturb adds scale activations' worth of disturbance from
// aggressor physRow to its physical neighbours. Disturbance does not
// cross subarray boundaries: rows at a subarray edge are adjacent to the
// sense amplifier stripe, not to another row — the property the paper
// exploits to reverse-engineer subarray boundaries.
//
// When VerticalCoupling is configured (the paper's cross-channel
// interference question), a fraction of the distance-1 disturbance leaks
// to the same physical row of the vertically adjacent channels.
func (d *Device) applyDisturb(b addr.BankAddr, physRow int, scale float64) {
	bank := d.pcs[b.Channel][b.PseudoChannel].banks[b.Bank]
	radius := d.fm.BlastRadius()
	rows := d.cfg.Geometry.Rows
	for dist := 1; dist <= radius; dist++ {
		w := d.fm.DistanceWeight(dist) * scale
		if victim := physRow - dist; victim >= 0 && d.layout.SameSubarray(physRow, victim) {
			d.row(bank, victim).disturb += w
		}
		if victim := physRow + dist; victim < rows && d.layout.SameSubarray(physRow, victim) {
			d.row(bank, victim).disturb += w
		}
	}
	if vc := d.cfg.Fault.VerticalCoupling; vc > 0 {
		w := vc * d.fm.DistanceWeight(1) * scale
		for vch := b.Channel - 2; vch <= b.Channel+2; vch += 4 {
			if vch < 0 || vch >= d.cfg.Geometry.Channels {
				continue
			}
			vbank := d.pcs[vch][b.PseudoChannel].banks[b.Bank]
			d.row(vbank, physRow).disturb += w
		}
	}
}

// HammerPair performs n double-sided hammers: n alternating activate+
// precharge pairs of the two logical aggressor rows at minimum timing.
// It is the bulk equivalent of the ACT/PRE loop a DRAM Bender program
// would run, applied in one step for simulation speed; timing-wise it
// occupies n*2*tRC.
func (d *Device) HammerPair(b addr.BankAddr, rowA, rowB, n int) error {
	return d.hammer(b, [2]int{rowA, rowB}, 2, n, d.cfg.Timing.TRAS)
}

// HammerSingle performs n single-sided hammers (n activations) of one
// logical aggressor row at minimum timing, occupying n*tRC.
func (d *Device) HammerSingle(b addr.BankAddr, row, n int) error {
	return d.hammer(b, [2]int{row}, 1, n, d.cfg.Timing.TRAS)
}

// HammerPairHold is HammerPair with each activation held open for holdPS
// (>= tRAS) before its precharge, accumulating RowPress amplification.
// Each activation occupies holdPS+tRP.
func (d *Device) HammerPairHold(b addr.BankAddr, rowA, rowB, n int, holdPS int64) error {
	return d.hammer(b, [2]int{rowA, rowB}, 2, n, holdPS)
}

// HammerSingleHold is HammerSingle with a per-activation hold time.
func (d *Device) HammerSingleHold(b addr.BankAddr, row, n int, holdPS int64) error {
	return d.hammer(b, [2]int{row}, 1, n, holdPS)
}

// hammer applies a one- or two-aggressor hammer burst. Aggressors arrive
// in a fixed-size array (never more than two) so the hot probe loop stays
// allocation-free.
func (d *Device) hammer(b addr.BankAddr, logicalRows [2]int, nrows, n int, holdPS int64) error {
	pc, bank, err := d.bankAt(b)
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("hbm: hammer count %d must be positive: %w", n, ErrAddress)
	}
	if holdPS < d.cfg.Timing.TRAS {
		return fmt.Errorf("hbm: hammer hold %d ps violates tRAS: %w", holdPS, ErrTiming)
	}
	if bank.open != -1 {
		return fmt.Errorf("hbm: hammer %v while row %d open: %w", b, bank.open, ErrState)
	}
	t := d.cfg.Timing
	switch {
	case d.now-bank.lastPre < t.TRP:
		return fmt.Errorf("hbm: hammer %v violates tRP: %w", b, ErrTiming)
	case d.now-bank.lastAct < t.TRC:
		return fmt.Errorf("hbm: hammer %v violates tRC: %w", b, ErrTiming)
	case d.now-pc.lastRef < t.TRFC:
		return fmt.Errorf("hbm: hammer %v violates tRFC: %w", b, ErrTiming)
	}
	var physArr [2]int
	phys := physArr[:nrows]
	for i, r := range logicalRows[:nrows] {
		if r < 0 || r >= d.cfg.Geometry.Rows {
			return fmt.Errorf("hbm: hammer row %d: %w", r, ErrAddress)
		}
		phys[i] = d.mapper.ToPhysical(r)
		for j := 0; j < i; j++ {
			if phys[j] == phys[i] {
				// Boxing the array (not a slice of the parameter) keeps the
				// aggressor array off the heap on the no-error path; only
				// nrows==2 can reach here, so it renders identically.
				return fmt.Errorf("hbm: hammer rows %v map to the same physical row: %w", logicalRows, ErrAddress)
			}
		}
	}

	// Each aggressor is sensed on its first activation: accumulated
	// faults materialize and its decay clock resets.
	for _, p := range phys {
		d.senseAndRestore(b, bank, p, d.now)
	}
	// Per-activation disturbance: the base unit plus any RowPress
	// amplification from holding the row open beyond tRAS.
	perAct := 1 + d.rowPressExtra(holdPS)
	for _, p := range phys {
		d.applyDisturb(b, p, float64(n)*perAct)
		pc.eng.ObserveActivate(b.Bank, p)
	}
	// The aggressors alternate, so each is re-sensed every other
	// activation: whatever disturbance they receive from each other never
	// accumulates. Clear it and stamp their charge as restored at the end
	// of the burst. The only residue is from the final round: aggressors
	// activated after row i's last activation each disturb it once more.
	actPeriod := holdPS + t.TRP
	end := d.now + int64(n)*int64(nrows)*actPeriod
	for _, p := range phys {
		rs := d.row(bank, p)
		rs.disturb = 0
		rs.lastSense = end
	}
	for i, p := range phys {
		for _, q := range phys[i+1:] {
			dist := q - p
			if dist < 0 {
				dist = -dist
			}
			if d.layout.SameSubarray(p, q) {
				d.row(bank, p).disturb += d.fm.DistanceWeight(dist) * perAct
			}
		}
	}
	d.stats.Acts += int64(n * nrows)
	d.stats.Precharges += int64(n * nrows)
	// Match the explicit loop's bookkeeping: its final iteration issues
	// the last ACT at end-actPeriod and the last PRE at end-tRP (the
	// trailing tRP wait is part of the loop body).
	d.now = end
	bank.lastAct = end - actPeriod
	bank.lastPre = end - t.TRP
	bank.open = -1
	return nil
}
