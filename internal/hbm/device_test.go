package hbm

import (
	"bytes"
	"errors"
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

func newDevice(t testing.TB, cfg *config.Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func bankAddr(ch, pc, ba int) addr.BankAddr {
	return addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: ba}
}

// disableECC clears the ECC mode register bit on every channel, as the
// paper's experimental setup does before characterization.
func disableECC(t testing.TB, d *Device) {
	t.Helper()
	for ch := 0; ch < d.Geometry().Channels; ch++ {
		if err := d.WriteModeRegister(ch, MRECC, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func rowPattern(d *Device, b byte) []byte {
	return bytes.Repeat([]byte{b}, d.Geometry().RowBytes())
}

// doubleSidedSetup writes victim/aggressor data around the physical row
// physVictim and returns the logical addresses (victim, below, above).
func doubleSidedSetup(t *testing.T, d *Device, b addr.BankAddr, physVictim int, victim, aggr byte) (int, int, int) {
	t.Helper()
	m := d.Mapper()
	lv, la, lb := m.ToLogical(physVictim), m.ToLogical(physVictim-1), m.ToLogical(physVictim+1)
	for r, pat := range map[int]byte{lv: victim, la: aggr, lb: aggr} {
		if err := WriteRow(d, b, r, rowPattern(d, pat)); err != nil {
			t.Fatal(err)
		}
	}
	return lv, la, lb
}

func TestPowerUpReadsZero(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	got, err := ReadRow(d, bankAddr(0, 0, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("byte %d = %#x at power-up, want 0", i, v)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	b := bankAddr(3, 1, 2)
	want := make([]byte, d.Geometry().RowBytes())
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := WriteRow(d, b, 100, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRow(d, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("row data corrupted without any fault stimulus")
	}
}

func TestBankStateMachineErrors(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	b := bankAddr(0, 0, 0)
	if err := d.Activate(b, 10); err != nil {
		t.Fatal(err)
	}
	// Activating an already-open bank is illegal.
	if err := d.Activate(b, 11); !errors.Is(err, ErrState) {
		t.Fatalf("double activate: err = %v, want ErrState", err)
	}
	// Column access before tRCD is a timing violation.
	if _, err := d.Read(b, 0); !errors.Is(err, ErrTiming) {
		t.Fatalf("early read: err = %v, want ErrTiming", err)
	}
	// Precharge before tRAS is a timing violation.
	if err := d.Precharge(b); !errors.Is(err, ErrTiming) {
		t.Fatalf("early precharge: err = %v, want ErrTiming", err)
	}
	// Refresh with a bank open is illegal.
	if err := d.AdvanceTime(d.Config().Timing.TRFC); err != nil {
		t.Fatal(err)
	}
	if err := d.Refresh(0, 0); !errors.Is(err, ErrState) {
		t.Fatalf("refresh with open bank: err = %v, want ErrState", err)
	}
}

func TestColumnAccessOnPrechargedBank(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	if _, err := d.Read(bankAddr(0, 0, 0), 0); !errors.Is(err, ErrState) {
		t.Fatalf("read on precharged bank: err = %v, want ErrState", err)
	}
}

func TestAddressValidation(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	g := d.Geometry()
	if err := d.Activate(bankAddr(g.Channels, 0, 0), 0); !errors.Is(err, ErrAddress) {
		t.Fatal("bad channel accepted")
	}
	if err := d.Activate(bankAddr(0, 0, 0), g.Rows); !errors.Is(err, ErrAddress) {
		t.Fatal("bad row accepted")
	}
	if err := d.HammerPair(bankAddr(0, 0, 0), 5, 5, 10); !errors.Is(err, ErrAddress) {
		t.Fatal("hammering the same physical row twice accepted")
	}
	if err := d.HammerPair(bankAddr(0, 0, 0), 5, 7, 0); !errors.Is(err, ErrAddress) {
		t.Fatal("zero hammer count accepted")
	}
	if _, err := d.ReadModeRegister(0, NumModeRegisters); !errors.Is(err, ErrAddress) {
		t.Fatal("bad mode register index accepted")
	}
}

func TestTRPEnforcedAfterPrecharge(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	b := bankAddr(0, 0, 0)
	tm := d.Config().Timing
	if err := d.Activate(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AdvanceTime(tm.TRAS); err != nil {
		t.Fatal(err)
	}
	if err := d.Precharge(b); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 2); !errors.Is(err, ErrTiming) {
		t.Fatalf("activate before tRP: err = %v, want ErrTiming", err)
	}
	if err := d.AdvanceTime(tm.TRP); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(b, 2); err != nil {
		t.Fatalf("activate after tRP: %v", err)
	}
}

func TestModeRegisters(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	v, err := d.ReadModeRegister(2, MRECC)
	if err != nil {
		t.Fatal(err)
	}
	if v&MRECCEnable == 0 {
		t.Fatal("ECC must be enabled at power-up (the paper explicitly disables it)")
	}
	if err := d.WriteModeRegister(2, MRECC, 0); err != nil {
		t.Fatal(err)
	}
	v, err = d.ReadModeRegister(2, MRECC)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("MRECC = %#x after clear, want 0", v)
	}
}

// midSubarrayRow returns a physical row in the middle of an interior
// subarray, where RowHammer thresholds are lowest.
func midSubarrayRow(d *Device, sa int) int {
	l := d.fm.Layout()
	return l.Start(sa) + l.Size(sa)/2
}

func TestDoubleSidedHammerFlipsVictim(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	disableECC(t, d)
	b := bankAddr(7, 0, 0) // channel 7: the most vulnerable channel
	phys := midSubarrayRow(d, 1)
	lv, la, lb := doubleSidedSetup(t, d, b, phys, 0xFF, 0x00)
	if err := d.HammerPair(b, la, lb, 256*1024); err != nil {
		t.Fatal(err)
	}
	if err := d.AdvanceTime(cfg.Timing.TRP); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRow(d, b, lv)
	if err != nil {
		t.Fatal(err)
	}
	flips := CountMismatches(got, rowPattern(d, 0xFF))
	if flips == 0 {
		t.Fatal("256K double-sided hammers induced no bitflips in channel 7")
	}
	// All flips must be charge loss: 1 -> 0 for the 0xFF victim pattern
	// means no bit may be set that was not set before (none were clear).
	for i, v := range got {
		if v&^0xFF != 0 {
			t.Fatalf("byte %d gained bits: %#x", i, v)
		}
	}
	// Aggressors are sensed every activation and must be intact.
	for _, r := range []int{la, lb} {
		gotA, err := ReadRow(d, b, r)
		if err != nil {
			t.Fatal(err)
		}
		if n := CountMismatches(gotA, rowPattern(d, 0x00)); n != 0 {
			t.Fatalf("aggressor row %d has %d flips; aggressors self-refresh", r, n)
		}
	}
}

func TestHammerBelowThresholdFlipsNothing(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	disableECC(t, d)
	b := bankAddr(7, 0, 0)
	phys := midSubarrayRow(d, 1)
	lv, la, lb := doubleSidedSetup(t, d, b, phys, 0xFF, 0x00)
	// HCFloor is the absolute minimum threshold: hammering below it can
	// never flip anything.
	if err := d.HammerPair(b, la, lb, int(cfg.Fault.HCFloor)-1); err != nil {
		t.Fatal(err)
	}
	if err := d.AdvanceTime(cfg.Timing.TRP); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRow(d, b, lv)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountMismatches(got, rowPattern(d, 0xFF)); n != 0 {
		t.Fatalf("%d flips below the absolute threshold floor", n)
	}
}

func TestDisturbanceDoesNotCrossSubarrayBoundary(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	disableECC(t, d)
	b := bankAddr(7, 0, 0)
	l := d.fm.Layout()
	edge := l.End(0) - 1 // last physical row of subarray 0
	m := d.Mapper()
	if err := d.HammerSingle(b, m.ToLogical(edge), 300000); err != nil {
		t.Fatal(err)
	}
	// The row across the boundary must have accumulated no disturbance.
	bank := d.pcs[b.Channel][b.PseudoChannel].banks[b.Bank]
	if rs := bank.rowAt(edge + 1); rs != nil && rs.disturb != 0 {
		t.Fatalf("row %d across the subarray boundary accumulated %v disturbance", edge+1, rs.disturb)
	}
	// The in-subarray neighbour must have.
	rs := bank.rowAt(edge - 1)
	if rs == nil || rs.disturb == 0 {
		t.Fatal("in-subarray neighbour accumulated no disturbance")
	}
}

func TestHammerPairMatchesExplicitActPreLoop(t *testing.T) {
	cfg := config.SmallChip()
	tm := cfg.Timing
	const n = 10
	b := bankAddr(4, 1, 1)
	phys := midSubarrayRow(newDevice(t, cfg), 2)

	bulk := newDevice(t, cfg)
	la := bulk.Mapper().ToLogical(phys - 1)
	lb := bulk.Mapper().ToLogical(phys + 1)
	if err := bulk.HammerPair(b, la, lb, n); err != nil {
		t.Fatal(err)
	}

	loop := newDevice(t, cfg)
	for i := 0; i < n; i++ {
		for _, r := range []int{la, lb} {
			// Hold each row open for exactly tRAS (the command cycle
			// plus tRAS-tCK), as the program builder emits, so no
			// RowPress amplification accrues.
			if err := loop.Activate(b, r); err != nil {
				t.Fatal(err)
			}
			if err := loop.AdvanceTime(tm.TRAS - tm.TCK); err != nil {
				t.Fatal(err)
			}
			if err := loop.Precharge(b); err != nil {
				t.Fatal(err)
			}
			if err := loop.AdvanceTime(tm.TRP - tm.TCK); err != nil {
				t.Fatal(err)
			}
		}
	}

	bb := bulk.pcs[b.Channel][b.PseudoChannel].banks[b.Bank]
	lb2 := loop.pcs[b.Channel][b.PseudoChannel].banks[b.Bank]
	for phys, rsLoop := range lb2.rows {
		if rsLoop == nil {
			continue
		}
		var bulkDisturb float64
		if rsBulk := bb.rowAt(phys); rsBulk != nil {
			bulkDisturb = rsBulk.disturb
		}
		if diff := rsLoop.disturb - bulkDisturb; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("row %d: loop disturb %v, bulk disturb %v", phys, rsLoop.disturb, bulkDisturb)
		}
	}
}

func TestECCReducesObservedFlips(t *testing.T) {
	cfg := config.SmallChip()
	run := func(eccOn bool) (int, Stats) {
		d := newDevice(t, cfg)
		if !eccOn {
			disableECC(t, d)
		}
		b := bankAddr(7, 0, 0)
		phys := midSubarrayRow(d, 1)
		lv, la, lb := doubleSidedSetup(t, d, b, phys, 0xFF, 0x00)
		if err := d.HammerPair(b, la, lb, 80000); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(cfg.Timing.TRP); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRow(d, b, lv)
		if err != nil {
			t.Fatal(err)
		}
		return CountMismatches(got, rowPattern(d, 0xFF)), d.Stats()
	}
	offFlips, _ := run(false)
	onFlips, onStats := run(true)
	if offFlips == 0 {
		t.Skip("no flips at this hammer count; cannot compare ECC effect")
	}
	if onFlips > offFlips {
		t.Fatalf("ECC on produced more flips (%d) than off (%d)", onFlips, offFlips)
	}
	if onStats.ECCCorrections == 0 && onFlips == offFlips {
		t.Fatal("ECC neither corrected nor changed anything")
	}
}

func TestTRRMitigatesInterleavedHammering(t *testing.T) {
	cfg := config.SmallChip()
	tm := cfg.Timing

	run := func(withRefs bool) int {
		d := newDevice(t, cfg)
		disableECC(t, d)
		b := bankAddr(7, 0, 0)
		phys := midSubarrayRow(d, 1)
		lv, la, lb := doubleSidedSetup(t, d, b, phys, 0xFF, 0x00)
		const chunks, perChunk = 64, 4096
		for i := 0; i < chunks; i++ {
			if err := d.HammerPair(b, la, lb, perChunk); err != nil {
				t.Fatal(err)
			}
			if withRefs {
				if err := d.AdvanceTime(tm.TRFC); err != nil {
					t.Fatal(err)
				}
				if err := d.Refresh(b.Channel, b.PseudoChannel); err != nil {
					t.Fatal(err)
				}
				if err := d.AdvanceTime(tm.TRFC); err != nil {
					t.Fatal(err)
				}
			} else if err := d.AdvanceTime(tm.TRP); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.AdvanceTime(tm.TRP); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRow(d, b, lv)
		if err != nil {
			t.Fatal(err)
		}
		return CountMismatches(got, rowPattern(d, 0xFF))
	}

	without := run(false)
	with := run(true)
	if without == 0 {
		t.Fatal("hammering with refresh disabled should flip bits")
	}
	if with >= without {
		t.Fatalf("TRR did not mitigate: %d flips with REFs, %d without", with, without)
	}
}

func TestRetentionFailuresAppearAfterLongWait(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	disableECC(t, d)
	b := bankAddr(0, 0, 0)
	const row = 200
	if err := WriteRow(d, b, row, rowPattern(d, 0xFF)); err != nil {
		t.Fatal(err)
	}
	// Wait far beyond the median retention time (30 s).
	if err := d.AdvanceTime(300e12); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRow(d, b, row)
	if err != nil {
		t.Fatal(err)
	}
	flips := CountMismatches(got, rowPattern(d, 0xFF))
	if flips == 0 {
		t.Fatal("no retention failures after 300 s without refresh")
	}
	// A second read immediately after must be stable: the first
	// activation restored the (now corrupted) data.
	again, err := ReadRow(d, b, row)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatal("row changed between consecutive reads; sense must restore")
	}
}

func TestHigherTemperatureAcceleratesRetentionLoss(t *testing.T) {
	cfg := config.SmallChip()
	countAfter := func(tempC float64) int {
		d := newDevice(t, cfg)
		disableECC(t, d)
		d.SetTemperature(tempC)
		b := bankAddr(0, 0, 0)
		if err := WriteRow(d, b, 300, rowPattern(d, 0xFF)); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(40e12); err != nil { // 40 s
			t.Fatal(err)
		}
		got, err := ReadRow(d, b, 300)
		if err != nil {
			t.Fatal(err)
		}
		return CountMismatches(got, rowPattern(d, 0xFF))
	}
	cool := countAfter(65)
	hot := countAfter(105)
	if hot <= cool {
		t.Fatalf("retention failures at 105C (%d) not above 65C (%d)", hot, cool)
	}
}

func TestRefreshPreventsRetentionLoss(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	disableECC(t, d)
	b := bankAddr(0, 0, 0)
	const row = 64
	if err := WriteRow(d, b, row, rowPattern(d, 0xAA)); err != nil {
		t.Fatal(err)
	}
	// Refresh the row every 100 ms (below the retention floor) for 5 s
	// via explicit ACT/PRE; no cell can decay between refreshes.
	for i := 0; i < 50; i++ {
		if err := d.AdvanceTime(100e9); err != nil {
			t.Fatal(err)
		}
		if err := RefreshRow(d, b, row); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadRow(d, b, row)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountMismatches(got, rowPattern(d, 0xAA)); n != 0 {
		t.Fatalf("%d retention failures despite 2 s refresh cadence", n)
	}
}

func TestDeterminismAcrossDevices(t *testing.T) {
	cfg := config.SmallChip()
	run := func() []byte {
		d := newDevice(t, cfg)
		disableECC(t, d)
		b := bankAddr(6, 1, 3)
		phys := midSubarrayRow(d, 1)
		lv, la, lb := doubleSidedSetup(t, d, b, phys, 0x55, 0xAA)
		if err := d.HammerPair(b, la, lb, 200000); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(cfg.Timing.TRP); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRow(d, b, lv)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identically-seeded devices diverged under identical stimulus")
	}
}

func TestStatsCounters(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	b := bankAddr(0, 0, 0)
	if err := WriteRow(d, b, 1, rowPattern(d, 0x0F)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRow(d, b, 1); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	g := d.Geometry()
	if s.Acts != 2 || s.Precharges != 2 {
		t.Errorf("acts=%d precharges=%d, want 2 each", s.Acts, s.Precharges)
	}
	if s.Writes != int64(g.Columns) || s.Reads != int64(g.Columns) {
		t.Errorf("writes=%d reads=%d, want %d each", s.Writes, s.Reads, g.Columns)
	}
}

func TestDocumentedTRRModeProtectsTargets(t *testing.T) {
	cfg := config.SmallChip()
	tm := cfg.Timing
	d := newDevice(t, cfg)
	disableECC(t, d)
	b := bankAddr(7, 0, 0)
	phys := midSubarrayRow(d, 1)
	lv, la, lb := doubleSidedSetup(t, d, b, phys, 0xFF, 0x00)

	// Engage the documented TRR mode naming one aggressor as the target:
	// each REF then refreshes the aggressor's neighbours (the victim).
	if err := d.EnterTRRMode(b.Channel, b.PseudoChannel, b.Bank, []int{la}); err != nil {
		t.Fatal(err)
	}
	const chunks, perChunk = 64, 4096
	for i := 0; i < chunks; i++ {
		if err := d.HammerPair(b, la, lb, perChunk); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRFC); err != nil {
			t.Fatal(err)
		}
		if err := d.Refresh(b.Channel, b.PseudoChannel); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRFC); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadRow(d, b, lv)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountMismatches(got, rowPattern(d, 0xFF)); n != 0 {
		t.Fatalf("documented TRR mode left %d flips; every REF refreshes the victim", n)
	}
	if err := d.ExitTRRMode(b.Channel, b.PseudoChannel); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshRequiresTRFCSpacing(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	if err := d.Refresh(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Refresh(0, 0); !errors.Is(err, ErrTiming) {
		t.Fatalf("back-to-back REF: err = %v, want ErrTiming", err)
	}
}

func TestWriteRowRejectsWrongLength(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	err := WriteRow(d, bankAddr(0, 0, 0), 0, []byte{1, 2, 3})
	if !errors.Is(err, ErrAddress) {
		t.Fatalf("err = %v, want ErrAddress", err)
	}
}

func TestCountMismatches(t *testing.T) {
	if n := CountMismatches([]byte{0xFF, 0x00}, []byte{0xFE, 0x01}); n != 2 {
		t.Fatalf("CountMismatches = %d, want 2", n)
	}
	if n := CountMismatches([]byte{0xAB}, []byte{0xAB}); n != 0 {
		t.Fatalf("CountMismatches = %d, want 0", n)
	}
}

func TestBankIsolation(t *testing.T) {
	// Writing the same row index through different channels, pseudo
	// channels and banks must never alias.
	d := newDevice(t, config.SmallChip())
	g := d.Geometry()
	const row = 77
	fill := byte(1)
	type loc struct{ ch, pc, ba int }
	var locs []loc
	for _, ch := range []int{0, 3, 7} {
		for pc := 0; pc < g.PseudoChannels; pc++ {
			for _, ba := range []int{0, g.Banks - 1} {
				locs = append(locs, loc{ch, pc, ba})
			}
		}
	}
	for i, l := range locs {
		b := bankAddr(l.ch, l.pc, l.ba)
		if err := WriteRow(d, b, row, rowPattern(d, fill+byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, l := range locs {
		b := bankAddr(l.ch, l.pc, l.ba)
		got, err := ReadRow(d, b, row)
		if err != nil {
			t.Fatal(err)
		}
		if n := CountMismatches(got, rowPattern(d, fill+byte(i))); n != 0 {
			t.Fatalf("%v row %d aliased with another bank (%d flips)", b, row, n)
		}
	}
}

func TestPrechargeAllClosesOpenRows(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	tm := d.Config().Timing
	for ba := 0; ba < 3; ba++ {
		if err := d.Activate(bankAddr(1, 0, ba), 10+ba); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AdvanceTime(tm.TRAS); err != nil {
		t.Fatal(err)
	}
	if err := d.PrechargeAll(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.AdvanceTime(tm.TRP); err != nil {
		t.Fatal(err)
	}
	// All banks must re-activate cleanly (they were closed).
	for ba := 0; ba < 3; ba++ {
		if err := d.Activate(bankAddr(1, 0, ba), 20+ba); err != nil {
			t.Fatalf("bank %d not precharged: %v", ba, err)
		}
	}
}

func TestHammerDifferentLogicalSamePhysicalRejected(t *testing.T) {
	// With the xor-swizzle mapping, two different logical rows can never
	// collide physically (it is a bijection), so construct the collision
	// directly through the identity mapping.
	cfg := config.SmallChip()
	cfg.Mapping = config.MappingDirect
	d := newDevice(t, cfg)
	if err := d.HammerPair(bankAddr(0, 0, 0), 9, 9, 5); !errors.Is(err, ErrAddress) {
		t.Fatalf("err = %v, want ErrAddress for same-row pair", err)
	}
}
