package hbm

import (
	"errors"
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

// Tests for the future-work extensions: RowPress (aggressor-on-time
// amplification), temperature sensitivity of RowHammer thresholds, and
// cross-channel (vertical) coupling.

func TestRowPressAmplifiesDisturbance(t *testing.T) {
	cfg := config.SmallChip()
	tm := cfg.Timing

	flipsAtHold := func(hold int64) int {
		d := newDevice(t, cfg)
		disableECC(t, d)
		b := bankAddr(0, 0, 0) // the *least* vulnerable channel
		phys := midSubarrayRow(d, 1)
		lv, la, lb := doubleSidedSetup(t, d, b, phys, 0x00, 0xFF)
		// Far below normal HCfirst: only RowPress amplification can
		// make these few activations flip anything.
		if err := d.HammerPairHold(b, la, lb, 8000, hold); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRP); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRow(d, b, lv)
		if err != nil {
			t.Fatal(err)
		}
		return CountMismatches(got, rowPattern(d, 0x00))
	}

	base := flipsAtHold(tm.TRAS)
	pressed := flipsAtHold(tm.TRAS * 40)
	if base != 0 {
		t.Fatalf("8K minimum-timing hammers already flip %d bits; test premise broken", base)
	}
	if pressed == 0 {
		t.Fatal("holding aggressors open 40x tRAS did not amplify disturbance (RowPress)")
	}
}

func TestRowPressMonotoneInHoldTime(t *testing.T) {
	cfg := config.SmallChip()
	tm := cfg.Timing
	prev := -1
	for _, mult := range []int64{1, 8, 32, 64} {
		d := newDevice(t, cfg)
		disableECC(t, d)
		b := bankAddr(7, 0, 0)
		phys := midSubarrayRow(d, 1)
		lv, la, lb := doubleSidedSetup(t, d, b, phys, 0xFF, 0x00)
		if err := d.HammerPairHold(b, la, lb, 20000, tm.TRAS*mult); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRP); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRow(d, b, lv)
		if err != nil {
			t.Fatal(err)
		}
		flips := CountMismatches(got, rowPattern(d, 0xFF))
		if flips < prev {
			t.Fatalf("flips decreased when hold grew to %dx tRAS: %d -> %d", mult, prev, flips)
		}
		prev = flips
	}
	if prev == 0 {
		t.Fatal("no flips even at 64x tRAS hold")
	}
}

func TestRowPressCapsAtMaxFactor(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	tras := cfg.Timing.TRAS
	uncapped := d.rowPressExtra(tras * 10)
	if uncapped <= 0 {
		t.Fatal("10x tRAS hold earned no amplification")
	}
	capped := d.rowPressExtra(tras * 10000)
	if capped != cfg.Fault.RowPressMaxFactor-1 {
		t.Fatalf("extreme hold gives extra %v, want cap %v", capped, cfg.Fault.RowPressMaxFactor-1)
	}
}

func TestRowPressZeroAtMinimumTiming(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	if got := d.rowPressExtra(d.cfg.Timing.TRAS); got != 0 {
		t.Fatalf("minimum-timing hold earns %v extra; Section 4 calibration depends on 0", got)
	}
}

func TestHammerHoldBelowTRASRejected(t *testing.T) {
	d := newDevice(t, config.SmallChip())
	err := d.HammerPairHold(bankAddr(0, 0, 0), 5, 7, 10, d.cfg.Timing.TRAS-1)
	if !errors.Is(err, ErrTiming) {
		t.Fatalf("err = %v, want ErrTiming", err)
	}
}

func TestExplicitLongHoldMatchesBulkPress(t *testing.T) {
	cfg := config.SmallChip()
	tm := cfg.Timing
	const n = 12
	hold := tm.TRAS * 5
	b := bankAddr(4, 1, 1)
	phys := midSubarrayRow(newDevice(t, cfg), 2)

	bulk := newDevice(t, cfg)
	la := bulk.Mapper().ToLogical(phys - 1)
	lb := bulk.Mapper().ToLogical(phys + 1)
	if err := bulk.HammerPairHold(b, la, lb, n, hold); err != nil {
		t.Fatal(err)
	}

	loop := newDevice(t, cfg)
	for i := 0; i < n; i++ {
		for _, r := range []int{la, lb} {
			if err := loop.Activate(b, r); err != nil {
				t.Fatal(err)
			}
			if err := loop.AdvanceTime(hold - tm.TCK); err != nil {
				t.Fatal(err)
			}
			if err := loop.Precharge(b); err != nil {
				t.Fatal(err)
			}
			if err := loop.AdvanceTime(tm.TRP - tm.TCK); err != nil {
				t.Fatal(err)
			}
		}
	}

	bb := bulk.pcs[b.Channel][b.PseudoChannel].banks[b.Bank]
	lb2 := loop.pcs[b.Channel][b.PseudoChannel].banks[b.Bank]
	for phys, rsLoop := range lb2.rows {
		if rsLoop == nil {
			continue
		}
		var bulkDisturb float64
		if rsBulk := bb.rowAt(phys); rsBulk != nil {
			bulkDisturb = rsBulk.disturb
		}
		if diff := rsLoop.disturb - bulkDisturb; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("row %d: loop disturb %v, bulk disturb %v", phys, rsLoop.disturb, bulkDisturb)
		}
	}
	if bulk.Now() != loop.Now() {
		t.Errorf("clocks diverge: bulk %d, loop %d", bulk.Now(), loop.Now())
	}
}

func TestHotterChipFlipsMoreUnderHammering(t *testing.T) {
	cfg := config.SmallChip()
	flipsAt := func(tempC float64) int {
		d := newDevice(t, cfg)
		disableECC(t, d)
		d.SetTemperature(tempC)
		b := bankAddr(7, 0, 0)
		phys := midSubarrayRow(d, 1)
		lv, la, lb := doubleSidedSetup(t, d, b, phys, 0xFF, 0x00)
		if err := d.HammerPair(b, la, lb, 200000); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(cfg.Timing.TRP); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRow(d, b, lv)
		if err != nil {
			t.Fatal(err)
		}
		return CountMismatches(got, rowPattern(d, 0xFF))
	}
	cool := flipsAt(55)
	hot := flipsAt(95)
	if hot <= cool {
		t.Fatalf("RowHammer flips at 95C (%d) not above 55C (%d); thresholds must shrink when hot", hot, cool)
	}
}

func TestVerticalCouplingOffByDefault(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	b := bankAddr(4, 0, 0)
	phys := midSubarrayRow(d, 1)
	la := d.Mapper().ToLogical(phys)
	if err := d.HammerSingle(b, la, 300000); err != nil {
		t.Fatal(err)
	}
	// The same row of the vertically adjacent channels must be untouched.
	for _, vch := range []int{2, 6} {
		vbank := d.pcs[vch][0].banks[0]
		if rs := vbank.rowAt(phys); rs != nil && rs.disturb != 0 {
			t.Fatalf("channel %d row %d disturbed %v with coupling disabled", vch, phys, rs.disturb)
		}
	}
}

func TestVerticalCouplingDisturbsAdjacentDies(t *testing.T) {
	cfg := config.SmallChip()
	cfg.Fault.VerticalCoupling = 0.2
	d := newDevice(t, cfg)
	b := bankAddr(4, 0, 0)
	phys := midSubarrayRow(d, 1)
	la := d.Mapper().ToLogical(phys)
	if err := d.HammerSingle(b, la, 100000); err != nil {
		t.Fatal(err)
	}
	for _, vch := range []int{2, 6} {
		vbank := d.pcs[vch][0].banks[0]
		rs := vbank.rowAt(phys)
		if rs == nil || rs.disturb == 0 {
			t.Fatalf("channel %d row %d not disturbed despite vertical coupling", vch, phys)
		}
		// 100K activations x 0.5 x 0.2 = 10K units.
		if want := 100000 * 0.5 * 0.2; rs.disturb < want*0.99 || rs.disturb > want*1.01 {
			t.Fatalf("channel %d disturb = %v, want ~%v", vch, rs.disturb, want)
		}
	}
	// Channels on the same die (+/-1) must be untouched.
	for _, sch := range []int{3, 5} {
		sbank := d.pcs[sch][0].banks[0]
		if rs := sbank.rowAt(phys); rs != nil && rs.disturb != 0 {
			t.Fatalf("same-die channel %d disturbed; coupling is vertical only", sch)
		}
	}
}

func TestVerticalCouplingCanInduceCrossChannelFlips(t *testing.T) {
	// The paper's future-work question: can hammering one channel flip
	// bits in another? With strong synthetic coupling, yes.
	cfg := config.SmallChip()
	cfg.Fault.VerticalCoupling = 0.6
	d := newDevice(t, cfg)
	disableECC(t, d)
	phys := midSubarrayRow(d, 1)
	victim := bankAddr(5, 0, 0) // die 2; aggressor die 3 via ch7
	lv := d.Mapper().ToLogical(phys)
	if err := WriteRow(d, victim, lv, rowPattern(d, 0xFF)); err != nil {
		t.Fatal(err)
	}
	aggrBank := bankAddr(7, 0, 0)
	if err := d.HammerSingle(aggrBank, lv, 1000000); err != nil {
		t.Fatal(err)
	}
	if err := d.AdvanceTime(cfg.Timing.TRP); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRow(d, victim, lv)
	if err != nil {
		t.Fatal(err)
	}
	if CountMismatches(got, rowPattern(d, 0xFF)) == 0 {
		t.Fatal("no cross-channel flips despite strong vertical coupling")
	}
}

// TestRandomAccessIntegrityProperty: any timing-correct sequence of row
// writes and reads, confined to a refresh-window-sized timespan and with
// no hammering, must preserve data exactly. Catches fault-model leakage
// into the normal access path.
func TestRandomAccessIntegrityProperty(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	disableECC(t, d)
	g := d.Geometry()
	rng := uint64(12345)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	written := make(map[addr.BankAddr]map[int]byte)
	for step := 0; step < 400; step++ {
		b := bankAddr(next(g.Channels), next(g.PseudoChannels), next(g.Banks))
		row := next(g.Rows)
		if next(2) == 0 {
			fill := byte(next(256))
			if err := WriteRow(d, b, row, rowPattern(d, fill)); err != nil {
				t.Fatal(err)
			}
			if written[b] == nil {
				written[b] = make(map[int]byte)
			}
			written[b][row] = fill
		} else if fills, ok := written[b]; ok {
			if fill, ok := fills[row]; ok {
				got, err := ReadRow(d, b, row)
				if err != nil {
					t.Fatal(err)
				}
				if n := CountMismatches(got, rowPattern(d, fill)); n != 0 {
					t.Fatalf("step %d: %d spurious flips in %v row %d", step, n, b, row)
				}
			}
		}
	}
	// The whole sequence must fit inside the retention floor so decay
	// cannot legitimately corrupt anything.
	if d.Now() > int64(cfg.Ret.FloorSec*1e12) {
		t.Fatalf("sequence took %d ps, outgrew the retention floor; test premise broken", d.Now())
	}
}

// TestNeighbourWritesDoNotDisturb: writing adjacent rows (which activates
// them once each) must never flip a victim - a single activation is far
// below any threshold.
func TestNeighbourWritesDoNotDisturb(t *testing.T) {
	cfg := config.SmallChip()
	d := newDevice(t, cfg)
	disableECC(t, d)
	b := bankAddr(7, 0, 0)
	phys := midSubarrayRow(d, 1)
	m := d.Mapper()
	lv := m.ToLogical(phys)
	if err := WriteRow(d, b, lv, rowPattern(d, 0xFF)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		for _, p := range []int{phys - 1, phys + 1} {
			if err := WriteRow(d, b, m.ToLogical(p), rowPattern(d, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := ReadRow(d, b, lv)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountMismatches(got, rowPattern(d, 0xFF)); n != 0 {
		t.Fatalf("%d flips from 400 neighbour writes; thresholds are tens of thousands", n)
	}
}
