package hbm

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/rng"
)

// The sense fast path must be bit-for-bit identical to the reference
// implementation across every observable: row data, disturbance state,
// charge clocks, and device statistics. These tests drive a fast-path and
// a reference-path device with identical command scripts — hammers of
// varying intensity and hold times, writes, reads, long idles (retention
// decay), temperature changes, ECC toggling, refreshes — and compare the
// complete device state after every script.

// equivConfig is a deliberately small geometry so scripts touch a large
// fraction of the chip (dense interactions between neighbouring rows) at
// fuzz-friendly speed.
func equivConfig() *config.Config {
	cfg := config.SmallChip()
	cfg.Geometry.Banks = 2
	cfg.Geometry.Rows = 128
	cfg.Geometry.Columns = 4
	cfg.Geometry.ColumnBytes = 8
	cfg.SubarraySizes = []int{48, 48, 32}
	return cfg
}

func newEquivPair(t testing.TB) (fast, ref *Device) {
	t.Helper()
	cfg := equivConfig()
	fast, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetSenseReference(true)
	return fast, ref
}

// applyOp decodes one scripted operation and applies it to a device.
// Returns the operation's error (compared across devices, never fatal)
// and any read-out data.
func applyOp(d *Device, op, a, b byte) (readout []byte, err error) {
	g := d.Geometry()
	m := d.Mapper()
	ba := addr.BankAddr{
		Channel:       int(a) % g.Channels,
		PseudoChannel: int(a>>3) % g.PseudoChannels,
		Bank:          int(a>>4) % g.Banks,
	}
	physVictim := 1 + int(b)%(g.Rows-2)
	lrow := m.ToLogical(int(b) % g.Rows)
	hammers := 20_000 + int(b)*2_000
	switch op % 9 {
	case 0:
		return nil, d.HammerPair(ba, m.ToLogical(physVictim-1), m.ToLogical(physVictim+1), hammers)
	case 1:
		return nil, d.HammerSingle(ba, m.ToLogical(physVictim), hammers)
	case 2:
		pattern := bytes.Repeat([]byte{a ^ b}, g.RowBytes())
		return nil, WriteRow(d, ba, lrow, pattern)
	case 3:
		return ReadRow(d, ba, lrow)
	case 4:
		// Idle up to ~25 s of simulated time: retention decay territory.
		return nil, d.AdvanceTime(int64(b+1) * 100_000_000_000)
	case 5:
		d.SetTemperature(40 + float64(b%60))
		return nil, nil
	case 6:
		return nil, d.WriteModeRegister(ba.Channel, MRECC, uint32(b&1))
	case 7:
		return nil, d.Refresh(ba.Channel, ba.PseudoChannel)
	default:
		hold := d.cfg.Timing.TRAS * int64(1+b%20)
		return nil, d.HammerPairHold(ba, m.ToLogical(physVictim-1), m.ToLogical(physVictim+1), hammers/4, hold)
	}
}

// rowImagesEqual compares two row images where nil means the all-zero
// power-up pattern.
func rowImagesEqual(x, y []byte) bool {
	if x == nil {
		x, y = y, x
	}
	if y != nil {
		return bytes.Equal(x, y)
	}
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}

// compareDevices fails the test unless both devices are observably
// identical: clocks, statistics, and the full per-row physical state.
func compareDevices(t *testing.T, fast, ref *Device) {
	t.Helper()
	if fast.Now() != ref.Now() {
		t.Fatalf("clocks diverge: fast %d, ref %d", fast.Now(), ref.Now())
	}
	if fast.Stats() != ref.Stats() {
		t.Fatalf("stats diverge:\nfast %+v\nref  %+v", fast.Stats(), ref.Stats())
	}
	g := fast.Geometry()
	for ch := 0; ch < g.Channels; ch++ {
		for pc := 0; pc < g.PseudoChannels; pc++ {
			for bk := 0; bk < g.Banks; bk++ {
				fb := fast.pcs[ch][pc].banks[bk]
				rb := ref.pcs[ch][pc].banks[bk]
				for phys := 0; phys < g.Rows; phys++ {
					fr, rr := fb.rowAt(phys), rb.rowAt(phys)
					var fd, rd []byte
					var fdist, rdist float64
					var fsense, rsense int64
					if fr != nil {
						fd, fdist, fsense = fr.data, fr.disturb, fr.lastSense
					}
					if rr != nil {
						rd, rdist, rsense = rr.data, rr.disturb, rr.lastSense
					}
					if fdist != rdist || fsense != rsense {
						t.Fatalf("ch%d.pc%d.ba%d row %d: disturb/lastSense diverge: fast (%v, %d), ref (%v, %d)",
							ch, pc, bk, phys, fdist, fsense, rdist, rsense)
					}
					if !rowImagesEqual(fd, rd) {
						t.Fatalf("ch%d.pc%d.ba%d row %d: data diverges", ch, pc, bk, phys)
					}
				}
			}
		}
	}
}

// runScript drives both devices through a script of 3-byte operations,
// checking operation-level agreement as it goes and full state equality
// at the end.
func runScript(t *testing.T, script []byte) {
	t.Helper()
	fast, ref := newEquivPair(t)
	for i := 0; i+2 < len(script); i += 3 {
		op, a, b := script[i], script[i+1], script[i+2]
		fOut, fErr := applyOp(fast, op, a, b)
		rOut, rErr := applyOp(ref, op, a, b)
		if (fErr == nil) != (rErr == nil) || (fErr != nil && fErr.Error() != rErr.Error()) {
			t.Fatalf("op %d (%d %d %d): errors diverge: fast %v, ref %v", i/3, op, a, b, fErr, rErr)
		}
		if !bytes.Equal(fOut, rOut) {
			t.Fatalf("op %d (%d %d %d): read-out diverges", i/3, op, a, b)
		}
	}
	compareDevices(t, fast, ref)
}

// FuzzSenseEquivalence is the differential fuzz target pinning the fast
// sense path to the reference implementation. `go test` exercises the
// seed corpus; `go test -fuzz=FuzzSenseEquivalence ./internal/hbm` digs.
func FuzzSenseEquivalence(f *testing.F) {
	f.Add([]byte{0, 7<<4 | 7, 40, 3, 7<<4 | 7, 40})                  // hammer ch7, read victim
	f.Add([]byte{4, 0, 255, 3, 0, 10, 0, 0, 10, 3, 0, 10})           // long idle, read, hammer, read
	f.Add([]byte{2, 9, 0xA5, 0, 9, 60, 6, 9, 1, 0, 9, 60, 3, 9, 60}) // write, hammer, ECC on, hammer, read
	f.Add([]byte{5, 0, 55, 8, 3, 200, 4, 3, 120, 3, 3, 77})          // cool, pressed hammer, idle, read
	f.Add([]byte{7, 1, 1, 7, 1, 2, 0, 1, 90, 7, 1, 3})               // refreshes interleaved with hammering
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 60 {
			script = script[:60] // bound per-input work
		}
		runScript(t, script)
	})
}

// TestSenseEquivalenceRandomScripts complements the fuzz corpus with a
// broader deterministic randomized sweep that always runs under `go test`.
func TestSenseEquivalenceRandomScripts(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential sweep")
	}
	s := rng.NewStream(0xE0_1D)
	for round := 0; round < 12; round++ {
		script := make([]byte, 3*10)
		for i := range script {
			script[i] = byte(s.Next())
		}
		t.Run(fmt.Sprintf("round%02d", round), func(t *testing.T) {
			runScript(t, script)
		})
	}
}

// TestSenseSteadyStateAllocs pins the sense fast path's allocation-free
// steady state: once a row's profile aggregates and scratch buffers are
// warm, a hammer-then-sense probe cycle allocates nothing.
func TestSenseSteadyStateAllocs(t *testing.T) {
	cfg := equivConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Mapper()
	ba := addr.BankAddr{Channel: 7}
	layout := d.Config().Layout()
	phys := layout.Start(1) + layout.Size(1)/2
	la, lb, lv := m.ToLogical(phys-1), m.ToLogical(phys+1), m.ToLogical(phys)
	tm := d.Config().Timing
	cycle := func() {
		if err := d.HammerPair(ba, la, lb, 150_000); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRP); err != nil {
			t.Fatal(err)
		}
		if err := d.Activate(ba, lv); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRAS); err != nil {
			t.Fatal(err)
		}
		if err := d.Precharge(ba); err != nil {
			t.Fatal(err)
		}
		if err := d.AdvanceTime(tm.TRP); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm profiles, row states, scratch
	cycle()
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("steady-state hammer+sense cycle allocates %.1f times per run, want 0", avg)
	}
}

// TestReadIntoMatchesRead pins the caller-provided-buffer read variant to
// the allocating one.
func TestReadIntoMatchesRead(t *testing.T) {
	cfg := equivConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ba := addr.BankAddr{Channel: 2}
	pattern := bytes.Repeat([]byte{0x5A}, d.Geometry().RowBytes())
	if err := WriteRow(d, ba, 5, pattern); err != nil {
		t.Fatal(err)
	}
	if err := openRow(d, ba, 5); err != nil {
		t.Fatal(err)
	}
	defer closeRow(d, ba)
	want, err := d.Read(ba, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, d.Geometry().ColumnBytes)
	if err := d.ReadInto(ba, 1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, dst) {
		t.Fatalf("ReadInto = %x, Read = %x", dst, want)
	}
	if err := d.ReadInto(ba, 1, dst[:2]); err == nil {
		t.Fatal("short destination buffer accepted")
	}
	// An unmaterialized row reads as the power-up pattern.
	unb := addr.BankAddr{Channel: 3}
	if err := openRow(d, unb, 9); err != nil {
		t.Fatal(err)
	}
	defer closeRow(d, unb)
	for i := range dst {
		dst[i] = 0xFF
	}
	if err := d.ReadInto(unb, 0, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("byte %d of pristine row = %#x, want 0", i, v)
		}
	}
}
