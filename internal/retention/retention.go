// Package retention implements the data-retention profiler that the
// U-TRR methodology (Section 5) builds on: for a given row, find the wait
// time T after which retention errors reliably appear unless the row is
// refreshed. Retention failures then serve as a side channel revealing
// whether an in-DRAM mechanism refreshed the row.
package retention

import (
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

// Profiler measures per-row retention times on a device.
type Profiler struct {
	dev *hbm.Device
	// Pattern is the byte written to every cell before waiting. The
	// measured retention time is that of the weakest cell charged under
	// this pattern, so it is pattern-dependent, as on real silicon.
	Pattern byte
	// MaxSec bounds the search: rows whose weakest cell outlasts MaxSec
	// are reported as unprofilable.
	MaxSec float64
	// Precision is the relative width at which the binary search stops.
	Precision float64
}

// NewProfiler returns a profiler with the defaults used throughout the
// reproduction: all-ones data, a 64-second ceiling, 5 % precision.
func NewProfiler(d *hbm.Device) *Profiler {
	return &Profiler{dev: d, Pattern: 0xFF, MaxSec: 64, Precision: 0.05}
}

// Probe writes the pattern to the row, waits waitSec of simulated time,
// reads the row back and returns the number of retention errors.
func (p *Profiler) Probe(b addr.BankAddr, row int, waitSec float64) (int, error) {
	g := p.dev.Geometry()
	pattern := make([]byte, g.RowBytes())
	for i := range pattern {
		pattern[i] = p.Pattern
	}
	if err := hbm.WriteRow(p.dev, b, row, pattern); err != nil {
		return 0, fmt.Errorf("retention: %w", err)
	}
	if err := p.dev.AdvanceTime(int64(waitSec * 1e12)); err != nil {
		return 0, fmt.Errorf("retention: %w", err)
	}
	got, err := hbm.ReadRow(p.dev, b, row)
	if err != nil {
		return 0, fmt.Errorf("retention: %w", err)
	}
	return hbm.CountMismatches(got, pattern), nil
}

// RowRetention finds the smallest wait time (within Precision) at which
// the row exhibits at least one retention error. Retention failures are
// monotone in the wait time, so exponential probing followed by binary
// search is exact.
func (p *Profiler) RowRetention(b addr.BankAddr, row int) (float64, error) {
	lo := 0.0
	hi := 0.1
	for {
		n, err := p.Probe(b, row, hi)
		if err != nil {
			return 0, err
		}
		if n > 0 {
			break
		}
		lo = hi
		hi *= 2
		if hi > p.MaxSec {
			return 0, fmt.Errorf("retention: row %v/%d shows no errors within %.0f s", b, row, p.MaxSec)
		}
	}
	for hi-lo > p.Precision*hi {
		mid := (lo + hi) / 2
		n, err := p.Probe(b, row, mid)
		if err != nil {
			return 0, err
		}
		if n > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// FindRow scans rows starting at startRow for one whose retention time
// falls inside [loSec, hiSec], the convenient band the U-TRR experiment
// needs (long enough to schedule commands inside T/2 windows, short
// enough to keep iterations fast). It returns the row and its measured
// retention time.
func (p *Profiler) FindRow(b addr.BankAddr, startRow, maxScan int, loSec, hiSec float64) (int, float64, error) {
	g := p.dev.Geometry()
	if startRow < 0 || startRow >= g.Rows {
		return 0, 0, fmt.Errorf("retention: start row %d out of range", startRow)
	}
	saveMax := p.MaxSec
	p.MaxSec = hiSec * 4 // no point searching far beyond the band
	defer func() { p.MaxSec = saveMax }()
	for i := 0; i < maxScan && startRow+i < g.Rows; i++ {
		row := startRow + i
		t, err := p.RowRetention(b, row)
		if err != nil {
			continue // row too strong for the band; keep scanning
		}
		if t >= loSec && t <= hiSec {
			return row, t, nil
		}
	}
	return 0, 0, fmt.Errorf("retention: no row with retention in [%.2f, %.2f] s among %d rows from %d",
		loSec, hiSec, maxScan, startRow)
}
