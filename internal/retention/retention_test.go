package retention

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

func newProfiler(t testing.TB) *Profiler {
	t.Helper()
	cfg := config.SmallChip()
	d, err := hbm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Characterization always runs with ECC off (paper Section 3.1);
	// with ECC on, single retention errors would be corrected away.
	for ch := 0; ch < cfg.Geometry.Channels; ch++ {
		if err := d.WriteModeRegister(ch, hbm.MRECC, 0); err != nil {
			t.Fatal(err)
		}
	}
	return NewProfiler(d)
}

func bankAddr() addr.BankAddr {
	return addr.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0}
}

func TestProbeShortWaitShowsNoErrors(t *testing.T) {
	p := newProfiler(t)
	n, err := p.Probe(bankAddr(), 10, 0.05) // below the retention floor
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("%d errors below the retention floor", n)
	}
}

func TestRowRetentionBracketsFailureOnset(t *testing.T) {
	p := newProfiler(t)
	b := bankAddr()
	const row = 17
	T, err := p.RowRetention(b, row)
	if err != nil {
		t.Fatal(err)
	}
	if T < 0.1 {
		t.Fatalf("retention %v s below the search start", T)
	}
	// Just above T: errors. Well below T: none.
	n, err := p.Probe(b, row, T*1.05)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("no errors at 1.05*T (T=%v)", T)
	}
	n, err = p.Probe(b, row, T*0.7)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("%d errors at 0.7*T (T=%v); search bracket wrong", n, T)
	}
}

func TestRowRetentionIsReproducible(t *testing.T) {
	p := newProfiler(t)
	b := bankAddr()
	t1, err := p.RowRetention(b, 42)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.RowRetention(b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("retention of the same row differs across profiles: %v vs %v", t1, t2)
	}
}

func TestRetentionIsPatternDependent(t *testing.T) {
	p := newProfiler(t)
	b := bankAddr()
	rows := []int{5, 6, 7, 8, 9, 10, 11, 12}
	differs := false
	for _, row := range rows {
		p.Pattern = 0xFF
		tOnes, err1 := p.RowRetention(b, row)
		p.Pattern = 0x00
		tZeros, err2 := p.RowRetention(b, row)
		if err1 != nil || err2 != nil {
			continue
		}
		if tOnes != tZeros {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("retention identical under 0xFF and 0x00 for all rows; true/anti cells must differ")
	}
}

func TestFindRowInBand(t *testing.T) {
	p := newProfiler(t)
	b := bankAddr()
	row, T, err := p.FindRow(b, 0, 64, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if T < 0.2 || T > 8 {
		t.Fatalf("FindRow returned T=%v outside [0.2, 8]", T)
	}
	// The returned row must re-profile into the band.
	T2, err := p.RowRetention(b, row)
	if err != nil {
		t.Fatal(err)
	}
	if T2 != T {
		t.Fatalf("re-profile gives %v, FindRow reported %v", T2, T)
	}
}

func TestFindRowRejectsBadStart(t *testing.T) {
	p := newProfiler(t)
	if _, _, err := p.FindRow(bankAddr(), -1, 10, 0.2, 8); err == nil {
		t.Fatal("negative start row accepted")
	}
}

func TestHotterChipProfilesShorterRetention(t *testing.T) {
	cfg := config.SmallChip()
	profileAt := func(tempC float64) float64 {
		d, err := hbm.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for ch := 0; ch < cfg.Geometry.Channels; ch++ {
			if err := d.WriteModeRegister(ch, hbm.MRECC, 0); err != nil {
				t.Fatal(err)
			}
		}
		d.SetTemperature(tempC)
		p := NewProfiler(d)
		T, err := p.RowRetention(bankAddr(), 23)
		if err != nil {
			t.Fatal(err)
		}
		return T
	}
	cool := profileAt(75)
	hot := profileAt(95)
	if hot >= cool {
		t.Fatalf("retention at 95C (%v) not shorter than at 75C (%v)", hot, cool)
	}
}
