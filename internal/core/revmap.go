package core

import (
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/mapping"
)

// Reverse engineering of the logical-to-physical row mapping (paper
// Section 3.1): single-sided hammering flips bits only in an aggressor's
// true physical neighbours within the same subarray, so probing every row
// recovers physical adjacency, subarray boundaries, and (by fitting known
// schemes) the mapping function.

// REWindow is how far (in logical rows) from the aggressor the prober
// looks for victims. The supported mapping schemes displace a row by at
// most 8 logical addresses.
const REWindow = 8

// REDataWindow is how far (in logical rows) the prober initializes data.
// It exceeds REWindow so that every row within the disturbance blast
// radius has controlled (same-as-victim) data in its own neighbours:
// otherwise stale complement data from a previous probe would lower a
// distance-2 row's effective threshold below the contamination-free bound
// that REActivations is calibrated against.
const REDataWindow = 20

// REActivations is the single-sided activation count used for adjacency
// probing. It is chosen so that distance-1 victims flip reliably (500K
// disturbance units cover even hardened last-subarray edge rows) while
// distance-2 disturbance stays provably below the absolute threshold
// floor: 1M activations contribute 1M*0.03 = 30K units at distance 2,
// under HCFloor (14K) times the minimum coupling factor for same-data
// neighbours (2.3) = 32.2K units, so distance-2 rows can never flip.
const REActivations = 1_000_000

// VictimsOf hammers the logical row single-sided and returns the logical
// rows that exhibit bitflips inside the probe window. To cover both true
// and anti cells it probes twice with complementary data.
func (h *Harness) VictimsOf(ba addr.BankAddr, logicalAggr int) ([]int, error) {
	rows := h.dev.Geometry().Rows
	if logicalAggr < 0 || logicalAggr >= rows {
		return nil, fmt.Errorf("core: aggressor row %d out of range", logicalAggr)
	}
	var candidates, initRows []int
	for l := logicalAggr - REDataWindow; l <= logicalAggr+REDataWindow; l++ {
		if l < 0 || l >= rows || l == logicalAggr {
			continue
		}
		initRows = append(initRows, l)
		if l >= logicalAggr-REWindow && l <= logicalAggr+REWindow {
			candidates = append(candidates, l)
		}
	}
	victims := make(map[int]bool)
	for _, round := range []struct{ aggr, victim byte }{
		{aggr: 0x00, victim: 0xFF},
		{aggr: 0xFF, victim: 0x00},
	} {
		b := h.builder()
		for _, c := range initRows {
			b.WriteRowFill(ba, c, round.victim)
		}
		b.WriteRowFill(ba, logicalAggr, round.aggr)
		b.HammerSingle(ba, logicalAggr, REActivations)
		for _, c := range candidates {
			b.ReadRowOut(ba, c)
		}
		res, err := h.run(b)
		if err != nil {
			return nil, err
		}
		cols := h.dev.Geometry().Columns
		for i, c := range candidates {
			for _, col := range res.Reads[i*cols : (i+1)*cols] {
				flipped := false
				for _, v := range col {
					if v != round.victim {
						flipped = true
						break
					}
				}
				if flipped {
					victims[c] = true
					break
				}
			}
		}
	}
	out := make([]int, 0, len(victims))
	for l := logicalAggr - REWindow; l <= logicalAggr+REWindow; l++ {
		if victims[l] {
			out = append(out, l)
		}
	}
	return out, nil
}

// RecoverMapping probes every row of a bank, symmetrizes the observed
// adjacency (a marginally strong row may flip in only one probing
// direction), and reconstructs the physical row order and subarray
// boundaries. It also classifies which known mapping scheme fits.
func (h *Harness) RecoverMapping(ba addr.BankAddr) (*mapping.RecoveredMap, config.MappingScheme, error) {
	rows := h.dev.Geometry().Rows
	adj := make([][]int, rows)
	for l := 0; l < rows; l++ {
		vs, err := h.VictimsOf(ba, l)
		if err != nil {
			return nil, 0, err
		}
		adj[l] = vs
	}
	// Symmetrize: if hammering a flipped b, a and b are adjacent even if
	// the reverse probe did not flip anything.
	sym := make([]map[int]bool, rows)
	for l := range sym {
		sym[l] = make(map[int]bool, 2)
	}
	for l, vs := range adj {
		for _, v := range vs {
			sym[l][v] = true
			sym[v][l] = true
		}
	}
	rec, err := mapping.Recover(mapping.OracleFunc(func(l int) []int {
		out := make([]int, 0, len(sym[l]))
		for v := range sym[l] {
			out = append(out, v)
		}
		sortInts(out)
		return out
	}), rows)
	if err != nil {
		return nil, 0, err
	}
	scheme, err := mapping.Classify(rec, rows)
	if err != nil {
		return rec, scheme, err
	}
	return rec, scheme, nil
}

// sortInts is a tiny insertion sort; adjacency lists have at most two
// entries, so pulling in package sort is overkill.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
