package core

// Region is a contiguous physical row range within a bank.
type Region struct {
	Name  string
	Start int // first physical row, inclusive
	End   int // one past the last physical row
}

// Rows returns the number of rows in the region.
func (r Region) Rows() int { return r.End - r.Start }

// Regions returns the paper's three test regions, scaled to the bank
// size: the first, middle and last 3K of a 16K-row bank, i.e. 3/16 of the
// bank each, with the middle region starting at row 6.5K/16K — exactly the
// windows of Fig. 5 (0-3K, 6.5K-9.5K, 13K-16K).
func Regions(rows int) []Region {
	span := rows * 3 / 16
	midStart := rows * 13 / 32 // 6.5/16 of the bank
	return []Region{
		{Name: "first", Start: 0, End: span},
		{Name: "middle", Start: midStart, End: midStart + span},
		{Name: "last", Start: rows - span, End: rows},
	}
}

// SampleRows returns up to max physical rows evenly spread across the
// region (stride sampling). max <= 0 or max >= region size returns every
// row. Sweeps use this to trade runtime for resolution.
func (r Region) SampleRows(max int) []int {
	n := r.Rows()
	if max <= 0 || max >= n {
		out := make([]int, 0, n)
		for row := r.Start; row < r.End; row++ {
			out = append(out, row)
		}
		return out
	}
	out := make([]int, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, r.Start+i*n/max)
	}
	return out
}
