package core

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
)

func TestRecoverMappingFullBank(t *testing.T) {
	if testing.Short() {
		t.Skip("full-bank reverse engineering is the heavyweight test")
	}
	cfg := config.SmallChip()
	h, err := NewHarnessFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, scheme, err := h.RecoverMapping(ba(2, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Recovered subarray sizes must match the configured layout.
	got := rec.SubarraySizes()
	want := cfg.SubarraySizes
	if len(got) != len(want) {
		t.Fatalf("recovered %d subarrays (%v), want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered sizes %v, want %v", got, want)
		}
	}
	if scheme != cfg.Mapping {
		t.Fatalf("classified scheme %v, device uses %v", scheme, cfg.Mapping)
	}
}

func TestRecoverMappingAgreesWithDeviceMapper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-bank reverse engineering is the heavyweight test")
	}
	cfg := config.SmallChip()
	cfg.Mapping = config.MappingMirrored // a second scheme, recovered blind
	h, err := NewHarnessFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, scheme, err := h.RecoverMapping(ba(5, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if scheme != config.MappingMirrored {
		t.Fatalf("classified %v, want mirrored", scheme)
	}
	// Every consecutive pair in each recovered subarray must be
	// physically adjacent per the device's actual mapper.
	m := h.Device().Mapper()
	for _, sa := range rec.Subarrays {
		for i := 0; i+1 < len(sa); i++ {
			d := m.ToPhysical(sa[i]) - m.ToPhysical(sa[i+1])
			if d != 1 && d != -1 {
				t.Fatalf("rows %d,%d recovered adjacent but are %d apart physically", sa[i], sa[i+1], d)
			}
		}
	}
}
