package core

import (
	"context"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

// batchBank returns the bank the batch tests probe: channel 7 is the most
// vulnerable channel of the SmallChip fault profile, so probes actually
// flip bits there.
func batchBank() addr.BankAddr {
	return addr.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 1}
}

func TestBERBatchMatchesSequential(t *testing.T) {
	h := newTestHarness(t)
	ba := batchBank()
	rows := h.Device().Geometry().Rows
	victims := []int{1, 2, 100, 101, 512, rows / 3, rows - 2}
	const hammers = 40_000
	for _, p := range Table1() {
		batch, err := h.BERBatch(ba, victims, p, hammers)
		if err != nil {
			t.Fatalf("pattern %s: batch: %v", p.Name, err)
		}
		for j, v := range victims {
			seq, err := h.BER(ba, v, p, hammers)
			if err != nil {
				t.Fatalf("pattern %s row %d: sequential: %v", p.Name, v, err)
			}
			if batch[j] != seq {
				t.Fatalf("pattern %s row %d: batch %+v != sequential %+v", p.Name, v, batch[j], seq)
			}
		}
	}
}

func TestBERBatchHoldMatchesSequential(t *testing.T) {
	h := newTestHarness(t)
	ba := batchBank()
	p := Table1()[0]
	victims := []int{3, 200, 700}
	hold := 3 * h.Device().Config().Timing.TRAS // pressed: budget not enforced
	const hammers = 5_000
	batch, err := h.BERBatchHold(ba, victims, p, hammers, hold)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range victims {
		seq, err := h.BERHold(ba, v, p, hammers, hold)
		if err != nil {
			t.Fatal(err)
		}
		if batch[j] != seq {
			t.Fatalf("row %d: batch %+v != sequential %+v", v, batch[j], seq)
		}
	}
}

// TestBERBatchChunksLargeBatches drives more victims than maxProbeBatch so
// the chunked path (several programs per batch call) is exercised.
func TestBERBatchChunksLargeBatches(t *testing.T) {
	h := newTestHarness(t)
	ba := batchBank()
	p := Table1()[1]
	victims := make([]int, maxProbeBatch+9)
	for i := range victims {
		victims[i] = 1 + i*3
	}
	const hammers = 2_000
	batch, err := h.BERBatch(ba, victims, p, hammers)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(victims) {
		t.Fatalf("got %d results for %d victims", len(batch), len(victims))
	}
	for _, j := range []int{0, maxProbeBatch - 1, maxProbeBatch, len(victims) - 1} {
		seq, err := h.BER(ba, victims[j], p, hammers)
		if err != nil {
			t.Fatal(err)
		}
		if batch[j] != seq {
			t.Fatalf("row %d (chunk edge): batch %+v != sequential %+v", victims[j], batch[j], seq)
		}
	}
}

func TestHCFirstBatchMatchesSequential(t *testing.T) {
	h := newTestHarness(t)
	ba := batchBank()
	victims := []int{1, 50, 300, 600, 1022}
	const maxHammers = 120_000
	for _, p := range Table1()[:2] {
		hcs, founds, err := h.HCFirstBatch(ba, victims, p, maxHammers)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range victims {
			hc, found, err := h.HCFirst(ba, v, p, maxHammers)
			if err != nil {
				t.Fatal(err)
			}
			if hcs[j] != hc || founds[j] != found {
				t.Fatalf("pattern %s row %d: batch (%d,%v) != sequential (%d,%v)",
					p.Name, v, hcs[j], founds[j], hc, found)
			}
		}
	}
}

func TestBERBatchRejectsEdgeVictims(t *testing.T) {
	h := newTestHarness(t)
	ba := batchBank()
	if _, err := h.BERBatch(ba, []int{5, 0}, Table1()[0], 1000); err == nil {
		t.Fatal("batch accepted a bank-edge victim")
	}
	rows := h.Device().Geometry().Rows
	if _, err := h.BERBatch(ba, []int{rows - 1}, Table1()[0], 1000); err == nil {
		t.Fatal("batch accepted the last bank row as victim")
	}
}

// TestBERBatchEnforcesBudgetPerProbe pins that the 27 ms refresh budget is
// checked per probe segment, not against the whole batch program: two
// probes that each fit the budget must pass batched even though their sum
// exceeds it, and a single over-budget probe must fail with the same
// error the sequential path reports.
func TestBERBatchEnforcesBudgetPerProbe(t *testing.T) {
	h := newTestHarness(t)
	ba := batchBank()
	p := Table1()[0]
	// One probe at 256K hammers stays inside 27 ms; two of them in one
	// batch program total well over it.
	if _, err := h.BERBatch(ba, []int{10, 20}, p, DefaultHammers); err != nil {
		t.Fatalf("per-probe budget misapplied to the whole batch: %v", err)
	}
	_, seqErr := h.BER(ba, 10, p, 500_000)
	if seqErr == nil || !strings.Contains(seqErr.Error(), "refresh budget") {
		t.Fatalf("sequential 500K-hammer probe should exceed the budget, got %v", seqErr)
	}
	_, batchErr := h.BERBatch(ba, []int{10}, p, 500_000)
	if batchErr == nil || batchErr.Error() != seqErr.Error() {
		t.Fatalf("batch budget error %q != sequential %q", batchErr, seqErr)
	}
}

func TestBERBatchHonoursCancelledContext(t *testing.T) {
	h := newTestHarness(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.SetContext(ctx)
	defer h.SetContext(nil)
	if _, err := h.BERBatch(batchBank(), []int{5}, Table1()[0], 1000); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// FuzzBatchProbeEquivalence is the batched-probe leg of the differential
// sense fuzz: a batch of probes on a normal (fast-sense) device must
// measure exactly what per-row sequential probes measure on a device
// pinned to the reference sense path. Any divergence in the batch
// concatenation, the segment accounting, or the fast sense path shows up
// as a value mismatch.
func FuzzBatchProbeEquivalence(f *testing.F) {
	f.Add(uint8(0), []byte{10, 60, 200}, uint16(20_000))
	f.Add(uint8(1), []byte{1, 1, 255}, uint16(50_000))
	f.Add(uint8(2), []byte{128}, uint16(1))
	f.Add(uint8(3), []byte{7, 9, 11, 13, 40, 80, 160, 220}, uint16(35_000))
	f.Fuzz(func(t *testing.T, pi uint8, vraw []byte, rawHammers uint16) {
		if len(vraw) == 0 || len(vraw) > 8 {
			t.Skip()
		}
		cfg := config.SmallChip()
		hFast, err := NewHarnessFromConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dRef, err := hbm.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dRef.SetSenseReference(true)
		hRef, err := NewHarness(dRef)
		if err != nil {
			t.Fatal(err)
		}
		rows := hFast.Device().Geometry().Rows
		victims := make([]int, len(vraw))
		for i, b := range vraw {
			victims[i] = 1 + int(b)*(rows-2)/256
		}
		p := Table1()[int(pi)%len(Table1())]
		hammers := 1 + int(rawHammers)%DefaultHammers
		ba := batchBank()
		batch, err := hFast.BERBatch(ba, victims, p, hammers)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range victims {
			seq, err := hRef.BER(ba, v, p, hammers)
			if err != nil {
				t.Fatal(err)
			}
			if batch[j] != seq {
				t.Fatalf("row %d: batched-on-fast %+v != sequential-on-reference %+v",
					v, batch[j], seq)
			}
		}
	})
}
