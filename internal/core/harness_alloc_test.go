package core

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

// TestBERProbeSteadyStateAllocs pins the whole probe stack — builder
// reuse, interned payloads, the jump-table interpreter, the read arena,
// the device's flip scratch and lazily-materialized rows — to zero
// allocations per BER measurement once warm. Every BER curve, HCfirst
// search and WCDP sweep bottoms out in this loop, so a regression here is
// a fleet-wide slowdown.
func TestBERProbeSteadyStateAllocs(t *testing.T) {
	h, err := NewHarnessFromConfig(config.SmallChip())
	if err != nil {
		t.Fatal(err)
	}
	ba := addr.BankAddr{Channel: 7}
	layout := h.Device().Config().Layout()
	victim := layout.Start(1) + layout.Size(1)/2
	p := Table1()[1]
	probe := func() {
		if _, err := h.BER(ba, victim, p, 100_000); err != nil {
			t.Fatal(err)
		}
	}
	probe() // warm: profiles, row states, builder, arena, scratch
	probe()
	if avg := testing.AllocsPerRun(30, probe); avg != 0 {
		t.Fatalf("steady-state BER probe allocates %.2f times per run, want 0", avg)
	}
}
