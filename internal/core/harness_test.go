package core

import (
	"context"
	"errors"
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

func newTestHarness(t testing.TB) *Harness {
	t.Helper()
	h, err := NewHarnessFromConfig(config.SmallChip())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func ba(ch, pc, bank int) addr.BankAddr {
	return addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: bank}
}

func midRow(h *Harness, sa int) int {
	l := h.Device().Config().Layout()
	return l.Start(sa) + l.Size(sa)/2
}

func TestTable1MatchesPaper(t *testing.T) {
	ps := Table1()
	if len(ps) != 4 {
		t.Fatalf("%d patterns, want 4", len(ps))
	}
	want := []Pattern{
		{"Rowstripe0", 0x00, 0xFF, 0x00},
		{"Rowstripe1", 0xFF, 0x00, 0xFF},
		{"Checkered0", 0x55, 0xAA, 0x55},
		{"Checkered1", 0xAA, 0x55, 0xAA},
	}
	for i, p := range ps {
		if p != want[i] {
			t.Errorf("pattern %d = %+v, want %+v", i, p, want[i])
		}
	}
	// Aggressors always store the complement of the victim.
	for _, p := range ps {
		if p.Aggressor != ^p.Victim {
			t.Errorf("%s: aggressor %#x is not the complement of victim %#x", p.Name, p.Aggressor, p.Victim)
		}
		if p.Outer != p.Victim {
			t.Errorf("%s: outer rows must repeat the victim pattern", p.Name)
		}
	}
}

func TestRegionsMatchPaperWindows(t *testing.T) {
	rs := Regions(16384)
	if len(rs) != 3 {
		t.Fatalf("%d regions, want 3", len(rs))
	}
	// Fig. 5's x-axes: 0-3K, 6.5K-9.5K, 13K-16K.
	cases := []Region{
		{Name: "first", Start: 0, End: 3072},
		{Name: "middle", Start: 6656, End: 9728},
		{Name: "last", Start: 13312, End: 16384},
	}
	for i, want := range cases {
		if rs[i] != want {
			t.Errorf("region %d = %+v, want %+v", i, rs[i], want)
		}
		if rs[i].Rows() != 3072 {
			t.Errorf("region %s spans %d rows, want 3072 (3K)", rs[i].Name, rs[i].Rows())
		}
	}
}

func TestSampleRows(t *testing.T) {
	r := Region{Name: "x", Start: 100, End: 200}
	all := r.SampleRows(0)
	if len(all) != 100 || all[0] != 100 || all[99] != 199 {
		t.Fatalf("SampleRows(0) wrong: len=%d", len(all))
	}
	some := r.SampleRows(10)
	if len(some) != 10 {
		t.Fatalf("SampleRows(10) returned %d rows", len(some))
	}
	for i, row := range some {
		if row < 100 || row >= 200 {
			t.Fatalf("sample %d = %d outside region", i, row)
		}
		if i > 0 && row <= some[i-1] {
			t.Fatalf("samples not strictly increasing: %v", some)
		}
	}
	if got := r.SampleRows(1000); len(got) != 100 {
		t.Fatalf("oversampling returned %d rows, want all 100", len(got))
	}
}

func TestBERInVulnerableChannel(t *testing.T) {
	h := newTestHarness(t)
	r, err := h.BER(ba(7, 0, 0), midRow(h, 1), Table1()[1], DefaultHammers)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flips == 0 {
		t.Fatal("no flips in channel 7 at 256K hammers with Rowstripe1")
	}
	if r.Bits != h.Device().Geometry().RowBits() {
		t.Fatalf("bits = %d, want %d", r.Bits, h.Device().Geometry().RowBits())
	}
	if ber := r.BER(); ber <= 0 || ber > 0.2 {
		t.Fatalf("BER = %v, implausible", ber)
	}
	if r.Elapsed > RefreshBudget {
		t.Fatalf("experiment took %d ps, over the 27 ms budget", r.Elapsed)
	}
}

func TestBERMonotoneInHammerCount(t *testing.T) {
	h := newTestHarness(t)
	b := ba(7, 0, 0)
	row := midRow(h, 1)
	p := Table1()[1]
	low, err := h.BER(b, row, p, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	high, err := h.BER(b, row, p, 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	if low.Flips > high.Flips {
		t.Fatalf("flips decreased with hammer count: %d @64K vs %d @256K", low.Flips, high.Flips)
	}
}

func TestBERRejectsBankEdgeVictims(t *testing.T) {
	h := newTestHarness(t)
	rows := h.Device().Geometry().Rows
	for _, phys := range []int{0, rows - 1} {
		if _, err := h.BER(ba(0, 0, 0), phys, Table1()[0], 1024); !errors.Is(err, ErrEdgeVictim) {
			t.Errorf("victim %d: err = %v, want ErrEdgeVictim", phys, err)
		}
	}
}

func TestBERDeterministicAcrossRepeats(t *testing.T) {
	// The paper repeats every experiment five times; the simulated chip
	// is noise-free, so repeats on a re-initialized row are identical.
	h := newTestHarness(t)
	b := ba(6, 1, 2)
	row := midRow(h, 2)
	p := Table1()[3]
	first, err := h.BER(b, row, p, DefaultHammers)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 4; rep++ {
		r, err := h.BER(b, row, p, DefaultHammers)
		if err != nil {
			t.Fatal(err)
		}
		if r.Flips != first.Flips {
			t.Fatalf("repeat %d: %d flips, first run had %d", rep, r.Flips, first.Flips)
		}
	}
}

func TestHCFirstBracketsFirstFlip(t *testing.T) {
	h := newTestHarness(t)
	b := ba(7, 0, 0)
	row := midRow(h, 1)
	p := Table1()[1]
	hc, found, err := h.HCFirst(b, row, p, DefaultHammers)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no HCfirst found in channel 7 within 256K hammers")
	}
	hcFloor := int(h.Device().Config().Fault.HCFloor)
	if hc < hcFloor {
		t.Fatalf("HCfirst %d below the model's absolute floor %d", hc, hcFloor)
	}
	// At HCfirst there are flips; comfortably below, none.
	r, err := h.BER(b, row, p, hc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flips == 0 {
		t.Fatalf("no flips at reported HCfirst %d", hc)
	}
	below := hc - 4*h.HCPrecision
	if below > 0 {
		r, err = h.BER(b, row, p, below)
		if err != nil {
			t.Fatal(err)
		}
		if r.Flips != 0 {
			t.Fatalf("flips already at %d, below reported HCfirst %d", below, hc)
		}
	}
}

func TestHCFirstNotFoundOnStrongRow(t *testing.T) {
	h := newTestHarness(t)
	// Channel 0, last subarray (hardened), tiny hammer budget.
	layout := h.Device().Config().Layout()
	lastSA := layout.Count() - 1
	row := layout.Start(lastSA) + layout.Size(lastSA)/2
	_, found, err := h.HCFirst(ba(0, 0, 0), row, Table1()[1], 15000)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("15K hammers flipped a hardened last-subarray row in the strongest channel")
	}
}

func TestWCDPPrefersChannelMatchedStripe(t *testing.T) {
	h := newTestHarness(t)
	// Channel 7 is true-cell rich: charged cells store 1, so Rowstripe1
	// (victim 0xFF) flips the most cells. Channel 0 is anti-cell rich:
	// Rowstripe0 wins. Check a few mid-subarray rows each.
	cases := []struct {
		ch   int
		want string
	}{
		{ch: 7, want: "Rowstripe1"},
		{ch: 0, want: "Rowstripe0"},
	}
	for _, c := range cases {
		wins := 0
		const rowsTried = 3
		for i := 0; i < rowsTried; i++ {
			row := midRow(h, 1) + i*7
			w, err := h.WCDP(ba(c.ch, 0, 0), row, DefaultHammers)
			if err != nil {
				t.Fatal(err)
			}
			if w.Pattern.Name == c.want {
				wins++
			}
		}
		if wins < 2 {
			t.Errorf("channel %d: %s won only %d/%d rows", c.ch, c.want, wins, rowsTried)
		}
	}
}

func TestWCDPReportsConsistentNumbers(t *testing.T) {
	h := newTestHarness(t)
	w, err := h.WCDP(ba(7, 0, 0), midRow(h, 1), DefaultHammers)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Found {
		t.Fatal("WCDP found no flipping pattern in channel 7")
	}
	if w.HCFirst <= 0 || w.HCFirst > DefaultHammers {
		t.Fatalf("WCDP HCfirst = %d out of range", w.HCFirst)
	}
	if w.BER <= 0 {
		t.Fatal("WCDP BER must be positive when found")
	}
}

func TestVictimsOfInteriorRow(t *testing.T) {
	h := newTestHarness(t)
	b := ba(3, 0, 0)
	m := h.Device().Mapper()
	phys := midRow(h, 1)
	vs, err := h.VictimsOf(b, m.ToLogical(phys))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{m.ToLogical(phys - 1): true, m.ToLogical(phys + 1): true}
	if len(vs) != 2 {
		t.Fatalf("interior aggressor has %d victims (%v), want 2", len(vs), vs)
	}
	for _, v := range vs {
		if !want[v] {
			t.Fatalf("unexpected victim %d, want %v", v, want)
		}
	}
}

func TestVictimsOfSubarrayEdgeRow(t *testing.T) {
	h := newTestHarness(t)
	b := ba(3, 0, 0)
	m := h.Device().Mapper()
	layout := h.Device().Config().Layout()
	edge := layout.End(0) - 1 // last physical row of the first subarray
	vs, err := h.VictimsOf(b, m.ToLogical(edge))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("subarray-edge aggressor has %d victims (%v), want exactly 1 (paper footnote 3)", len(vs), vs)
	}
	if vs[0] != m.ToLogical(edge-1) {
		t.Fatalf("victim %d, want in-subarray neighbour %d", vs[0], m.ToLogical(edge-1))
	}
}

func TestVictimsOfRejectsBadRow(t *testing.T) {
	h := newTestHarness(t)
	if _, err := h.VictimsOf(ba(0, 0, 0), -1); err == nil {
		t.Fatal("negative row accepted")
	}
}

func TestExtendedPatternsAreWeakerThanStripes(t *testing.T) {
	// Solid patterns have no opposite-data aggressors (weakest
	// coupling); the paper's stripes are the strong stimulus. Future
	// work pattern set, implemented as an extension.
	h := newTestHarness(t)
	b := ba(7, 0, 0)
	row := midRow(h, 1)
	stripe, err := h.BER(b, row, Table1()[1], DefaultHammers)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ExtendedPatterns() {
		r, err := h.BER(b, row, p, DefaultHammers)
		if err != nil {
			t.Fatal(err)
		}
		if r.Flips >= stripe.Flips {
			t.Errorf("%s flips %d >= Rowstripe1's %d; same-data aggressors must couple less",
				p.Name, r.Flips, stripe.Flips)
		}
	}
}

func TestExtendedPatternShapes(t *testing.T) {
	ps := ExtendedPatterns()
	if len(ps) != 4 {
		t.Fatalf("%d extended patterns, want 4", len(ps))
	}
	for _, p := range ps {
		if p.Aggressor != p.Victim || p.Outer != p.Victim {
			t.Errorf("%s: solid/colstripe patterns store uniform data across rows", p.Name)
		}
	}
}

func TestBERHoldAmplifies(t *testing.T) {
	h := newTestHarness(t)
	b := ba(0, 0, 0) // weakest channel: minimum-timing hammers at this count do nothing
	row := midRow(h, 1)
	tras := h.Device().Config().Timing.TRAS
	const hammers = 8000
	base, err := h.BERHold(b, row, Table1()[0], hammers, tras)
	if err != nil {
		t.Fatal(err)
	}
	pressed, err := h.BERHold(b, row, Table1()[0], hammers, tras*40)
	if err != nil {
		t.Fatal(err)
	}
	if base.Flips != 0 {
		t.Fatalf("premise broken: %d flips at minimum timing", base.Flips)
	}
	if pressed.Flips == 0 {
		t.Fatal("no RowPress amplification through the harness")
	}
}

func TestHarnessContextCancelsMeasurements(t *testing.T) {
	h := newTestHarness(t)
	b := ba(7, 0, 0)
	row := midRow(h, 1)
	p := Table1()[1]

	ctx, cancel := context.WithCancel(context.Background())
	h.SetContext(ctx)
	// Armed but live: measurements run normally.
	if _, err := h.BER(b, row, p, 2048); err != nil {
		t.Fatalf("armed harness failed a live measurement: %v", err)
	}
	cancel()
	if _, err := h.BER(b, row, p, 2048); !errors.Is(err, context.Canceled) {
		t.Fatalf("BER err = %v, want context.Canceled", err)
	}
	if _, _, err := h.HCFirst(b, row, p, DefaultHammers); !errors.Is(err, context.Canceled) {
		t.Fatalf("HCFirst err = %v, want context.Canceled", err)
	}
	if _, err := h.WCDP(b, row, DefaultHammers); !errors.Is(err, context.Canceled) {
		t.Fatalf("WCDP err = %v, want context.Canceled", err)
	}
	// Disarming restores normal operation; Reset does the same for pooled
	// reuse.
	h.SetContext(nil)
	if _, err := h.BER(b, row, p, 2048); err != nil {
		t.Fatalf("disarmed harness still failing: %v", err)
	}
	h.SetContext(ctx)
	h.Reset()
	if _, err := h.BER(b, row, p, 2048); err != nil {
		t.Fatalf("Reset did not disarm the context: %v", err)
	}
}

func TestHarnessContextCancellationDoesNotPerturbResults(t *testing.T) {
	// A measurement either completes identically or fails with ctx.Err():
	// interleaving cancelled calls must not change subsequent results.
	h := newTestHarness(t)
	b := ba(6, 0, 0)
	row := midRow(h, 1)
	p := Table1()[1]
	want, err := h.BER(b, row, p, DefaultHammers)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.SetContext(ctx)
	if _, err := h.BER(b, row, p, DefaultHammers); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	h.SetContext(nil)
	got, err := h.BER(b, row, p, DefaultHammers)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-cancellation measurement drifted: %+v vs %+v", got, want)
	}
}

func TestVictimsOfBankEdgeAggressor(t *testing.T) {
	// The physically-first row of the bank has a single neighbour.
	h := newTestHarness(t)
	b := ba(2, 0, 0)
	m := h.Device().Mapper()
	vs, err := h.VictimsOf(b, m.ToLogical(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0] != m.ToLogical(1) {
		t.Fatalf("bank-edge aggressor victims = %v, want [%d]", vs, m.ToLogical(1))
	}
}
