package core

import (
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
)

// maxProbeBatch bounds how many victim probes one batched program
// carries, so paper-geometry sweeps (thousands of sampled rows per bank)
// cannot build unbounded instruction streams or read arenas. 64 probes
// amortize program validation and dispatch to well under 2% of one
// probe's cost.
const maxProbeBatch = 64

// BERBatch measures BER for a batch of victim rows in one bank under one
// pattern, each at the same hammer count. It is byte-equivalent to
// calling BER per victim in order — per-cell fault quantities are pure
// functions of (seed, coordinates) and every probe rewrites its victim,
// aggressor and outer rows before hammering, so probe concatenation
// cannot change any measured value — but builds and validates a single
// program per maxProbeBatch victims, amortizing program assembly,
// validation, payload interning and dispatch across the batch.
func (h *Harness) BERBatch(ba addr.BankAddr, physVictims []int, p Pattern, hammers int) ([]BERResult, error) {
	return h.BERBatchHold(ba, physVictims, p, hammers, h.dev.Config().Timing.TRAS)
}

// BERBatchHold is BERBatch with a per-activation hold time (RowPress),
// equivalent to calling BERHold per victim in order.
func (h *Harness) BERBatchHold(ba addr.BankAddr, physVictims []int, p Pattern, hammers int, holdPS int64) ([]BERResult, error) {
	out := make([]BERResult, len(physVictims))
	for lo := 0; lo < len(physVictims); lo += maxProbeBatch {
		hi := lo + maxProbeBatch
		if hi > len(physVictims) {
			hi = len(physVictims)
		}
		if err := h.probeBatch(ba, physVictims[lo:hi], nil, hammers, p, holdPS, out[lo:hi]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// probeBatch runs one batched probe program: for each victim, the Table 1
// init layout, a double-sided hammer (counts[j] hammers, or uniformCount
// when counts is nil), and a victim read-out, with a segment boundary
// after each probe so elapsed time and the refresh budget stay
// attributable per probe. Results land in out[j].
func (h *Harness) probeBatch(ba addr.BankAddr, victims []int, counts []int, uniformCount int,
	p Pattern, holdPS int64, out []BERResult) error {
	if len(victims) == 0 {
		return nil
	}
	if err := h.cancelled(); err != nil {
		return err
	}
	rows := h.dev.Geometry().Rows
	for _, v := range victims {
		if v <= 0 || v >= rows-1 {
			return fmt.Errorf("%w: physical row %d", ErrEdgeVictim, v)
		}
	}
	m := h.dev.Mapper()
	minTiming := holdPS <= h.dev.Config().Timing.TRAS
	b := h.builder()
	bounds := h.boundsScratch[:0]
	for j, phys := range victims {
		n := uniformCount
		if counts != nil {
			n = counts[j]
		}
		la := m.ToLogical(phys - 1)
		lb := m.ToLogical(phys + 1)
		h.initPattern(b, ba, phys, p)
		if minTiming {
			b.HammerDouble(ba, la, lb, int64(n))
		} else {
			b.HammerDoubleHold(ba, la, lb, int64(n), holdPS)
		}
		b.ReadRowOut(ba, m.ToLogical(phys))
		bounds = append(bounds, b.Len())
	}
	h.boundsScratch = bounds
	prog, err := b.Build()
	if err != nil {
		return err
	}
	res, segs, err := h.runner.RunSegments(h.dev, h.dev.Geometry(), prog, bounds, h.cancelled)
	if err != nil {
		return err
	}
	bits := h.dev.Geometry().RowBits()
	for j := range victims {
		seg := segs[j]
		if h.EnforceBudget && minTiming && seg.Elapsed > RefreshBudget {
			return fmt.Errorf("core: experiment took %.2f ms, over the 27 ms refresh budget",
				float64(seg.Elapsed)/1e9)
		}
		flips := 0
		for _, col := range res.Reads[seg.Reads[0]:seg.Reads[1]] {
			for _, v := range col {
				d := v ^ p.Victim
				for d != 0 {
					d &= d - 1
					flips++
				}
			}
		}
		out[j] = BERResult{Flips: flips, Bits: bits, Elapsed: seg.Elapsed}
	}
	return nil
}

// HCFirstBatch measures HCfirst for a batch of victim rows in one bank
// under one pattern, equivalent to calling HCFirst per victim in order
// but running each search round as one batched probe program across all
// still-active victims (a breadth-first binary search): the ceiling
// probe for the whole batch first, then each halving round batched.
// Every victim sees exactly the probe sequence the sequential search
// would have issued, so results are identical.
func (h *Harness) HCFirstBatch(ba addr.BankAddr, physVictims []int, p Pattern, maxHammers int) ([]int, []bool, error) {
	return h.HCFirstBatchHold(ba, physVictims, p, maxHammers, h.dev.Config().Timing.TRAS)
}

// HCFirstBatchHold is HCFirstBatch with a per-activation hold time
// (RowPress), equivalent to calling HCFirstHold per victim in order.
func (h *Harness) HCFirstBatchHold(ba addr.BankAddr, physVictims []int, p Pattern, maxHammers int, holdPS int64) ([]int, []bool, error) {
	n := len(physVictims)
	hc := make([]int, n)
	found := make([]bool, n)
	if n == 0 {
		return hc, found, nil
	}
	res := make([]BERResult, n)
	// Ceiling probe: a victim that does not flip at maxHammers is done.
	for lo := 0; lo < n; lo += maxProbeBatch {
		hi := lo + maxProbeBatch
		if hi > n {
			hi = n
		}
		if err := h.probeBatch(ba, physVictims[lo:hi], nil, maxHammers, p, holdPS, res[lo:hi]); err != nil {
			return nil, nil, err
		}
	}
	prec := h.HCPrecision
	if prec < 1 {
		prec = 1
	}
	los := make([]int, n)
	his := make([]int, n)
	var active []int // indexes into physVictims still binary-searching
	for j := 0; j < n; j++ {
		if res[j].Flips > 0 {
			found[j] = true
			los[j], his[j] = 0, maxHammers
			if maxHammers > prec {
				active = append(active, j)
			}
		}
	}
	// Binary-search rounds: all active victims probe their midpoints in
	// one batched program per round (chunked at maxProbeBatch).
	vict := make([]int, 0, len(active))
	mids := make([]int, 0, len(active))
	for len(active) > 0 {
		vict = vict[:0]
		mids = mids[:0]
		for _, j := range active {
			vict = append(vict, physVictims[j])
			mids = append(mids, los[j]+(his[j]-los[j])/2)
		}
		for lo := 0; lo < len(vict); lo += maxProbeBatch {
			hi := lo + maxProbeBatch
			if hi > len(vict) {
				hi = len(vict)
			}
			if err := h.probeBatch(ba, vict[lo:hi], mids[lo:hi], 0, p, holdPS, res[lo:hi]); err != nil {
				return nil, nil, err
			}
		}
		next := active[:0]
		for k, j := range active {
			if res[k].Flips > 0 {
				his[j] = mids[k]
			} else {
				los[j] = mids[k]
			}
			if his[j]-los[j] > prec {
				next = append(next, j)
			}
		}
		active = next
	}
	for j := 0; j < n; j++ {
		if found[j] {
			hc[j] = his[j]
		}
	}
	return hc, found, nil
}
