package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/bender"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

// ErrEdgeVictim marks victims at the very first or last row of a bank,
// which have no double-sided aggressor pair.
var ErrEdgeVictim = errors.New("core: victim at bank edge has no double-sided aggressors")

// RefreshBudget is the paper's experiment-time budget: every test must
// finish within 27 ms, comfortably inside the 32 ms refresh window where
// the standard guarantees no retention errors, so retention failures
// cannot contaminate RowHammer measurements.
const RefreshBudget = 27_000_000_000 // 27 ms in picoseconds

// Harness drives the paper's per-row experiments through DRAM Bender
// programs against one device.
type Harness struct {
	dev    *hbm.Device
	runner *bender.Runner
	// bld is the reusable program builder: each measurement resets it
	// instead of allocating a fresh instruction stream and payload table,
	// which keeps the steady-state BER probe allocation-free.
	bld *bender.Builder
	// boundsScratch is the reusable segment-boundary slice of the
	// batched probe path (batch.go).
	boundsScratch []int

	// ctx, when non-nil, aborts the measurement loops: every BER
	// measurement (and therefore every HCfirst probe and WCDP candidate)
	// checks it before touching the device. See SetContext.
	ctx context.Context

	// EnforceBudget makes BER fail if a measurement exceeds the 27 ms
	// budget (on by default, as in the paper's methodology).
	EnforceBudget bool

	// HCPrecision is the absolute hammer-count resolution of the HCfirst
	// binary search.
	HCPrecision int
}

// DefaultHCPrecision is the HCfirst binary-search resolution a fresh
// harness uses, in hammers.
const DefaultHCPrecision = 128

// NewHarness prepares a device for characterization: it disables on-die
// ECC via the mode registers (the paper's step 4 of interference
// elimination; periodic refresh is simply never issued, which also keeps
// the proprietary TRR dormant — steps 1 and 2).
func NewHarness(d *hbm.Device) (*Harness, error) {
	h := &Harness{
		dev:           d,
		runner:        bender.NewRunner(d.Config().Timing),
		bld:           bender.NewBuilder(d.Config().Timing, d.Geometry()),
		EnforceBudget: true,
		HCPrecision:   DefaultHCPrecision,
	}
	b := h.builder()
	b.DisableECC()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	if _, err := h.runner.Run(d, d.Geometry(), prog); err != nil {
		return nil, fmt.Errorf("core: disabling ECC: %w", err)
	}
	return h, nil
}

// NewHarnessFromConfig builds a fresh device and a harness over it.
func NewHarnessFromConfig(cfg *config.Config) (*Harness, error) {
	d, err := hbm.New(cfg)
	if err != nil {
		return nil, err
	}
	return NewHarness(d)
}

// Device returns the underlying device.
func (h *Harness) Device() *hbm.Device { return h.dev }

// Reset restores the harness tunables to their NewHarness defaults, so a
// pooled harness is leased out in a known configuration regardless of
// what its previous lessee changed. It also disarms any cancellation
// context, so a cancelled run's context cannot leak into the next lease.
func (h *Harness) Reset() {
	h.ctx = nil
	h.EnforceBudget = true
	h.HCPrecision = DefaultHCPrecision
}

// SetContext arms mid-measurement cancellation: every subsequent BER
// measurement — including each probe of an HCfirst search and each WCDP
// candidate — returns ctx.Err() once ctx is done, so a single huge
// per-channel job (a full-resolution paper-geometry sweep) aborts within
// one row's worth of work instead of running the channel to completion.
// A nil ctx disarms the check. The engine's MapHarness arms every leased
// harness with the run's context; Reset (called on pool Put) disarms it.
//
// Cancellation never changes measured values: a measurement either
// completes exactly as it would have, or fails with ctx.Err().
func (h *Harness) SetContext(ctx context.Context) { h.ctx = ctx }

// cancelled returns the armed context's error, if any.
func (h *Harness) cancelled() error {
	if h.ctx == nil {
		return nil
	}
	return h.ctx.Err()
}

// builder returns the harness's reusable program builder, cleared for a
// new program. The previous program (and any Result still referencing the
// runner's buffers) must no longer be in use — every harness measurement
// consumes its reads before building the next program.
func (h *Harness) builder() *bender.Builder {
	h.bld.Reset()
	return h.bld
}

func (h *Harness) run(b *bender.Builder) (*bender.Result, error) {
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return h.runner.Run(h.dev, h.dev.Geometry(), prog)
}

// initPattern emits writes for the victim, aggressor and outer rows of
// the Table 1 layout around the physical victim row.
func (h *Harness) initPattern(b *bender.Builder, ba addr.BankAddr, physVictim int, p Pattern) {
	m := h.dev.Mapper()
	rows := h.dev.Geometry().Rows
	for d := -PatternRadius; d <= PatternRadius; d++ {
		phys := physVictim + d
		if phys < 0 || phys >= rows {
			continue
		}
		fill := p.Outer
		switch {
		case d == 0:
			fill = p.Victim
		case d == -1 || d == 1:
			fill = p.Aggressor
		}
		b.WriteRowFill(ba, m.ToLogical(phys), fill)
	}
}

// BERResult is one BER measurement.
type BERResult struct {
	Flips   int
	Bits    int
	Elapsed int64 // simulated picoseconds from first init to read-out
}

// BER returns the bit error rate as a fraction in [0, 1].
func (r BERResult) BER() float64 { return float64(r.Flips) / float64(r.Bits) }

// BER runs the paper's per-row BER experiment: initialize the Table 1
// layout around the physical victim, hammer the two adjacent rows
// double-sided at minimum timing, read the victim back and count
// bitflips.
func (h *Harness) BER(ba addr.BankAddr, physVictim int, p Pattern, hammers int) (BERResult, error) {
	return h.BERHold(ba, physVictim, p, hammers, h.dev.Config().Timing.TRAS)
}

// BERHold is BER with each aggressor activation held open for holdPS
// before its precharge — the RowPress access pattern the paper lists as
// future work. The 27 ms refresh budget is enforced only for
// minimum-timing runs: pressed runs intentionally trade time for
// amplification.
func (h *Harness) BERHold(ba addr.BankAddr, physVictim int, p Pattern, hammers int, holdPS int64) (BERResult, error) {
	if err := h.cancelled(); err != nil {
		return BERResult{}, err
	}
	rows := h.dev.Geometry().Rows
	if physVictim <= 0 || physVictim >= rows-1 {
		return BERResult{}, fmt.Errorf("%w: physical row %d", ErrEdgeVictim, physVictim)
	}
	m := h.dev.Mapper()
	lv := m.ToLogical(physVictim)
	la := m.ToLogical(physVictim - 1)
	lb := m.ToLogical(physVictim + 1)

	minTiming := holdPS <= h.dev.Config().Timing.TRAS
	b := h.builder()
	h.initPattern(b, ba, physVictim, p)
	if minTiming {
		b.HammerDouble(ba, la, lb, int64(hammers))
	} else {
		b.HammerDoubleHold(ba, la, lb, int64(hammers), holdPS)
	}
	b.ReadRowOut(ba, lv)
	res, err := h.run(b)
	if err != nil {
		return BERResult{}, err
	}
	if h.EnforceBudget && minTiming && res.Elapsed > RefreshBudget {
		return BERResult{}, fmt.Errorf("core: experiment took %.2f ms, over the 27 ms refresh budget",
			float64(res.Elapsed)/1e9)
	}
	flips := 0
	for _, col := range res.Reads {
		for _, v := range col {
			d := v ^ p.Victim
			for d != 0 {
				d &= d - 1
				flips++
			}
		}
	}
	return BERResult{
		Flips:   flips,
		Bits:    h.dev.Geometry().RowBits(),
		Elapsed: res.Elapsed,
	}, nil
}

// HCFirst measures the minimum hammer count that induces the first
// bitflip in the victim, searching up to maxHammers (the paper uses up to
// 256K). found is false when even maxHammers flips nothing. Bitflips are
// monotone in the hammer count, so exponential-plus-binary search is
// exact to HCPrecision.
func (h *Harness) HCFirst(ba addr.BankAddr, physVictim int, p Pattern, maxHammers int) (hc int, found bool, err error) {
	return h.HCFirstHold(ba, physVictim, p, maxHammers, h.dev.Config().Timing.TRAS)
}

// HCFirstHold is HCFirst with a per-activation hold time (RowPress).
func (h *Harness) HCFirstHold(ba addr.BankAddr, physVictim int, p Pattern, maxHammers int, holdPS int64) (hc int, found bool, err error) {
	probe := func(n int) (bool, error) {
		r, err := h.BERHold(ba, physVictim, p, n, holdPS)
		if err != nil {
			return false, err
		}
		return r.Flips > 0, nil
	}
	flips, err := probe(maxHammers)
	if err != nil {
		return 0, false, err
	}
	if !flips {
		return 0, false, nil
	}
	lo, hi := 0, maxHammers // lo: no flips; hi: flips
	prec := h.HCPrecision
	if prec < 1 {
		prec = 1
	}
	for hi-lo > prec {
		mid := lo + (hi-lo)/2
		flips, err := probe(mid)
		if err != nil {
			return 0, false, err
		}
		if flips {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// WCDPResult reports the worst-case data pattern of one row.
type WCDPResult struct {
	Pattern Pattern
	// HCFirst is the row's minimum hammer count under the worst pattern;
	// Found is false if no pattern flips within maxHammers.
	HCFirst int
	Found   bool
	// BER is the row's bit error rate under the worst pattern at
	// maxHammers hammers.
	BER float64
}

// WCDP determines the worst-case data pattern of a row per the paper's
// definition: the pattern with the smallest HCfirst; ties broken by the
// largest BER at the maximum hammer count.
func (h *Harness) WCDP(ba addr.BankAddr, physVictim int, maxHammers int) (WCDPResult, error) {
	best := WCDPResult{HCFirst: maxHammers + 1}
	for _, p := range Table1() {
		hc, found, err := h.HCFirst(ba, physVictim, p, maxHammers)
		if err != nil {
			return WCDPResult{}, err
		}
		ber, err := h.BER(ba, physVictim, p, maxHammers)
		if err != nil {
			return WCDPResult{}, err
		}
		cand := WCDPResult{Pattern: p, HCFirst: hc, Found: found, BER: ber.BER()}
		if better(cand, best) {
			best = cand
		}
	}
	if !best.Found {
		best.HCFirst = 0
	}
	return best, nil
}

// better reports whether a beats b as the worst-case pattern.
func better(a, b WCDPResult) bool {
	if a.Found != b.Found {
		return a.Found
	}
	if !a.Found {
		return a.BER > b.BER
	}
	if a.HCFirst != b.HCFirst {
		return a.HCFirst < b.HCFirst
	}
	return a.BER > b.BER
}
