// Package core implements the paper's RowHammer characterization
// methodology on top of the simulated device and the DRAM Bender
// program layer: the Table 1 data patterns, double- and single-sided
// hammering, BER and HCfirst measurement, worst-case data pattern (WCDP)
// selection, and the single-sided adjacency probing that reverse-engineers
// the in-DRAM row mapping.
package core

// Pattern is one of the paper's Table 1 data patterns: the byte written to
// the victim row (V), to the aggressor rows (V±1), and to the surrounding
// rows (V±[2:8]).
type Pattern struct {
	Name      string
	Victim    byte
	Aggressor byte
	Outer     byte
}

// Table1 returns the four data patterns of Table 1 in paper order.
func Table1() []Pattern {
	return []Pattern{
		{Name: "Rowstripe0", Victim: 0x00, Aggressor: 0xFF, Outer: 0x00},
		{Name: "Rowstripe1", Victim: 0xFF, Aggressor: 0x00, Outer: 0xFF},
		{Name: "Checkered0", Victim: 0x55, Aggressor: 0xAA, Outer: 0x55},
		{Name: "Checkered1", Victim: 0xAA, Aggressor: 0x55, Outer: 0xAA},
	}
}

// ExtendedPatterns returns data patterns beyond Table 1, part of the
// paper's future work ("a richer set of data patterns"). Solid patterns
// store the same value everywhere — no opposite-data aggressor coupling,
// so they are the weakest stimulus; column stripes alternate data along
// the row (in 4-bit runs) with uniform data across rows.
func ExtendedPatterns() []Pattern {
	return []Pattern{
		{Name: "Solid0", Victim: 0x00, Aggressor: 0x00, Outer: 0x00},
		{Name: "Solid1", Victim: 0xFF, Aggressor: 0xFF, Outer: 0xFF},
		{Name: "Colstripe0", Victim: 0x0F, Aggressor: 0x0F, Outer: 0x0F},
		{Name: "Colstripe1", Victim: 0xF0, Aggressor: 0xF0, Outer: 0xF0},
	}
}

// WCDPName labels the per-row worst-case data pattern series in figures.
const WCDPName = "WCDP"

// DefaultHammers is the paper's BER hammer count: 256K hammers, i.e. 512K
// activations split across the two aggressor rows.
const DefaultHammers = 256 * 1024

// PatternRadius is how far from the victim rows are initialized (V±[2:8]).
const PatternRadius = 8
