package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// The experiment registry: every study in the repo — the paper's figures,
// the fleet scan, the Section 5/6 extensions — registers here as a named
// Experiment that decomposes into a Plan of indexed jobs plus a
// deterministic fold into a results.Artifact. Planning is a pure function
// of the options, identical in every process, so one contract gives every
// study the fleet features the multichip scan pioneered: -shard i/N job
// slicing, serialized artifacts with conflict-checked merges, shared
// CSV/JSON export, progress and cancellation, and a pluggable scheduler
// (engine.Planner) — all without per-driver plumbing.

// Options is the uniform knob set of a registry run. Not every experiment
// reads every field; zero values select each experiment's defaults.
type Options struct {
	// Cfg is the chip design; nil means config.PaperChip().
	Cfg *config.Config
	// Rows is the experiment's sampling density: rows per region for the
	// spatial sweeps, rows per bank region for fig6, victim rows per
	// point for the extension studies.
	Rows int
	// Hammers is the hammer budget / HCfirst search ceiling.
	Hammers int
	// Seeds is the chip-instance count for fleet experiments (multichip).
	Seeds int
	// Iterations is the U-TRR iteration count for the TRR studies.
	Iterations int
	// Workers bounds per-job device parallelism (e.g. devices per chip
	// sweep inside one multichip job).
	Workers int
	// Parallel bounds how many plan jobs run at once; <= 0 means one per
	// CPU.
	Parallel int
	// Planner selects the job-to-worker assignment strategy; planner
	// choice never changes the artifact, only the schedule.
	Planner engine.Planner
	// Shard/ShardCount select one contiguous slice of the plan's job list
	// (results.ShardRange). Zero values mean the whole plan. All N shard
	// artifacts merge back into output byte-identical to an unsharded
	// run.
	Shard, ShardCount int
	// Ctx cancels the run down to per-measurement granularity.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished job.
	Progress engine.ProgressFunc
}

// Job is one schedulable unit of an experiment plan. Its payload must be
// a pure function of the job itself (the chip config, its key and the
// plan options), never of scheduling, which is what keeps artifacts
// byte-identical across worker counts, planners and shard splits.
type Job struct {
	// Key names the job's coordinate on the plan axis ("seed 0x2",
	// "ch3", "t=65C"). Keys are unique within a plan and recorded in the
	// artifact for merge conflict checking.
	Key string
	// Weight is the planner's relative cost estimate; <= 0 means 1.
	Weight float64
	// Run measures the job. h is a pool-leased warmed harness when the
	// plan declares Harness, nil otherwise (studies that need fresh or
	// specially-prepared devices build their own).
	Run func(ctx context.Context, h *core.Harness) (any, error)
}

// Fold accumulates job payloads into an artifact. Add is called once per
// job of the planned slice in strict job-index order; Finish seals the
// artifact. Folds populate Groups/Chips and the seed range; the run
// stamps the rest of the provenance.
type Fold struct {
	Add    func(i int, payload any) error
	Finish func() (*results.Artifact, error)
}

// Plan is an experiment decomposed for one option set: the full job list
// (identical in every process for the same options — shards slice it by
// index) plus the fold constructor.
type Plan struct {
	// Axis names the planning axis: results.AxisSeed for fleet scans,
	// else the unit a shard slices ("channel", "bank", "point").
	Axis string
	// Cfg is the resolved chip config (never nil).
	Cfg *config.Config
	// Harness, when set, hands every job a warmed pool harness.
	Harness bool
	// Jobs is the full, shard-invariant job list.
	Jobs []Job
	// Params pins the option values that must match for two shard
	// artifacts to merge.
	Params map[string]string
	// NewFold returns the fold for the job slice [lo, hi). Folds must
	// allocate the artifact's full group set regardless of the slice —
	// unmeasured groups stay empty — so that stream-merging shard
	// artifacts reproduces the single-process artifact exactly.
	NewFold func(lo, hi int) *Fold
}

// Experiment is one registered study.
type Experiment struct {
	// Name is the registry key and the artifact's Meta.Tool.
	Name string
	// Title is the one-line human description shown by `characterize
	// -experiment list`.
	Title string
	// Plan decomposes a run for one option set.
	Plan func(o Options) (*Plan, error)
	// Render renders a complete (unsharded or merged) artifact as the
	// experiment's report; nil means the generic distribution render.
	Render func(a *results.Artifact) string
}

var registry = map[string]*Experiment{}

// register adds an experiment at init time; duplicate names are a
// programming error.
func register(e *Experiment) {
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", e.Name))
	}
	registry[e.Name] = e
}

func init() {
	register(sweepExperiment())
	register(fig6Experiment())
	register(multiChipExperiment())
	register(trrStudyExperiment())
	register(trrBypassExperiment())
	register(rowPressExperiment())
	register(tempSweepExperiment())
	register(crossChannelExperiment())
	register(utrrProbeExperiment())
}

// All returns every registered experiment, sorted by name.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup resolves a registry name, listing the valid names on failure.
func Lookup(name string) (*Experiment, error) {
	if e, ok := registry[name]; ok {
		return e, nil
	}
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(names, ", "))
}

// Run plans, shards and executes a registered experiment, returning the
// (possibly shard-slice) artifact. The artifact is byte-identical for any
// Parallel count and Planner, and merging all shards of one option set
// reproduces the unsharded artifact.
func Run(name string, o Options) (*results.Artifact, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	p, err := e.Plan(o)
	if err != nil {
		return nil, fmt.Errorf("experiments: planning %s: %w", name, err)
	}
	shard, of := o.Shard, o.ShardCount
	if of <= 0 {
		shard, of = 0, 1
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("experiments: shard %d/%d out of range", shard, of)
	}
	n := len(p.Jobs)
	lo, hi := results.ShardRange(n, shard, of)
	if lo == hi {
		return nil, fmt.Errorf("experiments: shard %d/%d of %s covers no jobs (the plan has %d %s jobs)",
			shard, of, name, n, p.Axis)
	}
	a, err := executePlan(p, o, lo, hi)
	if err != nil {
		return nil, err
	}
	stampMeta(a, e.Name, p, lo, hi, shard, of)
	return a, nil
}

// PlanInfo describes an experiment plan without executing it: everything
// a coordinator needs to partition a run across workers and everything a
// worker needs to stamp a resumable journal. Because planning is a pure
// function of the options, every process computing a PlanInfo for the
// same option set gets the same answer.
type PlanInfo struct {
	// Jobs is the plan's total job count, the unit slices partition.
	Jobs int
	// Axis is the planning axis (results.AxisSeed, "channel", "point"...).
	Axis string
	// ConfigHash is the resolved chip config's fingerprint, hex, as
	// stamped into artifact provenance.
	ConfigHash string
	// Params are the plan's merge-compatibility parameters.
	Params map[string]string
}

// Describe plans a registered experiment and returns its PlanInfo.
func Describe(name string, o Options) (PlanInfo, error) {
	e, err := Lookup(name)
	if err != nil {
		return PlanInfo{}, err
	}
	p, err := e.Plan(o)
	if err != nil {
		return PlanInfo{}, fmt.Errorf("experiments: planning %s: %w", name, err)
	}
	return PlanInfo{
		Jobs:       len(p.Jobs),
		Axis:       p.Axis,
		ConfigHash: fmt.Sprintf("%016x", p.Cfg.Hash()),
		Params:     p.Params,
	}, nil
}

// RunSlice executes the contiguous job slice [lo, hi) of an experiment
// plan — the checkpoint-granular unit of the fleet worker, which journals
// one sealed slice artifact per completed chunk. Unlike Run, the slice is
// arbitrary rather than derived from a shard index; o.Shard/ShardCount
// are ignored. Slice artifacts carry the same job-slice (or seed-range)
// provenance as shard artifacts, so merging adjacent slices through
// results.Merge reproduces, byte for byte, the artifact a single RunSlice
// over the union would have produced — the invariant checkpoint/resume
// rests on.
func RunSlice(name string, o Options, lo, hi int) (*results.Artifact, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	p, err := e.Plan(o)
	if err != nil {
		return nil, fmt.Errorf("experiments: planning %s: %w", name, err)
	}
	if lo < 0 || hi > len(p.Jobs) || lo >= hi {
		return nil, fmt.Errorf("experiments: slice [%d,%d) of %s out of range (the plan has %d %s jobs)",
			lo, hi, name, len(p.Jobs), p.Axis)
	}
	a, err := executePlan(p, o, lo, hi)
	if err != nil {
		return nil, err
	}
	stampMeta(a, e.Name, p, lo, hi, 0, 1)
	return a, nil
}

// executePlan runs the job slice [lo, hi) through the engine and folds
// the payloads in job-index order.
func executePlan(p *Plan, o Options, lo, hi int) (*results.Artifact, error) {
	fold := p.NewFold(lo, hi)
	weights := make([]float64, hi-lo)
	for i := range weights {
		if w := p.Jobs[lo+i].Weight; w > 0 {
			weights[i] = w
		} else {
			weights[i] = 1
		}
	}
	eo := engine.Options{
		Ctx:        o.Ctx,
		Workers:    o.Parallel,
		OnProgress: o.Progress,
		Planner:    o.Planner,
		Weights:    weights,
	}
	var err error
	if p.Harness {
		err = engine.ReduceHarness(eo, p.Cfg, hi-lo,
			func(ctx context.Context, h *core.Harness, i int) (any, error) {
				return p.Jobs[lo+i].Run(ctx, h)
			},
			func(i int, v any) error { return fold.Add(lo+i, v) })
	} else {
		err = engine.Reduce(eo, hi-lo,
			func(ctx context.Context, i int) (any, error) {
				return p.Jobs[lo+i].Run(ctx, nil)
			},
			func(i int, v any) error { return fold.Add(lo+i, v) })
	}
	if err != nil {
		return nil, err
	}
	return fold.Finish()
}

// stampMeta fills the provenance the run owns: schema and build
// identity, the sharding coordinates, and the plan-axis job slice. Folds
// own the group payload, Params and — on the seed axis — the seed range.
func stampMeta(a *results.Artifact, tool string, p *Plan, lo, hi, shard, of int) {
	m := &a.Meta
	m.Format = results.FormatVersion
	m.Tool = tool
	m.CodeVersion = results.CodeVersion()
	m.ConfigHash = fmt.Sprintf("%016x", p.Cfg.Hash())
	m.Shard, m.ShardCount = shard, of
	m.Params = p.Params
	m.JobAxis = p.Axis
	if p.Axis != results.AxisSeed {
		// Non-seed axes shard one chip's study: the seed range is the
		// single configured seed and the job slice carries the shard
		// provenance.
		m.SeedFirst, m.SeedCount = p.Cfg.Seed, 1
		m.JobFirst, m.JobCount = lo, hi-lo
		m.JobKeys = make([]string, 0, hi-lo)
		for _, j := range p.Jobs[lo:hi] {
			m.JobKeys = append(m.JobKeys, j.Key)
		}
	}
}

// pointFold builds the NewFold shared by point-axis experiments whose
// payloads are scalar samples or sample sets: one group per plan job
// (always the full set, so shards stream-merge) holding one metric over
// the quantile domain [lo, hi). Payloads may be float64, int or
// []float64.
func pointFold(jobs []Job, metric string, lo, hi float64) func(int, int) *Fold {
	return func(_, _ int) *Fold {
		a := &results.Artifact{Meta: results.Meta{GroupBy: results.ByPoint.String()}}
		for _, j := range jobs {
			a.Groups = append(a.Groups, results.Group{
				Key:     results.Key{Channel: results.NoChannel, Point: j.Key},
				Metrics: []results.Metric{{Name: metric, Stream: stats.NewStream(lo, hi)}},
			})
		}
		return &Fold{
			Add: func(i int, payload any) error {
				s := a.Groups[i].Metrics[0].Stream
				switch v := payload.(type) {
				case []float64:
					for _, x := range v {
						s.Add(x)
					}
				case float64:
					s.Add(v)
				case int:
					s.Add(float64(v))
				default:
					return fmt.Errorf("experiments: job %q returned %T, want samples", a.Groups[i].Key.Point, payload)
				}
				return nil
			},
			Finish: func() (*results.Artifact, error) { return a, nil },
		}
	}
}

// RenderArtifact is the generic experiment report: provenance header plus
// the distribution summary at the artifact's stored axis. Registered
// renderers build on or replace it.
func RenderArtifact(a *results.Artifact) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "experiment %s: %d job(s) on axis %q, chip config %s\n",
		a.Meta.Tool, a.Meta.JobCount, a.Meta.JobAxis, a.Meta.ConfigHash)
	if a.Meta.JobCount > 0 && a.Meta.ShardCount > 1 {
		fmt.Fprintf(&sb, "shard %d/%d covering jobs [%d,+%d)\n",
			a.Meta.Shard, a.Meta.ShardCount, a.Meta.JobFirst, a.Meta.JobCount)
	}
	sb.WriteString(results.RenderGroups(a.Groups,
		func(name string) string { return name },
		nil))
	return sb.String()
}

// Render renders an artifact with its experiment's registered renderer,
// falling back to the generic one for unknown tools (e.g. artifacts from
// a newer build).
func Render(a *results.Artifact) string {
	if e, ok := registry[a.Meta.Tool]; ok && e.Render != nil {
		return e.Render(a)
	}
	return RenderArtifact(a)
}
