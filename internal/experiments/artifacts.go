package experiments

import (
	"fmt"
	"math"
	"strconv"

	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// Artifact routing for the figure drivers that produce distributions:
// the Figs. 3-5 sweep and the Fig. 6 bank scatter emit their summary
// outputs through the same results.Artifact schema the multi-chip fleet
// study uses, so one CSV/JSON renderer and one merge/compatibility path
// serve every distribution export in the repo. (Drivers whose output is
// a scalar or a curve — TRR period, RowPress slopes — have nothing to
// gain from a distribution schema and keep their bespoke renders.)

// Artifact condenses the sweep's per-row WCDP metrics into a
// region×channel results artifact for the sweep's single chip instance.
// The groups match the multi-chip study's schema, so a sweep artifact is
// the single-chip degenerate case of a fleet artifact.
func (s *Sweep) Artifact() *results.Artifact {
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "sweep",
			CodeVersion: results.CodeVersion(),
			ConfigHash:  fmt.Sprintf("%016x", s.Opts.Cfg.Hash()),
			GroupBy:     results.ByRegionChannel.String(),
			SeedFirst:   s.Opts.Cfg.Seed,
			SeedCount:   1,
			ShardCount:  1,
			Params: map[string]string{
				"rows_per_region": strconv.Itoa(s.Opts.RowsPerRegion),
				"hammers":         strconv.Itoa(s.Opts.Hammers),
			},
		},
		Groups: newFineGroups(s.Opts.Cfg),
	}
	foldSweepRows(s.Opts.Cfg, a.Groups, s.Rows)
	return a
}

// Fig6 artifact metric names.
const (
	metricBankMeanBER = "bank_mean_ber_pct"
	metricBankCV      = "bank_cv"
)

// Artifact condenses the Fig. 6 scatter into a per-channel results
// artifact: each channel's distribution of per-bank mean BER (percent)
// and coefficient of variation across the channel's banks — the figure's
// "channel variation dominates bank variation" observation as data.
func (f *Fig6) Artifact() *results.Artifact {
	g := f.Opts.Cfg.Geometry
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "fig6",
			CodeVersion: results.CodeVersion(),
			ConfigHash:  fmt.Sprintf("%016x", f.Opts.Cfg.Hash()),
			GroupBy:     results.ByChannel.String(),
			SeedFirst:   f.Opts.Cfg.Seed,
			SeedCount:   1,
			ShardCount:  1,
			Params: map[string]string{
				"rows_per_bank_region": strconv.Itoa(f.Opts.RowsPerBankRegion),
				"hammers":              strconv.Itoa(f.Opts.Hammers),
			},
		},
	}
	for ch := 0; ch < g.Channels; ch++ {
		a.Groups = append(a.Groups, results.Group{
			Key: results.Key{Channel: ch},
			Metrics: []results.Metric{
				// Mean BER is already in percent; CV is dimensionless and
				// in practice well under 10.
				{Name: metricBankMeanBER, Stream: stats.NewStream(0, 100)},
				{Name: metricBankCV, Stream: stats.NewStream(0, 10)},
			},
		})
	}
	for _, p := range f.Points {
		grp := &a.Groups[p.Bank.Channel]
		grp.Metrics[0].Stream.Add(p.MeanBER)
		// CV is NaN for an all-zero bank (zero mean); streams hold finite
		// samples only, so such banks are excluded from the CV
		// distribution the way never-flipping rows are from HCfirst.
		if !math.IsNaN(p.CV) {
			grp.Metrics[1].Stream.Add(p.CV)
		}
	}
	return a
}
