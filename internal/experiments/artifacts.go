package experiments

import (
	"fmt"
	"math"
	"strconv"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// Artifact routing for the figure drivers that produce distributions:
// the Figs. 3-5 sweep and the Fig. 6 bank scatter emit their summary
// outputs through the same results.Artifact schema the multi-chip fleet
// study uses, so one CSV/JSON renderer and one merge/compatibility path
// serve every distribution export in the repo. (Drivers whose output is
// a scalar or a curve — TRR period, RowPress slopes — have nothing to
// gain from a distribution schema and keep their bespoke renders.)

// Artifact condenses the sweep's per-row WCDP metrics into a
// region×channel results artifact for the sweep's single chip instance.
// The groups match the multi-chip study's schema, so a sweep artifact is
// the single-chip degenerate case of a fleet artifact; the job
// provenance matches an unsharded "sweep" registry run (one job per
// channel).
func (s *Sweep) Artifact() *results.Artifact {
	channels := s.Opts.Cfg.Geometry.Channels
	keys := make([]string, channels)
	for ch := range keys {
		keys[ch] = fmt.Sprintf("ch%d", ch)
	}
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "sweep",
			CodeVersion: results.CodeVersion(),
			ConfigHash:  fmt.Sprintf("%016x", s.Opts.Cfg.Hash()),
			GroupBy:     results.ByRegionChannel.String(),
			SeedFirst:   s.Opts.Cfg.Seed,
			SeedCount:   1,
			ShardCount:  1,
			JobAxis:     "channel",
			JobCount:    channels,
			JobKeys:     keys,
			Params: map[string]string{
				"rows_per_region": strconv.Itoa(s.Opts.RowsPerRegion),
				"hammers":         strconv.Itoa(s.Opts.Hammers),
			},
		},
		Groups: newFineGroups(s.Opts.Cfg),
	}
	foldSweepRows(s.Opts.Cfg, a.Groups, s.Rows)
	return a
}

// Fig6 artifact metric names.
const (
	metricBankMeanBER = "bank_mean_ber_pct"
	metricBankCV      = "bank_cv"
)

// newFig6Groups allocates the per-channel accumulators of the Fig. 6
// artifact: each channel's distribution of per-bank mean BER (percent)
// and coefficient of variation.
func newFig6Groups(cfg *config.Config) []results.Group {
	g := cfg.Geometry
	out := make([]results.Group, 0, g.Channels)
	for ch := 0; ch < g.Channels; ch++ {
		out = append(out, results.Group{
			Key: results.Key{Channel: ch},
			Metrics: []results.Metric{
				// Mean BER is already in percent; CV is dimensionless and
				// in practice well under 10.
				{Name: metricBankMeanBER, Stream: stats.NewStream(0, 100)},
				{Name: metricBankCV, Stream: stats.NewStream(0, 10)},
			},
		})
	}
	return out
}

// addFig6Point streams one bank's scatter point into its channel group.
func addFig6Point(groups []results.Group, p BankPoint) {
	grp := &groups[p.Bank.Channel]
	grp.Metrics[0].Stream.Add(p.MeanBER)
	// CV is NaN for an all-zero bank (zero mean); streams hold finite
	// samples only, so such banks are excluded from the CV distribution
	// the way never-flipping rows are from HCfirst.
	if !math.IsNaN(p.CV) {
		grp.Metrics[1].Stream.Add(p.CV)
	}
}

// Artifact condenses the Fig. 6 scatter into a per-channel results
// artifact — the figure's "channel variation dominates bank variation"
// observation as data.
func (f *Fig6) Artifact() *results.Artifact {
	g := f.Opts.Cfg.Geometry
	keys := make([]string, 0, g.Channels*g.PseudoChannels*g.Banks)
	for ch := 0; ch < g.Channels; ch++ {
		for pc := 0; pc < g.PseudoChannels; pc++ {
			for ba := 0; ba < g.Banks; ba++ {
				keys = append(keys, fmt.Sprintf("ch%d.pc%d.ba%d", ch, pc, ba))
			}
		}
	}
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "fig6",
			CodeVersion: results.CodeVersion(),
			ConfigHash:  fmt.Sprintf("%016x", f.Opts.Cfg.Hash()),
			GroupBy:     results.ByChannel.String(),
			SeedFirst:   f.Opts.Cfg.Seed,
			SeedCount:   1,
			ShardCount:  1,
			JobAxis:     "bank",
			JobCount:    len(keys),
			JobKeys:     keys,
			Params: map[string]string{
				"rows_per_bank_region": strconv.Itoa(f.Opts.RowsPerBankRegion),
				"hammers":              strconv.Itoa(f.Opts.Hammers),
			},
		},
		Groups: newFig6Groups(f.Opts.Cfg),
	}
	for _, p := range f.Points {
		addFig6Point(a.Groups, p)
	}
	return a
}
