package experiments

import (
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

func TestRowPressLowersHCFirst(t *testing.T) {
	s, err := RunRowPress(RowPressOptions{
		Cfg:             config.SmallChip(),
		Bank:            addr.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 0},
		Rows:            4,
		HoldMultipliers: []int{1, 4, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("%d points, want 3", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		prev, cur := s.Points[i-1], s.Points[i]
		if !prev.FoundAll || !cur.FoundAll {
			t.Fatalf("point %d: rows did not flip within the budget", i)
		}
		if cur.MeanHCFirst >= prev.MeanHCFirst {
			t.Fatalf("HCfirst did not fall with hold time: %v -> %v (x%d -> x%d)",
				prev.MeanHCFirst, cur.MeanHCFirst, prev.HoldMultiplier, cur.HoldMultiplier)
		}
	}
	// At 16x tRAS the amplification is ~13x: the first flip needs far
	// fewer hammers than at minimum timing.
	if ratio := s.Points[0].MeanHCFirst / s.Points[2].MeanHCFirst; ratio < 4 {
		t.Errorf("16x hold only improved HCfirst by %.1fx, want > 4x", ratio)
	}
	if !strings.Contains(s.Render(), "RowPress") {
		t.Error("render missing title")
	}
}

func TestTempSweepMonotone(t *testing.T) {
	s, err := RunTempSweep(TempSweepOptions{
		Cfg:           config.SmallChip(),
		Bank:          addr.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 0},
		Rows:          4,
		TemperaturesC: []float64{55, 85, 95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("%d points, want 3", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].MeanBER < s.Points[i-1].MeanBER {
			t.Fatalf("BER fell from %.3f%% at %.0fC to %.3f%% at %.0fC; hotter must be worse",
				s.Points[i-1].MeanBER, s.Points[i-1].TempC,
				s.Points[i].MeanBER, s.Points[i].TempC)
		}
	}
	if s.Points[0].MeanBER >= s.Points[2].MeanBER {
		t.Fatal("no temperature sensitivity at all")
	}
	if !strings.Contains(s.Render(), "temperature") {
		t.Error("render missing title")
	}
}

func TestCrossChannelProbe(t *testing.T) {
	s, err := RunCrossChannel(CrossChannelOptions{
		Cfg:              config.SmallChip(),
		AggressorChannel: 4,
		Rows:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper-default chip shows no cross-channel interference.
	if s.BaselineFlips != 0 {
		t.Fatalf("default chip leaked %d flips across channels", s.BaselineFlips)
	}
	// The synthetic arm demonstrates the methodology would detect it.
	if s.CoupledFlips == 0 {
		t.Fatal("synthetic coupling produced no cross-channel flips")
	}
	out := s.Render()
	for _, want := range []string{"cross-channel", "default chip", "synthetic"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestMultiChipStability(t *testing.T) {
	s, err := RunMultiChip(MultiChipOptions{
		Base:          config.SmallChip(),
		Seeds:         []uint64{11, 22, 33},
		RowsPerRegion: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Chips) != 3 {
		t.Fatalf("%d chips, want 3", len(s.Chips))
	}
	// Design-level observations are stable across chips.
	worstStable, trrStable := s.StableObservations()
	if !trrStable || s.Chips[0].TRRPeriod != 17 {
		t.Fatalf("TRR period not stable at 17 across chips: %+v", s.Chips)
	}
	if !worstStable || s.Chips[0].WorstChannel != 7 {
		t.Fatalf("worst channel not stable at 7 across chips: %+v", s.Chips)
	}
	// Cell-level numbers vary chip to chip.
	varies := false
	for _, c := range s.Chips[1:] {
		if c.MinHCFirst != s.Chips[0].MinHCFirst {
			varies = true
		}
		if c.MinHCFirst < int(config.SmallChip().Fault.HCFloor) {
			t.Fatalf("chip %#x min HCfirst %d below the floor", c.Seed, c.MinHCFirst)
		}
	}
	if !varies {
		t.Fatal("min HCfirst identical on all chips; seeds are not differentiating instances")
	}
	if !strings.Contains(s.Render(), "chip-to-chip") {
		t.Error("render missing title")
	}
}

func TestTRRBypassWithDecoy(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-geometry nominal-refresh run")
	}
	s, err := RunTRRBypass(TRRBypassOptions{
		Bank: addr.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.ProtectedFlips != 0 {
		t.Fatalf("TRR failed to protect a naive single-pair attack: %d flips", s.ProtectedFlips)
	}
	if s.BypassedFlips == 0 {
		t.Fatal("decoy bypass induced no flips; the uncovered mechanism should be defeatable")
	}
	if s.Refreshes == 0 {
		t.Fatal("no refreshes issued; the study must run under nominal refresh")
	}
	out := s.Render()
	for _, want := range []string{"decoy", "naive", "bypass"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
