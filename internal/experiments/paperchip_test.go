package experiments

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

// TestPaperChipCalibrationSpotCheck is the calibration regression net: it
// runs the full-geometry paper chip at low sampling density and asserts
// every headline number stays inside a tolerant band around the paper's
// reported values. cmd/calibrate produces the full table; this test keeps
// refactors honest. Skipped in -short runs (several seconds).
func TestPaperChipCalibrationSpotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-geometry sweep is the heavyweight calibration check")
	}
	sweep, err := RunSweep(SweepOptions{
		Cfg:           config.PaperChip(),
		RowsPerRegion: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	h3 := Fig3{sweep}.Headlines()
	h4 := Fig4{sweep}.Headlines()
	h5 := Fig5{sweep}.Headlines()

	// Paper: channel 7 is 2.03x channel 0 in mean WCDP BER.
	if h3.MaxOverMinWCDP < 1.6 || h3.MaxOverMinWCDP > 2.7 {
		t.Errorf("channel BER ratio %.2fx outside the calibration band (paper 2.03x)", h3.MaxOverMinWCDP)
	}
	// Paper: up to 79% cross-channel BER spread.
	if h3.MaxSpreadPct < 60 || h3.MaxSpreadPct > 95 {
		t.Errorf("cross-channel spread %.0f%% outside the band (paper 79%%)", h3.MaxSpreadPct)
	}
	// Paper: minimum HCfirst 14531; the model floors at 14500.
	if h4.MinHCFirst < 14500 || h4.MinHCFirst > 20000 {
		t.Errorf("min HCfirst %d outside the band (paper 14531)", h4.MinHCFirst)
	}
	// Paper: channel 0 stripe means 57925 (RS0) and 79179 (RS1).
	if h4.Ch0Rowstripe0 < 48000 || h4.Ch0Rowstripe0 > 70000 {
		t.Errorf("ch0 Rowstripe0 mean %.0f outside the band (paper 57925)", h4.Ch0Rowstripe0)
	}
	if h4.Ch0Rowstripe1 < 66000 || h4.Ch0Rowstripe1 > 95000 {
		t.Errorf("ch0 Rowstripe1 mean %.0f outside the band (paper 79179)", h4.Ch0Rowstripe1)
	}
	if h4.Ch0Rowstripe1 <= h4.Ch0Rowstripe0 {
		t.Error("ch0 Rowstripe1 must need more hammers than Rowstripe0")
	}
	// Paper: the last 832 rows show substantially fewer bitflips.
	if h5.LastSubarrayRatio <= 0 || h5.LastSubarrayRatio >= 0.7 {
		t.Errorf("last-subarray ratio %.2f outside the band", h5.LastSubarrayRatio)
	}
	if h5.MidOverEdge <= 1.1 {
		t.Errorf("mid/edge ratio %.2f; subarray periodicity missing", h5.MidOverEdge)
	}
	// Paper geometry invariant: middle region rows sit in 768-row
	// subarrays.
	layout := config.PaperChip().Layout()
	for _, r := range sweep.Rows {
		if r.Region == "middle" {
			sa, _ := layout.Locate(r.PhysRow)
			if layout.Size(sa) != 768 {
				t.Fatalf("middle-region row %d in a %d-row subarray, want 768", r.PhysRow, layout.Size(sa))
			}
		}
	}
}

// TestPaperChipTRRSpotCheck verifies Section 5 on the paper geometry.
func TestPaperChipTRRSpotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-geometry U-TRR run")
	}
	s, err := RunTRRStudy(TRRStudyOptions{
		Cfg:  config.PaperChip(),
		Bank: addr.BankAddr{Channel: 3, PseudoChannel: 1, Bank: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Periodic || s.Period != 17 {
		t.Fatalf("paper chip TRR period (%d, %v), want (17, true)", s.Period, s.Periodic)
	}
}
