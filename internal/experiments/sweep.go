// Package experiments reproduces every table and figure of the paper's
// evaluation: the spatial-variation study of Section 4 (Figs. 3-6) and
// the TRR-uncovering study of Section 5, with scale knobs so the same
// drivers power fast tests, benchmarks and full-resolution runs.
//
// Every study registers as an Experiment in the registry (registry.go,
// DESIGN.md §9): a name plus a pure planner producing an indexed job
// list and a deterministic fold into a results.Artifact. Run executes a
// whole plan; RunSlice executes any contiguous job slice, stamped with
// job-axis provenance so slices merge through results.Merge into bytes
// identical to the unsharded run. That contract is what gives each
// registered study -shard i/N, artifact merging, CSV/JSON export, and
// the fleet control plane (internal/fleet) for free.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/results"
)

// SweepOptions configures the shared spatial sweep behind Figs. 3, 4
// and 5.
type SweepOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Hammers is the BER hammer count and the HCfirst search ceiling
	// (paper: 256K).
	Hammers int
	// RowsPerRegion caps how many victim rows are sampled per region;
	// 0 tests every row, as the paper does.
	RowsPerRegion int
	// PC and Bank select the bank tested in every channel.
	PC, Bank int
	// Workers is the number of parallel measurement devices; <= 0 means
	// one per CPU. Results are independent of the worker count (the
	// engine partitions work deterministically and every measurement is a
	// pure function of the chip seed and its coordinates).
	Workers int
	// Ctx cancels a running sweep between per-channel jobs; nil means no
	// cancellation.
	Ctx context.Context
	// Progress, if non-nil, receives an update as each channel finishes.
	Progress engine.ProgressFunc
}

func (o *SweepOptions) setDefaults() {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.Hammers <= 0 {
		o.Hammers = core.DefaultHammers
	}
}

func (o *SweepOptions) engine() engine.Options {
	return engine.Options{Ctx: o.Ctx, Workers: o.Workers, OnProgress: o.Progress}
}

// RowResult holds every measurement of one victim row: per-pattern BER
// and HCfirst plus the row's worst-case data pattern selection.
type RowResult struct {
	Channel int
	PhysRow int
	Region  string

	// BER, HCFirst and Found are indexed like core.Table1().
	BER     []float64
	HCFirst []int
	Found   []bool

	// WCDP is the index of the row's worst-case data pattern.
	WCDP int
}

// WCDPBER returns the row's BER under its worst-case pattern.
func (r *RowResult) WCDPBER() float64 { return r.BER[r.WCDP] }

// WCDPHCFirst returns the row's HCfirst under its worst-case pattern and
// whether any pattern flipped at all.
func (r *RowResult) WCDPHCFirst() (int, bool) { return r.HCFirst[r.WCDP], r.Found[r.WCDP] }

// Sweep is the complete spatial dataset for one bank across all channels.
type Sweep struct {
	Opts SweepOptions
	Rows []RowResult
}

// RunSweep measures every sampled victim row in the paper's three regions
// of one bank in every channel: per Table 1 pattern, the BER at the full
// hammer count and the HCfirst search, then the WCDP choice.
func RunSweep(o SweepOptions) (*Sweep, error) {
	o.setDefaults()
	if err := o.Cfg.Validate(); err != nil {
		return nil, err
	}
	g := o.Cfg.Geometry
	if o.PC < 0 || o.PC >= g.PseudoChannels || o.Bank < 0 || o.Bank >= g.Banks {
		return nil, fmt.Errorf("experiments: bank pc%d.ba%d out of range", o.PC, o.Bank)
	}

	perChannel, err := engine.MapHarness(o.engine(), o.Cfg, g.Channels,
		func(_ context.Context, h *core.Harness, ch int) ([]RowResult, error) {
			rows, err := sweepChannel(h, o, ch)
			if err != nil {
				return nil, fmt.Errorf("channel %d: %w", ch, err)
			}
			return rows, nil
		})
	if err != nil {
		return nil, err
	}
	return &Sweep{Opts: o, Rows: engine.Flatten(perChannel)}, nil
}

// sweepChannel measures every sampled victim row of one channel's bank.
// The inner loops run through the batched probe API: per pattern, one
// BERBatch and one HCFirstBatch over all sampled rows, which amortizes
// program assembly/validation/dispatch across the whole row set. Output
// is byte-identical to per-row BER/HCFirst calls (pinned by the
// core batch equivalence tests); only the probe grouping changes.
func sweepChannel(h *core.Harness, o SweepOptions, ch int) ([]RowResult, error) {
	g := o.Cfg.Geometry
	ba := addr.BankAddr{Channel: ch, PseudoChannel: o.PC, Bank: o.Bank}
	patterns := core.Table1()
	var victims []int
	var regions []string
	for _, region := range core.Regions(g.Rows) {
		for _, phys := range region.SampleRows(o.RowsPerRegion) {
			if phys <= 0 || phys >= g.Rows-1 {
				continue // bank-edge rows have no double-sided pair
			}
			victims = append(victims, phys)
			regions = append(regions, region.Name)
		}
	}
	out := make([]RowResult, len(victims))
	for i, phys := range victims {
		out[i] = RowResult{
			Channel: ch,
			PhysRow: phys,
			Region:  regions[i],
			BER:     make([]float64, len(patterns)),
			HCFirst: make([]int, len(patterns)),
			Found:   make([]bool, len(patterns)),
		}
	}
	for pi, p := range patterns {
		bers, err := h.BERBatch(ba, victims, p, o.Hammers)
		if err != nil {
			return nil, err
		}
		hcs, founds, err := h.HCFirstBatch(ba, victims, p, o.Hammers)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i].BER[pi] = bers[i].BER()
			out[i].HCFirst[pi], out[i].Found[pi] = hcs[i], founds[i]
		}
	}
	for i := range out {
		out[i].WCDP = chooseWCDP(out[i])
	}
	return out, nil
}

// chooseWCDP applies the paper's worst-case pattern rule: smallest
// HCfirst; ties (and the nothing-flipped case) broken by the largest BER
// at the maximum hammer count.
func chooseWCDP(r RowResult) int {
	best := 0
	for i := 1; i < len(r.BER); i++ {
		switch {
		case r.Found[i] != r.Found[best]:
			if r.Found[i] {
				best = i
			}
		case r.Found[i] && r.HCFirst[i] != r.HCFirst[best]:
			if r.HCFirst[i] < r.HCFirst[best] {
				best = i
			}
		default:
			if r.BER[i] > r.BER[best] {
				best = i
			}
		}
	}
	return best
}

// sweepExperiment lifts the Figs. 3-5 spatial sweep onto the registry:
// one harness job per channel, folded into the region×channel artifact
// Sweep.Artifact emits, so the sweep shards across machines like the
// fleet scan (a -shard slice measures a contiguous channel range).
func sweepExperiment() *Experiment {
	return &Experiment{
		Name:  "sweep",
		Title: "Figs. 3-5 spatial sweep: per-row BER/HCfirst/WCDP across every channel",
		Plan: func(o Options) (*Plan, error) {
			so := SweepOptions{
				Cfg:           o.Cfg,
				Hammers:       o.Hammers,
				RowsPerRegion: o.Rows,
				Workers:       o.Workers,
			}
			so.setDefaults()
			if err := so.Cfg.Validate(); err != nil {
				return nil, err
			}
			g := so.Cfg.Geometry
			jobs := make([]Job, g.Channels)
			for ch := 0; ch < g.Channels; ch++ {
				ch := ch
				jobs[ch] = Job{
					Key: fmt.Sprintf("ch%d", ch),
					Run: func(_ context.Context, h *core.Harness) (any, error) {
						rows, err := sweepChannel(h, so, ch)
						if err != nil {
							return nil, fmt.Errorf("channel %d: %w", ch, err)
						}
						return rows, nil
					},
				}
			}
			return &Plan{
				Axis:    "channel",
				Cfg:     so.Cfg,
				Harness: true,
				Jobs:    jobs,
				Params: map[string]string{
					"rows_per_region": strconv.Itoa(so.RowsPerRegion),
					"hammers":         strconv.Itoa(so.Hammers),
				},
				NewFold: func(lo, hi int) *Fold {
					a := &results.Artifact{
						Meta:   results.Meta{GroupBy: results.ByRegionChannel.String()},
						Groups: newFineGroups(so.Cfg),
					}
					return &Fold{
						Add: func(_ int, payload any) error {
							foldSweepRows(so.Cfg, a.Groups, payload.([]RowResult))
							return nil
						},
						Finish: func() (*results.Artifact, error) { return a, nil },
					}
				},
			}, nil
		},
	}
}

// ByChannel groups the sweep's rows per channel, in channel order.
func (s *Sweep) ByChannel() [][]RowResult {
	g := s.Opts.Cfg.Geometry
	out := make([][]RowResult, g.Channels)
	for _, r := range s.Rows {
		out[r.Channel] = append(out[r.Channel], r)
	}
	for _, rows := range out {
		sort.Slice(rows, func(i, j int) bool { return rows[i].PhysRow < rows[j].PhysRow })
	}
	return out
}
