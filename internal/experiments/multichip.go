package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// Multi-chip study: the paper's future work 1 ("repeat our experiments on
// a larger number of HBM2 chips to improve the statistical significance
// of our observations"). Every simulated chip instance is a seed; the
// study reruns the headline measurements across seeds and checks which
// observations are stable chip-to-chip.
//
// The study is built for fleet scale: per-chip row samples are folded
// into streaming accumulators (stats.Stream) at the finest aggregation
// axis — region×channel, the paper's first-order result axis being per
// channel — as each chip completes, in deterministic seed-index order, so
// resident sample memory is O(regions × channels), not O(chips × rows).
// The aggregates live in a results.Artifact, which serializes to a shard
// file: a 1000-seed scan can run as N seed-range shards on N machines and
// merge back into output byte-identical to a single-process run (the
// accumulators merge order-independently bit for bit).

// MultiChipOptions configures the study.
type MultiChipOptions struct {
	// Base is the chip design; each seed instantiates one chip of it.
	// nil means config.PaperChip().
	Base *config.Config
	// Seeds are the chip instances to test. Shard artifacts record the
	// range [Seeds[0], Seeds[0]+len(Seeds)) and merge only contiguously,
	// so fleet shards must slice one ascending seed run (results.ShardRange).
	Seeds []uint64
	// RowsPerRegion is the sweep sampling density per chip.
	RowsPerRegion int
	// Workers bounds per-chip sweep parallelism.
	Workers int
	// ChipWorkers bounds how many chip instances are measured at once;
	// <= 0 means one at a time (each chip already parallelizes its sweep
	// across Workers devices).
	ChipWorkers int
	// Planner selects how chip jobs are assigned to workers; planner
	// choice never changes the study's output (engine.Planner).
	Planner engine.Planner
	// GroupBy selects the axis of rendered and exported aggregates:
	// region (default), channel, or region-channel. The study always
	// folds the finest axis; this only picks the view.
	GroupBy results.GroupBy
	// Shard/ShardCount record which slice of a sharded fleet run this is
	// (informational, written to the artifact; the caller slices Seeds).
	// Zero values mean an unsharded run.
	Shard, ShardCount int
	// Ctx cancels the study; it is threaded into every per-chip sweep
	// down to per-measurement granularity.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished chip.
	Progress engine.ProgressFunc
}

// ChipSummary is one chip's headline numbers, carried through shard
// artifacts as a results.ChipRecord.
type ChipSummary = results.ChipRecord

// MultiChipStudy aggregates the per-chip summaries and the fleet-level
// distributions.
type MultiChipStudy struct {
	Opts MultiChipOptions
	// Chips holds one fixed-size summary per seed (no sample slices).
	Chips []ChipSummary
	// Artifact carries the provenance metadata and the region×channel
	// streaming aggregates; identical for any ChipWorkers count, and the
	// unit of shard serialization and merging.
	Artifact *results.Artifact

	// views memoizes derived axis views: Render plus the CSV and JSON
	// exporters all read the same view at CLI exit, and deriving it
	// re-clones and re-merges every fine-axis stream.
	views map[results.GroupBy][]results.Group
}

// multiChipMetrics are the artifact metric names, in group order.
const (
	metricBER     = "wcdp_ber"
	metricHCFirst = "wcdp_hc_first"
)

// newFineGroups allocates empty region×channel accumulators for a chip
// design. The quantile domains are declared up front — BER is a fraction,
// HCfirst is bounded by the search ceiling — which is what keeps shard
// merging order-independent.
func newFineGroups(cfg *config.Config) []results.Group {
	regions := core.Regions(cfg.Geometry.Rows)
	out := make([]results.Group, 0, len(regions)*cfg.Geometry.Channels)
	for _, r := range regions {
		for ch := 0; ch < cfg.Geometry.Channels; ch++ {
			out = append(out, results.Group{
				Key: results.Key{Region: r.Name, Channel: ch},
				Metrics: []results.Metric{
					{Name: metricBER, Stream: stats.NewStream(0, 1)},
					{Name: metricHCFirst, Stream: stats.NewStream(0, float64(core.DefaultHammers))},
				},
			})
		}
	}
	return out
}

// foldSweepRows streams a sweep's per-row WCDP metrics into fine-axis
// groups allocated by newFineGroups for the same design. Rows that never
// flip are excluded from HCfirst, as in Fig. 4.
func foldSweepRows(cfg *config.Config, groups []results.Group, rows []RowResult) {
	channels := cfg.Geometry.Channels
	regionIdx := make(map[string]int, 3)
	for i, r := range core.Regions(cfg.Geometry.Rows) {
		regionIdx[r.Name] = i
	}
	for i := range rows {
		r := &rows[i]
		g := &groups[regionIdx[r.Region]*channels+r.Channel]
		g.Metrics[0].Stream.Add(r.WCDPBER())
		if hc, found := r.WCDPHCFirst(); found {
			g.Metrics[1].Stream.Add(float64(hc))
		}
	}
}

// chipResult is one finished chip: its headline summary plus its fine-axis
// accumulators, ready to merge into the study's artifact and discard.
type chipResult struct {
	sum    ChipSummary
	groups []results.Group
}

// multiChipPlan decomposes a fleet scan over an explicit seed list: one
// job per chip instance, folded in seed-index order into the
// region×channel artifact. It is the shared core of RunMultiChip (which
// takes a pre-sliced seed range) and the "multichip" registry entry
// (which slices the full range itself via -shard).
func multiChipPlan(o MultiChipOptions) *Plan {
	jobs := make([]Job, len(o.Seeds))
	for i, seed := range o.Seeds {
		seed := seed
		jobs[i] = Job{
			Key: fmt.Sprintf("seed:%#x", seed),
			Run: func(ctx context.Context, _ *core.Harness) (any, error) {
				return measureChip(ctx, o, seed)
			},
		}
	}
	return &Plan{
		Axis: results.AxisSeed,
		Cfg:  o.Base,
		Jobs: jobs,
		Params: map[string]string{
			"rows_per_region": strconv.Itoa(o.RowsPerRegion),
		},
		NewFold: func(lo, hi int) *Fold {
			a := &results.Artifact{
				Meta: results.Meta{
					GroupBy:   results.ByRegionChannel.String(),
					SeedFirst: o.Seeds[lo],
					SeedCount: hi - lo,
				},
				Groups: newFineGroups(o.Base),
			}
			return &Fold{
				Add: func(_ int, payload any) error {
					r := payload.(chipResult)
					a.Chips = append(a.Chips, r.sum)
					results.MergeGroups(a.Groups, r.groups)
					return nil
				},
				Finish: func() (*results.Artifact, error) { return a, nil },
			}
		},
	}
}

// multiChipExperiment registers the fleet scan: the seed axis, sliced by
// -shard into contiguous seed ranges exactly as cmd/chipscan always did
// (chipscan is an alias for this entry).
func multiChipExperiment() *Experiment {
	return &Experiment{
		Name:  "multichip",
		Title: "fleet chip-to-chip scan: headline numbers + region×channel aggregates per seed",
		Plan: func(o Options) (*Plan, error) {
			mo := MultiChipOptions{
				Base:          o.Cfg,
				RowsPerRegion: o.Rows,
				Workers:       o.Workers,
			}
			mo.setDefaults()
			count := o.Seeds
			if count > 0 {
				mo.Seeds = make([]uint64, count)
				for i := range mo.Seeds {
					mo.Seeds[i] = mo.Base.Seed + uint64(i)
				}
			}
			return multiChipPlan(mo), nil
		},
		Render: func(a *results.Artifact) string {
			return StudyFromArtifact(a, results.ByRegion).Report()
		},
	}
}

// setDefaults resolves the option defaults shared by RunMultiChip and
// the registry entry.
func (o *MultiChipOptions) setDefaults() {
	if o.Base == nil {
		o.Base = config.PaperChip()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.RowsPerRegion <= 0 {
		o.RowsPerRegion = 8
	}
}

// RunMultiChip measures every seed's headline numbers and streams the
// row-level distributions into the study's region×channel aggregates as
// chips complete. The fold runs in strict seed-index order, so the
// aggregated output is byte-identical for ChipWorkers=1 and ChipWorkers=N
// — and, because the accumulators merge exactly, also byte-identical
// between a single run over all seeds and a merge of contiguous seed-range
// shards. It executes the same plan as the "multichip" registry entry.
func RunMultiChip(o MultiChipOptions) (*MultiChipStudy, error) {
	o.setDefaults()
	chipWorkers := o.ChipWorkers
	if chipWorkers <= 0 {
		chipWorkers = 1
	}
	p := multiChipPlan(o)
	a, err := executePlan(p, Options{
		Ctx:      o.Ctx,
		Parallel: chipWorkers,
		Planner:  o.Planner,
		Progress: o.Progress,
	}, 0, len(p.Jobs))
	if err != nil {
		return nil, err
	}
	shard, shardCount := o.Shard, o.ShardCount
	if shardCount <= 0 {
		shard, shardCount = 0, 1
	}
	stampMeta(a, "multichip", p, 0, len(p.Jobs), shard, shardCount)
	return &MultiChipStudy{Opts: o, Chips: a.Chips, Artifact: a}, nil
}

// StudyFromArtifact reconstructs a renderable study from a loaded (e.g.
// merged) artifact: the chip records and aggregates come from the
// artifact, gb selects the render axis. Measurement options are not
// recoverable and stay zero.
func StudyFromArtifact(a *results.Artifact, gb results.GroupBy) *MultiChipStudy {
	return &MultiChipStudy{
		Opts:     MultiChipOptions{GroupBy: gb},
		Chips:    a.Chips,
		Artifact: a,
	}
}

// measureChip runs one seed's headline measurements and condenses the
// sweep into the chip's summary plus fine-axis accumulators; the sweep's
// per-row dataset is dropped when this returns.
func measureChip(ctx context.Context, o MultiChipOptions, seed uint64) (chipResult, error) {
	cfg := *o.Base
	cfg.Seed = seed
	// Each seed is its own pool key; release its warmed devices once the
	// chip is summarized, or a long seed scan keeps every instance's
	// devices resident.
	defer engine.SharedPool.DrainConfig(&cfg)
	sweep, err := RunSweep(SweepOptions{
		Cfg:           &cfg,
		RowsPerRegion: o.RowsPerRegion,
		Workers:       o.Workers,
		Ctx:           ctx,
	})
	if err != nil {
		return chipResult{}, fmt.Errorf("experiments: chip %#x: %w", seed, err)
	}
	h3 := Fig3{sweep}.Headlines()
	h4 := Fig4{sweep}.Headlines()
	worst := 0
	for ch, ber := range h3.WCDPMeanBER {
		if ber > h3.WCDPMeanBER[worst] {
			worst = ch
		}
	}
	groups := newFineGroups(o.Base)
	foldSweepRows(o.Base, groups, sweep.Rows)
	trr, err := RunTRRStudy(TRRStudyOptions{
		Cfg:  &cfg,
		Bank: addr.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0},
		Ctx:  ctx,
	})
	if err != nil {
		return chipResult{}, fmt.Errorf("experiments: chip %#x: %w", seed, err)
	}
	return chipResult{
		sum: ChipSummary{
			Seed:         seed,
			MinHCFirst:   h4.MinHCFirst,
			WCDPRatio:    h3.MaxOverMinWCDP,
			WorstChannel: worst,
			TRRPeriod:    trr.Period,
		},
		groups: groups,
	}, nil
}

// metricLabel maps artifact metric names to report labels.
func metricLabel(name string) string {
	switch name {
	case metricBER:
		return "BER%"
	case metricHCFirst:
		return "HCfirst"
	}
	return name
}

// metricScale maps artifact metric names to display scale factors (BER
// fraction to percent).
func metricScale(name string) float64 {
	if name == metricBER {
		return 100
	}
	return 1
}

// Groups returns the study's aggregates at the configured view axis,
// derived once per axis and memoized (the study's aggregates are final
// once RunMultiChip or StudyFromArtifact returns).
func (s *MultiChipStudy) Groups() ([]results.Group, error) {
	if g, ok := s.views[s.Opts.GroupBy]; ok {
		return g, nil
	}
	g, err := s.Artifact.View(s.Opts.GroupBy)
	if err != nil {
		return nil, err
	}
	if s.views == nil {
		s.views = map[results.GroupBy][]results.Group{}
	}
	s.views[s.Opts.GroupBy] = g
	return g, nil
}

// Render prints the chip-to-chip comparison and the fleet aggregates at
// the configured axis.
func (s *MultiChipStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: chip-to-chip variation (future work 1)\n")
	sb.WriteString("chip seed     min HCfirst  BER ratio  worst ch  TRR period\n")
	for _, c := range s.Chips {
		fmt.Fprintf(&sb, "%#-12x  %11d  %8.2fx  %8d  %10d\n",
			c.Seed, c.MinHCFirst, c.WCDPRatio, c.WorstChannel, c.TRRPeriod)
	}
	if len(s.Chips) > 1 {
		mins := stats.NewStream(0, float64(core.DefaultHammers))
		for _, c := range s.Chips {
			mins.Add(float64(c.MinHCFirst))
		}
		fmt.Fprintf(&sb, "min HCfirst across chips: %.0f .. %.0f (mean %.0f)\n",
			mins.Min(), mins.Max(), mins.Mean())
	}
	fmt.Fprintf(&sb, "\nfleet aggregate: per-row WCDP metrics streamed across all chips, by %s\n",
		s.Opts.GroupBy)
	groups, err := s.Groups()
	if err != nil {
		fmt.Fprintf(&sb, "(aggregates unavailable: %v)\n", err)
		return sb.String()
	}
	sb.WriteString(results.RenderGroups(groups, metricLabel, metricScale))
	return sb.String()
}

// AggregateCSV exports the fleet-level distributions at the configured
// axis, one row per group and metric. Metrics with no samples (e.g.
// HCfirst when no row flipped) are skipped.
func (s *MultiChipStudy) AggregateCSV() (headers []string, rows [][]string) {
	groups, err := s.Groups()
	if err != nil {
		// RunMultiChip always stores the finest axis, so every view
		// derives; a study reconstructed from a foreign artifact
		// (StudyFromArtifact) can hold a coarser axis, and callers must
		// pre-flight the view with Groups() first. Past that contract,
		// failing loudly beats silently exporting nothing.
		panic(err)
	}
	return results.SummaryCSVGroups(s.Opts.GroupBy, groups)
}

// AggregateJSON exports the artifact provenance, per-chip summaries and
// the fleet-level distributions at the configured axis as deterministic
// JSON (fixed field order, seeds in study order, snake_case keys).
func (s *MultiChipStudy) AggregateJSON() ([]byte, error) {
	groups, err := s.Groups()
	if err != nil {
		return nil, err
	}
	return s.Artifact.SummaryJSONGroups(groups)
}

// Report renders the full study report: the chip-to-chip comparison, the
// fleet aggregates, and the stability epilogue. cmd/chipscan and the
// registry's merge render share it, so their stdout reports cannot
// diverge.
func (s *MultiChipStudy) Report() string {
	var sb strings.Builder
	sb.WriteString(s.Render())
	worstStable, trrStable := s.StableObservations()
	fmt.Fprintf(&sb, "\nstable across chips: worst channel = %v, TRR period = %v\n", worstStable, trrStable)
	sb.WriteString("(design-level structure persists; exact cell-level numbers are per-chip)\n")
	return sb.String()
}

// StableObservations reports which of the paper's key observations hold
// on every tested chip: the design-level ones (channel grouping, TRR
// period) should; exact cell-level numbers should not.
func (s *MultiChipStudy) StableObservations() (worstChannelStable, trrPeriodStable bool) {
	if len(s.Chips) == 0 {
		return false, false
	}
	worstChannelStable, trrPeriodStable = true, true
	for _, c := range s.Chips[1:] {
		if c.WorstChannel != s.Chips[0].WorstChannel {
			worstChannelStable = false
		}
		if c.TRRPeriod != s.Chips[0].TRRPeriod {
			trrPeriodStable = false
		}
	}
	return worstChannelStable, trrPeriodStable
}
