package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// Multi-chip study: the paper's future work 1 ("repeat our experiments on
// a larger number of HBM2 chips to improve the statistical significance
// of our observations"). Every simulated chip instance is a seed; the
// study reruns the headline measurements across seeds and checks which
// observations are stable chip-to-chip.

// MultiChipOptions configures the study.
type MultiChipOptions struct {
	// Base is the chip design; each seed instantiates one chip of it.
	// nil means config.PaperChip().
	Base *config.Config
	// Seeds are the chip instances to test.
	Seeds []uint64
	// RowsPerRegion is the sweep sampling density per chip.
	RowsPerRegion int
	// Workers bounds per-chip sweep parallelism.
	Workers int
	// ChipWorkers bounds how many chip instances are measured at once;
	// <= 0 means one at a time (each chip already parallelizes its sweep
	// across Workers devices).
	ChipWorkers int
	// Ctx cancels the study; it is threaded into every per-chip sweep.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished chip.
	Progress engine.ProgressFunc
}

// ChipSummary is one chip's headline numbers.
type ChipSummary struct {
	Seed uint64
	// MinHCFirst is the chip's global minimum HCfirst.
	MinHCFirst int
	// WCDPRatio is the most/least vulnerable channel BER ratio.
	WCDPRatio float64
	// WorstChannel is the channel with the highest mean WCDP BER.
	WorstChannel int
	// TRRPeriod is the uncovered mitigation period (0 if aperiodic).
	TRRPeriod int
}

// MultiChipStudy aggregates the per-chip summaries.
type MultiChipStudy struct {
	Opts  MultiChipOptions
	Chips []ChipSummary
}

// RunMultiChip measures every seed's headline numbers.
func RunMultiChip(o MultiChipOptions) (*MultiChipStudy, error) {
	if o.Base == nil {
		o.Base = config.PaperChip()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.RowsPerRegion <= 0 {
		o.RowsPerRegion = 8
	}
	chipWorkers := o.ChipWorkers
	if chipWorkers <= 0 {
		chipWorkers = 1
	}
	eo := engine.Options{Ctx: o.Ctx, Workers: chipWorkers, OnProgress: o.Progress}
	chips, err := engine.Map(eo, len(o.Seeds),
		func(ctx context.Context, i int) (ChipSummary, error) {
			seed := o.Seeds[i]
			cfg := *o.Base
			cfg.Seed = seed
			// Each seed is its own pool key; release its warmed devices
			// once the chip is summarized, or a long seed scan keeps
			// every instance's devices resident.
			defer engine.SharedPool.DrainConfig(&cfg)
			sweep, err := RunSweep(Options{
				Cfg:           &cfg,
				RowsPerRegion: o.RowsPerRegion,
				Workers:       o.Workers,
				Ctx:           ctx,
			})
			if err != nil {
				return ChipSummary{}, fmt.Errorf("experiments: chip %#x: %w", seed, err)
			}
			h3 := Fig3{sweep}.Headlines()
			h4 := Fig4{sweep}.Headlines()
			worst := 0
			for ch, ber := range h3.WCDPMeanBER {
				if ber > h3.WCDPMeanBER[worst] {
					worst = ch
				}
			}
			trr, err := RunTRRStudy(TRRStudyOptions{
				Cfg:  &cfg,
				Bank: addr.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0},
				Ctx:  ctx,
			})
			if err != nil {
				return ChipSummary{}, fmt.Errorf("experiments: chip %#x: %w", seed, err)
			}
			return ChipSummary{
				Seed:         seed,
				MinHCFirst:   h4.MinHCFirst,
				WCDPRatio:    h3.MaxOverMinWCDP,
				WorstChannel: worst,
				TRRPeriod:    trr.Period,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &MultiChipStudy{Opts: o, Chips: chips}, nil
}

// Render prints the chip-to-chip comparison.
func (s *MultiChipStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: chip-to-chip variation (future work 1)\n")
	sb.WriteString("chip seed     min HCfirst  BER ratio  worst ch  TRR period\n")
	for _, c := range s.Chips {
		fmt.Fprintf(&sb, "%#-12x  %11d  %8.2fx  %8d  %10d\n",
			c.Seed, c.MinHCFirst, c.WCDPRatio, c.WorstChannel, c.TRRPeriod)
	}
	if len(s.Chips) > 1 {
		var mins []float64
		for _, c := range s.Chips {
			mins = append(mins, float64(c.MinHCFirst))
		}
		sum := stats.Summarize(mins)
		fmt.Fprintf(&sb, "min HCfirst across chips: %.0f .. %.0f (mean %.0f)\n", sum.Min, sum.Max, sum.Mean)
	}
	return sb.String()
}

// StableObservations reports which of the paper's key observations hold
// on every tested chip: the design-level ones (channel grouping, TRR
// period) should; exact cell-level numbers should not.
func (s *MultiChipStudy) StableObservations() (worstChannelStable, trrPeriodStable bool) {
	if len(s.Chips) == 0 {
		return false, false
	}
	worstChannelStable, trrPeriodStable = true, true
	for _, c := range s.Chips[1:] {
		if c.WorstChannel != s.Chips[0].WorstChannel {
			worstChannelStable = false
		}
		if c.TRRPeriod != s.Chips[0].TRRPeriod {
			trrPeriodStable = false
		}
	}
	return worstChannelStable, trrPeriodStable
}
