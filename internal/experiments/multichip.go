package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// Multi-chip study: the paper's future work 1 ("repeat our experiments on
// a larger number of HBM2 chips to improve the statistical significance
// of our observations"). Every simulated chip instance is a seed; the
// study reruns the headline measurements across seeds and checks which
// observations are stable chip-to-chip.
//
// The study is built for fleet scale: per-chip row samples are folded
// into per-region streaming accumulators (stats.Stream) as each chip
// completes, in deterministic seed-index order, so resident sample memory
// is O(regions) — not O(chips x rows) — and a 200-seed scan aggregates in
// the same footprint as a 4-seed one.

// MultiChipOptions configures the study.
type MultiChipOptions struct {
	// Base is the chip design; each seed instantiates one chip of it.
	// nil means config.PaperChip().
	Base *config.Config
	// Seeds are the chip instances to test.
	Seeds []uint64
	// RowsPerRegion is the sweep sampling density per chip.
	RowsPerRegion int
	// Workers bounds per-chip sweep parallelism.
	Workers int
	// ChipWorkers bounds how many chip instances are measured at once;
	// <= 0 means one at a time (each chip already parallelizes its sweep
	// across Workers devices).
	ChipWorkers int
	// Ctx cancels the study; it is threaded into every per-chip sweep
	// down to per-measurement granularity.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished chip.
	Progress engine.ProgressFunc
}

// ChipSummary is one chip's headline numbers.
type ChipSummary struct {
	Seed uint64
	// MinHCFirst is the chip's global minimum HCfirst.
	MinHCFirst int
	// WCDPRatio is the most/least vulnerable channel BER ratio.
	WCDPRatio float64
	// WorstChannel is the channel with the highest mean WCDP BER.
	WorstChannel int
	// TRRPeriod is the uncovered mitigation period (0 if aperiodic).
	TRRPeriod int
}

// RegionAggregate is the fleet-level distribution of one paper region's
// per-row WCDP metrics, streamed across every chip.
type RegionAggregate struct {
	// Region is the paper region name ("first", "middle", "last").
	Region string
	// BER accumulates every sampled row's WCDP bit error rate (fraction).
	BER *stats.Stream
	// HCFirst accumulates every sampled row's WCDP HCfirst in hammers;
	// rows that never flip are excluded, as in Fig. 4.
	HCFirst *stats.Stream
}

// MultiChipStudy aggregates the per-chip summaries and the fleet-level
// regional distributions.
type MultiChipStudy struct {
	Opts MultiChipOptions
	// Chips holds one fixed-size summary per seed (no sample slices).
	Chips []ChipSummary
	// Regions holds the streamed row-level aggregates in core.Regions
	// order; identical for any ChipWorkers count.
	Regions []RegionAggregate
}

// newRegionAggregates allocates empty accumulators for a bank layout. The
// quantile domains are declared up front — BER is a fraction, HCfirst is
// bounded by the search ceiling — which is what keeps shard merging
// order-independent.
func newRegionAggregates(rows int) []RegionAggregate {
	regions := core.Regions(rows)
	out := make([]RegionAggregate, len(regions))
	for i, r := range regions {
		out[i] = RegionAggregate{
			Region:  r.Name,
			BER:     stats.NewStream(0, 1),
			HCFirst: stats.NewStream(0, float64(core.DefaultHammers)),
		}
	}
	return out
}

// chipResult is one finished chip: its headline summary plus its regional
// accumulators, ready to merge into the study's aggregates and discard.
type chipResult struct {
	sum     ChipSummary
	regions []RegionAggregate
}

// RunMultiChip measures every seed's headline numbers and streams the
// row-level distributions into the study's regional aggregates as chips
// complete. The fold runs in strict seed-index order, so the aggregated
// output is byte-identical for ChipWorkers=1 and ChipWorkers=N.
func RunMultiChip(o MultiChipOptions) (*MultiChipStudy, error) {
	if o.Base == nil {
		o.Base = config.PaperChip()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.RowsPerRegion <= 0 {
		o.RowsPerRegion = 8
	}
	chipWorkers := o.ChipWorkers
	if chipWorkers <= 0 {
		chipWorkers = 1
	}
	study := &MultiChipStudy{
		Opts:    o,
		Chips:   make([]ChipSummary, 0, len(o.Seeds)),
		Regions: newRegionAggregates(o.Base.Geometry.Rows),
	}
	regionIdx := make(map[string]int, len(study.Regions))
	for i, r := range study.Regions {
		regionIdx[r.Region] = i
	}

	eo := engine.Options{Ctx: o.Ctx, Workers: chipWorkers, OnProgress: o.Progress}
	err := engine.Reduce(eo, len(o.Seeds),
		func(ctx context.Context, i int) (chipResult, error) {
			return measureChip(ctx, o, o.Seeds[i], regionIdx)
		},
		func(_ int, r chipResult) error {
			study.Chips = append(study.Chips, r.sum)
			for ri := range study.Regions {
				study.Regions[ri].BER.Merge(r.regions[ri].BER)
				study.Regions[ri].HCFirst.Merge(r.regions[ri].HCFirst)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return study, nil
}

// measureChip runs one seed's headline measurements and condenses the
// sweep into the chip's summary plus per-region accumulators; the sweep's
// per-row dataset is dropped when this returns.
func measureChip(ctx context.Context, o MultiChipOptions, seed uint64, regionIdx map[string]int) (chipResult, error) {
	cfg := *o.Base
	cfg.Seed = seed
	// Each seed is its own pool key; release its warmed devices once the
	// chip is summarized, or a long seed scan keeps every instance's
	// devices resident.
	defer engine.SharedPool.DrainConfig(&cfg)
	sweep, err := RunSweep(Options{
		Cfg:           &cfg,
		RowsPerRegion: o.RowsPerRegion,
		Workers:       o.Workers,
		Ctx:           ctx,
	})
	if err != nil {
		return chipResult{}, fmt.Errorf("experiments: chip %#x: %w", seed, err)
	}
	h3 := Fig3{sweep}.Headlines()
	h4 := Fig4{sweep}.Headlines()
	worst := 0
	for ch, ber := range h3.WCDPMeanBER {
		if ber > h3.WCDPMeanBER[worst] {
			worst = ch
		}
	}
	regions := newRegionAggregates(o.Base.Geometry.Rows)
	for _, r := range sweep.Rows {
		agg := &regions[regionIdx[r.Region]]
		agg.BER.Add(r.WCDPBER())
		if hc, found := r.WCDPHCFirst(); found {
			agg.HCFirst.Add(float64(hc))
		}
	}
	trr, err := RunTRRStudy(TRRStudyOptions{
		Cfg:  &cfg,
		Bank: addr.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0},
		Ctx:  ctx,
	})
	if err != nil {
		return chipResult{}, fmt.Errorf("experiments: chip %#x: %w", seed, err)
	}
	return chipResult{
		sum: ChipSummary{
			Seed:         seed,
			MinHCFirst:   h4.MinHCFirst,
			WCDPRatio:    h3.MaxOverMinWCDP,
			WorstChannel: worst,
			TRRPeriod:    trr.Period,
		},
		regions: regions,
	}, nil
}

// Render prints the chip-to-chip comparison and the fleet aggregates.
func (s *MultiChipStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: chip-to-chip variation (future work 1)\n")
	sb.WriteString("chip seed     min HCfirst  BER ratio  worst ch  TRR period\n")
	for _, c := range s.Chips {
		fmt.Fprintf(&sb, "%#-12x  %11d  %8.2fx  %8d  %10d\n",
			c.Seed, c.MinHCFirst, c.WCDPRatio, c.WorstChannel, c.TRRPeriod)
	}
	if len(s.Chips) > 1 {
		mins := stats.NewStream(0, float64(core.DefaultHammers))
		for _, c := range s.Chips {
			mins.Add(float64(c.MinHCFirst))
		}
		fmt.Fprintf(&sb, "min HCfirst across chips: %.0f .. %.0f (mean %.0f)\n",
			mins.Min(), mins.Max(), mins.Mean())
	}
	sb.WriteString("\nfleet aggregate: per-row WCDP metrics streamed across all chips\n")
	for _, r := range s.Regions {
		if r.BER.N() > 0 {
			fmt.Fprintf(&sb, "region %-7s BER%%     %s\n", r.Region, scaled(r.BER.Summary(), 100))
		}
		if r.HCFirst.N() > 0 {
			fmt.Fprintf(&sb, "region %-7s HCfirst  %s\n", r.Region, r.HCFirst.Summary())
		}
	}
	return sb.String()
}

// scaled multiplies a summary's value fields for display (BER fraction to
// percent) without touching N.
func scaled(sum stats.Summary, k float64) stats.Summary {
	sum.Min *= k
	sum.Q1 *= k
	sum.Median *= k
	sum.Q3 *= k
	sum.Max *= k
	sum.Mean *= k
	sum.StdDev *= k
	return sum
}

// AggregateCSV exports the fleet-level regional distributions, one row
// per region and metric. Metrics with no samples (e.g. HCfirst when no
// row flipped) are skipped.
func (s *MultiChipStudy) AggregateCSV() (headers []string, rows [][]string) {
	headers = []string{"region", "metric", "n", "min", "q1", "median", "q3", "max", "mean", "stddev"}
	emit := func(region, metric string, st *stats.Stream) {
		if st.N() == 0 {
			return
		}
		sum := st.Summary()
		rows = append(rows, []string{
			region, metric,
			strconv.Itoa(sum.N),
			fmtG(sum.Min), fmtG(sum.Q1), fmtG(sum.Median), fmtG(sum.Q3),
			fmtG(sum.Max), fmtG(sum.Mean), fmtG(sum.StdDev),
		})
	}
	for _, r := range s.Regions {
		emit(r.Region, "wcdp_ber", r.BER)
		emit(r.Region, "wcdp_hc_first", r.HCFirst)
	}
	return headers, rows
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// summaryJSON pins the export schema to snake_case independently of
// stats.Summary's Go field names, so a rename there cannot silently
// change the -json format.
type summaryJSON struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
}

func toSummaryJSON(sum stats.Summary) *summaryJSON {
	return &summaryJSON{
		N: sum.N, Min: sum.Min, Q1: sum.Q1, Median: sum.Median,
		Q3: sum.Q3, Max: sum.Max, Mean: sum.Mean, StdDev: sum.StdDev,
	}
}

// AggregateJSON exports the per-chip summaries and the fleet-level
// regional distributions as deterministic JSON (fixed field order, seeds
// in study order, snake_case keys throughout).
func (s *MultiChipStudy) AggregateJSON() ([]byte, error) {
	type regionJSON struct {
		Region  string       `json:"region"`
		BER     *summaryJSON `json:"wcdp_ber,omitempty"`
		HCFirst *summaryJSON `json:"wcdp_hc_first,omitempty"`
	}
	type chipJSON struct {
		Seed         uint64  `json:"seed"`
		MinHCFirst   int     `json:"min_hc_first"`
		WCDPRatio    float64 `json:"wcdp_ratio"`
		WorstChannel int     `json:"worst_channel"`
		TRRPeriod    int     `json:"trr_period"`
	}
	out := struct {
		Chips   []chipJSON   `json:"chips"`
		Regions []regionJSON `json:"regions"`
	}{
		Chips:   make([]chipJSON, 0, len(s.Chips)),
		Regions: make([]regionJSON, 0, len(s.Regions)),
	}
	for _, c := range s.Chips {
		out.Chips = append(out.Chips, chipJSON(c))
	}
	for _, r := range s.Regions {
		rj := regionJSON{Region: r.Region}
		if r.BER.N() > 0 {
			rj.BER = toSummaryJSON(r.BER.Summary())
		}
		if r.HCFirst.N() > 0 {
			rj.HCFirst = toSummaryJSON(r.HCFirst.Summary())
		}
		out.Regions = append(out.Regions, rj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// StableObservations reports which of the paper's key observations hold
// on every tested chip: the design-level ones (channel grouping, TRR
// period) should; exact cell-level numbers should not.
func (s *MultiChipStudy) StableObservations() (worstChannelStable, trrPeriodStable bool) {
	if len(s.Chips) == 0 {
		return false, false
	}
	worstChannelStable, trrPeriodStable = true, true
	for _, c := range s.Chips[1:] {
		if c.WorstChannel != s.Chips[0].WorstChannel {
			worstChannelStable = false
		}
		if c.TRRPeriod != s.Chips[0].TRRPeriod {
			trrPeriodStable = false
		}
	}
	return worstChannelStable, trrPeriodStable
}
