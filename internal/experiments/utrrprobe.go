package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/hbm"
	"github.com/safari-repro/hbmrh/internal/utrr"
)

// The U-TRR probe study: utrr-discover's deeper follow-up to Section 5
// (the paper's "we intend to uncover more details of the proprietary TRR
// mechanism"). Two probes on fresh devices: how far around a sampled
// aggressor the victim refresh reaches (neighbor radius), and how many
// distinct aggressors the per-bank sampler tracks between REFs (sampler
// depth).

// UTRRProbeOptions configures the probe study.
type UTRRProbeOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Bank selects where the probes run.
	Bank addr.BankAddr
	// MaxDistance bounds the neighbor-radius search (default 3).
	MaxDistance int
	// MaxSlots bounds the sampler-depth search (default 3).
	MaxSlots int
	// StartRow is where the retention scans begin; <= 0 picks a range the
	// periodic-refresh pointer does not sweep.
	StartRow int
	// Ctx cancels the study between its two probes.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished probe.
	Progress engine.ProgressFunc
}

func (o *UTRRProbeOptions) setDefaults() {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.MaxDistance <= 0 {
		o.MaxDistance = 3
	}
	if o.MaxSlots <= 0 {
		o.MaxSlots = 3
	}
	if o.StartRow <= 0 {
		o.StartRow = o.Cfg.Geometry.Rows / 4
	}
}

// UTRRProbeStudy is the outcome of the probe study.
type UTRRProbeStudy struct {
	Opts UTRRProbeOptions
	// NeighborRadius is how many rows on each side of a sampled aggressor
	// the mitigation refreshes (0 = no fire observed).
	NeighborRadius int
	// SamplerSlots is how many distinct aggressors the sampler tracks
	// between REFs.
	SamplerSlots int
}

// utrrProbeArm runs one probe on a fresh device with ECC disabled (the
// Section 3.1 setup, so raw retention decay is visible).
func utrrProbeArm(o UTRRProbeOptions, radius bool) (int, error) {
	d, err := hbm.New(o.Cfg)
	if err != nil {
		return 0, err
	}
	for ch := 0; ch < o.Cfg.Geometry.Channels; ch++ {
		if err := d.WriteModeRegister(ch, hbm.MRECC, 0); err != nil {
			return 0, err
		}
	}
	e := utrr.New(d)
	if radius {
		return e.InferNeighborRadius(o.Bank, o.StartRow, o.MaxDistance)
	}
	return e.InferSamplerSlots(o.Bank, o.StartRow, o.MaxSlots)
}

// RunUTRRProbe runs both probes; they use independent fresh devices, so
// they run as parallel engine jobs.
func RunUTRRProbe(o UTRRProbeOptions) (*UTRRProbeStudy, error) {
	o.setDefaults()
	eo := engine.Options{Ctx: o.Ctx, OnProgress: o.Progress}
	vals, err := engine.Map(eo, 2,
		func(_ context.Context, i int) (int, error) { return utrrProbeArm(o, i == 0) })
	if err != nil {
		return nil, err
	}
	return &UTRRProbeStudy{Opts: o, NeighborRadius: vals[0], SamplerSlots: vals[1]}, nil
}

// Render summarizes the probes.
func (s *UTRRProbeStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: probing the uncovered TRR mechanism (Section 5 future work)\n")
	fmt.Fprintf(&sb, "victim-refresh neighbor radius: +/- %d row(s) around a sampled aggressor\n",
		s.NeighborRadius)
	fmt.Fprintf(&sb, "sampler depth: %d distinct aggressor(s) tracked between REFs\n", s.SamplerSlots)
	return sb.String()
}

// utrrProbeExperiment lifts the probe study onto the registry: two point
// jobs (radius, slots) on fresh devices.
func utrrProbeExperiment() *Experiment {
	return &Experiment{
		Name:  "utrrprobe",
		Title: "U-TRR probe: TRR victim-refresh radius and sampler depth",
		Plan: func(o Options) (*Plan, error) {
			po := UTRRProbeOptions{Cfg: o.Cfg}
			po.setDefaults()
			if err := po.Cfg.Validate(); err != nil {
				return nil, err
			}
			jobs := []Job{
				{
					Key: "radius",
					Run: func(_ context.Context, _ *core.Harness) (any, error) {
						return utrrProbeArm(po, true)
					},
				},
				{
					Key: "slots",
					Run: func(_ context.Context, _ *core.Harness) (any, error) {
						return utrrProbeArm(po, false)
					},
				},
			}
			bound := po.MaxDistance
			if po.MaxSlots > bound {
				bound = po.MaxSlots
			}
			return &Plan{
				Axis: "point",
				Cfg:  po.Cfg,
				Jobs: jobs,
				Params: map[string]string{
					"max_distance": strconv.Itoa(po.MaxDistance),
					"max_slots":    strconv.Itoa(po.MaxSlots),
				},
				NewFold: pointFold(jobs, "rows", 0, float64(bound+1)),
			}, nil
		},
	}
}
