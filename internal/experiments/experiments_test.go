package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
)

func smallSweep(t testing.TB, rowsPerRegion int) *Sweep {
	t.Helper()
	s, err := RunSweep(SweepOptions{
		Cfg:           config.SmallChip(),
		RowsPerRegion: rowsPerRegion,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepStructure(t *testing.T) {
	s := smallSweep(t, 6)
	g := s.Opts.Cfg.Geometry
	// 8 channels x 3 regions x 6 rows, minus bank-edge skips.
	if len(s.Rows) < g.Channels*3*5 {
		t.Fatalf("sweep has %d rows, want at least %d", len(s.Rows), g.Channels*3*5)
	}
	regions := map[string]bool{}
	for _, r := range s.Rows {
		if len(r.BER) != 4 || len(r.HCFirst) != 4 || len(r.Found) != 4 {
			t.Fatalf("row %+v has wrong pattern arity", r)
		}
		if r.WCDP < 0 || r.WCDP >= 4 {
			t.Fatalf("WCDP index %d out of range", r.WCDP)
		}
		for _, b := range r.BER {
			if b < 0 || b > 1 {
				t.Fatalf("BER %v out of [0,1]", b)
			}
		}
		regions[r.Region] = true
	}
	for _, want := range []string{"first", "middle", "last"} {
		if !regions[want] {
			t.Errorf("region %q missing from sweep", want)
		}
	}
}

func TestSweepIndependentOfWorkerCount(t *testing.T) {
	opts := SweepOptions{Cfg: config.SmallChip(), RowsPerRegion: 3}
	opts.Workers = 1
	a, err := RunSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	b, err := RunSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The engine guarantees byte-identical datasets at any worker count.
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ across worker counts: %d vs %d", len(a.Rows), len(b.Rows))
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		for i := range a.Rows {
			if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
				t.Fatalf("row %d differs across worker counts: %+v vs %+v",
					i, a.Rows[i], b.Rows[i])
			}
		}
		t.Fatalf("sweep datasets differ across worker counts: %d vs %d rows",
			len(a.Rows), len(b.Rows))
	}
}

func TestFig6IndependentOfWorkerCount(t *testing.T) {
	opts := Fig6Options{Cfg: config.SmallChip(), RowsPerBankRegion: 3}
	opts.Workers = 1
	a, err := RunFig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	b, err := RunFig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ across worker counts: %d vs %d", len(a.Points), len(b.Points))
	}
	if !reflect.DeepEqual(a.Points, b.Points) {
		for i := range a.Points {
			if !reflect.DeepEqual(a.Points[i], b.Points[i]) {
				t.Fatalf("bank point %d differs across worker counts: %+v vs %+v",
					i, a.Points[i], b.Points[i])
			}
		}
		t.Fatalf("fig6 datasets differ across worker counts: %d vs %d points",
			len(a.Points), len(b.Points))
	}
}

func TestSweepCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSweep(SweepOptions{Cfg: config.SmallChip(), RowsPerRegion: 2, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var updates []int
	_, err := RunSweep(SweepOptions{
		Cfg:           config.SmallChip(),
		RowsPerRegion: 2,
		Workers:       2,
		Ctx:           ctx,
		Progress: func(p engine.Progress) {
			updates = append(updates, p.Done)
			if p.Done >= 1 {
				cancel() // abort at the first delivered progress update
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	g := config.SmallChip().Geometry
	if len(updates) == 0 || updates[len(updates)-1] >= g.Channels {
		t.Fatalf("sweep ran %v of %d channels despite prompt cancellation",
			updates, g.Channels)
	}
}

func TestSweepCancelMidMeasurementPaperGeometry(t *testing.T) {
	// A full-resolution paper-geometry channel job measures ~9K rows x 4
	// patterns x ~13 probes; before mid-measurement cancellation the
	// engine could only abort *between* channel jobs, so a cancel landing
	// mid-channel still paid the whole channel. The harness now checks
	// the run's context on every measurement: the job must abort within
	// one probe's worth of work.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(250 * time.Millisecond)
		cancel()
	}()
	var completed []int
	start := time.Now()
	_, err := RunSweep(SweepOptions{
		Cfg:           config.PaperChip(),
		RowsPerRegion: 0, // every row: the paper's full resolution
		Workers:       1,
		Ctx:           ctx,
		Progress:      func(p engine.Progress) { completed = append(completed, p.Done) },
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Prompt return: far below one full channel's runtime. Generous bound
	// for race-instrumented CI.
	if elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v; mid-measurement abort is not working", elapsed)
	}
	// No channel job can have completed: the cancel fired mid-channel 0.
	if len(completed) != 0 {
		t.Fatalf("channel jobs completed despite mid-channel cancellation: %v", completed)
	}
}

func TestTRRStudyCancelMidIterations(t *testing.T) {
	// The fleet contract covers a chip job's TRR phase too: a cancel
	// landing inside the U-TRR loop must abort between iterations, not
	// wait out the remaining run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunTRRStudy(TRRStudyOptions{
		Cfg:        config.PaperChip(),
		Bank:       addr.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0},
		Iterations: 100000, // far more work than the cancel window allows
		Ctx:        ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("TRR study took %v to cancel; per-iteration abort is not working", elapsed)
	}
}

func TestFig3ChannelOrdering(t *testing.T) {
	s := smallSweep(t, 8)
	h := Fig3{s}.Headlines()
	if len(h.WCDPMeanBER) != 8 {
		t.Fatalf("%d channels in headlines, want 8", len(h.WCDPMeanBER))
	}
	// Channel 7 must be the most vulnerable, channel 0 among the least:
	// the paper's first key takeaway.
	for ch := 0; ch < 7; ch++ {
		if h.WCDPMeanBER[ch] > h.WCDPMeanBER[7] {
			t.Errorf("channel %d mean WCDP BER %.3f%% exceeds channel 7's %.3f%%",
				ch, h.WCDPMeanBER[ch], h.WCDPMeanBER[7])
		}
	}
	if h.MaxOverMinWCDP <= 1.3 {
		t.Errorf("max/min channel BER ratio = %.2f, want a clear spread (paper: 2.03)", h.MaxOverMinWCDP)
	}
	if h.MaxSpreadPct <= 30 {
		t.Errorf("max cross-channel spread = %.1f%%, want substantial (paper: 79%%)", h.MaxSpreadPct)
	}
	if h.MaxBER <= 0 {
		t.Error("no bitflips anywhere")
	}
}

func TestFig3RenderMentionsAllSeries(t *testing.T) {
	s := smallSweep(t, 4)
	out := Fig3{s}.Render()
	for _, want := range []string{"Rowstripe0", "Rowstripe1", "Checkered0", "Checkered1", "WCDP", "ch0", "ch7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 render missing %q", want)
		}
	}
}

func TestFig4Headlines(t *testing.T) {
	s := smallSweep(t, 8)
	h := Fig4{s}.Headlines()
	floor := int(s.Opts.Cfg.Fault.HCFloor)
	if h.MinHCFirst < floor {
		t.Errorf("min HCfirst %d below model floor %d", h.MinHCFirst, floor)
	}
	if h.MinHCFirst > core.DefaultHammers {
		t.Errorf("min HCfirst %d above the search ceiling", h.MinHCFirst)
	}
	// Channel 7 hammers more easily than channel 0.
	if h.WCDPMeanHC[7] >= h.WCDPMeanHC[0] {
		t.Errorf("ch7 mean WCDP HCfirst %.0f not below ch0's %.0f", h.WCDPMeanHC[7], h.WCDPMeanHC[0])
	}
	// Channel 0 is anti-cell rich: Rowstripe0 flips with fewer hammers.
	if h.Ch0Rowstripe0 >= h.Ch0Rowstripe1 {
		t.Errorf("ch0 Rowstripe0 mean HCfirst %.0f not below Rowstripe1's %.0f (paper: 57.9K vs 79.2K)",
			h.Ch0Rowstripe0, h.Ch0Rowstripe1)
	}
}

func TestFig5LastSubarrayIsWeak(t *testing.T) {
	s := smallSweep(t, 10)
	h := Fig5{s}.Headlines()
	if h.LastSubarrayRatio <= 0 || h.LastSubarrayRatio >= 0.8 {
		t.Errorf("last-subarray BER ratio = %.2f, want clearly below 0.8 (paper: far fewer flips)", h.LastSubarrayRatio)
	}
	if h.MidOverEdge <= 1 {
		t.Errorf("mid/edge BER ratio = %.2f, want > 1 (BER peaks mid-subarray)", h.MidOverEdge)
	}
}

func TestFig5ProfileShape(t *testing.T) {
	s := smallSweep(t, 5)
	xs, series := Fig5{s}.Profile("middle")
	if len(series) != 8 {
		t.Fatalf("%d channel series, want 8", len(series))
	}
	for _, sr := range series {
		if len(sr.Values) != len(xs) {
			t.Fatalf("series %s has %d values for %d rows", sr.Label, len(sr.Values), len(xs))
		}
	}
	out := Fig5{s}.Render()
	for _, want := range []string{"first", "middle", "last"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 render missing region %q", want)
		}
	}
}

func TestSweepCSVExport(t *testing.T) {
	s := smallSweep(t, 2)
	headers, rows := s.CSV()
	if len(headers) != 8 {
		t.Fatalf("%d headers", len(headers))
	}
	if len(rows) != len(s.Rows)*4 {
		t.Fatalf("%d CSV rows for %d sweep rows", len(rows), len(s.Rows))
	}
}

func TestFig6BankScatter(t *testing.T) {
	f, err := RunFig6(Fig6Options{
		Cfg:               config.SmallChip(),
		RowsPerBankRegion: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := f.Opts.Cfg.Geometry
	if len(f.Points) != g.TotalBanks() {
		t.Fatalf("%d bank points, want %d", len(f.Points), g.TotalBanks())
	}
	h := f.Headlines()
	if h.MeanLo <= 0 || h.MeanHi <= h.MeanLo {
		t.Errorf("mean BER range [%v, %v] implausible", h.MeanLo, h.MeanHi)
	}
	if h.CVLo <= 0 || h.CVHi <= h.CVLo {
		t.Errorf("CV range [%v, %v] implausible", h.CVLo, h.CVHi)
	}
	// Paper observation 2: channel-to-channel variation dominates
	// bank-to-bank variation within a channel.
	if h.CrossOverIntra <= 1 {
		t.Errorf("cross/intra channel spread ratio %.2f, want > 1", h.CrossOverIntra)
	}
	out := f.Render()
	if !strings.Contains(out, "Fig. 6") {
		t.Error("render missing title")
	}
	hd, rows := f.CSV()
	if len(hd) != 5 || len(rows) != len(f.Points) {
		t.Error("CSV export malformed")
	}
}

func TestTRRStudyReproducesSection5(t *testing.T) {
	s, err := RunTRRStudy(TRRStudyOptions{
		Cfg:  config.SmallChip(),
		Bank: addr.BankAddr{Channel: 2, PseudoChannel: 1, Bank: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Periodic || s.Period != 17 {
		t.Fatalf("inferred period (%d, periodic=%v), paper observes 17", s.Period, s.Periodic)
	}
	out := s.Render()
	for _, want := range []string{"every 17 REFs", "timeline", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	hd, rows := s.CSV()
	if len(hd) != 2 || len(rows) != len(s.Result.Refreshed) {
		t.Error("CSV export malformed")
	}
}

func TestSweepRejectsBadBank(t *testing.T) {
	if _, err := RunSweep(SweepOptions{Cfg: config.SmallChip(), Bank: 99, RowsPerRegion: 1}); err == nil {
		t.Fatal("bad bank accepted")
	}
}
