package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/results"
)

// registryNames are the studies the registry must cover: every driver in
// the repo.
var registryNames = []string{
	"crosschannel", "fig6", "multichip", "rowpress", "sweep",
	"tempsweep", "trrbypass", "trrstudy", "utrrprobe",
}

func TestRegistryCoversEveryDriver(t *testing.T) {
	all := All()
	var got []string
	for _, e := range all {
		got = append(got, e.Name)
		if e.Title == "" || e.Plan == nil {
			t.Errorf("experiment %q missing title or plan", e.Name)
		}
	}
	if strings.Join(got, ",") != strings.Join(registryNames, ",") {
		t.Fatalf("registry = %v, want %v", got, registryNames)
	}
	for _, name := range registryNames {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "multichip") {
		t.Errorf("unknown lookup should list valid names, got %v", err)
	}
}

// TestEveryExperimentPlansDeterministically pins the plan contract for
// every registry entry: planning is pure (same options, same job list),
// keys are unique, and the declared axis is consistent.
func TestEveryExperimentPlansDeterministically(t *testing.T) {
	o := Options{Cfg: config.SmallChip(), Rows: 2, Hammers: 2000, Seeds: 3, Iterations: 4}
	for _, e := range All() {
		p1, err := e.Plan(o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		p2, err := e.Plan(o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(p1.Jobs) == 0 || len(p1.Jobs) != len(p2.Jobs) {
			t.Fatalf("%s: plan sizes %d vs %d", e.Name, len(p1.Jobs), len(p2.Jobs))
		}
		if p1.Axis == "" || p1.Cfg == nil {
			t.Fatalf("%s: plan missing axis or config", e.Name)
		}
		seen := map[string]bool{}
		for i, j := range p1.Jobs {
			if j.Key == "" || seen[j.Key] {
				t.Fatalf("%s: job %d key %q empty or duplicate", e.Name, i, j.Key)
			}
			seen[j.Key] = true
			if j.Key != p2.Jobs[i].Key {
				t.Fatalf("%s: plan not deterministic: job %d %q vs %q", e.Name, i, j.Key, p2.Jobs[i].Key)
			}
		}
	}
}

// marshal renders an artifact for byte comparison.
func marshal(t *testing.T, a *results.Artifact) []byte {
	t.Helper()
	buf, err := a.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestPlannerEquivalenceMultiChipScan is the planner-determinism pin the
// refactor promises: a 32-seed fleet scan produces byte-identical
// artifacts under every planner at -parallel 1 and -parallel 8.
func TestPlannerEquivalenceMultiChipScan(t *testing.T) {
	if testing.Short() {
		t.Skip("32-seed scan x 7 planner/parallel combinations")
	}
	o := Options{Cfg: config.SmallChip(), Rows: 1, Seeds: 32, Parallel: 1, Planner: engine.PlanQueue}
	base, err := Run("multichip", o)
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, base)
	for _, planner := range []engine.Planner{engine.PlanContiguous, engine.PlanWeighted, engine.PlanStealing} {
		for _, parallel := range []int{1, 8} {
			o := o
			o.Planner, o.Parallel = planner, parallel
			a, err := Run("multichip", o)
			if err != nil {
				t.Fatalf("%v/parallel=%d: %v", planner, parallel, err)
			}
			if got := marshal(t, a); !bytes.Equal(got, want) {
				t.Fatalf("planner %v at parallel %d changed the artifact", planner, parallel)
			}
		}
	}
}

// TestRunMultiChipMatchesRegistryEntry pins that the facade-level
// RunMultiChip and the registry's multichip entry execute the same plan:
// identical artifacts for identical option sets.
func TestRunMultiChipMatchesRegistryEntry(t *testing.T) {
	cfg := config.SmallChip()
	seeds := []uint64{cfg.Seed, cfg.Seed + 1, cfg.Seed + 2}
	study, err := RunMultiChip(MultiChipOptions{Base: cfg, Seeds: seeds, RowsPerRegion: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run("multichip", Options{Cfg: cfg, Seeds: 3, Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, study.Artifact), marshal(t, a)) {
		t.Fatal("RunMultiChip artifact differs from registry run")
	}
}

// TestLiftedExperimentsShardMergeMatchesSingleProcess is the refactor's
// acceptance pin: for each newly lifted driver shape (spatial axis with
// shared groups, point axis with per-job groups, single-job plans), a
// 2-way shard split plus merge reproduces the single-process artifact
// byte for byte.
func TestLiftedExperimentsShardMergeMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full studies")
	}
	cases := []struct {
		name   string
		shards int
		opts   Options
	}{
		{"sweep", 2, Options{Cfg: config.SmallChip(), Rows: 1, Hammers: 2000}},
		{"fig6", 2, Options{Cfg: config.SmallChip(), Rows: 1, Hammers: 2000}},
		{"tempsweep", 2, Options{Cfg: config.SmallChip(), Rows: 2, Hammers: 2000}},
		{"rowpress", 2, Options{Cfg: config.SmallChip(), Rows: 2, Hammers: 4000}},
		{"crosschannel", 2, Options{Cfg: config.SmallChip(), Rows: 2}},
		{"trrbypass", 2, Options{Cfg: config.SmallChip(), Hammers: 2000}},
		{"utrrprobe", 2, Options{Cfg: config.SmallChip()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			single, err := Run(tc.name, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			var merged *results.Artifact
			for s := 0; s < tc.shards; s++ {
				o := tc.opts
				o.Shard, o.ShardCount = s, tc.shards
				shard, err := Run(tc.name, o)
				if err != nil {
					t.Fatal(err)
				}
				if s == 0 {
					merged = shard
					continue
				}
				if err := results.Merge(merged, shard); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(marshal(t, single), marshal(t, merged)) {
				t.Fatalf("%s: merged shards differ from single process:\n%s\nvs\n%s",
					tc.name, marshal(t, single), marshal(t, merged))
			}
		})
	}
}

// TestRunShardValidation pins the run-level shard errors.
func TestRunShardValidation(t *testing.T) {
	o := Options{Cfg: config.SmallChip(), Rows: 1}
	if _, err := Run("nope", o); err == nil {
		t.Error("unknown experiment accepted")
	}
	bad := o
	bad.Shard, bad.ShardCount = 2, 2
	if _, err := Run("crosschannel", bad); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range shard: %v", err)
	}
	// An empty shard slice is an explicit error, not an empty artifact
	// (crosschannel plans 2 jobs; 3 shards leave shard 0 empty).
	empty := o
	empty.Shard, empty.ShardCount = 0, 3
	if _, err := Run("crosschannel", empty); err == nil || !strings.Contains(err.Error(), "covers no jobs") {
		t.Errorf("empty shard: %v", err)
	}
}

// TestRenderedArtifactsMentionTheirAxis smoke-checks the generic render
// path for a point-axis artifact.
func TestRenderedArtifactsMentionTheirAxis(t *testing.T) {
	a, err := Run("crosschannel", Options{Cfg: config.SmallChip(), Rows: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := Render(a)
	for _, want := range []string{"crosschannel", "baseline", "coupled"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if a.Meta.JobAxis != "point" || a.Meta.JobCount != 2 {
		t.Errorf("crosschannel provenance: %+v", a.Meta)
	}
	if fmt.Sprintf("%v", a.Meta.JobKeys) != "[baseline coupled]" {
		t.Errorf("job keys %v", a.Meta.JobKeys)
	}
}
