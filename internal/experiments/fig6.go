package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/report"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// Fig6Options configures the per-bank variation study.
type Fig6Options struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Hammers is the BER hammer count (paper: 256K).
	Hammers int
	// RowsPerBankRegion is how many rows are tested at the start, middle
	// and end of each bank (paper: 100 each, 300 per bank).
	RowsPerBankRegion int
	// Workers is the number of parallel measurement devices.
	Workers int
}

func (o *Fig6Options) setDefaults() {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.Hammers <= 0 {
		o.Hammers = core.DefaultHammers
	}
	if o.RowsPerBankRegion <= 0 {
		o.RowsPerBankRegion = 100
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > o.Cfg.Geometry.Channels {
			o.Workers = o.Cfg.Geometry.Channels
		}
	}
}

// BankPoint is one bank's marker in the Fig. 6 scatter: the mean and the
// coefficient of variation of its per-row BER distribution.
type BankPoint struct {
	Bank    addr.BankAddr
	MeanBER float64 // percent
	CV      float64
}

// Fig6 is the per-bank BER variation figure.
type Fig6 struct {
	Opts   Fig6Options
	Points []BankPoint
}

// RunFig6 measures the BER distribution over the first, middle and last
// RowsPerBankRegion rows of every bank in the stack (the paper's 300 rows
// across all 256 banks). Each row's BER is taken under its best Table 1
// pattern at the full hammer count — a BER-maximizing proxy for the WCDP
// that avoids the per-row HCfirst search, which Fig. 6 does not need.
func RunFig6(o Fig6Options) (*Fig6, error) {
	o.setDefaults()
	if err := o.Cfg.Validate(); err != nil {
		return nil, err
	}
	g := o.Cfg.Geometry

	perChannel := make([][]BankPoint, g.Channels)
	chans := make(chan int)
	var wg sync.WaitGroup
	errs := make([]error, o.Workers)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := core.NewHarnessFromConfig(o.Cfg)
			if err != nil {
				errs[w] = err
				return
			}
			for ch := range chans {
				pts, err := fig6Channel(h, o, ch)
				if err != nil {
					errs[w] = fmt.Errorf("channel %d: %w", ch, err)
					return
				}
				perChannel[ch] = pts
			}
		}(w)
	}
	for ch := 0; ch < g.Channels; ch++ {
		chans <- ch
	}
	close(chans)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	f := &Fig6{Opts: o}
	for ch := 0; ch < g.Channels; ch++ {
		f.Points = append(f.Points, perChannel[ch]...)
	}
	return f, nil
}

func fig6Channel(h *core.Harness, o Fig6Options, ch int) ([]BankPoint, error) {
	g := o.Cfg.Geometry
	span := o.RowsPerBankRegion
	regions := []core.Region{
		{Name: "first", Start: 0, End: span},
		{Name: "middle", Start: (g.Rows - span) / 2, End: (g.Rows-span)/2 + span},
		{Name: "last", Start: g.Rows - span, End: g.Rows},
	}
	patterns := core.Table1()
	var pts []BankPoint
	for pc := 0; pc < g.PseudoChannels; pc++ {
		for bank := 0; bank < g.Banks; bank++ {
			ba := addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: bank}
			var bers []float64
			for _, region := range regions {
				for phys := region.Start; phys < region.End; phys++ {
					if phys <= 0 || phys >= g.Rows-1 {
						continue
					}
					best := 0.0
					for _, p := range patterns {
						r, err := h.BER(ba, phys, p, o.Hammers)
						if err != nil {
							return nil, err
						}
						if b := r.BER(); b > best {
							best = b
						}
					}
					bers = append(bers, best*100)
				}
			}
			sum := stats.Summarize(bers)
			pts = append(pts, BankPoint{Bank: ba, MeanBER: sum.Mean, CV: sum.CV()})
		}
	}
	return pts, nil
}

// Render draws the scatter plot; each point's glyph is its channel digit,
// matching the paper's colour coding.
func (f *Fig6) Render() string {
	pts := make([]report.Point, 0, len(f.Points))
	for _, p := range f.Points {
		pts = append(pts, report.Point{
			X:   p.CV,
			Y:   p.MeanBER,
			Tag: rune('0' + p.Bank.Channel%10),
		})
	}
	return report.RenderScatter(
		"Fig. 6: BER variation across banks (mean vs coefficient of variation)",
		"CV of BER distribution", "mean BER (%)", pts)
}

// Fig6Headlines carries the figure's quantitative takeaways.
type Fig6Headlines struct {
	// MeanLo/MeanHi bound the bank mean BER across the stack.
	MeanLo, MeanHi float64
	// CVLo/CVHi bound the coefficient of variation.
	CVLo, CVHi float64
	// MaxIntraChannelSpread is the largest within-channel difference of
	// bank mean BER (paper: up to 0.23 % in channel 7).
	MaxIntraChannelSpread float64
	// CrossOverIntra compares the global spread of bank means to the
	// largest within-channel spread; > 1 means channel variation
	// dominates bank variation, the paper's second Fig. 6 observation.
	CrossOverIntra float64
}

// Headlines computes Fig6Headlines.
func (f *Fig6) Headlines() Fig6Headlines {
	h := Fig6Headlines{}
	if len(f.Points) == 0 {
		return h
	}
	means := make([]float64, 0, len(f.Points))
	cvs := make([]float64, 0, len(f.Points))
	byCh := map[int][]float64{}
	for _, p := range f.Points {
		means = append(means, p.MeanBER)
		cvs = append(cvs, p.CV)
		byCh[p.Bank.Channel] = append(byCh[p.Bank.Channel], p.MeanBER)
	}
	h.MeanLo, h.MeanHi = stats.MinMax(means)
	h.CVLo, h.CVHi = stats.MinMax(cvs)
	for _, ms := range byCh {
		lo, hi := stats.MinMax(ms)
		if hi-lo > h.MaxIntraChannelSpread {
			h.MaxIntraChannelSpread = hi - lo
		}
	}
	if h.MaxIntraChannelSpread > 0 {
		h.CrossOverIntra = (h.MeanHi - h.MeanLo) / h.MaxIntraChannelSpread
	}
	return h
}

// CSV exports the scatter's raw data.
func (f *Fig6) CSV() (headers []string, rows [][]string) {
	headers = []string{"channel", "pseudo_channel", "bank", "mean_ber_pct", "cv"}
	for _, p := range f.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Bank.Channel),
			strconv.Itoa(p.Bank.PseudoChannel),
			strconv.Itoa(p.Bank.Bank),
			strconv.FormatFloat(p.MeanBER, 'f', 5, 64),
			strconv.FormatFloat(p.CV, 'f', 5, 64),
		})
	}
	return headers, rows
}
