package experiments

import (
	"context"
	"fmt"
	"strconv"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/report"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// Fig6Options configures the per-bank variation study.
type Fig6Options struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Hammers is the BER hammer count (paper: 256K).
	Hammers int
	// RowsPerBankRegion is how many rows are tested at the start, middle
	// and end of each bank (paper: 100 each, 300 per bank).
	RowsPerBankRegion int
	// Workers is the number of parallel measurement devices; <= 0 means
	// one per CPU. The engine shards per bank, so parallelism scales to
	// the stack's full bank count, and results never depend on it.
	Workers int
	// Ctx cancels a running study between per-bank jobs.
	Ctx context.Context
	// Progress, if non-nil, receives an update as each bank finishes.
	Progress engine.ProgressFunc
}

func (o *Fig6Options) setDefaults() {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.Hammers <= 0 {
		o.Hammers = core.DefaultHammers
	}
	if o.RowsPerBankRegion <= 0 {
		o.RowsPerBankRegion = 100
	}
}

// BankPoint is one bank's marker in the Fig. 6 scatter: the mean and the
// coefficient of variation of its per-row BER distribution.
type BankPoint struct {
	Bank    addr.BankAddr
	MeanBER float64 // percent
	CV      float64
}

// Fig6 is the per-bank BER variation figure.
type Fig6 struct {
	Opts   Fig6Options
	Points []BankPoint
}

// RunFig6 measures the BER distribution over the first, middle and last
// RowsPerBankRegion rows of every bank in the stack (the paper's 300 rows
// across all 256 banks). Each row's BER is taken under its best Table 1
// pattern at the full hammer count — a BER-maximizing proxy for the WCDP
// that avoids the per-row HCfirst search, which Fig. 6 does not need.
func RunFig6(o Fig6Options) (*Fig6, error) {
	o.setDefaults()
	if err := o.Cfg.Validate(); err != nil {
		return nil, err
	}
	g := o.Cfg.Geometry

	// One job per bank: the engine's finest useful shard for this study,
	// so parallelism scales to TotalBanks instead of the channel count.
	// Index order (channel, pseudo channel, bank) matches the figure's
	// point order.
	n := g.Channels * g.PseudoChannels * g.Banks
	eo := engine.Options{Ctx: o.Ctx, Workers: o.Workers, OnProgress: o.Progress}
	points, err := engine.MapHarness(eo, o.Cfg, n,
		func(_ context.Context, h *core.Harness, i int) (BankPoint, error) {
			ba := addr.BankAddr{
				Channel:       i / (g.PseudoChannels * g.Banks),
				PseudoChannel: (i / g.Banks) % g.PseudoChannels,
				Bank:          i % g.Banks,
			}
			pt, err := fig6Bank(h, o, ba)
			if err != nil {
				return BankPoint{}, fmt.Errorf("bank %v: %w", ba, err)
			}
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig6{Opts: o, Points: points}, nil
}

func fig6Bank(h *core.Harness, o Fig6Options, ba addr.BankAddr) (BankPoint, error) {
	g := o.Cfg.Geometry
	span := o.RowsPerBankRegion
	regions := []core.Region{
		{Name: "first", Start: 0, End: span},
		{Name: "middle", Start: (g.Rows - span) / 2, End: (g.Rows-span)/2 + span},
		{Name: "last", Start: g.Rows - span, End: g.Rows},
	}
	patterns := core.Table1()
	var victims []int
	for _, region := range regions {
		for phys := region.Start; phys < region.End; phys++ {
			if phys <= 0 || phys >= g.Rows-1 {
				continue
			}
			victims = append(victims, phys)
		}
	}
	// Batched probes: one BERBatch per pattern across every sampled row of
	// the bank, keeping the best BER per row — value-identical to the
	// per-row loop it replaces.
	best := make([]float64, len(victims))
	for _, p := range patterns {
		rs, err := h.BERBatch(ba, victims, p, o.Hammers)
		if err != nil {
			return BankPoint{}, err
		}
		for i, r := range rs {
			if b := r.BER(); b > best[i] {
				best[i] = b
			}
		}
	}
	bers := make([]float64, len(victims))
	for i, b := range best {
		bers[i] = b * 100
	}
	sum := stats.Summarize(bers)
	return BankPoint{Bank: ba, MeanBER: sum.Mean, CV: sum.CV()}, nil
}

// fig6Experiment lifts the per-bank variation study onto the registry:
// one harness job per bank across the whole stack, folded into the
// per-channel artifact Fig6.Artifact emits (bank mean BER and CV
// distributions per channel), so the 256-bank scan shards by bank range.
func fig6Experiment() *Experiment {
	return &Experiment{
		Name:  "fig6",
		Title: "Fig. 6 bank scatter: per-bank BER mean/CV distributions per channel",
		Plan: func(o Options) (*Plan, error) {
			fo := Fig6Options{
				Cfg:               o.Cfg,
				Hammers:           o.Hammers,
				RowsPerBankRegion: o.Rows,
				Workers:           o.Workers,
			}
			fo.setDefaults()
			if err := fo.Cfg.Validate(); err != nil {
				return nil, err
			}
			g := fo.Cfg.Geometry
			n := g.Channels * g.PseudoChannels * g.Banks
			jobs := make([]Job, n)
			for i := 0; i < n; i++ {
				ba := addr.BankAddr{
					Channel:       i / (g.PseudoChannels * g.Banks),
					PseudoChannel: (i / g.Banks) % g.PseudoChannels,
					Bank:          i % g.Banks,
				}
				jobs[i] = Job{
					Key: fmt.Sprintf("ch%d.pc%d.ba%d", ba.Channel, ba.PseudoChannel, ba.Bank),
					Run: func(_ context.Context, h *core.Harness) (any, error) {
						pt, err := fig6Bank(h, fo, ba)
						if err != nil {
							return nil, fmt.Errorf("bank %v: %w", ba, err)
						}
						return pt, nil
					},
				}
			}
			return &Plan{
				Axis:    "bank",
				Cfg:     fo.Cfg,
				Harness: true,
				Jobs:    jobs,
				Params: map[string]string{
					"rows_per_bank_region": strconv.Itoa(fo.RowsPerBankRegion),
					"hammers":              strconv.Itoa(fo.Hammers),
				},
				NewFold: func(lo, hi int) *Fold {
					a := &results.Artifact{
						Meta:   results.Meta{GroupBy: results.ByChannel.String()},
						Groups: newFig6Groups(fo.Cfg),
					}
					return &Fold{
						Add: func(_ int, payload any) error {
							addFig6Point(a.Groups, payload.(BankPoint))
							return nil
						},
						Finish: func() (*results.Artifact, error) { return a, nil },
					}
				},
			}, nil
		},
	}
}

// Render draws the scatter plot; each point's glyph is its channel digit,
// matching the paper's colour coding.
func (f *Fig6) Render() string {
	pts := make([]report.Point, 0, len(f.Points))
	for _, p := range f.Points {
		pts = append(pts, report.Point{
			X:   p.CV,
			Y:   p.MeanBER,
			Tag: rune('0' + p.Bank.Channel%10),
		})
	}
	return report.RenderScatter(
		"Fig. 6: BER variation across banks (mean vs coefficient of variation)",
		"CV of BER distribution", "mean BER (%)", pts)
}

// Fig6Headlines carries the figure's quantitative takeaways.
type Fig6Headlines struct {
	// MeanLo/MeanHi bound the bank mean BER across the stack.
	MeanLo, MeanHi float64
	// CVLo/CVHi bound the coefficient of variation.
	CVLo, CVHi float64
	// MaxIntraChannelSpread is the largest within-channel difference of
	// bank mean BER (paper: up to 0.23 % in channel 7).
	MaxIntraChannelSpread float64
	// CrossOverIntra compares the global spread of bank means to the
	// largest within-channel spread; > 1 means channel variation
	// dominates bank variation, the paper's second Fig. 6 observation.
	CrossOverIntra float64
}

// Headlines computes Fig6Headlines.
func (f *Fig6) Headlines() Fig6Headlines {
	h := Fig6Headlines{}
	if len(f.Points) == 0 {
		return h
	}
	means := make([]float64, 0, len(f.Points))
	cvs := make([]float64, 0, len(f.Points))
	byCh := map[int][]float64{}
	for _, p := range f.Points {
		means = append(means, p.MeanBER)
		cvs = append(cvs, p.CV)
		byCh[p.Bank.Channel] = append(byCh[p.Bank.Channel], p.MeanBER)
	}
	h.MeanLo, h.MeanHi = stats.MinMax(means)
	h.CVLo, h.CVHi = stats.MinMax(cvs)
	for _, ms := range byCh {
		lo, hi := stats.MinMax(ms)
		if hi-lo > h.MaxIntraChannelSpread {
			h.MaxIntraChannelSpread = hi - lo
		}
	}
	if h.MaxIntraChannelSpread > 0 {
		h.CrossOverIntra = (h.MeanHi - h.MeanLo) / h.MaxIntraChannelSpread
	}
	return h
}

// CSV exports the scatter's raw data.
func (f *Fig6) CSV() (headers []string, rows [][]string) {
	headers = []string{"channel", "pseudo_channel", "bank", "mean_ber_pct", "cv"}
	for _, p := range f.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Bank.Channel),
			strconv.Itoa(p.Bank.PseudoChannel),
			strconv.Itoa(p.Bank.Bank),
			strconv.FormatFloat(p.MeanBER, 'f', 5, 64),
			strconv.FormatFloat(p.CV, 'f', 5, 64),
		})
	}
	return headers, rows
}
