package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/hbm"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
	"github.com/safari-repro/hbmrh/internal/utrr"
)

// TRRStudyOptions configures the Section 5 experiment.
type TRRStudyOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Bank selects where the profiled row lives.
	Bank addr.BankAddr
	// Iterations is the number of U-TRR iterations (paper: 100).
	Iterations int
	// StartRow is where the retention scan begins. It defaults to a row
	// range the periodic-refresh pointer does not sweep during the run.
	StartRow int
	// Ctx aborts the study: before it starts, and between U-TRR
	// iterations once running (a fleet chip job's TRR phase cancels as
	// promptly as its sweep phase).
	Ctx context.Context
}

// TRRStudy is the outcome of the Section 5 reproduction.
type TRRStudy struct {
	Opts   TRRStudyOptions
	Result *utrr.Result
	// Period is the inferred victim-refresh period (paper: 17), with
	// Periodic indicating the fires were strictly periodic.
	Period   int
	Periodic bool
}

// RunTRRStudy reproduces Section 5: profile a retention-weak row, run the
// U-TRR iterations, and infer the proprietary TRR mechanism's period.
func RunTRRStudy(o TRRStudyOptions) (*TRRStudy, error) {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if err := o.Cfg.Validate(); err != nil {
		return nil, err
	}
	// The study runs as one engine job on a fresh device: U-TRR leans on
	// retention decay and the periodic-refresh pointer, i.e. accumulated
	// device state, so a pool-warmed device would not reproduce it.
	results, err := engine.Map(engine.Options{Ctx: o.Ctx}, 1,
		func(ctx context.Context, _ int) (*utrr.Result, error) { return runUTRR(o, ctx) })
	if err != nil {
		return nil, err
	}
	s := &TRRStudy{Opts: o, Result: results[0]}
	s.Period, s.Periodic = results[0].InferPeriod()
	return s, nil
}

func runUTRR(o TRRStudyOptions, ctx context.Context) (*utrr.Result, error) {
	d, err := hbm.New(o.Cfg)
	if err != nil {
		return nil, err
	}
	// Section 3.1 setup: ECC off so raw retention errors are visible.
	for ch := 0; ch < o.Cfg.Geometry.Channels; ch++ {
		if err := d.WriteModeRegister(ch, hbm.MRECC, 0); err != nil {
			return nil, err
		}
	}
	e := utrr.New(d)
	e.Ctx = ctx
	if o.Iterations > 0 {
		e.Iterations = o.Iterations
	}
	start := o.StartRow
	if start <= 0 {
		// Keep clear of the rows the refresh pointer sweeps: one REF per
		// iteration refreshes a couple of physical rows from address 0.
		start = o.Cfg.Geometry.Rows / 4
	}
	return e.Run(o.Bank, start)
}

// trrStudyExperiment lifts the Section 5 U-TRR discovery onto the
// registry. The study is one engine job on a fresh device (U-TRR leans
// on accumulated retention state), so its plan has a single point job;
// the artifact pipeline still buys it sharded merges (a one-job slice),
// serialized artifacts and the shared exports.
func trrStudyExperiment() *Experiment {
	return &Experiment{
		Name:  "trrstudy",
		Title: "Section 5 U-TRR: uncover the in-DRAM TRR mechanism and its period",
		Plan: func(o Options) (*Plan, error) {
			to := TRRStudyOptions{Cfg: o.Cfg, Iterations: o.Iterations}
			if to.Cfg == nil {
				to.Cfg = config.PaperChip()
			}
			if err := to.Cfg.Validate(); err != nil {
				return nil, err
			}
			iterations := to.Iterations
			if iterations <= 0 {
				iterations = 100 // utrr.New default, pinned for params
			}
			job := Job{
				Key: "utrr",
				Run: func(ctx context.Context, _ *core.Harness) (any, error) {
					return runUTRR(to, ctx)
				},
			}
			return &Plan{
				Axis:   "point",
				Cfg:    to.Cfg,
				Jobs:   []Job{job},
				Params: map[string]string{"iterations": strconv.Itoa(iterations)},
				NewFold: func(lo, hi int) *Fold {
					a := &results.Artifact{
						Meta: results.Meta{GroupBy: results.ByPoint.String()},
						Groups: []results.Group{{
							Key: results.Key{Channel: results.NoChannel, Point: "utrr"},
							Metrics: []results.Metric{
								{Name: "trr_period", Stream: stats.NewStream(0, 256)},
								{Name: "periodic", Stream: stats.NewStream(0, 2)},
								{Name: "victim_refreshes", Stream: stats.NewStream(0, float64(iterations+1))},
							},
						}},
					}
					return &Fold{
						Add: func(_ int, payload any) error {
							r := payload.(*utrr.Result)
							period, periodic := r.InferPeriod()
							ms := a.Groups[0].Metrics
							ms[0].Stream.Add(float64(period))
							if periodic {
								ms[1].Stream.Add(1)
							} else {
								ms[1].Stream.Add(0)
							}
							ms[2].Stream.Add(float64(len(r.Fires())))
							return nil
						},
						Finish: func() (*results.Artifact, error) { return a, nil },
					}
				},
			}, nil
		},
	}
}

// Render summarizes the study the way Section 5 reports it.
func (s *TRRStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Section 5: uncovering the proprietary in-DRAM TRR mechanism (U-TRR)\n")
	fmt.Fprintf(&sb, "profiled row: %s row %d (retention %.2f s), aggressor row %d\n",
		s.Opts.Bank, s.Result.Row, s.Result.RetentionSec, s.Result.Aggressor)
	fires := s.Result.Fires()
	fmt.Fprintf(&sb, "iterations: %d, victim refreshes observed: %d (at %v)\n",
		len(s.Result.Refreshed), len(fires), fires)
	if s.Periodic {
		fmt.Fprintf(&sb, "=> the chip refreshes the sampled aggressor's victims once every %d REFs\n", s.Period)
	} else {
		sb.WriteString("=> no strictly periodic victim refresh observed\n")
	}
	// Iteration strip chart: '#' = refreshed by TRR, '.' = decayed.
	glyphs := make([]byte, len(s.Result.Refreshed))
	for i, r := range s.Result.Refreshed {
		if r {
			glyphs[i] = '#'
		} else {
			glyphs[i] = '.'
		}
	}
	fmt.Fprintf(&sb, "timeline: %s\n", glyphs)
	return sb.String()
}

// CSV exports the per-iteration observations.
func (s *TRRStudy) CSV() (headers []string, rows [][]string) {
	headers = []string{"iteration", "refreshed"}
	for i, r := range s.Result.Refreshed {
		rows = append(rows, []string{strconv.Itoa(i + 1), strconv.FormatBool(r)})
	}
	return headers, rows
}
