package experiments

import (
	"fmt"
	"math"
	"strconv"

	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/report"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// seriesNames returns the x-axis groups of Figs. 3-4: the four Table 1
// patterns followed by the per-row worst-case pattern.
func seriesNames() []string {
	names := make([]string, 0, 5)
	for _, p := range core.Table1() {
		names = append(names, p.Name)
	}
	return append(names, core.WCDPName)
}

// distribution extracts, for one pattern index (len(Table1()) selects the
// WCDP series) and channel, the per-row metric values.
func (s *Sweep) distribution(patternIdx, channel int, metric func(RowResult, int) (float64, bool)) []float64 {
	var out []float64
	for _, r := range s.Rows {
		if r.Channel != channel {
			continue
		}
		pi := patternIdx
		if pi == len(r.BER) { // WCDP series
			pi = r.WCDP
		}
		if v, ok := metric(r, pi); ok {
			out = append(out, v)
		}
	}
	return out
}

func berMetric(r RowResult, pi int) (float64, bool) { return r.BER[pi] * 100, true } // percent

func hcMetric(r RowResult, pi int) (float64, bool) {
	if !r.Found[pi] {
		return 0, false // rows that never flip are excluded, as in Fig. 4
	}
	return float64(r.HCFirst[pi]), true
}

// boxGroups builds the Fig. 3/4 box-plot structure for a metric.
func (s *Sweep) boxGroups(metric func(RowResult, int) (float64, bool)) []report.BoxGroup {
	chs := s.Opts.Cfg.Geometry.Channels
	var groups []report.BoxGroup
	for pi, name := range seriesNames() {
		g := report.BoxGroup{Label: name}
		for ch := 0; ch < chs; ch++ {
			vals := s.distribution(pi, ch, metric)
			if len(vals) == 0 {
				continue
			}
			g.Series = append(g.Series, report.BoxSeries{
				Label:   "ch" + strconv.Itoa(ch),
				Summary: stats.Summarize(vals),
			})
		}
		groups = append(groups, g)
	}
	return groups
}

// --- Fig. 3: BER across rows, channels and data patterns ---

// Fig3 is the BER distribution figure.
type Fig3 struct{ Sweep *Sweep }

// Render draws the figure as ASCII box plots (BER in percent).
func (f Fig3) Render() string {
	return report.RenderBoxes(
		"Fig. 3: RowHammer BER across DRAM rows, channels and data patterns",
		"% BER", f.Sweep.boxGroups(berMetric))
}

// Fig3Headlines carries the figure's quantitative takeaways, matching the
// numbers the paper reports in its text.
type Fig3Headlines struct {
	// WCDPMeanBER is the mean WCDP BER per channel, in percent.
	WCDPMeanBER []float64
	// MaxOverMinWCDP is the ratio of the best to worst channel's mean
	// WCDP BER (paper: channel 7 is 2.03x channel 0).
	MaxOverMinWCDP float64
	// MaxSpreadPct is the largest cross-channel BER spread over all
	// patterns: (max-min)/max of channel mean BER (paper: up to 79 %).
	MaxSpreadPct float64
	// MaxBER is the highest per-row BER observed anywhere, in percent.
	MaxBER float64
}

// Headlines computes Fig3Headlines from the sweep.
func (f Fig3) Headlines() Fig3Headlines {
	chs := f.Sweep.Opts.Cfg.Geometry.Channels
	h := Fig3Headlines{WCDPMeanBER: make([]float64, chs)}
	wcdpIdx := len(core.Table1())
	for ch := 0; ch < chs; ch++ {
		h.WCDPMeanBER[ch] = stats.Mean(f.Sweep.distribution(wcdpIdx, ch, berMetric))
	}
	lo, hi := stats.MinMax(h.WCDPMeanBER)
	if lo > 0 {
		h.MaxOverMinWCDP = hi / lo
	}
	for pi := range seriesNames() {
		means := make([]float64, 0, chs)
		for ch := 0; ch < chs; ch++ {
			if vals := f.Sweep.distribution(pi, ch, berMetric); len(vals) > 0 {
				means = append(means, stats.Mean(vals))
			}
		}
		if len(means) < 2 {
			continue
		}
		mlo, mhi := stats.MinMax(means)
		if mhi > 0 {
			if spread := (mhi - mlo) / mhi * 100; spread > h.MaxSpreadPct {
				h.MaxSpreadPct = spread
			}
		}
	}
	for _, r := range f.Sweep.Rows {
		for _, b := range r.BER {
			if b*100 > h.MaxBER {
				h.MaxBER = b * 100
			}
		}
	}
	return h
}

// --- Fig. 4: HCfirst across rows, channels and data patterns ---

// Fig4 is the HCfirst distribution figure.
type Fig4 struct{ Sweep *Sweep }

// Render draws the figure as ASCII box plots (hammer counts).
func (f Fig4) Render() string {
	return report.RenderBoxes(
		"Fig. 4: minimum hammer count to induce the first bitflip (HCfirst)",
		"hammers", f.Sweep.boxGroups(hcMetric))
}

// Fig4Headlines carries the figure's quantitative takeaways.
type Fig4Headlines struct {
	// MinHCFirst is the smallest HCfirst observed across all channels
	// and patterns (paper: 14531).
	MinHCFirst int
	// WCDPMeanHC is the mean WCDP HCfirst per channel.
	WCDPMeanHC []float64
	// SpreadPct is the cross-channel spread of mean WCDP HCfirst:
	// (max-min)/max (paper: up to 20 %).
	SpreadPct float64
	// Ch0Rowstripe0 and Ch0Rowstripe1 are channel 0's mean HCfirst under
	// the two stripe patterns (paper: 57925 and 79179), showing that the
	// effective pattern is channel-dependent.
	Ch0Rowstripe0 float64
	Ch0Rowstripe1 float64
}

// Headlines computes Fig4Headlines from the sweep.
func (f Fig4) Headlines() Fig4Headlines {
	chs := f.Sweep.Opts.Cfg.Geometry.Channels
	h := Fig4Headlines{MinHCFirst: math.MaxInt, WCDPMeanHC: make([]float64, chs)}
	wcdpIdx := len(core.Table1())
	for ch := 0; ch < chs; ch++ {
		h.WCDPMeanHC[ch] = stats.Mean(f.Sweep.distribution(wcdpIdx, ch, hcMetric))
	}
	lo, hi := stats.MinMax(h.WCDPMeanHC)
	if hi > 0 {
		h.SpreadPct = (hi - lo) / hi * 100
	}
	for _, r := range f.Sweep.Rows {
		for pi, found := range r.Found {
			if found && r.HCFirst[pi] < h.MinHCFirst {
				h.MinHCFirst = r.HCFirst[pi]
			}
		}
	}
	h.Ch0Rowstripe0 = stats.Mean(f.Sweep.distribution(0, 0, hcMetric))
	h.Ch0Rowstripe1 = stats.Mean(f.Sweep.distribution(1, 0, hcMetric))
	return h
}

// --- Fig. 5: BER vs physical row address ---

// Fig5 is the per-row WCDP BER profile over the three regions.
type Fig5 struct{ Sweep *Sweep }

// Profile returns, for one region, the sampled physical rows and one BER
// series (percent) per channel.
func (f Fig5) Profile(region string) (xs []int, series []report.ProfileSeries) {
	byCh := f.Sweep.ByChannel()
	for ch, rows := range byCh {
		var vals []float64
		for _, r := range rows {
			if r.Region != region {
				continue
			}
			if ch == 0 {
				xs = append(xs, r.PhysRow)
			}
			vals = append(vals, r.WCDPBER()*100)
		}
		series = append(series, report.ProfileSeries{
			Label:  "ch" + strconv.Itoa(ch),
			Values: vals,
		})
	}
	return xs, series
}

// Render draws all three regional profiles.
func (f Fig5) Render() string {
	out := "Fig. 5: WCDP BER for rows across a bank (periodic within subarrays)\n"
	for _, region := range core.Regions(f.Sweep.Opts.Cfg.Geometry.Rows) {
		xs, series := f.Profile(region.Name)
		out += report.RenderProfile(fmt.Sprintf("region %q", region.Name), xs, series)
	}
	return out
}

// Fig5Headlines carries the figure's quantitative takeaways.
type Fig5Headlines struct {
	// LastSubarrayRatio is the mean WCDP BER of rows in the bank's final
	// subarray divided by the mean over all other tested rows; the paper
	// observes the last 832 rows substantially weaker (ratio << 1).
	LastSubarrayRatio float64
	// MidOverEdge is the mean BER of rows in the middle third of their
	// subarray over rows in the outer thirds; the paper observes BER
	// peaking mid-subarray (ratio > 1).
	MidOverEdge float64
}

// Headlines computes Fig5Headlines from the sweep.
func (f Fig5) Headlines() Fig5Headlines {
	layout := f.Sweep.Opts.Cfg.Layout()
	lastSA := layout.Count() - 1
	var last, rest, mid, edge []float64
	for _, r := range f.Sweep.Rows {
		ber := r.WCDPBER() * 100
		sa, off := layout.Locate(r.PhysRow)
		if sa == lastSA {
			last = append(last, ber)
		} else {
			rest = append(rest, ber)
			third := layout.Size(sa) / 3
			if off >= third && off < 2*third {
				mid = append(mid, ber)
			} else {
				edge = append(edge, ber)
			}
		}
	}
	h := Fig5Headlines{}
	if len(last) > 0 && len(rest) > 0 {
		h.LastSubarrayRatio = stats.Mean(last) / stats.Mean(rest)
	}
	if len(mid) > 0 && len(edge) > 0 {
		h.MidOverEdge = stats.Mean(mid) / stats.Mean(edge)
	}
	return h
}

// CSV exports the sweep's raw per-row data (shared by Figs. 3-5).
func (s *Sweep) CSV() (headers []string, rows [][]string) {
	headers = []string{"channel", "region", "phys_row", "pattern", "ber_pct", "hc_first", "found", "is_wcdp"}
	for _, r := range s.Rows {
		for pi, p := range core.Table1() {
			rows = append(rows, []string{
				strconv.Itoa(r.Channel),
				r.Region,
				strconv.Itoa(r.PhysRow),
				p.Name,
				strconv.FormatFloat(r.BER[pi]*100, 'f', 5, 64),
				strconv.Itoa(r.HCFirst[pi]),
				strconv.FormatBool(r.Found[pi]),
				strconv.FormatBool(pi == r.WCDP),
			})
		}
	}
	return headers, rows
}
