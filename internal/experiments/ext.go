package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/hbm"
	"github.com/safari-repro/hbmrh/internal/stats"
	"github.com/safari-repro/hbmrh/internal/thermal"
)

// Extension studies implementing the paper's Section 6 future-work
// directions: RowPress sensitivity (aggressor-on time), temperature
// sensitivity, and cross-channel interference.

// RowPressOptions configures the aggressor-on-time study.
type RowPressOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Bank and Channel select where victims are tested.
	Bank addr.BankAddr
	// Rows is how many mid-bank victim rows are averaged per point.
	Rows int
	// HoldMultipliers are the tRAS multiples to sweep (paper-adjacent
	// work sweeps aggressor-on time; 1 = standard RowHammer).
	HoldMultipliers []int
	// MaxHammers bounds the per-point HCfirst search.
	MaxHammers int
	// Workers bounds parallel sweep points; <= 0 means one per CPU.
	Workers int
	// Ctx cancels the study between sweep points.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished point.
	Progress engine.ProgressFunc
}

// RowPressPoint is one sweep point: the mean HCfirst at a hold time.
type RowPressPoint struct {
	HoldMultiplier int
	MeanHCFirst    float64
	// FoundAll is false if some sampled row never flipped within the
	// hammer budget at this hold time.
	FoundAll bool
}

// RowPressStudy is the outcome of the aggressor-on-time study.
type RowPressStudy struct {
	Opts   RowPressOptions
	Points []RowPressPoint
}

// RunRowPress sweeps the aggressor hold time and measures how many
// hammers the first bitflip needs: keeping aggressor rows open longer
// amplifies read disturbance, so HCfirst falls as the hold grows.
func RunRowPress(o RowPressOptions) (*RowPressStudy, error) {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.Rows <= 0 {
		o.Rows = 6
	}
	if len(o.HoldMultipliers) == 0 {
		o.HoldMultipliers = []int{1, 2, 4, 8, 16}
	}
	if o.MaxHammers <= 0 {
		o.MaxHammers = core.DefaultHammers
	}
	layout := o.Cfg.Layout()
	sa := layout.Count() / 2
	start := layout.Start(sa) + layout.Size(sa)/4
	tras := o.Cfg.Timing.TRAS
	pattern := core.Table1()[1] // Rowstripe1

	// One engine job per hold multiplier; each point's HCfirst searches
	// are pure functions of (seed, bank, row, hold), so pooled devices
	// reproduce the sequential results exactly.
	eo := engine.Options{Ctx: o.Ctx, Workers: o.Workers, OnProgress: o.Progress}
	points, err := engine.MapHarness(eo, o.Cfg, len(o.HoldMultipliers),
		func(_ context.Context, h *core.Harness, pi int) (RowPressPoint, error) {
			mult := o.HoldMultipliers[pi]
			var hcs []float64
			foundAll := true
			for i := 0; i < o.Rows; i++ {
				phys := start + i*3
				hc, found, err := h.HCFirstHold(o.Bank, phys, pattern, o.MaxHammers, tras*int64(mult))
				if err != nil {
					return RowPressPoint{}, err
				}
				if !found {
					foundAll = false
					continue
				}
				hcs = append(hcs, float64(hc))
			}
			p := RowPressPoint{HoldMultiplier: mult, FoundAll: foundAll}
			if len(hcs) > 0 {
				p.MeanHCFirst = stats.Mean(hcs)
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	return &RowPressStudy{Opts: o, Points: points}, nil
}

// Render prints the sweep as a table.
func (s *RowPressStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: RowPress — HCfirst vs aggressor-on time\n")
	sb.WriteString("hold (x tRAS)  mean HCfirst\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%13d  %.0f\n", p.HoldMultiplier, p.MeanHCFirst)
	}
	return sb.String()
}

// TempSweepOptions configures the temperature-sensitivity study.
type TempSweepOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Bank selects where victims are tested.
	Bank addr.BankAddr
	// Rows is how many victim rows are averaged per temperature.
	Rows int
	// TemperaturesC are the setpoints; the thermal rig settles each.
	TemperaturesC []float64
	// Hammers is the per-row BER hammer count.
	Hammers int
	// Workers bounds parallel setpoints; <= 0 means one per CPU. Each
	// setpoint keeps its own freshly settled device, so points stay
	// independent at any worker count.
	Workers int
	// Ctx cancels the study between setpoints.
	Ctx context.Context
	// Progress, if non-nil, receives an update per settled setpoint.
	Progress engine.ProgressFunc
}

// TempPoint is one temperature's measurement.
type TempPoint struct {
	TempC   float64
	MeanBER float64 // percent
}

// TempSweepStudy is the outcome of the temperature study.
type TempSweepStudy struct {
	Opts   TempSweepOptions
	Points []TempPoint
}

// RunTempSweep drives the simulated heating-pad/fan rig to each setpoint
// with its PID controller (as the paper's Arduino-based rig does), then
// measures RowHammer BER: hotter chips flip more.
func RunTempSweep(o TempSweepOptions) (*TempSweepStudy, error) {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.Rows <= 0 {
		o.Rows = 6
	}
	if len(o.TemperaturesC) == 0 {
		o.TemperaturesC = []float64{55, 65, 75, 85, 95}
	}
	if o.Hammers <= 0 {
		o.Hammers = core.DefaultHammers
	}
	layout := o.Cfg.Layout()
	sa := layout.Count() / 2
	start := layout.Start(sa) + layout.Size(sa)/4
	pattern := core.Table1()[1]

	// Temperature changes persistent device state, so this study bypasses
	// the warm pool: each engine job builds a fresh device and settles it
	// with the PID rig, as on the real bench.
	eo := engine.Options{Ctx: o.Ctx, Workers: o.Workers, OnProgress: o.Progress}
	points, err := engine.Map(eo, len(o.TemperaturesC),
		func(_ context.Context, i int) (TempPoint, error) {
			target := o.TemperaturesC[i]
			d, err := hbm.New(o.Cfg)
			if err != nil {
				return TempPoint{}, err
			}
			ctl := thermal.NewController(d, thermal.NewPlant(25))
			if err := ctl.SettleTo(target, 0.5, 5, 1800); err != nil {
				return TempPoint{}, fmt.Errorf("experiments: settling to %.0f C: %w", target, err)
			}
			h, err := core.NewHarness(d)
			if err != nil {
				return TempPoint{}, err
			}
			var bers []float64
			for i := 0; i < o.Rows; i++ {
				phys := start + i*3
				r, err := h.BER(o.Bank, phys, pattern, o.Hammers)
				if err != nil {
					return TempPoint{}, err
				}
				bers = append(bers, r.BER()*100)
			}
			return TempPoint{TempC: target, MeanBER: stats.Mean(bers)}, nil
		})
	if err != nil {
		return nil, err
	}
	return &TempSweepStudy{Opts: o, Points: points}, nil
}

// Render prints the sweep as a table.
func (s *TempSweepStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: RowHammer BER vs chip temperature (PID-settled)\n")
	sb.WriteString("temp (C)  mean BER (%)\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%8.0f  %.3f\n", p.TempC, p.MeanBER)
	}
	return sb.String()
}

// CrossChannelOptions configures the cross-channel interference probe.
type CrossChannelOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	// The study runs it twice: once as-is and once with the synthetic
	// vertical coupling below.
	Cfg *config.Config
	// SyntheticCoupling is the VerticalCoupling used for the "what if"
	// arm of the study.
	SyntheticCoupling float64
	// AggressorChannel is hammered; victims are read in channel +/- 2.
	AggressorChannel int
	// Activations per probed row.
	Activations int
	// Rows probed.
	Rows int
	// Ctx cancels the probe between its two arms.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished arm.
	Progress engine.ProgressFunc
}

// CrossChannelStudy is the outcome of the interference probe.
type CrossChannelStudy struct {
	Opts CrossChannelOptions
	// BaselineFlips is the cross-channel flip count on the paper-default
	// chip (no vertical coupling observed).
	BaselineFlips int
	// CoupledFlips is the flip count with SyntheticCoupling injected.
	CoupledFlips int
}

// RunCrossChannel hammers rows in one channel and checks the same
// physical rows of the vertically adjacent channels for bitflips —
// the paper's future-work question 3. On the default chip nothing
// crosses; the synthetic arm shows what the methodology would detect if
// the dies did couple.
func RunCrossChannel(o CrossChannelOptions) (*CrossChannelStudy, error) {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.SyntheticCoupling <= 0 {
		o.SyntheticCoupling = 0.5
	}
	if o.Activations <= 0 {
		o.Activations = 1_000_000
	}
	if o.Rows <= 0 {
		o.Rows = 4
	}
	s := &CrossChannelStudy{Opts: o}
	run := func(coupling float64) (int, error) {
		cfg := *o.Cfg
		cfg.Fault.VerticalCoupling = coupling
		d, err := hbm.New(&cfg)
		if err != nil {
			return 0, err
		}
		if _, err := core.NewHarness(d); err != nil { // ECC off
			return 0, err
		}
		layout := cfg.Layout()
		sa := layout.Count() / 2
		start := layout.Start(sa) + layout.Size(sa)/4
		g := cfg.Geometry
		m := d.Mapper()
		victimChannels := []int{o.AggressorChannel - 2, o.AggressorChannel + 2}
		pattern := make([]byte, g.RowBytes())
		for i := range pattern {
			pattern[i] = 0xFF
		}
		flips := 0
		for i := 0; i < o.Rows; i++ {
			phys := start + i*5
			logical := m.ToLogical(phys)
			for _, vch := range victimChannels {
				if vch < 0 || vch >= g.Channels {
					continue
				}
				vb := addr.BankAddr{Channel: vch, PseudoChannel: 0, Bank: 0}
				if err := hbm.WriteRow(d, vb, logical, pattern); err != nil {
					return 0, err
				}
			}
			ab := addr.BankAddr{Channel: o.AggressorChannel, PseudoChannel: 0, Bank: 0}
			if err := d.HammerSingle(ab, logical, o.Activations); err != nil {
				return 0, err
			}
			if err := d.AdvanceTime(cfg.Timing.TRP); err != nil {
				return 0, err
			}
			for _, vch := range victimChannels {
				if vch < 0 || vch >= g.Channels {
					continue
				}
				vb := addr.BankAddr{Channel: vch, PseudoChannel: 0, Bank: 0}
				got, err := hbm.ReadRow(d, vb, logical)
				if err != nil {
					return 0, err
				}
				flips += hbm.CountMismatches(got, pattern)
			}
		}
		return flips, nil
	}
	// The two arms (as-is and synthetically coupled) are independent
	// devices, so they run as parallel engine jobs.
	arms := []float64{o.Cfg.Fault.VerticalCoupling, o.SyntheticCoupling}
	eo := engine.Options{Ctx: o.Ctx, OnProgress: o.Progress}
	flips, err := engine.Map(eo, len(arms),
		func(_ context.Context, i int) (int, error) { return run(arms[i]) })
	if err != nil {
		return nil, err
	}
	s.BaselineFlips, s.CoupledFlips = flips[0], flips[1]
	return s, nil
}

// Render summarizes the probe.
func (s *CrossChannelStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: cross-channel interference probe (vertically stacked dies)\n")
	fmt.Fprintf(&sb, "aggressor channel %d, %d activations per row, victims in channels +/- 2\n",
		s.Opts.AggressorChannel, s.Opts.Activations)
	fmt.Fprintf(&sb, "default chip:            %d cross-channel bitflips\n", s.BaselineFlips)
	fmt.Fprintf(&sb, "synthetic coupling %.2f: %d cross-channel bitflips\n",
		s.Opts.SyntheticCoupling, s.CoupledFlips)
	return sb.String()
}
