package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/hbm"
	"github.com/safari-repro/hbmrh/internal/stats"
	"github.com/safari-repro/hbmrh/internal/thermal"
)

// Extension studies implementing the paper's Section 6 future-work
// directions: RowPress sensitivity (aggressor-on time), temperature
// sensitivity, and cross-channel interference.

// RowPressOptions configures the aggressor-on-time study.
type RowPressOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Bank and Channel select where victims are tested.
	Bank addr.BankAddr
	// Rows is how many mid-bank victim rows are averaged per point.
	Rows int
	// HoldMultipliers are the tRAS multiples to sweep (paper-adjacent
	// work sweeps aggressor-on time; 1 = standard RowHammer).
	HoldMultipliers []int
	// MaxHammers bounds the per-point HCfirst search.
	MaxHammers int
	// Workers bounds parallel sweep points; <= 0 means one per CPU.
	Workers int
	// Ctx cancels the study between sweep points.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished point.
	Progress engine.ProgressFunc
}

// RowPressPoint is one sweep point: the mean HCfirst at a hold time.
type RowPressPoint struct {
	HoldMultiplier int
	MeanHCFirst    float64
	// FoundAll is false if some sampled row never flipped within the
	// hammer budget at this hold time.
	FoundAll bool
}

// RowPressStudy is the outcome of the aggressor-on-time study.
type RowPressStudy struct {
	Opts   RowPressOptions
	Points []RowPressPoint
}

// setDefaults resolves the option defaults shared by RunRowPress and the
// registry entry.
func (o *RowPressOptions) setDefaults() {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.Rows <= 0 {
		o.Rows = 6
	}
	if len(o.HoldMultipliers) == 0 {
		o.HoldMultipliers = []int{1, 2, 4, 8, 16}
	}
	if o.MaxHammers <= 0 {
		o.MaxHammers = core.DefaultHammers
	}
}

// rowPressPoint measures one hold multiplier: the HCfirst samples of the
// sampled victim rows (rows that never flip are excluded, with foundAll
// cleared). Each sample is a pure function of (seed, bank, row, hold), so
// pooled devices reproduce the sequential results exactly.
func rowPressPoint(h *core.Harness, o RowPressOptions, mult int) (hcs []float64, foundAll bool, err error) {
	layout := o.Cfg.Layout()
	sa := layout.Count() / 2
	start := layout.Start(sa) + layout.Size(sa)/4
	tras := o.Cfg.Timing.TRAS
	pattern := core.Table1()[1] // Rowstripe1
	foundAll = true
	for i := 0; i < o.Rows; i++ {
		phys := start + i*3
		hc, found, err := h.HCFirstHold(o.Bank, phys, pattern, o.MaxHammers, tras*int64(mult))
		if err != nil {
			return nil, false, err
		}
		if !found {
			foundAll = false
			continue
		}
		hcs = append(hcs, float64(hc))
	}
	return hcs, foundAll, nil
}

// RunRowPress sweeps the aggressor hold time and measures how many
// hammers the first bitflip needs: keeping aggressor rows open longer
// amplifies read disturbance, so HCfirst falls as the hold grows.
func RunRowPress(o RowPressOptions) (*RowPressStudy, error) {
	o.setDefaults()
	// One engine job per hold multiplier.
	eo := engine.Options{Ctx: o.Ctx, Workers: o.Workers, OnProgress: o.Progress}
	points, err := engine.MapHarness(eo, o.Cfg, len(o.HoldMultipliers),
		func(_ context.Context, h *core.Harness, pi int) (RowPressPoint, error) {
			mult := o.HoldMultipliers[pi]
			hcs, foundAll, err := rowPressPoint(h, o, mult)
			if err != nil {
				return RowPressPoint{}, err
			}
			p := RowPressPoint{HoldMultiplier: mult, FoundAll: foundAll}
			if len(hcs) > 0 {
				p.MeanHCFirst = stats.Mean(hcs)
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	return &RowPressStudy{Opts: o, Points: points}, nil
}

// rowPressExperiment lifts the RowPress sweep onto the registry: one
// harness job per hold multiplier, weighted by the multiplier (longer
// holds simulate more wall time), folding raw per-row HCfirst samples
// into a point-axis artifact.
func rowPressExperiment() *Experiment {
	return &Experiment{
		Name:  "rowpress",
		Title: "RowPress extension: HCfirst distribution vs aggressor-on time",
		Plan: func(o Options) (*Plan, error) {
			ro := RowPressOptions{Cfg: o.Cfg, Rows: o.Rows, MaxHammers: o.Hammers}
			ro.setDefaults()
			if err := ro.Cfg.Validate(); err != nil {
				return nil, err
			}
			jobs := make([]Job, len(ro.HoldMultipliers))
			for i, mult := range ro.HoldMultipliers {
				mult := mult
				jobs[i] = Job{
					Key:    fmt.Sprintf("hold_x%d", mult),
					Weight: float64(mult),
					Run: func(_ context.Context, h *core.Harness) (any, error) {
						hcs, _, err := rowPressPoint(h, ro, mult)
						return hcs, err
					},
				}
			}
			return &Plan{
				Axis:    "point",
				Cfg:     ro.Cfg,
				Harness: true,
				Jobs:    jobs,
				Params: map[string]string{
					"rows":    strconv.Itoa(ro.Rows),
					"hammers": strconv.Itoa(ro.MaxHammers),
				},
				NewFold: pointFold(jobs, "hc_first", 0, float64(ro.MaxHammers)),
			}, nil
		},
	}
}

// Render prints the sweep as a table.
func (s *RowPressStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: RowPress — HCfirst vs aggressor-on time\n")
	sb.WriteString("hold (x tRAS)  mean HCfirst\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%13d  %.0f\n", p.HoldMultiplier, p.MeanHCFirst)
	}
	return sb.String()
}

// TempSweepOptions configures the temperature-sensitivity study.
type TempSweepOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	Cfg *config.Config
	// Bank selects where victims are tested.
	Bank addr.BankAddr
	// Rows is how many victim rows are averaged per temperature.
	Rows int
	// TemperaturesC are the setpoints; the thermal rig settles each.
	TemperaturesC []float64
	// Hammers is the per-row BER hammer count.
	Hammers int
	// Workers bounds parallel setpoints; <= 0 means one per CPU. Each
	// setpoint keeps its own freshly settled device, so points stay
	// independent at any worker count.
	Workers int
	// Ctx cancels the study between setpoints.
	Ctx context.Context
	// Progress, if non-nil, receives an update per settled setpoint.
	Progress engine.ProgressFunc
}

// TempPoint is one temperature's measurement.
type TempPoint struct {
	TempC   float64
	MeanBER float64 // percent
}

// TempSweepStudy is the outcome of the temperature study.
type TempSweepStudy struct {
	Opts   TempSweepOptions
	Points []TempPoint
}

// setDefaults resolves the option defaults shared by RunTempSweep and
// the registry entry.
func (o *TempSweepOptions) setDefaults() {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.Rows <= 0 {
		o.Rows = 6
	}
	if len(o.TemperaturesC) == 0 {
		o.TemperaturesC = []float64{55, 65, 75, 85, 95}
	}
	if o.Hammers <= 0 {
		o.Hammers = core.DefaultHammers
	}
}

// tempSweepPoint measures one setpoint: build a fresh device (temperature
// changes persistent device state, so the warm pool is bypassed), settle
// it with the PID rig as on the real bench, and return the sampled rows'
// BER in percent.
func tempSweepPoint(o TempSweepOptions, target float64) ([]float64, error) {
	layout := o.Cfg.Layout()
	sa := layout.Count() / 2
	start := layout.Start(sa) + layout.Size(sa)/4
	pattern := core.Table1()[1]
	d, err := hbm.New(o.Cfg)
	if err != nil {
		return nil, err
	}
	ctl := thermal.NewController(d, thermal.NewPlant(25))
	if err := ctl.SettleTo(target, 0.5, 5, 1800); err != nil {
		return nil, fmt.Errorf("experiments: settling to %.0f C: %w", target, err)
	}
	h, err := core.NewHarness(d)
	if err != nil {
		return nil, err
	}
	bers := make([]float64, 0, o.Rows)
	for i := 0; i < o.Rows; i++ {
		phys := start + i*3
		r, err := h.BER(o.Bank, phys, pattern, o.Hammers)
		if err != nil {
			return nil, err
		}
		bers = append(bers, r.BER()*100)
	}
	return bers, nil
}

// RunTempSweep drives the simulated heating-pad/fan rig to each setpoint
// with its PID controller (as the paper's Arduino-based rig does), then
// measures RowHammer BER: hotter chips flip more.
func RunTempSweep(o TempSweepOptions) (*TempSweepStudy, error) {
	o.setDefaults()
	eo := engine.Options{Ctx: o.Ctx, Workers: o.Workers, OnProgress: o.Progress}
	points, err := engine.Map(eo, len(o.TemperaturesC),
		func(_ context.Context, i int) (TempPoint, error) {
			target := o.TemperaturesC[i]
			bers, err := tempSweepPoint(o, target)
			if err != nil {
				return TempPoint{}, err
			}
			return TempPoint{TempC: target, MeanBER: stats.Mean(bers)}, nil
		})
	if err != nil {
		return nil, err
	}
	return &TempSweepStudy{Opts: o, Points: points}, nil
}

// tempSweepExperiment lifts the temperature study onto the registry: one
// point job per PID-settled setpoint, folding raw per-row BER samples
// into a point-axis artifact.
func tempSweepExperiment() *Experiment {
	return &Experiment{
		Name:  "tempsweep",
		Title: "temperature extension: RowHammer BER distribution across PID-settled setpoints",
		Plan: func(o Options) (*Plan, error) {
			to := TempSweepOptions{Cfg: o.Cfg, Rows: o.Rows, Hammers: o.Hammers}
			to.setDefaults()
			if err := to.Cfg.Validate(); err != nil {
				return nil, err
			}
			jobs := make([]Job, len(to.TemperaturesC))
			for i, target := range to.TemperaturesC {
				target := target
				jobs[i] = Job{
					Key: fmt.Sprintf("t=%gC", target),
					Run: func(_ context.Context, _ *core.Harness) (any, error) {
						return tempSweepPoint(to, target)
					},
				}
			}
			return &Plan{
				Axis: "point",
				Cfg:  to.Cfg,
				Jobs: jobs,
				Params: map[string]string{
					"rows":    strconv.Itoa(to.Rows),
					"hammers": strconv.Itoa(to.Hammers),
				},
				NewFold: pointFold(jobs, "ber_pct", 0, 100),
			}, nil
		},
	}
}

// Render prints the sweep as a table.
func (s *TempSweepStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: RowHammer BER vs chip temperature (PID-settled)\n")
	sb.WriteString("temp (C)  mean BER (%)\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%8.0f  %.3f\n", p.TempC, p.MeanBER)
	}
	return sb.String()
}

// CrossChannelOptions configures the cross-channel interference probe.
type CrossChannelOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	// The study runs it twice: once as-is and once with the synthetic
	// vertical coupling below.
	Cfg *config.Config
	// SyntheticCoupling is the VerticalCoupling used for the "what if"
	// arm of the study.
	SyntheticCoupling float64
	// AggressorChannel is hammered; victims are read in channel +/- 2.
	AggressorChannel int
	// Activations per probed row.
	Activations int
	// Rows probed.
	Rows int
	// Ctx cancels the probe between its two arms.
	Ctx context.Context
	// Progress, if non-nil, receives an update per finished arm.
	Progress engine.ProgressFunc
}

// CrossChannelStudy is the outcome of the interference probe.
type CrossChannelStudy struct {
	Opts CrossChannelOptions
	// BaselineFlips is the cross-channel flip count on the paper-default
	// chip (no vertical coupling observed).
	BaselineFlips int
	// CoupledFlips is the flip count with SyntheticCoupling injected.
	CoupledFlips int
}

// RunCrossChannel hammers rows in one channel and checks the same
// physical rows of the vertically adjacent channels for bitflips —
// the paper's future-work question 3. On the default chip nothing
// crosses; the synthetic arm shows what the methodology would detect if
// the dies did couple.
func RunCrossChannel(o CrossChannelOptions) (*CrossChannelStudy, error) {
	o.setDefaults()
	s := &CrossChannelStudy{Opts: o}
	// The two arms (as-is and synthetically coupled) are independent
	// devices, so they run as parallel engine jobs.
	arms := []float64{o.Cfg.Fault.VerticalCoupling, o.SyntheticCoupling}
	eo := engine.Options{Ctx: o.Ctx, OnProgress: o.Progress}
	flips, err := engine.Map(eo, len(arms),
		func(_ context.Context, i int) (int, error) { return crossChannelArm(o, arms[i]) })
	if err != nil {
		return nil, err
	}
	s.BaselineFlips, s.CoupledFlips = flips[0], flips[1]
	return s, nil
}

// setDefaults resolves the option defaults shared by RunCrossChannel and
// the registry entry.
func (o *CrossChannelOptions) setDefaults() {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.SyntheticCoupling <= 0 {
		o.SyntheticCoupling = 0.5
	}
	if o.Activations <= 0 {
		o.Activations = 1_000_000
	}
	if o.Rows <= 0 {
		o.Rows = 4
	}
}

// crossChannelArm measures one arm of the probe: hammer rows in the
// aggressor channel of a fresh device with the given vertical coupling
// and count bitflips in the same physical rows of channels +/- 2.
func crossChannelArm(o CrossChannelOptions, coupling float64) (int, error) {
	cfg := *o.Cfg
	cfg.Fault.VerticalCoupling = coupling
	d, err := hbm.New(&cfg)
	if err != nil {
		return 0, err
	}
	if _, err := core.NewHarness(d); err != nil { // ECC off
		return 0, err
	}
	layout := cfg.Layout()
	sa := layout.Count() / 2
	start := layout.Start(sa) + layout.Size(sa)/4
	g := cfg.Geometry
	m := d.Mapper()
	victimChannels := []int{o.AggressorChannel - 2, o.AggressorChannel + 2}
	pattern := make([]byte, g.RowBytes())
	for i := range pattern {
		pattern[i] = 0xFF
	}
	flips := 0
	for i := 0; i < o.Rows; i++ {
		phys := start + i*5
		logical := m.ToLogical(phys)
		for _, vch := range victimChannels {
			if vch < 0 || vch >= g.Channels {
				continue
			}
			vb := addr.BankAddr{Channel: vch, PseudoChannel: 0, Bank: 0}
			if err := hbm.WriteRow(d, vb, logical, pattern); err != nil {
				return 0, err
			}
		}
		ab := addr.BankAddr{Channel: o.AggressorChannel, PseudoChannel: 0, Bank: 0}
		if err := d.HammerSingle(ab, logical, o.Activations); err != nil {
			return 0, err
		}
		if err := d.AdvanceTime(cfg.Timing.TRP); err != nil {
			return 0, err
		}
		for _, vch := range victimChannels {
			if vch < 0 || vch >= g.Channels {
				continue
			}
			vb := addr.BankAddr{Channel: vch, PseudoChannel: 0, Bank: 0}
			got, err := hbm.ReadRow(d, vb, logical)
			if err != nil {
				return 0, err
			}
			flips += hbm.CountMismatches(got, pattern)
		}
	}
	return flips, nil
}

// crossChannelExperiment lifts the interference probe onto the registry:
// two point jobs — the chip as designed and the synthetically coupled
// what-if — each counting cross-channel bitflips.
func crossChannelExperiment() *Experiment {
	return &Experiment{
		Name:  "crosschannel",
		Title: "cross-channel extension: vertical die-to-die interference probe",
		Plan: func(o Options) (*Plan, error) {
			co := CrossChannelOptions{Cfg: o.Cfg, Rows: o.Rows, AggressorChannel: 4}
			co.setDefaults()
			if err := co.Cfg.Validate(); err != nil {
				return nil, err
			}
			if co.AggressorChannel >= co.Cfg.Geometry.Channels {
				co.AggressorChannel = co.Cfg.Geometry.Channels / 2
			}
			arms := []struct {
				key      string
				coupling float64
			}{
				{"baseline", co.Cfg.Fault.VerticalCoupling},
				{"coupled", co.SyntheticCoupling},
			}
			jobs := make([]Job, len(arms))
			for i, arm := range arms {
				coupling := arm.coupling
				jobs[i] = Job{
					Key: arm.key,
					Run: func(_ context.Context, _ *core.Harness) (any, error) {
						return crossChannelArm(co, coupling)
					},
				}
			}
			// Flip ceiling: every probed row of both victim channels fully
			// inverted.
			maxFlips := float64(co.Rows*co.Cfg.Geometry.RowBytes()*8*2) + 1
			return &Plan{
				Axis: "point",
				Cfg:  co.Cfg,
				Jobs: jobs,
				Params: map[string]string{
					"rows":        strconv.Itoa(co.Rows),
					"activations": strconv.Itoa(co.Activations),
					"coupling":    fmt.Sprintf("%g", co.SyntheticCoupling),
				},
				NewFold: pointFold(jobs, "cross_flips", 0, maxFlips),
			}, nil
		},
	}
}

// Render summarizes the probe.
func (s *CrossChannelStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: cross-channel interference probe (vertically stacked dies)\n")
	fmt.Fprintf(&sb, "aggressor channel %d, %d activations per row, victims in channels +/- 2\n",
		s.Opts.AggressorChannel, s.Opts.Activations)
	fmt.Fprintf(&sb, "default chip:            %d cross-channel bitflips\n", s.BaselineFlips)
	fmt.Fprintf(&sb, "synthetic coupling %.2f: %d cross-channel bitflips\n",
		s.Opts.SyntheticCoupling, s.CoupledFlips)
	return sb.String()
}
