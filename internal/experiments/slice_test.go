package experiments

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/results"
)

// TestRunSliceMergeMatchesRun pins the invariant the fleet worker's
// checkpoint/resume rests on: arbitrary adjacent job slices of a plan,
// merged through results.Merge, reproduce the unsharded artifact byte
// for byte — on a point-axis study and on the seed axis.
func TestRunSliceMergeMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
		cuts []int // slice boundaries, strictly inside (0, jobs)
	}{
		{"rowpress", Options{Cfg: config.SmallChip(), Rows: 1, Hammers: 60000}, []int{1, 2, 4}},
		{"multichip", Options{Cfg: config.SmallChip(), Rows: 2, Seeds: 4}, []int{3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			info, err := Describe(tc.name, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			whole, err := Run(tc.name, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := whole.MarshalIndented()
			if err != nil {
				t.Fatal(err)
			}
			bounds := append(append([]int{0}, tc.cuts...), info.Jobs)
			var merged *results.Artifact
			for i := 0; i+1 < len(bounds); i++ {
				part, err := RunSlice(tc.name, tc.opts, bounds[i], bounds[i+1])
				if err != nil {
					t.Fatal(err)
				}
				if merged == nil {
					merged = part
					continue
				}
				if err := results.Merge(merged, part); err != nil {
					t.Fatalf("merging slice [%d,%d): %v", bounds[i], bounds[i+1], err)
				}
			}
			got, err := merged.MarshalIndented()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("merged slices differ from unsharded run (cuts %v)", tc.cuts)
			}
		})
	}
}

// TestRunSliceRejectsBadSlices pins the range validation.
func TestRunSliceRejectsBadSlices(t *testing.T) {
	opts := Options{Cfg: config.SmallChip(), Rows: 1, Hammers: 60000}
	info, err := Describe("rowpress", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 1}, {0, info.Jobs + 1}, {2, 2}, {3, 1}} {
		if _, err := RunSlice("rowpress", opts, bad[0], bad[1]); err == nil {
			t.Errorf("RunSlice(%d, %d) succeeded, want range error", bad[0], bad[1])
		}
	}
	if _, err := RunSlice("no-such-experiment", opts, 0, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}
