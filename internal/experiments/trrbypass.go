package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/hbm"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// TRR bypass: the attack-side consequence of Section 5. Once the
// proprietary mechanism is uncovered — a single-slot sampler holding the
// most recently activated row, firing a victim refresh every 17 REFs —
// an attacker defeats it by activating a harmless decoy row right before
// every REF. The sampler then always holds the decoy, the TRR spends its
// fires refreshing the decoy's neighbours, and the true victim
// accumulates the full hammer count under completely nominal refresh.

// TRRBypassOptions configures the study.
type TRRBypassOptions struct {
	// Cfg is the device configuration; nil means config.PaperChip().
	// The study models nominal operation (periodic REFs at tREFI), so
	// the paper-geometry refresh pointer cadence matters; SmallChip's
	// short bank makes the pointer sweep victims mid-attack.
	Cfg *config.Config
	// Bank is where the attack runs.
	Bank addr.BankAddr
	// Hammers is the double-sided hammer budget (paper: 256K).
	Hammers int
	// Ctx cancels the study between its two arms.
	Ctx context.Context
}

// TRRBypassStudy compares the attack with and without the decoy.
type TRRBypassStudy struct {
	Opts TRRBypassOptions
	// ProtectedFlips is the victim bitflip count when hammering naively
	// under nominal refresh: the TRR samples the aggressors and protects
	// the victim.
	ProtectedFlips int
	// BypassedFlips is the count with a decoy activation before every
	// REF, blinding the sampler.
	BypassedFlips int
	// Refreshes is the number of periodic REFs issued per arm.
	Refreshes int
}

// RunTRRBypass runs both arms: interleaved hammering with REFs at the
// nominal tREFI cadence, without and with the decoy.
func RunTRRBypass(o TRRBypassOptions) (*TRRBypassStudy, error) {
	if o.Cfg == nil {
		o.Cfg = config.PaperChip()
	}
	if o.Hammers <= 0 {
		o.Hammers = core.DefaultHammers
	}
	s := &TRRBypassStudy{Opts: o}
	// Both arms run under nominal refresh on their own fresh devices, so
	// they are independent engine jobs: index 0 is the naive attack,
	// index 1 the decoy-assisted one.
	type arm struct{ flips, refs int }
	arms, err := engine.Map(engine.Options{Ctx: o.Ctx}, 2,
		func(_ context.Context, i int) (arm, error) {
			flips, refs, err := runBypassArm(o, i == 1)
			return arm{flips, refs}, err
		})
	if err != nil {
		return nil, err
	}
	s.ProtectedFlips, s.Refreshes = arms[0].flips, arms[0].refs
	s.BypassedFlips = arms[1].flips
	return s, nil
}

func runBypassArm(o TRRBypassOptions, decoy bool) (flips, refs int, err error) {
	d, err := hbm.New(o.Cfg)
	if err != nil {
		return 0, 0, err
	}
	if _, err := core.NewHarness(d); err != nil { // ECC off
		return 0, 0, err
	}
	tm := o.Cfg.Timing
	layout := o.Cfg.Layout()
	// Place the victim late in the bank (but not in the hardened last
	// subarray) so the refresh pointer does not sweep it mid-attack.
	sa := layout.Count() - 2
	physVictim := layout.Start(sa) + layout.Size(sa)/2
	m := d.Mapper()
	lv := m.ToLogical(physVictim)
	la := m.ToLogical(physVictim - 1)
	lb := m.ToLogical(physVictim + 1)
	decoyRow := m.ToLogical(physVictim + 16) // outside the blast radius

	g := d.Geometry()
	pattern := make([]byte, g.RowBytes())
	for i := range pattern {
		pattern[i] = 0xFF
	}
	for r, fill := range map[int]byte{lv: 0xFF, la: 0x00, lb: 0x00} {
		rowData := pattern
		if fill == 0x00 {
			rowData = make([]byte, g.RowBytes())
		}
		if err := hbm.WriteRow(d, o.Bank, r, rowData); err != nil {
			return 0, 0, err
		}
	}

	// Nominal refresh: one REF per tREFI, with the hammers that fit in
	// between (one double-sided hammer occupies 2*tRC).
	perREF := int(tm.TREFI / (2 * tm.TRC))
	remaining := o.Hammers
	for remaining > 0 {
		chunk := perREF
		if chunk > remaining {
			chunk = remaining
		}
		if err := d.HammerPair(o.Bank, la, lb, chunk); err != nil {
			return 0, 0, err
		}
		remaining -= chunk
		if err := d.AdvanceTime(tm.TRP); err != nil {
			return 0, 0, err
		}
		if decoy {
			// The bypass: one decoy activation right before the REF, so
			// the sampler forgets the real aggressors.
			if err := hbm.RefreshRow(d, o.Bank, decoyRow); err != nil {
				return 0, 0, err
			}
		}
		if err := d.Refresh(o.Bank.Channel, o.Bank.PseudoChannel); err != nil {
			return 0, 0, err
		}
		refs++
		if err := d.AdvanceTime(tm.TRFC); err != nil {
			return 0, 0, err
		}
	}
	got, err := hbm.ReadRow(d, o.Bank, lv)
	if err != nil {
		return 0, 0, err
	}
	return hbm.CountMismatches(got, pattern), refs, nil
}

// trrBypassExperiment lifts the sampler-blinding attack comparison onto
// the registry: two point jobs (naive, decoy), each a fresh device under
// nominal refresh.
func trrBypassExperiment() *Experiment {
	return &Experiment{
		Name:  "trrbypass",
		Title: "TRR bypass: naive vs decoy-assisted hammering under nominal refresh",
		Plan: func(o Options) (*Plan, error) {
			bo := TRRBypassOptions{Cfg: o.Cfg, Hammers: o.Hammers}
			if bo.Cfg == nil {
				bo.Cfg = config.PaperChip()
			}
			if err := bo.Cfg.Validate(); err != nil {
				return nil, err
			}
			if bo.Hammers <= 0 {
				bo.Hammers = core.DefaultHammers
			}
			arms := []string{"naive", "decoy"}
			jobs := make([]Job, len(arms))
			for i, name := range arms {
				decoy := i == 1
				jobs[i] = Job{
					Key: name,
					Run: func(_ context.Context, _ *core.Harness) (any, error) {
						flips, refs, err := runBypassArm(bo, decoy)
						if err != nil {
							return nil, err
						}
						return [2]int{flips, refs}, nil
					},
				}
			}
			rowBits := float64(bo.Cfg.Geometry.RowBytes() * 8)
			return &Plan{
				Axis:   "point",
				Cfg:    bo.Cfg,
				Jobs:   jobs,
				Params: map[string]string{"hammers": strconv.Itoa(bo.Hammers)},
				NewFold: func(lo, hi int) *Fold {
					a := &results.Artifact{Meta: results.Meta{GroupBy: results.ByPoint.String()}}
					for _, name := range arms {
						a.Groups = append(a.Groups, results.Group{
							Key: results.Key{Channel: results.NoChannel, Point: name},
							Metrics: []results.Metric{
								{Name: "victim_flips", Stream: stats.NewStream(0, rowBits)},
								{Name: "refreshes", Stream: stats.NewStream(0, float64(bo.Hammers+1))},
							},
						})
					}
					return &Fold{
						Add: func(i int, payload any) error {
							arm := payload.([2]int)
							ms := a.Groups[i].Metrics
							ms[0].Stream.Add(float64(arm[0]))
							ms[1].Stream.Add(float64(arm[1]))
							return nil
						},
						Finish: func() (*results.Artifact, error) { return a, nil },
					}
				},
			}, nil
		},
	}
}

// Render summarizes the two arms.
func (s *TRRBypassStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: defeating the uncovered TRR (Section 5 attack implication)\n")
	fmt.Fprintf(&sb, "%d double-sided hammers interleaved with %d periodic REFs at tREFI\n",
		s.Opts.Hammers, s.Refreshes)
	fmt.Fprintf(&sb, "naive hammering (TRR samples the aggressors): %4d victim bitflips\n", s.ProtectedFlips)
	fmt.Fprintf(&sb, "decoy activation before every REF:            %4d victim bitflips\n", s.BypassedFlips)
	if s.ProtectedFlips == 0 && s.BypassedFlips > 0 {
		sb.WriteString("=> the mitigation protects naive attacks but a sampler-aware attacker bypasses it\n")
	}
	return sb.String()
}
