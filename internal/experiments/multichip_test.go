package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// fleetStudy runs a small multi-chip scan with the given chip-level
// parallelism.
func fleetStudy(t testing.TB, chipWorkers int, seeds []uint64) *MultiChipStudy {
	t.Helper()
	s, err := RunMultiChip(MultiChipOptions{
		Base:          config.SmallChip(),
		Seeds:         seeds,
		RowsPerRegion: 3,
		ChipWorkers:   chipWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMultiChipStreamingMatchesBatch is the streaming-vs-batch
// equivalence check at the study level: the aggregates that RunMultiChip
// streams per region must equal batch summaries of the same rows
// recomputed from independent per-seed sweeps. The fleet is small enough
// that the streams stay in exact mode, so equality is bitwise.
func TestMultiChipStreamingMatchesBatch(t *testing.T) {
	seeds := []uint64{5, 6, 7}
	s := fleetStudy(t, 2, seeds)

	batchBER := map[string][]float64{}
	batchHC := map[string][]float64{}
	for _, seed := range seeds {
		cfg := *config.SmallChip()
		cfg.Seed = seed
		sweep, err := RunSweep(Options{Cfg: &cfg, RowsPerRegion: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sweep.Rows {
			batchBER[r.Region] = append(batchBER[r.Region], r.WCDPBER())
			if hc, found := r.WCDPHCFirst(); found {
				batchHC[r.Region] = append(batchHC[r.Region], float64(hc))
			}
		}
	}

	if len(s.Regions) != 3 {
		t.Fatalf("%d region aggregates, want 3", len(s.Regions))
	}
	for _, agg := range s.Regions {
		if agg.BER.Sketched() {
			t.Fatalf("region %s: stream sketched on a tiny fleet", agg.Region)
		}
		wantBER := stats.Summarize(batchBER[agg.Region])
		if got := agg.BER.Summary(); got != wantBER {
			t.Errorf("region %s: streamed BER %+v != batch %+v", agg.Region, got, wantBER)
		}
		if hc := batchHC[agg.Region]; len(hc) > 0 {
			wantHC := stats.Summarize(hc)
			if got := agg.HCFirst.Summary(); got != wantHC {
				t.Errorf("region %s: streamed HCfirst %+v != batch %+v", agg.Region, got, wantHC)
			}
		} else if agg.HCFirst.N() != 0 {
			t.Errorf("region %s: stream holds %d HCfirst samples, batch found none",
				agg.Region, agg.HCFirst.N())
		}
	}
}

// TestMultiChipDeterministicAcrossChipWorkers is the fleet determinism
// regression: chip-parallel scans must produce byte-identical aggregated
// output — render, CSV and JSON — for the same seed set at any worker
// count, because the streaming fold runs in seed-index order.
func TestMultiChipDeterministicAcrossChipWorkers(t *testing.T) {
	seeds := []uint64{40, 41, 42, 43, 44, 45}
	serial := fleetStudy(t, 1, seeds)
	parallel := fleetStudy(t, 8, seeds)

	if !reflect.DeepEqual(serial.Chips, parallel.Chips) {
		t.Fatalf("chip summaries differ across worker counts:\n%+v\nvs\n%+v",
			serial.Chips, parallel.Chips)
	}
	if a, b := serial.Render(), parallel.Render(); a != b {
		t.Fatalf("rendered output differs across worker counts:\n%s\nvs\n%s", a, b)
	}
	ha, ra := serial.AggregateCSV()
	hb, rb := parallel.AggregateCSV()
	if !reflect.DeepEqual(ha, hb) || !reflect.DeepEqual(ra, rb) {
		t.Fatalf("aggregate CSV differs across worker counts:\n%v\nvs\n%v", ra, rb)
	}
	ja, err := serial.AggregateJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := parallel.AggregateJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("aggregate JSON differs across worker counts:\n%s\nvs\n%s", ja, jb)
	}
}

func TestMultiChipRetainsNoSampleSlices(t *testing.T) {
	// The fleet contract: the study keeps fixed-size chip summaries and
	// O(regions) accumulators, never per-chip sample slices. ChipSummary
	// staying slice-free is what the reflection walk pins down.
	var c ChipSummary
	ty := reflect.TypeOf(c)
	for i := 0; i < ty.NumField(); i++ {
		if k := ty.Field(i).Type.Kind(); k == reflect.Slice || k == reflect.Map || k == reflect.Ptr {
			t.Errorf("ChipSummary.%s is a %s; per-chip summaries must stay fixed-size",
				ty.Field(i).Name, k)
		}
	}
	s := fleetStudy(t, 2, []uint64{9, 10})
	if len(s.Regions) != 3 {
		t.Fatalf("%d region aggregates, want 3", len(s.Regions))
	}
}

func TestMultiChipRenderIncludesFleetAggregates(t *testing.T) {
	s := fleetStudy(t, 1, []uint64{3, 4})
	out := s.Render()
	for _, want := range []string{"chip-to-chip", "fleet aggregate", "first", "middle", "last", "BER%", "HCfirst"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMultiChipAggregateExports(t *testing.T) {
	s := fleetStudy(t, 1, []uint64{3, 4})
	headers, rows := s.AggregateCSV()
	if len(headers) != 10 {
		t.Fatalf("%d CSV headers", len(headers))
	}
	if len(rows) == 0 || len(rows) > 6 {
		t.Fatalf("%d CSV rows for 3 regions x 2 metrics", len(rows))
	}
	for _, r := range rows {
		if len(r) != len(headers) {
			t.Fatalf("CSV row %v arity mismatch", r)
		}
	}
	js, err := s.AggregateJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"chips"`, `"regions"`, `"wcdp_ber"`, `"seed"`, `"median"`, `"stddev"`} {
		if !bytes.Contains(js, []byte(want)) {
			t.Errorf("aggregate JSON missing %s:\n%s", want, js)
		}
	}
	// The schema is snake_case throughout: no Go-cased Summary keys.
	if bytes.Contains(js, []byte(`"Median"`)) || bytes.Contains(js, []byte(`"StdDev"`)) {
		t.Errorf("aggregate JSON leaks Go-cased summary keys:\n%s", js)
	}
}
