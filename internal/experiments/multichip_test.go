package experiments

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// fleetStudy runs a small multi-chip scan with the given chip-level
// parallelism.
func fleetStudy(t testing.TB, chipWorkers int, seeds []uint64) *MultiChipStudy {
	t.Helper()
	s, err := RunMultiChip(MultiChipOptions{
		Base:          config.SmallChip(),
		Seeds:         seeds,
		RowsPerRegion: 3,
		ChipWorkers:   chipWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// regionView returns the study's aggregates at the region axis, keyed by
// region name and metric.
func regionView(t *testing.T, s *MultiChipStudy) map[string]map[string]*stats.Stream {
	t.Helper()
	groups, err := s.Artifact.View(results.ByRegion)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]map[string]*stats.Stream{}
	for _, g := range groups {
		ms := map[string]*stats.Stream{}
		for _, m := range g.Metrics {
			ms[m.Name] = m.Stream
		}
		out[g.Key.Region] = ms
	}
	return out
}

// TestMultiChipStreamingMatchesBatch is the streaming-vs-batch
// equivalence check at the study level: the aggregates that RunMultiChip
// streams per region and channel must equal batch summaries of the same
// rows recomputed from independent per-seed sweeps. The fleet is small
// enough that the streams stay in exact mode, so equality is bitwise.
func TestMultiChipStreamingMatchesBatch(t *testing.T) {
	seeds := []uint64{5, 6, 7}
	s := fleetStudy(t, 2, seeds)

	batchBER := map[results.Key][]float64{}
	batchHC := map[results.Key][]float64{}
	for _, seed := range seeds {
		cfg := *config.SmallChip()
		cfg.Seed = seed
		sweep, err := RunSweep(SweepOptions{Cfg: &cfg, RowsPerRegion: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sweep.Rows {
			k := results.Key{Region: r.Region, Channel: r.Channel}
			batchBER[k] = append(batchBER[k], r.WCDPBER())
			if hc, found := r.WCDPHCFirst(); found {
				batchHC[k] = append(batchHC[k], float64(hc))
			}
		}
	}

	channels := config.SmallChip().Geometry.Channels
	if want := 3 * channels; len(s.Artifact.Groups) != want {
		t.Fatalf("%d fine groups, want %d", len(s.Artifact.Groups), want)
	}
	for _, g := range s.Artifact.Groups {
		ber, hc := g.Metrics[0].Stream, g.Metrics[1].Stream
		if ber.Sketched() {
			t.Fatalf("group %v: stream sketched on a tiny fleet", g.Key)
		}
		wantBER := stats.Summarize(batchBER[g.Key])
		if got := ber.Summary(); got != wantBER {
			t.Errorf("group %v: streamed BER %+v != batch %+v", g.Key, got, wantBER)
		}
		if vals := batchHC[g.Key]; len(vals) > 0 {
			wantHC := stats.Summarize(vals)
			if got := hc.Summary(); got != wantHC {
				t.Errorf("group %v: streamed HCfirst %+v != batch %+v", g.Key, got, wantHC)
			}
		} else if hc.N() != 0 {
			t.Errorf("group %v: stream holds %d HCfirst samples, batch found none", g.Key, hc.N())
		}
	}

	// The derived region view must aggregate exactly the union of its
	// channels' samples.
	regions := regionView(t, s)
	if len(regions) != 3 {
		t.Fatalf("%d region groups, want 3", len(regions))
	}
	for region, ms := range regions {
		var all []float64
		for ch := 0; ch < channels; ch++ {
			all = append(all, batchBER[results.Key{Region: region, Channel: ch}]...)
		}
		if got, want := ms[metricBER].Summary(), stats.Summarize(all); got != want {
			t.Errorf("region %s: derived view %+v != batch %+v", region, got, want)
		}
	}
}

// TestMultiChipDeterministicAcrossChipWorkers is the fleet determinism
// regression: chip-parallel scans must produce byte-identical aggregated
// output — render, CSV and JSON on every axis — for the same seed set at
// any worker count, because the streaming fold runs in seed-index order.
func TestMultiChipDeterministicAcrossChipWorkers(t *testing.T) {
	seeds := []uint64{40, 41, 42, 43, 44, 45}
	serial := fleetStudy(t, 1, seeds)
	parallel := fleetStudy(t, 8, seeds)

	if !reflect.DeepEqual(serial.Chips, parallel.Chips) {
		t.Fatalf("chip summaries differ across worker counts:\n%+v\nvs\n%+v",
			serial.Chips, parallel.Chips)
	}
	if a, b := serial.Render(), parallel.Render(); a != b {
		t.Fatalf("rendered output differs across worker counts:\n%s\nvs\n%s", a, b)
	}
	for _, gb := range []results.GroupBy{results.ByRegion, results.ByChannel, results.ByRegionChannel} {
		serial.Opts.GroupBy, parallel.Opts.GroupBy = gb, gb
		ha, ra := serial.AggregateCSV()
		hb, rb := parallel.AggregateCSV()
		if !reflect.DeepEqual(ha, hb) || !reflect.DeepEqual(ra, rb) {
			t.Fatalf("%v: aggregate CSV differs across worker counts:\n%v\nvs\n%v", gb, ra, rb)
		}
		ja, err := serial.AggregateJSON()
		if err != nil {
			t.Fatal(err)
		}
		jb, err := parallel.AggregateJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%v: aggregate JSON differs across worker counts:\n%s\nvs\n%s", gb, ja, jb)
		}
	}
}

// TestMultiChipShardMergeMatchesSingleProcess pins the fleet-sharding
// contract end to end: 32 seeds measured in one process versus four
// contiguous seed-range shards — each serialized to an artifact file, as
// on four machines — loaded back and merged must render byte-identical
// CSV and JSON on every axis.
func TestMultiChipShardMergeMatchesSingleProcess(t *testing.T) {
	base := config.SmallChip()
	const chips, shards = 32, 4
	seeds := make([]uint64, chips)
	for i := range seeds {
		seeds[i] = base.Seed + uint64(i)
	}
	run := func(seedSlice []uint64, shard, shardCount int) *MultiChipStudy {
		s, err := RunMultiChip(MultiChipOptions{
			Base:          base,
			Seeds:         seedSlice,
			RowsPerRegion: 2,
			ChipWorkers:   2,
			Shard:         shard,
			ShardCount:    shardCount,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	single := run(seeds, 0, 0)

	dir := t.TempDir()
	paths := make([]string, shards)
	for i := 0; i < shards; i++ {
		lo, hi := results.ShardRange(chips, i, shards)
		shardStudy := run(seeds[lo:hi], i, shards)
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if err := shardStudy.Artifact.WriteFile(paths[i]); err != nil {
			t.Fatal(err)
		}
	}

	merged, err := results.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths[1:] {
		next, err := results.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := results.Merge(merged, next); err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(single.Artifact.Meta, merged.Meta) {
		t.Fatalf("merged meta differs from single-process run:\n%+v\nvs\n%+v",
			single.Artifact.Meta, merged.Meta)
	}
	if !reflect.DeepEqual(single.Chips, merged.Chips) {
		t.Fatal("merged chip records differ from single-process run")
	}
	for _, gb := range []results.GroupBy{results.ByRegion, results.ByChannel, results.ByRegionChannel} {
		hs, rs, err := single.Artifact.SummaryCSV(gb)
		if err != nil {
			t.Fatal(err)
		}
		hm, rm, err := merged.SummaryCSV(gb)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hs, hm) || !reflect.DeepEqual(rs, rm) {
			t.Fatalf("%v: sharded CSV differs from single-process run:\n%v\nvs\n%v", gb, rs, rm)
		}
		js, err := single.Artifact.SummaryJSON(gb)
		if err != nil {
			t.Fatal(err)
		}
		jm, err := merged.SummaryJSON(gb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js, jm) {
			t.Fatalf("%v: sharded JSON differs from single-process run:\n%s\nvs\n%s", gb, js, jm)
		}
	}
	// The reconstructed study renders like the original.
	if a, b := single.Render(), StudyFromArtifact(merged, results.ByRegion).Render(); a != b {
		t.Fatalf("merged render differs:\n%s\nvs\n%s", a, b)
	}
}

func TestMultiChipRetainsNoSampleSlices(t *testing.T) {
	// The fleet contract: the study keeps fixed-size chip summaries and
	// O(regions x channels) accumulators, never per-chip sample slices.
	// ChipSummary staying slice-free is what the reflection walk pins
	// down.
	var c ChipSummary
	ty := reflect.TypeOf(c)
	for i := 0; i < ty.NumField(); i++ {
		if k := ty.Field(i).Type.Kind(); k == reflect.Slice || k == reflect.Map || k == reflect.Ptr {
			t.Errorf("ChipSummary.%s is a %s; per-chip summaries must stay fixed-size",
				ty.Field(i).Name, k)
		}
	}
	s := fleetStudy(t, 2, []uint64{9, 10})
	channels := config.SmallChip().Geometry.Channels
	if want := 3 * channels; len(s.Artifact.Groups) != want {
		t.Fatalf("%d fine groups, want %d", len(s.Artifact.Groups), want)
	}
}

func TestMultiChipRenderIncludesFleetAggregates(t *testing.T) {
	s := fleetStudy(t, 1, []uint64{3, 4})
	out := s.Render()
	for _, want := range []string{"chip-to-chip", "fleet aggregate", "first", "middle", "last", "BER%", "HCfirst"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	s.Opts.GroupBy = results.ByChannel
	out = s.Render()
	if !strings.Contains(out, "by channel") || !strings.Contains(out, "channel 0") {
		t.Errorf("channel-axis render missing channel groups:\n%s", out)
	}
}

func TestMultiChipAggregateExports(t *testing.T) {
	s := fleetStudy(t, 1, []uint64{3, 4})
	headers, rows := s.AggregateCSV()
	if len(headers) != 10 {
		t.Fatalf("%d CSV headers", len(headers))
	}
	if len(rows) == 0 || len(rows) > 6 {
		t.Fatalf("%d CSV rows for 3 regions x 2 metrics", len(rows))
	}
	for _, r := range rows {
		if len(r) != len(headers) {
			t.Fatalf("CSV row %v arity mismatch", r)
		}
	}
	// The channel axis widens the export to one row per channel/metric.
	s.Opts.GroupBy = results.ByRegionChannel
	chHeaders, chRows := s.AggregateCSV()
	if len(chHeaders) != 11 {
		t.Fatalf("%d CSV headers on the region-channel axis", len(chHeaders))
	}
	if len(chRows) <= len(rows) {
		t.Fatalf("region-channel export has %d rows, region export %d", len(chRows), len(rows))
	}
	s.Opts.GroupBy = results.ByRegion

	js, err := s.AggregateJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"meta"`, `"config_hash"`, `"chips"`, `"groups"`, `"wcdp_ber"`, `"seed"`, `"median"`, `"stddev"`} {
		if !bytes.Contains(js, []byte(want)) {
			t.Errorf("aggregate JSON missing %s:\n%s", want, js)
		}
	}
	// The schema is snake_case throughout: no Go-cased Summary keys.
	if bytes.Contains(js, []byte(`"Median"`)) || bytes.Contains(js, []byte(`"StdDev"`)) {
		t.Errorf("aggregate JSON leaks Go-cased summary keys:\n%s", js)
	}
}

// TestSweepAndFig6ArtifactsShareTheSchema pins the unified results layer:
// the figure drivers that produce distributions emit the same artifact
// shape the fleet study does, renderable by the same exporters.
func TestSweepAndFig6ArtifactsShareTheSchema(t *testing.T) {
	sweep, err := RunSweep(SweepOptions{Cfg: config.SmallChip(), RowsPerRegion: 2})
	if err != nil {
		t.Fatal(err)
	}
	sa := sweep.Artifact()
	channels := config.SmallChip().Geometry.Channels
	if len(sa.Groups) != 3*channels {
		t.Fatalf("sweep artifact has %d groups", len(sa.Groups))
	}
	total := 0
	for _, g := range sa.Groups {
		total += g.Metrics[0].Stream.N()
	}
	if total != len(sweep.Rows) {
		t.Fatalf("sweep artifact folded %d BER samples for %d rows", total, len(sweep.Rows))
	}
	if _, _, err := sa.SummaryCSV(results.ByChannel); err != nil {
		t.Fatalf("sweep artifact channel view: %v", err)
	}
	if _, err := sa.MarshalIndented(); err != nil {
		t.Fatalf("sweep artifact serialize: %v", err)
	}

	f6, err := RunFig6(Fig6Options{Cfg: config.SmallChip(), RowsPerBankRegion: 2})
	if err != nil {
		t.Fatal(err)
	}
	fa := f6.Artifact()
	if len(fa.Groups) != channels {
		t.Fatalf("fig6 artifact has %d groups", len(fa.Groups))
	}
	banksPerChannel := len(f6.Points) / channels
	for _, g := range fa.Groups {
		if n := g.Metrics[0].Stream.N(); n != banksPerChannel {
			t.Fatalf("fig6 channel %d folded %d banks, want %d", g.Key.Channel, n, banksPerChannel)
		}
	}
	js, err := fa.SummaryJSON(results.ByChannel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte(`"bank_mean_ber_pct"`)) {
		t.Fatalf("fig6 summary JSON missing metrics:\n%s", js)
	}
}
