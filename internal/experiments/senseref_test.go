package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

// TestMultiChipFastVsReferenceSenseByteIdentical is the end-to-end golden
// test of the sense fast path: a full fleet study — sweeps, WCDP, HCfirst
// searches, the TRR discovery, streaming aggregation, and the rendered
// CSV/JSON artifacts — must be byte-identical whether devices sense via
// the fast path or the straightforward reference implementation.
func TestMultiChipFastVsReferenceSenseByteIdentical(t *testing.T) {
	opts := MultiChipOptions{
		Base:          config.SmallChip(),
		Seeds:         []uint64{41, 42},
		RowsPerRegion: 1,
		ChipWorkers:   2,
	}
	run := func(ref bool) (render, csv string, jsonOut []byte) {
		t.Helper()
		hbm.ForceReferenceSense(ref)
		defer hbm.ForceReferenceSense(false)
		// Pooled devices keep the sense path they were built with; start
		// from an empty pool on both sides.
		engine.SharedPool.Drain()
		defer engine.SharedPool.Drain()
		s, err := RunMultiChip(opts)
		if err != nil {
			t.Fatal(err)
		}
		headers, rows := s.AggregateCSV()
		var sb strings.Builder
		sb.WriteString(strings.Join(headers, ","))
		for _, r := range rows {
			sb.WriteString("\n" + strings.Join(r, ","))
		}
		j, err := s.AggregateJSON()
		if err != nil {
			t.Fatal(err)
		}
		return s.Render(), sb.String(), j
	}
	fastRender, fastCSV, fastJSON := run(false)
	refRender, refCSV, refJSON := run(true)
	if fastRender != refRender {
		t.Error("rendered study diverges between fast and reference sense paths")
	}
	if fastCSV != refCSV {
		t.Errorf("aggregate CSV diverges:\nfast:\n%s\nref:\n%s", fastCSV, refCSV)
	}
	if !bytes.Equal(fastJSON, refJSON) {
		t.Error("aggregate JSON diverges between fast and reference sense paths")
	}
}
