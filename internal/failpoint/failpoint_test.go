package failpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// site registers a uniquely named site for one test and cleans its
// arming up afterwards.
func site(t *testing.T, name string) *Site {
	t.Helper()
	s := Register(name)
	t.Cleanup(func() {
		Disarm(name)
		regMu.Lock()
		delete(sites, name)
		regMu.Unlock()
	})
	return s
}

func TestDisarmedSiteIsTransparent(t *testing.T) {
	s := site(t, "test/transparent")
	for i := 0; i < 3; i++ {
		if err := s.Inject(); err != nil {
			t.Fatalf("disarmed Inject: %v", err)
		}
	}
	var buf bytes.Buffer
	if n, err := s.Write(&buf, []byte("payload")); err != nil || n != 7 {
		t.Fatalf("disarmed Write: n=%d err=%v", n, err)
	}
	if buf.String() != "payload" {
		t.Fatalf("disarmed Write wrote %q", buf.String())
	}
}

func TestErrorFiresOnScheduledHitOnly(t *testing.T) {
	s := site(t, "test/error-hit")
	if err := Arm("test/error-hit=error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := s.Inject()
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
			}
			if !strings.Contains(err.Error(), "test/error-hit") {
				t.Fatalf("injected error does not name its site: %v", err)
			}
		} else if err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", i, err)
		}
	}
}

func TestArmResetsHitCounter(t *testing.T) {
	s := site(t, "test/rearm")
	if err := Arm("test/rearm=error@1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first arming never fired: %v", err)
	}
	if err := Arm("test/rearm=error@2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(); err != nil {
		t.Fatalf("hit 1 after re-arm fired: %v", err)
	}
	if err := s.Inject(); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 2 after re-arm never fired: %v", err)
	}
}

func TestTearWritesPrefixThenFails(t *testing.T) {
	s := site(t, "test/tear")
	if err := Arm("test/tear=tear:4"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := s.Write(&buf, []byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: got %v, want ErrInjected", err)
	}
	if n != 4 || buf.String() != "abcd" {
		t.Fatalf("torn write left %q (n=%d), want the 4-byte prefix", buf.String(), n)
	}
	// Off-schedule hits write normally again.
	buf.Reset()
	if n, err := s.Write(&buf, []byte("abcdefgh")); err != nil || n != 8 {
		t.Fatalf("post-fire Write: n=%d err=%v", n, err)
	}
}

func TestTearOffsetClampsToPayload(t *testing.T) {
	s := site(t, "test/tear-clamp")
	if err := Arm("test/tear-clamp=tear:999"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := s.Write(&buf, []byte("xy"))
	if !errors.Is(err, ErrInjected) || n != 2 || buf.String() != "xy" {
		t.Fatalf("clamped tear: n=%d err=%v buf=%q", n, err, buf.String())
	}
}

func TestKillCallsExit(t *testing.T) {
	s := site(t, "test/kill")
	var code = -1
	restore := setExitForTest(func(c int) { code = c })
	defer restore()
	if err := Arm("test/kill=kill"); err != nil {
		t.Fatal(err)
	}
	s.Inject()
	if code != ExitCode {
		t.Fatalf("kill exited with %d, want %d", code, ExitCode)
	}
}

func TestTearKillSyncsPrefixThenExits(t *testing.T) {
	s := site(t, "test/tearkill")
	var code = -1
	restore := setExitForTest(func(c int) { code = c })
	defer restore()
	if err := Arm("test/tearkill=tearkill:3"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "torn")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s.Write(f, []byte("abcdef"))
	if code != ExitCode {
		t.Fatalf("tearkill exited with %d, want %d", code, ExitCode)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("torn file holds %q, want the 3-byte prefix", got)
	}
}

func TestStallSleepsThenProceeds(t *testing.T) {
	s := site(t, "test/stall")
	if err := Arm("test/stall=stall:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Inject(); err != nil {
		t.Fatalf("stall returned %v, want nil", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stall slept only %s", d)
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	site(t, "test/parse")
	for _, spec := range []string{
		"nosuchsite=error",
		"test/parse",
		"test/parse=explode",
		"test/parse=error@0",
		"test/parse=error@x",
		"test/parse=stall",
		"test/parse=stall:xyz",
		"test/parse=tear:-1",
		"test/parse=tear:abc",
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted a bad spec", spec)
		}
	}
	// A bad clause must not have armed the site along the way.
	if err := sites["test/parse"].Inject(); err != nil {
		t.Fatalf("bad specs left the site armed: %v", err)
	}
}

func TestArmMultipleClauses(t *testing.T) {
	a := site(t, "test/multi-a")
	b := site(t, "test/multi-b")
	if err := Arm("test/multi-a=error; test/multi-b=error@2;"); err != nil {
		t.Fatal(err)
	}
	if err := a.Inject(); !errors.Is(err, ErrInjected) {
		t.Fatalf("site a never fired: %v", err)
	}
	if err := b.Inject(); err != nil {
		t.Fatalf("site b fired early: %v", err)
	}
	if err := b.Inject(); !errors.Is(err, ErrInjected) {
		t.Fatalf("site b never fired: %v", err)
	}
}

func TestArmFromEnv(t *testing.T) {
	s := site(t, "test/env")
	t.Setenv(EnvVar, "test/env=error")
	if err := ArmFromEnv(); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(); !errors.Is(err, ErrInjected) {
		t.Fatalf("env arming never fired: %v", err)
	}
	t.Setenv(EnvVar, "")
	Disarm("test/env")
	if err := ArmFromEnv(); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(); err != nil {
		t.Fatalf("empty env armed something: %v", err)
	}
}

func TestNamesSortedAndScheduleHitDeterministic(t *testing.T) {
	site(t, "test/zzz")
	site(t, "test/aaa")
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not strictly sorted: %q >= %q", names[i-1], names[i])
		}
	}
	for _, name := range names {
		h := ScheduleHit(42, name, 3)
		if h < 1 || h > 3 {
			t.Fatalf("ScheduleHit(42, %q, 3) = %d out of range", name, h)
		}
		if h != ScheduleHit(42, name, 3) {
			t.Fatalf("ScheduleHit not deterministic for %q", name)
		}
	}
	if ScheduleHit(7, "x", 0) != 1 || ScheduleHit(7, "x", 1) != 1 {
		t.Fatal("ScheduleHit must clamp max <= 1 to hit 1")
	}
}
