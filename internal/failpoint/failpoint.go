// Package failpoint is a deterministic fault-injection registry for
// crash-consistency testing: durability-critical code declares named
// injection sites (Register), and a test or operator arms a subset of
// them with a reproducible schedule — "on the Nth time execution reaches
// site S, fail like THIS". Armed sites can return an injected error,
// stall, kill the process outright, or tear a write at a byte offset
// (write a prefix, then fail or die) — the four shapes a real crash,
// torn page or wedged worker takes.
//
// Sites are package-level handles:
//
//	var fpRename = failpoint.Register("fleet/write/rename")
//	...
//	if err := fpRename.Inject(); err != nil { return err }
//	if err := os.Rename(tmp, path); err != nil { ... }
//
// Disarmed sites cost one atomic load — they stay compiled into
// production binaries, which is the point: the torture harness
// (internal/torture, `make torture`) exercises the exact code that
// ships, not a test build.
//
// Arming is explicit and process-local. Tests call Arm/Reset; worker
// subprocesses receive a spec via the fleet's -failpoints flag (first
// launch only, so relaunched workers come back clean, mirroring
// -kill-after); standalone binaries may opt in to the HBMRH_FAILPOINTS
// environment variable via ArmFromEnv. Nothing arms implicitly.
//
// Spec grammar (semicolon-separated clauses):
//
//	site=action[:arg][@hit]
//
//	error            return ErrInjected from Inject/Write
//	stall:DUR        sleep DUR (time.ParseDuration), then proceed
//	kill             exit the process with ExitCode
//	tear:N           write sites only: write the first N payload bytes,
//	                 then return ErrInjected
//	tearkill:N       write the first N payload bytes, sync, then exit
//	@hit             fire on the hit-th time the site is reached
//	                 (1-based, per process; default 1)
//
// Hit counting is per-site and per-process, so a schedule is fully
// determined by the spec string — no clocks, no randomness. ScheduleHit
// derives per-site hit indices from a single seed when a caller wants a
// varied but reproducible schedule across many sites.
package failpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected tags every failure this package fabricates; callers that
// need to distinguish injected faults from real ones (the torture
// harness, retry loops in tests) match it with errors.Is.
var ErrInjected = errors.New("failpoint: injected fault")

// ExitCode is the process exit status of kill and tearkill actions —
// distinct from the fleet's ExitInjected/ExitJournal so coordinator logs
// name the cause.
const ExitCode = 5

// EnvVar is the spec variable ArmFromEnv reads.
const EnvVar = "HBMRH_FAILPOINTS"

// Action is what an armed site does when its scheduled hit arrives.
type Action uint8

const (
	// ActError returns ErrInjected.
	ActError Action = iota + 1
	// ActStall sleeps the armed duration, then proceeds normally.
	ActStall
	// ActKill exits the process with ExitCode.
	ActKill
	// ActTear (write sites) writes a prefix of the payload, then
	// returns ErrInjected.
	ActTear
	// ActTearKill (write sites) writes a prefix of the payload, syncs
	// it if the destination is a file, then exits with ExitCode.
	ActTearKill
)

// arming is one site's immutable armed state; swapping the pointer
// atomically arms/disarms without locking the hot path.
type arming struct {
	act   Action
	hit   uint64        // fire on this 1-based hit
	tear  int           // tear offset in bytes
	stall time.Duration // stall duration
}

// Site is one named injection point. Obtain with Register at package
// init; all methods are safe for concurrent use and nearly free while
// the site is disarmed.
type Site struct {
	name string
	arm  atomic.Pointer[arming]
	hits atomic.Uint64
}

var (
	regMu sync.Mutex
	sites = map[string]*Site{}

	// exit is swappable so kill actions are unit-testable.
	exit = os.Exit
)

// Register declares a site. Call once per name, from a package-level
// var; duplicate names panic (two call sites sharing a name would make
// hit schedules ambiguous).
func Register(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if sites[name] != nil {
		panic(fmt.Sprintf("failpoint: site %q registered twice", name))
	}
	s := &Site{name: name}
	sites[name] = s
	return s
}

// Names returns the sorted catalog of every registered site — the
// torture harness's worklist.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(sites))
	for n := range sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Arm parses a spec string and arms each named site, resetting its hit
// counter so the schedule starts from the arming point. Unknown sites,
// unknown actions and malformed clauses are errors (a typo must never
// silently arm nothing).
func Arm(spec string) error {
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("failpoint: bad clause %q: want site=action[:arg][@hit]", clause)
		}
		a := &arming{hit: 1}
		if at := strings.LastIndex(rest, "@"); at >= 0 {
			n, err := strconv.ParseUint(rest[at+1:], 10, 64)
			if err != nil || n == 0 {
				return fmt.Errorf("failpoint: bad hit index in %q (want @N, N >= 1)", clause)
			}
			a.hit = n
			rest = rest[:at]
		}
		act, arg, _ := strings.Cut(rest, ":")
		var err error
		switch act {
		case "error":
			a.act = ActError
		case "kill":
			a.act = ActKill
		case "stall":
			a.act = ActStall
			if a.stall, err = time.ParseDuration(arg); err != nil || a.stall <= 0 {
				return fmt.Errorf("failpoint: bad stall duration in %q", clause)
			}
		case "tear", "tearkill":
			a.act = ActTear
			if act == "tearkill" {
				a.act = ActTearKill
			}
			if a.tear, err = strconv.Atoi(arg); err != nil || a.tear < 0 {
				return fmt.Errorf("failpoint: bad tear offset in %q (want a byte count)", clause)
			}
		default:
			return fmt.Errorf("failpoint: unknown action %q in %q", act, clause)
		}
		regMu.Lock()
		s := sites[name]
		regMu.Unlock()
		if s == nil {
			return fmt.Errorf("failpoint: unknown site %q (catalog: %s)", name, strings.Join(Names(), ", "))
		}
		s.hits.Store(0)
		s.arm.Store(a)
	}
	return nil
}

// ArmFromEnv arms from the HBMRH_FAILPOINTS environment variable, a
// no-op when unset. Binaries opt in from main; library code never calls
// it, so tests and fleet workers are immune to inherited environments.
func ArmFromEnv() error {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil
	}
	return Arm(spec)
}

// Disarm clears one site; unknown names are a no-op.
func Disarm(name string) {
	regMu.Lock()
	s := sites[name]
	regMu.Unlock()
	if s != nil {
		s.arm.Store(nil)
		s.hits.Store(0)
	}
}

// Reset disarms every site and zeroes every hit counter.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range sites {
		s.arm.Store(nil)
		s.hits.Store(0)
	}
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// fire reports whether this call is the scheduled hit and returns the
// armed state when it is.
func (s *Site) fire() *arming {
	a := s.arm.Load()
	if a == nil {
		return nil
	}
	if s.hits.Add(1) != a.hit {
		return nil
	}
	return a
}

// Inject evaluates the site for non-write operations (a sync, a rename,
// a spawn, a render): it returns ErrInjected, stalls, kills, or — the
// overwhelmingly common case — does nothing. Tear actions on a non-write
// site degrade to ActError (there is no payload to tear).
func (s *Site) Inject() error {
	a := s.fire()
	if a == nil {
		return nil
	}
	switch a.act {
	case ActStall:
		time.Sleep(a.stall)
		return nil
	case ActKill, ActTearKill:
		exit(ExitCode)
		return nil // unreachable except under the test exit hook
	default:
		return fmt.Errorf("%w at %s", ErrInjected, s.name)
	}
}

// Write performs w.Write(data) through the site. Disarmed (or
// off-schedule) it is a plain write. Error/stall/kill actions apply
// before any byte is written; tear actions write data[:offset] (clamped),
// sync it when w is an *os.File so the torn prefix really is on disk,
// and then fail (tear) or die (tearkill) — the torn-write crash a
// journaled format must survive.
func (s *Site) Write(w io.Writer, data []byte) (int, error) {
	a := s.fire()
	if a == nil {
		return w.Write(data)
	}
	switch a.act {
	case ActStall:
		time.Sleep(a.stall)
		return w.Write(data)
	case ActKill:
		exit(ExitCode)
		return 0, nil
	case ActTear, ActTearKill:
		n := min(a.tear, len(data))
		wrote, err := w.Write(data[:n])
		if f, ok := w.(*os.File); ok {
			f.Sync()
		}
		if a.act == ActTearKill {
			exit(ExitCode)
		}
		if err != nil {
			return wrote, err
		}
		return wrote, fmt.Errorf("%w: torn write at %s after %d/%d bytes", ErrInjected, s.name, wrote, len(data))
	default:
		return 0, fmt.Errorf("%w at %s", ErrInjected, s.name)
	}
}

// ScheduleHit derives a deterministic 1-based hit index in [1, max] for
// a site from a seed: the reproducible "which occurrence fails" half of
// a torture schedule, with no global randomness.
func ScheduleHit(seed uint64, site string, max uint64) uint64 {
	if max <= 1 {
		return 1
	}
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	io.WriteString(h, site)
	return 1 + h.Sum64()%max
}

// setExitForTest swaps the process-exit hook, returning a restore
// function; tests in this package use it to observe kill actions.
func setExitForTest(f func(int)) (restore func()) {
	old := exit
	exit = f
	return func() { exit = old }
}
