package utrr

import (
	"testing"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

func newExperiment(t testing.TB, cfg *config.Config) *Experiment {
	t.Helper()
	d, err := hbm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The methodology needs raw retention errors: ECC off, as in §3.1.
	for ch := 0; ch < cfg.Geometry.Channels; ch++ {
		if err := d.WriteModeRegister(ch, hbm.MRECC, 0); err != nil {
			t.Fatal(err)
		}
	}
	return New(d)
}

func bankAddr() addr.BankAddr {
	return addr.BankAddr{Channel: 1, PseudoChannel: 0, Bank: 0}
}

// startRow keeps the profiled row clear of the region the periodic
// refresh pointer sweeps during the experiment's REF commands.
const startRow = 300

func TestUncoverProprietaryTRRPeriod17(t *testing.T) {
	e := newExperiment(t, config.SmallChip())
	res, err := e.Run(bankAddr(), startRow)
	if err != nil {
		t.Fatal(err)
	}
	period, ok := res.InferPeriod()
	if !ok {
		t.Fatalf("no periodic TRR inferred; fires at %v", res.Fires())
	}
	if period != 17 {
		t.Fatalf("inferred period %d, paper uncovers 17", period)
	}
	// 100 iterations -> fires at 17, 34, 51, 68, 85.
	want := []int{17, 34, 51, 68, 85}
	fires := res.Fires()
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestNoTRRMeansNoRefreshes(t *testing.T) {
	cfg := config.SmallChip()
	cfg.TRR.Enabled = false
	e := newExperiment(t, cfg)
	res, err := e.Run(bankAddr(), startRow)
	if err != nil {
		t.Fatal(err)
	}
	if fires := res.Fires(); len(fires) != 0 {
		t.Fatalf("TRR disabled but refreshes observed at %v", fires)
	}
	if _, ok := res.InferPeriod(); ok {
		t.Fatal("period inferred without any fires")
	}
}

func TestUncoversNonDefaultPeriod(t *testing.T) {
	cfg := config.SmallChip()
	cfg.TRR.RefPeriod = 9
	e := newExperiment(t, cfg)
	e.Iterations = 40
	res, err := e.Run(bankAddr(), startRow)
	if err != nil {
		t.Fatal(err)
	}
	period, ok := res.InferPeriod()
	if !ok || period != 9 {
		t.Fatalf("inferred (%d, %v), want (9, true); fires %v", period, ok, res.Fires())
	}
}

func TestResultProfiledRetentionIsPlausible(t *testing.T) {
	e := newExperiment(t, config.SmallChip())
	res, err := e.Run(bankAddr(), startRow)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetentionSec < e.BandLo || res.RetentionSec > e.BandHi {
		t.Fatalf("profiled retention %v outside requested band [%v, %v]",
			res.RetentionSec, e.BandLo, e.BandHi)
	}
	if res.Row == res.Aggressor {
		t.Fatal("aggressor must differ from the profiled row")
	}
}

func TestInferPeriodSynthetic(t *testing.T) {
	mk := func(fires ...int) *Result {
		r := &Result{Refreshed: make([]bool, 100)}
		for _, f := range fires {
			r.Refreshed[f-1] = true
		}
		return r
	}
	if p, ok := mk(17, 34, 51).InferPeriod(); !ok || p != 17 {
		t.Fatalf("periodic case: (%d, %v)", p, ok)
	}
	if _, ok := mk(17).InferPeriod(); ok {
		t.Fatal("single fire must not infer a period")
	}
	if _, ok := mk(10, 20, 35).InferPeriod(); ok {
		t.Fatal("aperiodic fires must not infer a period")
	}
	if _, ok := mk(5, 22, 39).InferPeriod(); ok {
		t.Fatal("offset disagreeing with gap must not infer a period")
	}
	if got := mk(3, 6).Fires(); len(got) != 2 || got[0] != 3 || got[1] != 6 {
		t.Fatalf("Fires() = %v", got)
	}
}

func TestInferNeighborRadiusDefault(t *testing.T) {
	e := newExperiment(t, config.SmallChip())
	radius, err := e.InferNeighborRadius(bankAddr(), startRow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if radius != 1 {
		t.Fatalf("inferred radius %d, the mechanism refreshes +/-1", radius)
	}
}

func TestInferNeighborRadiusWide(t *testing.T) {
	cfg := config.SmallChip()
	cfg.TRR.NeighborRadius = 2
	e := newExperiment(t, cfg)
	radius, err := e.InferNeighborRadius(bankAddr(), startRow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if radius != 2 {
		t.Fatalf("inferred radius %d, configured 2", radius)
	}
}

func TestInferSamplerSlotsSingle(t *testing.T) {
	e := newExperiment(t, config.SmallChip())
	slots, err := e.InferSamplerSlots(bankAddr(), startRow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 1 {
		t.Fatalf("inferred %d sampler slots, the Vendor-C-style mechanism holds 1", slots)
	}
}

func TestInferSamplerSlotsDeep(t *testing.T) {
	cfg := config.SmallChip()
	cfg.TRR.SamplerSlots = 2
	e := newExperiment(t, cfg)
	slots, err := e.InferSamplerSlots(bankAddr(), startRow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 2 {
		t.Fatalf("inferred %d sampler slots, configured 2", slots)
	}
}

func TestInferNoTRRFindsNothing(t *testing.T) {
	cfg := config.SmallChip()
	cfg.TRR.Enabled = false
	e := newExperiment(t, cfg)
	radius, err := e.InferNeighborRadius(bankAddr(), startRow, 2)
	if err != nil {
		t.Fatal(err)
	}
	if radius != 0 {
		t.Fatalf("radius %d inferred on a chip without TRR", radius)
	}
}

func TestProbeArgumentValidation(t *testing.T) {
	e := newExperiment(t, config.SmallChip())
	if _, err := e.InferNeighborRadius(bankAddr(), startRow, 0); err == nil {
		t.Error("maxDistance 0 accepted")
	}
	if _, err := e.InferSamplerSlots(bankAddr(), startRow, 0); err == nil {
		t.Error("maxSlots 0 accepted")
	}
}
