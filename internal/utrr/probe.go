package utrr

import (
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

// Deeper probing of the proprietary mechanism, the follow-up the paper
// announces ("we intend to uncover more details of the proprietary TRR
// mechanism as part of future work"): how far around a sampled aggressor
// the victim refresh reaches, and how many distinct aggressors the
// sampler can track between REFs.

// InferNeighborRadius determines how many rows on each side of a sampled
// aggressor the mitigation refreshes. It profiles a retention-weak row R
// and repeats the U-TRR loop with the would-be aggressor placed at
// physical distance d = 1, 2, ... maxDistance from R: R is refreshed on
// TRR fires only while d is within the mechanism's radius. It returns
// the largest distance at which refreshes were observed, or 0 if none.
func (e *Experiment) InferNeighborRadius(b addr.BankAddr, startRow, maxDistance int) (int, error) {
	if maxDistance < 1 {
		return 0, fmt.Errorf("utrr: maxDistance %d must be at least 1", maxDistance)
	}
	row, T, err := e.prof.FindRow(b, startRow, e.ScanRows, e.BandLo, e.BandHi)
	if err != nil {
		return 0, fmt.Errorf("utrr: %w", err)
	}
	m := e.dev.Mapper()
	pR := m.ToPhysical(row)
	radius := 0
	for d := 1; d <= maxDistance; d++ {
		pAggr := pR + d
		if pAggr >= e.dev.Geometry().Rows {
			pAggr = pR - d
			if pAggr < 0 {
				break
			}
		}
		refreshed, err := e.observeFire(b, row, T, m.ToLogical(pAggr))
		if err != nil {
			return 0, err
		}
		if refreshed {
			radius = d
		}
	}
	return radius, nil
}

// observeFire runs enough iterations of the six-step loop to cover one
// full TRR period (estimated pessimistically) and reports whether the
// profiled row was ever refreshed by the mitigation.
func (e *Experiment) observeFire(b addr.BankAddr, row int, T float64, logicalAggr int) (bool, error) {
	// Two generous periods: works for any period up to 32.
	const iterations = 64
	g := e.dev.Geometry()
	pattern := make([]byte, g.RowBytes())
	for i := range pattern {
		pattern[i] = e.prof.Pattern
	}
	half := int64(T / 2 * 1e12)
	for it := 0; it < iterations; it++ {
		if err := hbm.WriteRow(e.dev, b, row, pattern); err != nil {
			return false, err
		}
		if err := e.dev.AdvanceTime(half); err != nil {
			return false, err
		}
		if err := hbm.RefreshRow(e.dev, b, logicalAggr); err != nil {
			return false, err
		}
		if err := e.dev.Refresh(b.Channel, b.PseudoChannel); err != nil {
			return false, err
		}
		if err := e.dev.AdvanceTime(half); err != nil {
			return false, err
		}
		got, err := hbm.ReadRow(e.dev, b, row)
		if err != nil {
			return false, err
		}
		if hbm.CountMismatches(got, pattern) == 0 {
			return true, nil
		}
	}
	return false, nil
}

// InferSamplerSlots determines how many distinct aggressors the per-bank
// sampler tracks between REFs. It profiles k retention-weak rows, and in
// every iteration activates each row's neighbour once (k distinct
// would-be aggressors) before the REF. On a fire, the mitigation
// refreshes the victims of every aggressor still held in the sampler: the
// number of probed rows refreshed together equals the sampler depth
// (capped at k). It returns the largest count observed, probing up to
// maxSlots aggressors.
func (e *Experiment) InferSamplerSlots(b addr.BankAddr, startRow, maxSlots int) (int, error) {
	if maxSlots < 1 {
		return 0, fmt.Errorf("utrr: maxSlots %d must be at least 1", maxSlots)
	}
	g := e.dev.Geometry()
	m := e.dev.Mapper()

	// Find maxSlots retention-weak rows, spaced so their aggressors and
	// victims never overlap.
	type probe struct {
		row, aggr int
		T         float64
	}
	// All probes share the two maxT/2 waits, so every probed row must
	// decay within maxT yet survive maxT/2 when refreshed mid-iteration:
	// the retention band must span less than a factor of two.
	bandLo, bandHi := e.BandLo, e.BandLo*1.9
	var probes []probe
	next := startRow
	for len(probes) < maxSlots {
		row, T, err := e.prof.FindRow(b, next, e.ScanRows, bandLo, bandHi)
		if err != nil {
			return 0, fmt.Errorf("utrr: only found %d probe rows: %w", len(probes), err)
		}
		pR := m.ToPhysical(row)
		pAggr := pR + 1
		if pAggr >= g.Rows {
			pAggr = pR - 1
		}
		probes = append(probes, probe{row: row, aggr: m.ToLogical(pAggr), T: T})
		next = row + 8 // keep blast radii and victims disjoint
	}
	maxT := 0.0
	for _, p := range probes {
		if p.T > maxT {
			maxT = p.T
		}
	}

	pattern := make([]byte, g.RowBytes())
	for i := range pattern {
		pattern[i] = e.prof.Pattern
	}
	half := int64(maxT / 2 * 1e12)
	const iterations = 64
	best := 0
	for it := 0; it < iterations; it++ {
		for _, p := range probes {
			if err := hbm.WriteRow(e.dev, b, p.row, pattern); err != nil {
				return 0, err
			}
		}
		if err := e.dev.AdvanceTime(half); err != nil {
			return 0, err
		}
		// Activate each aggressor once; a depth-s sampler retains the
		// last s distinct rows.
		for _, p := range probes {
			if err := hbm.RefreshRow(e.dev, b, p.aggr); err != nil {
				return 0, err
			}
		}
		if err := e.dev.Refresh(b.Channel, b.PseudoChannel); err != nil {
			return 0, err
		}
		if err := e.dev.AdvanceTime(half); err != nil {
			return 0, err
		}
		refreshed := 0
		for _, p := range probes {
			got, err := hbm.ReadRow(e.dev, b, p.row)
			if err != nil {
				return 0, err
			}
			if hbm.CountMismatches(got, pattern) == 0 {
				refreshed++
			}
		}
		if refreshed > best {
			best = refreshed
		}
	}
	return best, nil
}
