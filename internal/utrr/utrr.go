// Package utrr implements the U-TRR methodology (Hassan et al., MICRO'21)
// as used in Section 5 of the paper to uncover the HBM2 chip's
// proprietary, undisclosed Target Row Refresh mechanism.
//
// The key idea: data retention failures act as a side channel revealing
// whether the DRAM internally refreshed a row. One iteration performs the
// paper's six steps:
//
//  1. profile a row R's retention time T (done once, up front);
//  2. refresh R and wait T/2;
//  3. activate and precharge R's physical neighbour (a would-be
//     aggressor the TRR sampler should record);
//  4. issue one periodic REF command, giving the TRR a chance to act;
//  5. wait another T/2, so R accumulates a full T of decay unless TRR
//     refreshed it in the middle;
//  6. read R: no retention errors means TRR refreshed the row.
//
// Running many iterations exposes the mitigation's period: the paper
// observes R refreshed once every 17 iterations.
package utrr

import (
	"context"
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/hbm"
	"github.com/safari-repro/hbmrh/internal/retention"
)

// Experiment drives the U-TRR loop on one device.
type Experiment struct {
	dev  *hbm.Device
	prof *retention.Profiler

	// Ctx, when non-nil, aborts the run between iterations (and before
	// the up-front retention scan) with Ctx.Err(). Simulated time costs
	// nothing, so one iteration's wall time is a handful of row
	// operations — per-iteration checks keep cancellation prompt.
	Ctx context.Context

	// Iterations is the number of six-step iterations (paper: 100).
	Iterations int
	// BandLo and BandHi bound the retention time of the profiled row:
	// long enough that commands fit in the T/2 windows, short enough
	// that iterations stay fast.
	BandLo, BandHi float64
	// ScanRows bounds the retention search.
	ScanRows int
}

// New returns an experiment with the paper's parameters.
func New(d *hbm.Device) *Experiment {
	return &Experiment{
		dev:        d,
		prof:       retention.NewProfiler(d),
		Iterations: 100,
		BandLo:     0.3,
		BandHi:     8,
		ScanRows:   256,
	}
}

// cancelled returns the armed context's error, if any.
func (e *Experiment) cancelled() error {
	if e.Ctx == nil {
		return nil
	}
	return e.Ctx.Err()
}

// Result is the outcome of a U-TRR run.
type Result struct {
	// Row is the profiled logical row R; Aggressor is the logical row
	// whose physical address neighbours R's.
	Row       int
	Aggressor int
	// RetentionSec is R's measured retention time T.
	RetentionSec float64
	// Refreshed[i] records whether iteration i (0-based) found R
	// refreshed by an in-DRAM mechanism.
	Refreshed []bool
}

// Fires returns the 1-based iteration numbers at which R was refreshed.
func (r *Result) Fires() []int {
	var out []int
	for i, ref := range r.Refreshed {
		if ref {
			out = append(out, i+1)
		}
	}
	return out
}

// InferPeriod reports the TRR period if the observed refreshes are
// strictly periodic: the gap between consecutive fires (and the offset of
// the first fire) must all agree.
func (r *Result) InferPeriod() (int, bool) {
	fires := r.Fires()
	if len(fires) < 2 {
		return 0, false
	}
	period := fires[0]
	for i := 1; i < len(fires); i++ {
		if fires[i]-fires[i-1] != period {
			return 0, false
		}
	}
	return period, true
}

// Run executes the experiment in the given bank, scanning for a suitable
// row from startRow. The aggressor is chosen as the logical row mapping
// to the physical row next to R — in a black-box setting that mapping
// comes from the reverse-engineering step (core.RecoverMapping); here it
// is read from the device for speed.
func (e *Experiment) Run(b addr.BankAddr, startRow int) (*Result, error) {
	if err := e.cancelled(); err != nil {
		return nil, err
	}
	g := e.dev.Geometry()
	row, T, err := e.prof.FindRow(b, startRow, e.ScanRows, e.BandLo, e.BandHi)
	if err != nil {
		return nil, fmt.Errorf("utrr: %w", err)
	}
	m := e.dev.Mapper()
	pR := m.ToPhysical(row)
	pAggr := pR + 1
	if pAggr >= g.Rows {
		pAggr = pR - 1
	}
	res := &Result{
		Row:          row,
		Aggressor:    m.ToLogical(pAggr),
		RetentionSec: T,
		Refreshed:    make([]bool, e.Iterations),
	}

	pattern := make([]byte, g.RowBytes())
	for i := range pattern {
		pattern[i] = e.prof.Pattern
	}
	half := int64(T / 2 * 1e12)
	for it := 0; it < e.Iterations; it++ {
		if err := e.cancelled(); err != nil {
			return nil, err
		}
		// Steps 1-2: restore R's data and charge, wait T/2.
		if err := hbm.WriteRow(e.dev, b, row, pattern); err != nil {
			return nil, fmt.Errorf("utrr: iteration %d: %w", it, err)
		}
		if err := e.dev.AdvanceTime(half); err != nil {
			return nil, err
		}
		// Step 3: one activation of the neighbouring row, for the TRR
		// sampler to observe.
		if err := hbm.RefreshRow(e.dev, b, res.Aggressor); err != nil {
			return nil, fmt.Errorf("utrr: iteration %d: %w", it, err)
		}
		// Step 4: a single periodic REF triggers the mitigation.
		if err := e.dev.Refresh(b.Channel, b.PseudoChannel); err != nil {
			return nil, fmt.Errorf("utrr: iteration %d: %w", it, err)
		}
		// Step 5: second half of the decay window.
		if err := e.dev.AdvanceTime(half); err != nil {
			return nil, err
		}
		// Step 6: errors mean nothing refreshed R in between.
		got, err := hbm.ReadRow(e.dev, b, row)
		if err != nil {
			return nil, fmt.Errorf("utrr: iteration %d: %w", it, err)
		}
		res.Refreshed[it] = hbm.CountMismatches(got, pattern) == 0
	}
	return res, nil
}
