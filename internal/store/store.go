// Package store is the artifact system of record behind the query
// service: a content-addressed, append-only store of shard artifacts
// with incrementally maintained merged views.
//
// Every ingested artifact is kept as its pristine canonical bytes,
// addressed by their SHA-256 — re-ingesting a shard is an idempotent
// no-op, and nothing in the store is ever rewritten in place. Artifacts
// group into corpora keyed by (tool, config hash): the shards of one
// fleet scan or sharded study land in one corpus, and ingest enforces
// the same conflict matrix as results.Merge (format/build/axis/params
// skew, overlapping seed ranges or job keys, duplicate chip seeds), so
// a corpus can always merge. After each accepted ingest the corpus's
// merged view advances incrementally: when the accepted shard extends the
// already-merged contiguous prefix, only that shard is decoded and folded
// into a clone of the running view (amortized O(1) decodes per ingest);
// a full re-merge of fresh decodes via results.MergeShards — the exact
// merge path `characterize merge` uses — runs only when ordering demands
// it. Both paths perform the identical left fold in canonical shard
// order, so query renders stay byte-identical to single-process renders
// (pinned by a differential test over randomized arrival orders). The new
// view is sealed (read-only quantile paths) and swapped in atomically, so
// concurrent readers always hold either the old complete view or the new
// one, never a torn intermediate.
//
// Shards may arrive out of order: a shard that is compatible and
// conflict-free but not yet adjacent to the merged prefix is accepted
// as pending and folded in once the gap closes. Generations (one global,
// one per corpus) bump on every accepted ingest; the query layer keys
// its response cache on them for incremental invalidation.
//
// With a directory, accepted objects persist under objects/<sha256>.json
// and Open replays them; with an empty path the store is purely
// in-memory (tests, one-shot queries).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/safari-repro/hbmrh/internal/failpoint"
	"github.com/safari-repro/hbmrh/internal/results"
)

// Failpoint sites on the write path: the ingest gate (before any state
// changes, so an injected failure must leave store and generations
// untouched), the object persist (tear-able, so a crash mid-write leaves
// a corrupt objects/*.json for Open's quarantine to absorb), and the
// merge step after a successful persist (a failure there must leave the
// previous sealed view served and the accepted object quarantined, never
// a torn corpus).
var (
	fpStoreIngest = failpoint.Register("store/ingest")
	fpStoreMerge  = failpoint.Register("store/merge")
	fpStoreWrite  = failpoint.Register("store/object/write")
)

// Store is the artifact store. All methods are safe for concurrent use.
type Store struct {
	dir string // "" = in-memory

	mu          sync.RWMutex
	gen         uint64
	corpora     map[string]*corpus
	ordered     []string // corpus IDs, sorted
	quarantined []QuarantinedObject
	fullRebuild bool
}

// QuarantinedObject records one object file Open moved aside instead of
// replaying: the store runs degraded (that shard's data is absent until
// re-ingested) but it runs.
type QuarantinedObject struct {
	// File is the object file name (within objects/, now under
	// objects/quarantine/).
	File string
	// Reason is the replay failure that condemned it.
	Reason string
}

// corpus is the shard set of one (tool, config hash) pair.
type corpus struct {
	id      string
	gen     uint64
	members []*member // canonical order: SeedFirst, then JobFirst
	byHash  map[string]*member

	// merged is the sealed union of the contiguous member prefix
	// [0, mergedCount); nil only while the corpus has no members. It is
	// replaced (never mutated) on ingest — incrementally advanced via a
	// clone, or fully rebuilt — so published pointers stay valid for
	// readers across later ingests.
	merged      *results.Artifact
	mergedCount int
}

// member is one ingested shard: pristine bytes plus the provenance the
// conflict checks need without re-decoding.
type member struct {
	hash  string
	data  []byte
	meta  results.Meta
	seeds []uint64 // chip seeds carried by the shard
}

// IngestResult reports what one ingest did.
type IngestResult struct {
	// Corpus is the ID of the corpus the artifact landed in.
	Corpus string
	// Hash is the object address (SHA-256 of the canonical bytes).
	Hash string
	// Duplicate is true when the object was already present; nothing
	// changed and no generation advanced.
	Duplicate bool
	// Gen / StoreGen are the corpus and store generations after the
	// ingest.
	Gen, StoreGen uint64
	// Pending counts accepted members not yet adjacent to the merged
	// prefix; Complete is true when every member is merged.
	Pending  int
	Complete bool
}

// Snapshot is an immutable view of one corpus. Merged is sealed and must
// be treated as read-only; renders (SummaryCSV/SummaryJSON/View) are
// safe from any number of goroutines.
type Snapshot struct {
	Corpus   string
	Gen      uint64
	StoreGen uint64
	Meta     results.Meta
	Merged   *results.Artifact
	Members  int
	Pending  int
	Complete bool
}

// Open opens the store at dir, replaying any persisted objects; dir ""
// opens an empty in-memory store. The directory is created if missing.
//
// An object that cannot be replayed — unreadable, torn by a crash
// mid-write, or conflicting with already-replayed members — does not
// fail the open: it is moved to objects/quarantine/ and recorded, and
// replay continues with the rest. One corrupt file costs one shard (its
// data returns on the next ingest of those bytes), not the whole store;
// Quarantined reports the damage and the query service surfaces it as a
// degraded /healthz.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, corpora: map[string]*corpus{}}
	if dir == "" {
		return s, nil
	}
	objects := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objects, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(objects)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Replay in name (= hash) order: deterministic, and ingest tolerates
	// any arrival order via the pending set.
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(objects, e.Name())
		data, err := os.ReadFile(path)
		if err == nil {
			_, err = s.ingest(data, false)
		}
		if err != nil {
			if qerr := s.quarantine(objects, e.Name(), err); qerr != nil {
				return nil, qerr
			}
		}
	}
	return s, nil
}

// quarantine moves one condemned object file into objects/quarantine/
// and records why, so replay can continue past it.
func (s *Store) quarantine(objects, name string, cause error) error {
	qdir := filepath.Join(objects, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: quarantining %s: %w", name, err)
	}
	if err := os.Rename(filepath.Join(objects, name), filepath.Join(qdir, name)); err != nil {
		return fmt.Errorf("store: quarantining %s: %w", name, err)
	}
	s.quarantined = append(s.quarantined, QuarantinedObject{File: name, Reason: cause.Error()})
	return nil
}

// Quarantined reports the objects Open moved aside, in replay order. A
// non-empty result means the store is serving a degraded view.
func (s *Store) Quarantined() []QuarantinedObject {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]QuarantinedObject(nil), s.quarantined...)
}

// Dir returns the store's directory ("" for in-memory).
func (s *Store) Dir() string { return s.dir }

// Generation returns the global generation: it advances on every
// accepted ingest into any corpus.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Corpora returns the sorted corpus IDs.
func (s *Store) Corpora() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.ordered...)
}

// CorpusID derives the corpus an artifact with this provenance belongs
// to: "<tool>-<config hash>".
func CorpusID(m *results.Meta) string {
	return m.Tool + "-" + m.ConfigHash
}

// Ingest decodes, conflict-checks and stores one artifact given its
// encoded bytes. Rejections (skewed provenance, overlapping ranges,
// duplicate chips — the results.Merge conflict matrix) return an error
// and leave the store unchanged; re-ingesting identical bytes is an
// idempotent no-op reported via IngestResult.Duplicate.
func (s *Store) Ingest(data []byte) (IngestResult, error) {
	return s.ingest(data, true)
}

// IngestArtifact ingests an in-memory artifact (fleet auto-ingest); the
// artifact is re-encoded to its canonical bytes first, so the stored
// object is identical to ingesting the written shard file.
func (s *Store) IngestArtifact(a *results.Artifact) (IngestResult, error) {
	buf, err := a.MarshalIndented()
	if err != nil {
		return IngestResult{}, fmt.Errorf("store: %w", err)
	}
	return s.Ingest(buf)
}

// IngestFiles ingests each path (files, globs or directories, expanded
// like `characterize merge` arguments), failing on the first rejection.
func (s *Store) IngestFiles(args ...string) ([]IngestResult, error) {
	paths, err := results.ExpandShardArgs(args)
	if err != nil {
		return nil, err
	}
	out := make([]IngestResult, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return out, fmt.Errorf("store: %w", err)
		}
		r, err := s.Ingest(data)
		if err != nil {
			return out, fmt.Errorf("store: ingesting %s: %w", path, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func (s *Store) ingest(data []byte, persist bool) (IngestResult, error) {
	// Live ingests only (replay is exempt: an injected replay failure
	// would quarantine a pristine object). Firing before any work is the
	// point — an ingest that fails here must be indistinguishable from one
	// that never arrived.
	if persist {
		if err := fpStoreIngest.Inject(); err != nil {
			return IngestResult{}, err
		}
	}
	a, err := results.Decode(data)
	if err != nil {
		return IngestResult{}, err
	}
	// Canonicalize: the object's address is the hash of its deterministic
	// encoding, so semantically identical artifacts (whatever whitespace
	// they arrived with) dedup to one object.
	canon, err := a.MarshalIndented()
	if err != nil {
		return IngestResult{}, err
	}
	sum := sha256.Sum256(canon)
	hash := hex.EncodeToString(sum[:])
	id := CorpusID(&a.Meta)

	m := &member{hash: hash, data: canon, meta: a.Meta}
	for _, c := range a.Chips {
		m.seeds = append(m.seeds, c.Seed)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	c := s.corpora[id]
	if c != nil {
		if _, ok := c.byHash[hash]; ok {
			return IngestResult{
				Corpus: id, Hash: hash, Duplicate: true,
				Gen: c.gen, StoreGen: s.gen,
				Pending:  len(c.members) - c.mergedCount,
				Complete: c.mergedCount == len(c.members),
			}, nil
		}
		if err := c.checkConflicts(m, a); err != nil {
			return IngestResult{}, err
		}
	} else {
		c = &corpus{id: id, byHash: map[string]*member{}}
	}

	// Accept: persist first so a crash between write and index rebuild
	// just replays the object on the next Open. A crash mid-write instead
	// leaves a torn objects/*.json that the next Open quarantines — either
	// way the accepted state is recoverable, which the torture harness
	// pins by tearing this exact write.
	if persist && s.dir != "" {
		path := filepath.Join(s.dir, "objects", hash+".json")
		if err := writeObject(path, canon); err != nil {
			return IngestResult{}, fmt.Errorf("store: %w", err)
		}
	}
	c.members = append(c.members, m)
	c.byHash[hash] = m
	sort.SliceStable(c.members, func(i, j int) bool {
		a, b := &c.members[i].meta, &c.members[j].meta
		if a.SeedFirst != b.SeedFirst {
			return a.SeedFirst < b.SeedFirst
		}
		return a.JobFirst < b.JobFirst
	})
	if err := c.refresh(s.fullRebuild, m, persist); err != nil {
		// The conflict precheck mirrors everything Merge refuses, so a
		// merge failure means the precheck has a hole (or an injected
		// fault). Degrade rather than risk a torn corpus: drop the member,
		// quarantine the just-persisted object so replay cannot resurrect
		// it unchecked, and keep serving the previous sealed view — exactly
		// the contract Open's quarantine gives a corrupt object file.
		delete(c.byHash, hash)
		for i, mm := range c.members {
			if mm.hash == hash {
				c.members = append(c.members[:i], c.members[i+1:]...)
				break
			}
		}
		if persist {
			if s.dir != "" {
				if qerr := s.quarantine(filepath.Join(s.dir, "objects"), hash+".json", err); qerr != nil {
					return IngestResult{}, fmt.Errorf("store: ingest failed to merge (%v) and to quarantine: %w", err, qerr)
				}
			} else {
				s.quarantined = append(s.quarantined, QuarantinedObject{File: hash + ".json", Reason: err.Error()})
			}
		}
		return IngestResult{}, fmt.Errorf("store: ingest conflicts on merge (precheck gap); previous view still served: %w", err)
	}
	if s.corpora[id] == nil {
		s.corpora[id] = c
		s.ordered = append(s.ordered, id)
		sort.Strings(s.ordered)
	}
	c.gen++
	s.gen++
	return IngestResult{
		Corpus: id, Hash: hash,
		Gen: c.gen, StoreGen: s.gen,
		Pending:  len(c.members) - c.mergedCount,
		Complete: c.mergedCount == len(c.members),
	}, nil
}

// writeObject persists one object file through the tear-able failpoint
// site: the payload, then sync, so what a crash leaves behind is exactly
// the prefix that reached the disk.
func writeObject(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fpStoreWrite.Write(f, data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkConflicts applies the results.Merge conflict matrix between the
// candidate and the corpus's existing members, without mutating anything:
// provenance/structure skew via CompatibleWith against an existing
// member, plus the cross-shard range and identity checks.
func (c *corpus) checkConflicts(m *member, cand *results.Artifact) error {
	ref, err := results.Decode(c.members[0].data)
	if err != nil {
		return err
	}
	if err := ref.CompatibleWith(cand); err != nil {
		return err
	}
	jobSliced := m.meta.JobCount > 0 || c.members[0].meta.JobCount > 0
	if jobSliced && m.meta.JobAxis == results.AxisSeed {
		return fmt.Errorf("results: seed-axis artifacts must carry seed-range provenance, not job slices")
	}
	seen := map[uint64]bool{}
	keys := map[string]bool{}
	for _, o := range c.members {
		for _, s := range o.seeds {
			seen[s] = true
		}
		if jobSliced {
			if o.meta.SeedFirst != m.meta.SeedFirst || o.meta.SeedCount != m.meta.SeedCount {
				return fmt.Errorf("results: %s-axis shards of different seed ranges: [%d,+%d) vs [%d,+%d)",
					m.meta.JobAxis, o.meta.SeedFirst, o.meta.SeedCount, m.meta.SeedFirst, m.meta.SeedCount)
			}
			for _, k := range o.meta.JobKeys {
				keys[k] = true
			}
			lo, hi := m.meta.JobFirst, m.meta.JobFirst+m.meta.JobCount
			if o.meta.JobFirst < hi && lo < o.meta.JobFirst+o.meta.JobCount {
				return fmt.Errorf("results: job slices [%d,+%d) and [%d,+%d) overlap (same shard merged twice?)",
					o.meta.JobFirst, o.meta.JobCount, m.meta.JobFirst, m.meta.JobCount)
			}
		} else {
			lo, hi := m.meta.SeedFirst, m.meta.SeedFirst+uint64(m.meta.SeedCount)
			if o.meta.SeedFirst < hi && lo < o.meta.SeedFirst+uint64(o.meta.SeedCount) {
				return fmt.Errorf("results: seed ranges [%d,+%d) and [%d,+%d) overlap (same shard merged twice?)",
					o.meta.SeedFirst, o.meta.SeedCount, m.meta.SeedFirst, m.meta.SeedCount)
			}
		}
	}
	for _, k := range m.meta.JobKeys {
		if keys[k] {
			return fmt.Errorf("results: job %q present in both artifacts (same shard merged twice?)", k)
		}
	}
	for _, s := range m.seeds {
		if seen[s] {
			return fmt.Errorf("results: chip seed %#x present in both artifacts", s)
		}
	}
	return nil
}

// refresh brings the corpus's merged view up to date after m was
// inserted into the member order. The fast path is the incremental
// advance; the full rebuild runs when forced (the differential baseline)
// or when the new member landed inside the already-merged prefix — a
// degenerate ordering the conflict matrix all but rules out, kept as a
// defensive fallback rather than an assumption. Live ingests pass
// through the store/merge failpoint so the degraded error path above is
// torture-testable.
func (c *corpus) refresh(full bool, m *member, live bool) error {
	if live {
		if err := fpStoreMerge.Inject(); err != nil {
			return err
		}
	}
	if !full {
		for p, mm := range c.members {
			if mm == m {
				if p >= c.mergedCount {
					return c.advance()
				}
				break
			}
		}
	}
	return c.rebuildFull()
}

// advance extends the merged view incrementally: members past the sealed
// prefix are folded in, one fresh decode each, for as long as they stay
// contiguous with the running view. Each shard is decoded and merged
// exactly once over the corpus's life — amortized O(1) work per ingest
// versus the O(n) re-decode of a full rebuild. The published view is
// never mutated: the first fold clones it, the clone absorbs the shards
// and is sealed, and a single pointer swap publishes it.
//
// Byte-identity with rebuildFull is structural, not incidental:
// results.MergeShards is a stable sort by (SeedFirst, JobFirst) followed
// by a left fold of results.Merge, c.members is maintained in exactly
// that order, and stats.Stream merges are exact (Shewchuk sums), so
// folding the suffix into the previous fold's result IS the same left
// fold. TestStoreIncrementalMatchesFullRebuild pins this over randomized
// arrival orders.
func (c *corpus) advance() error {
	n := c.mergedCount
	view := c.merged              // contiguity reference; starts at the published view
	var working *results.Artifact // clone under construction; nil until the first fold
	for n < len(c.members) {
		next := &c.members[n].meta
		if view != nil {
			vm := &view.Meta
			if next.JobCount > 0 || vm.JobCount > 0 {
				if next.JobFirst != vm.JobFirst+vm.JobCount {
					break
				}
			} else if next.SeedFirst != vm.SeedFirst+uint64(vm.SeedCount) {
				break
			}
		}
		a, err := results.Decode(c.members[n].data)
		if err != nil {
			return err
		}
		if view == nil {
			working = a
		} else {
			if working == nil {
				working = c.merged.Clone()
			}
			if err := results.Merge(working, a); err != nil {
				return err
			}
		}
		view = working
		n++
	}
	if working != nil {
		working.Seal()
		c.merged, c.mergedCount = working, n
	}
	return nil
}

// rebuildFull re-derives the merged view from pristine bytes: fresh
// decodes of the maximal contiguous member prefix, merged in canonical
// order via results.MergeShards (byte-for-byte the `characterize merge`
// path), then sealed. The previous view is left untouched for readers
// still holding it.
func (c *corpus) rebuildFull() error {
	n := 1
	for n < len(c.members) {
		prev, next := &c.members[n-1].meta, &c.members[n].meta
		if next.JobCount > 0 || prev.JobCount > 0 {
			if next.JobFirst != prev.JobFirst+prev.JobCount {
				break
			}
		} else if next.SeedFirst != prev.SeedFirst+uint64(prev.SeedCount) {
			break
		}
		n++
	}
	shards := make([]*results.Artifact, n)
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		a, err := results.Decode(c.members[i].data)
		if err != nil {
			return err
		}
		shards[i], paths[i] = a, c.members[i].hash
	}
	merged, err := results.MergeShards(shards, paths)
	if err != nil {
		return err
	}
	merged.Seal()
	c.merged, c.mergedCount = merged, n
	return nil
}

// ForceFullRebuild switches every subsequent ingest's merge maintenance
// from the incremental advance to a full MergeShards rebuild — the
// pre-incremental O(n²) behavior. It exists as the baseline for the
// differential tests and the ingest-throughput benchmark
// (cmd/loadgen -ingest-bench); production callers never need it.
func (s *Store) ForceFullRebuild(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fullRebuild = on
}

// Snapshot returns an immutable view of one corpus by exact ID.
func (s *Store) Snapshot(id string) (*Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.corpora[id]
	if !ok {
		return nil, false
	}
	return s.snapshotLocked(c), true
}

// Resolve returns the corpus matching key: the sole corpus for the empty
// key, an exact ID match, or a unique ID prefix. Ambiguous or unknown
// keys return an error listing the candidates.
func (s *Store) Resolve(key string) (*Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resolveLocked(key)
}

func (s *Store) resolveLocked(key string) (*Snapshot, error) {
	if key == "" {
		if len(s.ordered) == 1 {
			return s.snapshotLocked(s.corpora[s.ordered[0]]), nil
		}
		return nil, fmt.Errorf("store: key required; corpora: %s", strings.Join(s.ordered, ", "))
	}
	if c, ok := s.corpora[key]; ok {
		return s.snapshotLocked(c), nil
	}
	var hits []string
	for _, id := range s.ordered {
		if strings.HasPrefix(id, key) {
			hits = append(hits, id)
		}
	}
	switch len(hits) {
	case 1:
		return s.snapshotLocked(s.corpora[hits[0]]), nil
	case 0:
		return nil, fmt.Errorf("store: no corpus matches %q; corpora: %s", key, strings.Join(s.ordered, ", "))
	default:
		return nil, fmt.Errorf("store: key %q is ambiguous: %s", key, strings.Join(hits, ", "))
	}
}

// ResolveID resolves key to a corpus ID and that corpus's current
// generation without materializing a Snapshot — the query service's hot
// path, which must not allocate on a cache hit. Resolution rules match
// Resolve exactly: sole corpus for the empty key, exact ID, or unique ID
// prefix.
func (s *Store) ResolveID(key string) (id string, gen uint64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if key == "" {
		if len(s.ordered) == 1 {
			c := s.corpora[s.ordered[0]]
			return c.id, c.gen, nil
		}
		return "", 0, fmt.Errorf("store: key required; corpora: %s", strings.Join(s.ordered, ", "))
	}
	if c, ok := s.corpora[key]; ok {
		return c.id, c.gen, nil
	}
	hit, hits := "", 0
	for _, cid := range s.ordered {
		if strings.HasPrefix(cid, key) {
			hit = cid
			hits++
		}
	}
	if hits == 1 {
		c := s.corpora[hit]
		return c.id, c.gen, nil
	}
	// Ambiguous/unknown: defer to Resolve for the detailed error.
	_, err = s.resolveLocked(key)
	return "", 0, err
}

func (s *Store) snapshotLocked(c *corpus) *Snapshot {
	return &Snapshot{
		Corpus:   c.id,
		Gen:      c.gen,
		StoreGen: s.gen,
		Meta:     c.merged.Meta,
		Merged:   c.merged,
		Members:  len(c.members),
		Pending:  len(c.members) - c.mergedCount,
		Complete: c.mergedCount == len(c.members),
	}
}
