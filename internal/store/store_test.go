package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/safari-repro/hbmrh/internal/failpoint"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
)

// shard builds a region×channel shard artifact over a seed range with
// deterministic pseudo-samples, shaped like a multichip fleet shard.
func shard(seedFirst uint64, seedCount int) *results.Artifact {
	regions := []string{"first", "middle", "last"}
	const channels = 4
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "test",
			CodeVersion: "test-build",
			ConfigHash:  "deadbeef",
			GroupBy:     results.ByRegionChannel.String(),
			SeedFirst:   seedFirst,
			SeedCount:   seedCount,
			ShardCount:  1,
			Params:      map[string]string{"rows": "4"},
		},
	}
	for _, r := range regions {
		for ch := 0; ch < channels; ch++ {
			a.Groups = append(a.Groups, results.Group{
				Key: results.Key{Region: r, Channel: ch},
				Metrics: []results.Metric{
					{Name: "ber", Stream: stats.NewStream(0, 1)},
					{Name: "hc", Stream: stats.NewStream(0, 1000)},
				},
			})
		}
	}
	for s := seedFirst; s < seedFirst+uint64(seedCount); s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		for gi := range a.Groups {
			for k := 0; k < 5; k++ {
				a.Groups[gi].Metrics[0].Stream.Add(rng.Float64())
				a.Groups[gi].Metrics[1].Stream.Add(rng.Float64() * 1000)
			}
		}
		a.Chips = append(a.Chips, results.ChipRecord{Seed: s, MinHCFirst: int(s * 7)})
	}
	return a
}

// jobShard builds a point-axis shard of one chip's sweep covering the
// job slice [first, first+count).
func jobShard(first, count int) *results.Artifact {
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "sweep",
			CodeVersion: "test-build",
			ConfigHash:  "deadbeef",
			GroupBy:     results.ByPoint.String(),
			SeedFirst:   7,
			SeedCount:   1,
			ShardCount:  1,
			JobAxis:     "point",
			JobFirst:    first,
			JobCount:    count,
		},
	}
	points := []string{"p0", "p1", "p2", "p3"}
	for _, p := range points {
		a.Groups = append(a.Groups, results.Group{
			Key:     results.Key{Channel: results.NoChannel, Point: p},
			Metrics: []results.Metric{{Name: "ber", Stream: stats.NewStream(0, 1)}},
		})
	}
	for j := first; j < first+count; j++ {
		a.Meta.JobKeys = append(a.Meta.JobKeys, points[j])
		a.Groups[j].Metrics[0].Stream.Add(float64(j) / 10)
	}
	return a
}

func ingest(t *testing.T, s *Store, a *results.Artifact) IngestResult {
	t.Helper()
	r, err := s.IngestArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStoreMergeMatchesMergeShards(t *testing.T) {
	// Store-merged view of 4 shards must render byte-identically to the
	// direct MergeShards path over the same shards.
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	var gen uint64
	for i, a := range []*results.Artifact{shard(0, 2), shard(2, 3), shard(5, 1), shard(6, 2)} {
		r := ingest(t, s, a)
		if r.Gen <= gen {
			t.Fatalf("ingest %d did not advance generation: %d then %d", i, gen, r.Gen)
		}
		gen = r.Gen
	}
	snap, err := s.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Complete || snap.Pending != 0 || snap.Members != 4 {
		t.Fatalf("snapshot complete=%v pending=%d members=%d", snap.Complete, snap.Pending, snap.Members)
	}
	direct, err := results.MergeShards(
		[]*results.Artifact{shard(0, 2), shard(2, 3), shard(5, 1), shard(6, 2)},
		[]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range []results.GroupBy{results.ByRegion, results.ByChannel, results.ByRegionChannel} {
		want, err := direct.SummaryJSON(gb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := snap.Merged.SummaryJSON(gb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%v: store render differs from direct merge:\n%s\nvs\n%s", gb, got, want)
		}
	}
}

func TestStoreOutOfOrderPending(t *testing.T) {
	s, _ := Open("")
	ingest(t, s, shard(0, 2))
	r := ingest(t, s, shard(5, 3)) // gap [2,5): accepted but pending
	if r.Complete || r.Pending != 1 {
		t.Fatalf("gapped shard: complete=%v pending=%d", r.Complete, r.Pending)
	}
	snap, _ := s.Resolve("")
	if snap.Merged.Meta.SeedCount != 2 {
		t.Fatalf("merged view covers [%d,+%d), want the contiguous prefix [0,+2)",
			snap.Merged.Meta.SeedFirst, snap.Merged.Meta.SeedCount)
	}
	r = ingest(t, s, shard(2, 3)) // closes the gap
	if !r.Complete || r.Pending != 0 {
		t.Fatalf("gap closed: complete=%v pending=%d", r.Complete, r.Pending)
	}
	snap, _ = s.Resolve("")
	if snap.Merged.Meta.SeedCount != 8 {
		t.Fatalf("merged view covers +%d seeds, want 8", snap.Merged.Meta.SeedCount)
	}
}

func TestStoreIngestIdempotent(t *testing.T) {
	s, _ := Open("")
	first := ingest(t, s, shard(0, 2))
	again := ingest(t, s, shard(0, 2))
	if !again.Duplicate {
		t.Fatal("identical bytes not reported as duplicate")
	}
	if again.Gen != first.Gen || again.StoreGen != first.StoreGen {
		t.Fatalf("duplicate ingest advanced generations: %d/%d then %d/%d",
			first.Gen, first.StoreGen, again.Gen, again.StoreGen)
	}
}

// TestStoreRejectsConflicts mirrors the results.Merge conflict matrix at
// ingest time: anything Merge would refuse, Ingest refuses up front, and
// the store (generations included) is left unchanged.
func TestStoreRejectsConflicts(t *testing.T) {
	cases := map[string]func() *results.Artifact{
		"code mismatch": func() *results.Artifact {
			b := shard(2, 2)
			b.Meta.CodeVersion = "other-build"
			return b
		},
		"axis mismatch": func() *results.Artifact {
			b := shard(2, 2)
			b.Meta.GroupBy = results.ByRegion.String()
			return b
		},
		"job axis mismatch": func() *results.Artifact {
			b := shard(2, 2)
			b.Meta.JobAxis = "channel"
			return b
		},
		"param mismatch": func() *results.Artifact {
			b := shard(2, 2)
			b.Meta.Params["rows"] = "8"
			return b
		},
		"group key skew": func() *results.Artifact {
			b := shard(2, 2)
			b.Groups[0].Key.Channel = 9
			return b
		},
		"metric skew": func() *results.Artifact {
			b := shard(2, 2)
			b.Groups[0].Metrics[0].Name = "other"
			return b
		},
		"stream domain skew": func() *results.Artifact {
			b := shard(2, 2)
			b.Groups[0].Metrics[0].Stream = stats.NewStream(0, 2)
			return b
		},
		"seed overlap": func() *results.Artifact { return shard(1, 2) },
		"duplicate chip seed": func() *results.Artifact {
			b := shard(2, 2)
			b.Chips[0].Seed = 0 // collides with shard(0,2)'s chip
			return b
		},
	}
	for name, make := range cases {
		t.Run(name, func(t *testing.T) {
			s, _ := Open("")
			base := ingest(t, s, shard(0, 2))
			if _, err := s.IngestArtifact(make()); err == nil {
				t.Fatalf("%s accepted", name)
			}
			if g := s.Generation(); g != base.StoreGen {
				t.Fatalf("rejected ingest advanced store generation %d -> %d", base.StoreGen, g)
			}
			snap, err := s.Resolve("")
			if err != nil {
				t.Fatal(err)
			}
			if snap.Members != 1 || snap.Gen != base.Gen {
				t.Fatalf("rejected ingest mutated corpus: members=%d gen=%d", snap.Members, snap.Gen)
			}
		})
	}
}

func TestStoreRejectsJobSliceConflicts(t *testing.T) {
	t.Run("key overlap", func(t *testing.T) {
		s, _ := Open("")
		ingest(t, s, jobShard(0, 2))
		b := jobShard(2, 2)
		b.Meta.JobKeys = []string{"p1", "p3"} // p1 already covered
		if _, err := s.IngestArtifact(b); err == nil || !strings.Contains(err.Error(), "present in both") {
			t.Fatalf("overlapping job keys accepted: %v", err)
		}
	})
	t.Run("slice overlap", func(t *testing.T) {
		s, _ := Open("")
		ingest(t, s, jobShard(0, 3))
		if _, err := s.IngestArtifact(jobShard(2, 2)); err == nil {
			t.Fatal("overlapping job slices accepted")
		}
	})
	t.Run("different seed range", func(t *testing.T) {
		s, _ := Open("")
		ingest(t, s, jobShard(0, 2))
		b := jobShard(2, 2)
		b.Meta.SeedFirst = 9
		if _, err := s.IngestArtifact(b); err == nil {
			t.Fatal("job shards of different seed ranges accepted")
		}
	})
	t.Run("contiguous slices merge", func(t *testing.T) {
		s, _ := Open("")
		ingest(t, s, jobShard(0, 2))
		r := ingest(t, s, jobShard(2, 2))
		if !r.Complete {
			t.Fatal("contiguous job shards left pending")
		}
		snap, _ := s.Resolve("")
		if snap.Merged.Meta.JobCount != 4 {
			t.Fatalf("merged job count %d, want 4", snap.Merged.Meta.JobCount)
		}
	})
}

func TestStoreSeparateCorpora(t *testing.T) {
	// Tool or config skew is not a conflict: such artifacts are different
	// studies and land in corpora of their own.
	s, _ := Open("")
	ingest(t, s, shard(0, 2))
	other := shard(0, 2)
	other.Meta.Tool = "other"
	ingest(t, s, other)
	cfg := shard(0, 2)
	cfg.Meta.ConfigHash = "feedface"
	ingest(t, s, cfg)
	if ids := s.Corpora(); len(ids) != 3 {
		t.Fatalf("corpora: %v, want 3 distinct", ids)
	}
	if _, err := s.Resolve(""); err == nil {
		t.Fatal("empty key resolved despite multiple corpora")
	}
	if snap, err := s.Resolve("other-"); err != nil || snap.Corpus != "other-deadbeef" {
		t.Fatalf("prefix resolve: %v, %v", snap, err)
	}
	if _, err := s.Resolve("test-dead"); err != nil {
		t.Fatalf("unique prefix rejected: %v", err)
	}
	if _, err := s.Resolve("nope"); err == nil {
		t.Fatal("unknown key resolved")
	}
}

// TestStoreQuarantineCorruptObject damages one persisted object and
// reopens: the store must move it to objects/quarantine/, report it, and
// keep serving the intact corpus — and a re-ingest of the lost shard
// must restore the full merge (content addressing self-heals).
func TestStoreQuarantineCorruptObject(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, shard(0, 2))
	ingest(t, s, shard(2, 3))
	want, err := s.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.Merged.SummaryJSON(results.ByChannel)
	if err != nil {
		t.Fatal(err)
	}

	// Tear one object mid-file, the wreckage a crash during writeObject
	// leaves behind.
	objects, err := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
	if err != nil || len(objects) != 2 {
		t.Fatalf("objects on disk: %v (err %v), want 2", objects, err)
	}
	sort.Strings(objects)
	victim := objects[0]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("open with a corrupt object must degrade, not fail: %v", err)
	}
	q := re.Quarantined()
	if len(q) != 1 || q[0].File != filepath.Base(victim) || q[0].Reason == "" {
		t.Fatalf("quarantined %+v, want exactly the torn object with a reason", q)
	}
	if _, err := os.Stat(filepath.Join(dir, "objects", "quarantine", filepath.Base(victim))); err != nil {
		t.Fatalf("torn object not moved into objects/quarantine/: %v", err)
	}
	snap, err := re.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Members != 1 {
		t.Fatalf("degraded store serves %d member(s), want the 1 intact shard", snap.Members)
	}

	// Re-ingesting the shards heals the corpus back to full strength:
	// the survivor dedups, the quarantined one is restored. (Which of the
	// two objects was torn depends on hash order, so replay both.)
	ingest(t, re, shard(0, 2))
	ingest(t, re, shard(2, 3))
	healed, err := re.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if healed.Members != 2 || !healed.Complete {
		t.Fatalf("after re-ingest: members=%d complete=%v", healed.Members, healed.Complete)
	}
	gotJSON, err := healed.Merged.SummaryJSON(results.ByChannel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Error("healed store renders different bytes than before the damage")
	}

	// The quarantine directory must not be replayed as objects on the
	// next open.
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Quarantined()) != 0 {
		t.Fatalf("clean reopen still quarantines: %+v", again.Quarantined())
	}
	if snap, err := again.Resolve(""); err != nil || snap.Members != 2 {
		t.Fatalf("clean reopen: members=%d err=%v, want 2", snap.Members, err)
	}
}

// TestStoreIncrementalMatchesFullRebuild is the differential property
// behind the incremental merge: for EVERY arrival permutation of a shard
// set, the incrementally advanced store and a store forced onto the full
// MergeShards rebuild publish byte-identical merged views after every
// single ingest — and the final view is byte-identical to a direct
// `characterize merge` (results.MergeShards) over the same shards. Runs
// on both sharding regimes (seed-axis fleet shards, job-slice sweep
// shards).
func TestStoreIncrementalMatchesFullRebuild(t *testing.T) {
	type regime struct {
		name   string
		shards []*results.Artifact
	}
	var seedShards []*results.Artifact
	for first, count := uint64(0), 0; first < 9; first += uint64(count) {
		count = int(first%3) + 1 // sizes 1..3, deterministic
		seedShards = append(seedShards, shard(first, count))
	}
	var jobShards []*results.Artifact
	for j := 0; j < 4; j++ {
		jobShards = append(jobShards, jobShard(j, 1))
	}
	for _, reg := range []regime{{"seed-axis", seedShards}, {"job-axis", jobShards}} {
		t.Run(reg.name, func(t *testing.T) {
			blobs := make([][]byte, len(reg.shards))
			fresh := make([]*results.Artifact, len(reg.shards))
			paths := make([]string, len(reg.shards))
			for i, a := range reg.shards {
				buf, err := a.MarshalIndented()
				if err != nil {
					t.Fatal(err)
				}
				blobs[i] = buf
				if fresh[i], err = results.Decode(buf); err != nil {
					t.Fatal(err)
				}
				paths[i] = "shard" + string(rune('a'+i))
			}
			direct, err := results.MergeShards(fresh, paths)
			if err != nil {
				t.Fatal(err)
			}
			want, err := direct.MarshalIndented()
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(0xC0FFEE))
			perms := [][]int{rng.Perm(len(blobs))} // plus identity and reverse below
			ident := make([]int, len(blobs))
			rev := make([]int, len(blobs))
			for i := range ident {
				ident[i], rev[i] = i, len(blobs)-1-i
			}
			perms = append(perms, ident, rev)
			for len(perms) < 8 {
				perms = append(perms, rng.Perm(len(blobs)))
			}

			for pi, perm := range perms {
				// Byte-compare the two stores after EVERY ingest on the first
				// few permutations; the rest pin the (cheaper) final state —
				// the per-step invariant is order-insensitive, so a few
				// permutations of full coverage plus many of final coverage
				// buys the property without a quadratic test bill.
				stepwise := pi < 3
				inc, _ := Open("")
				full, _ := Open("")
				full.ForceFullRebuild(true)
				for step, si := range perm {
					ri, err := inc.Ingest(blobs[si])
					if err != nil {
						t.Fatalf("perm %d step %d: incremental ingest: %v", pi, step, err)
					}
					rf, err := full.Ingest(blobs[si])
					if err != nil {
						t.Fatalf("perm %d step %d: full-rebuild ingest: %v", pi, step, err)
					}
					if ri.Pending != rf.Pending || ri.Complete != rf.Complete {
						t.Fatalf("perm %d step %d: pending/complete diverge: inc %d/%v full %d/%v",
							pi, step, ri.Pending, ri.Complete, rf.Pending, rf.Complete)
					}
					if !stepwise {
						continue
					}
					si, err := inc.Resolve("")
					if err != nil {
						t.Fatal(err)
					}
					sf, err := full.Resolve("")
					if err != nil {
						t.Fatal(err)
					}
					bi, err := si.Merged.MarshalIndented()
					if err != nil {
						t.Fatal(err)
					}
					bf, err := sf.Merged.MarshalIndented()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(bi, bf) {
						t.Fatalf("perm %d (%v) step %d: incremental view diverges from full rebuild", pi, perm, step)
					}
				}
				for which, st := range map[string]*Store{"incremental": inc, "full-rebuild": full} {
					snap, err := st.Resolve("")
					if err != nil {
						t.Fatal(err)
					}
					if !snap.Complete {
						t.Fatalf("perm %d: %s corpus incomplete after all shards", pi, which)
					}
					got, err := snap.Merged.MarshalIndented()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("perm %d (%v): final %s view differs from direct MergeShards", pi, perm, which)
					}
				}
			}
		})
	}
}

// TestStoreMergeFailureKeepsPreviousView pins the degraded error path: a
// merge failure after the object was persisted must leave the previous
// sealed view served, quarantine the accepted object (so a replay cannot
// resurrect it unchecked), and heal on a clean re-ingest.
func TestStoreMergeFailureKeepsPreviousView(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := ingest(t, s, shard(0, 2))
	before, err := s.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	beforeBytes, err := before.Merged.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Arm("store/merge=error@1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.Reset)
	if _, err := s.IngestArtifact(shard(2, 3)); err == nil {
		t.Fatal("ingest with injected merge failure succeeded")
	}

	// Previous view still served, generations untouched.
	snap, err := s.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Members != 1 || snap.Gen != base.Gen || s.Generation() != base.StoreGen {
		t.Fatalf("failed merge mutated corpus: members=%d gen=%d storegen=%d", snap.Members, snap.Gen, s.Generation())
	}
	got, err := snap.Merged.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, beforeBytes) {
		t.Fatal("served view changed across a failed merge")
	}

	// The persisted object went to quarantine — degraded, recorded.
	q := s.Quarantined()
	if len(q) != 1 || q[0].Reason == "" {
		t.Fatalf("quarantined %+v, want exactly the failed object with a reason", q)
	}
	if _, err := os.Stat(filepath.Join(dir, "objects", "quarantine", q[0].File)); err != nil {
		t.Fatalf("failed object not moved into objects/quarantine/: %v", err)
	}
	live, err := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
	if err != nil || len(live) != 1 {
		t.Fatalf("live objects after failed merge: %v (err %v), want only the first shard", live, err)
	}

	// Clean re-ingest self-heals: the failpoint is spent, the same bytes
	// are accepted, and the reopened store replays to the same state.
	if r := ingest(t, s, shard(2, 3)); !r.Complete {
		t.Fatal("re-ingest after failed merge left corpus incomplete")
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Quarantined()) != 0 {
		t.Fatalf("reopen after heal still quarantines: %+v", re.Quarantined())
	}
	if snap, err := re.Resolve(""); err != nil || snap.Members != 2 || !snap.Complete {
		t.Fatalf("reopened store: members=%d complete=%v err=%v", snap.Members, snap.Complete, err)
	}

	// In-memory stores record the quarantine too (no file to move).
	mem, _ := Open("")
	ingest(t, mem, shard(0, 2))
	if err := failpoint.Arm("store/merge=error@1"); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.IngestArtifact(shard(2, 3)); err == nil {
		t.Fatal("in-memory ingest with injected merge failure succeeded")
	}
	if q := mem.Quarantined(); len(q) != 1 {
		t.Fatalf("in-memory store recorded %d quarantined objects, want 1", len(q))
	}
}

func TestStorePersistenceReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, shard(0, 2))
	ingest(t, s, shard(5, 1)) // pending across the reload too
	ingest(t, s, shard(2, 3))
	before, err := s.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := before.Merged.SummaryJSON(results.ByChannel)
	if err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	after, err := re.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if !after.Complete || after.Members != 3 {
		t.Fatalf("reload: complete=%v members=%d", after.Complete, after.Members)
	}
	gotJSON, err := after.Merged.SummaryJSON(results.ByChannel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Error("reloaded store renders different bytes")
	}
	// Replayed duplicates stay idempotent.
	if r := ingest(t, re, shard(0, 2)); !r.Duplicate {
		t.Fatal("reloaded store does not recognize its own object")
	}
}
