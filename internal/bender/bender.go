// Package bender is the simulator's stand-in for the DRAM Bender FPGA
// testing infrastructure the paper uses: a small instruction set for DRAM
// command sequences, a program builder that inserts the waits the timing
// rules require, a text assembler/disassembler, and an interpreter that
// executes programs against the simulated HBM2 device at 1.66 ns command
// clock resolution.
//
// Like the real infrastructure, programs express tight activation loops
// with a LOOP instruction; the interpreter recognizes pure ACT/PRE hammer
// loops and applies them in bulk so hammering 256K times costs O(1)
// simulation work per loop instead of O(n) (see run.go).
package bender

import (
	"fmt"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

// Op enumerates the instruction set.
type Op uint8

// Instruction opcodes.
const (
	OpAct     Op = iota + 1 // activate a row: ch pc bank row
	OpPre                   // precharge a bank: ch pc bank
	OpPreA                  // precharge all banks in a pseudo channel: ch pc
	OpRd                    // read a column into the result FIFO: ch pc bank col
	OpWr                    // write a column from the data table: ch pc bank col data
	OpRef                   // periodic refresh: ch pc
	OpMRS                   // mode register set: ch reg value
	OpWait                  // advance time by Arg picoseconds
	OpLoop                  // repeat the block until the matching OpEndLoop Arg times
	OpEndLoop               // close the innermost OpLoop block
	OpEnd                   // stop execution
)

// String returns the assembly mnemonic.
func (o Op) String() string {
	switch o {
	case OpAct:
		return "act"
	case OpPre:
		return "pre"
	case OpPreA:
		return "prea"
	case OpRd:
		return "rd"
	case OpWr:
		return "wr"
	case OpRef:
		return "ref"
	case OpMRS:
		return "mrs"
	case OpWait:
		return "wait"
	case OpLoop:
		return "loop"
	case OpEndLoop:
		return "endloop"
	case OpEnd:
		return "end"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Instr is one instruction. Field use depends on Op:
//
//	OpAct:  Ch, PC, Bank, Row
//	OpPre:  Ch, PC, Bank
//	OpPreA: Ch, PC
//	OpRd:   Ch, PC, Bank, Col
//	OpWr:   Ch, PC, Bank, Col, Data (index into Program.Data)
//	OpRef:  Ch, PC
//	OpMRS:  Ch, Row (register index), Arg (value)
//	OpWait: Arg (picoseconds)
//	OpLoop: Arg (iteration count)
type Instr struct {
	Op           Op
	Ch, PC, Bank int
	Row, Col     int
	Arg          int64
	Data         int
}

// Program is an executable command sequence plus its write-data table.
type Program struct {
	Instrs []Instr
	// Data holds write payloads referenced by OpWr instructions. Each
	// entry must be exactly one column long.
	Data [][]byte

	// validFor caches the geometry the program last validated against, so
	// re-running the same program (the harness's steady state) skips the
	// per-instruction walk. Mutating Instrs/Data after validation is
	// outside the API contract.
	validFor addr.Geometry
	valid    bool
}

// valErr formats a per-instruction validation error. A plain function
// (rather than a closure in the validation loop) keeps the happy path
// allocation-free.
func valErr(i int, op Op, f string, args ...any) error {
	return fmt.Errorf("bender: instr %d (%s): %s", i, op, fmt.Sprintf(f, args...))
}

// Validate checks structural well-formedness against a geometry: operand
// ranges, loop nesting, data table references and payload sizes. A
// successful validation is cached per geometry, so the runner's
// revalidation on every Run is a no-op for already-checked programs.
func (p *Program) Validate(g addr.Geometry) error {
	if p.valid && p.validFor == g {
		return nil
	}
	depth := 0
	for i, in := range p.Instrs {
		switch in.Op {
		case OpAct:
			if !validBank(g, in) {
				return valErr(i, in.Op, "bank ch%d.pc%d.ba%d out of range", in.Ch, in.PC, in.Bank)
			}
			if in.Row < 0 || in.Row >= g.Rows {
				return valErr(i, in.Op, "row %d out of range", in.Row)
			}
		case OpPre:
			if !validBank(g, in) {
				return valErr(i, in.Op, "bank out of range")
			}
		case OpPreA, OpRef:
			if in.Ch < 0 || in.Ch >= g.Channels || in.PC < 0 || in.PC >= g.PseudoChannels {
				return valErr(i, in.Op, "pseudo channel ch%d.pc%d out of range", in.Ch, in.PC)
			}
		case OpRd:
			if !validBank(g, in) || in.Col < 0 || in.Col >= g.Columns {
				return valErr(i, in.Op, "bank/column out of range")
			}
		case OpWr:
			if !validBank(g, in) || in.Col < 0 || in.Col >= g.Columns {
				return valErr(i, in.Op, "bank/column out of range")
			}
			if in.Data < 0 || in.Data >= len(p.Data) {
				return valErr(i, in.Op, "data index %d outside table of %d", in.Data, len(p.Data))
			}
			if len(p.Data[in.Data]) != g.ColumnBytes {
				return valErr(i, in.Op, "payload %d is %d bytes, column holds %d", in.Data, len(p.Data[in.Data]), g.ColumnBytes)
			}
		case OpMRS:
			if in.Ch < 0 || in.Ch >= g.Channels {
				return valErr(i, in.Op, "channel out of range")
			}
			if in.Row < 0 {
				return valErr(i, in.Op, "negative register index")
			}
		case OpWait:
			if in.Arg < 0 {
				return valErr(i, in.Op, "negative wait")
			}
		case OpLoop:
			if in.Arg <= 0 {
				return valErr(i, in.Op, "loop count %d must be positive", in.Arg)
			}
			depth++
		case OpEndLoop:
			depth--
			if depth < 0 {
				return valErr(i, in.Op, "endloop without loop")
			}
		case OpEnd:
			if depth != 0 {
				return valErr(i, in.Op, "end inside loop")
			}
		default:
			return valErr(i, in.Op, "unknown opcode")
		}
	}
	if depth != 0 {
		return fmt.Errorf("bender: %d unclosed loop(s)", depth)
	}
	p.validFor = g
	p.valid = true
	return nil
}

func validBank(g addr.Geometry, in Instr) bool {
	return addr.BankAddr{Channel: in.Ch, PseudoChannel: in.PC, Bank: in.Bank}.Valid(g)
}

// Builder assembles programs with the inter-command waits the timing
// parameters require, the way the DRAM Bender host library does.
//
// A Builder can be reused: Reset clears the instruction stream but keeps
// the interned write-payload table and all backing capacity, so a harness
// assembling one program per measurement allocates nothing in steady
// state. The *Program returned by Build aliases the Builder's buffers and
// is valid until the next Reset or instruction emit.
type Builder struct {
	timing config.Timing
	geom   addr.Geometry
	prog   Program
	// dataIndex deduplicates write payloads; it persists across Reset so
	// recurring fill patterns intern once per Builder, not per program.
	dataIndex map[string]int
	// built is the reusable Program handed out by Build.
	built Program
	// fillBuf is the reusable payload scratch of WriteRowFill.
	fillBuf []byte
}

// NewBuilder returns a builder for a device with the given timing and
// geometry.
func NewBuilder(t config.Timing, g addr.Geometry) *Builder {
	return &Builder{timing: t, geom: g, dataIndex: make(map[string]int)}
}

// Reset clears the instruction stream for assembling a new program. The
// interned payload table and instruction capacity are retained. Programs
// returned by earlier Build calls are invalidated.
func (b *Builder) Reset() {
	b.prog.Instrs = b.prog.Instrs[:0]
	b.prog.valid = false
}

// Build finalizes and validates the program. The returned Program aliases
// the Builder's buffers: it is valid until the next Reset or emit, and a
// subsequent Build call reuses the same Program value.
func (b *Builder) Build() (*Program, error) {
	b.built = b.prog
	if err := b.built.Validate(b.geom); err != nil {
		return nil, err
	}
	return &b.built, nil
}

func (b *Builder) emit(in Instr) *Builder {
	b.prog.Instrs = append(b.prog.Instrs, in)
	return b
}

// Len reports the number of instructions emitted so far; batched callers
// record it after each probe block as a RunSegments boundary.
func (b *Builder) Len() int { return len(b.prog.Instrs) }

// Act emits a raw activate without waits.
func (b *Builder) Act(ba addr.BankAddr, row int) *Builder {
	return b.emit(Instr{Op: OpAct, Ch: ba.Channel, PC: ba.PseudoChannel, Bank: ba.Bank, Row: row})
}

// Pre emits a raw precharge without waits.
func (b *Builder) Pre(ba addr.BankAddr) *Builder {
	return b.emit(Instr{Op: OpPre, Ch: ba.Channel, PC: ba.PseudoChannel, Bank: ba.Bank})
}

// PreA emits a precharge-all for a pseudo channel.
func (b *Builder) PreA(ch, pc int) *Builder {
	return b.emit(Instr{Op: OpPreA, Ch: ch, PC: pc})
}

// Rd emits a column read.
func (b *Builder) Rd(ba addr.BankAddr, col int) *Builder {
	return b.emit(Instr{Op: OpRd, Ch: ba.Channel, PC: ba.PseudoChannel, Bank: ba.Bank, Col: col})
}

// Wr emits a column write, interning the payload in the data table. The
// map lookup with an inline string conversion is allocation-free on an
// intern hit, which is every write after a pattern's first use.
func (b *Builder) Wr(ba addr.BankAddr, col int, payload []byte) *Builder {
	idx, ok := b.dataIndex[string(payload)]
	if !ok {
		idx = len(b.prog.Data)
		stored := append([]byte(nil), payload...)
		b.prog.Data = append(b.prog.Data, stored)
		b.dataIndex[string(stored)] = idx
	}
	return b.emit(Instr{Op: OpWr, Ch: ba.Channel, PC: ba.PseudoChannel, Bank: ba.Bank, Col: col, Data: idx})
}

// Ref emits a periodic refresh.
func (b *Builder) Ref(ch, pc int) *Builder {
	return b.emit(Instr{Op: OpRef, Ch: ch, PC: pc})
}

// MRS emits a mode register write.
func (b *Builder) MRS(ch, reg int, value uint32) *Builder {
	return b.emit(Instr{Op: OpMRS, Ch: ch, Row: reg, Arg: int64(value)})
}

// Wait emits a time advance of ps picoseconds.
func (b *Builder) Wait(ps int64) *Builder {
	if ps > 0 {
		b.emit(Instr{Op: OpWait, Arg: ps})
	}
	return b
}

// Loop emits a loop of n iterations around the instructions body adds.
func (b *Builder) Loop(n int64, body func(*Builder)) *Builder {
	b.emit(Instr{Op: OpLoop, Arg: n})
	body(b)
	return b.emit(Instr{Op: OpEndLoop})
}

// End emits an explicit end-of-program marker.
func (b *Builder) End() *Builder { return b.emit(Instr{Op: OpEnd}) }

// --- High-level helpers mirroring the paper's methodology ---

// DisableECC clears the on-die ECC enable bit of every channel, step 4 of
// the paper's interference-elimination setup.
func (b *Builder) DisableECC() *Builder {
	for ch := 0; ch < b.geom.Channels; ch++ {
		b.MRS(ch, eccModeRegister, 0)
	}
	return b
}

// eccModeRegister mirrors hbm.MRECC without importing the device package
// (bender targets an interface, not the concrete device).
const eccModeRegister = 4

// WriteRowFill opens a row, fills every column with the byte pattern, and
// closes the row, with all required waits.
func (b *Builder) WriteRowFill(ba addr.BankAddr, row int, fill byte) *Builder {
	if cap(b.fillBuf) < b.geom.ColumnBytes {
		b.fillBuf = make([]byte, b.geom.ColumnBytes)
	}
	payload := b.fillBuf[:b.geom.ColumnBytes]
	for i := range payload {
		payload[i] = fill
	}
	b.Act(ba, row)
	b.Wait(b.timing.TRCD - b.timing.TCK)
	for col := 0; col < b.geom.Columns; col++ {
		b.Wr(ba, col, payload)
	}
	b.closeRow(ba, int64(b.geom.Columns+1))
	return b
}

// ReadRowOut opens a row, reads every column into the result FIFO, and
// closes the row.
func (b *Builder) ReadRowOut(ba addr.BankAddr, row int) *Builder {
	b.Act(ba, row)
	b.Wait(b.timing.TRCD - b.timing.TCK)
	for col := 0; col < b.geom.Columns; col++ {
		b.Rd(ba, col)
	}
	b.closeRow(ba, int64(b.geom.Columns+1))
	return b
}

// closeRow pads to tRAS from the activate (which happened cmds commands
// ago), precharges, and waits out tRP.
func (b *Builder) closeRow(ba addr.BankAddr, cmds int64) *Builder {
	elapsed := cmds*b.timing.TCK + (b.timing.TRCD - b.timing.TCK)
	b.Wait(b.timing.TRAS - elapsed)
	b.Pre(ba)
	b.Wait(b.timing.TRP)
	return b
}

// HammerDouble emits the paper's double-sided RowHammer access pattern:
// n iterations of alternating activations of the two aggressor rows, each
// activation held for tRAS and separated by tRP. One iteration is one
// "hammer" (a pair of activations).
func (b *Builder) HammerDouble(ba addr.BankAddr, rowA, rowB int, n int64) *Builder {
	return b.Loop(n, func(b *Builder) {
		for _, r := range []int{rowA, rowB} {
			b.Act(ba, r)
			b.Wait(b.timing.TRAS - b.timing.TCK)
			b.Pre(ba)
			b.Wait(b.timing.TRP - b.timing.TCK)
		}
	})
}

// HammerSingle emits n single-sided activations of one aggressor row.
func (b *Builder) HammerSingle(ba addr.BankAddr, row int, n int64) *Builder {
	return b.Loop(n, func(b *Builder) {
		b.Act(ba, row)
		b.Wait(b.timing.TRAS - b.timing.TCK)
		b.Pre(ba)
		b.Wait(b.timing.TRP - b.timing.TCK)
	})
}

// HammerDoubleHold is HammerDouble with each activation held open for
// holdPS (>= tRAS) before its precharge — the RowPress access pattern,
// which the paper lists as future characterization work.
func (b *Builder) HammerDoubleHold(ba addr.BankAddr, rowA, rowB int, n, holdPS int64) *Builder {
	if holdPS < b.timing.TRAS {
		holdPS = b.timing.TRAS
	}
	return b.Loop(n, func(b *Builder) {
		for _, r := range []int{rowA, rowB} {
			b.Act(ba, r)
			b.Wait(holdPS - b.timing.TCK)
			b.Pre(ba)
			b.Wait(b.timing.TRP - b.timing.TCK)
		}
	})
}

// RefreshBurst emits n REF commands to a pseudo channel, spaced tRFC
// apart (the minimum legal spacing).
func (b *Builder) RefreshBurst(ch, pc int, n int64) *Builder {
	return b.Loop(n, func(b *Builder) {
		b.Ref(ch, pc)
		b.Wait(b.timing.TRFC - b.timing.TCK)
	})
}
