package bender

import (
	"fmt"
	"io"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

// Target is the device-side interface the interpreter drives. It is the
// command-level surface of the simulated HBM2 stack; *hbm.Device
// implements it.
type Target interface {
	Activate(b addr.BankAddr, row int) error
	Precharge(b addr.BankAddr) error
	PrechargeAll(ch, pc int) error
	Read(b addr.BankAddr, col int) ([]byte, error)
	Write(b addr.BankAddr, col int, data []byte) error
	Refresh(ch, pc int) error
	WriteModeRegister(ch, index int, value uint32) error
	AdvanceTime(ps int64) error
	HammerPairHold(b addr.BankAddr, rowA, rowB, n int, holdPS int64) error
	HammerSingleHold(b addr.BankAddr, row, n int, holdPS int64) error
	Now() int64
}

// ReaderInto is the optional Target extension the interpreter prefers for
// column reads: the device copies into a runner-owned arena instead of
// allocating a fresh slice per read. *hbm.Device implements it.
type ReaderInto interface {
	ReadInto(b addr.BankAddr, col int, dst []byte) error
}

// Result carries a program's outputs.
type Result struct {
	// Reads holds the data of every OpRd in program order (the read FIFO).
	Reads [][]byte
	// Elapsed is the simulated time the program occupied, in picoseconds.
	Elapsed int64
}

// Segment is one slice of a segmented run (see RunSegments): the
// half-open range of Result.Reads it produced and the simulated time it
// occupied. Because every device command advances the clock
// deterministically, a segment's Elapsed equals what the same
// instructions would have measured as a standalone program.
type Segment struct {
	// Reads is the [start, end) index range into Result.Reads.
	Reads [2]int
	// Elapsed is the segment's simulated duration in picoseconds.
	Elapsed int64
}

// Runner executes programs against a Target. A Runner owns reusable
// execution state (the result, the read arena, the loop bookkeeping), so
// steady-state program execution allocates nothing: the Result returned
// by Run — including every Reads entry — is valid only until the next Run
// on the same Runner.
type Runner struct {
	// Timing lets the loop fast path prove a hammer loop is
	// timing-legal and reproduce its exact simulated duration. With a
	// zero Timing the fast path is disabled.
	Timing config.Timing
	// DisableFastPath forces per-iteration execution of all loops. The
	// fast path is semantically equivalent (asserted by tests and an
	// ablation benchmark); disabling it exists for those comparisons.
	DisableFastPath bool
	// Trace, when non-nil, receives one line per executed command (and
	// one summary line per bulk-applied hammer loop), timestamped with
	// the simulated clock — the command log a logic analyzer on the
	// DRAM bus would capture.
	Trace io.Writer

	// Reusable execution scratch (see the type comment).
	res     Result
	readBuf []byte
	jumps   []int32
	frames  []loopFrame

	// Segmented-run state (see RunSegments); segBounds is nil during a
	// plain Run, which reduces the per-instruction overhead to one
	// length comparison.
	segBounds   []int
	segIdx      int
	segs        []Segment
	segCheck    func() error
	segLastRead int
	segLastNow  int64
}

// loopFrame tracks one active loop: where its body starts, its total
// iteration count, and how many iterations remain.
type loopFrame struct {
	body  int
	total int64
	left  int64
}

func (r *Runner) trace(t Target, format string, args ...any) {
	if r.Trace == nil {
		return
	}
	fmt.Fprintf(r.Trace, "[%14d ps] %s\n", t.Now(), fmt.Sprintf(format, args...))
}

// NewRunner returns a Runner with the loop fast path armed for the given
// timing parameters.
func NewRunner(t config.Timing) *Runner { return &Runner{Timing: t} }

// Run validates and executes prog against t. The returned Result and its
// Reads slices are owned by the Runner and valid until the next Run.
func (r *Runner) Run(t Target, g addr.Geometry, prog *Program) (*Result, error) {
	if err := prog.Validate(g); err != nil {
		return nil, err
	}
	if err := r.buildJumps(prog.Instrs); err != nil {
		return nil, err
	}
	r.res.Reads = r.res.Reads[:0]
	r.res.Elapsed = 0
	r.readBuf = r.readBuf[:0]
	r.frames = r.frames[:0]
	start := t.Now()
	if err := r.exec(t, g, prog); err != nil {
		return nil, err
	}
	r.res.Elapsed = t.Now() - start
	return &r.res, nil
}

// RunSegments is Run with intra-program boundaries: bounds[j] is the
// instruction index (strictly ascending, at top level — not inside a
// loop body) at which segment j ends, and the returned Segments record
// each segment's read range and simulated duration. This is the batched
// probe primitive: concatenating k probe programs and running them with
// k boundaries pays validation, jump building, and dispatch setup once
// while still attributing reads and elapsed time per probe.
//
// check, when non-nil, runs at every boundary except the last; a non-nil
// error aborts execution with that error (the batched equivalent of
// checking cancellation between probes). The Result and Segments are
// owned by the Runner and valid until the next Run/RunSegments.
func (r *Runner) RunSegments(t Target, g addr.Geometry, prog *Program, bounds []int,
	check func() error) (*Result, []Segment, error) {
	for j, b := range bounds {
		if b < 0 || b > len(prog.Instrs) || (j > 0 && b <= bounds[j-1]) {
			return nil, nil, fmt.Errorf("bender: segment bounds not ascending within program")
		}
	}
	if err := prog.Validate(g); err != nil {
		return nil, nil, err
	}
	if err := r.buildJumps(prog.Instrs); err != nil {
		return nil, nil, err
	}
	r.res.Reads = r.res.Reads[:0]
	r.res.Elapsed = 0
	r.readBuf = r.readBuf[:0]
	r.frames = r.frames[:0]
	r.segBounds = bounds
	r.segIdx = 0
	r.segs = r.segs[:0]
	r.segCheck = check
	r.segLastRead = 0
	start := t.Now()
	r.segLastNow = start
	err := r.exec(t, g, prog)
	if err == nil {
		// Close any boundaries at or past the final instruction (the
		// last bound is typically len(Instrs)). No check between them:
		// all work is already done.
		for r.segIdx < len(r.segBounds) {
			r.markSegment(t)
		}
		r.res.Elapsed = t.Now() - start
	}
	r.segBounds = nil
	r.segCheck = nil
	if err != nil {
		return nil, nil, err
	}
	return &r.res, r.segs, nil
}

// markSegment closes the current segment at the simulated present.
func (r *Runner) markSegment(t Target) {
	now := t.Now()
	r.segs = append(r.segs, Segment{
		Reads:   [2]int{r.segLastRead, len(r.res.Reads)},
		Elapsed: now - r.segLastNow,
	})
	r.segLastRead = len(r.res.Reads)
	r.segLastNow = now
	r.segIdx++
}

// buildJumps fills r.jumps so that for every OpLoop at index i,
// r.jumps[i] is the index of its matching OpEndLoop. Validation already
// guaranteed balanced nesting.
func (r *Runner) buildJumps(instrs []Instr) error {
	if cap(r.jumps) < len(instrs) {
		r.jumps = make([]int32, len(instrs))
	}
	r.jumps = r.jumps[:len(instrs)]
	stack := r.frames[:0] // borrow the frame scratch as a loop-index stack
	for i, in := range instrs {
		switch in.Op {
		case OpLoop:
			stack = append(stack, loopFrame{body: i})
		case OpEndLoop:
			if len(stack) == 0 {
				return fmt.Errorf("bender: endloop without loop")
			}
			r.jumps[stack[len(stack)-1].body] = int32(i)
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("bender: unterminated loop")
	}
	r.frames = stack[:0] // keep any capacity the stack grew
	return nil
}

// wrapLoopErr decorates an execution error with the iteration number of
// every enclosing loop, innermost first, matching the recursive
// interpreter's historical error format.
func (r *Runner) wrapLoopErr(err error) error {
	for i := len(r.frames) - 1; i >= 0; i-- {
		f := r.frames[i]
		err = fmt.Errorf("loop iteration %d: %w", f.total-f.left, err)
	}
	return err
}

// exec runs the whole program with an explicit loop stack — no per-run
// tree construction, no recursion, no allocation.
func (r *Runner) exec(t Target, g addr.Geometry, prog *Program) error {
	instrs := prog.Instrs
	ri, hasRI := t.(ReaderInto)
	fastOK := !r.DisableFastPath && r.Timing.TCK > 0
	ip := 0
	for ip < len(instrs) {
		for r.segIdx < len(r.segBounds) && ip >= r.segBounds[r.segIdx] {
			r.markSegment(t)
			if r.segCheck != nil {
				if err := r.segCheck(); err != nil {
					return err
				}
			}
		}
		in := instrs[ip]
		switch in.Op {
		case OpLoop:
			end := int(r.jumps[ip])
			if fastOK {
				if h, ok := matchHammerLoop(instrs[ip+1 : end]); ok && h.uniform {
					h.tck = r.Timing.TCK
					if r.fastPathLegal(h) {
						if err := r.runHammerFast(t, h, in.Arg); err != nil {
							return r.wrapLoopErr(err)
						}
						ip = end + 1
						continue
					}
				}
			}
			r.frames = append(r.frames, loopFrame{body: ip + 1, total: in.Arg, left: in.Arg})
			ip++
		case OpEndLoop:
			f := &r.frames[len(r.frames)-1]
			f.left--
			if f.left > 0 {
				ip = f.body
			} else {
				r.frames = r.frames[:len(r.frames)-1]
				ip++
			}
		case OpEnd:
			// Execution halts; trailing instructions (if any) are ignored,
			// matching the original recursive interpreter's semantics.
			return nil
		case OpRd:
			ba := addr.BankAddr{Channel: in.Ch, PseudoChannel: in.PC, Bank: in.Bank}
			if r.Trace != nil {
				r.traceInstr(t, in)
			}
			var data []byte
			var err error
			if hasRI {
				data = r.arenaAlloc(g.ColumnBytes)
				err = ri.ReadInto(ba, in.Col, data)
			} else {
				data, err = t.Read(ba, in.Col)
			}
			if err != nil {
				return r.wrapLoopErr(err)
			}
			r.res.Reads = append(r.res.Reads, data)
			ip++
		default:
			if err := r.execInstr(t, prog, in); err != nil {
				return r.wrapLoopErr(err)
			}
			ip++
		}
	}
	return nil
}

// arenaAlloc carves n bytes out of the runner's read arena. When a block
// fills up, a larger one is started; slices handed out earlier keep their
// old backing block alive, so they stay valid until the next Run.
func (r *Runner) arenaAlloc(n int) []byte {
	if len(r.readBuf)+n > cap(r.readBuf) {
		blockSize := 2 * (len(r.readBuf) + n)
		if blockSize < 4096 {
			blockSize = 4096
		}
		r.readBuf = make([]byte, 0, blockSize)
	}
	off := len(r.readBuf)
	r.readBuf = r.readBuf[:off+n]
	return r.readBuf[off : off+n : off+n]
}

// fastPathLegal checks that the loop body satisfies tRAS and tRP on its
// own, so bulk application cannot mask a timing bug, and that the bulk
// path's hold-derived activation period never exceeds the body's actual
// per-iteration time (the pad must be non-negative).
func (r *Runner) fastPathLegal(h hammerShape) bool {
	tm := r.Timing
	if h.minActHold < tm.TRAS-tm.TCK || h.minPreGap < tm.TRP-tm.TCK {
		return false
	}
	slowPer := h.perIterWaits + int64(h.nrows)*2*tm.TCK
	return slowPer >= int64(h.nrows)*(h.hold()+tm.TRP)
}

// hold returns the per-activation open time the bulk path should model:
// the wait between ACT and PRE plus the ACT command cycle itself.
func (h hammerShape) hold() int64 { return h.minActHold + h.tck }

func (r *Runner) execInstr(t Target, prog *Program, in Instr) error {
	ba := addr.BankAddr{Channel: in.Ch, PseudoChannel: in.PC, Bank: in.Bank}
	if r.Trace != nil {
		r.traceInstr(t, in)
	}
	switch in.Op {
	case OpAct:
		return t.Activate(ba, in.Row)
	case OpPre:
		return t.Precharge(ba)
	case OpPreA:
		return t.PrechargeAll(in.Ch, in.PC)
	case OpWr:
		return t.Write(ba, in.Col, prog.Data[in.Data])
	case OpRef:
		return t.Refresh(in.Ch, in.PC)
	case OpMRS:
		return t.WriteModeRegister(in.Ch, in.Row, uint32(in.Arg))
	case OpWait:
		return t.AdvanceTime(in.Arg)
	default:
		return fmt.Errorf("bender: cannot execute %s", in.Op)
	}
}

// hammerShape describes a recognized pure hammer loop.
type hammerShape struct {
	bank  addr.BankAddr
	rows  [2]int // 1 (single-sided) or 2 (double-sided) aggressors
	nrows int
	// perIterWaits is the sum of explicit waits in one iteration.
	perIterWaits int64
	// minActHold is the smallest wait between an ACT and its PRE;
	// minPreGap the smallest wait after a PRE. RowPress amplification
	// depends on the hold time, so all ACT holds in the body must agree
	// for the bulk path to apply (uniform is true then).
	minActHold int64
	minPreGap  int64
	uniform    bool
	tck        int64
}

// matchHammerLoop recognizes the canonical hammer body the paper's tests
// use: per aggressor, ACT row / WAIT / PRE / WAIT, all on one bank, with
// one or two distinct rows. Anything else falls back to per-iteration
// execution.
func matchHammerLoop(body []Instr) (hammerShape, bool) {
	var h hammerShape
	if len(body)%4 != 0 || len(body) == 0 || len(body) > 8 {
		return h, false
	}
	groups := len(body) / 4
	for gi := 0; gi < groups; gi++ {
		g := body[gi*4 : gi*4+4]
		if g[0].Op != OpAct || g[1].Op != OpWait || g[2].Op != OpPre || g[3].Op != OpWait {
			return h, false
		}
		ba := addr.BankAddr{Channel: g[0].Ch, PseudoChannel: g[0].PC, Bank: g[0].Bank}
		pb := addr.BankAddr{Channel: g[2].Ch, PseudoChannel: g[2].PC, Bank: g[2].Bank}
		if ba != pb {
			return h, false
		}
		if gi == 0 {
			h.bank = ba
			h.minActHold = g[1].Arg
			h.minPreGap = g[3].Arg
			h.uniform = true
		} else if ba != h.bank {
			return h, false
		}
		if g[1].Arg != h.minActHold {
			h.uniform = false
		}
		if g[1].Arg < h.minActHold {
			h.minActHold = g[1].Arg
		}
		if g[3].Arg < h.minPreGap {
			h.minPreGap = g[3].Arg
		}
		h.rows[h.nrows] = g[0].Row
		h.nrows++
		h.perIterWaits += g[1].Arg + g[3].Arg
	}
	switch h.nrows {
	case 1:
	case 2:
		if h.rows[0] == h.rows[1] {
			return h, false
		}
	default:
		return h, false
	}
	return h, true
}

// traceInstr renders one instruction for the trace log.
func (r *Runner) traceInstr(t Target, in Instr) {
	switch in.Op {
	case OpAct:
		r.trace(t, "act  ch%d.pc%d.ba%d row %d", in.Ch, in.PC, in.Bank, in.Row)
	case OpPre:
		r.trace(t, "pre  ch%d.pc%d.ba%d", in.Ch, in.PC, in.Bank)
	case OpPreA:
		r.trace(t, "prea ch%d.pc%d", in.Ch, in.PC)
	case OpRd:
		r.trace(t, "rd   ch%d.pc%d.ba%d col %d", in.Ch, in.PC, in.Bank, in.Col)
	case OpWr:
		r.trace(t, "wr   ch%d.pc%d.ba%d col %d (payload %d)", in.Ch, in.PC, in.Bank, in.Col, in.Data)
	case OpRef:
		r.trace(t, "ref  ch%d.pc%d", in.Ch, in.PC)
	case OpMRS:
		r.trace(t, "mrs  ch%d MR%d = %#x", in.Ch, in.Row, uint32(in.Arg))
	case OpWait:
		r.trace(t, "wait %d ps", in.Arg)
	}
}

// runHammerFast applies a recognized hammer loop in bulk, then pads the
// clock so the total elapsed time matches per-iteration execution
// exactly. fastPathLegal already proved the pad is non-negative.
func (r *Runner) runHammerFast(t Target, h hammerShape, count int64) error {
	n := int(count)
	hold := h.hold()
	if r.Trace != nil { // guard so the variadic args are not boxed per call
		if h.nrows == 2 {
			r.trace(t, "loop %dx: double-sided hammer %v rows %d/%d (hold %d ps, bulk)",
				count, h.bank, h.rows[0], h.rows[1], hold)
		} else {
			r.trace(t, "loop %dx: single-sided hammer %v row %d (hold %d ps, bulk)",
				count, h.bank, h.rows[0], hold)
		}
	}
	var err error
	if h.nrows == 2 {
		err = t.HammerPairHold(h.bank, h.rows[0], h.rows[1], n, hold)
	} else {
		err = t.HammerSingleHold(h.bank, h.rows[0], n, hold)
	}
	if err != nil {
		return err
	}
	tm := r.Timing
	slowPer := h.perIterWaits + int64(h.nrows)*2*tm.TCK
	bulkPer := int64(h.nrows) * (hold + tm.TRP)
	if pad := count * (slowPer - bulkPer); pad > 0 {
		return t.AdvanceTime(pad)
	}
	return nil
}
