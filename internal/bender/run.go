package bender

import (
	"fmt"
	"io"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/config"
)

// Target is the device-side interface the interpreter drives. It is the
// command-level surface of the simulated HBM2 stack; *hbm.Device
// implements it.
type Target interface {
	Activate(b addr.BankAddr, row int) error
	Precharge(b addr.BankAddr) error
	PrechargeAll(ch, pc int) error
	Read(b addr.BankAddr, col int) ([]byte, error)
	Write(b addr.BankAddr, col int, data []byte) error
	Refresh(ch, pc int) error
	WriteModeRegister(ch, index int, value uint32) error
	AdvanceTime(ps int64) error
	HammerPairHold(b addr.BankAddr, rowA, rowB, n int, holdPS int64) error
	HammerSingleHold(b addr.BankAddr, row, n int, holdPS int64) error
	Now() int64
}

// Result carries a program's outputs.
type Result struct {
	// Reads holds the data of every OpRd in program order (the read FIFO).
	Reads [][]byte
	// Elapsed is the simulated time the program occupied, in picoseconds.
	Elapsed int64
}

// Runner executes programs against a Target.
type Runner struct {
	// Timing lets the loop fast path prove a hammer loop is
	// timing-legal and reproduce its exact simulated duration. With a
	// zero Timing the fast path is disabled.
	Timing config.Timing
	// DisableFastPath forces per-iteration execution of all loops. The
	// fast path is semantically equivalent (asserted by tests and an
	// ablation benchmark); disabling it exists for those comparisons.
	DisableFastPath bool
	// Trace, when non-nil, receives one line per executed command (and
	// one summary line per bulk-applied hammer loop), timestamped with
	// the simulated clock — the command log a logic analyzer on the
	// DRAM bus would capture.
	Trace io.Writer
}

func (r *Runner) trace(t Target, format string, args ...any) {
	if r.Trace == nil {
		return
	}
	fmt.Fprintf(r.Trace, "[%14d ps] %s\n", t.Now(), fmt.Sprintf(format, args...))
}

// NewRunner returns a Runner with the loop fast path armed for the given
// timing parameters.
func NewRunner(t config.Timing) *Runner { return &Runner{Timing: t} }

// Run validates and executes prog against t.
func (r *Runner) Run(t Target, g addr.Geometry, prog *Program) (*Result, error) {
	if err := prog.Validate(g); err != nil {
		return nil, err
	}
	tree, err := parseBlocks(prog.Instrs)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	start := t.Now()
	if err := r.execBlock(t, prog, tree, res); err != nil {
		return nil, err
	}
	res.Elapsed = t.Now() - start
	return res, nil
}

// node is either a single instruction (body == nil) or a loop block.
type node struct {
	in   Instr
	body []node // loop body when in.Op == OpLoop
}

func parseBlocks(instrs []Instr) ([]node, error) {
	nodes, rest, err := parseUntil(instrs, false)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("bender: trailing instructions after end")
	}
	return nodes, nil
}

func parseUntil(instrs []Instr, inLoop bool) (nodes []node, rest []Instr, err error) {
	for len(instrs) > 0 {
		in := instrs[0]
		instrs = instrs[1:]
		switch in.Op {
		case OpLoop:
			body, r, err := parseUntil(instrs, true)
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, node{in: in, body: body})
			instrs = r
		case OpEndLoop:
			if !inLoop {
				return nil, nil, fmt.Errorf("bender: endloop without loop")
			}
			return nodes, instrs, nil
		case OpEnd:
			if inLoop {
				return nil, nil, fmt.Errorf("bender: end inside loop")
			}
			return nodes, nil, nil
		default:
			nodes = append(nodes, node{in: in})
		}
	}
	if inLoop {
		return nil, nil, fmt.Errorf("bender: unterminated loop")
	}
	return nodes, nil, nil
}

func (r *Runner) execBlock(t Target, prog *Program, nodes []node, res *Result) error {
	for _, n := range nodes {
		if n.in.Op == OpLoop {
			if err := r.execLoop(t, prog, n, res); err != nil {
				return err
			}
			continue
		}
		if err := r.execInstr(t, prog, n.in, res); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) execLoop(t Target, prog *Program, n node, res *Result) error {
	if !r.DisableFastPath && r.Timing.TCK > 0 {
		if h, ok := matchHammerLoop(n); ok && h.uniform {
			h.tck = r.Timing.TCK
			if r.fastPathLegal(h) {
				return r.runHammerFast(t, h, n.in.Arg)
			}
		}
	}
	for i := int64(0); i < n.in.Arg; i++ {
		if err := r.execBlock(t, prog, n.body, res); err != nil {
			return fmt.Errorf("loop iteration %d: %w", i, err)
		}
	}
	return nil
}

// fastPathLegal checks that the loop body satisfies tRAS and tRP on its
// own, so bulk application cannot mask a timing bug, and that the bulk
// path's hold-derived activation period never exceeds the body's actual
// per-iteration time (the pad must be non-negative).
func (r *Runner) fastPathLegal(h hammerShape) bool {
	tm := r.Timing
	if h.minActHold < tm.TRAS-tm.TCK || h.minPreGap < tm.TRP-tm.TCK {
		return false
	}
	slowPer := h.perIterWaits + int64(len(h.rows))*2*tm.TCK
	return slowPer >= int64(len(h.rows))*(h.hold()+tm.TRP)
}

// hold returns the per-activation open time the bulk path should model:
// the wait between ACT and PRE plus the ACT command cycle itself.
func (h hammerShape) hold() int64 { return h.minActHold + h.tck }

func (r *Runner) execInstr(t Target, prog *Program, in Instr, res *Result) error {
	ba := addr.BankAddr{Channel: in.Ch, PseudoChannel: in.PC, Bank: in.Bank}
	if r.Trace != nil {
		r.traceInstr(t, in)
	}
	switch in.Op {
	case OpAct:
		return t.Activate(ba, in.Row)
	case OpPre:
		return t.Precharge(ba)
	case OpPreA:
		return t.PrechargeAll(in.Ch, in.PC)
	case OpRd:
		data, err := t.Read(ba, in.Col)
		if err != nil {
			return err
		}
		res.Reads = append(res.Reads, data)
		return nil
	case OpWr:
		return t.Write(ba, in.Col, prog.Data[in.Data])
	case OpRef:
		return t.Refresh(in.Ch, in.PC)
	case OpMRS:
		return t.WriteModeRegister(in.Ch, in.Row, uint32(in.Arg))
	case OpWait:
		return t.AdvanceTime(in.Arg)
	default:
		return fmt.Errorf("bender: cannot execute %s", in.Op)
	}
}

// hammerShape describes a recognized pure hammer loop.
type hammerShape struct {
	bank addr.BankAddr
	rows []int // 1 (single-sided) or 2 (double-sided) aggressors
	// perIterWaits is the sum of explicit waits in one iteration.
	perIterWaits int64
	// minActHold is the smallest wait between an ACT and its PRE;
	// minPreGap the smallest wait after a PRE. RowPress amplification
	// depends on the hold time, so all ACT holds in the body must agree
	// for the bulk path to apply (uniform is true then).
	minActHold int64
	minPreGap  int64
	uniform    bool
	tck        int64
}

// matchHammerLoop recognizes the canonical hammer body the paper's tests
// use: per aggressor, ACT row / WAIT / PRE / WAIT, all on one bank, with
// one or two distinct rows. Anything else falls back to per-iteration
// execution.
func matchHammerLoop(n node) (hammerShape, bool) {
	var h hammerShape
	body := n.body
	if len(body)%4 != 0 || len(body) == 0 || len(body) > 8 {
		return h, false
	}
	groups := len(body) / 4
	for gi := 0; gi < groups; gi++ {
		g := body[gi*4 : gi*4+4]
		if g[0].in.Op != OpAct || g[1].in.Op != OpWait || g[2].in.Op != OpPre || g[3].in.Op != OpWait {
			return h, false
		}
		ba := addr.BankAddr{Channel: g[0].in.Ch, PseudoChannel: g[0].in.PC, Bank: g[0].in.Bank}
		pb := addr.BankAddr{Channel: g[2].in.Ch, PseudoChannel: g[2].in.PC, Bank: g[2].in.Bank}
		if ba != pb {
			return h, false
		}
		if gi == 0 {
			h.bank = ba
			h.minActHold = g[1].in.Arg
			h.minPreGap = g[3].in.Arg
			h.uniform = true
		} else if ba != h.bank {
			return h, false
		}
		if g[1].in.Arg != h.minActHold {
			h.uniform = false
		}
		if g[1].in.Arg < h.minActHold {
			h.minActHold = g[1].in.Arg
		}
		if g[3].in.Arg < h.minPreGap {
			h.minPreGap = g[3].in.Arg
		}
		h.rows = append(h.rows, g[0].in.Row)
		h.perIterWaits += g[1].in.Arg + g[3].in.Arg
	}
	switch len(h.rows) {
	case 1:
	case 2:
		if h.rows[0] == h.rows[1] {
			return h, false
		}
	default:
		return h, false
	}
	return h, true
}

// traceInstr renders one instruction for the trace log.
func (r *Runner) traceInstr(t Target, in Instr) {
	switch in.Op {
	case OpAct:
		r.trace(t, "act  ch%d.pc%d.ba%d row %d", in.Ch, in.PC, in.Bank, in.Row)
	case OpPre:
		r.trace(t, "pre  ch%d.pc%d.ba%d", in.Ch, in.PC, in.Bank)
	case OpPreA:
		r.trace(t, "prea ch%d.pc%d", in.Ch, in.PC)
	case OpRd:
		r.trace(t, "rd   ch%d.pc%d.ba%d col %d", in.Ch, in.PC, in.Bank, in.Col)
	case OpWr:
		r.trace(t, "wr   ch%d.pc%d.ba%d col %d (payload %d)", in.Ch, in.PC, in.Bank, in.Col, in.Data)
	case OpRef:
		r.trace(t, "ref  ch%d.pc%d", in.Ch, in.PC)
	case OpMRS:
		r.trace(t, "mrs  ch%d MR%d = %#x", in.Ch, in.Row, uint32(in.Arg))
	case OpWait:
		r.trace(t, "wait %d ps", in.Arg)
	}
}

// runHammerFast applies a recognized hammer loop in bulk, then pads the
// clock so the total elapsed time matches per-iteration execution
// exactly. fastPathLegal already proved the pad is non-negative.
func (r *Runner) runHammerFast(t Target, h hammerShape, count int64) error {
	n := int(count)
	hold := h.hold()
	if len(h.rows) == 2 {
		r.trace(t, "loop %dx: double-sided hammer %v rows %d/%d (hold %d ps, bulk)",
			count, h.bank, h.rows[0], h.rows[1], hold)
	} else {
		r.trace(t, "loop %dx: single-sided hammer %v row %d (hold %d ps, bulk)",
			count, h.bank, h.rows[0], hold)
	}
	var err error
	if len(h.rows) == 2 {
		err = t.HammerPairHold(h.bank, h.rows[0], h.rows[1], n, hold)
	} else {
		err = t.HammerSingleHold(h.bank, h.rows[0], n, hold)
	}
	if err != nil {
		return err
	}
	tm := r.Timing
	slowPer := h.perIterWaits + int64(len(h.rows))*2*tm.TCK
	bulkPer := int64(len(h.rows)) * (hold + tm.TRP)
	if pad := count * (slowPer - bulkPer); pad > 0 {
		return t.AdvanceTime(pad)
	}
	return nil
}
