package bender_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/bender"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/hbm"
)

func newDevice(t testing.TB) *hbm.Device {
	t.Helper()
	d, err := hbm.New(config.SmallChip())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func ba(ch, pc, bank int) addr.BankAddr {
	return addr.BankAddr{Channel: ch, PseudoChannel: pc, Bank: bank}
}

func run(t testing.TB, d *hbm.Device, p *bender.Program) *bender.Result {
	t.Helper()
	r := bender.NewRunner(d.Config().Timing)
	res, err := r.Run(d, d.Geometry(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteThenReadRowViaProgram(t *testing.T) {
	d := newDevice(t)
	g := d.Geometry()
	b := bender.NewBuilder(d.Config().Timing, g)
	b.WriteRowFill(ba(1, 0, 2), 50, 0xA5)
	b.ReadRowOut(ba(1, 0, 2), 50)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, d, prog)
	if len(res.Reads) != g.Columns {
		t.Fatalf("read %d columns, want %d", len(res.Reads), g.Columns)
	}
	for col, data := range res.Reads {
		for i, v := range data {
			if v != 0xA5 {
				t.Fatalf("col %d byte %d = %#x, want 0xA5", col, i, v)
			}
		}
	}
	if res.Elapsed <= 0 {
		t.Fatal("program consumed no simulated time")
	}
}

// buildHammerProgram creates the paper's full per-row test: set up the
// double-sided data pattern, hammer n times, read the victim back.
func buildHammerProgram(t *testing.T, d *hbm.Device, bank addr.BankAddr, physVictim int, n int64) *bender.Program {
	t.Helper()
	m := d.Mapper()
	lv := m.ToLogical(physVictim)
	la := m.ToLogical(physVictim - 1)
	lb := m.ToLogical(physVictim + 1)
	b := bender.NewBuilder(d.Config().Timing, d.Geometry())
	b.DisableECC()
	b.WriteRowFill(bank, lv, 0xFF)
	b.WriteRowFill(bank, la, 0x00)
	b.WriteRowFill(bank, lb, 0x00)
	b.HammerDouble(bank, la, lb, n)
	b.ReadRowOut(bank, lv)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func countFlips(res *bender.Result, want byte) int {
	n := 0
	for _, col := range res.Reads {
		for _, v := range col {
			d := v ^ want
			for d != 0 {
				d &= d - 1
				n++
			}
		}
	}
	return n
}

func TestHammerProgramInducesFlips(t *testing.T) {
	d := newDevice(t)
	layout := d.Config().Layout()
	phys := layout.Start(1) + layout.Size(1)/2
	prog := buildHammerProgram(t, d, ba(7, 0, 0), phys, 256*1024)
	res := run(t, d, prog)
	if got := countFlips(res, 0xFF); got == 0 {
		t.Fatal("hammer program induced no flips in channel 7")
	}
}

func TestFastPathMatchesSlowPathExactly(t *testing.T) {
	layout := config.SmallChip().Layout()
	phys := layout.Start(1) + layout.Size(1)/2
	const n = 2000 // keep the slow path affordable

	exec := func(disableFast bool) (*bender.Result, int64, hbm.Stats) {
		d := newDevice(t)
		prog := buildHammerProgram(t, d, ba(7, 0, 0), phys, n)
		r := bender.NewRunner(d.Config().Timing)
		r.DisableFastPath = disableFast
		res, err := r.Run(d, d.Geometry(), prog)
		if err != nil {
			t.Fatal(err)
		}
		return res, d.Now(), d.Stats()
	}

	fast, fastNow, fastStats := exec(false)
	slow, slowNow, slowStats := exec(true)

	if fastNow != slowNow {
		t.Errorf("device clocks diverge: fast %d ps, slow %d ps", fastNow, slowNow)
	}
	if fast.Elapsed != slow.Elapsed {
		t.Errorf("elapsed diverges: fast %d, slow %d", fast.Elapsed, slow.Elapsed)
	}
	if len(fast.Reads) != len(slow.Reads) {
		t.Fatalf("read counts diverge: %d vs %d", len(fast.Reads), len(slow.Reads))
	}
	for i := range fast.Reads {
		if !bytes.Equal(fast.Reads[i], slow.Reads[i]) {
			t.Fatalf("read %d differs between fast and slow paths", i)
		}
	}
	if fastStats.Acts != slowStats.Acts {
		t.Errorf("activation counts diverge: %d vs %d", fastStats.Acts, slowStats.Acts)
	}
}

func TestFastPathDeclinedForImpureLoops(t *testing.T) {
	// A loop that reads inside cannot use the bulk path; it must still
	// execute correctly and fill the FIFO once per iteration.
	d := newDevice(t)
	tm := d.Config().Timing
	b := bender.NewBuilder(tm, d.Geometry())
	b.WriteRowFill(ba(0, 0, 0), 9, 0x3C)
	b.Loop(5, func(b *bender.Builder) {
		b.Act(ba(0, 0, 0), 9)
		b.Wait(tm.TRCD - tm.TCK)
		b.Rd(ba(0, 0, 0), 0)
		b.Wait(tm.TRAS)
		b.Pre(ba(0, 0, 0))
		b.Wait(tm.TRP)
	})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, d, prog)
	if len(res.Reads) != 5 {
		t.Fatalf("%d reads, want 5", len(res.Reads))
	}
}

func TestNestedLoopsExecute(t *testing.T) {
	d := newDevice(t)
	tm := d.Config().Timing
	b := bender.NewBuilder(tm, d.Geometry())
	b.Loop(3, func(b *bender.Builder) {
		b.Loop(4, func(b *bender.Builder) {
			b.Ref(0, 0)
			b.Wait(tm.TRFC - tm.TCK)
		})
	})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	run(t, d, prog)
	if got := d.Stats().Refreshes; got != 12 {
		t.Fatalf("%d refreshes, want 12", got)
	}
}

func TestProgramValidation(t *testing.T) {
	g := config.SmallChip().Geometry
	cases := map[string]bender.Program{
		"row out of range": {Instrs: []bender.Instr{{Op: bender.OpAct, Row: g.Rows}}},
		"bad channel":      {Instrs: []bender.Instr{{Op: bender.OpRef, Ch: g.Channels}}},
		"bad data index":   {Instrs: []bender.Instr{{Op: bender.OpWr}}},
		"unclosed loop":    {Instrs: []bender.Instr{{Op: bender.OpLoop, Arg: 2}}},
		"stray endloop":    {Instrs: []bender.Instr{{Op: bender.OpEndLoop}}},
		"zero loop count":  {Instrs: []bender.Instr{{Op: bender.OpLoop}, {Op: bender.OpEndLoop}}},
		"negative wait":    {Instrs: []bender.Instr{{Op: bender.OpWait, Arg: -1}}},
		"unknown op":       {Instrs: []bender.Instr{{Op: bender.Op(99)}}},
		"short payload": {
			Instrs: []bender.Instr{{Op: bender.OpWr}},
			Data:   [][]byte{{1, 2, 3}},
		},
	}
	for name, p := range cases {
		p := p
		if err := p.Validate(g); err == nil {
			t.Errorf("%s: invalid program accepted", name)
		}
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	g := config.SmallChip().Geometry
	src := `
# set up and hammer
mrs 0 4 0x0
act 0 0 0 100
wait 14000
wr 0 0 0 0 fill a5
wr 0 0 0 1 hex ` + strings.Repeat("0f", g.ColumnBytes) + `
wait 33000
pre 0 0 0
wait 14000
loop 1000
  act 0 0 0 99  ; aggressor
  wait 31334
  pre 0 0 0
  wait 12334
endloop
rd 0 0 0 0
ref 0 0
prea 0 0
end
`
	p1, err := bender.Assemble(src, g)
	if err != nil {
		t.Fatal(err)
	}
	text := bender.Disassemble(p1)
	p2, err := bender.Assemble(text, g)
	if err != nil {
		t.Fatalf("disassembly did not reassemble: %v\n%s", err, text)
	}
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatalf("instruction counts differ: %d vs %d", len(p1.Instrs), len(p2.Instrs))
	}
	for i := range p1.Instrs {
		a, b := p1.Instrs[i], p2.Instrs[i]
		if a.Op != b.Op || a.Ch != b.Ch || a.PC != b.PC || a.Bank != b.Bank ||
			a.Row != b.Row || a.Col != b.Col || a.Arg != b.Arg {
			t.Fatalf("instr %d differs: %+v vs %+v", i, a, b)
		}
		if a.Op == bender.OpWr && !bytes.Equal(p1.Data[a.Data], p2.Data[b.Data]) {
			t.Fatalf("instr %d payload differs", i)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	g := config.SmallChip().Geometry
	cases := map[string]string{
		"unknown op":     "frobnicate 1 2 3",
		"missing arg":    "act 0 0 0",
		"bad int":        "wait abc",
		"bad fill":       "wr 0 0 0 0 fill zz",
		"bad hex":        "wr 0 0 0 0 hex xyz",
		"short hex":      "wr 0 0 0 0 hex abcd",
		"bad mode":       "wr 0 0 0 0 random ff",
		"endloop extra":  "endloop 3",
		"row overflow":   "act 0 0 0 999999",
		"nested unclose": "loop 2\nloop 3\nendloop",
	}
	for name, src := range cases {
		if _, err := bender.Assemble(src, g); err == nil {
			t.Errorf("%s: assembler accepted %q", name, src)
		}
	}
}

func TestAssembledHammerUsesFastPath(t *testing.T) {
	// An assembled text program with the canonical hammer loop should
	// complete 256K iterations quickly (i.e. the fast path kicked in) and
	// produce flips.
	d := newDevice(t)
	layout := d.Config().Layout()
	phys := layout.Start(1) + layout.Size(1)/2
	m := d.Mapper()
	prog := buildHammerProgram(t, d, ba(7, 0, 0), phys, 256*1024)
	text := bender.Disassemble(prog)
	p2, err := bender.Assemble(text, d.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, d, p2)
	if countFlips(res, 0xFF) == 0 {
		t.Fatal("assembled hammer program induced no flips")
	}
	_ = m
}

func TestRefreshBurstTriggersTRRPeriod(t *testing.T) {
	d := newDevice(t)
	tm := d.Config().Timing
	b := bender.NewBuilder(tm, d.Geometry())
	b.Wait(tm.TRFC) // space from power-up
	b.RefreshBurst(0, 0, 40)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	run(t, d, prog)
	if got := d.Stats().Refreshes; got != 40 {
		t.Fatalf("%d refreshes, want 40", got)
	}
}

func TestOpStringCoversAll(t *testing.T) {
	ops := []bender.Op{
		bender.OpAct, bender.OpPre, bender.OpPreA, bender.OpRd, bender.OpWr,
		bender.OpRef, bender.OpMRS, bender.OpWait, bender.OpLoop, bender.OpEndLoop, bender.OpEnd,
	}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if seen[s] {
			t.Fatalf("duplicate mnemonic %q", s)
		}
		seen[s] = true
	}
	if got := bender.Op(99).String(); got != "Op(99)" {
		t.Fatalf("unknown op renders as %q", got)
	}
}

func TestHammerDoubleHoldFastMatchesSlow(t *testing.T) {
	layout := config.SmallChip().Layout()
	phys := layout.Start(1) + layout.Size(1)/2
	const n = 8000

	exec := func(disableFast bool) (*bender.Result, int64, int) {
		d := newDevice(t)
		tm := d.Config().Timing
		m := d.Mapper()
		lv := m.ToLogical(phys)
		la, lb := m.ToLogical(phys-1), m.ToLogical(phys+1)
		b := bender.NewBuilder(tm, d.Geometry())
		b.DisableECC()
		b.WriteRowFill(ba(7, 0, 0), lv, 0xFF)
		b.WriteRowFill(ba(7, 0, 0), la, 0x00)
		b.WriteRowFill(ba(7, 0, 0), lb, 0x00)
		// Hold each activation open 20x tRAS: the RowPress pattern.
		b.HammerDoubleHold(ba(7, 0, 0), la, lb, n, tm.TRAS*20)
		b.ReadRowOut(ba(7, 0, 0), lv)
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		r := bender.NewRunner(tm)
		r.DisableFastPath = disableFast
		res, err := r.Run(d, d.Geometry(), prog)
		if err != nil {
			t.Fatal(err)
		}
		return res, d.Now(), countFlips(res, 0xFF)
	}

	fast, fastNow, fastFlips := exec(false)
	slow, slowNow, slowFlips := exec(true)
	if fastNow != slowNow {
		t.Errorf("clocks diverge: %d vs %d", fastNow, slowNow)
	}
	if fastFlips != slowFlips {
		t.Errorf("flips diverge: fast %d, slow %d", fastFlips, slowFlips)
	}
	if fastFlips == 0 {
		t.Error("300 pressed hammers flipped nothing; RowPress amplification missing")
	}
	if fast.Elapsed != slow.Elapsed {
		t.Errorf("elapsed diverges: %d vs %d", fast.Elapsed, slow.Elapsed)
	}
}

func TestTraceLogsCommands(t *testing.T) {
	d := newDevice(t)
	tm := d.Config().Timing
	b := bender.NewBuilder(tm, d.Geometry())
	b.MRS(0, 4, 0)
	b.WriteRowFill(ba(0, 0, 0), 9, 0xAB)
	b.HammerDouble(ba(0, 0, 0), 8, 10, 100)
	b.ReadRowOut(ba(0, 0, 0), 9)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r := bender.NewRunner(tm)
	r.Trace = &buf
	if _, err := r.Run(d, d.Geometry(), prog); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mrs  ch0 MR4 = 0x0",
		"act  ch0.pc0.ba0 row 9",
		"wr   ch0.pc0.ba0 col 0",
		"double-sided hammer ch0.pc0.ba0 rows 8/10",
		"(hold 33000 ps, bulk)",
		"rd   ch0.pc0.ba0 col 0",
		"] pre  ch0.pc0.ba0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Timestamps must be non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var ts int64
		if _, err := fmt.Sscanf(line, "[%d ps]", &ts); err != nil {
			t.Fatalf("unparseable trace line %q", line)
		}
		if ts < last {
			t.Fatalf("trace timestamps regress: %d after %d", ts, last)
		}
		last = ts
	}
}

func TestTraceSlowPathLogsEveryIteration(t *testing.T) {
	d := newDevice(t)
	tm := d.Config().Timing
	b := bender.NewBuilder(tm, d.Geometry())
	b.HammerSingle(ba(0, 0, 0), 5, 3)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r := bender.NewRunner(tm)
	r.Trace = &buf
	r.DisableFastPath = true
	if _, err := r.Run(d, d.Geometry(), prog); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "act  "); got != 3 {
		t.Fatalf("%d act lines, want 3", got)
	}
}

func TestAssembleNeverPanicsProperty(t *testing.T) {
	g := config.SmallChip().Geometry
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		// Either a valid program or an error; never a panic.
		p, err := bender.Assemble(src, g)
		return err != nil || p != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// And a few adversarial fragments assembled verbatim.
	for _, src := range []string{
		"loop 9223372036854775807\nendloop",
		"wait 9223372036854775807",
		"act -1 -1 -1 -1",
		"wr 0 0 0 0 hex " + strings.Repeat("00", 1<<10),
		"\x00\x01\x02",
		"loop 1\nloop 1\nloop 1\nendloop\nendloop\nendloop",
	} {
		f(src)
	}
}

func TestLoopErrorReportsIteration(t *testing.T) {
	// A timing violation inside a loop must name the failing iteration.
	d := newDevice(t)
	b := bender.NewBuilder(d.Config().Timing, d.Geometry())
	b.Loop(3, func(b *bender.Builder) {
		b.Act(ba(0, 0, 0), 1) // second iteration activates an open bank
	})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := bender.NewRunner(d.Config().Timing)
	_, err = r.Run(d, d.Geometry(), prog)
	if err == nil {
		t.Fatal("double activation accepted")
	}
	if !strings.Contains(err.Error(), "loop iteration 1") {
		t.Fatalf("error %q does not name the failing iteration", err)
	}
}

func TestRunnerReusesResultAcrossRuns(t *testing.T) {
	// The Runner owns its Result and read arena: the same pointer comes
	// back from every Run, with Reads valid until the next Run.
	d := newDevice(t)
	b := bender.NewBuilder(d.Config().Timing, d.Geometry())
	b.WriteRowFill(ba(0, 0, 0), 3, 0x11)
	b.ReadRowOut(ba(0, 0, 0), 3)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := bender.NewRunner(d.Config().Timing)
	res1, err := r.Run(d, d.Geometry(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Reads) != d.Geometry().Columns {
		t.Fatalf("%d reads, want %d", len(res1.Reads), d.Geometry().Columns)
	}
	for _, col := range res1.Reads {
		for _, v := range col {
			if v != 0x11 {
				t.Fatalf("read byte %#x, want 0x11", v)
			}
		}
	}
	res2, err := r.Run(d, d.Geometry(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Fatal("Run did not reuse its Result value")
	}
}

func TestBuilderResetReusesBuffers(t *testing.T) {
	d := newDevice(t)
	b := bender.NewBuilder(d.Config().Timing, d.Geometry())
	r := bender.NewRunner(d.Config().Timing)
	// Three programs from one builder, Reset in between: a fresh payload
	// interned after a Reset (0x55), then a repeat of the first fill to
	// prove the intern table persisted across both Resets. All must
	// execute correctly.
	for round, fill := range []byte{0xAA, 0x55, 0xAA} {
		b.Reset()
		b.WriteRowFill(ba(1, 0, 0), 7, fill)
		b.ReadRowOut(ba(1, 0, 0), 7)
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(d, d.Geometry(), prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range res.Reads {
			for _, v := range col {
				if v != fill {
					t.Fatalf("round %d: read %#x, want %#x", round, v, fill)
				}
			}
		}
	}
}

func TestEndInsideLoopRejected(t *testing.T) {
	g := config.SmallChip().Geometry
	p := bender.Program{Instrs: []bender.Instr{
		{Op: bender.OpLoop, Arg: 2},
		{Op: bender.OpEnd},
		{Op: bender.OpEndLoop},
	}}
	if err := p.Validate(g); err == nil {
		t.Fatal("end inside loop accepted")
	}
}
