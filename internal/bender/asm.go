package bender

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"github.com/safari-repro/hbmrh/internal/addr"
)

// Assemble parses the textual program format into a Program and validates
// it against the geometry. The format is one instruction per line:
//
//	act  <ch> <pc> <bank> <row>
//	pre  <ch> <pc> <bank>
//	prea <ch> <pc>
//	rd   <ch> <pc> <bank> <col>
//	wr   <ch> <pc> <bank> <col> fill <hexbyte>
//	wr   <ch> <pc> <bank> <col> hex  <hexbytes>
//	ref  <ch> <pc>
//	mrs  <ch> <reg> <value>
//	wait <picoseconds>
//	loop <count>
//	endloop
//	end
//
// Blank lines and lines starting with '#' or ';' are ignored, as is
// anything after '#' or ';' on a line.
func Assemble(src string, g addr.Geometry) (*Program, error) {
	p := &Program{}
	dataIndex := make(map[string]int)
	intern := func(payload []byte) int {
		key := string(payload)
		if idx, ok := dataIndex[key]; ok {
			return idx
		}
		idx := len(p.Data)
		p.Data = append(p.Data, payload)
		dataIndex[key] = idx
		return idx
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(f string, args ...any) error {
			return fmt.Errorf("bender: line %d: %s", lineNo+1, fmt.Sprintf(f, args...))
		}
		op := strings.ToLower(fields[0])
		args := fields[1:]
		n, err := parseInts(args)
		if err != nil && op != "wr" {
			return nil, fail("%v", err)
		}
		switch op {
		case "act":
			if len(n) != 4 {
				return nil, fail("act needs ch pc bank row")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpAct, Ch: int(n[0]), PC: int(n[1]), Bank: int(n[2]), Row: int(n[3])})
		case "pre":
			if len(n) != 3 {
				return nil, fail("pre needs ch pc bank")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpPre, Ch: int(n[0]), PC: int(n[1]), Bank: int(n[2])})
		case "prea":
			if len(n) != 2 {
				return nil, fail("prea needs ch pc")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpPreA, Ch: int(n[0]), PC: int(n[1])})
		case "rd":
			if len(n) != 4 {
				return nil, fail("rd needs ch pc bank col")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpRd, Ch: int(n[0]), PC: int(n[1]), Bank: int(n[2]), Col: int(n[3])})
		case "wr":
			if len(args) != 6 {
				return nil, fail("wr needs ch pc bank col (fill|hex) payload")
			}
			hd, err := parseInts(args[:4])
			if err != nil {
				return nil, fail("%v", err)
			}
			payload, err := parsePayload(args[4], args[5], g.ColumnBytes)
			if err != nil {
				return nil, fail("%v", err)
			}
			p.Instrs = append(p.Instrs, Instr{
				Op: OpWr, Ch: int(hd[0]), PC: int(hd[1]), Bank: int(hd[2]), Col: int(hd[3]),
				Data: intern(payload),
			})
		case "ref":
			if len(n) != 2 {
				return nil, fail("ref needs ch pc")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpRef, Ch: int(n[0]), PC: int(n[1])})
		case "mrs":
			if len(n) != 3 {
				return nil, fail("mrs needs ch reg value")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpMRS, Ch: int(n[0]), Row: int(n[1]), Arg: n[2]})
		case "wait":
			if len(n) != 1 {
				return nil, fail("wait needs picoseconds")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpWait, Arg: n[0]})
		case "loop":
			if len(n) != 1 {
				return nil, fail("loop needs a count")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpLoop, Arg: n[0]})
		case "endloop":
			if len(n) != 0 {
				return nil, fail("endloop takes no operands")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpEndLoop})
		case "end":
			if len(n) != 0 {
				return nil, fail("end takes no operands")
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpEnd})
		default:
			return nil, fail("unknown instruction %q", op)
		}
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	return p, nil
}

func parseInts(fields []string) ([]int64, error) {
	out := make([]int64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePayload(mode, arg string, columnBytes int) ([]byte, error) {
	switch mode {
	case "fill":
		b, err := strconv.ParseUint(arg, 16, 8)
		if err != nil {
			return nil, fmt.Errorf("bad fill byte %q", arg)
		}
		payload := make([]byte, columnBytes)
		for i := range payload {
			payload[i] = byte(b)
		}
		return payload, nil
	case "hex":
		payload, err := hex.DecodeString(arg)
		if err != nil {
			return nil, fmt.Errorf("bad hex payload: %v", err)
		}
		if len(payload) != columnBytes {
			return nil, fmt.Errorf("payload is %d bytes, column holds %d", len(payload), columnBytes)
		}
		return payload, nil
	default:
		return nil, fmt.Errorf("payload mode %q, want fill or hex", mode)
	}
}

// Disassemble renders a program back into the assembler's text format.
// Assemble(Disassemble(p)) reproduces an equivalent program.
func Disassemble(p *Program) string {
	var sb strings.Builder
	indent := 0
	for _, in := range p.Instrs {
		if in.Op == OpEndLoop && indent > 0 {
			indent--
		}
		sb.WriteString(strings.Repeat("  ", indent))
		switch in.Op {
		case OpAct:
			fmt.Fprintf(&sb, "act %d %d %d %d\n", in.Ch, in.PC, in.Bank, in.Row)
		case OpPre:
			fmt.Fprintf(&sb, "pre %d %d %d\n", in.Ch, in.PC, in.Bank)
		case OpPreA:
			fmt.Fprintf(&sb, "prea %d %d\n", in.Ch, in.PC)
		case OpRd:
			fmt.Fprintf(&sb, "rd %d %d %d %d\n", in.Ch, in.PC, in.Bank, in.Col)
		case OpWr:
			fmt.Fprintf(&sb, "wr %d %d %d %d hex %s\n", in.Ch, in.PC, in.Bank, in.Col, hex.EncodeToString(p.Data[in.Data]))
		case OpRef:
			fmt.Fprintf(&sb, "ref %d %d\n", in.Ch, in.PC)
		case OpMRS:
			fmt.Fprintf(&sb, "mrs %d %d %#x\n", in.Ch, in.Row, uint32(in.Arg))
		case OpWait:
			fmt.Fprintf(&sb, "wait %d\n", in.Arg)
		case OpLoop:
			fmt.Fprintf(&sb, "loop %d\n", in.Arg)
			indent++
		case OpEndLoop:
			sb.WriteString("endloop\n")
		case OpEnd:
			sb.WriteString("end\n")
		}
	}
	return sb.String()
}
