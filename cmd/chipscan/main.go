// chipscan reruns the headline measurements on multiple simulated chip
// instances (different fault-model seeds of the same design), the paper's
// future work 1: which observations are stable chip-to-chip and which are
// per-chip accidents.
//
// It scales to fleet-style scans: hundreds of seeds stream into
// per-region aggregates in O(regions) resident sample memory, with
// byte-identical output at any -parallel count, and a Ctrl-C aborts
// mid-measurement rather than waiting out the current chip.
//
// Usage:
//
//	chipscan [-chip paper|small] [-chips N] [-rows N] [-parallel N]
//	         [-sweep-workers N] [-csv FILE] [-json FILE]
//
// -csv and -json write the aggregated regional distributions; "-" writes
// to stdout in place of the rendered report.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chipscan: ")
	var (
		chip     = flag.String("chip", "small", "chip preset: paper or small")
		chips    = flag.Int("chips", 4, "number of chip instances (seeds) to test")
		rows     = flag.Int("rows", 8, "victim rows sampled per region per chip")
		parallel = flag.Int("parallel", 1, "chip instances measured at once")
		sweepW   = flag.Int("sweep-workers", 0, "parallel devices per chip sweep (0 = one per CPU)")
		csvOut   = flag.String("csv", "", "write aggregated distributions as CSV to this file (\"-\" = stdout)")
		jsonOut  = flag.String("json", "", "write aggregated distributions as JSON to this file (\"-\" = stdout)")
	)
	flag.Parse()
	if *csvOut == "-" && *jsonOut == "-" {
		log.Fatal("-csv - and -json - both claim stdout; pick one (the other can go to a file)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}

	seeds := make([]uint64, *chips)
	for i := range seeds {
		seeds[i] = cfg.Seed + uint64(i)
	}
	s, err := hbmrh.RunMultiChip(hbmrh.MultiChipOptions{
		Base:          cfg,
		Seeds:         seeds,
		RowsPerRegion: *rows,
		Workers:       *sweepW,
		ChipWorkers:   *parallel,
		Ctx:           ctx,
		Progress: func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "chip %d/%d done\n", p.Done, p.Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	toStdout := *csvOut == "-" || *jsonOut == "-"
	if !toStdout {
		fmt.Print(s.Render())
		worstStable, trrStable := s.StableObservations()
		fmt.Printf("\nstable across chips: worst channel = %v, TRR period = %v\n", worstStable, trrStable)
		fmt.Println("(design-level structure persists; exact cell-level numbers are per-chip)")
	}
	if *csvOut != "" {
		if err := writeAggregateCSV(s, *csvOut); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeAggregateJSON(s, *jsonOut); err != nil {
			log.Fatal(err)
		}
	}
}

// openOut resolves an output target: "-" is stdout (closed as a no-op).
func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func writeAggregateCSV(s *hbmrh.MultiChipStudy, path string) error {
	f, err := openOut(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	headers, rows := s.AggregateCSV()
	if err := w.Write(headers); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func writeAggregateJSON(s *hbmrh.MultiChipStudy, path string) error {
	f, err := openOut(path)
	if err != nil {
		return err
	}
	defer f.Close()
	js, err := s.AggregateJSON()
	if err != nil {
		return err
	}
	_, err = f.Write(append(js, '\n'))
	return err
}
