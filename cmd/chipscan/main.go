// chipscan reruns the headline measurements on multiple simulated chip
// instances (different fault-model seeds of the same design), the paper's
// future work 1: which observations are stable chip-to-chip and which are
// per-chip accidents.
//
// Usage:
//
//	chipscan [-chip paper|small] [-chips N] [-rows N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chipscan: ")
	var (
		chip     = flag.String("chip", "small", "chip preset: paper or small")
		chips    = flag.Int("chips", 4, "number of chip instances (seeds) to test")
		rows     = flag.Int("rows", 8, "victim rows sampled per region per chip")
		parallel = flag.Int("parallel", 1, "chip instances measured at once")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}

	seeds := make([]uint64, *chips)
	for i := range seeds {
		seeds[i] = cfg.Seed + uint64(i)
	}
	s, err := hbmrh.RunMultiChip(hbmrh.MultiChipOptions{
		Base:          cfg,
		Seeds:         seeds,
		RowsPerRegion: *rows,
		ChipWorkers:   *parallel,
		Ctx:           ctx,
		Progress: func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "chip %d/%d done\n", p.Done, p.Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(s.Render())
	worstStable, trrStable := s.StableObservations()
	fmt.Printf("\nstable across chips: worst channel = %v, TRR period = %v\n", worstStable, trrStable)
	fmt.Println("(design-level structure persists; exact cell-level numbers are per-chip)")
}
