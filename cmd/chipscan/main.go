// chipscan reruns the headline measurements on multiple simulated chip
// instances (different fault-model seeds of the same design), the paper's
// future work 1: which observations are stable chip-to-chip and which are
// per-chip accidents.
//
// It scales to fleet-style scans: hundreds of seeds stream into
// region×channel aggregates in O(groups) resident sample memory, with
// byte-identical output at any -parallel count, and a Ctrl-C aborts
// mid-measurement rather than waiting out the current chip. A scan also
// distributes across machines: -shard i/N measures one contiguous
// seed-range slice and -artifact serializes its accumulators; the merge
// subcommand recombines the shards — after verifying config-hash, code
// and format compatibility — into output byte-identical to a
// single-process run.
//
// Usage:
//
//	chipscan [-chip paper|small] [-chips N] [-rows N] [-parallel N]
//	         [-sweep-workers N] [-shard I/N] [-group-by AXIS]
//	         [-artifact FILE] [-csv FILE] [-json FILE]
//	chipscan merge [-group-by AXIS] [-artifact FILE] [-csv FILE]
//	         [-json FILE] shard.json...
//
// -group-by selects the aggregation axis of the rendered and exported
// distributions: region (default), channel (the paper's first-order
// axis), or region-channel.
//
// -csv and -json write the aggregated distribution summaries; -artifact
// writes the full serialized accumulator state (the input of merge).
// "-" writes to stdout in place of the rendered report.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chipscan: ")
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		runMerge(os.Args[2:])
		return
	}
	runScan(os.Args[1:])
}

// exportFlags are the output options shared by scan and merge runs.
type exportFlags struct {
	groupBy  *string
	csvOut   *string
	jsonOut  *string
	artifact *string
}

func addExportFlags(fs *flag.FlagSet) exportFlags {
	return exportFlags{
		groupBy:  fs.String("group-by", "region", "aggregation axis: region, channel or region-channel"),
		csvOut:   fs.String("csv", "", "write aggregated distribution summaries as CSV to this file (\"-\" = stdout)"),
		jsonOut:  fs.String("json", "", "write aggregated distribution summaries as JSON to this file (\"-\" = stdout)"),
		artifact: fs.String("artifact", "", "write the full serialized artifact (shard merge input) to this file (\"-\" = stdout)"),
	}
}

func (e exportFlags) validate() hbmrh.ResultsGroupBy {
	stdout := 0
	for _, p := range []*string{e.csvOut, e.jsonOut, e.artifact} {
		if *p == "-" {
			stdout++
		}
	}
	if stdout > 1 {
		log.Fatal("only one of -csv, -json, -artifact may claim stdout")
	}
	gb, err := hbmrh.ParseGroupBy(*e.groupBy)
	if err != nil {
		log.Fatal(err)
	}
	return gb
}

func (e exportFlags) toStdout() bool {
	return *e.csvOut == "-" || *e.jsonOut == "-" || *e.artifact == "-"
}

// write emits every requested export of the study's artifact.
func (e exportFlags) write(s *hbmrh.MultiChipStudy) {
	if *e.csvOut != "" {
		if err := writeAggregateCSV(s, *e.csvOut); err != nil {
			log.Fatal(err)
		}
	}
	if *e.jsonOut != "" {
		if err := writeAggregateJSON(s, *e.jsonOut); err != nil {
			log.Fatal(err)
		}
	}
	if *e.artifact != "" {
		if err := s.Artifact.WriteFile(*e.artifact); err != nil {
			log.Fatal(err)
		}
	}
}

func runScan(args []string) {
	fs := flag.NewFlagSet("chipscan", flag.ExitOnError)
	var (
		chip     = fs.String("chip", "small", "chip preset: paper or small")
		chips    = fs.Int("chips", 4, "number of chip instances (seeds) to test")
		rows     = fs.Int("rows", 8, "victim rows sampled per region per chip")
		parallel = fs.Int("parallel", 1, "chip instances measured at once")
		sweepW   = fs.Int("sweep-workers", 0, "parallel devices per chip sweep (0 = one per CPU)")
		shard    = fs.String("shard", "", "measure one shard of the seed range, as I/N (e.g. 0/4); all N shards together cover every seed exactly once")
	)
	exports := addExportFlags(fs)
	fs.Parse(args)
	if fs.NArg() > 0 {
		log.Fatalf("unexpected arguments %q (the merge subcommand goes first: chipscan merge ...)", fs.Args())
	}
	gb := exports.validate()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}

	seeds := make([]uint64, *chips)
	for i := range seeds {
		seeds[i] = cfg.Seed + uint64(i)
	}
	shardIdx, shardCount := parseShard(*shard, *chips)
	lo, hi := hbmrh.ShardRange(*chips, shardIdx, shardCount)
	seeds = seeds[lo:hi]
	if len(seeds) == 0 {
		log.Fatalf("-shard %s leaves no seeds for this shard (only %d chips)", *shard, *chips)
	}

	s, err := hbmrh.RunMultiChip(hbmrh.MultiChipOptions{
		Base:          cfg,
		Seeds:         seeds,
		RowsPerRegion: *rows,
		Workers:       *sweepW,
		ChipWorkers:   *parallel,
		GroupBy:       gb,
		Shard:         shardIdx,
		ShardCount:    shardCount,
		Ctx:           ctx,
		Progress: func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "chip %d/%d done\n", p.Done, p.Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if !exports.toStdout() {
		printReport(s)
	}
	exports.write(s)
}

// printReport renders the study plus the stability epilogue; scan and
// merge share it so their stdout reports cannot diverge (the CI smoke
// byte-compares the two paths' exports).
func printReport(s *hbmrh.MultiChipStudy) {
	fmt.Print(s.Render())
	worstStable, trrStable := s.StableObservations()
	fmt.Printf("\nstable across chips: worst channel = %v, TRR period = %v\n", worstStable, trrStable)
	fmt.Println("(design-level structure persists; exact cell-level numbers are per-chip)")
}

// parseShard parses I/N and validates it against the chip count.
func parseShard(s string, chips int) (shard, of int) {
	if s == "" {
		return 0, 1
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &shard, &of); err != nil || fmt.Sprintf("%d/%d", shard, of) != s {
		log.Fatalf("-shard %q: want I/N, e.g. 0/4", s)
	}
	if of < 1 || shard < 0 || shard >= of {
		log.Fatalf("-shard %q: shard index must be in [0, N)", s)
	}
	if of > chips {
		log.Fatalf("-shard %q: cannot split %d chips into %d shards", s, chips, of)
	}
	return shard, of
}

func runMerge(args []string) {
	fs := flag.NewFlagSet("chipscan merge", flag.ExitOnError)
	exports := addExportFlags(fs)
	fs.Parse(args)
	gb := exports.validate()
	if fs.NArg() == 0 {
		log.Fatal("merge needs at least one shard artifact file")
	}

	shards := make([]*hbmrh.ResultsArtifact, 0, fs.NArg())
	for _, path := range fs.Args() {
		a, err := hbmrh.ReadArtifact(path)
		if err != nil {
			log.Fatal(err)
		}
		shards = append(shards, a)
	}
	// Merge in ascending seed order, so the merged output is independent
	// of argument order (shell glob order included).
	sort.SliceStable(shards, func(i, j int) bool {
		return shards[i].Meta.SeedFirst < shards[j].Meta.SeedFirst
	})
	merged := shards[0]
	for _, next := range shards[1:] {
		if err := hbmrh.MergeArtifacts(merged, next); err != nil {
			log.Fatal(err)
		}
	}

	s := hbmrh.StudyFromArtifact(merged, gb)
	// Pre-flight the requested view: artifacts from other tools (sweep,
	// fig6) may store a coarser axis that cannot derive every view, and
	// that should be a clean CLI error, not a panic inside an export.
	if _, err := s.Groups(); err != nil {
		log.Fatalf("%v (this artifact stores axis %q; pass -group-by %s)",
			err, merged.Meta.GroupBy, merged.Meta.GroupBy)
	}
	if !exports.toStdout() {
		printReport(s)
	}
	exports.write(s)
}

// openOut resolves an output target: "-" is stdout (closed as a no-op).
func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func writeAggregateCSV(s *hbmrh.MultiChipStudy, path string) error {
	f, err := openOut(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	headers, rows := s.AggregateCSV()
	if err := w.Write(headers); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func writeAggregateJSON(s *hbmrh.MultiChipStudy, path string) error {
	f, err := openOut(path)
	if err != nil {
		return err
	}
	defer f.Close()
	js, err := s.AggregateJSON()
	if err != nil {
		return err
	}
	_, err = f.Write(js)
	return err
}
