// chipscan reruns the headline measurements on multiple simulated chip
// instances (different fault-model seeds of the same design), the paper's
// future work 1: which observations are stable chip-to-chip and which are
// per-chip accidents.
//
// chipscan is an alias for the "multichip" entry of the experiment
// registry (see cmd/characterize): the scan plans one job per seed,
// streams region×channel aggregates in O(groups) resident sample memory,
// and produces byte-identical output at any -parallel count and under
// any -planner. A scan also distributes across machines: -shard i/N
// measures one contiguous seed-range slice and -artifact serializes its
// accumulators; the merge subcommand recombines the shards — after
// verifying config-hash, code and format compatibility — into output
// byte-identical to a single-process run.
//
// Usage:
//
//	chipscan [-chip paper|small] [-chips N] [-rows N] [-parallel N]
//	         [-sweep-workers N] [-planner P] [-shard I/N] [-group-by AXIS]
//	         [-artifact FILE] [-csv FILE] [-json FILE]
//	chipscan merge [-group-by AXIS] [-artifact FILE] [-csv FILE]
//	         [-json FILE] shard.json|glob|dir...
//
// -group-by selects the aggregation axis of the rendered and exported
// distributions: region (default), channel (the paper's first-order
// axis), or region-channel.
//
// merge arguments may be artifact files, globs, or directories (every
// *.json directly inside); failures name the offending shard file.
//
// -csv and -json write the aggregated distribution summaries; -artifact
// writes the full serialized accumulator state (the input of merge).
// "-" writes to stdout in place of the rendered report.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chipscan: ")
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		runMerge(os.Args[2:])
		return
	}
	runScan(os.Args[1:])
}

// exportFlags are the output options shared by scan and merge runs.
type exportFlags struct {
	groupBy  *string
	csvOut   *string
	jsonOut  *string
	artifact *string
}

func addExportFlags(fs *flag.FlagSet) exportFlags {
	return exportFlags{
		groupBy:  fs.String("group-by", "region", "aggregation axis: region, channel or region-channel"),
		csvOut:   fs.String("csv", "", "write aggregated distribution summaries as CSV to this file (\"-\" = stdout)"),
		jsonOut:  fs.String("json", "", "write aggregated distribution summaries as JSON to this file (\"-\" = stdout)"),
		artifact: fs.String("artifact", "", "write the full serialized artifact (shard merge input) to this file (\"-\" = stdout)"),
	}
}

func (e exportFlags) validate() hbmrh.ResultsGroupBy {
	stdout := 0
	for _, p := range []*string{e.csvOut, e.jsonOut, e.artifact} {
		if *p == "-" {
			stdout++
		}
	}
	if stdout > 1 {
		log.Fatal("only one of -csv, -json, -artifact may claim stdout")
	}
	gb, err := hbmrh.ParseGroupBy(*e.groupBy)
	if err != nil {
		log.Fatal(err)
	}
	return gb
}

func (e exportFlags) toStdout() bool {
	return *e.csvOut == "-" || *e.jsonOut == "-" || *e.artifact == "-"
}

// write emits every requested export of the study's artifact.
func (e exportFlags) write(s *hbmrh.MultiChipStudy) {
	if *e.csvOut != "" {
		if err := writeAggregateCSV(s, *e.csvOut); err != nil {
			log.Fatal(err)
		}
	}
	if *e.jsonOut != "" {
		if err := writeAggregateJSON(s, *e.jsonOut); err != nil {
			log.Fatal(err)
		}
	}
	if *e.artifact != "" {
		if err := s.Artifact.WriteFile(*e.artifact); err != nil {
			log.Fatal(err)
		}
	}
}

func runScan(args []string) {
	fs := flag.NewFlagSet("chipscan", flag.ExitOnError)
	var (
		chip     = fs.String("chip", "small", "chip preset: paper or small")
		chips    = fs.Int("chips", 4, "number of chip instances (seeds) to test")
		rows     = fs.Int("rows", 8, "victim rows sampled per region per chip")
		parallel = fs.Int("parallel", 1, "chip instances measured at once")
		sweepW   = fs.Int("sweep-workers", 0, "parallel devices per chip sweep (0 = one per CPU)")
		planner  = fs.String("planner", "queue", "job planner: queue, contiguous, weighted or stealing (never changes output)")
		shard    = fs.String("shard", "", "measure one shard of the seed range, as I/N (e.g. 0/4); all N shards together cover every seed exactly once")
		mutexPro = fs.String("mutexprofile", "", "write a runtime mutex-contention profile of the scan to this file (lock convoys in the engine hot path show up here)")
	)
	exports := addExportFlags(fs)
	fs.Parse(args)
	if fs.NArg() > 0 {
		log.Fatalf("unexpected arguments %q (the merge subcommand goes first: chipscan merge ...)", fs.Args())
	}
	gb := exports.validate()
	plan, err := hbmrh.ParsePlanner(*planner)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *mutexPro != "" {
		// Record every contended mutex event; the scan is the workload
		// whose hot path is supposed to be contention-free, so the CI
		// smoke runs it with profiling on to keep convoys visible.
		runtime.SetMutexProfileFraction(1)
		defer func() {
			f, err := os.Create(*mutexPro)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
		}()
	}

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}
	if *chips < 1 {
		log.Fatalf("-chips %d: need at least one chip instance", *chips)
	}
	shardIdx, shardCount, err := hbmrh.ParseShardFlag(*shard)
	if err != nil {
		log.Fatal(err)
	}
	if shardCount > *chips {
		log.Fatalf("-shard %s: cannot split %d chips into %d shards", *shard, *chips, shardCount)
	}

	a, err := hbmrh.RunExperiment("multichip", hbmrh.ExperimentOptions{
		Cfg:        cfg,
		Seeds:      *chips,
		Rows:       *rows,
		Workers:    *sweepW,
		Parallel:   *parallel,
		Planner:    plan,
		Shard:      shardIdx,
		ShardCount: shardCount,
		Ctx:        ctx,
		Progress: func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "chip %d/%d done\n", p.Done, p.Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	s := hbmrh.StudyFromArtifact(a, gb)
	if !exports.toStdout() {
		fmt.Print(s.Report())
	}
	exports.write(s)
}

func runMerge(args []string) {
	fs := flag.NewFlagSet("chipscan merge", flag.ExitOnError)
	exports := addExportFlags(fs)
	fs.Parse(args)
	gb := exports.validate()
	if fs.NArg() == 0 {
		log.Fatal("merge needs at least one shard artifact file, glob or directory")
	}

	merged, err := hbmrh.MergeShardFiles(fs.Args())
	if err != nil {
		log.Fatal(err)
	}

	s := hbmrh.StudyFromArtifact(merged, gb)
	// Pre-flight the requested view: artifacts from other tools (sweep,
	// fig6) may store a coarser axis that cannot derive every view, and
	// that should be a clean CLI error, not a panic inside an export.
	if _, err := s.Groups(); err != nil {
		log.Fatalf("%v (this artifact stores axis %q; pass -group-by %s)",
			err, merged.Meta.GroupBy, merged.Meta.GroupBy)
	}
	if !exports.toStdout() {
		fmt.Print(s.Report())
	}
	exports.write(s)
}

// openOut resolves an output target: "-" is stdout (closed as a no-op).
func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func writeAggregateCSV(s *hbmrh.MultiChipStudy, path string) error {
	f, err := openOut(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	headers, rows := s.AggregateCSV()
	if err := w.Write(headers); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func writeAggregateJSON(s *hbmrh.MultiChipStudy, path string) error {
	f, err := openOut(path)
	if err != nil {
		return err
	}
	defer f.Close()
	js, err := s.AggregateJSON()
	if err != nil {
		return err
	}
	_, err = f.Write(js)
	return err
}
