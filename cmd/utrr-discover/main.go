// utrr-discover reproduces Section 5 of the paper: it profiles a
// retention-weak row and runs the U-TRR methodology to uncover the
// proprietary in-DRAM Target Row Refresh mechanism and its period.
// With -probe it runs the deeper follow-up probes instead (victim-refresh
// neighbor radius and sampler depth), the registry's "utrrprobe"
// experiment — `characterize -experiment utrrprobe` runs the same study
// with sharding and artifact export.
//
// Usage:
//
//	utrr-discover [-chip paper|small] [-iterations N] [-probe]
//	              [-channel N] [-pc N] [-bank N] [-csv FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	hbmrh "github.com/safari-repro/hbmrh"
	"github.com/safari-repro/hbmrh/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("utrr-discover: ")
	var (
		chip       = flag.String("chip", "small", "chip preset: paper or small")
		iterations = flag.Int("iterations", 100, "U-TRR iterations (paper: 100)")
		channel    = flag.Int("channel", 0, "channel of the profiled row")
		pc         = flag.Int("pc", 0, "pseudo channel of the profiled row")
		bank       = flag.Int("bank", 0, "bank of the profiled row")
		probe      = flag.Bool("probe", false, "run the deeper probes (neighbor radius + sampler depth) instead of the period study")
		csvPath    = flag.String("csv", "", "write per-iteration observations to this CSV file")
	)
	flag.Parse()

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}

	if *probe {
		s, err := hbmrh.RunUTRRProbe(hbmrh.UTRRProbeOptions{
			Cfg:  cfg,
			Bank: hbmrh.BankAddr{Channel: *channel, PseudoChannel: *pc, Bank: *bank},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(s.Render())
		return
	}

	study, err := hbmrh.RunTRRStudy(hbmrh.TRRStudyOptions{
		Cfg:        cfg,
		Bank:       hbmrh.BankAddr{Channel: *channel, PseudoChannel: *pc, Bank: *bank},
		Iterations: *iterations,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(study.Render())
	if study.Periodic {
		fmt.Printf("\npaper: \"this TRR mechanism performs a victim row refresh once every 17"+
			" periodic REF commands\" — measured period: %d\n", study.Period)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		hd, rows := study.CSV()
		if err := report.WriteCSV(f, hd, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}
